module pimassembler

go 1.22
