// Command pimassembler is the experiment driver: it regenerates every table
// and figure of the paper's evaluation as text tables (see DESIGN.md §3 for
// the experiment index).
//
// Usage:
//
//	pimassembler fig2b     # SA inverter VTCs and detector truth table
//	pimassembler fig3a     # transient simulation of in-memory XNOR2
//	pimassembler fig3b     # raw bulk-op throughput, 7 platforms
//	pimassembler table1    # Monte-Carlo process-variation sweep
//	pimassembler area      # chip-area overhead accounting
//	pimassembler fig9      # genome-pipeline execution time and power
//	pimassembler fig10     # power/delay vs parallelism degree
//	pimassembler fig11     # memory-bottleneck and utilization ratios
//	pimassembler faults    # Table I rates injected into the pipeline
//	pimassembler stream    # per-stage command histogram + makespan + energy
//	pimassembler engines   # cross-engine comparison over the engine registry
//	pimassembler shards    # shard-count sweep vs the unsharded reference
//	pimassembler spill     # out-of-core spill sweep vs the in-memory paths
//	pimassembler all       # everything, in order
//
// Exit codes: 0 on success, 2 on usage errors (bad flags, unknown
// experiment, CSV for an experiment without a CSV form).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pimassembler/internal/eval"
	"pimassembler/internal/parallel"
)

// Exit codes, documented in -h output.
const (
	exitOK    = 0
	exitUsage = 2
)

var runners = map[string]func(io.Writer){
	"fig2b":   eval.RenderFig2b,
	"fig3a":   eval.RenderFig3a,
	"fig3b":   eval.RenderFig3b,
	"table1":  eval.RenderTableI,
	"area":    eval.RenderArea,
	"fig9":    eval.RenderFig9,
	"fig10":   eval.RenderFig10,
	"fig11":   eval.RenderFig11,
	"faults":  eval.RenderFaultStudy,
	"ksweep":  eval.RenderKSweep,
	"sens":    eval.RenderSensitivity,
	"stream":  eval.RenderStream,
	"engines": eval.RenderEngines,
	"shards":  eval.RenderShards,
	"spill":   eval.RenderSpill,
	"all":     eval.RenderAll,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable main: parse args, render, and return the process exit
// code. Every failure path prints a one-line message to stderr.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pimassembler", flag.ContinueOnError)
	fs.SetOutput(stderr)
	asCSV := fs.Bool("csv", false, "emit the experiment as CSV (fig3b, table1, fig9, fig10, fig11, ksweep)")
	workers := fs.Int("workers", 0, "worker count for the parallel evaluation stages (0 = GOMAXPROCS); any value yields bit-identical output")
	fs.Usage = func() { usage(stderr) }
	if err := fs.Parse(args); err != nil {
		// The FlagSet already printed the one-line error and usage.
		return exitUsage
	}
	parallel.SetWorkers(*workers)
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "pimassembler: exactly one experiment name expected")
		usage(stderr)
		return exitUsage
	}
	name := fs.Arg(0)
	if *asCSV {
		if err := eval.WriteCSV(name, stdout); err != nil {
			fmt.Fprintln(stderr, "pimassembler:", err)
			usage(stderr)
			return exitUsage
		}
		return exitOK
	}
	render, ok := runners[name]
	if !ok {
		fmt.Fprintf(stderr, "pimassembler: unknown experiment %q\n", name)
		usage(stderr)
		return exitUsage
	}
	render(stdout)
	return exitOK
}

func usage(w io.Writer) {
	fmt.Fprintln(w, "usage: pimassembler [-csv] [-workers N] <experiment>")
	fmt.Fprintln(w, "experiments: fig2b fig3a fig3b table1 area fig9 fig10 fig11 faults ksweep sens stream engines shards spill all")
	fmt.Fprintln(w, "exit codes: 0 success; 2 usage error (bad flag, unknown experiment, no CSV form)")
}
