// Command pimassembler is the experiment driver: it regenerates every table
// and figure of the paper's evaluation as text tables (see DESIGN.md §3 for
// the experiment index).
//
// Usage:
//
//	pimassembler fig2b     # SA inverter VTCs and detector truth table
//	pimassembler fig3a     # transient simulation of in-memory XNOR2
//	pimassembler fig3b     # raw bulk-op throughput, 7 platforms
//	pimassembler table1    # Monte-Carlo process-variation sweep
//	pimassembler area      # chip-area overhead accounting
//	pimassembler fig9      # genome-pipeline execution time and power
//	pimassembler fig10     # power/delay vs parallelism degree
//	pimassembler fig11     # memory-bottleneck and utilization ratios
//	pimassembler faults    # Table I rates injected into the pipeline
//	pimassembler stream    # per-stage command histogram + makespan + energy
//	pimassembler engines   # cross-engine comparison over the engine registry
//	pimassembler all       # everything, in order
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pimassembler/internal/eval"
	"pimassembler/internal/parallel"
)

var runners = map[string]func(io.Writer){
	"fig2b":   eval.RenderFig2b,
	"fig3a":   eval.RenderFig3a,
	"fig3b":   eval.RenderFig3b,
	"table1":  eval.RenderTableI,
	"area":    eval.RenderArea,
	"fig9":    eval.RenderFig9,
	"fig10":   eval.RenderFig10,
	"fig11":   eval.RenderFig11,
	"faults":  eval.RenderFaultStudy,
	"ksweep":  eval.RenderKSweep,
	"sens":    eval.RenderSensitivity,
	"stream":  eval.RenderStream,
	"engines": eval.RenderEngines,
	"all":     eval.RenderAll,
}

func main() {
	asCSV := flag.Bool("csv", false, "emit the experiment as CSV (fig3b, table1, fig9, fig10, fig11, ksweep)")
	workers := flag.Int("workers", 0, "worker count for the parallel evaluation stages (0 = GOMAXPROCS); any value yields bit-identical output")
	flag.Usage = usage
	flag.Parse()
	parallel.SetWorkers(*workers)
	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	name := flag.Arg(0)
	if *asCSV {
		if err := eval.WriteCSV(name, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		return
	}
	run, ok := runners[name]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
		usage()
		os.Exit(2)
	}
	run(os.Stdout)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: pimassembler [-csv] <experiment>")
	fmt.Fprintln(os.Stderr, "experiments: fig2b fig3a fig3b table1 area fig9 fig10 fig11 faults ksweep sens stream engines all")
}
