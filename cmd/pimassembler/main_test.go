package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunExitCodes is the flag-error regression table for the experiment
// driver: every failure path returns the documented exit code with a
// one-line stderr message.
func TestRunExitCodes(t *testing.T) {
	cases := []struct {
		name   string
		args   []string
		code   int
		stderr string // required substring of stderr ("" = no requirement)
	}{
		{"no-experiment", []string{}, exitUsage, "exactly one experiment"},
		{"two-experiments", []string{"fig9", "fig10"}, exitUsage, "exactly one experiment"},
		{"bad-flag", []string{"-no-such-flag", "fig9"}, exitUsage, "flag provided but not defined"},
		{"bad-flag-value", []string{"-workers", "banana", "fig9"}, exitUsage, "invalid value"},
		{"unknown-experiment", []string{"frobnicate"}, exitUsage, "unknown experiment"},
		{"csv-unsupported", []string{"-csv", "frobnicate"}, exitUsage, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.args, &stdout, &stderr)
			if code != tc.code {
				t.Fatalf("exit code = %d, want %d (stderr: %s)", code, tc.code, stderr.String())
			}
			if tc.stderr != "" && !strings.Contains(stderr.String(), tc.stderr) {
				t.Fatalf("stderr %q lacks %q", stderr.String(), tc.stderr)
			}
			if tc.code != exitOK && !strings.Contains(stderr.String(), "exit codes:") {
				t.Fatalf("usage text lacks exit-code documentation: %s", stderr.String())
			}
		})
	}
}

// TestRunRendersExperiment pins one fast happy path end to end.
func TestRunRendersExperiment(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"area"}, &stdout, &stderr); code != exitOK {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr.String())
	}
	if stdout.Len() == 0 {
		t.Fatal("experiment rendered nothing")
	}
}

// TestRunRendersCSV pins the CSV path.
func TestRunRendersCSV(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-csv", "fig3b"}, &stdout, &stderr); code != exitOK {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), ",") {
		t.Fatalf("CSV output lacks commas:\n%s", stdout.String())
	}
}
