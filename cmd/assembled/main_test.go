package main

import (
	"bytes"
	"context"
	"os"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"pimassembler/internal/service"
)

// syncBuffer guards a bytes.Buffer so the daemon goroutine and the test
// can touch it concurrently.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenRE = regexp.MustCompile(`listening on (http://[^ ]+)`)

// startDaemon runs the daemon on a free port and returns its base URL, the
// signal channel, stdout, and the exit-code channel.
func startDaemon(t *testing.T, args []string) (string, chan os.Signal, *syncBuffer, chan int) {
	t.Helper()
	stdout, stderr := &syncBuffer{}, &syncBuffer{}
	sigs := make(chan os.Signal, 1)
	code := make(chan int, 1)
	go func() { code <- run(args, stdout, stderr, sigs) }()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := listenRE.FindStringSubmatch(stdout.String()); m != nil {
			return m[1], sigs, stdout, code
		}
		select {
		case c := <-code:
			t.Fatalf("daemon exited %d before listening\nstdout: %s\nstderr: %s", c, stdout.String(), stderr.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never printed listen line\nstderr: %s", stderr.String())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestDaemonServesAndDrains boots the daemon, runs one job end to end over
// HTTP, sends SIGTERM, and pins the clean-drain exit code and log lines.
func TestDaemonServesAndDrains(t *testing.T) {
	base, sigs, stdout, code := startDaemon(t, []string{"-addr", "127.0.0.1:0", "-workers", "2"})
	c := &service.Client{BaseURL: base}
	ctx := context.Background()

	if ok, err := c.Healthz(ctx); err != nil || !ok {
		t.Fatalf("healthz: ok=%v err=%v", ok, err)
	}
	st, err := c.Submit(ctx, service.SubmitRequest{
		Engine: "software",
		Reads:  ">r0\nACGTACGTACGTACGTACGTACGT\n>r1\nCGTACGTACGTACGTACGTACGTA\n",
		K:      8,
	})
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, st.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != "done" {
		t.Fatalf("job state %q (err %q)", final.State, final.Error)
	}
	if _, err := c.Contigs(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	samples, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if samples["pim_jobs_done_total"] != 1 {
		t.Fatalf("pim_jobs_done_total = %v, want 1", samples["pim_jobs_done_total"])
	}

	sigs <- syscall.SIGTERM
	select {
	case got := <-code:
		if got != exitOK {
			t.Fatalf("exit code %d, want %d\n%s", got, exitOK, stdout.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not exit after SIGTERM\n%s", stdout.String())
	}
	out := stdout.String()
	for _, want := range []string{"received terminated, draining", "assembled: drained ("} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}
}

// TestDaemonUsageErrors pins exit code 2 on bad flags.
func TestDaemonUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-no-such-flag"},
		{"-max-pending", "0"},
		{"-max-pending-per-tenant", "0"},
		{"positional"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if got := run(args, &stdout, &stderr, make(chan os.Signal)); got != exitUsage {
			t.Errorf("run(%v) = %d, want %d", args, got, exitUsage)
		}
	}
}

// TestDaemonBindFailure pins exit code 1 when the address is unusable.
func TestDaemonBindFailure(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-addr", "256.0.0.1:0"}, &stdout, &stderr, make(chan os.Signal)); got != exitRuntime {
		t.Errorf("run with bad addr = %d, want %d (stderr %s)", got, exitRuntime, stderr.String())
	}
}
