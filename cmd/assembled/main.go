// Command assembled is the long-lived assembly daemon: an HTTP front door
// over the concurrent job queue. Clients POST read sets to /v1/jobs, poll
// /v1/jobs/{id}, and fetch contig FASTA from /v1/jobs/{id}/contigs; the
// daemon enforces a bounded admission budget (global and per tenant via the
// X-API-Key header), dispatches tenants round-robin, exports Prometheus
// metrics on /metrics, and drains gracefully on SIGTERM/SIGINT.
//
// Usage:
//
//	assembled [-addr 127.0.0.1:8080] [-workers N] [-max-pending N]
//	          [-max-pending-per-tenant N] [-timeout DUR] [-retries N]
//	          [-backoff DUR] [-drain-timeout DUR] [-result-ttl DUR]
//	          [-max-retained-per-tenant N]
//
// Exit codes: 0 after a clean drain, 1 on a serve failure, 2 on usage
// errors.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pimassembler/internal/jobqueue"
	"pimassembler/internal/service"
)

const (
	exitOK      = 0
	exitRuntime = 1
	exitUsage   = 2
)

func main() {
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, os.Interrupt)
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, sigs))
}

// run is the testable main: parse flags, serve until a shutdown signal,
// drain, and return the process exit code. The daemon prints exactly one
// "listening on" line once the socket is bound, so drivers can scrape the
// resolved address when -addr uses port 0.
func run(args []string, stdout, stderr io.Writer, sigs <-chan os.Signal) int {
	fs := flag.NewFlagSet("assembled", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
		workers   = fs.Int("workers", 0, "concurrent assembly jobs (0 = GOMAXPROCS)")
		maxPend   = fs.Int("max-pending", service.DefaultMaxPending, "global admission budget: queued+running jobs before 429")
		maxTenant = fs.Int("max-pending-per-tenant", service.DefaultMaxPendingPerTenant, "per-tenant admission budget before 429")
		timeout   = fs.Duration("timeout", 0, "default per-attempt job timeout (0 = none; requests may override)")
		retries   = fs.Int("retries", 0, "retry budget for transient job failures (total attempts = retries+1)")
		backoff   = fs.Duration("backoff", 50*time.Millisecond, "delay before the first retry (doubles per attempt)")
		drainTO   = fs.Duration("drain-timeout", 30*time.Second, "grace period for in-flight jobs on shutdown before cancellation")
		resultTTL = fs.Duration("result-ttl", service.DefaultResultTTL, "how long finished job results stay pollable before eviction (negative = no TTL)")
		retained  = fs.Int("max-retained-per-tenant", service.DefaultMaxRetainedPerTenant, "finished results kept per tenant; beyond it the oldest is evicted")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: assembled [flags]")
		fmt.Fprintln(stderr, "\nexit codes: 0 clean drain; 1 serve failure; 2 usage error")
		fmt.Fprintln(stderr, "\nflags:")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "assembled: unexpected arguments: %v\n", fs.Args())
		return exitUsage
	}
	if *maxPend < 1 || *maxTenant < 1 {
		fmt.Fprintln(stderr, "assembled: -max-pending and -max-pending-per-tenant must be >= 1")
		return exitUsage
	}

	srv := service.New(service.Config{
		Workers:              *workers,
		MaxPending:           *maxPend,
		MaxPendingPerTenant:  *maxTenant,
		DefaultTimeout:       *timeout,
		ResultTTL:            *resultTTL,
		MaxRetainedPerTenant: *retained,
		Retry: jobqueue.RetryPolicy{
			MaxAttempts: *retries + 1,
			Backoff:     *backoff,
		},
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "assembled:", err)
		return exitRuntime
	}
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Fprintf(stdout, "assembled: listening on http://%s (workers=%d, max-pending=%d, per-tenant=%d)\n",
		ln.Addr(), srv.Workers(), srv.MaxPending(), srv.MaxPendingPerTenant())

	select {
	case sig := <-sigs:
		fmt.Fprintf(stdout, "assembled: received %v, draining (grace %v, %d pending)\n",
			sig, *drainTO, srv.Pending())
	case err := <-serveErr:
		fmt.Fprintln(stderr, "assembled:", err)
		return exitRuntime
	}

	// Stop admitting first so late POSTs get 503 instead of racing the
	// listener teardown, then let in-flight jobs finish inside the grace
	// period, then shut the HTTP server down.
	srv.BeginDrain()
	dctx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	stats := srv.Drain(dctx)
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(stderr, "assembled: shutdown:", err)
	}
	fmt.Fprintf(stdout, "assembled: drained (%s)\n", stats)
	return exitOK
}
