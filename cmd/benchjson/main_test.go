package main

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"
)

// TestParseLine covers the happy paths: standard -bench output, -benchmem
// columns, custom ReportMetric units, and GOMAXPROCS-suffix stripping.
func TestParseLine(t *testing.T) {
	cases := []struct {
		name    string
		line    string
		want    string
		iters   int64
		metrics map[string]float64
	}{
		{
			name:    "plain",
			line:    "BenchmarkFoo-8   1234   5678 ns/op",
			want:    "BenchmarkFoo",
			iters:   1234,
			metrics: map[string]float64{"ns/op": 5678},
		},
		{
			name:    "benchmem",
			line:    "BenchmarkBar-16  10  250 ns/op  90 B/op  2 allocs/op",
			want:    "BenchmarkBar",
			iters:   10,
			metrics: map[string]float64{"ns/op": 250, "B/op": 90, "allocs/op": 2},
		},
		{
			name:    "custom-report-metric-units",
			line:    "BenchmarkFig9Assembly/k16-8  3  1e+07 ns/op  118.2 P-A-s  12.5 speedup-vs-GPU  6.4 P-A-W",
			want:    "BenchmarkFig9Assembly/k16",
			iters:   3,
			metrics: map[string]float64{"ns/op": 1e7, "P-A-s": 118.2, "speedup-vs-GPU": 12.5, "P-A-W": 6.4},
		},
		{
			name:    "no-gomaxprocs-suffix",
			line:    "BenchmarkBaz  7  99 ns/op",
			want:    "BenchmarkBaz",
			iters:   7,
			metrics: map[string]float64{"ns/op": 99},
		},
		{
			name:    "non-numeric-suffix-kept",
			line:    "BenchmarkQux/width-wide  7  99 ns/op",
			want:    "BenchmarkQux/width-wide",
			iters:   7,
			metrics: map[string]float64{"ns/op": 99},
		},
		{
			name:    "scientific-notation",
			line:    "BenchmarkBig-4  2  3.25e+09 ns/op",
			want:    "BenchmarkBig",
			iters:   2,
			metrics: map[string]float64{"ns/op": 3.25e9},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			name, e, ok := parseLine(tc.line)
			if !ok {
				t.Fatalf("parseLine(%q) rejected", tc.line)
			}
			if name != tc.want {
				t.Fatalf("name = %q, want %q", name, tc.want)
			}
			if e.Iterations != tc.iters {
				t.Fatalf("iterations = %d, want %d", e.Iterations, tc.iters)
			}
			if len(e.Metrics) != len(tc.metrics) {
				t.Fatalf("metrics = %v, want %v", e.Metrics, tc.metrics)
			}
			for unit, v := range tc.metrics {
				if got := e.Metrics[unit]; math.Abs(got-v) > 1e-9*math.Abs(v) {
					t.Fatalf("metric %s = %v, want %v", unit, got, v)
				}
			}
		})
	}
}

// TestParseLineMalformed covers every rejection path.
func TestParseLineMalformed(t *testing.T) {
	cases := map[string]string{
		"too-few-fields":       "BenchmarkFoo-8 1234",
		"odd-field-count":      "BenchmarkFoo-8 1234 5678 ns/op trailing",
		"non-integer-iters":    "BenchmarkFoo-8 fast 5678 ns/op",
		"non-numeric-metric":   "BenchmarkFoo-8 1234 quick ns/op",
		"non-numeric-trailing": "BenchmarkFoo-8 1234 5678 ns/op nine B/op",
		"empty":                "",
	}
	for name, line := range cases {
		t.Run(name, func(t *testing.T) {
			if got, _, ok := parseLine(line); ok {
				t.Fatalf("parseLine(%q) accepted as %q", line, got)
			}
		})
	}
}

// TestParseStream pins the full stream path: non-benchmark chatter is
// ignored, malformed Benchmark lines warn and are skipped, parsed entries
// land keyed by stripped name.
func TestParseStream(t *testing.T) {
	input := strings.Join([]string{
		"goos: linux",
		"goarch: amd64",
		"pkg: pimassembler",
		"BenchmarkGood-8   100   42 ns/op",
		"BenchmarkBroken-8 banana 42 ns/op",
		"PASS",
		"ok  	pimassembler	1.234s",
	}, "\n")
	var warn bytes.Buffer
	results, err := parse(strings.NewReader(input), &warn)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("results = %v, want 1 entry", results)
	}
	e, ok := results["BenchmarkGood"]
	if !ok || e.Iterations != 100 || e.Metrics["ns/op"] != 42 {
		t.Fatalf("BenchmarkGood = %+v ok=%v", e, ok)
	}
	if !strings.Contains(warn.String(), "skipping malformed line") {
		t.Fatalf("no malformed-line warning: %q", warn.String())
	}
}

// TestParseHugeLines probes the scanner buffer: a benchmark line just under
// the 1 MiB cap parses, and one beyond it surfaces as an error rather than
// silent truncation.
func TestParseHugeLines(t *testing.T) {
	// A valid line padded to ~maxLine-64 bytes with extra metric pairs.
	var sb strings.Builder
	sb.WriteString("BenchmarkHuge-8 1 10 ns/op")
	n := 0
	for sb.Len() < maxLine-64 {
		n++
		sb.WriteString(fmt.Sprintf(" %d unit%d/op", n, n))
	}
	okLine := sb.String()
	results, err := parse(strings.NewReader(okLine+"\n"), &bytes.Buffer{})
	if err != nil {
		t.Fatalf("near-cap line failed: %v", err)
	}
	e := results["BenchmarkHuge"]
	if e.Iterations != 1 || len(e.Metrics) != n+1 {
		t.Fatalf("near-cap line parsed %d metrics, want %d", len(e.Metrics), n+1)
	}

	over := "BenchmarkOver-8 1 10 ns/op " + strings.Repeat("x", maxLine+1)
	if _, err := parse(strings.NewReader(over), &bytes.Buffer{}); err == nil {
		t.Fatal("over-cap line did not error")
	}
}
