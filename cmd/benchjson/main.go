// Command benchjson converts `go test -bench` output on stdin into a JSON
// document on stdout: one object per benchmark, keyed by benchmark name,
// holding the iteration count and every reported value/unit pair (ns/op,
// B/op, allocs/op, custom ReportMetric units). The bench Makefile target
// pipes through it to produce the tracked BENCH_PR*.json artefacts.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// entry is one parsed benchmark result line.
type entry struct {
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// maxLine bounds one benchmark output line (names and metric lists are
// small; 1 MiB leaves enormous headroom).
const maxLine = 1 << 20

func main() {
	results, err := parse(os.Stdin, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	// encoding/json emits map keys sorted, so the document is stable.
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse reads `go test -bench` output and collects every benchmark line.
// Malformed Benchmark lines are skipped with a note on warnw; a scanner
// failure (e.g. a line beyond maxLine) is an error.
func parse(r io.Reader, warnw io.Writer) (map[string]entry, error) {
	results := make(map[string]entry)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, maxLine), maxLine)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		name, e, ok := parseLine(line)
		if !ok {
			fmt.Fprintf(warnw, "benchjson: skipping malformed line: %s\n", line)
			continue
		}
		results[name] = e
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// parseLine parses one result line of the form
//
//	BenchmarkName-8   1234   5678 ns/op   90 B/op   2 allocs/op
//
// The trailing -N GOMAXPROCS suffix is stripped from the name so results
// compare across machines.
func parseLine(line string) (string, entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return "", entry{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", entry{}, false
	}
	e := entry{Iterations: iters, Metrics: make(map[string]float64)}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", entry{}, false
		}
		e.Metrics[fields[i+1]] = v
	}
	return name, e, true
}
