// Command servicesmoke is the CI smoke test for the assembled daemon, run
// by `make service-smoke`. It builds the real binaries, boots assembled on
// a random port, drives one job over the wire, and pins the daemon's three
// external contracts:
//
//  1. the contig FASTA served by /v1/jobs/{id}/contigs is byte-identical
//     to what cmd/assemble writes for the same reads,
//  2. /metrics parses as strict Prometheus text exposition and carries the
//     queue counters,
//  3. SIGTERM drains cleanly: the process logs the drain and exits 0.
//
// Exit code 0 when every check passes, 1 otherwise.
package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sync"
	"syscall"
	"time"

	"pimassembler/internal/genome"
	"pimassembler/internal/service"
	"pimassembler/internal/stats"
)

func main() {
	if err := smoke(); err != nil {
		fmt.Fprintln(os.Stderr, "service-smoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("service-smoke: OK")
}

// lockedBuffer collects subprocess stdout safely across goroutines.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenRE = regexp.MustCompile(`listening on (http://[^ ]+)`)

func smoke() error {
	dir, err := os.MkdirTemp("", "servicesmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// Build the two real binaries exactly as a release would.
	assembled := filepath.Join(dir, "assembled")
	assemble := filepath.Join(dir, "assemble")
	for pkg, bin := range map[string]string{"./cmd/assembled": assembled, "./cmd/assemble": assemble} {
		cmd := exec.Command("go", "build", "-o", bin, pkg)
		if out, err := cmd.CombinedOutput(); err != nil {
			return fmt.Errorf("go build %s: %v\n%s", pkg, err, out)
		}
	}

	// Deterministic workload shared by both paths.
	readsPath := filepath.Join(dir, "reads.fasta")
	readsText, err := writeReads(readsPath, 99, 2500, 150)
	if err != nil {
		return err
	}

	// Boot the daemon on a random port and scrape the resolved address.
	stdout := &lockedBuffer{}
	daemon := exec.Command(assembled, "-addr", "127.0.0.1:0", "-workers", "2", "-drain-timeout", "30s")
	daemon.Stdout = stdout
	daemon.Stderr = os.Stderr
	if err := daemon.Start(); err != nil {
		return fmt.Errorf("start assembled: %v", err)
	}
	defer daemon.Process.Kill()
	base, err := waitForListen(stdout, 15*time.Second)
	if err != nil {
		return err
	}
	fmt.Println("service-smoke: daemon at", base)

	// One job over the wire.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	c := &service.Client{BaseURL: base, APIKey: "smoke"}
	st, err := c.Submit(ctx, service.SubmitRequest{Engine: "software", Reads: readsText, K: 16})
	if err != nil {
		return fmt.Errorf("submit: %v", err)
	}
	final, err := c.Wait(ctx, st.ID, 0)
	if err != nil {
		return fmt.Errorf("wait: %v", err)
	}
	if final.State != "done" {
		return fmt.Errorf("job finished %q (error %q), want done", final.State, final.Error)
	}
	served, err := c.Contigs(ctx, st.ID)
	if err != nil {
		return fmt.Errorf("contigs: %v", err)
	}
	fmt.Printf("service-smoke: job %s done: %d contigs, N50=%d\n", final.ID, final.Contigs, final.N50)

	// Same reads through the offline binary must yield the same bytes.
	directOut := filepath.Join(dir, "direct.fasta")
	cmd := exec.Command(assemble, "-in", readsPath, "-k", "16", "-out", directOut)
	if out, err := cmd.CombinedOutput(); err != nil {
		return fmt.Errorf("assemble: %v\n%s", err, out)
	}
	direct, err := os.ReadFile(directOut)
	if err != nil {
		return err
	}
	if !bytes.Equal(served, direct) {
		return fmt.Errorf("served contigs (%d bytes) differ from cmd/assemble output (%d bytes)",
			len(served), len(direct))
	}
	fmt.Printf("service-smoke: contigs byte-identical to cmd/assemble (%d bytes)\n", len(served))

	// Metrics must parse strictly and account for the job.
	samples, err := c.Metrics(ctx)
	if err != nil {
		return fmt.Errorf("metrics: %v", err)
	}
	if got := samples["pim_jobs_done_total"]; got != 1 {
		return fmt.Errorf("pim_jobs_done_total = %v, want 1", got)
	}
	if _, ok := samples["pim_service_pending"]; !ok {
		return fmt.Errorf("pim_service_pending gauge missing from /metrics")
	}
	fmt.Printf("service-smoke: /metrics parsed (%d samples)\n", len(samples))

	// SIGTERM must drain cleanly: exit 0 and a drain log line.
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("signal: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- daemon.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("daemon exited non-zero after SIGTERM: %v\n%s", err, stdout.String())
		}
	case <-time.After(45 * time.Second):
		return fmt.Errorf("daemon did not exit within 45s of SIGTERM\n%s", stdout.String())
	}
	if !bytes.Contains([]byte(stdout.String()), []byte("drained")) {
		return fmt.Errorf("daemon stdout missing drain log:\n%s", stdout.String())
	}
	fmt.Println("service-smoke: SIGTERM drained cleanly (exit 0)")
	return nil
}

// writeReads samples a deterministic read set, writes it to path, and
// returns the FASTA text for the HTTP submission.
func writeReads(path string, seed uint64, genomeLen, reads int) (string, error) {
	rng := stats.NewRNG(seed)
	ref := genome.GenerateGenome(genomeLen, rng)
	seqs := genome.NewReadSampler(ref, 101, 0, rng).Sample(reads)
	records := make([]genome.Record, len(seqs))
	for i, s := range seqs {
		records[i] = genome.Record{Name: fmt.Sprintf("r%d", i), Seq: s}
	}
	var buf bytes.Buffer
	if err := genome.WriteFASTA(&buf, records); err != nil {
		return "", err
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return "", err
	}
	return buf.String(), nil
}

// waitForListen polls the daemon's stdout for the listen line.
func waitForListen(stdout *lockedBuffer, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if m := listenRE.FindStringSubmatch(stdout.String()); m != nil {
			return m[1], nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return "", fmt.Errorf("daemon never printed its listen line within %v:\n%s", timeout, stdout.String())
}
