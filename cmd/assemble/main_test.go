package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pimassembler/internal/genome"
	"pimassembler/internal/stats"
)

// writeReads generates a deterministic FASTA read set for CLI tests.
func writeReads(t *testing.T, dir, name string, seed uint64, n int) string {
	t.Helper()
	rng := stats.NewRNG(seed)
	ref := genome.GenerateGenome(2_000, rng)
	reads := genome.NewReadSampler(ref, 101, 0, rng).Sample(n)
	records := make([]genome.Record, len(reads))
	for i, r := range reads {
		records[i] = genome.Record{Name: fmt.Sprintf("read_%d", i), Seq: r}
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := genome.WriteFASTA(f, records); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunExitCodes is the flag-error regression table: every failure path
// returns the documented exit code with a one-line stderr message.
func TestRunExitCodes(t *testing.T) {
	dir := t.TempDir()
	readsPath := writeReads(t, dir, "reads.fasta", 41, 80)
	badManifest := filepath.Join(dir, "bad.manifest")
	if err := os.WriteFile(badManifest, []byte(readsPath+" software k=notanint\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	emptyManifest := filepath.Join(dir, "empty.manifest")
	if err := os.WriteFile(emptyManifest, []byte("# only a comment\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		args   []string
		code   int
		stderr string // required substring of stderr ("" = no requirement)
	}{
		{"no-input", []string{}, exitUsage, "-in is required"},
		{"bad-flag", []string{"-no-such-flag"}, exitUsage, "flag provided but not defined"},
		{"bad-flag-value", []string{"-k", "banana"}, exitUsage, "invalid value"},
		{"unknown-engine", []string{"-in", readsPath, "-engine", "warp-drive"}, exitUsage, "unknown engine"},
		{"missing-input-file", []string{"-in", filepath.Join(dir, "nope.fasta")}, exitRuntime, "no such file"},
		{"batch-and-in", []string{"-batch", emptyManifest, "-in", readsPath}, exitUsage, "mutually exclusive"},
		{"batch-missing-manifest", []string{"-batch", filepath.Join(dir, "nope.manifest")}, exitUsage, "no such file"},
		{"batch-malformed-manifest", []string{"-batch", badManifest}, exitUsage, "k:"},
		{"batch-empty-manifest", []string{"-batch", emptyManifest}, exitUsage, "holds no jobs"},
		{"batch-and-shards", []string{"-batch", emptyManifest, "-shards", "2"}, exitUsage, "mutually exclusive"},
		{"shard-engines-without-shards", []string{"-in", readsPath, "-shard-engines", "software,pim"}, exitUsage, "requires -shards"},
		{"unknown-shard-engine", []string{"-in", readsPath, "-shards", "2", "-shard-engines", "software,warp-drive"}, exitUsage, "unknown engine"},
		{"spill-without-shards", []string{"-in", readsPath, "-spill-dir", dir}, exitUsage, "-spill-dir requires -shards"},
		{"max-resident-without-spill", []string{"-in", readsPath, "-shards", "2", "-max-resident-reads", "64"}, exitUsage, "requires -spill-dir"},
		{"spill-and-paired", []string{"-in", readsPath, "-shards", "2", "-spill-dir", dir, "-paired"}, exitUsage, "mutually exclusive"},
		{"batch-and-spill", []string{"-batch", emptyManifest, "-spill-dir", dir}, exitUsage, "mutually exclusive"},
		{"spill-missing-input", []string{"-in", filepath.Join(dir, "nope.fasta"), "-shards", "2", "-spill-dir", dir}, exitRuntime, "no such file"},
		{"list-engines", []string{"-list-engines"}, exitOK, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.args, &stdout, &stderr)
			if code != tc.code {
				t.Fatalf("exit code = %d, want %d (stderr: %s)", code, tc.code, stderr.String())
			}
			if tc.stderr != "" && !strings.Contains(stderr.String(), tc.stderr) {
				t.Fatalf("stderr %q lacks %q", stderr.String(), tc.stderr)
			}
		})
	}
}

// TestRunSingleJob pins the single-run happy path end to end.
func TestRunSingleJob(t *testing.T) {
	dir := t.TempDir()
	readsPath := writeReads(t, dir, "reads.fasta", 42, 120)
	outPath := filepath.Join(dir, "contigs.fasta")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-in", readsPath, "-out", outPath, "-k", "16"}, &stdout, &stderr)
	if code != exitOK {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "assembled 120 reads") {
		t.Fatalf("stdout lacks summary: %s", stdout.String())
	}
	if _, err := os.Stat(outPath); err != nil {
		t.Fatalf("contigs not written: %v", err)
	}
}

// TestRunSharded pins the sharded CLI mode: `-shards 1` output is
// byte-identical to an unsharded run (stdout and the contigs file), and a
// multi-shard multi-engine run merges to the same contigs.
func TestRunSharded(t *testing.T) {
	dir := t.TempDir()
	readsPath := writeReads(t, dir, "reads.fasta", 61, 150)

	runOnce := func(extra ...string) (string, string) {
		t.Helper()
		outPath := filepath.Join(dir, "contigs.fasta")
		var stdout, stderr bytes.Buffer
		args := append([]string{"-in", readsPath, "-out", outPath, "-k", "16"}, extra...)
		if code := run(args, &stdout, &stderr); code != exitOK {
			t.Fatalf("args %v: exit code = %d, stderr: %s", extra, code, stderr.String())
		}
		contigs, err := os.ReadFile(outPath)
		if err != nil {
			t.Fatal(err)
		}
		return stdout.String(), string(contigs)
	}

	baseOut, baseContigs := runOnce()
	oneOut, oneContigs := runOnce("-shards", "1")
	// The per-stage wall-clock line differs between any two runs; everything
	// else must be byte-identical.
	if stripClocks(oneOut) != stripClocks(baseOut) {
		t.Errorf("-shards 1 stdout differs from unsharded:\n--- unsharded\n%s--- shards=1\n%s", baseOut, oneOut)
	}
	if oneContigs != baseContigs {
		t.Error("-shards 1 contigs file differs from unsharded")
	}

	// Multi-shard runs merge to the same contig sequences; only the cov=
	// header field differs (merged coverage counts shard multiplicity, not
	// read depth — the documented limitation).
	for _, args := range [][]string{
		{"-shards", "3"},
		{"-shards", "4", "-shard-engines", "software,pim"},
	} {
		out, contigs := runOnce(args...)
		if seqLines(contigs) != seqLines(baseContigs) {
			t.Errorf("args %v: merged contig sequences differ from unsharded", args)
		}
		if !strings.Contains(out, "sharded run:") {
			t.Errorf("args %v: stdout lacks the shard breakdown:\n%s", args, out)
		}
		if !strings.Contains(out, "assembled 150 reads") {
			t.Errorf("args %v: stdout lacks the summary tail:\n%s", args, out)
		}
	}
}

// TestRunSpill pins the out-of-core CLI mode: `-spill-dir` produces contig
// sequences identical to both the in-memory sharded run and the unsharded
// run (with a resident cap far below the read count), prints the
// deterministic out-of-core summary, and leaves no spill files behind.
func TestRunSpill(t *testing.T) {
	dir := t.TempDir()
	readsPath := writeReads(t, dir, "reads.fasta", 67, 160)
	spillParent := filepath.Join(dir, "spill")

	runOnce := func(extra ...string) (string, string) {
		t.Helper()
		outPath := filepath.Join(dir, "contigs.fasta")
		var stdout, stderr bytes.Buffer
		args := append([]string{"-in", readsPath, "-out", outPath, "-k", "16"}, extra...)
		if code := run(args, &stdout, &stderr); code != exitOK {
			t.Fatalf("args %v: exit code = %d, stderr: %s", extra, code, stderr.String())
		}
		contigs, err := os.ReadFile(outPath)
		if err != nil {
			t.Fatal(err)
		}
		return stdout.String(), string(contigs)
	}

	_, baseContigs := runOnce()
	for _, shardsN := range []string{"1", "3", "4"} {
		_, memContigs := runOnce("-shards", shardsN)
		out, spillContigs := runOnce("-shards", shardsN, "-spill-dir", spillParent, "-max-resident-reads", "40")
		if seqLines(spillContigs) != seqLines(baseContigs) {
			t.Errorf("shards=%s: spill contig sequences differ from unsharded", shardsN)
		}
		// Sequences match the in-memory sharded run exactly; the cov= header
		// field may differ for N > 1 because merged coverage counts shard
		// multiplicity and round-robin shapes shards differently than the
		// contiguous Split (the E17-documented limitation). A single shard
		// holds all reads either way, so there the files are byte-identical.
		if seqLines(spillContigs) != seqLines(memContigs) {
			t.Errorf("shards=%s: spill contig sequences differ from the in-memory sharded run", shardsN)
		}
		if shardsN == "1" && spillContigs != memContigs {
			t.Errorf("shards=1: spill contigs file differs byte-for-byte from the in-memory run")
		}
		if !strings.Contains(out, "out-of-core: 160 reads -> "+shardsN+" spill files") {
			t.Errorf("shards=%s: stdout lacks the out-of-core summary:\n%s", shardsN, out)
		}
		if !strings.Contains(out, "resident cap 40 reads") {
			t.Errorf("shards=%s: stdout lacks the resident cap:\n%s", shardsN, out)
		}
		if !strings.Contains(out, "assembled 160 reads") {
			t.Errorf("shards=%s: stdout lacks the summary tail:\n%s", shardsN, out)
		}
	}

	// Every run removed its private spill directory on exit.
	ents, err := os.ReadDir(spillParent)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Errorf("spill directories leaked: %v", ents)
	}
}

// TestRunCountWorkers pins the parallel-counting flag: `-count-workers N`
// is a pure perf knob, so stdout (modulo the wall-clock line) and the
// contigs file are byte-identical to the serial run for any N.
func TestRunCountWorkers(t *testing.T) {
	dir := t.TempDir()
	readsPath := writeReads(t, dir, "reads.fasta", 77, 130)

	runOnce := func(extra ...string) (string, string) {
		t.Helper()
		outPath := filepath.Join(dir, "contigs.fasta")
		var stdout, stderr bytes.Buffer
		args := append([]string{"-in", readsPath, "-out", outPath, "-k", "16"}, extra...)
		if code := run(args, &stdout, &stderr); code != exitOK {
			t.Fatalf("args %v: exit code = %d, stderr: %s", extra, code, stderr.String())
		}
		contigs, err := os.ReadFile(outPath)
		if err != nil {
			t.Fatal(err)
		}
		return stdout.String(), string(contigs)
	}

	baseOut, baseContigs := runOnce()
	for _, workers := range []string{"2", "4"} {
		out, contigs := runOnce("-count-workers", workers)
		if stripClocks(out) != stripClocks(baseOut) {
			t.Errorf("-count-workers %s stdout differs from serial:\n--- serial\n%s--- parallel\n%s", workers, baseOut, out)
		}
		if contigs != baseContigs {
			t.Errorf("-count-workers %s contigs file differs from serial", workers)
		}
	}
}

// stripClocks drops the wall-clock timing line from a run's stdout.
func stripClocks(out string) string {
	var b strings.Builder
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "software pipeline:") {
			continue
		}
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return b.String()
}

// seqLines strips the FASTA headers, keeping only the sequence lines.
func seqLines(fasta string) string {
	var b strings.Builder
	for _, line := range strings.Split(fasta, "\n") {
		if !strings.HasPrefix(line, ">") {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// TestRunBatchDeterministic pins the batch mode: the per-job stdout summary
// is byte-identical for any worker count, and a failing job flips the exit
// code without poisoning the rest.
func TestRunBatchDeterministic(t *testing.T) {
	dir := t.TempDir()
	a := writeReads(t, dir, "a.fasta", 51, 100)
	b := writeReads(t, dir, "b.fasta", 52, 80)
	manifest := filepath.Join(dir, "jobs.manifest")
	content := fmt.Sprintf("# mixed-engine batch\n%s software\n%s pim subarrays=16\n%s drisa-3t1c k=18\n%s software k=20\n", a, b, a, b)
	if err := os.WriteFile(manifest, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}

	var baseline string
	for _, workers := range []string{"1", "4"} {
		var stdout, stderr bytes.Buffer
		code := run([]string{"-batch", manifest, "-workers", workers}, &stdout, &stderr)
		if code != exitOK {
			t.Fatalf("workers=%s: exit code = %d, stderr: %s", workers, code, stderr.String())
		}
		got := stdout.String()
		for _, want := range []string{"batch: 4 jobs", "job 0:", "job 3:", "state=done", "analytical:", "functional:"} {
			if !strings.Contains(got, want) {
				t.Fatalf("workers=%s: stdout lacks %q:\n%s", workers, want, got)
			}
		}
		if !strings.Contains(stderr.String(), "jobs.done") {
			t.Fatalf("workers=%s: stderr lacks queue statistics: %s", workers, stderr.String())
		}
		// Strip the worker-count header: the per-job body must be identical.
		body := got[strings.Index(got, "\n")+1:]
		if baseline == "" {
			baseline = body
		} else if body != baseline {
			t.Fatalf("batch output differs between worker counts:\n--- workers=1\n%s--- workers=%s\n%s", baseline, workers, body)
		}
	}

	// A job with an unknown engine fails that job only.
	badManifest := filepath.Join(dir, "partial.manifest")
	if err := os.WriteFile(badManifest, []byte(fmt.Sprintf("%s software\n%s warp-drive\n", a, b)), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-batch", badManifest}, &stdout, &stderr)
	if code != exitRuntime {
		t.Fatalf("partial failure exit code = %d, want %d", code, exitRuntime)
	}
	out := stdout.String()
	if !strings.Contains(out, "state=done") || !strings.Contains(out, "state=failed") {
		t.Fatalf("partial failure output:\n%s", out)
	}
}
