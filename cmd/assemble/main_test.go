package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pimassembler/internal/genome"
	"pimassembler/internal/stats"
)

// writeReads generates a deterministic FASTA read set for CLI tests.
func writeReads(t *testing.T, dir, name string, seed uint64, n int) string {
	t.Helper()
	rng := stats.NewRNG(seed)
	ref := genome.GenerateGenome(2_000, rng)
	reads := genome.NewReadSampler(ref, 101, 0, rng).Sample(n)
	records := make([]genome.Record, len(reads))
	for i, r := range reads {
		records[i] = genome.Record{Name: fmt.Sprintf("read_%d", i), Seq: r}
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := genome.WriteFASTA(f, records); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunExitCodes is the flag-error regression table: every failure path
// returns the documented exit code with a one-line stderr message.
func TestRunExitCodes(t *testing.T) {
	dir := t.TempDir()
	readsPath := writeReads(t, dir, "reads.fasta", 41, 80)
	badManifest := filepath.Join(dir, "bad.manifest")
	if err := os.WriteFile(badManifest, []byte(readsPath+" software k=notanint\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	emptyManifest := filepath.Join(dir, "empty.manifest")
	if err := os.WriteFile(emptyManifest, []byte("# only a comment\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		args   []string
		code   int
		stderr string // required substring of stderr ("" = no requirement)
	}{
		{"no-input", []string{}, exitUsage, "-in is required"},
		{"bad-flag", []string{"-no-such-flag"}, exitUsage, "flag provided but not defined"},
		{"bad-flag-value", []string{"-k", "banana"}, exitUsage, "invalid value"},
		{"unknown-engine", []string{"-in", readsPath, "-engine", "warp-drive"}, exitUsage, "unknown engine"},
		{"missing-input-file", []string{"-in", filepath.Join(dir, "nope.fasta")}, exitRuntime, "no such file"},
		{"batch-and-in", []string{"-batch", emptyManifest, "-in", readsPath}, exitUsage, "mutually exclusive"},
		{"batch-missing-manifest", []string{"-batch", filepath.Join(dir, "nope.manifest")}, exitUsage, "no such file"},
		{"batch-malformed-manifest", []string{"-batch", badManifest}, exitUsage, "k:"},
		{"batch-empty-manifest", []string{"-batch", emptyManifest}, exitUsage, "holds no jobs"},
		{"list-engines", []string{"-list-engines"}, exitOK, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.args, &stdout, &stderr)
			if code != tc.code {
				t.Fatalf("exit code = %d, want %d (stderr: %s)", code, tc.code, stderr.String())
			}
			if tc.stderr != "" && !strings.Contains(stderr.String(), tc.stderr) {
				t.Fatalf("stderr %q lacks %q", stderr.String(), tc.stderr)
			}
		})
	}
}

// TestRunSingleJob pins the single-run happy path end to end.
func TestRunSingleJob(t *testing.T) {
	dir := t.TempDir()
	readsPath := writeReads(t, dir, "reads.fasta", 42, 120)
	outPath := filepath.Join(dir, "contigs.fasta")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-in", readsPath, "-out", outPath, "-k", "16"}, &stdout, &stderr)
	if code != exitOK {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "assembled 120 reads") {
		t.Fatalf("stdout lacks summary: %s", stdout.String())
	}
	if _, err := os.Stat(outPath); err != nil {
		t.Fatalf("contigs not written: %v", err)
	}
}

// TestRunBatchDeterministic pins the batch mode: the per-job stdout summary
// is byte-identical for any worker count, and a failing job flips the exit
// code without poisoning the rest.
func TestRunBatchDeterministic(t *testing.T) {
	dir := t.TempDir()
	a := writeReads(t, dir, "a.fasta", 51, 100)
	b := writeReads(t, dir, "b.fasta", 52, 80)
	manifest := filepath.Join(dir, "jobs.manifest")
	content := fmt.Sprintf("# mixed-engine batch\n%s software\n%s pim subarrays=16\n%s drisa-3t1c k=18\n%s software k=20\n", a, b, a, b)
	if err := os.WriteFile(manifest, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}

	var baseline string
	for _, workers := range []string{"1", "4"} {
		var stdout, stderr bytes.Buffer
		code := run([]string{"-batch", manifest, "-workers", workers}, &stdout, &stderr)
		if code != exitOK {
			t.Fatalf("workers=%s: exit code = %d, stderr: %s", workers, code, stderr.String())
		}
		got := stdout.String()
		for _, want := range []string{"batch: 4 jobs", "job 0:", "job 3:", "state=done", "analytical:", "functional:"} {
			if !strings.Contains(got, want) {
				t.Fatalf("workers=%s: stdout lacks %q:\n%s", workers, want, got)
			}
		}
		if !strings.Contains(stderr.String(), "jobs.done") {
			t.Fatalf("workers=%s: stderr lacks queue statistics: %s", workers, stderr.String())
		}
		// Strip the worker-count header: the per-job body must be identical.
		body := got[strings.Index(got, "\n")+1:]
		if baseline == "" {
			baseline = body
		} else if body != baseline {
			t.Fatalf("batch output differs between worker counts:\n--- workers=1\n%s--- workers=%s\n%s", baseline, workers, body)
		}
	}

	// A job with an unknown engine fails that job only.
	badManifest := filepath.Join(dir, "partial.manifest")
	if err := os.WriteFile(badManifest, []byte(fmt.Sprintf("%s software\n%s warp-drive\n", a, b)), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-batch", badManifest}, &stdout, &stderr)
	if code != exitRuntime {
		t.Fatalf("partial failure exit code = %d, want %d", code, exitRuntime)
	}
	out := stdout.String()
	if !strings.Contains(out, "state=done") || !strings.Contains(out, "state=failed") {
		t.Fatalf("partial failure output:\n%s", out)
	}
}
