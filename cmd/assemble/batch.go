package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"pimassembler/internal/debruijn"
	"pimassembler/internal/engine"
	"pimassembler/internal/genome"
	"pimassembler/internal/jobqueue"
	"pimassembler/internal/metrics"
)

// runBatch executes a manifest of assembly jobs through the concurrent job
// queue and prints one unified Report summary per job, in manifest order.
// The stdout summary is deterministic for any worker count; the wall-clock
// queue statistics go to stderr. Returns exitOK only when every job is
// done.
func runBatch(path, defaultEngine string, defaults engine.Options, workers int, stdout, stderr io.Writer) int {
	specs, err := loadManifest(path, defaultEngine, defaults)
	if err != nil {
		fmt.Fprintln(stderr, "assemble:", err)
		return exitUsage
	}
	if len(specs) == 0 {
		fmt.Fprintf(stderr, "assemble: manifest %s holds no jobs\n", path)
		return exitUsage
	}

	counters := metrics.NewCounters()
	q := jobqueue.New(engine.Default(),
		jobqueue.WithWorkers(workers),
		jobqueue.WithCounters(counters))
	fmt.Fprintf(stdout, "batch: %d jobs on %d workers\n", len(specs), q.Workers())
	results := q.Run(context.Background(), specs)

	code := exitOK
	for _, r := range results {
		printJob(stdout, r)
		if r.State != jobqueue.StateDone {
			code = exitRuntime
		}
	}
	fmt.Fprintf(stderr, "queue statistics (wall clock):\n%s", counters)
	return code
}

// loadManifest parses the batch manifest: one job per line,
//
//	<input-path> <engine> [k=N] [mincount=N] [subarrays=N] [timeout=DUR] [retries=N] [backoff=DUR]
//
// with '#' starting a comment. Per-job keys override the command-line
// defaults; the reads load eagerly so a bad path fails the whole batch
// before anything runs.
func loadManifest(path, defaultEngine string, defaults engine.Options) ([]jobqueue.Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	var specs []jobqueue.Spec
	sc := bufio.NewScanner(f)
	for lineNo := 1; sc.Scan(); lineNo++ {
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		spec, err := parseManifestJob(fields, defaultEngine, defaults)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, lineNo, err)
		}
		specs = append(specs, spec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return specs, nil
}

// parseManifestJob builds one job spec from its manifest fields.
func parseManifestJob(fields []string, defaultEngine string, defaults engine.Options) (jobqueue.Spec, error) {
	input := fields[0]
	spec := jobqueue.Spec{Name: input, Engine: defaultEngine, Opts: defaults}
	if len(fields) > 1 {
		spec.Engine = fields[1]
	}
	for _, kv := range fields[2:] {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return spec, fmt.Errorf("malformed option %q (want key=value)", kv)
		}
		switch key {
		case "k":
			n, err := strconv.Atoi(val)
			if err != nil {
				return spec, fmt.Errorf("k: %w", err)
			}
			spec.Opts.K = n
			spec.Opts.MinOverlap = n - 4
		case "mincount":
			n, err := strconv.ParseUint(val, 10, 32)
			if err != nil {
				return spec, fmt.Errorf("mincount: %w", err)
			}
			spec.Opts.MinCount = uint32(n)
		case "subarrays":
			n, err := strconv.Atoi(val)
			if err != nil {
				return spec, fmt.Errorf("subarrays: %w", err)
			}
			spec.Opts.Subarrays = n
		case "timeout":
			d, err := time.ParseDuration(val)
			if err != nil {
				return spec, fmt.Errorf("timeout: %w", err)
			}
			spec.Timeout = d
		case "retries":
			n, err := strconv.Atoi(val)
			if err != nil {
				return spec, fmt.Errorf("retries: %w", err)
			}
			spec.Retry.MaxAttempts = n + 1 // n retries after the first attempt
		case "backoff":
			d, err := time.ParseDuration(val)
			if err != nil {
				return spec, fmt.Errorf("backoff: %w", err)
			}
			spec.Retry.Backoff = d
		default:
			return spec, fmt.Errorf("unknown option %q", key)
		}
	}
	if spec.Retry.MaxAttempts > 1 && spec.Retry.Backoff == 0 {
		spec.Retry.Backoff = 100 * time.Millisecond
	}
	reads, err := loadReads(input)
	if err != nil {
		return spec, err
	}
	spec.Source = genome.NewSliceSource(reads)
	return spec, nil
}

// printJob writes one job's unified Report summary. Only deterministic
// quantities are printed (no wall clocks), so a fixed manifest renders
// byte-identically for any worker count.
func printJob(w io.Writer, r jobqueue.Result) {
	head := fmt.Sprintf("job %d: %s engine=%s k=%d state=%s",
		r.Slot, r.Spec.Name, r.Spec.Engine, r.Spec.Opts.K, r.State)
	if r.State != jobqueue.StateDone {
		fmt.Fprintf(w, "%s attempts=%d err=%v\n", head, r.Attempts, r.Err)
		return
	}
	rep := r.Report
	fmt.Fprintf(w, "%s contigs=%d bases=%d N50=%d\n",
		head, len(rep.Contigs), debruijn.TotalBases(rep.Contigs), debruijn.N50(rep.Contigs))
	switch {
	case rep.Functional != nil:
		s := rep.Functional
		fmt.Fprintf(w, "  functional: %d commands, %.2f ms serial, makespan %.2f ms, %.2f µJ\n",
			s.Commands, s.SerialLatencyNS/1e6, s.Makespan.MakespanNS/1e6, s.EnergyPJ/1e6)
	case rep.Cost != nil:
		fmt.Fprintf(w, "  analytical: %s\n", rep.Cost)
	}
	if rep.Quality != nil {
		fmt.Fprintf(w, "  quality: %s\n", rep.Quality)
	}
}
