// Command assemble runs the end-to-end genome assembler: FASTA/FASTQ reads
// in, contigs out, with a choice of engine — the software reference pipeline
// or the functional PIM simulation (every k-mer comparison and counter
// update executed on the simulated sub-arrays) — and per-platform latency
// and power estimates for the workload.
//
// Usage:
//
//	assemble -in reads.fasta -k 16 -out contigs.fasta [-engine pim] [-scaffold] [-estimate]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pimassembler/internal/assembly"
	"pimassembler/internal/core"
	"pimassembler/internal/debruijn"
	"pimassembler/internal/genome"
	"pimassembler/internal/metrics"
	workerpool "pimassembler/internal/parallel"
	"pimassembler/internal/perfmodel"
	"pimassembler/internal/platforms"
)

func main() {
	var (
		in       = flag.String("in", "", "input reads (FASTA or FASTQ by extension)")
		out      = flag.String("out", "contigs.fasta", "output contigs FASTA")
		k        = flag.Int("k", 16, "k-mer length (paper sweeps 16, 22, 26, 32)")
		minCount = flag.Uint("mincount", 0, "drop k-mers observed fewer times")
		engine   = flag.String("engine", "software", "assembly engine: software | pim")
		nsub     = flag.Int("subarrays", 16, "PIM engine: sub-arrays for the hash table")
		parallel = flag.Bool("parallel", false, "PIM engine: shard stage 1 across hash sub-arrays (bit-identical)")
		scaffold = flag.Bool("scaffold", false, "run stage 3 (greedy scaffolding)")
		simplify = flag.Bool("simplify", false, "run Velvet-style tip/bubble removal after graph construction")
		correctF = flag.Bool("correct", false, "run k-mer-spectrum read correction before counting")
		estimate = flag.Bool("estimate", false, "print per-platform latency/power estimates")
		refPath  = flag.String("ref", "", "optional reference FASTA for quality metrics")
		paired   = flag.Bool("paired", false, "treat input as interleaved paired-end reads and run mate-pair scaffolding")
		insert   = flag.Int("insert", 400, "paired mode: mean library insert size")
		workers  = flag.Int("workers", 0, "worker count for parallel simulator stages (0 = GOMAXPROCS); results are bit-identical for any value")
	)
	flag.Parse()
	workerpool.SetWorkers(*workers)
	if *in == "" {
		fmt.Fprintln(os.Stderr, "assemble: -in is required")
		flag.Usage()
		os.Exit(2)
	}

	reads, err := loadReads(*in)
	if err != nil {
		fail(err)
	}
	var pairs []genome.ReadPair
	if *paired {
		if len(reads)%2 != 0 {
			fail(fmt.Errorf("paired mode needs an even read count, got %d", len(reads)))
		}
		for i := 0; i+1 < len(reads); i += 2 {
			pairs = append(pairs, genome.ReadPair{R1: reads[i], R2: reads[i+1]})
		}
		reads = genome.Flatten(pairs)
	}
	opts := assembly.Options{
		K:              *k,
		MinCount:       uint32(*minCount),
		Scaffold:       *scaffold,
		Simplify:       *simplify,
		Correct:        *correctF,
		MinOverlap:     *k - 4,
		ParallelStage1: *parallel,
	}

	var (
		contigs []debruijn.Contig
		res     *assembly.Result
	)
	switch *engine {
	case "software":
		res, err = assembly.Assemble(reads, opts)
		if err != nil {
			fail(err)
		}
		contigs = res.Contigs
		fmt.Printf("software pipeline: hashmap %v, deBruijn %v, traverse %v\n",
			res.Timings.Hashmap, res.Timings.DeBruijn, res.Timings.Traverse)
	case "pim":
		p := core.NewDefaultPlatform()
		pres, err := assembly.AssemblePIM(p, reads, opts, *nsub)
		if err != nil {
			fail(err)
		}
		contigs = pres.Contigs
		m := p.Meter()
		mode := "serial stage 1"
		if *parallel {
			mode = "sharded stage 1"
		}
		fmt.Printf("PIM functional run (%s): %d commands, %.2f ms serial command time, %.2f µJ array energy\n",
			mode, m.TotalCommands(), m.LatencyNS/1e6, m.EnergyPJ/1e6)
		est := p.ParallelEstimate()
		fmt.Printf("scheduled makespan: %.2f ms (%.1fx overlap across %d sub-arrays)\n",
			est.MakespanNS/1e6, est.Speedup, p.MaterializedSubarrays())
		fmt.Println("per-stage command histogram:")
		for _, line := range strings.Split(strings.TrimRight(p.Stream().Histogram().String(), "\n"), "\n") {
			fmt.Println("  " + line)
		}
		stages := p.StageEstimates()
		fmt.Println("per-stage attribution (serial cost, energy, scheduled makespan):")
		for _, c := range p.Stream().Attribute(p.Timing(), p.Energy()) {
			fmt.Printf("  %s  makespan %.1f µs\n", c, stages[c.Stage].MakespanNS/1e3)
		}
	default:
		fail(fmt.Errorf("unknown engine %q", *engine))
	}

	records := make([]genome.Record, len(contigs))
	for i, c := range contigs {
		records[i] = genome.Record{
			Name: fmt.Sprintf("contig_%d len=%d cov=%.1f", i, c.Seq.Len(), c.MeanCoverage),
			Seq:  c.Seq,
		}
	}
	f, err := os.Create(*out)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	if err := genome.WriteFASTA(f, records); err != nil {
		fail(err)
	}

	fmt.Printf("assembled %d reads (k=%d): %d contigs, %d bases, N50=%d\n",
		len(reads), *k, len(contigs), debruijn.TotalBases(contigs), debruijn.N50(contigs))
	if *paired {
		ms := assembly.MatePairScaffold(contigs, pairs, *k, *insert, 3)
		longest := 0
		for _, s := range ms {
			if len(s.Contigs) > longest {
				longest = len(s.Contigs)
			}
		}
		fmt.Printf("mate-pair scaffolding: %d contigs -> %d scaffolds (longest chain %d contigs)\n",
			len(contigs), len(ms), longest)
	}
	if *scaffold && res != nil {
		fmt.Printf("stage 3: %d scaffolds\n", len(res.Scaffolds))
	}

	if *refPath != "" {
		refRecs, err := loadRecords(*refPath)
		if err != nil {
			fail(err)
		}
		if len(refRecs) != 1 {
			fail(fmt.Errorf("reference FASTA must hold exactly one sequence, got %d", len(refRecs)))
		}
		fmt.Println("quality vs reference:", metrics.Evaluate(contigs, refRecs[0].Seq))
	}

	if *estimate && res != nil {
		fmt.Println("\nper-platform estimates for this workload (analytical models):")
		for _, s := range []platforms.Spec{platforms.GPU(), platforms.PIMAssembler(), platforms.Ambit(), platforms.DRISA3T1C(), platforms.DRISA1T1C()} {
			fmt.Println(" ", perfmodel.AssemblyCost(s, res.Counts))
		}
	}
}

func loadRecords(path string) ([]genome.Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".fastq") || strings.HasSuffix(path, ".fq") {
		return genome.ReadFASTQ(f)
	}
	return genome.ReadFASTA(f)
}

func loadReads(path string) ([]*genome.Sequence, error) {
	records, err := loadRecords(path)
	if err != nil {
		return nil, err
	}
	reads := make([]*genome.Sequence, len(records))
	for i, r := range records {
		reads[i] = r.Seq
	}
	return reads, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "assemble:", err)
	os.Exit(1)
}
