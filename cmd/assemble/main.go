// Command assemble runs the end-to-end genome assembler: FASTA/FASTQ reads
// in, contigs out, on any engine from the pluggable registry — the software
// reference pipeline, the functional PIM simulation (every k-mer comparison
// and counter update executed on the simulated sub-arrays), or one of the
// per-platform analytical estimators — plus optional per-platform latency
// and power estimates for the workload.
//
// Usage:
//
//	assemble -in reads.fasta -k 16 -out contigs.fasta [-engine pim] [-scaffold] [-estimate]
//	assemble -list-engines
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"pimassembler/internal/assembly"
	"pimassembler/internal/debruijn"
	"pimassembler/internal/engine"
	"pimassembler/internal/genome"
	workerpool "pimassembler/internal/parallel"
)

func main() {
	var (
		in         = flag.String("in", "", "input reads (FASTA or FASTQ by extension)")
		out        = flag.String("out", "contigs.fasta", "output contigs FASTA")
		k          = flag.Int("k", 16, "k-mer length (paper sweeps 16, 22, 26, 32)")
		minCount   = flag.Uint("mincount", 0, "drop k-mers observed fewer times")
		engineName = flag.String("engine", "software", "assembly engine (see -list-engines)")
		listEng    = flag.Bool("list-engines", false, "list the registered engines and exit")
		nsub       = flag.Int("subarrays", 16, "PIM engine: sub-arrays for the hash table")
		parallel   = flag.Bool("parallel", false, "PIM engine: shard stage 1 across hash sub-arrays (bit-identical)")
		scaffold   = flag.Bool("scaffold", false, "run stage 3 (greedy scaffolding)")
		simplify   = flag.Bool("simplify", false, "run Velvet-style tip/bubble removal after graph construction")
		correctF   = flag.Bool("correct", false, "run k-mer-spectrum read correction before counting")
		estimate   = flag.Bool("estimate", false, "print per-platform latency/power estimates")
		refPath    = flag.String("ref", "", "optional reference FASTA for quality metrics")
		paired     = flag.Bool("paired", false, "treat input as interleaved paired-end reads and run mate-pair scaffolding")
		insert     = flag.Int("insert", 400, "paired mode: mean library insert size")
		workers    = flag.Int("workers", 0, "worker count for parallel simulator stages (0 = GOMAXPROCS); results are bit-identical for any value")
	)
	flag.Parse()
	workerpool.SetWorkers(*workers)
	if *listEng {
		for _, e := range engine.Engines() {
			fmt.Printf("%-14s %s\n", e.Name(), e.Describe())
		}
		return
	}
	if *in == "" {
		fmt.Fprintln(os.Stderr, "assemble: -in is required")
		flag.Usage()
		os.Exit(2)
	}

	eng, err := engine.Lookup(*engineName)
	if err != nil {
		fail(err)
	}
	reads, err := loadReads(*in)
	if err != nil {
		fail(err)
	}
	var pairs []genome.ReadPair
	if *paired {
		if len(reads)%2 != 0 {
			fail(fmt.Errorf("paired mode needs an even read count, got %d", len(reads)))
		}
		for i := 0; i+1 < len(reads); i += 2 {
			pairs = append(pairs, genome.ReadPair{R1: reads[i], R2: reads[i+1]})
		}
		reads = genome.Flatten(pairs)
	}
	opts := engine.Options{
		Options: assembly.Options{
			K:              *k,
			MinCount:       uint32(*minCount),
			Scaffold:       *scaffold,
			Simplify:       *simplify,
			Correct:        *correctF,
			MinOverlap:     *k - 4,
			ParallelStage1: *parallel,
		},
		Subarrays: *nsub,
	}
	if *refPath != "" {
		refRecs, err := loadRecords(*refPath)
		if err != nil {
			fail(err)
		}
		if len(refRecs) != 1 {
			fail(fmt.Errorf("reference FASTA must hold exactly one sequence, got %d", len(refRecs)))
		}
		opts.Ref = refRecs[0].Seq
	}

	rep, err := eng.Assemble(context.Background(), reads, opts)
	if err != nil {
		fail(err)
	}
	contigs := rep.Contigs
	report(rep, *parallel)

	records := make([]genome.Record, len(contigs))
	for i, c := range contigs {
		records[i] = genome.Record{
			Name: fmt.Sprintf("contig_%d len=%d cov=%.1f", i, c.Seq.Len(), c.MeanCoverage),
			Seq:  c.Seq,
		}
	}
	f, err := os.Create(*out)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	if err := genome.WriteFASTA(f, records); err != nil {
		fail(err)
	}

	fmt.Printf("assembled %d reads (k=%d): %d contigs, %d bases, N50=%d\n",
		len(reads), *k, len(contigs), debruijn.TotalBases(contigs), debruijn.N50(contigs))
	if *paired {
		ms := assembly.MatePairScaffold(contigs, pairs, *k, *insert, 3)
		longest := 0
		for _, s := range ms {
			if len(s.Contigs) > longest {
				longest = len(s.Contigs)
			}
		}
		fmt.Printf("mate-pair scaffolding: %d contigs -> %d scaffolds (longest chain %d contigs)\n",
			len(contigs), len(ms), longest)
	}
	if *scaffold && rep.Scaffolds != nil {
		fmt.Printf("stage 3: %d scaffolds\n", len(rep.Scaffolds))
	}
	if rep.Quality != nil {
		fmt.Println("quality vs reference:", *rep.Quality)
	}

	if *estimate && rep.Counts != nil {
		fmt.Println("\nper-platform estimates for this workload (analytical engines):")
		for _, c := range engine.EstimateAll(*rep.Counts) {
			fmt.Println(" ", c)
		}
	}
}

// report prints the engine-family-specific accounting of the run.
func report(rep *engine.Report, parallel bool) {
	switch {
	case rep.Timings != nil:
		fmt.Printf("software pipeline: hashmap %v, deBruijn %v, traverse %v\n",
			rep.Timings.Hashmap, rep.Timings.DeBruijn, rep.Timings.Traverse)
	case rep.Functional != nil:
		s := rep.Functional
		mode := "serial stage 1"
		if parallel {
			mode = "sharded stage 1"
		}
		fmt.Printf("PIM functional run (%s): %d commands, %.2f ms serial command time, %.2f µJ array energy\n",
			mode, s.Commands, s.SerialLatencyNS/1e6, s.EnergyPJ/1e6)
		fmt.Printf("scheduled makespan: %.2f ms (%.1fx overlap across %d sub-arrays)\n",
			s.Makespan.MakespanNS/1e6, s.Makespan.Speedup, s.Subarrays)
		fmt.Println("per-stage command histogram:")
		for _, line := range strings.Split(strings.TrimRight(s.Histogram.String(), "\n"), "\n") {
			fmt.Println("  " + line)
		}
		fmt.Println("per-stage attribution (serial cost, energy, scheduled makespan):")
		for _, c := range s.StageCosts {
			fmt.Printf("  %s  makespan %.1f µs\n", c, s.Stages[c.Stage].MakespanNS/1e3)
		}
	case rep.Cost != nil:
		fmt.Printf("analytical engine %s (contigs from the measured software reference run):\n  %s\n",
			rep.Engine, rep.Cost)
	}
}

func loadRecords(path string) ([]genome.Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".fastq") || strings.HasSuffix(path, ".fq") {
		return genome.ReadFASTQ(f)
	}
	return genome.ReadFASTA(f)
}

func loadReads(path string) ([]*genome.Sequence, error) {
	records, err := loadRecords(path)
	if err != nil {
		return nil, err
	}
	reads := make([]*genome.Sequence, len(records))
	for i, r := range records {
		reads[i] = r.Seq
	}
	return reads, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "assemble:", err)
	os.Exit(1)
}
