// Command assemble runs the end-to-end genome assembler: FASTA/FASTQ reads
// in, contigs out, on any engine from the pluggable registry — the software
// reference pipeline, the functional PIM simulation (every k-mer comparison
// and counter update executed on the simulated sub-arrays), or one of the
// per-platform analytical estimators — plus optional per-platform latency
// and power estimates for the workload.
//
// Usage:
//
//	assemble -in reads.fasta -k 16 -out contigs.fasta [-engine pim] [-scaffold] [-estimate]
//	assemble -in reads.fasta -shards 4 [-shard-engines software,pim]
//	assemble -in reads.fasta -shards 4 -spill-dir /tmp/spill [-max-resident-reads 65536]
//	assemble -in reads.fasta -shards 4 -spill-dir /tmp/spill -worker-procs 2
//	assemble -batch jobs.manifest [-workers 4]
//	assemble -list-engines
//	assemble -worker   (internal: serve shard jobs over stdin/stdout)
//
// With -worker-procs N the out-of-core run goes multi-process: the
// coordinator launches N copies of this binary in -worker mode, dispatches
// one spill file per shard over the length-prefixed frame protocol, and
// merges the per-shard reports through the exact in-process merge path —
// the output is byte-identical to the same run without -worker-procs.
//
// Exit codes: 0 on success, 1 when a run (or any batch job or worker
// serving loop) fails, 2 on usage errors (bad flags, unreadable manifest,
// unknown engine name).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"pimassembler/internal/assembly"
	"pimassembler/internal/debruijn"
	"pimassembler/internal/distshard"
	"pimassembler/internal/engine"
	"pimassembler/internal/genome"
	workerpool "pimassembler/internal/parallel"
	"pimassembler/internal/shard"
)

// workerStdin is the stream a -worker process serves; a variable so tests
// can drive the worker loop without owning the process's real stdin.
var workerStdin io.Reader = os.Stdin

// Exit codes, documented in -h output.
const (
	exitOK      = 0
	exitRuntime = 1
	exitUsage   = 2
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable main: parse args, dispatch, and return the process
// exit code. Every failure path prints a one-line message to stderr.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("assemble", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in         = fs.String("in", "", "input reads (FASTA or FASTQ by extension)")
		out        = fs.String("out", "contigs.fasta", "output contigs FASTA")
		k          = fs.Int("k", 16, "k-mer length (paper sweeps 16, 22, 26, 32)")
		minCount   = fs.Uint("mincount", 0, "drop k-mers observed fewer times")
		engineName = fs.String("engine", "software", "assembly engine (see -list-engines)")
		listEng    = fs.Bool("list-engines", false, "list the registered engines and exit")
		nsub       = fs.Int("subarrays", 16, "PIM engine: sub-arrays for the hash table")
		parallel   = fs.Bool("parallel", false, "PIM engine: shard stage 1 across hash sub-arrays (bit-identical)")
		scaffold   = fs.Bool("scaffold", false, "run stage 3 (greedy scaffolding)")
		simplify   = fs.Bool("simplify", false, "run Velvet-style tip/bubble removal after graph construction")
		correctF   = fs.Bool("correct", false, "run k-mer-spectrum read correction before counting")
		estimate   = fs.Bool("estimate", false, "print per-platform latency/power estimates")
		refPath    = fs.String("ref", "", "optional reference FASTA for quality metrics")
		paired     = fs.Bool("paired", false, "treat input as interleaved paired-end reads and run mate-pair scaffolding")
		insert     = fs.Int("insert", 400, "paired mode: mean library insert size")
		workers    = fs.Int("workers", 0, "worker count for parallel stages and the batch job queue (0 = GOMAXPROCS); results are bit-identical for any value")
		countWkrs  = fs.Int("count-workers", 0, "hash-partitioned parallel stage-1 k-mer counting workers (0/1 = pinned serial path; contigs identical for any value)")
		batch      = fs.String("batch", "", "run a manifest of jobs through the concurrent queue (one '<input> <engine> [key=value ...]' per line)")
		shards     = fs.Int("shards", 0, "split the reads into N deterministic shards and merge (0 = unsharded; output is invariant in N)")
		shardEng   = fs.String("shard-engines", "", "comma-separated engine list assigned to shards round-robin (requires -shards; default: -engine)")
		spillDir   = fs.String("spill-dir", "", "out-of-core sharding: stream the input into per-shard spill files under this directory instead of holding the reads in memory (requires -shards)")
		maxRes     = fs.Int("max-resident-reads", 0, "out-of-core sharding: cap the decoded reads resident in memory across spilling and shard assembly (requires -spill-dir; 0 = default)")
		workerN    = fs.Int("worker-procs", 0, "distribute the out-of-core shards across N worker processes of this binary (requires -spill-dir; output is byte-identical to the in-process run)")
		workerTO   = fs.Duration("worker-timeout", 0, "per-shard attempt timeout for -worker-procs dispatch (0 = none)")
		workerRty  = fs.Int("worker-retries", 0, "extra attempts per shard for -worker-procs dispatch; crashed or timed-out workers are respawned")
		workerMode = fs.Bool("worker", false, "internal: serve shard jobs over stdin/stdout for a -worker-procs coordinator")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: assemble -in reads.fasta [flags]")
		fmt.Fprintln(stderr, "       assemble -in reads.fasta -shards N [-shard-engines a,b,c] [flags]")
		fmt.Fprintln(stderr, "       assemble -in reads.fasta -shards N -spill-dir DIR [-max-resident-reads M] [flags]")
		fmt.Fprintln(stderr, "       assemble -in reads.fasta -shards N -spill-dir DIR -worker-procs P [flags]")
		fmt.Fprintln(stderr, "       assemble -batch jobs.manifest [flags]")
		fmt.Fprintln(stderr, "       assemble -list-engines")
		fmt.Fprintln(stderr, "\nexit codes: 0 success; 1 run or batch-job failure; 2 usage error")
		fmt.Fprintln(stderr, "\nbatch manifest: one job per line, '#' comments;")
		fmt.Fprintln(stderr, "  <input-path> <engine> [k=N] [mincount=N] [subarrays=N] [timeout=DUR] [retries=N] [backoff=DUR]")
		fmt.Fprintln(stderr, "\nflags:")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		// The FlagSet already printed the one-line error and usage.
		return exitUsage
	}
	workerpool.SetWorkers(*workers)
	if *workerMode {
		// Worker mode ignores every other flag: the coordinator drives the
		// whole run over the pipes, including the options and engine names.
		if err := distshard.RunWorker(workerStdin, stdout, nil); err != nil {
			fmt.Fprintln(stderr, "assemble:", err)
			return exitRuntime
		}
		return exitOK
	}
	if *listEng {
		for _, e := range engine.Engines() {
			fmt.Fprintf(stdout, "%-14s %s\n", e.Name(), e.Describe())
		}
		return exitOK
	}

	defaults := engine.Options{
		Options: assembly.Options{
			K:              *k,
			MinCount:       uint32(*minCount),
			Scaffold:       *scaffold,
			Simplify:       *simplify,
			Correct:        *correctF,
			MinOverlap:     *k - 4,
			ParallelStage1: *parallel,
			CountWorkers:   *countWkrs,
		},
		Subarrays: *nsub,
	}

	if *batch != "" {
		if *in != "" {
			fmt.Fprintln(stderr, "assemble: -batch and -in are mutually exclusive")
			return exitUsage
		}
		if *shards > 0 {
			fmt.Fprintln(stderr, "assemble: -batch and -shards are mutually exclusive")
			return exitUsage
		}
		if *spillDir != "" {
			fmt.Fprintln(stderr, "assemble: -batch and -spill-dir are mutually exclusive")
			return exitUsage
		}
		return runBatch(*batch, *engineName, defaults, *workers, stdout, stderr)
	}

	if *shardEng != "" && *shards <= 0 {
		fmt.Fprintln(stderr, "assemble: -shard-engines requires -shards")
		return exitUsage
	}
	if *spillDir != "" && *shards <= 0 {
		fmt.Fprintln(stderr, "assemble: -spill-dir requires -shards")
		return exitUsage
	}
	if *maxRes != 0 && *spillDir == "" {
		fmt.Fprintln(stderr, "assemble: -max-resident-reads requires -spill-dir")
		return exitUsage
	}
	if *workerN > 0 && *spillDir == "" {
		fmt.Fprintln(stderr, "assemble: -worker-procs requires -spill-dir")
		return exitUsage
	}
	if (*workerTO != 0 || *workerRty != 0) && *workerN <= 0 {
		fmt.Fprintln(stderr, "assemble: -worker-timeout and -worker-retries require -worker-procs")
		return exitUsage
	}
	if *spillDir != "" && *paired {
		fmt.Fprintln(stderr, "assemble: -spill-dir and -paired are mutually exclusive")
		return exitUsage
	}
	shardNames := []string{*engineName}
	if *shardEng != "" {
		shardNames = strings.Split(*shardEng, ",")
		for i, name := range shardNames {
			shardNames[i] = strings.TrimSpace(name)
		}
	}
	if *shards > 0 {
		// Engine-name typos are usage errors, caught before any work runs.
		for _, name := range shardNames {
			if _, err := engine.Lookup(name); err != nil {
				fmt.Fprintln(stderr, "assemble:", err)
				return exitUsage
			}
		}
	}

	if *in == "" {
		fmt.Fprintln(stderr, "assemble: -in is required")
		fs.Usage()
		return exitUsage
	}

	eng, err := engine.Lookup(*engineName)
	if err != nil {
		fmt.Fprintln(stderr, "assemble:", err)
		return exitUsage
	}
	// Out-of-core mode never materialises the read set; everything else
	// loads it up front.
	var reads []*genome.Sequence
	if *spillDir == "" {
		var err error
		reads, err = loadReads(*in)
		if err != nil {
			fmt.Fprintln(stderr, "assemble:", err)
			return exitRuntime
		}
	}
	var pairs []genome.ReadPair
	if *paired {
		if len(reads)%2 != 0 {
			fmt.Fprintf(stderr, "assemble: paired mode needs an even read count, got %d\n", len(reads))
			return exitRuntime
		}
		for i := 0; i+1 < len(reads); i += 2 {
			pairs = append(pairs, genome.ReadPair{R1: reads[i], R2: reads[i+1]})
		}
		reads = genome.Flatten(pairs)
	}
	opts := defaults
	if *refPath != "" {
		refRecs, err := loadRecords(*refPath)
		if err != nil {
			fmt.Fprintln(stderr, "assemble:", err)
			return exitRuntime
		}
		if len(refRecs) != 1 {
			fmt.Fprintf(stderr, "assemble: reference FASTA must hold exactly one sequence, got %d\n", len(refRecs))
			return exitRuntime
		}
		opts.Ref = refRecs[0].Seq
	}

	var rep *engine.Report
	nReads := int64(len(reads))
	switch {
	case *spillDir != "":
		var code int
		rep, nReads, code = runSpill(context.Background(), *in, spillPlanConfig{
			dir:           *spillDir,
			shards:        *shards,
			maxResident:   *maxRes,
			engines:       shardNames,
			opts:          opts,
			workers:       *workers,
			parallel:      *parallel,
			workerProcs:   *workerN,
			workerTimeout: *workerTO,
			workerRetries: *workerRty,
		}, stdout, stderr)
		if code != exitOK {
			return code
		}
	case *shards > 0:
		res, err := shard.Assemble(context.Background(), reads, shard.Plan{
			Shards:  *shards,
			Engines: shardNames,
			Opts:    opts,
			Workers: *workers,
		})
		if err != nil {
			fmt.Fprintln(stderr, "assemble:", err)
			return exitRuntime
		}
		rep = res.Report
		if len(res.PerShard) > 1 {
			shardReport(stdout, res)
		} else {
			// One shard is the identity merge: same report, same output,
			// byte for byte, as the unsharded run.
			report(stdout, rep, *parallel)
		}
	default:
		var err error
		rep, err = eng.Assemble(context.Background(), genome.NewSliceSource(reads), opts)
		if err != nil {
			fmt.Fprintln(stderr, "assemble:", err)
			return exitRuntime
		}
		report(stdout, rep, *parallel)
	}
	contigs := rep.Contigs

	records := make([]genome.Record, len(contigs))
	for i, c := range contigs {
		records[i] = genome.Record{
			Name: fmt.Sprintf("contig_%d len=%d cov=%.1f", i, c.Seq.Len(), c.MeanCoverage),
			Seq:  c.Seq,
		}
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(stderr, "assemble:", err)
		return exitRuntime
	}
	defer f.Close()
	if err := genome.WriteFASTA(f, records); err != nil {
		fmt.Fprintln(stderr, "assemble:", err)
		return exitRuntime
	}

	fmt.Fprintf(stdout, "assembled %d reads (k=%d): %d contigs, %d bases, N50=%d\n",
		nReads, *k, len(contigs), debruijn.TotalBases(contigs), debruijn.N50(contigs))
	if *paired {
		ms := assembly.MatePairScaffold(contigs, pairs, *k, *insert, 3)
		longest := 0
		for _, s := range ms {
			if len(s.Contigs) > longest {
				longest = len(s.Contigs)
			}
		}
		fmt.Fprintf(stdout, "mate-pair scaffolding: %d contigs -> %d scaffolds (longest chain %d contigs)\n",
			len(contigs), len(ms), longest)
	}
	if *scaffold && rep.Scaffolds != nil {
		fmt.Fprintf(stdout, "stage 3: %d scaffolds\n", len(rep.Scaffolds))
	}
	if rep.Quality != nil {
		fmt.Fprintln(stdout, "quality vs reference:", *rep.Quality)
	}

	if *estimate && rep.Counts != nil {
		fmt.Fprintln(stdout, "\nper-platform estimates for this workload (analytical engines):")
		for _, c := range engine.EstimateAll(*rep.Counts) {
			fmt.Fprintln(stdout, " ", c)
		}
	}
	return exitOK
}

// shardReport prints the per-shard breakdown and the cross-shard aggregates
// of a multi-shard run.
func shardReport(w io.Writer, res *shard.Result) {
	fmt.Fprintf(w, "sharded run: %d shards -> %s\n", len(res.PerShard), res.Report.Engine)
	for i, sr := range res.PerShard {
		var nreads int64
		if sr.Counts != nil {
			nreads = sr.Counts.ReadCount
		}
		fmt.Fprintf(w, "  shard %d: engine %-14s %5d reads, %d contigs\n",
			i, res.Engines[i], nreads, len(sr.Contigs))
	}
	if res.Commands > 0 {
		fmt.Fprintf(w, "  functional shards: %d commands, %.2f µJ array energy (sum), makespan %.2f ms (max over shards)\n",
			res.Commands, res.EnergyPJ/1e6, res.MakespanNS/1e6)
	}
	if res.CostTotalS > 0 {
		fmt.Fprintf(w, "  analytical shards: %.3g s modeled time (max over shards), %.3g J modeled energy (sum)\n",
			res.CostTotalS, res.CostEnergyJ)
	}
}

// report prints the engine-family-specific accounting of the run.
func report(w io.Writer, rep *engine.Report, parallel bool) {
	switch {
	case rep.Timings != nil:
		fmt.Fprintf(w, "software pipeline: hashmap %v, deBruijn %v, traverse %v\n",
			rep.Timings.Hashmap, rep.Timings.DeBruijn, rep.Timings.Traverse)
	case rep.Functional != nil:
		s := rep.Functional
		mode := "serial stage 1"
		if parallel {
			mode = "sharded stage 1"
		}
		fmt.Fprintf(w, "PIM functional run (%s): %d commands, %.2f ms serial command time, %.2f µJ array energy\n",
			mode, s.Commands, s.SerialLatencyNS/1e6, s.EnergyPJ/1e6)
		fmt.Fprintf(w, "scheduled makespan: %.2f ms (%.1fx overlap across %d sub-arrays)\n",
			s.Makespan.MakespanNS/1e6, s.Makespan.Speedup, s.Subarrays)
		fmt.Fprintln(w, "per-stage command histogram:")
		for _, line := range strings.Split(strings.TrimRight(s.Histogram.String(), "\n"), "\n") {
			fmt.Fprintln(w, "  "+line)
		}
		fmt.Fprintln(w, "per-stage attribution (serial cost, energy, scheduled makespan):")
		for _, c := range s.StageCosts {
			fmt.Fprintf(w, "  %s  makespan %.1f µs\n", c, s.Stages[c.Stage].MakespanNS/1e3)
		}
	case rep.Cost != nil:
		fmt.Fprintf(w, "analytical engine %s (contigs from the measured software reference run):\n  %s\n",
			rep.Engine, rep.Cost)
	}
}

func loadRecords(path string) ([]genome.Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var records []genome.Record
	err = genome.ScanRecords(f, genome.DetectFormat(path), func(r genome.Record) error {
		records = append(records, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return records, nil
}

// loadReads streams the input one record at a time — only the packed 2-bit
// sequences are retained, so ingestion memory is bounded by the scanner
// buffer plus the encoded reads, never the text form of the whole file.
func loadReads(path string) ([]*genome.Sequence, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var reads []*genome.Sequence
	err = genome.ScanRecords(f, genome.DetectFormat(path), func(r genome.Record) error {
		reads = append(reads, r.Seq)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return reads, nil
}
