package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"pimassembler/internal/distshard"
	"pimassembler/internal/engine"
	"pimassembler/internal/genome"
	"pimassembler/internal/jobqueue"
	"pimassembler/internal/metrics"
	"pimassembler/internal/shard"
)

// spillPlanConfig carries the flag state for one out-of-core run.
type spillPlanConfig struct {
	dir           string
	shards        int
	maxResident   int
	engines       []string
	opts          engine.Options
	workers       int
	parallel      bool
	workerProcs   int
	workerTimeout time.Duration
	workerRetries int
}

// runSpill executes the out-of-core sharded path: stream the input into
// per-shard spill files, assemble each shard from its file with stage-1
// streaming and a resident-read admission cap, and merge. Everything on
// stdout is deterministic (spill sizes and eviction counts depend only on
// the input and the cap); the wall-clock spill/queue statistics go to
// stderr. Returns the merged report, the read count, and the exit code.
func runSpill(ctx context.Context, in string, cfg spillPlanConfig, stdout, stderr io.Writer) (*engine.Report, int64, int) {
	f, err := os.Open(in)
	if err != nil {
		fmt.Fprintln(stderr, "assemble:", err)
		return nil, 0, exitRuntime
	}
	counters := metrics.NewCounters()
	sp, err := shard.Partition(ctx, f, genome.DetectFormat(in), shard.SpillConfig{
		Shards:           cfg.shards,
		Dir:              cfg.dir,
		MaxResidentReads: cfg.maxResident,
		Counters:         counters,
	})
	f.Close()
	if err != nil {
		fmt.Fprintln(stderr, "assemble:", err)
		return nil, 0, exitRuntime
	}
	defer sp.Close()

	cap := cfg.maxResident
	if cap <= 0 {
		cap = shard.DefaultMaxResidentReads
	}
	fmt.Fprintf(stdout, "out-of-core: %d reads -> %d spill files (%d bytes, %d evictions), resident cap %d reads\n",
		sp.TotalReads(), sp.Shards(), sp.Bytes(), sp.Evictions(), cap)

	var res *shard.Result
	if cfg.workerProcs > 0 {
		fmt.Fprintf(stdout, "distributed: dispatching %d spill files across %d worker processes\n",
			sp.Shards(), cfg.workerProcs)
		res, err = distshard.Assemble(ctx, sp, distshard.Config{
			WorkerProcs: cfg.workerProcs,
			Engines:     cfg.engines,
			Opts:        cfg.opts,
			Timeout:     cfg.workerTimeout,
			Retry:       jobqueue.RetryPolicy{MaxAttempts: cfg.workerRetries + 1},
			Counters:    counters,
		})
	} else {
		res, err = shard.AssembleSpill(ctx, sp, shard.Plan{
			Engines:          cfg.engines,
			Opts:             cfg.opts,
			Workers:          cfg.workers,
			MaxResidentReads: cfg.maxResident,
			Counters:         counters,
		})
	}
	if err != nil {
		fmt.Fprintln(stderr, "assemble:", err)
		return nil, 0, exitRuntime
	}
	if len(res.PerShard) > 1 {
		shardReport(stdout, res)
	} else {
		report(stdout, res.Report, cfg.parallel)
	}
	fmt.Fprintf(stderr, "spill statistics (wall clock):\n%s", counters)
	return res.Report, sp.TotalReads(), exitOK
}
