// Command distsmoke is the CI smoke test for the multi-process sharded
// assembly path, run by `make dist-smoke`. It builds the real cmd/assemble
// binary, runs the same out-of-core workload twice — once in-process
// (-shards 4 -spill-dir) and once distributed (-worker-procs 2, coordinator
// plus two worker processes of that same binary) — and pins the external
// contracts:
//
//  1. the distributed contig FASTA is byte-identical to the in-process one
//     (the coordinator merges through the exact in-process merge path),
//  2. both runs exit 0 and report the same deterministic stdout summary
//     (modulo the distributed dispatch banner),
//  3. the spill directories are empty after both runs — no leaked spill
//     state, and (implicitly, via the coordinator's teardown) no leaked
//     worker processes.
//
// Exit code 0 when every check passes, 1 otherwise.
package main

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"pimassembler/internal/genome"
	"pimassembler/internal/stats"
)

func main() {
	if err := smoke(); err != nil {
		fmt.Fprintln(os.Stderr, "dist-smoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("dist-smoke: OK")
}

func smoke() error {
	dir, err := os.MkdirTemp("", "distsmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// Build the real binary exactly as a release would.
	assemble := filepath.Join(dir, "assemble")
	cmd := exec.Command("go", "build", "-o", assemble, "./cmd/assemble")
	if out, err := cmd.CombinedOutput(); err != nil {
		return fmt.Errorf("go build ./cmd/assemble: %v\n%s", err, out)
	}

	// Deterministic workload shared by both runs.
	readsPath := filepath.Join(dir, "reads.fasta")
	if err := writeReads(readsPath, 42, 8_000, 600); err != nil {
		return err
	}

	run := func(label, outPath, spillDir string, extra ...string) (string, error) {
		if err := os.MkdirAll(spillDir, 0o755); err != nil {
			return "", err
		}
		args := append([]string{
			"-in", readsPath, "-k", "16", "-shards", "4",
			"-spill-dir", spillDir, "-out", outPath,
		}, extra...)
		cmd := exec.Command(assemble, args...)
		var stdout, stderr bytes.Buffer
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			return "", fmt.Errorf("%s run: %v\nstderr:\n%s", label, err, stderr.String())
		}
		ents, err := os.ReadDir(spillDir)
		if err != nil {
			return "", err
		}
		if len(ents) != 0 {
			return "", fmt.Errorf("%s run leaked spill state under %s: %v", label, spillDir, ents)
		}
		return stdout.String(), nil
	}

	inprocOut, err := run("in-process", filepath.Join(dir, "inproc.fasta"), filepath.Join(dir, "spill-inproc"))
	if err != nil {
		return err
	}
	distOut, err := run("distributed", filepath.Join(dir, "dist.fasta"), filepath.Join(dir, "spill-dist"),
		"-worker-procs", "2", "-worker-timeout", "2m", "-worker-retries", "1")
	if err != nil {
		return err
	}

	// Contract 1: byte-identical contig FASTA.
	a, err := os.ReadFile(filepath.Join(dir, "inproc.fasta"))
	if err != nil {
		return err
	}
	b, err := os.ReadFile(filepath.Join(dir, "dist.fasta"))
	if err != nil {
		return err
	}
	if !bytes.Equal(a, b) {
		return fmt.Errorf("distributed contigs differ from the in-process run (%d vs %d bytes)", len(b), len(a))
	}
	if len(a) == 0 {
		return fmt.Errorf("empty contig output")
	}

	// Contract 2: identical deterministic stdout, modulo the dispatch banner.
	var distLines []string
	for _, line := range strings.Split(distOut, "\n") {
		if strings.HasPrefix(line, "distributed: ") {
			continue
		}
		distLines = append(distLines, line)
	}
	if got := strings.Join(distLines, "\n"); got != inprocOut {
		return fmt.Errorf("distributed stdout diverged from the in-process run:\n--- in-process ---\n%s\n--- distributed ---\n%s", inprocOut, got)
	}
	if !strings.Contains(distOut, "distributed: dispatching 4 spill files across 2 worker processes") {
		return fmt.Errorf("distributed run missing its dispatch banner:\n%s", distOut)
	}
	fmt.Printf("dist-smoke: 4 shards via 2 worker processes, %d bytes of contigs byte-identical to the in-process run\n", len(a))
	return nil
}

// writeReads samples a deterministic read set and writes it as FASTA.
func writeReads(path string, seed uint64, genomeLen, n int) error {
	rng := stats.NewRNG(seed)
	ref := genome.GenerateGenome(genomeLen, rng)
	reads := genome.NewReadSampler(ref, 101, 0, rng).Sample(n)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rw := genome.NewRecordWriter(f)
	for i, r := range reads {
		if err := rw.Write(genome.Record{Name: fmt.Sprintf("r%d", i), Seq: r}); err != nil {
			return err
		}
	}
	return rw.Flush()
}
