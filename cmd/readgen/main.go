// Command readgen generates deterministic synthetic genomes and short-read
// datasets — the chromosome-14 substitute workload (DESIGN.md §1).
//
// Usage:
//
//	readgen -genome 100000 -reads 5000 -len 101 -seed 7 -out reads.fasta [-ref genome.fasta] [-errors 0.01]
package main

import (
	"flag"
	"fmt"
	"os"

	"pimassembler/internal/genome"
	"pimassembler/internal/stats"
)

func main() {
	var (
		genomeLen = flag.Int("genome", 100_000, "synthetic genome length (bp)")
		reads     = flag.Int("reads", 5_000, "number of reads to sample")
		readLen   = flag.Int("len", 101, "read length (bp), paper uses 101")
		seed      = flag.Uint64("seed", 7, "deterministic seed")
		errRate   = flag.Float64("errors", 0, "per-base substitution error rate")
		out       = flag.String("out", "reads.fasta", "output FASTA of reads")
		ref       = flag.String("ref", "", "optional output FASTA of the reference genome")
		repeats   = flag.Int("repeats", 0, "planted tandem repeats (0 = uniform random genome)")
		paired    = flag.Bool("paired", false, "generate paired-end reads (interleaved /1, /2 records)")
		insert    = flag.Int("insert", 400, "paired mode: mean insert size")
		stdInsert = flag.Float64("stdinsert", 20, "paired mode: insert-size standard deviation")
	)
	flag.Parse()

	rng := stats.NewRNG(*seed)
	var g *genome.Sequence
	if *repeats > 0 {
		g = genome.GenerateRepetitiveGenome(*genomeLen, 500, *repeats, rng)
	} else {
		g = genome.GenerateGenome(*genomeLen, rng)
	}

	// Stream the reads straight to disk one record at a time: the dataset is
	// never materialised in memory, so -reads can exceed what a slurped
	// []Record would hold.
	written, err := streamReads(*out, g, *reads, *readLen, *errRate, *paired, *insert, *stdInsert, rng)
	if err != nil {
		fmt.Fprintln(os.Stderr, "readgen:", err)
		os.Exit(1)
	}
	if *ref != "" {
		if err := writeFASTA(*ref, []genome.Record{{Name: "reference", Seq: g}}); err != nil {
			fmt.Fprintln(os.Stderr, "readgen:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("wrote %d reads of %d bp (genome %d bp, %.1fx coverage, paired=%v) to %s\n",
		written, *readLen, *genomeLen,
		float64(written)*float64(*readLen)/float64(*genomeLen), *paired, *out)
}

// streamReads samples reads and writes each record as it is drawn,
// returning the number of records written.
func streamReads(path string, g *genome.Sequence, reads, readLen int, errRate float64, paired bool, insert int, stdInsert float64, rng *stats.RNG) (int, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	w := genome.NewRecordWriter(f)
	written := 0
	if paired {
		sampler := genome.NewPairedSampler(g, readLen, insert, stdInsert, errRate, rng)
		for i := 0; i < reads/2; i++ {
			p := sampler.Next()
			if err := w.Write(genome.Record{Name: fmt.Sprintf("read_%d/1", i), Seq: p.R1}); err != nil {
				return written, err
			}
			if err := w.Write(genome.Record{Name: fmt.Sprintf("read_%d/2", i), Seq: p.R2}); err != nil {
				return written, err
			}
			written += 2
		}
	} else {
		sampler := genome.NewReadSampler(g, readLen, errRate, rng)
		for i := 0; i < reads; i++ {
			if err := w.Write(genome.Record{Name: fmt.Sprintf("read_%d", i), Seq: sampler.Next()}); err != nil {
				return written, err
			}
			written++
		}
	}
	if err := w.Flush(); err != nil {
		return written, err
	}
	return written, f.Sync()
}

func writeFASTA(path string, records []genome.Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := genome.WriteFASTA(f, records); err != nil {
		return err
	}
	return f.Sync()
}
