package debruijn

import (
	"errors"
	"fmt"

	"pimassembler/internal/kmer"
)

// ErrNoEulerian reports that the graph admits no Eulerian traversal.
var ErrNoEulerian = errors.New("debruijn: graph has no Eulerian path or circuit")

// EulerPath returns an Eulerian path (or circuit) as a node walk using
// Hierholzer's algorithm — the efficient traversal used for large graphs.
// The walk visits every edge exactly once; spelling it reconstructs a
// superstring of the reads.
func (g *Graph) EulerPath() ([]kmer.Kmer, error) {
	if g.edges == 0 {
		return nil, ErrNoEulerian
	}
	class, start := g.Balance()
	if class == BalanceNone || !g.EdgeConnected() {
		return nil, ErrNoEulerian
	}

	// Work on a consumable copy of the adjacency (deterministic order).
	next := make(map[kmer.Kmer][]Edge, len(g.adj))
	for n := range g.adj {
		next[n] = g.Out(n)
	}

	// Hierholzer with an explicit stack; the walk assembles reversed.
	stack := []kmer.Kmer{start}
	var walk []kmer.Kmer
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		if out := next[v]; len(out) > 0 {
			next[v] = out[1:]
			stack = append(stack, out[0].To)
		} else {
			walk = append(walk, v)
			stack = stack[:len(stack)-1]
		}
	}
	// Reverse in place.
	for i, j := 0, len(walk)-1; i < j; i, j = i+1, j-1 {
		walk[i], walk[j] = walk[j], walk[i]
	}
	if len(walk) != g.edges+1 {
		// Disconnected edge set slipped through (defensive; EdgeConnected
		// should have caught it).
		return nil, ErrNoEulerian
	}
	return walk, nil
}

// FleuryPath returns an Eulerian path using Fleury's algorithm — the
// traversal the paper's Traverse procedure names (Fig. 5c). Fleury walks
// edge by edge, never crossing a bridge while a non-bridge alternative
// remains. It is O(E²) and kept for paper fidelity and cross-validation;
// EulerPath is the production traversal.
func (g *Graph) FleuryPath() ([]kmer.Kmer, error) {
	if g.edges == 0 {
		return nil, ErrNoEulerian
	}
	class, start := g.Balance()
	if class == BalanceNone || !g.EdgeConnected() {
		return nil, ErrNoEulerian
	}

	// Mutable multigraph copy with edge removal.
	adj := make(map[kmer.Kmer][]Edge, len(g.adj))
	for n := range g.adj {
		adj[n] = g.Out(n)
	}
	remaining := g.edges

	removeEdge := func(from kmer.Kmer, idx int) {
		adj[from] = append(append([]Edge(nil), adj[from][:idx]...), adj[from][idx+1:]...)
		remaining--
	}

	// reachableEdges counts edges reachable from v in the remaining graph,
	// used for the bridge test.
	reachableEdges := func(v kmer.Kmer) int {
		seen := map[kmer.Kmer]bool{v: true}
		stack := []kmer.Kmer{v}
		count := 0
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range adj[n] {
				count++
				if !seen[e.To] {
					seen[e.To] = true
					stack = append(stack, e.To)
				}
			}
		}
		return count
	}

	restoreEdge := func(from kmer.Kmer, idx int, e Edge) {
		rest := adj[from]
		out := make([]Edge, 0, len(rest)+1)
		out = append(out, rest[:idx]...)
		out = append(out, e)
		out = append(out, rest[idx:]...)
		adj[from] = out
		remaining++
	}

	walk := []kmer.Kmer{start}
	v := start
	for remaining > 0 {
		out := adj[v]
		if len(out) == 0 {
			return nil, ErrNoEulerian
		}
		moved := false
		if len(out) > 1 {
			for i := 0; i < len(adj[v]); i++ {
				e := adj[v][i]
				removeEdge(v, i)
				// Not a bridge if every remaining edge stays reachable
				// from the successor.
				if reachableEdges(e.To) == remaining {
					v = e.To
					walk = append(walk, v)
					moved = true
					break
				}
				restoreEdge(v, i, e)
			}
		}
		if moved {
			continue
		}
		// Single exit, or every alternative is a bridge: take edge 0.
		e := adj[v][0]
		removeEdge(v, 0)
		v = e.To
		walk = append(walk, v)
	}
	return walk, nil
}

// ValidateWalk checks that a node walk is a legal traversal: consecutive
// nodes overlap correctly and every graph edge is used exactly once.
func (g *Graph) ValidateWalk(walk []kmer.Kmer) error {
	if len(walk) != g.edges+1 {
		return fmt.Errorf("debruijn: walk has %d nodes, want %d for %d edges",
			len(walk), g.edges+1, g.edges)
	}
	used := make(map[kmer.Kmer]int) // edge k-mer -> times used
	for i := 0; i+1 < len(walk); i++ {
		from, to := walk[i], walk[i+1]
		// The traversed edge k-mer is from extended by to's last base.
		km := from.Extend(g.k, to.LastBase(g.NodeLen()))
		if km.Prefix(g.k) != from || km.Suffix(g.k) != to {
			return fmt.Errorf("debruijn: step %d: %v -> %v is not a de Bruijn transition", i, from, to)
		}
		used[km]++
	}
	for n, edges := range g.adj {
		for _, e := range edges {
			if used[e.Kmer] == 0 {
				return fmt.Errorf("debruijn: edge %s (from node %v) unused",
					e.Kmer.String(g.k), n)
			}
			used[e.Kmer]--
		}
	}
	for km, c := range used {
		if c != 0 {
			return fmt.Errorf("debruijn: edge %s used %d extra times", km.String(g.k), c)
		}
	}
	return nil
}
