package debruijn

import (
	"errors"
	"fmt"

	"pimassembler/internal/kmer"
)

// ErrNoEulerian reports that the graph admits no Eulerian traversal.
var ErrNoEulerian = errors.New("debruijn: graph has no Eulerian path or circuit")

// EulerPath returns an Eulerian path (or circuit) as a node walk using
// Hierholzer's algorithm — the efficient traversal used for large graphs.
// The walk visits every edge exactly once; spelling it reconstructs a
// superstring of the reads. The traversal runs entirely on node IDs over the
// CSR arrays: a per-node edge cursor replaces the consumable adjacency-map
// copy, so the only allocation is the returned walk.
func (g *Graph) EulerPath() ([]kmer.Kmer, error) {
	g.finalize()
	if g.edges == 0 {
		return nil, ErrNoEulerian
	}
	class, start := g.balanceID()
	if class == BalanceNone || !g.EdgeConnected() {
		return nil, ErrNoEulerian
	}

	n := g.idx.Len()
	g.scratch.ensureNodes(n)
	cursor := g.scratch.cursor
	copy(cursor, g.edgeOff[:n])

	// Hierholzer with an explicit stack; the walk assembles reversed.
	stack := append(g.scratch.stack[:0], start)
	walk := g.scratch.walk[:0]
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		e := g.firstLiveEdge(v, cursor[v])
		if e < g.edgeOff[v+1] {
			cursor[v] = e + 1
			stack = append(stack, g.edgeTo[e])
		} else {
			cursor[v] = e
			walk = append(walk, v)
			stack = stack[:len(stack)-1]
		}
	}
	g.scratch.stack, g.scratch.walk = stack[:0], walk

	if len(walk) != g.edges+1 {
		// Disconnected edge set slipped through (defensive; EdgeConnected
		// should have caught it).
		return nil, ErrNoEulerian
	}
	// Convert to k-mers, reversing into the fresh result slice.
	out := make([]kmer.Kmer, len(walk))
	for i, id := range walk {
		out[len(walk)-1-i] = g.idx.At(id)
	}
	return out, nil
}

// FleuryPath returns an Eulerian path using Fleury's algorithm — the
// traversal the paper's Traverse procedure names (Fig. 5c). Fleury walks
// edge by edge, never crossing a bridge while a non-bridge alternative
// remains. It is O(E²) and kept for paper fidelity and cross-validation;
// EulerPath is the production traversal. The mutable multigraph copy is
// per-node slices of CSR edge indices.
func (g *Graph) FleuryPath() ([]kmer.Kmer, error) {
	g.finalize()
	if g.edges == 0 {
		return nil, ErrNoEulerian
	}
	class, start := g.balanceID()
	if class == BalanceNone || !g.EdgeConnected() {
		return nil, ErrNoEulerian
	}

	n := g.idx.Len()
	adj := make([][]int32, n)
	for id := 0; id < n; id++ {
		for e := g.edgeOff[id]; e < g.edgeOff[id+1]; e++ {
			if !g.edgeDead[e] {
				adj[id] = append(adj[id], e)
			}
		}
	}
	remaining := g.edges

	removeEdge := func(from int32, idx int) {
		adj[from] = append(adj[from][:idx:idx], adj[from][idx+1:]...)
		remaining--
	}
	restoreEdge := func(from int32, idx int, e int32) {
		rest := adj[from]
		out := make([]int32, 0, len(rest)+1)
		out = append(out, rest[:idx]...)
		out = append(out, e)
		out = append(out, rest[idx:]...)
		adj[from] = out
		remaining++
	}

	// reachableEdges counts edges reachable from v in the remaining graph,
	// used for the bridge test.
	g.scratch.ensureNodes(n)
	seen := g.scratch.seen
	reachableEdges := func(v int32) int {
		for i := range seen {
			seen[i] = false
		}
		seen[v] = true
		stack := append(g.scratch.stack[:0], v)
		count := 0
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range adj[u] {
				count++
				if to := g.edgeTo[e]; !seen[to] {
					seen[to] = true
					stack = append(stack, to)
				}
			}
		}
		g.scratch.stack = stack[:0]
		return count
	}

	walk := []kmer.Kmer{g.idx.At(start)}
	v := start
	for remaining > 0 {
		out := adj[v]
		if len(out) == 0 {
			return nil, ErrNoEulerian
		}
		moved := false
		if len(out) > 1 {
			for i := 0; i < len(adj[v]); i++ {
				e := adj[v][i]
				removeEdge(v, i)
				// Not a bridge if every remaining edge stays reachable
				// from the successor.
				if reachableEdges(g.edgeTo[e]) == remaining {
					v = g.edgeTo[e]
					walk = append(walk, g.idx.At(v))
					moved = true
					break
				}
				restoreEdge(v, i, e)
			}
		}
		if moved {
			continue
		}
		// Single exit, or every alternative is a bridge: take edge 0.
		e := adj[v][0]
		removeEdge(v, 0)
		v = g.edgeTo[e]
		walk = append(walk, g.idx.At(v))
	}
	return walk, nil
}

// ValidateWalk checks that a node walk is a legal traversal: consecutive
// nodes overlap correctly and every graph edge is used exactly once.
func (g *Graph) ValidateWalk(walk []kmer.Kmer) error {
	g.finalize()
	if len(walk) != g.edges+1 {
		return fmt.Errorf("debruijn: walk has %d nodes, want %d for %d edges",
			len(walk), g.edges+1, g.edges)
	}
	used := g.scratch.ensureEdges(len(g.edgeKmer))
	var extraKm kmer.Kmer
	extra := 0
	for i := 0; i+1 < len(walk); i++ {
		from, to := walk[i], walk[i+1]
		// The traversed edge k-mer is from extended by to's last base.
		km := from.Extend(g.k, to.LastBase(g.NodeLen()))
		if km.Prefix(g.k) != from || km.Suffix(g.k) != to {
			return fmt.Errorf("debruijn: step %d: %v -> %v is not a de Bruijn transition", i, from, to)
		}
		id, ok := g.idx.Lookup(from)
		matched := false
		if ok {
			for e := g.edgeOff[id]; e < g.edgeOff[id+1]; e++ {
				if !g.edgeDead[e] && !used[e] && g.edgeKmer[e] == km {
					used[e] = true
					matched = true
					break
				}
			}
		}
		if !matched {
			extraKm = km
			extra++
		}
	}
	for id := 0; id+1 < len(g.edgeOff); id++ {
		for e := g.edgeOff[id]; e < g.edgeOff[id+1]; e++ {
			if !g.edgeDead[e] && !used[e] {
				return fmt.Errorf("debruijn: edge %s (from node %v) unused",
					g.edgeKmer[e].String(g.k), g.idx.At(int32(id)))
			}
		}
	}
	if extra != 0 {
		return fmt.Errorf("debruijn: edge %s used %d extra times", extraKm.String(g.k), extra)
	}
	return nil
}
