package debruijn

import (
	"fmt"
	"testing"

	"pimassembler/internal/genome"
	"pimassembler/internal/kmer"
	"pimassembler/internal/stats"
)

// Differential suite: the dense interned-ID/CSR Graph must be
// observationally byte-identical to the retained map-based MapGraph — same
// nodes, degrees, adjacency order, contigs, and Eulerian walks — across
// k ∈ {2..8} and the four PR-5 workload shapes the shard invariance suite
// uses. This is the safety net under the representation swap.

// diffWorkload mirrors the shard property-test workload generator.
func diffWorkload(seed uint64, genomeLen, readLen, numReads int, errRate float64) []*genome.Sequence {
	rng := stats.NewRNG(seed)
	ref := genome.GenerateGenome(genomeLen, rng)
	return genome.NewReadSampler(ref, readLen, errRate, rng).Sample(numReads)
}

// diffShapes are the four PR-5 workload shapes (shard.TestShardCountInvariance).
var diffShapes = []struct {
	name                         string
	seed                         uint64
	genomeLen, readLen, numReads int
	errRate                      float64
}{
	{"clean reads", 21, 2_000, 101, 150, 0},
	{"erroneous reads", 22, 1_500, 80, 200, 0.01},
	{"short genome", 23, 400, 60, 64, 0},
	{"reads barely above k", 24, 900, 18, 120, 0},
}

// assertGraphsMatch compares every observable of the two representations.
func assertGraphsMatch(t *testing.T, dense *Graph, ref *MapGraph) {
	t.Helper()
	if dense.NumNodes() != ref.NumNodes() {
		t.Fatalf("nodes: dense %d, map %d", dense.NumNodes(), ref.NumNodes())
	}
	if dense.NumEdges() != ref.NumEdges() {
		t.Fatalf("edges: dense %d, map %d", dense.NumEdges(), ref.NumEdges())
	}

	dn, rn := dense.Nodes(), ref.Nodes()
	for i := range dn {
		if dn[i] != rn[i] {
			t.Fatalf("node %d: dense %v, map %v", i, dn[i], rn[i])
		}
		dOut, rOut := dense.Out(dn[i]), ref.Out(rn[i])
		if len(dOut) != len(rOut) {
			t.Fatalf("node %v: out-degree dense %d, map %d", dn[i], len(dOut), len(rOut))
		}
		for j := range dOut {
			if dOut[j] != rOut[j] {
				t.Fatalf("node %v edge %d: dense %+v, map %+v", dn[i], j, dOut[j], rOut[j])
			}
		}
	}

	dContigs, rContigs := dense.Contigs(), ref.Contigs()
	if len(dContigs) != len(rContigs) {
		t.Fatalf("contigs: dense %d, map %d", len(dContigs), len(rContigs))
	}
	for i := range dContigs {
		if got, want := dContigs[i].Seq.String(), rContigs[i].Seq.String(); got != want {
			t.Fatalf("contig %d: dense %q, map %q", i, got, want)
		}
		if dContigs[i].EdgeCount != rContigs[i].EdgeCount {
			t.Fatalf("contig %d: edge count dense %d, map %d", i, dContigs[i].EdgeCount, rContigs[i].EdgeCount)
		}
		if dContigs[i].MeanCoverage != rContigs[i].MeanCoverage {
			t.Fatalf("contig %d: coverage dense %v, map %v", i, dContigs[i].MeanCoverage, rContigs[i].MeanCoverage)
		}
	}

	dWalk, dErr := dense.EulerPath()
	rWalk, rErr := ref.EulerPath()
	if (dErr == nil) != (rErr == nil) {
		t.Fatalf("euler: dense err=%v, map err=%v", dErr, rErr)
	}
	if dErr == nil {
		if len(dWalk) != len(rWalk) {
			t.Fatalf("euler walk: dense %d nodes, map %d", len(dWalk), len(rWalk))
		}
		for i := range dWalk {
			if dWalk[i] != rWalk[i] {
				t.Fatalf("euler walk node %d: dense %v, map %v", i, dWalk[i], rWalk[i])
			}
		}
		if err := dense.ValidateWalk(dWalk); err != nil {
			t.Fatalf("dense walk invalid: %v", err)
		}
	}
}

func TestDenseMatchesMapReference(t *testing.T) {
	for _, shape := range diffShapes {
		for k := 2; k <= 8; k++ {
			t.Run(fmt.Sprintf("%s/k%d", shape.name, k), func(t *testing.T) {
				reads := diffWorkload(shape.seed, shape.genomeLen, shape.readLen, shape.numReads, shape.errRate)
				tbl := kmer.CountReads(reads, k)
				assertGraphsMatch(t, Build(tbl), BuildMap(tbl))
			})
		}
	}
}

// TestDenseIncrementalAddMatchesMap drives the re-finalize path: queries
// interleaved with AddKmer batches must keep matching the map builder.
func TestDenseIncrementalAddMatchesMap(t *testing.T) {
	reads := diffWorkload(42, 600, 40, 80, 0.005)
	k := 6
	tbl := kmer.CountReads(reads, k)
	entries := tbl.Entries()

	dense := NewGraph(k)
	ref := NewMapGraph(k)
	for i, e := range entries {
		dense.AddKmer(e.Kmer, e.Count)
		ref.AddKmer(e.Kmer, e.Count)
		// Query mid-build every so often, forcing finalize + re-dirty cycles.
		if i%97 == 0 {
			if dense.NumNodes() != ref.NumNodes() {
				t.Fatalf("after %d adds: nodes dense %d, map %d", i+1, dense.NumNodes(), ref.NumNodes())
			}
			dense.Contigs()
		}
	}
	assertGraphsMatch(t, dense, ref)
}

// TestDenseFleuryMatchesMapEuler cross-checks the ID-based Fleury rewrite:
// on an Eulerian graph both dense traversals and the map reference must
// produce valid walks covering every edge.
func TestDenseFleuryMatchesMapEuler(t *testing.T) {
	rng := stats.NewRNG(7)
	for trial := 0; trial < 5; trial++ {
		src := genome.GenerateGenome(120, rng)
		tbl := kmer.NewCountTable(7, 128)
		kmer.Iterate(src, 7, func(km kmer.Kmer) { tbl.Add(km) })
		dense, ref := Build(tbl), BuildMap(tbl)
		dWalk, dErr := dense.FleuryPath()
		_, rErr := ref.EulerPath()
		if (dErr == nil) != (rErr == nil) {
			t.Fatalf("trial %d: dense Fleury err=%v, map Euler err=%v", trial, dErr, rErr)
		}
		if dErr == nil {
			if err := dense.ValidateWalk(dWalk); err != nil {
				t.Fatalf("trial %d: Fleury walk invalid: %v", trial, err)
			}
		}
	}
}

// FuzzDenseVsMap feeds random read sets through both builders and requires
// identical contigs and Eulerian outcomes.
func FuzzDenseVsMap(f *testing.F) {
	f.Add("ACGTACGTTT\nGGTTACGTAC", uint8(4))
	f.Add("ACACACACAC", uint8(2))
	f.Add("TTTTTTTTTTTTTTTT\nACGT", uint8(8))
	f.Add("CGTGCGTGCTT", uint8(5))
	f.Fuzz(func(t *testing.T, text string, kRaw uint8) {
		k := 2 + int(kRaw)%7 // k ∈ [2, 8]
		if len(text) > 4096 {
			t.Skip("oversized input")
		}
		var reads []*genome.Sequence
		start := 0
		for i := 0; i <= len(text); i++ {
			if i == len(text) || text[i] == '\n' {
				if i > start {
					if s, err := genome.FromString(text[start:i]); err == nil && s.Len() >= k {
						reads = append(reads, s)
					}
				}
				start = i + 1
			}
		}
		if len(reads) == 0 {
			t.Skip("no valid reads")
		}
		tbl := kmer.CountReads(reads, k)
		assertGraphsMatch(t, Build(tbl), BuildMap(tbl))
	})
}
