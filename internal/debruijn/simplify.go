package debruijn

import (
	"sort"

	"pimassembler/internal/kmer"
)

// Graph simplification: the error-removal passes Velvet-class assemblers
// (the paper's CPU baseline family, [11]) run between construction and
// traversal. Sequencing errors create two topologies: *tips* — short
// dead-end branches seeded by an error near a read end — and *bubbles* —
// parallel paths between the same endpoints seeded by an error mid-read.
// Both passes preserve the dominant (higher-coverage) structure.
//
// All passes operate on node IDs and CSR edge indices; removal tombstones
// the edge slot and updates the flat degree vectors in place.

// SimplifyStats reports what a simplification pass removed.
type SimplifyStats struct {
	TipsClipped   int // edges removed by tip clipping
	BubblesPopped int // parallel paths removed
	EdgesRemoved  int // total edges deleted
	RoundsRun     int
}

// removeEdgeAt tombstones edge slot e of node from. Returns false when the
// slot was already dead.
func (g *Graph) removeEdgeAt(from, e int32) bool {
	if g.edgeDead[e] {
		return false
	}
	g.edgeDead[e] = true
	g.outDeg[from]--
	g.inDeg[g.edgeTo[e]]--
	g.edges--
	return true
}

// pruneIsolated drops nodes with no remaining edges.
func (g *Graph) pruneIsolated() {
	changed := false
	for _, id := range g.order {
		if g.outDeg[id] == 0 && g.inDeg[id] == 0 {
			g.alive[id] = false
			changed = true
		}
	}
	if changed {
		g.rebuildOrder()
	}
}

// ClipTips removes dead-end branches of at most maxLen edges whose mean
// coverage is below that of the path competing at their branch point.
// Returns the number of edges removed. One call runs a single pass; Simplify
// iterates to convergence.
func (g *Graph) ClipTips(maxLen int) int {
	if maxLen <= 0 {
		return 0
	}
	g.finalize()
	removed := 0
	// A tip starts at a node whose in-degree is 0 (forward tip) or ends at
	// a node with out-degree 0 (reverse tip), and is shorter than maxLen.
	for _, start := range g.order {
		// Forward tip: orphan start node with exactly one way forward.
		if g.inDeg[start] == 0 && g.outDeg[start] == 1 {
			path, end := g.walkForward(start, maxLen)
			if path != nil {
				// It is a clippable tip when it merges into a node that has
				// other inputs (the main path continues without it).
				if g.inDeg[end] > 1 {
					removed += g.removePath(start, path)
				}
			}
		}
		// Reverse tip: dead end with exactly one way back, hanging off a
		// branching node (error near the read's tail).
		if g.outDeg[start] == 0 && g.inDeg[start] == 1 {
			path, branch := g.walkBackward(start, maxLen)
			if path != nil {
				if g.outDeg[branch] > 1 {
					removed += g.removePath(branch, path)
				}
			}
		}
	}
	g.pruneIsolated()
	return removed
}

// predecessorEdge returns node n's single live incoming edge slot and its
// source node, or ok=false when n has other than exactly one predecessor
// edge. A predecessor's edge k-mer is n prepended with one base (e = b·n in
// sequence order), so there are at most four candidates to probe.
func (g *Graph) predecessorEdge(n int32) (from, edge int32, ok bool) {
	nk := g.idx.At(n)
	count := 0
	for b := 0; b < 4; b++ {
		e := (kmer.Kmer(b) | nk<<2) & kmer.Kmer(kmer.Mask(g.k))
		pid, found := g.idx.Lookup(e.Prefix(g.k))
		if !found {
			continue
		}
		for slot := g.edgeOff[pid]; slot < g.edgeOff[pid+1]; slot++ {
			if !g.edgeDead[slot] && g.edgeKmer[slot] == e {
				from, edge = pid, slot
				count++
			}
		}
	}
	return from, edge, count == 1
}

// walkBackward follows 1-in/1-out nodes upstream from end for at most
// maxLen edges, stopping at a node that branches. It returns the path of
// edge slots in forward order (branch → end) plus the branch node, or nil
// when the walk exceeds maxLen.
func (g *Graph) walkBackward(end int32, maxLen int) ([]int32, int32) {
	var rev []int32
	cur := end
	for len(rev) < maxLen {
		from, edge, ok := g.predecessorEdge(cur)
		if !ok {
			return nil, cur
		}
		rev = append(rev, edge)
		cur = from
		if g.outDeg[cur] > 1 || g.inDeg[cur] != 1 {
			// Reached the branch point.
			for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
				rev[i], rev[j] = rev[j], rev[i]
			}
			return rev, cur
		}
	}
	return nil, cur
}

// walkForward follows 1-out nodes from start for at most maxLen edges,
// stopping at a node that branches or merges. Returns nil if the walk
// exceeds maxLen without terminating (not a tip).
func (g *Graph) walkForward(start int32, maxLen int) ([]int32, int32) {
	var path []int32
	cur := start
	for len(path) < maxLen {
		if g.outDeg[cur] != 1 {
			return nil, cur
		}
		e := g.firstLiveEdge(cur, g.edgeOff[cur])
		path = append(path, e)
		cur = g.edgeTo[e]
		if g.inDeg[cur] > 1 || g.outDeg[cur] != 1 {
			return path, cur
		}
	}
	return nil, cur
}

// removePath deletes the chain of edge slots starting at start.
func (g *Graph) removePath(start int32, path []int32) int {
	cur := start
	removed := 0
	for _, e := range path {
		if g.removeEdgeAt(cur, e) {
			removed++
		}
		cur = g.edgeTo[e]
	}
	return removed
}

// PopBubbles finds pairs of equal-length parallel simple paths (length ≤
// maxLen) between the same branch and merge nodes and removes the one with
// lower mean coverage. Returns the number of bubbles popped.
func (g *Graph) PopBubbles(maxLen int) int {
	g.finalize()
	popped := 0
	for _, branch := range g.order {
		if g.outDeg[branch] < 2 {
			continue
		}
		// Trace each outgoing simple path to its merge node.
		type trace struct {
			path []int32
			end  int32
			cov  float64
		}
		var traces []trace
		for first := g.edgeOff[branch]; first < g.edgeOff[branch+1]; first++ {
			if g.edgeDead[first] {
				continue
			}
			path := []int32{first}
			cur := g.edgeTo[first]
			cov := float64(g.edgeCount[first])
			for len(path) < maxLen && g.inDeg[cur] == 1 && g.outDeg[cur] == 1 {
				e := g.firstLiveEdge(cur, g.edgeOff[cur])
				path = append(path, e)
				cov += float64(g.edgeCount[e])
				cur = g.edgeTo[e]
			}
			traces = append(traces, trace{path: path, end: cur, cov: cov / float64(len(path))})
		}
		// Pop the weaker arm of any pair converging on the same node with
		// the same length (a substitution error creates exactly this).
		sort.Slice(traces, func(a, b int) bool { return traces[a].cov > traces[b].cov })
		for i := 0; i < len(traces); i++ {
			for j := i + 1; j < len(traces); j++ {
				if traces[i].end == traces[j].end && len(traces[i].path) == len(traces[j].path) {
					if g.removePath(branch, traces[j].path) > 0 {
						popped++
						traces = append(traces[:j], traces[j+1:]...)
						j--
					}
				}
			}
		}
	}
	g.pruneIsolated()
	return popped
}

// CoverageCutoff removes every edge observed fewer than min times —
// Velvet's -cov_cutoff pass. At typical sequencing depth true k-mers appear
// ~coverage times while error k-mers appear once or twice, so a small
// cutoff removes the error mass that topology-only passes cannot reach
// (error arms braided into other error arms). Returns edges removed.
func (g *Graph) CoverageCutoff(min uint32) int {
	g.finalize()
	removed := 0
	for _, id := range g.order {
		for e := g.edgeOff[id]; e < g.edgeOff[id+1]; e++ {
			if !g.edgeDead[e] && g.edgeCount[e] < min {
				if g.removeEdgeAt(id, e) {
					removed++
				}
			}
		}
	}
	g.pruneIsolated()
	return removed
}

// Simplify runs tip clipping and bubble popping to convergence (bounded at
// maxRounds) and reports what was removed. tipLen/bubbleLen bound the
// branch lengths considered; Velvet's defaults correspond to ~2k.
func (g *Graph) Simplify(tipLen, bubbleLen, maxRounds int) SimplifyStats {
	var st SimplifyStats
	for round := 0; round < maxRounds; round++ {
		before := g.edges
		clipped := g.ClipTips(tipLen)
		bubbles := g.PopBubbles(bubbleLen)
		st.TipsClipped += clipped
		st.BubblesPopped += bubbles
		st.RoundsRun++
		if g.edges == before {
			break
		}
		st.EdgesRemoved += before - g.edges
	}
	return st
}
