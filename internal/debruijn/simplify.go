package debruijn

import (
	"sort"

	"pimassembler/internal/kmer"
)

// Graph simplification: the error-removal passes Velvet-class assemblers
// (the paper's CPU baseline family, [11]) run between construction and
// traversal. Sequencing errors create two topologies: *tips* — short
// dead-end branches seeded by an error near a read end — and *bubbles* —
// parallel paths between the same endpoints seeded by an error mid-read.
// Both passes preserve the dominant (higher-coverage) structure.

// SimplifyStats reports what a simplification pass removed.
type SimplifyStats struct {
	TipsClipped   int // edges removed by tip clipping
	BubblesPopped int // parallel paths removed
	EdgesRemoved  int // total edges deleted
	RoundsRun     int
}

// removeEdge deletes one edge (identified by its k-mer) from node from.
func (g *Graph) removeEdge(from kmer.Kmer, km kmer.Kmer) bool {
	edges := g.adj[from]
	for i, e := range edges {
		if e.Kmer == km {
			g.adj[from] = append(append([]Edge(nil), edges[:i]...), edges[i+1:]...)
			g.inDeg[e.To]--
			g.edges--
			return true
		}
	}
	return false
}

// pruneIsolated drops nodes with no remaining edges.
func (g *Graph) pruneIsolated() {
	for n := range g.adj {
		if len(g.adj[n]) == 0 && g.inDeg[n] == 0 {
			delete(g.adj, n)
			delete(g.inDeg, n)
		}
	}
}

// ClipTips removes dead-end branches of at most maxLen edges whose mean
// coverage is below that of the path competing at their branch point.
// Returns the number of edges removed. One call runs a single pass; Simplify
// iterates to convergence.
func (g *Graph) ClipTips(maxLen int) int {
	if maxLen <= 0 {
		return 0
	}
	removed := 0
	// A tip starts at a node whose in-degree is 0 (forward tip) or ends at
	// a node with out-degree 0 (reverse tip), and is shorter than maxLen.
	for _, start := range g.Nodes() {
		if !g.HasNode(start) {
			continue
		}
		// Forward tip: orphan start node with exactly one way forward.
		if g.InDegree(start) == 0 && g.OutDegree(start) == 1 {
			path, end := g.walkForward(start, maxLen)
			if path == nil {
				continue
			}
			// It is a clippable tip when it merges into a node that has
			// other inputs (the main path continues without it).
			if g.InDegree(end) > 1 {
				removed += g.removePath(start, path)
			}
		}
		// Reverse tip: dead end with exactly one way back, hanging off a
		// branching node (error near the read's tail).
		if g.HasNode(start) && g.OutDegree(start) == 0 && g.InDegree(start) == 1 {
			path, branch := g.walkBackward(start, maxLen)
			if path == nil {
				continue
			}
			if g.OutDegree(branch) > 1 {
				removed += g.removePath(branch, path)
			}
		}
	}
	g.pruneIsolated()
	return removed
}

// predecessors returns the nodes with an edge into n, with the connecting
// edge k-mers. A predecessor's edge k-mer is n prepended with one base
// (e = b·n in sequence order), so there are at most four candidates.
func (g *Graph) predecessors(n kmer.Kmer) []Edge {
	var preds []Edge
	for b := 0; b < 4; b++ {
		e := (kmer.Kmer(b) | n<<2) & kmer.Kmer(kmer.Mask(g.k))
		p := e.Prefix(g.k)
		for _, edge := range g.adj[p] {
			if edge.Kmer == e {
				preds = append(preds, Edge{Kmer: e, To: p, Count: edge.Count})
			}
		}
	}
	return preds
}

// walkBackward follows 1-in/1-out nodes upstream from end for at most
// maxLen edges, stopping at a node that branches. It returns the path in
// forward order (branch → end) plus the branch node, or nil when the walk
// exceeds maxLen.
func (g *Graph) walkBackward(end kmer.Kmer, maxLen int) ([]Edge, kmer.Kmer) {
	var rev []Edge
	cur := end
	for len(rev) < maxLen {
		preds := g.predecessors(cur)
		if len(preds) != 1 {
			return nil, cur
		}
		from := preds[0].To // predecessor node
		rev = append(rev, Edge{Kmer: preds[0].Kmer, To: cur, Count: preds[0].Count})
		cur = from
		if g.OutDegree(cur) > 1 || g.InDegree(cur) != 1 {
			// Reached the branch point.
			for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
				rev[i], rev[j] = rev[j], rev[i]
			}
			return rev, cur
		}
	}
	return nil, cur
}

// walkForward follows 1-out nodes from start for at most maxLen edges,
// stopping at a node that branches or merges. Returns nil if the walk
// exceeds maxLen without terminating (not a tip).
func (g *Graph) walkForward(start kmer.Kmer, maxLen int) ([]Edge, kmer.Kmer) {
	var path []Edge
	cur := start
	for len(path) < maxLen {
		out := g.Out(cur)
		if len(out) != 1 {
			return nil, cur
		}
		e := out[0]
		path = append(path, e)
		cur = e.To
		if g.InDegree(cur) > 1 || g.OutDegree(cur) != 1 {
			return path, cur
		}
	}
	return nil, cur
}

// removePath deletes the chain of edges starting at start.
func (g *Graph) removePath(start kmer.Kmer, path []Edge) int {
	cur := start
	removed := 0
	for _, e := range path {
		if g.removeEdge(cur, e.Kmer) {
			removed++
		}
		cur = e.To
	}
	return removed
}

// PopBubbles finds pairs of equal-length parallel simple paths (length ≤
// maxLen) between the same branch and merge nodes and removes the one with
// lower mean coverage. Returns the number of bubbles popped.
func (g *Graph) PopBubbles(maxLen int) int {
	popped := 0
	for _, branch := range g.Nodes() {
		if !g.HasNode(branch) || g.OutDegree(branch) < 2 {
			continue
		}
		// Trace each outgoing simple path to its merge node.
		type trace struct {
			path []Edge
			end  kmer.Kmer
			cov  float64
		}
		var traces []trace
		for _, first := range g.Out(branch) {
			path := []Edge{first}
			cur := first.To
			cov := float64(first.Count)
			for len(path) < maxLen && g.InDegree(cur) == 1 && g.OutDegree(cur) == 1 {
				e := g.Out(cur)[0]
				path = append(path, e)
				cov += float64(e.Count)
				cur = e.To
			}
			traces = append(traces, trace{path: path, end: cur, cov: cov / float64(len(path))})
		}
		// Pop the weaker arm of any pair converging on the same node with
		// the same length (a substitution error creates exactly this).
		sort.Slice(traces, func(a, b int) bool { return traces[a].cov > traces[b].cov })
		for i := 0; i < len(traces); i++ {
			for j := i + 1; j < len(traces); j++ {
				if traces[i].end == traces[j].end && len(traces[i].path) == len(traces[j].path) {
					if g.removePath(branch, traces[j].path) > 0 {
						popped++
						traces = append(traces[:j], traces[j+1:]...)
						j--
					}
				}
			}
		}
	}
	g.pruneIsolated()
	return popped
}

// CoverageCutoff removes every edge observed fewer than min times —
// Velvet's -cov_cutoff pass. At typical sequencing depth true k-mers appear
// ~coverage times while error k-mers appear once or twice, so a small
// cutoff removes the error mass that topology-only passes cannot reach
// (error arms braided into other error arms). Returns edges removed.
func (g *Graph) CoverageCutoff(min uint32) int {
	removed := 0
	for _, n := range g.Nodes() {
		if !g.HasNode(n) {
			continue
		}
		for _, e := range g.Out(n) {
			if e.Count < min {
				if g.removeEdge(n, e.Kmer) {
					removed++
				}
			}
		}
	}
	g.pruneIsolated()
	return removed
}

// Simplify runs tip clipping and bubble popping to convergence (bounded at
// maxRounds) and reports what was removed. tipLen/bubbleLen bound the
// branch lengths considered; Velvet's defaults correspond to ~2k.
func (g *Graph) Simplify(tipLen, bubbleLen, maxRounds int) SimplifyStats {
	var st SimplifyStats
	for round := 0; round < maxRounds; round++ {
		before := g.edges
		clipped := g.ClipTips(tipLen)
		bubbles := g.PopBubbles(bubbleLen)
		st.TipsClipped += clipped
		st.BubblesPopped += bubbles
		st.RoundsRun++
		if g.edges == before {
			break
		}
		st.EdgesRemoved += before - g.edges
	}
	return st
}
