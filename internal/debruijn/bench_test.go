package debruijn

import (
	"testing"

	"pimassembler/internal/genome"
	"pimassembler/internal/kmer"
	"pimassembler/internal/stats"
)

func benchTable(b *testing.B, genomeLen, k int) *kmer.CountTable {
	b.Helper()
	rng := stats.NewRNG(1)
	g := genome.GenerateGenome(genomeLen, rng)
	reads := genome.NewReadSampler(g, 101, 0, rng).Sample(genomeLen / 4)
	return kmer.CountReads(reads, k)
}

func BenchmarkBuild(b *testing.B) {
	tbl := benchTable(b, 10_000, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(tbl)
	}
}

func BenchmarkEulerPath(b *testing.B) {
	tbl := benchTable(b, 5_000, 16)
	g := Build(tbl)
	if _, err := g.EulerPath(); err != nil {
		b.Skip("non-Eulerian sample")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.EulerPath(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkContigs(b *testing.B) {
	tbl := benchTable(b, 10_000, 16)
	g := Build(tbl)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Contigs()
	}
}

func BenchmarkSimplify(b *testing.B) {
	rng := stats.NewRNG(2)
	ref := genome.GenerateGenome(3_000, rng)
	reads := genome.NewReadSampler(ref, 80, 0.004, rng).Sample(1_500)
	k := 15
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tbl := kmer.CountReads(reads, k)
		g := Build(tbl)
		b.StartTimer()
		g.CoverageCutoff(3)
		g.Simplify(2*k, 2*k, 10)
	}
}
