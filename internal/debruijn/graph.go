// Package debruijn implements the bidirected de Bruijn graph model of the
// paper's contig-generation stage (Fig. 5c): nodes are (k-1)-mers, each
// distinct k-mer contributes an edge from its prefix to its suffix, and
// contigs are spelled from Eulerian traversals (Fleury, as the paper's
// Traverse procedure names) or from maximal non-branching paths.
package debruijn

import (
	"fmt"
	"sort"

	"pimassembler/internal/genome"
	"pimassembler/internal/kmer"
)

// Edge is one de Bruijn edge: the k-mer it was built from, the node it
// leads to, and the observed multiplicity (hash-table count).
type Edge struct {
	Kmer  kmer.Kmer
	To    kmer.Kmer // suffix node
	Count uint32
}

// Graph is a de Bruijn graph over (k-1)-mer nodes.
type Graph struct {
	k     int // k-mer (edge) length; nodes are (k-1)-mers
	adj   map[kmer.Kmer][]Edge
	inDeg map[kmer.Kmer]int
	edges int
}

// K returns the edge (k-mer) length.
func (g *Graph) K() int { return g.k }

// NodeLen returns the node ((k-1)-mer) length.
func (g *Graph) NodeLen() int { return g.k - 1 }

// NewGraph creates an empty graph for k-mers of length k (k ≥ 2).
func NewGraph(k int) *Graph {
	if k < 2 || k > kmer.MaxK {
		panic(fmt.Sprintf("debruijn: k=%d outside [2,%d]", k, kmer.MaxK))
	}
	return &Graph{
		k:     k,
		adj:   make(map[kmer.Kmer][]Edge),
		inDeg: make(map[kmer.Kmer]int),
	}
}

// AddKmer inserts the edge for one distinct k-mer with its multiplicity:
// the MEM_insert pair of the DeBruijn procedure (node_1 = k_mer[0..k-2],
// node_2 = k_mer[1..k-1]).
func (g *Graph) AddKmer(km kmer.Kmer, count uint32) {
	from := km.Prefix(g.k)
	to := km.Suffix(g.k)
	g.adj[from] = append(g.adj[from], Edge{Kmer: km, To: to, Count: count})
	if _, ok := g.adj[to]; !ok {
		g.adj[to] = nil
	}
	g.inDeg[to]++
	if _, ok := g.inDeg[from]; !ok {
		g.inDeg[from] = 0
	}
	g.edges++
}

// Build constructs the graph from a k-mer count table, inserting each
// distinct k-mer once (frequency kept as edge weight).
func Build(t *kmer.CountTable) *Graph {
	g := NewGraph(t.K())
	for _, e := range t.Entries() {
		g.AddKmer(e.Kmer, e.Count)
	}
	return g
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges returns the edge count (distinct k-mers).
func (g *Graph) NumEdges() int { return g.edges }

// OutDegree returns the out-degree of node n.
func (g *Graph) OutDegree(n kmer.Kmer) int { return len(g.adj[n]) }

// InDegree returns the in-degree of node n.
func (g *Graph) InDegree(n kmer.Kmer) int { return g.inDeg[n] }

// Out returns the outgoing edges of n in deterministic (k-mer sorted) order.
func (g *Graph) Out(n kmer.Kmer) []Edge {
	out := append([]Edge(nil), g.adj[n]...)
	sort.Slice(out, func(a, b int) bool { return out[a].Kmer < out[b].Kmer })
	return out
}

// Nodes returns all nodes sorted by value.
func (g *Graph) Nodes() []kmer.Kmer {
	out := make([]kmer.Kmer, 0, len(g.adj))
	for n := range g.adj {
		out = append(out, n)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// HasNode reports whether n exists.
func (g *Graph) HasNode(n kmer.Kmer) bool {
	_, ok := g.adj[n]
	return ok
}

// BalanceClass classifies the graph for Eulerian traversal.
type BalanceClass int

const (
	// BalanceCircuit: every node balanced — an Eulerian circuit exists
	// (given connectivity).
	BalanceCircuit BalanceClass = iota
	// BalancePath: exactly one node with out-in = +1 (start) and one with
	// in-out = +1 (end) — an Eulerian path exists (given connectivity).
	BalancePath
	// BalanceNone: no Eulerian traversal covers all edges.
	BalanceNone
)

// Balance inspects degree balance and returns the class plus the start node
// for a traversal (the +1 node for a path; the smallest node with outgoing
// edges for a circuit). This is the out/in-degree scan of the paper's
// Traverse procedure, realised in hardware by PIM_Add row reductions.
func (g *Graph) Balance() (BalanceClass, kmer.Kmer) {
	var start, end kmer.Kmer
	plus, minus := 0, 0
	for _, n := range g.Nodes() {
		diff := g.OutDegree(n) - g.InDegree(n)
		switch {
		case diff == 0:
		case diff == 1:
			plus++
			start = n
		case diff == -1:
			minus++
			end = n
		default:
			return BalanceNone, 0
		}
	}
	_ = end
	switch {
	case plus == 0 && minus == 0:
		for _, n := range g.Nodes() {
			if g.OutDegree(n) > 0 {
				return BalanceCircuit, n
			}
		}
		return BalanceCircuit, 0
	case plus == 1 && minus == 1:
		return BalancePath, start
	default:
		return BalanceNone, 0
	}
}

// EdgeConnected reports whether all edges lie in one weakly connected
// component (isolated nodes are ignored) — the connectivity half of the
// Eulerian existence condition.
func (g *Graph) EdgeConnected() bool {
	// Union-find over nodes incident to at least one edge.
	parent := make(map[kmer.Kmer]kmer.Kmer)
	var find func(kmer.Kmer) kmer.Kmer
	find = func(x kmer.Kmer) kmer.Kmer {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b kmer.Kmer) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	touch := func(n kmer.Kmer) {
		if _, ok := parent[n]; !ok {
			parent[n] = n
		}
	}
	for n, edges := range g.adj {
		for _, e := range edges {
			touch(n)
			touch(e.To)
			union(n, e.To)
		}
	}
	if len(parent) == 0 {
		return true
	}
	var root kmer.Kmer
	first := true
	for n := range parent {
		if first {
			root = find(n)
			first = false
			continue
		}
		if find(n) != root {
			return false
		}
	}
	return true
}

// Spell converts a node walk (sequence of (k-1)-mers where consecutive
// nodes overlap by k-2) into a DNA sequence.
func (g *Graph) Spell(walk []kmer.Kmer) *genome.Sequence {
	if len(walk) == 0 {
		return genome.NewSequence(0)
	}
	nodeLen := g.NodeLen()
	seq := walk[0].ToSequence(nodeLen)
	for _, n := range walk[1:] {
		last := genome.NewSequence(1)
		last.SetBase(0, n.LastBase(nodeLen))
		seq = seq.Append(last)
	}
	return seq
}

// String summarises the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("debruijn.Graph{k=%d, nodes=%d, edges=%d}", g.k, g.NumNodes(), g.edges)
}
