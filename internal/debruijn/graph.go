// Package debruijn implements the bidirected de Bruijn graph model of the
// paper's contig-generation stage (Fig. 5c): nodes are (k-1)-mers, each
// distinct k-mer contributes an edge from its prefix to its suffix, and
// contigs are spelled from Eulerian traversals (Fleury, as the paper's
// Traverse procedure names) or from maximal non-branching paths.
//
// Representation: nodes are interned into dense int32 IDs by a kmer.Index
// and the adjacency is CSR-style flat arrays (edge offsets plus parallel
// edge-target/k-mer/count arrays) built in a finalize pass, with per-node
// in/out degrees as []int32 and edge removal via tombstones. Every traversal
// (Hierholzer, Fleury, contig emission, simplification) walks IDs over these
// arrays; Kmer-facing accessors are preserved at the API boundary. The
// retained map-of-slices builder lives in MapGraph as the differential
// reference. See DESIGN.md §13.
package debruijn

import (
	"fmt"
	"sort"

	"pimassembler/internal/genome"
	"pimassembler/internal/kmer"
)

// Edge is one de Bruijn edge: the k-mer it was built from, the node it
// leads to, and the observed multiplicity (hash-table count).
type Edge struct {
	Kmer  kmer.Kmer
	To    kmer.Kmer // suffix node
	Count uint32
}

// Graph is a de Bruijn graph over (k-1)-mer nodes, stored densely: node IDs
// from a kmer.Index, CSR adjacency, flat degree vectors.
type Graph struct {
	k   int         // k-mer (edge) length; nodes are (k-1)-mers
	idx *kmer.Index // (k-1)-mer -> dense node ID, in first-insertion order

	// Edges accumulated by AddKmer, folded into the CSR arrays by the next
	// finalize pass.
	pendFrom  []int32
	pendTo    []int32
	pendKmer  []kmer.Kmer
	pendCount []uint32

	// CSR adjacency, valid while !dirty: node i owns edge slots
	// edgeOff[i]..edgeOff[i+1], sorted by edge k-mer (the deterministic
	// order Out always exposed). Simplification tombstones slots via
	// edgeDead instead of compacting; the next finalize drops tombstones.
	edgeOff   []int32
	edgeTo    []int32
	edgeKmer  []kmer.Kmer
	edgeCount []uint32
	edgeDead  []bool

	inDeg  []int32 // live in-degree per node ID
	outDeg []int32 // live out-degree per node ID
	alive  []bool  // false once pruneIsolated dropped the node
	order  []int32 // alive node IDs sorted by (k-1)-mer value
	rank   []int32 // node ID -> position in order (-1 when pruned)
	edges  int     // live edge count
	dirty  bool

	scratch traversalScratch
}

// traversalScratch holds the reusable per-traversal buffers that used to be
// allocated as fresh maps on every call. A Graph (and hence its scratch) is
// not safe for concurrent use.
type traversalScratch struct {
	cursor   []int32 // per-node next-edge cursor (Hierholzer)
	stack    []int32 // DFS / Hierholzer stack
	walk     []int32 // traversal output before Kmer conversion
	seen     []bool  // per-node visit marks
	parent   []int32 // union-find parents (EdgeConnected)
	edgeUsed []bool  // per-edge marks (Contigs, ValidateWalk)
	edgePath []int32 // edge-index path buffer (simplify walks)
}

// ensureNodes sizes the per-node scratch for n nodes.
func (s *traversalScratch) ensureNodes(n int) {
	if cap(s.cursor) < n {
		s.cursor = make([]int32, n)
		s.seen = make([]bool, n)
		s.parent = make([]int32, n)
	}
	s.cursor = s.cursor[:n]
	s.seen = s.seen[:n]
	s.parent = s.parent[:n]
}

// ensureEdges returns the per-edge mark buffer, cleared, for m edges.
func (s *traversalScratch) ensureEdges(m int) []bool {
	if cap(s.edgeUsed) < m {
		s.edgeUsed = make([]bool, m)
	}
	s.edgeUsed = s.edgeUsed[:m]
	for i := range s.edgeUsed {
		s.edgeUsed[i] = false
	}
	return s.edgeUsed
}

// K returns the edge (k-mer) length.
func (g *Graph) K() int { return g.k }

// NodeLen returns the node ((k-1)-mer) length.
func (g *Graph) NodeLen() int { return g.k - 1 }

// NewGraph creates an empty graph for k-mers of length k (k ≥ 2).
func NewGraph(k int) *Graph {
	return NewGraphHint(k, 0, 0)
}

// NewGraphHint creates an empty graph pre-sized for about nodesHint nodes
// and edgesHint edges — the arena-style allocation graph construction from a
// count table uses so the build path neither rehashes nor regrows.
func NewGraphHint(k, nodesHint, edgesHint int) *Graph {
	if k < 2 || k > kmer.MaxK {
		panic(fmt.Sprintf("debruijn: k=%d outside [2,%d]", k, kmer.MaxK))
	}
	g := &Graph{k: k, idx: kmer.NewIndex(k-1, nodesHint)}
	if edgesHint > 0 {
		g.pendFrom = make([]int32, 0, edgesHint)
		g.pendTo = make([]int32, 0, edgesHint)
		g.pendKmer = make([]kmer.Kmer, 0, edgesHint)
		g.pendCount = make([]uint32, 0, edgesHint)
	}
	return g
}

// AddKmer inserts the edge for one distinct k-mer with its multiplicity:
// the MEM_insert pair of the DeBruijn procedure (node_1 = k_mer[0..k-2],
// node_2 = k_mer[1..k-1]).
func (g *Graph) AddKmer(km kmer.Kmer, count uint32) {
	from := g.idx.Intern(km.Prefix(g.k))
	to := g.idx.Intern(km.Suffix(g.k))
	g.pendFrom = append(g.pendFrom, from)
	g.pendTo = append(g.pendTo, to)
	g.pendKmer = append(g.pendKmer, km)
	g.pendCount = append(g.pendCount, count)
	g.edges++
	g.dirty = true
}

// Build constructs the graph from a k-mer counter — the serial CountTable
// or the hash-partitioned parallel table alike — inserting each distinct
// k-mer once (frequency kept as edge weight). Insertion order does not
// matter — finalize sorts every adjacency segment by k-mer — so the table
// is streamed unsorted rather than paying Entries' sort.
func Build(t kmer.Counter) *Graph {
	g := NewGraphHint(t.K(), t.Len()+1, t.Len())
	t.Each(func(km kmer.Kmer, count uint32) bool {
		g.AddKmer(km, count)
		return true
	})
	g.finalize()
	return g
}

// finalize folds pending AddKmer edges (plus surviving CSR edges) into fresh
// CSR arrays: a counting sort by source node, then a per-segment sort by
// edge k-mer for the deterministic adjacency order every traversal assumes.
func (g *Graph) finalize() {
	if !g.dirty {
		return
	}
	n := g.idx.Len()

	// Gather live edges: surviving CSR slots first, then the pending batch.
	from := make([]int32, 0, g.edges)
	to := make([]int32, 0, g.edges)
	kms := make([]kmer.Kmer, 0, g.edges)
	counts := make([]uint32, 0, g.edges)
	for id := 0; id+1 < len(g.edgeOff); id++ {
		for e := g.edgeOff[id]; e < g.edgeOff[id+1]; e++ {
			if g.edgeDead[e] {
				continue
			}
			from = append(from, int32(id))
			to = append(to, g.edgeTo[e])
			kms = append(kms, g.edgeKmer[e])
			counts = append(counts, g.edgeCount[e])
		}
	}
	from = append(from, g.pendFrom...)
	to = append(to, g.pendTo...)
	kms = append(kms, g.pendKmer...)
	counts = append(counts, g.pendCount...)

	// Aliveness: nodes stay pruned unless an edge touches them again; newly
	// interned nodes are alive.
	alive := make([]bool, n)
	for id := range alive {
		alive[id] = id >= len(g.alive) || g.alive[id]
	}
	for i := range g.pendFrom {
		alive[g.pendFrom[i]] = true
		alive[g.pendTo[i]] = true
	}

	// Counting sort by source node into the CSR layout.
	g.outDeg = make([]int32, n)
	g.inDeg = make([]int32, n)
	for i := range from {
		g.outDeg[from[i]]++
		g.inDeg[to[i]]++
	}
	g.edgeOff = make([]int32, n+1)
	for id := 0; id < n; id++ {
		g.edgeOff[id+1] = g.edgeOff[id] + g.outDeg[id]
	}
	pos := append([]int32(nil), g.edgeOff[:n]...)
	g.edgeTo = make([]int32, len(from))
	g.edgeKmer = make([]kmer.Kmer, len(from))
	g.edgeCount = make([]uint32, len(from))
	for i := range from {
		p := pos[from[i]]
		pos[from[i]]++
		g.edgeTo[p] = to[i]
		g.edgeKmer[p] = kms[i]
		g.edgeCount[p] = counts[i]
	}
	g.edgeDead = make([]bool, len(from))

	// Sort each node's segment by edge k-mer (out-degree is at most 4 for
	// distinct k-mers, so insertion sort is exact and allocation-free).
	for id := 0; id < n; id++ {
		lo, hi := g.edgeOff[id], g.edgeOff[id+1]
		for i := lo + 1; i < hi; i++ {
			for j := i; j > lo && g.edgeKmer[j] < g.edgeKmer[j-1]; j-- {
				g.edgeKmer[j], g.edgeKmer[j-1] = g.edgeKmer[j-1], g.edgeKmer[j]
				g.edgeTo[j], g.edgeTo[j-1] = g.edgeTo[j-1], g.edgeTo[j]
				g.edgeCount[j], g.edgeCount[j-1] = g.edgeCount[j-1], g.edgeCount[j]
			}
		}
	}

	g.alive = alive
	g.rebuildOrder()
	g.pendFrom, g.pendTo, g.pendKmer, g.pendCount = nil, nil, nil, nil
	g.dirty = false
}

// rebuildOrder recomputes the sorted alive-node enumeration and its inverse.
func (g *Graph) rebuildOrder() {
	n := g.idx.Len()
	g.order = g.order[:0]
	for id := 0; id < n; id++ {
		if g.alive[id] {
			g.order = append(g.order, int32(id))
		}
	}
	sort.Slice(g.order, func(a, b int) bool {
		return g.idx.At(g.order[a]) < g.idx.At(g.order[b])
	})
	if cap(g.rank) < n {
		g.rank = make([]int32, n)
	}
	g.rank = g.rank[:n]
	for i := range g.rank {
		g.rank[i] = -1
	}
	for i, id := range g.order {
		g.rank[id] = int32(i)
	}
}

// nodeID resolves a (k-1)-mer to its live node ID.
func (g *Graph) nodeID(n kmer.Kmer) (int32, bool) {
	id, ok := g.idx.Lookup(n)
	if !ok || !g.alive[id] {
		return 0, false
	}
	return id, true
}

// firstLiveEdge returns the first live edge slot of node id at or after e,
// or g.edgeOff[id+1] when the segment is exhausted.
func (g *Graph) firstLiveEdge(id int32, e int32) int32 {
	hi := g.edgeOff[id+1]
	for e < hi && g.edgeDead[e] {
		e++
	}
	return e
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int {
	g.finalize()
	return len(g.order)
}

// NumEdges returns the edge count (distinct k-mers).
func (g *Graph) NumEdges() int { return g.edges }

// OutDegree returns the out-degree of node n.
func (g *Graph) OutDegree(n kmer.Kmer) int {
	g.finalize()
	id, ok := g.nodeID(n)
	if !ok {
		return 0
	}
	return int(g.outDeg[id])
}

// InDegree returns the in-degree of node n.
func (g *Graph) InDegree(n kmer.Kmer) int {
	g.finalize()
	id, ok := g.nodeID(n)
	if !ok {
		return 0
	}
	return int(g.inDeg[id])
}

// Out returns the outgoing edges of n in deterministic (k-mer sorted) order.
func (g *Graph) Out(n kmer.Kmer) []Edge {
	g.finalize()
	id, ok := g.nodeID(n)
	if !ok {
		return nil
	}
	out := make([]Edge, 0, g.outDeg[id])
	for e := g.edgeOff[id]; e < g.edgeOff[id+1]; e++ {
		if g.edgeDead[e] {
			continue
		}
		out = append(out, Edge{Kmer: g.edgeKmer[e], To: g.idx.At(g.edgeTo[e]), Count: g.edgeCount[e]})
	}
	return out
}

// Nodes returns all nodes sorted by value.
func (g *Graph) Nodes() []kmer.Kmer {
	g.finalize()
	out := make([]kmer.Kmer, len(g.order))
	for i, id := range g.order {
		out[i] = g.idx.At(id)
	}
	return out
}

// HasNode reports whether n exists.
func (g *Graph) HasNode(n kmer.Kmer) bool {
	g.finalize()
	_, ok := g.nodeID(n)
	return ok
}

// SortedIDs returns the live node IDs in (k-1)-mer sorted order — the same
// enumeration as Nodes, for ID-indexed consumers (internal/core's graph
// engine). The slice is owned by the graph; callers must not mutate it.
func (g *Graph) SortedIDs() []int32 {
	g.finalize()
	return g.order
}

// KmerOfID returns the (k-1)-mer interned as id.
func (g *Graph) KmerOfID(id int32) kmer.Kmer {
	g.finalize()
	return g.idx.At(id)
}

// RankOfID returns id's position within SortedIDs, or -1 for pruned nodes.
func (g *Graph) RankOfID(id int32) int32 {
	g.finalize()
	return g.rank[id]
}

// EachOutID visits node id's live outgoing edges in the deterministic
// adjacency order, without materialising an []Edge.
func (g *Graph) EachOutID(id int32, fn func(to int32, km kmer.Kmer, count uint32)) {
	g.finalize()
	for e := g.edgeOff[id]; e < g.edgeOff[id+1]; e++ {
		if g.edgeDead[e] {
			continue
		}
		fn(g.edgeTo[e], g.edgeKmer[e], g.edgeCount[e])
	}
}

// BalanceClass classifies the graph for Eulerian traversal.
type BalanceClass int

const (
	// BalanceCircuit: every node balanced — an Eulerian circuit exists
	// (given connectivity).
	BalanceCircuit BalanceClass = iota
	// BalancePath: exactly one node with out-in = +1 (start) and one with
	// in-out = +1 (end) — an Eulerian path exists (given connectivity).
	BalancePath
	// BalanceNone: no Eulerian traversal covers all edges.
	BalanceNone
)

// Balance inspects degree balance and returns the class plus the start node
// for a traversal (the +1 node for a path; the smallest node with outgoing
// edges for a circuit). This is the out/in-degree scan of the paper's
// Traverse procedure, realised in hardware by PIM_Add row reductions.
func (g *Graph) Balance() (BalanceClass, kmer.Kmer) {
	g.finalize()
	class, start := g.balanceID()
	if class == BalanceNone || start < 0 {
		return class, 0
	}
	return class, g.idx.At(start)
}

// balanceID is Balance over node IDs; start is -1 for an empty circuit.
func (g *Graph) balanceID() (BalanceClass, int32) {
	var start int32 = -1
	plus, minus := 0, 0
	for _, id := range g.order {
		switch diff := g.outDeg[id] - g.inDeg[id]; {
		case diff == 0:
		case diff == 1:
			plus++
			start = id
		case diff == -1:
			minus++
		default:
			return BalanceNone, -1
		}
	}
	switch {
	case plus == 0 && minus == 0:
		for _, id := range g.order {
			if g.outDeg[id] > 0 {
				return BalanceCircuit, id
			}
		}
		return BalanceCircuit, -1
	case plus == 1 && minus == 1:
		return BalancePath, start
	default:
		return BalanceNone, -1
	}
}

// EdgeConnected reports whether all edges lie in one weakly connected
// component (isolated nodes are ignored) — the connectivity half of the
// Eulerian existence condition. Union-find over the flat node-ID range with
// reusable parent/seen scratch.
func (g *Graph) EdgeConnected() bool {
	g.finalize()
	n := g.idx.Len()
	g.scratch.ensureNodes(n)
	parent, touched := g.scratch.parent, g.scratch.seen
	for i := 0; i < n; i++ {
		parent[i] = int32(i)
		touched[i] = false
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	any := false
	for id := 0; id+1 < len(g.edgeOff); id++ {
		for e := g.edgeOff[id]; e < g.edgeOff[id+1]; e++ {
			if g.edgeDead[e] {
				continue
			}
			any = true
			touched[id] = true
			touched[g.edgeTo[e]] = true
			ra, rb := find(int32(id)), find(g.edgeTo[e])
			if ra != rb {
				parent[ra] = rb
			}
		}
	}
	if !any {
		return true
	}
	var root int32 = -1
	for id := 0; id < n; id++ {
		if !touched[id] {
			continue
		}
		r := find(int32(id))
		if root == -1 {
			root = r
			continue
		}
		if r != root {
			return false
		}
	}
	return true
}

// Spell converts a node walk (sequence of (k-1)-mers where consecutive
// nodes overlap by k-2) into a DNA sequence.
func (g *Graph) Spell(walk []kmer.Kmer) *genome.Sequence {
	if len(walk) == 0 {
		return genome.NewSequence(0)
	}
	nodeLen := g.NodeLen()
	seq := genome.NewSequence(nodeLen + len(walk) - 1)
	for i := 0; i < nodeLen; i++ {
		seq.SetBase(i, walk[0].Base(i))
	}
	for i, n := range walk[1:] {
		seq.SetBase(nodeLen+i, n.LastBase(nodeLen))
	}
	return seq
}

// String summarises the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("debruijn.Graph{k=%d, nodes=%d, edges=%d}", g.k, g.NumNodes(), g.edges)
}
