package debruijn

import (
	"strings"
	"testing"

	"pimassembler/internal/genome"
	"pimassembler/internal/kmer"
	"pimassembler/internal/stats"
)

// buildWeighted constructs a graph from (kmer, count) pairs.
func buildWeighted(t *testing.T, k int, entries map[string]uint32) *Graph {
	t.Helper()
	g := NewGraph(k)
	for text, count := range entries {
		g.AddKmer(kmer.MustParse(text), count)
	}
	return g
}

func TestClipTipsRemovesDeadEnd(t *testing.T) {
	// Main path spells ACGTT; a tip (GCG -> CGT) merges into the main
	// path's CGT node, whose in-degree becomes 2.
	g := buildWeighted(t, 3, map[string]uint32{
		"ACG": 10, "CGT": 10, "GTT": 10, // main chain AC->CG->GT->TT
		"GCG": 1, // tip: GC->CG (CG then continues via main)
	})
	before := g.NumEdges()
	clipped := g.ClipTips(3)
	if clipped != 1 {
		t.Fatalf("clipped %d edges, want 1", clipped)
	}
	if g.NumEdges() != before-1 {
		t.Fatalf("edges %d, want %d", g.NumEdges(), before-1)
	}
	if g.HasNode(kmer.MustParse("GC")) {
		t.Fatal("tip start node not pruned")
	}
	// Main chain intact.
	for _, text := range []string{"ACG", "CGT", "GTT"} {
		km := kmer.MustParse(text)
		found := false
		for _, e := range g.Out(km.Prefix(3)) {
			if e.Kmer == km {
				found = true
			}
		}
		if !found {
			t.Fatalf("main-chain edge %s lost", text)
		}
	}
}

func TestClipTipsIgnoresLongBranches(t *testing.T) {
	g := buildWeighted(t, 3, map[string]uint32{
		"ACG": 10, "CGT": 10, "GTT": 10,
		"GCG": 1,
	})
	if clipped := g.ClipTips(0); clipped != 0 {
		t.Fatal("maxLen=0 must clip nothing")
	}
}

func TestPopBubblesKeepsDominantArm(t *testing.T) {
	// Two parallel single-edge arms AC->CA (via ACA? no) — construct a
	// bubble with 4-mers: branch node ACG splits on two 4-mers ACGT/ACGA
	// converging... single-edge arms converge only if suffixes equal,
	// impossible for distinct k-mers. Use 2-edge arms:
	// branch AAC: arm1 AACG->ACGT (nodes ACG->CGT), arm2 AACT->ACTT?
	// ends CGT vs CTT differ. Construct carefully with k=4:
	// arm1: AACG, ACGG  (AAC->ACG->CGG)
	// arm2: AACC, ACCG? ends CCG != CGG.
	// For equal ends the last (k-1)-mer must match: arm edges
	// arm1: AACG, ACGG -> end CGG
	// arm2: AACT, ACTG? end CTG. Still differs.
	// Equal-end 2-edge arms need final 3-mer equal: choose end "GGG":
	// arm1: AACG, ACGG, CGGG? that's 3 edges (AAC->ACG->CGG->GGG).
	// arm2: AACT, ACTG, CTGG? end TGG. Hmm.
	// Simpler: use explicit node walks where arms differ only in their
	// middle base — classic substitution bubble with k=4 and arm length 3:
	// true:  AAC -> ACG -> CGT -> GTC  (edges AACG, ACGT, CGTC)
	// error: AAC -> ACT -> CTT -> TTC? ends GTC vs TTC differ.
	// A substitution bubble converges after k-1 = 3 edges only when the
	// downstream bases realign: true read ...AACGTC..., error ...AACTTC...
	// do not share 3-suffix until 3 steps past the error. Model exactly:
	// true:   AACGT CGTCA? — build from strings instead.
	trueSeq := genome.MustFromString("AAACGTCCC")
	errSeq := genome.MustFromString("AAAGGTCCC") // C->G substitution at pos 3
	k := 4
	g := NewGraph(k)
	counts := map[kmer.Kmer]uint32{}
	for _, km := range kmer.Extract(trueSeq, k) {
		counts[km] += 10
	}
	for _, km := range kmer.Extract(errSeq, k) {
		counts[km]++
	}
	for km, c := range counts {
		g.AddKmer(km, c)
	}
	popped := g.PopBubbles(2 * k)
	if popped == 0 {
		t.Fatal("substitution bubble not popped")
	}
	// The surviving graph must spell the true sequence.
	contigs := g.Contigs()
	joined := ""
	for _, c := range contigs {
		joined += " " + c.Seq.String()
	}
	if !strings.Contains(joined, "AAACGTCCC") {
		t.Fatalf("dominant path lost: %s", joined)
	}
	for _, c := range contigs {
		if strings.Contains(c.Seq.String(), "AAAGGT") {
			t.Fatal("error arm survived")
		}
	}
}

func TestSimplifyErrorReads(t *testing.T) {
	// End-to-end: noisy reads fragment the assembly; Simplify must recover
	// a dramatically cleaner graph whose edge count approaches the true
	// k-mer count.
	rng := stats.NewRNG(77)
	ref := genome.GenerateGenome(3000, rng)
	sampler := genome.NewReadSampler(ref, 80, 0.004, rng)
	reads := sampler.Sample(1500)
	k := 15
	tbl := kmer.NewCountTable(k, 4096)
	for _, r := range reads {
		kmer.Iterate(r, k, func(km kmer.Kmer) { tbl.Add(km) })
	}
	g := Build(tbl)
	trueKmers := 3000 - k + 1
	noisyEdges := g.NumEdges()
	if noisyEdges < trueKmers*3/2 {
		t.Skipf("error injection produced too few artefacts (%d edges)", noisyEdges)
	}
	st := g.Simplify(2*k, 2*k, 10)
	if st.TipsClipped == 0 {
		t.Error("no tips clipped on noisy input")
	}
	if g.NumEdges() >= noisyEdges {
		t.Error("simplification removed nothing")
	}
	// Topology passes alone cannot reach error arms braided into other
	// error arms; the coverage cutoff (errors appear 1-2 times at ~40x
	// depth) plus a final clip must recover a near-clean graph.
	if removed := g.CoverageCutoff(3); removed == 0 {
		t.Error("coverage cutoff removed nothing")
	}
	g.Simplify(2*k, 2*k, 10)
	trueEdges := 3000 - k + 1
	if g.NumEdges() > trueEdges*11/10 {
		t.Errorf("%d edges remain vs %d true k-mers", g.NumEdges(), trueEdges)
	}
	if n := len(g.Contigs()); n > 60 {
		t.Errorf("still %d contigs after simplification + cutoff", n)
	}
}

func TestCoverageCutoffPreservesStrongEdges(t *testing.T) {
	g := buildWeighted(t, 3, map[string]uint32{"ACG": 10, "CGT": 10, "GTT": 1})
	if removed := g.CoverageCutoff(2); removed != 1 {
		t.Fatalf("removed %d, want 1", removed)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edges %d, want 2", g.NumEdges())
	}
	if g.CoverageCutoff(1) != 0 {
		t.Fatal("cutoff 1 must remove nothing")
	}
}

func TestSimplifyPreservesCleanGraph(t *testing.T) {
	rng := stats.NewRNG(78)
	ref := genome.GenerateGenome(2000, rng)
	reads := genome.TilingReads(ref, 100, 50)
	k := 17
	tbl := kmer.NewCountTable(k, 4096)
	for _, r := range reads {
		kmer.Iterate(r, k, func(km kmer.Kmer) { tbl.Add(km) })
	}
	g := Build(tbl)
	before := g.NumEdges()
	g.Simplify(2*k, 2*k, 10)
	if g.NumEdges() != before {
		t.Fatalf("simplification damaged a clean graph: %d -> %d edges", before, g.NumEdges())
	}
	contigs := g.Contigs()
	if len(contigs) != 1 || contigs[0].Seq.String() != ref.String() {
		t.Fatal("clean assembly broken by simplification")
	}
}

func TestSimplifyStatsRounds(t *testing.T) {
	g := buildWeighted(t, 3, map[string]uint32{"ACG": 5, "CGT": 5, "GTT": 5, "GCG": 1})
	st := g.Simplify(3, 6, 10)
	if st.RoundsRun < 1 {
		t.Fatal("no rounds recorded")
	}
	if st.TipsClipped != 1 {
		t.Fatalf("tips clipped %d, want 1", st.TipsClipped)
	}
}
