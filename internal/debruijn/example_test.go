package debruijn_test

import (
	"fmt"

	"pimassembler/internal/debruijn"
	"pimassembler/internal/genome"
	"pimassembler/internal/kmer"
)

// Assembling a short sequence: count k-mers, build the graph, walk the
// Eulerian path, and spell the superstring.
func ExampleGraph_EulerPath() {
	s := genome.MustFromString("ACGTTGCA")
	tbl := kmer.NewCountTable(4, 16)
	kmer.Iterate(s, 4, func(km kmer.Kmer) { tbl.Add(km) })
	g := debruijn.Build(tbl)
	walk, err := g.EulerPath()
	if err != nil {
		fmt.Println("no Eulerian path:", err)
		return
	}
	fmt.Println(g.Spell(walk))
	// Output: ACGTTGCA
}

// Contigs stop at branches: a repeated 3-mer splits the assembly.
func ExampleGraph_Contigs() {
	g := debruijn.NewGraph(4)
	for _, text := range []string{"AACG", "ACGT", "CGTT"} {
		g.AddKmer(kmer.MustParse(text), 1)
	}
	for _, c := range g.Contigs() {
		fmt.Printf("%s (%d k-mers)\n", c.Seq, c.EdgeCount)
	}
	// Output: AACGTT (3 k-mers)
}
