package debruijn

import (
	"strings"
	"testing"
	"testing/quick"

	"pimassembler/internal/genome"
	"pimassembler/internal/kmer"
	"pimassembler/internal/stats"
)

func buildFromString(t *testing.T, text string, k int) *Graph {
	t.Helper()
	s := genome.MustFromString(text)
	tbl := kmer.NewCountTable(k, 64)
	kmer.Iterate(s, k, func(km kmer.Kmer) { tbl.Add(km) })
	return Build(tbl)
}

func TestPaperWorkedExample(t *testing.T) {
	// Fig. 5: S = CGTGCGTGCTT with k = 5 gives 6 distinct k-mers, hence
	// 6 edges over 4-mer nodes.
	g := buildFromString(t, "CGTGCGTGCTT", 5)
	if g.NumEdges() != 6 {
		t.Fatalf("edges %d, want 6", g.NumEdges())
	}
	// Nodes: CGTG GTGC TGCG GCGT TGCT GCTT = 6 distinct 4-mers.
	if g.NumNodes() != 6 {
		t.Fatalf("nodes %d, want 6", g.NumNodes())
	}
	walk, err := g.EulerPath()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.ValidateWalk(walk); err != nil {
		t.Fatal(err)
	}
	// CGTGC occurs twice in S but contributes one edge, so the Euler path
	// over distinct k-mers spells the 10-base superstring GTGCGTGCTT; every
	// distinct k-mer of S must appear in it.
	spelled := g.Spell(walk).String()
	if len(spelled) != g.NodeLen()+g.NumEdges() {
		t.Fatalf("spelled %q has wrong length", spelled)
	}
	for _, km := range []string{"CGTGC", "GTGCG", "TGCGT", "GCGTG", "GTGCT", "TGCTT"} {
		if !strings.Contains(spelled, km) {
			t.Fatalf("spelled %q missing k-mer %s", spelled, km)
		}
	}
}

func TestDegreesAndBalance(t *testing.T) {
	g := buildFromString(t, "ACGTT", 3)
	// k-mers: ACG CGT GTT; nodes AC->CG->GT->TT linear chain.
	start := kmer.MustParse("AC")
	end := kmer.MustParse("TT")
	if g.OutDegree(start) != 1 || g.InDegree(start) != 0 {
		t.Fatal("start degrees wrong")
	}
	if g.OutDegree(end) != 0 || g.InDegree(end) != 1 {
		t.Fatal("end degrees wrong")
	}
	class, s := g.Balance()
	if class != BalancePath || s != start {
		t.Fatalf("balance %v start %v", class, s)
	}
}

func TestBalanceCircuit(t *testing.T) {
	// A cyclic sequence: spell a cycle by repeating the seed so that every
	// node is balanced. "AABAA..." style: use ACGTACGTACG with k=4 wraps?
	// Simpler: build edges of a directed cycle directly.
	g := NewGraph(3)
	// Cycle over nodes AC -> CA -> AC via k-mers ACA, CAC.
	g.AddKmer(kmer.MustParse("ACA"), 1)
	g.AddKmer(kmer.MustParse("CAC"), 1)
	class, _ := g.Balance()
	if class != BalanceCircuit {
		t.Fatalf("balance %v, want circuit", class)
	}
	walk, err := g.EulerPath()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.ValidateWalk(walk); err != nil {
		t.Fatal(err)
	}
}

func TestBalanceNone(t *testing.T) {
	g := NewGraph(3)
	// Two edges out of AA, none in: diff +2.
	g.AddKmer(kmer.MustParse("AAC"), 1)
	g.AddKmer(kmer.MustParse("AAG"), 1)
	if class, _ := g.Balance(); class != BalanceNone {
		t.Fatalf("balance %v, want none", class)
	}
	if _, err := g.EulerPath(); err == nil {
		t.Fatal("Euler path found on unbalanced graph")
	}
}

func TestDisconnectedRejected(t *testing.T) {
	g := NewGraph(3)
	// Two disjoint cycles: balanced but not edge-connected.
	g.AddKmer(kmer.MustParse("ACA"), 1)
	g.AddKmer(kmer.MustParse("CAC"), 1)
	g.AddKmer(kmer.MustParse("GTG"), 1)
	g.AddKmer(kmer.MustParse("TGT"), 1)
	if g.EdgeConnected() {
		t.Fatal("disjoint cycles reported connected")
	}
	if _, err := g.EulerPath(); err == nil {
		t.Fatal("Euler path found on disconnected graph")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewGraph(5)
	if _, err := g.EulerPath(); err == nil {
		t.Fatal("empty graph must have no Euler path")
	}
	if !g.EdgeConnected() {
		t.Fatal("empty graph is vacuously connected")
	}
	if got := g.Contigs(); len(got) != 0 {
		t.Fatalf("empty graph produced contigs: %v", got)
	}
}

func TestFleuryMatchesHierholzer(t *testing.T) {
	rng := stats.NewRNG(12)
	for trial := 0; trial < 10; trial++ {
		g := genomeGraph(rng, 120, 7)
		hWalk, hErr := g.EulerPath()
		fWalk, fErr := g.FleuryPath()
		if (hErr == nil) != (fErr == nil) {
			t.Fatalf("trial %d: Hierholzer err=%v, Fleury err=%v", trial, hErr, fErr)
		}
		if hErr != nil {
			continue
		}
		if err := g.ValidateWalk(hWalk); err != nil {
			t.Fatalf("trial %d: Hierholzer walk invalid: %v", trial, err)
		}
		if err := g.ValidateWalk(fWalk); err != nil {
			t.Fatalf("trial %d: Fleury walk invalid: %v", trial, err)
		}
	}
}

// genomeGraph builds the graph of a random genome's k-mer set.
func genomeGraph(rng *stats.RNG, n, k int) *Graph {
	g := genome.GenerateGenome(n, rng)
	tbl := kmer.NewCountTable(k, n)
	kmer.Iterate(g, k, func(km kmer.Kmer) { tbl.Add(km) })
	return Build(tbl)
}

// Property: when a random genome's k-mer graph admits an Eulerian path, the
// spelled walk contains every genome k-mer, and with unique (k-1)-mers it
// reconstructs the genome exactly. (Unique k-mers alone are not enough: a
// repeated (k-1)-mer is a branch node, and distinct Eulerian walks through
// it spell distinct superstrings — node-level uniqueness is what makes the
// graph a simple path with a forced walk.)
func TestEulerReconstructionProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 40 + rng.Intn(200)
		k := 8 + rng.Intn(6)
		src := genome.GenerateGenome(n, rng)
		tbl := kmer.NewCountTable(k, n)
		seen := make(map[kmer.Kmer]bool)
		unique := true
		kmer.Iterate(src, k, func(km kmer.Kmer) {
			if seen[km] {
				unique = false
			}
			seen[km] = true
			tbl.Add(km)
		})
		seenNodes := make(map[kmer.Kmer]bool)
		uniqueNodes := true
		kmer.Iterate(src, k-1, func(km kmer.Kmer) {
			if seenNodes[km] {
				uniqueNodes = false
			}
			seenNodes[km] = true
		})
		g := Build(tbl)
		walk, err := g.EulerPath()
		if err != nil {
			// A random genome with repeated k-mers can legitimately be
			// non-Eulerian; only unique-k-mer genomes must traverse.
			return !unique
		}
		if g.ValidateWalk(walk) != nil {
			return false
		}
		spelled := g.Spell(walk).String()
		if uniqueNodes && spelled != src.String() {
			return false
		}
		// Every source k-mer must appear in the spelled superstring.
		text := src.String()
		for i := 0; i+k <= len(text); i++ {
			if !strings.Contains(spelled, text[i:i+k]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestContigsLinearGenome(t *testing.T) {
	// A genome with unique k-mers yields exactly one contig: the genome.
	rng := stats.NewRNG(33)
	var g *Graph
	var src *genome.Sequence
	for {
		src = genome.GenerateGenome(100, rng)
		k := 12
		tbl := kmer.NewCountTable(k, 128)
		unique := true
		seen := make(map[kmer.Kmer]bool)
		kmer.Iterate(src, k, func(km kmer.Kmer) {
			if seen[km] {
				unique = false
			}
			seen[km] = true
			tbl.Add(km)
		})
		if unique {
			g = Build(tbl)
			break
		}
	}
	contigs := g.Contigs()
	if len(contigs) != 1 {
		t.Fatalf("got %d contigs, want 1", len(contigs))
	}
	if contigs[0].Seq.String() != src.String() {
		t.Fatalf("contig %q != genome", contigs[0].Seq.String())
	}
	if contigs[0].EdgeCount != g.NumEdges() {
		t.Fatalf("contig edge count %d, want %d", contigs[0].EdgeCount, g.NumEdges())
	}
}

func TestContigsBranching(t *testing.T) {
	// Fig. 5c worked example: the graph over CGTG,GTGC,TGCT,GCTT +
	// CTTA,TTAC,TACG,ACGG + TTAG,TAGG produces contigs I, II, III.
	g := NewGraph(5)
	for _, text := range []string{
		"CGTGC", "GTGCT", "TGCTT", // contig I: CGTGCTT
		"GCTTA",                   // bridge from contig I end into the branch node
		"CTTAC", "TTACG", "TACGG", // contig II: TTACGG-ish branch
		"CTTAG", "TTAGG", // contig III: TTAGG branch
	} {
		g.AddKmer(kmer.MustParse(text), 1)
	}
	contigs := g.Contigs()
	if len(contigs) < 3 {
		t.Fatalf("branching graph produced %d contigs, want >=3", len(contigs))
	}
	// Every edge appears in exactly one contig.
	total := 0
	for _, c := range contigs {
		total += c.EdgeCount
	}
	if total != g.NumEdges() {
		t.Fatalf("contigs cover %d edges, graph has %d", total, g.NumEdges())
	}
}

// Property: contigs partition the edge set for arbitrary read graphs.
func TestContigsPartitionProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		src := genome.GenerateRepetitiveGenome(150+rng.Intn(150), 20, 3, rng)
		k := 6 + rng.Intn(8)
		reads := genome.NewReadSampler(src, 40, 0, rng).Sample(30)
		tbl := kmer.CountReads(reads, k)
		g := Build(tbl)
		contigs := g.Contigs()
		total := 0
		minLen := g.NodeLen() + 1
		for _, c := range contigs {
			total += c.EdgeCount
			if c.Seq.Len() < minLen {
				return false // a contig must spell at least one full k-mer
			}
			if c.MeanCoverage <= 0 {
				return false
			}
		}
		return total == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestN50(t *testing.T) {
	mk := func(n int) Contig {
		return Contig{Seq: genome.GenerateGenome(n, stats.NewRNG(uint64(n)))}
	}
	contigs := []Contig{mk(100), mk(50), mk(10)}
	// Total 160; half 80; largest-first cumulative: 100 >= 80 → N50 = 100.
	if got := N50(contigs); got != 100 {
		t.Fatalf("N50 %d, want 100", got)
	}
	if N50(nil) != 0 {
		t.Fatal("empty N50 must be 0")
	}
	if TotalBases(contigs) != 160 {
		t.Fatal("TotalBases wrong")
	}
}

func TestSpellEmptyWalk(t *testing.T) {
	g := NewGraph(5)
	if got := g.Spell(nil); got.Len() != 0 {
		t.Fatalf("empty walk spelled %q", got.String())
	}
}

func TestNewGraphPanics(t *testing.T) {
	for _, k := range []int{1, 0, 40} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("k=%d accepted", k)
				}
			}()
			NewGraph(k)
		}()
	}
}
