package debruijn

import (
	"sort"

	"pimassembler/internal/genome"
	"pimassembler/internal/kmer"
)

// Contig is one assembled contiguous sequence with its supporting evidence.
type Contig struct {
	Seq *genome.Sequence
	// EdgeCount is the number of k-mers (graph edges) the contig spells.
	EdgeCount int
	// MeanCoverage is the average multiplicity of the spelled k-mers.
	MeanCoverage float64
}

// Contigs emits the maximal non-branching paths of the graph — the contig
// set of the assembly's stage 2 (Fig. 5a step 2: contigs I, II, III in the
// worked example). A path extends through nodes with in-degree 1 and
// out-degree 1 and stops at any branch, tip, or merge; isolated cycles are
// emitted once each. Each distinct k-mer appears in the graph as exactly
// one edge, so edges are identified by their k-mer.
func (g *Graph) Contigs() []Contig {
	var contigs []Contig
	used := make(map[kmer.Kmer]bool, g.edges)

	internal := func(n kmer.Kmer) bool {
		return g.OutDegree(n) == 1 && g.InDegree(n) == 1
	}

	// Paths starting at every edge that leaves a non-internal node.
	for _, start := range g.Nodes() {
		if internal(start) {
			continue
		}
		for _, e := range g.Out(start) {
			if used[e.Kmer] {
				continue
			}
			used[e.Kmer] = true
			walk := []Edge{e}
			cur := e.To
			for internal(cur) {
				next := g.Out(cur)[0]
				if used[next.Kmer] {
					break
				}
				used[next.Kmer] = true
				walk = append(walk, next)
				cur = next.To
			}
			contigs = append(contigs, g.spellEdgeWalk(start, walk))
		}
	}

	// Isolated cycles where every node is internal.
	for _, start := range g.Nodes() {
		if !internal(start) {
			continue
		}
		first := g.Out(start)[0]
		if used[first.Kmer] {
			continue
		}
		used[first.Kmer] = true
		walk := []Edge{first}
		cur := first.To
		for cur != start {
			next := g.Out(cur)[0]
			used[next.Kmer] = true
			walk = append(walk, next)
			cur = next.To
		}
		contigs = append(contigs, g.spellEdgeWalk(start, walk))
	}

	sort.Slice(contigs, func(a, b int) bool {
		sa, sb := contigs[a].Seq.String(), contigs[b].Seq.String()
		if len(sa) != len(sb) {
			return len(sa) > len(sb)
		}
		return sa < sb
	})
	return contigs
}

// spellEdgeWalk converts a start node plus a chain of edges into a Contig:
// the start (k-1)-mer followed by one base per edge.
func (g *Graph) spellEdgeWalk(start kmer.Kmer, walk []Edge) Contig {
	nodeLen := g.NodeLen()
	seq := start.ToSequence(nodeLen)
	var coverage float64
	for _, e := range walk {
		tail := genome.NewSequence(1)
		tail.SetBase(0, e.To.LastBase(nodeLen))
		seq = seq.Append(tail)
		coverage += float64(e.Count)
	}
	return Contig{
		Seq:          seq,
		EdgeCount:    len(walk),
		MeanCoverage: coverage / float64(len(walk)),
	}
}

// N50 computes the N50 statistic of a contig set: the largest length L such
// that contigs of length ≥ L cover at least half the total assembled bases.
func N50(contigs []Contig) int {
	if len(contigs) == 0 {
		return 0
	}
	lengths := make([]int, len(contigs))
	total := 0
	for i, c := range contigs {
		lengths[i] = c.Seq.Len()
		total += c.Seq.Len()
	}
	sort.Sort(sort.Reverse(sort.IntSlice(lengths)))
	acc := 0
	for _, l := range lengths {
		acc += l
		if 2*acc >= total {
			return l
		}
	}
	return lengths[len(lengths)-1]
}

// TotalBases sums contig lengths.
func TotalBases(contigs []Contig) int {
	t := 0
	for _, c := range contigs {
		t += c.Seq.Len()
	}
	return t
}
