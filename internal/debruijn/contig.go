package debruijn

import (
	"sort"

	"pimassembler/internal/genome"
)

// Contig is one assembled contiguous sequence with its supporting evidence.
type Contig struct {
	Seq *genome.Sequence
	// EdgeCount is the number of k-mers (graph edges) the contig spells.
	EdgeCount int
	// MeanCoverage is the average multiplicity of the spelled k-mers.
	MeanCoverage float64
}

// Contigs emits the maximal non-branching paths of the graph — the contig
// set of the assembly's stage 2 (Fig. 5a step 2: contigs I, II, III in the
// worked example). A path extends through nodes with in-degree 1 and
// out-degree 1 and stops at any branch, tip, or merge; isolated cycles are
// emitted once each. The walk runs on node IDs with a reusable per-edge
// used mask instead of a per-call map, and each contig's sequence is written
// in one allocation.
func (g *Graph) Contigs() []Contig {
	g.finalize()
	var contigs []Contig
	used := g.scratch.ensureEdges(len(g.edgeKmer))

	internal := func(id int32) bool {
		return g.outDeg[id] == 1 && g.inDeg[id] == 1
	}
	// firstOut returns node id's single live out-edge (callers guarantee
	// out-degree ≥ 1).
	firstOut := func(id int32) int32 {
		return g.firstLiveEdge(id, g.edgeOff[id])
	}

	walk := g.scratch.edgePath[:0]

	// Paths starting at every edge that leaves a non-internal node.
	for _, start := range g.order {
		if internal(start) {
			continue
		}
		for e := g.edgeOff[start]; e < g.edgeOff[start+1]; e++ {
			if g.edgeDead[e] || used[e] {
				continue
			}
			used[e] = true
			walk = append(walk[:0], e)
			cur := g.edgeTo[e]
			for internal(cur) {
				next := firstOut(cur)
				if used[next] {
					break
				}
				used[next] = true
				walk = append(walk, next)
				cur = g.edgeTo[next]
			}
			contigs = append(contigs, g.spellEdgeWalk(start, walk))
		}
	}

	// Isolated cycles where every node is internal.
	for _, start := range g.order {
		if !internal(start) {
			continue
		}
		first := firstOut(start)
		if used[first] {
			continue
		}
		used[first] = true
		walk = append(walk[:0], first)
		cur := g.edgeTo[first]
		for cur != start {
			next := firstOut(cur)
			used[next] = true
			walk = append(walk, next)
			cur = g.edgeTo[next]
		}
		contigs = append(contigs, g.spellEdgeWalk(start, walk))
	}
	g.scratch.edgePath = walk[:0]

	sort.Slice(contigs, func(a, b int) bool {
		sa, sb := contigs[a].Seq.String(), contigs[b].Seq.String()
		if len(sa) != len(sb) {
			return len(sa) > len(sb)
		}
		return sa < sb
	})
	return contigs
}

// spellEdgeWalk converts a start node plus a chain of edge indices into a
// Contig: the start (k-1)-mer followed by one base per edge, written into a
// single pre-sized sequence.
func (g *Graph) spellEdgeWalk(start int32, walk []int32) Contig {
	nodeLen := g.NodeLen()
	seq := genome.NewSequence(nodeLen + len(walk))
	startKm := g.idx.At(start)
	for i := 0; i < nodeLen; i++ {
		seq.SetBase(i, startKm.Base(i))
	}
	var coverage float64
	for i, e := range walk {
		// The appended base is the target node's last base — equivalently
		// the edge k-mer's base k-1.
		seq.SetBase(nodeLen+i, g.edgeKmer[e].Base(g.k-1))
		coverage += float64(g.edgeCount[e])
	}
	return Contig{
		Seq:          seq,
		EdgeCount:    len(walk),
		MeanCoverage: coverage / float64(len(walk)),
	}
}

// N50 computes the N50 statistic of a contig set: the largest length L such
// that contigs of length ≥ L cover at least half the total assembled bases.
func N50(contigs []Contig) int {
	if len(contigs) == 0 {
		return 0
	}
	lengths := make([]int, len(contigs))
	total := 0
	for i, c := range contigs {
		lengths[i] = c.Seq.Len()
		total += c.Seq.Len()
	}
	sort.Sort(sort.Reverse(sort.IntSlice(lengths)))
	acc := 0
	for _, l := range lengths {
		acc += l
		if 2*acc >= total {
			return l
		}
	}
	return lengths[len(lengths)-1]
}

// TotalBases sums contig lengths.
func TotalBases(contigs []Contig) int {
	t := 0
	for _, c := range contigs {
		t += c.Seq.Len()
	}
	return t
}
