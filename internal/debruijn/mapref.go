package debruijn

import (
	"fmt"
	"sort"

	"pimassembler/internal/genome"
	"pimassembler/internal/kmer"
)

// MapGraph is the retained map-of-slices de Bruijn builder: the
// representation Graph used before the dense interned-ID/CSR refactor
// (DESIGN.md §13), kept verbatim as the differential reference. The
// dense-vs-map test suite and fuzz target pin Graph's contigs and Eulerian
// walks byte-identical to this builder, and BenchmarkSoftwareAssembly uses
// it as the allocs/op baseline. It is not a production path.
type MapGraph struct {
	k     int
	adj   map[kmer.Kmer][]Edge
	inDeg map[kmer.Kmer]int
	edges int
}

// NewMapGraph creates an empty map-based graph for k-mers of length k.
func NewMapGraph(k int) *MapGraph {
	if k < 2 || k > kmer.MaxK {
		panic(fmt.Sprintf("debruijn: k=%d outside [2,%d]", k, kmer.MaxK))
	}
	return &MapGraph{
		k:     k,
		adj:   make(map[kmer.Kmer][]Edge),
		inDeg: make(map[kmer.Kmer]int),
	}
}

// BuildMap constructs the map-based graph from a k-mer counter.
func BuildMap(t kmer.Counter) *MapGraph {
	g := NewMapGraph(t.K())
	for _, e := range t.Entries() {
		g.AddKmer(e.Kmer, e.Count)
	}
	return g
}

// AddKmer inserts the edge for one distinct k-mer with its multiplicity.
func (g *MapGraph) AddKmer(km kmer.Kmer, count uint32) {
	from := km.Prefix(g.k)
	to := km.Suffix(g.k)
	g.adj[from] = append(g.adj[from], Edge{Kmer: km, To: to, Count: count})
	if _, ok := g.adj[to]; !ok {
		g.adj[to] = nil
	}
	g.inDeg[to]++
	if _, ok := g.inDeg[from]; !ok {
		g.inDeg[from] = 0
	}
	g.edges++
}

// NumNodes returns the node count.
func (g *MapGraph) NumNodes() int { return len(g.adj) }

// NumEdges returns the edge count.
func (g *MapGraph) NumEdges() int { return g.edges }

// NodeLen returns the node ((k-1)-mer) length.
func (g *MapGraph) NodeLen() int { return g.k - 1 }

// Out returns the outgoing edges of n in deterministic (k-mer sorted) order.
func (g *MapGraph) Out(n kmer.Kmer) []Edge {
	out := append([]Edge(nil), g.adj[n]...)
	sort.Slice(out, func(a, b int) bool { return out[a].Kmer < out[b].Kmer })
	return out
}

// Nodes returns all nodes sorted by value.
func (g *MapGraph) Nodes() []kmer.Kmer {
	out := make([]kmer.Kmer, 0, len(g.adj))
	for n := range g.adj {
		out = append(out, n)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// balance mirrors Graph.Balance on the map representation.
func (g *MapGraph) balance() (BalanceClass, kmer.Kmer) {
	var start kmer.Kmer
	plus, minus := 0, 0
	for _, n := range g.Nodes() {
		diff := len(g.adj[n]) - g.inDeg[n]
		switch {
		case diff == 0:
		case diff == 1:
			plus++
			start = n
		case diff == -1:
			minus++
		default:
			return BalanceNone, 0
		}
	}
	switch {
	case plus == 0 && minus == 0:
		for _, n := range g.Nodes() {
			if len(g.adj[n]) > 0 {
				return BalanceCircuit, n
			}
		}
		return BalanceCircuit, 0
	case plus == 1 && minus == 1:
		return BalancePath, start
	default:
		return BalanceNone, 0
	}
}

// edgeConnected mirrors Graph.EdgeConnected on the map representation.
func (g *MapGraph) edgeConnected() bool {
	parent := make(map[kmer.Kmer]kmer.Kmer)
	var find func(kmer.Kmer) kmer.Kmer
	find = func(x kmer.Kmer) kmer.Kmer {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	touch := func(n kmer.Kmer) {
		if _, ok := parent[n]; !ok {
			parent[n] = n
		}
	}
	for n, edges := range g.adj {
		for _, e := range edges {
			touch(n)
			touch(e.To)
			if ra, rb := find(n), find(e.To); ra != rb {
				parent[ra] = rb
			}
		}
	}
	if len(parent) == 0 {
		return true
	}
	var root kmer.Kmer
	first := true
	for n := range parent {
		if first {
			root = find(n)
			first = false
			continue
		}
		if find(n) != root {
			return false
		}
	}
	return true
}

// EulerPath returns an Eulerian node walk via Hierholzer on the consumable
// adjacency-map copy — the pre-refactor traversal, per-call maps and all.
func (g *MapGraph) EulerPath() ([]kmer.Kmer, error) {
	if g.edges == 0 {
		return nil, ErrNoEulerian
	}
	class, start := g.balance()
	if class == BalanceNone || !g.edgeConnected() {
		return nil, ErrNoEulerian
	}
	next := make(map[kmer.Kmer][]Edge, len(g.adj))
	for n := range g.adj {
		next[n] = g.Out(n)
	}
	stack := []kmer.Kmer{start}
	var walk []kmer.Kmer
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		if out := next[v]; len(out) > 0 {
			next[v] = out[1:]
			stack = append(stack, out[0].To)
		} else {
			walk = append(walk, v)
			stack = stack[:len(stack)-1]
		}
	}
	for i, j := 0, len(walk)-1; i < j; i, j = i+1, j-1 {
		walk[i], walk[j] = walk[j], walk[i]
	}
	if len(walk) != g.edges+1 {
		return nil, ErrNoEulerian
	}
	return walk, nil
}

// Contigs emits the maximal non-branching paths using per-call maps — the
// pre-refactor implementation.
func (g *MapGraph) Contigs() []Contig {
	var contigs []Contig
	used := make(map[kmer.Kmer]bool, g.edges)

	internal := func(n kmer.Kmer) bool {
		return len(g.adj[n]) == 1 && g.inDeg[n] == 1
	}

	for _, start := range g.Nodes() {
		if internal(start) {
			continue
		}
		for _, e := range g.Out(start) {
			if used[e.Kmer] {
				continue
			}
			used[e.Kmer] = true
			walk := []Edge{e}
			cur := e.To
			for internal(cur) {
				next := g.Out(cur)[0]
				if used[next.Kmer] {
					break
				}
				used[next.Kmer] = true
				walk = append(walk, next)
				cur = next.To
			}
			contigs = append(contigs, g.spellEdgeWalk(start, walk))
		}
	}

	for _, start := range g.Nodes() {
		if !internal(start) {
			continue
		}
		first := g.Out(start)[0]
		if used[first.Kmer] {
			continue
		}
		used[first.Kmer] = true
		walk := []Edge{first}
		cur := first.To
		for cur != start {
			next := g.Out(cur)[0]
			used[next.Kmer] = true
			walk = append(walk, next)
			cur = next.To
		}
		contigs = append(contigs, g.spellEdgeWalk(start, walk))
	}

	sort.Slice(contigs, func(a, b int) bool {
		sa, sb := contigs[a].Seq.String(), contigs[b].Seq.String()
		if len(sa) != len(sb) {
			return len(sa) > len(sb)
		}
		return sa < sb
	})
	return contigs
}

// spellEdgeWalk converts a start node plus a chain of edges into a Contig
// by repeated append — the pre-refactor spelling.
func (g *MapGraph) spellEdgeWalk(start kmer.Kmer, walk []Edge) Contig {
	nodeLen := g.NodeLen()
	seq := start.ToSequence(nodeLen)
	var coverage float64
	for _, e := range walk {
		tail := genome.NewSequence(1)
		tail.SetBase(0, e.To.LastBase(nodeLen))
		seq = seq.Append(tail)
		coverage += float64(e.Count)
	}
	return Contig{
		Seq:          seq,
		EdgeCount:    len(walk),
		MeanCoverage: coverage / float64(len(walk)),
	}
}
