package genome

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// drain pulls every read out of src, failing on any non-EOF error.
func drain(t *testing.T, src ReadSource) []*Sequence {
	t.Helper()
	reads, err := ReadAll(src)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	return reads
}

func mustSeqs(t *testing.T, texts ...string) []*Sequence {
	t.Helper()
	out := make([]*Sequence, len(texts))
	for i, s := range texts {
		seq, err := FromString(s)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = seq
	}
	return out
}

func TestSliceSourceYieldsInOrderAndResets(t *testing.T) {
	reads := mustSeqs(t, "ACGT", "GGGG", "TTAA")
	src := NewSliceSource(reads)
	for round := 0; round < 2; round++ {
		got := drain(t, src)
		if len(got) != len(reads) {
			t.Fatalf("round %d: got %d reads, want %d", round, len(got), len(reads))
		}
		for i := range got {
			if got[i] != reads[i] {
				t.Fatalf("round %d: read %d is not the aliased input sequence", round, i)
			}
		}
		// Exhausted: EOF is sticky until Reset.
		if _, err := src.Next(); err != io.EOF {
			t.Fatalf("round %d: Next after drain = %v, want io.EOF", round, err)
		}
		if err := src.Reset(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSliceSourceEmpty(t *testing.T) {
	if _, err := NewSliceSource(nil).Next(); err != io.EOF {
		t.Fatalf("empty source Next = %v, want io.EOF", err)
	}
}

func TestScannerSourceStreamsAndPropagatesErrors(t *testing.T) {
	src := NewScannerSource(NewScanner(strings.NewReader(">a\nACGT\n>b\nGG\n"), FormatFASTA))
	got := drain(t, src)
	if len(got) != 2 || got[0].String() != "ACGT" || got[1].String() != "GG" {
		t.Fatalf("unexpected reads: %v", got)
	}
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("Next after drain = %v, want io.EOF", err)
	}

	bad := NewScannerSource(NewScanner(strings.NewReader(">a\nACGT\n>b\nNOPE!\n"), FormatFASTA))
	var err error
	for err == nil {
		_, err = bad.Next()
	}
	if err == io.EOF {
		t.Fatal("malformed stream drained cleanly")
	}
	// The error is sticky.
	if _, again := bad.Next(); again != err {
		t.Fatalf("error not sticky: %v then %v", err, again)
	}
}

func TestFileSourceRoundTripAndReset(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "reads.fasta")
	if err := os.WriteFile(path, []byte(">a\nACGTACGT\n>b\nTTTT\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := OpenFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	for round := 0; round < 2; round++ {
		got := drain(t, src)
		if len(got) != 2 || got[0].String() != "ACGTACGT" || got[1].String() != "TTTT" {
			t.Fatalf("round %d: unexpected reads %v", round, got)
		}
		if _, err := src.Next(); err != io.EOF {
			t.Fatalf("round %d: Next after drain = %v, want io.EOF", round, err)
		}
		if err := src.Reset(); err != nil {
			t.Fatal(err)
		}
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	if err := src.Close(); err != nil {
		t.Fatalf("Close not idempotent: %v", err)
	}
}

func TestFileSourceBadPathFailsEagerly(t *testing.T) {
	if _, err := OpenFileSource(filepath.Join(t.TempDir(), "nope.fasta")); err == nil {
		t.Fatal("OpenFileSource on a missing file succeeded")
	}
}

func TestConcatChainsAndResets(t *testing.T) {
	a := mustSeqs(t, "AA", "CC")
	b := mustSeqs(t, "GG")
	src := Concat(NewSliceSource(a), nil, NewSliceSource(nil), NewSliceSource(b))
	for round := 0; round < 2; round++ {
		got := drain(t, src)
		if len(got) != 3 || got[0] != a[0] || got[1] != a[1] || got[2] != b[0] {
			t.Fatalf("round %d: unexpected concat order: %v", round, got)
		}
		if err := src.(interface{ Reset() error }).Reset(); err != nil {
			t.Fatal(err)
		}
	}

	// A non-resettable child makes the concatenation non-resettable.
	mixed := Concat(NewScannerSource(NewScanner(strings.NewReader(">a\nAC\n"), FormatFASTA)))
	if err := mixed.(interface{ Reset() error }).Reset(); err == nil {
		t.Fatal("Reset over a ScannerSource child succeeded")
	}
}

func TestReadAllNil(t *testing.T) {
	reads, err := ReadAll(nil)
	if err != nil || reads != nil {
		t.Fatalf("ReadAll(nil) = %v, %v; want nil, nil", reads, err)
	}
}
