package genome

import (
	"fmt"

	"pimassembler/internal/stats"
)

// ReadPair is a paired-end read: two reads from the opposite ends of one
// sequenced fragment. R1 reads the fragment's leading strand left-to-right;
// R2 is the reverse complement of the fragment's tail, per Illumina
// convention (fragments are read inward from both ends).
type ReadPair struct {
	R1, R2 *Sequence
	// InsertSize is the full fragment length (R1 start to R2 start on the
	// forward strand), recorded by the generator for test oracles; real
	// pipelines estimate it.
	InsertSize int
}

// PairedSampler draws read pairs from fragments of Gaussian-distributed
// insert size — the library-preparation model mate-pair scaffolding relies
// on.
type PairedSampler struct {
	Genome     *Sequence
	ReadLen    int
	MeanInsert int
	StdInsert  float64
	ErrorRate  float64
	rng        *stats.RNG
}

// NewPairedSampler validates and builds a sampler. The mean insert must
// accommodate two reads and fit comfortably in the genome.
func NewPairedSampler(g *Sequence, readLen, meanInsert int, stdInsert, errorRate float64, rng *stats.RNG) *PairedSampler {
	if readLen <= 0 || meanInsert < 2*readLen {
		panic(fmt.Sprintf("genome: insert %d cannot hold two %d bp reads", meanInsert, readLen))
	}
	if meanInsert+int(4*stdInsert) > g.Len() {
		panic(fmt.Sprintf("genome: insert %d too large for a %d bp genome", meanInsert, g.Len()))
	}
	if errorRate < 0 || errorRate >= 1 {
		panic(fmt.Sprintf("genome: error rate %v outside [0,1)", errorRate))
	}
	return &PairedSampler{
		Genome:     g,
		ReadLen:    readLen,
		MeanInsert: meanInsert,
		StdInsert:  stdInsert,
		ErrorRate:  errorRate,
		rng:        rng,
	}
}

// Next draws one pair.
func (s *PairedSampler) Next() ReadPair {
	insert := s.MeanInsert
	if s.StdInsert > 0 {
		insert = int(s.rng.Gaussian(float64(s.MeanInsert), s.StdInsert) + 0.5)
	}
	if insert < 2*s.ReadLen {
		insert = 2 * s.ReadLen
	}
	if insert > s.Genome.Len() {
		insert = s.Genome.Len()
	}
	start := s.rng.Intn(s.Genome.Len() - insert + 1)
	r1 := s.Genome.Subsequence(start, s.ReadLen)
	r2 := s.Genome.Subsequence(start+insert-s.ReadLen, s.ReadLen).ReverseComplement()
	if s.ErrorRate > 0 {
		s.corrupt(r1)
		s.corrupt(r2)
	}
	return ReadPair{R1: r1, R2: r2, InsertSize: insert}
}

func (s *PairedSampler) corrupt(r *Sequence) {
	for i := 0; i < r.Len(); i++ {
		if s.rng.Float64() < s.ErrorRate {
			r.SetBase(i, Base((int(r.Base(i))+1+s.rng.Intn(3))%4))
		}
	}
}

// Sample draws n pairs.
func (s *PairedSampler) Sample(n int) []ReadPair {
	out := make([]ReadPair, n)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}

// Flatten returns all individual reads of the pairs (R2 restored to the
// forward strand so single-strand assembly sees consistent k-mers), for
// feeding the contig-generation stages.
func Flatten(pairs []ReadPair) []*Sequence {
	out := make([]*Sequence, 0, 2*len(pairs))
	for _, p := range pairs {
		out = append(out, p.R1, p.R2.ReverseComplement())
	}
	return out
}
