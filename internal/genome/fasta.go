package genome

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Record is one named sequence from a FASTA or FASTQ stream.
type Record struct {
	Name string
	Seq  *Sequence
}

// ReadFASTA parses all records from a FASTA stream. Bases other than
// A/C/G/T (e.g. N) are rejected: the assembler's 2-bit pipeline has no
// ambiguity code, matching the paper's preprocessing, which samples reads
// from the non-ambiguous portion of chromosome 14.
func ReadFASTA(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var (
		records []Record
		name    string
		sb      strings.Builder
		started bool
	)
	flush := func() error {
		if !started {
			return nil
		}
		seq, err := FromString(sb.String())
		if err != nil {
			return fmt.Errorf("genome: record %q: %w", name, err)
		}
		records = append(records, Record{Name: name, Seq: seq})
		sb.Reset()
		return nil
	}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		switch {
		case text == "":
			continue
		case strings.HasPrefix(text, ">"):
			if err := flush(); err != nil {
				return nil, err
			}
			name = strings.TrimSpace(text[1:])
			started = true
		default:
			if !started {
				return nil, fmt.Errorf("genome: line %d: sequence data before first header", line)
			}
			sb.WriteString(text)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return records, nil
}

// WriteFASTA writes records in FASTA format with 70-column wrapping.
func WriteFASTA(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	for _, rec := range records {
		if _, err := fmt.Fprintf(bw, ">%s\n", rec.Name); err != nil {
			return err
		}
		s := rec.Seq.String()
		for len(s) > 0 {
			n := 70
			if len(s) < n {
				n = len(s)
			}
			if _, err := bw.WriteString(s[:n]); err != nil {
				return err
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
			s = s[n:]
		}
	}
	return bw.Flush()
}

// ReadFASTQ parses all records from a FASTQ stream, discarding quality
// strings (the assembler, like the paper's, treats reads as exact).
func ReadFASTQ(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var records []Record
	line := 0
	next := func() (string, bool) {
		for sc.Scan() {
			line++
			t := strings.TrimSpace(sc.Text())
			if t != "" {
				return t, true
			}
		}
		return "", false
	}
	for {
		header, ok := next()
		if !ok {
			break
		}
		if !strings.HasPrefix(header, "@") {
			return nil, fmt.Errorf("genome: line %d: expected @header, got %q", line, header)
		}
		seqText, ok := next()
		if !ok {
			return nil, fmt.Errorf("genome: line %d: truncated record %q", line, header)
		}
		plus, ok := next()
		if !ok || !strings.HasPrefix(plus, "+") {
			return nil, fmt.Errorf("genome: line %d: expected + separator", line)
		}
		if _, ok := next(); !ok {
			return nil, fmt.Errorf("genome: line %d: missing quality line", line)
		}
		seq, err := FromString(seqText)
		if err != nil {
			return nil, fmt.Errorf("genome: record %q: %w", header, err)
		}
		records = append(records, Record{Name: strings.TrimPrefix(header, "@"), Seq: seq})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return records, nil
}
