package genome

import (
	"io"
)

// Record is one named sequence from a FASTA or FASTQ stream.
type Record struct {
	Name string
	Seq  *Sequence
}

// ReadFASTA parses all records from a FASTA stream — a slurping wrapper over
// the streaming Scanner; prefer ScanRecords for inputs that should not be
// held in memory at once. Bases other than A/C/G/T (e.g. N) are rejected:
// the assembler's 2-bit pipeline has no ambiguity code, matching the paper's
// preprocessing, which samples reads from the non-ambiguous portion of
// chromosome 14.
func ReadFASTA(r io.Reader) ([]Record, error) {
	return readAll(r, FormatFASTA)
}

// ReadFASTQ parses all records from a FASTQ stream, discarding quality
// strings (the assembler, like the paper's, treats reads as exact) after
// checking they match the sequence length. A slurping wrapper over the
// streaming Scanner.
func ReadFASTQ(r io.Reader) ([]Record, error) {
	return readAll(r, FormatFASTQ)
}

func readAll(r io.Reader, format Format) ([]Record, error) {
	var records []Record
	err := ScanRecords(r, format, func(rec Record) error {
		records = append(records, rec)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return records, nil
}

// WriteFASTA writes records in FASTA format with 70-column wrapping.
func WriteFASTA(w io.Writer, records []Record) error {
	rw := NewRecordWriter(w)
	for _, rec := range records {
		if err := rw.Write(rec); err != nil {
			return err
		}
	}
	return rw.Flush()
}
