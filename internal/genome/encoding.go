// Package genome provides the DNA substrate for PIM-Assembler: the 2-bit
// base encoding of Fig. 7, sequence containers, FASTA/FASTQ input/output,
// and the deterministic synthetic genome and short-read generator that
// substitutes for the paper's human chromosome-14 dataset (DESIGN.md §1).
package genome

import "fmt"

// Base is one nucleotide. The binary code follows the paper's Fig. 7 table:
// T=00, G=01, A=10, C=11.
type Base byte

const (
	T Base = 0b00
	G Base = 0b01
	A Base = 0b10
	C Base = 0b11
)

// BaseBits is the encoding width of one base.
const BaseBits = 2

var baseLetters = [4]byte{'T', 'G', 'A', 'C'}

// Letter returns the IUPAC letter of the base.
func (b Base) Letter() byte { return baseLetters[b&3] }

// String implements fmt.Stringer.
func (b Base) String() string { return string(baseLetters[b&3]) }

// Complement returns the Watson-Crick complement. Under the Fig. 7 encoding
// the pairs A↔T (10↔00) and C↔G (11↔01) differ only in the high bit, so
// complementation is a single bit flip — one of the encoding's hardware
// conveniences.
func (b Base) Complement() Base { return b ^ 0b10 }

// ParseBase converts an ASCII letter (upper or lower case) to a Base.
func ParseBase(c byte) (Base, error) {
	switch c {
	case 'A', 'a':
		return A, nil
	case 'C', 'c':
		return C, nil
	case 'G', 'g':
		return G, nil
	case 'T', 't', 'U', 'u':
		return T, nil
	default:
		return 0, fmt.Errorf("genome: invalid base %q", c)
	}
}

// Sequence is a DNA sequence stored 2-bit packed, four bases per byte.
type Sequence struct {
	n      int
	packed []byte
}

// NewSequence allocates an all-T sequence of length n (T encodes as 00).
func NewSequence(n int) *Sequence {
	if n < 0 {
		panic(fmt.Sprintf("genome: negative length %d", n))
	}
	return &Sequence{n: n, packed: make([]byte, (n+3)/4)}
}

// FromString parses an ASCII sequence. It returns an error on any character
// that is not A/C/G/T (case-insensitive; U maps to T).
func FromString(s string) (*Sequence, error) {
	seq := NewSequence(len(s))
	for i := 0; i < len(s); i++ {
		b, err := ParseBase(s[i])
		if err != nil {
			return nil, fmt.Errorf("position %d: %w", i, err)
		}
		seq.SetBase(i, b)
	}
	return seq, nil
}

// MustFromString is FromString for trusted literals; it panics on error.
func MustFromString(s string) *Sequence {
	seq, err := FromString(s)
	if err != nil {
		panic(err)
	}
	return seq
}

// Len returns the number of bases.
func (s *Sequence) Len() int { return s.n }

// Base returns the base at position i.
func (s *Sequence) Base(i int) Base {
	s.check(i)
	return Base(s.packed[i/4] >> (uint(i%4) * 2) & 3)
}

// SetBase assigns position i.
func (s *Sequence) SetBase(i int, b Base) {
	s.check(i)
	shift := uint(i%4) * 2
	s.packed[i/4] = s.packed[i/4]&^(3<<shift) | byte(b&3)<<shift
}

func (s *Sequence) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("genome: index %d out of range [0,%d)", i, s.n))
	}
}

// Subsequence returns a copy of positions [from, from+length).
func (s *Sequence) Subsequence(from, length int) *Sequence {
	if from < 0 || length < 0 || from+length > s.n {
		panic(fmt.Sprintf("genome: subsequence [%d,%d+%d) out of range [0,%d)", from, from, length, s.n))
	}
	out := NewSequence(length)
	for i := 0; i < length; i++ {
		out.SetBase(i, s.Base(from+i))
	}
	return out
}

// ReverseComplement returns the reverse complement.
func (s *Sequence) ReverseComplement() *Sequence {
	out := NewSequence(s.n)
	for i := 0; i < s.n; i++ {
		out.SetBase(i, s.Base(s.n-1-i).Complement())
	}
	return out
}

// Equal reports whether two sequences hold identical bases.
func (s *Sequence) Equal(o *Sequence) bool {
	if s.n != o.n {
		return false
	}
	for i := 0; i < s.n; i++ {
		if s.Base(i) != o.Base(i) {
			return false
		}
	}
	return true
}

// String renders the sequence as ASCII letters.
func (s *Sequence) String() string {
	out := make([]byte, s.n)
	for i := 0; i < s.n; i++ {
		out[i] = s.Base(i).Letter()
	}
	return string(out)
}

// Append returns a new sequence that is s followed by o.
func (s *Sequence) Append(o *Sequence) *Sequence {
	out := NewSequence(s.n + o.n)
	for i := 0; i < s.n; i++ {
		out.SetBase(i, s.Base(i))
	}
	for i := 0; i < o.n; i++ {
		out.SetBase(s.n+i, o.Base(i))
	}
	return out
}

// PackBits writes the 2-bit encoding of positions [from, from+count) into a
// uint64, base `from` in the least-significant bits — the wire format rows
// of the PIM k-mer region store (Fig. 6: 128 bp per 256-bit row).
func (s *Sequence) PackBits(from, count int) uint64 {
	if count < 0 || count > 32 {
		panic(fmt.Sprintf("genome: PackBits count %d exceeds 32 bases per word", count))
	}
	var x uint64
	for i := 0; i < count; i++ {
		x |= uint64(s.Base(from+i)) << (uint(i) * BaseBits)
	}
	return x
}
