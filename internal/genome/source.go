package genome

import (
	"fmt"
	"io"
	"os"
)

// ReadSource is the streaming iterator the whole read path consumes: the
// engine layer, the job queue, and the shard dispatcher all pull reads one
// at a time instead of materialising []*Sequence, so resident memory is
// bounded by the consumer's working set, not the input size.
//
// Next returns the next read, or io.EOF (verbatim, never wrapped) after the
// last one. Any other error is a real failure; after it, further Next calls
// return the same error. A nil ReadSource is a valid empty workload for
// consumers that accept one (e.g. counts-only analytical engine runs).
//
// Sources that can rewind additionally implement
//
//	interface{ Reset() error }
//
// which the job queue requires before re-running a retry attempt.
type ReadSource interface {
	Next() (*Sequence, error)
}

// SliceSource adapts an in-memory read slice to ReadSource — the
// compatibility wrapper for every caller that already holds []*Sequence.
// It aliases the slice (no copying) and is resettable, so retried jobs
// replay it from the start.
type SliceSource struct {
	reads []*Sequence
	next  int
}

// NewSliceSource wraps reads (which may be empty or nil).
func NewSliceSource(reads []*Sequence) *SliceSource {
	return &SliceSource{reads: reads}
}

// Next implements ReadSource.
func (s *SliceSource) Next() (*Sequence, error) {
	if s.next >= len(s.reads) {
		return nil, io.EOF
	}
	r := s.reads[s.next]
	s.next++
	return r, nil
}

// Reset rewinds to the first read.
func (s *SliceSource) Reset() error {
	s.next = 0
	return nil
}

// ScannerSource adapts a streaming Scanner to ReadSource, discarding record
// names: the bounded-memory ingestion path feeding the engine layer
// directly. It is not resettable (the underlying reader cannot rewind);
// wrap a file in a FileSource when retries must replay.
type ScannerSource struct {
	sc  *Scanner
	err error
}

// NewScannerSource wraps an existing Scanner mid-stream; records already
// consumed are not replayed.
func NewScannerSource(sc *Scanner) *ScannerSource {
	return &ScannerSource{sc: sc}
}

// Next implements ReadSource.
func (s *ScannerSource) Next() (*Sequence, error) {
	if s.err != nil {
		return nil, s.err
	}
	if s.sc.Scan() {
		return s.sc.Record().Seq, nil
	}
	if err := s.sc.Err(); err != nil {
		s.err = err
		return nil, err
	}
	s.err = io.EOF
	return nil, io.EOF
}

// FileSource streams reads from a FASTA/FASTQ file (format by extension,
// as DetectFormat). The file opens eagerly — a bad path fails at
// construction, not mid-assembly — and closes itself at EOF or on the
// first scan error, so a fully drained source leaks no descriptor even if
// the consumer never calls Close. It is resettable: Reset reopens the file
// and scans from the top, which is how spill-backed shard jobs survive
// queue retries.
type FileSource struct {
	path   string
	format Format
	f      *os.File
	src    *ScannerSource
	err    error
}

// OpenFileSource opens path for streaming.
func OpenFileSource(path string) (*FileSource, error) {
	fs := &FileSource{path: path, format: DetectFormat(path)}
	if err := fs.open(); err != nil {
		return nil, err
	}
	return fs, nil
}

func (s *FileSource) open() error {
	f, err := os.Open(s.path)
	if err != nil {
		return fmt.Errorf("genome: open read source: %w", err)
	}
	s.f = f
	s.src = NewScannerSource(NewScanner(f, s.format))
	s.err = nil
	return nil
}

// Next implements ReadSource.
func (s *FileSource) Next() (*Sequence, error) {
	if s.err != nil {
		return nil, s.err
	}
	r, err := s.src.Next()
	if err != nil {
		s.err = err
		s.Close()
		return nil, err
	}
	return r, nil
}

// Close releases the file. It is idempotent; Next after Close returns
// io.EOF if the stream had drained, the sticky error otherwise.
func (s *FileSource) Close() error {
	if s.f == nil {
		return nil
	}
	f := s.f
	s.f = nil
	if s.err == nil {
		s.err = io.EOF
	}
	return f.Close()
}

// Reset reopens the file and restarts from the first record.
func (s *FileSource) Reset() error {
	s.Close()
	return s.open()
}

// concatSource chains sources end to end.
type concatSource struct {
	srcs []ReadSource
	idx  int
}

// Concat returns a ReadSource yielding every read of each source in turn,
// advancing past each child's io.EOF. It is resettable iff every child is.
func Concat(srcs ...ReadSource) ReadSource {
	return &concatSource{srcs: srcs}
}

// Next implements ReadSource.
func (c *concatSource) Next() (*Sequence, error) {
	for c.idx < len(c.srcs) {
		if c.srcs[c.idx] == nil {
			c.idx++
			continue
		}
		r, err := c.srcs[c.idx].Next()
		if err == io.EOF {
			c.idx++
			continue
		}
		return r, err
	}
	return nil, io.EOF
}

// Reset rewinds every child; it fails on the first non-resettable one.
func (c *concatSource) Reset() error {
	for _, src := range c.srcs {
		if src == nil {
			continue
		}
		r, ok := src.(interface{ Reset() error })
		if !ok {
			return fmt.Errorf("genome: concat source: child %T is not resettable", src)
		}
		if err := r.Reset(); err != nil {
			return err
		}
	}
	c.idx = 0
	return nil
}

// ReadAll drains src into a slice — the bridge for consumers that still
// need random access (the functional PIM engine's sub-array loader). A nil
// src yields a nil slice.
func ReadAll(src ReadSource) ([]*Sequence, error) {
	if src == nil {
		return nil, nil
	}
	var reads []*Sequence
	for {
		r, err := src.Next()
		if err == io.EOF {
			return reads, nil
		}
		if err != nil {
			return nil, err
		}
		reads = append(reads, r)
	}
}
