package genome

import (
	"fmt"

	"pimassembler/internal/stats"
)

// Chr14Workload captures the paper's §IV experimental workload: short reads
// of length 101 sampled from human chromosome 14, 45,711,162 of them
// (~9.2 GB with headers), k ∈ {16, 22, 26, 32}. The analytical performance
// harness uses these counts directly; functional simulation uses a scaled
// synthetic genome from GenerateGenome with the same read length.
type Chr14Workload struct {
	GenomeLen  int64
	ReadCount  int64
	ReadLen    int
	KmerRanges []int
}

// PaperChr14 returns the paper's workload constants. The genome length is
// the non-ambiguous extent of GRCh38 chromosome 14 (≈87.2 Mbp).
func PaperChr14() Chr14Workload {
	return Chr14Workload{
		GenomeLen:  87_191_216,
		ReadCount:  45_711_162,
		ReadLen:    101,
		KmerRanges: []int{16, 22, 26, 32},
	}
}

// KmersPerRead returns the number of k-mers one read yields: L - k + 1.
func (w Chr14Workload) KmersPerRead(k int) int64 {
	if k <= 0 || k > w.ReadLen {
		panic(fmt.Sprintf("genome: k=%d outside read length %d", k, w.ReadLen))
	}
	return int64(w.ReadLen - k + 1)
}

// TotalKmers returns the total k-mer count across all reads.
func (w Chr14Workload) TotalKmers(k int) int64 { return w.ReadCount * w.KmersPerRead(k) }

// DistinctKmers estimates the number of distinct k-mers: bounded by both the
// genome's k-mer positions and the 4^k keyspace.
func (w Chr14Workload) DistinctKmers(k int) int64 {
	positions := w.GenomeLen - int64(k) + 1
	if k < 32 {
		if space := int64(1) << (2 * uint(k)); space < positions {
			return space
		}
	}
	return positions
}

// Coverage returns the average sequencing depth of the workload.
func (w Chr14Workload) Coverage() float64 {
	return float64(w.ReadCount) * float64(w.ReadLen) / float64(w.GenomeLen)
}

// GenerateGenome produces a deterministic random genome of length n with
// uniform base composition — the synthetic stand-in for the NCBI reference
// (DESIGN.md §1: the evaluation depends on read count, length, and k, not on
// biological base content).
func GenerateGenome(n int, rng *stats.RNG) *Sequence {
	seq := NewSequence(n)
	for i := 0; i < n; i++ {
		seq.SetBase(i, Base(rng.Intn(4)))
	}
	return seq
}

// GenerateRepetitiveGenome produces a genome with planted tandem repeats,
// exercising the assembler's branch handling: a random core is generated,
// then segments of repeatLen are copied to repeatCount random positions.
func GenerateRepetitiveGenome(n, repeatLen, repeatCount int, rng *stats.RNG) *Sequence {
	if repeatLen > n {
		panic(fmt.Sprintf("genome: repeat length %d exceeds genome length %d", repeatLen, n))
	}
	seq := GenerateGenome(n, rng)
	for r := 0; r < repeatCount; r++ {
		src := rng.Intn(n - repeatLen + 1)
		dst := rng.Intn(n - repeatLen + 1)
		for i := 0; i < repeatLen; i++ {
			seq.SetBase(dst+i, seq.Base(src+i))
		}
	}
	return seq
}

// ReadSampler draws fixed-length substrings uniformly from a genome,
// mirroring the paper's "randomly sampling the chromosome" protocol, with an
// optional per-base substitution error rate for robustness studies.
type ReadSampler struct {
	Genome    *Sequence
	ReadLen   int
	ErrorRate float64
	rng       *stats.RNG
}

// NewReadSampler constructs a sampler. readLen must fit in the genome.
func NewReadSampler(g *Sequence, readLen int, errorRate float64, rng *stats.RNG) *ReadSampler {
	if readLen <= 0 || readLen > g.Len() {
		panic(fmt.Sprintf("genome: read length %d outside genome length %d", readLen, g.Len()))
	}
	if errorRate < 0 || errorRate >= 1 {
		panic(fmt.Sprintf("genome: error rate %v outside [0,1)", errorRate))
	}
	return &ReadSampler{Genome: g, ReadLen: readLen, ErrorRate: errorRate, rng: rng}
}

// Next draws one read.
func (s *ReadSampler) Next() *Sequence {
	pos := s.rng.Intn(s.Genome.Len() - s.ReadLen + 1)
	read := s.Genome.Subsequence(pos, s.ReadLen)
	if s.ErrorRate > 0 {
		for i := 0; i < s.ReadLen; i++ {
			if s.rng.Float64() < s.ErrorRate {
				// Substitute with one of the three other bases.
				read.SetBase(i, Base((int(read.Base(i))+1+s.rng.Intn(3))%4))
			}
		}
	}
	return read
}

// Sample draws n reads.
func (s *ReadSampler) Sample(n int) []*Sequence {
	out := make([]*Sequence, n)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}

// TilingReads returns reads covering the genome end to end with the given
// overlap (stride = readLen - overlap), guaranteeing every genome k-mer with
// k ≤ overlap+1 appears in some read. Deterministic coverage makes it the
// right input for exactness tests of the assembly pipeline.
func TilingReads(g *Sequence, readLen, overlap int) []*Sequence {
	if readLen <= 0 || readLen > g.Len() {
		panic(fmt.Sprintf("genome: read length %d outside genome length %d", readLen, g.Len()))
	}
	if overlap < 0 || overlap >= readLen {
		panic(fmt.Sprintf("genome: overlap %d outside [0,%d)", overlap, readLen))
	}
	stride := readLen - overlap
	var out []*Sequence
	for pos := 0; ; pos += stride {
		if pos+readLen >= g.Len() {
			out = append(out, g.Subsequence(g.Len()-readLen, readLen))
			break
		}
		out = append(out, g.Subsequence(pos, readLen))
	}
	return out
}
