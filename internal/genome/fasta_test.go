package genome

import (
	"bytes"
	"strings"
	"testing"

	"pimassembler/internal/stats"
)

func TestReadFASTA(t *testing.T) {
	in := ">seq1 description\nACGT\nACGT\n\n>seq2\nTTTT\n"
	recs, err := ReadFASTA(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].Name != "seq1 description" || recs[0].Seq.String() != "ACGTACGT" {
		t.Fatalf("record 0: %q %q", recs[0].Name, recs[0].Seq.String())
	}
	if recs[1].Name != "seq2" || recs[1].Seq.String() != "TTTT" {
		t.Fatalf("record 1: %+v", recs[1])
	}
}

func TestReadFASTARejectsLeadingData(t *testing.T) {
	if _, err := ReadFASTA(strings.NewReader("ACGT\n>x\nACGT\n")); err == nil {
		t.Fatal("data before header accepted")
	}
}

func TestReadFASTARejectsAmbiguous(t *testing.T) {
	if _, err := ReadFASTA(strings.NewReader(">x\nACGN\n")); err == nil {
		t.Fatal("N base accepted")
	}
}

func TestFASTARoundTrip(t *testing.T) {
	rng := stats.NewRNG(21)
	recs := []Record{
		{Name: "a", Seq: GenerateGenome(200, rng)},
		{Name: "b", Seq: GenerateGenome(69, rng)}, // not a multiple of the wrap width
		{Name: "c", Seq: GenerateGenome(70, rng)},
	}
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, recs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFASTA(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("got %d records", len(back))
	}
	for i := range recs {
		if back[i].Name != recs[i].Name || !back[i].Seq.Equal(recs[i].Seq) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestReadFASTQ(t *testing.T) {
	in := "@r1\nACGT\n+\nIIII\n@r2\nGGCC\n+r2\nIIII\n"
	recs, err := ReadFASTQ(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Name != "r1" || recs[0].Seq.String() != "ACGT" {
		t.Fatalf("records %+v", recs)
	}
	if recs[1].Seq.String() != "GGCC" {
		t.Fatalf("record 1 seq %q", recs[1].Seq.String())
	}
}

func TestReadFASTQTruncated(t *testing.T) {
	for _, in := range []string{
		"@r1\nACGT\n+\n",          // missing quality
		"@r1\nACGT\n",             // missing separator
		"@r1\n",                   // missing sequence
		"r1\nACGT\n+\nIIII\n",     // bad header
		"@r1\nACGT\nIIII\nIIII\n", // bad separator
	} {
		if _, err := ReadFASTQ(strings.NewReader(in)); err == nil {
			t.Errorf("malformed FASTQ accepted: %q", in)
		}
	}
}

func TestReadFASTQEmpty(t *testing.T) {
	recs, err := ReadFASTQ(strings.NewReader(""))
	if err != nil || len(recs) != 0 {
		t.Fatalf("empty stream: %v, %d records", err, len(recs))
	}
}
