package genome

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"
)

// Format selects the record syntax of a read stream.
type Format int

const (
	// FormatFASTA is header-plus-wrapped-sequence records (">name").
	FormatFASTA Format = iota
	// FormatFASTQ is four-line records ("@name", sequence, "+", quality).
	FormatFASTQ
)

var formatNames = [...]string{FormatFASTA: "fasta", FormatFASTQ: "fastq"}

// String implements fmt.Stringer.
func (f Format) String() string {
	if int(f) < len(formatNames) {
		return formatNames[f]
	}
	return "unknown"
}

// DetectFormat infers the stream format from a file name: .fastq and .fq
// (the conventional extensions) select FASTQ, everything else FASTA.
func DetectFormat(path string) Format {
	if strings.HasSuffix(path, ".fastq") || strings.HasSuffix(path, ".fq") {
		return FormatFASTQ
	}
	return FormatFASTA
}

// Scanner buffer sizing: lines up to scannerMaxLine are accepted, with
// scannerInitBuf allocated up front. Memory use is bounded by the longest
// single record, never by the stream length.
const (
	scannerInitBuf = 1 << 20
	scannerMaxLine = 1 << 24
)

// Scanner streams FASTA or FASTQ records one at a time, holding only the
// record in flight — the bounded-memory ingestion path for read sets that
// do not fit beside the assembly working set. It is tolerant of LF, CRLF,
// and bare-CR line endings and surrounding whitespace (every line is
// trimmed), skips blank lines, and reports malformed input with the line
// number of the offending record. Usage mirrors bufio.Scanner:
//
//	s := genome.NewScanner(r, genome.FormatFASTA)
//	for s.Scan() {
//		rec := s.Record()
//		...
//	}
//	if err := s.Err(); err != nil { ... }
type Scanner struct {
	sc     *bufio.Scanner
	format Format
	line   int
	rec    Record
	err    error
	done   bool

	// FASTA one-record lookahead: the header seen but not yet emitted.
	started  bool
	name     string
	nameLine int
	sb       strings.Builder
}

// NewScanner wraps r in a streaming record scanner for the given format.
func NewScanner(r io.Reader, format Format) *Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, scannerInitBuf), scannerMaxLine)
	sc.Split(scanRecordLines)
	return &Scanner{sc: sc, format: format}
}

// scanRecordLines is bufio.ScanLines extended to every line-ending
// convention: a line ends at "\n", "\r\n", or a bare "\r" (classic Mac).
// bufio.ScanLines only splits on '\n', so a stray CR inside a header would
// otherwise survive TrimSpace and embed a line boundary in a record name.
func scanRecordLines(data []byte, atEOF bool) (advance int, token []byte, err error) {
	if atEOF && len(data) == 0 {
		return 0, nil, nil
	}
	if i := bytes.IndexAny(data, "\r\n"); i >= 0 {
		advance = i + 1
		if data[i] == '\r' {
			if i+1 < len(data) {
				if data[i+1] == '\n' {
					advance = i + 2
				}
			} else if !atEOF {
				// CR at the buffer edge: wait to see whether LF follows.
				return 0, nil, nil
			}
		}
		return advance, data[:i], nil
	}
	if atEOF {
		return len(data), data, nil
	}
	return 0, nil, nil
}

// Scan advances to the next record. It returns false at end of stream or on
// the first malformed record; Err distinguishes the two.
func (s *Scanner) Scan() bool {
	if s.err != nil || s.done {
		return false
	}
	if s.format == FormatFASTQ {
		return s.scanFASTQ()
	}
	return s.scanFASTA()
}

// Record returns the record parsed by the last successful Scan. The record
// is owned by the caller; the scanner never aliases it.
func (s *Scanner) Record() Record { return s.rec }

// Err returns the first error encountered (nil at a clean end of stream).
func (s *Scanner) Err() error { return s.err }

// Line returns the number of the last input line consumed.
func (s *Scanner) Line() int { return s.line }

// nextLine returns the next non-blank trimmed line.
func (s *Scanner) nextLine() (string, bool) {
	for s.sc.Scan() {
		s.line++
		t := strings.TrimSpace(s.sc.Text())
		if t != "" {
			return t, true
		}
	}
	if err := s.sc.Err(); err != nil {
		s.err = err
	}
	return "", false
}

func (s *Scanner) scanFASTA() bool {
	for s.sc.Scan() {
		s.line++
		text := strings.TrimSpace(s.sc.Text())
		switch {
		case text == "":
			continue
		case strings.HasPrefix(text, ">"):
			emit := s.started
			var rec Record
			if emit {
				var ok bool
				if rec, ok = s.flushFASTA(); !ok {
					return false
				}
			}
			s.name = strings.TrimSpace(text[1:])
			s.nameLine = s.line
			s.started = true
			if emit {
				s.rec = rec
				return true
			}
		default:
			if !s.started {
				s.err = fmt.Errorf("genome: line %d: sequence data before first header", s.line)
				return false
			}
			s.sb.WriteString(text)
		}
	}
	if err := s.sc.Err(); err != nil {
		s.err = err
		return false
	}
	s.done = true
	if !s.started {
		return false
	}
	s.started = false
	rec, ok := s.flushFASTA()
	if !ok {
		return false
	}
	s.rec = rec
	return true
}

// flushFASTA converts the buffered lookahead into a record.
func (s *Scanner) flushFASTA() (Record, bool) {
	seq, err := FromString(s.sb.String())
	if err != nil {
		s.err = fmt.Errorf("genome: line %d: record %q: %w", s.nameLine, s.name, err)
		return Record{}, false
	}
	s.sb.Reset()
	return Record{Name: s.name, Seq: seq}, true
}

func (s *Scanner) scanFASTQ() bool {
	header, ok := s.nextLine()
	if !ok {
		s.done = s.err == nil
		return false
	}
	headerLine := s.line
	if !strings.HasPrefix(header, "@") {
		s.err = fmt.Errorf("genome: line %d: expected @header, got %q", s.line, header)
		return false
	}
	seqText, ok := s.nextLine()
	if !ok {
		if s.err == nil {
			s.err = fmt.Errorf("genome: line %d: truncated record %q", headerLine, header)
		}
		return false
	}
	seqLine := s.line
	plus, ok := s.nextLine()
	if !ok || !strings.HasPrefix(plus, "+") {
		if s.err == nil {
			s.err = fmt.Errorf("genome: line %d: expected + separator for record %q", s.line, header)
		}
		return false
	}
	qual, ok := s.nextLine()
	if !ok {
		if s.err == nil {
			s.err = fmt.Errorf("genome: line %d: record %q: missing quality line", headerLine, header)
		}
		return false
	}
	if len(qual) != len(seqText) {
		s.err = fmt.Errorf("genome: line %d: record %q: quality length %d != sequence length %d",
			s.line, header, len(qual), len(seqText))
		return false
	}
	seq, err := FromString(seqText)
	if err != nil {
		s.err = fmt.Errorf("genome: line %d: record %q: %w", seqLine, header, err)
		return false
	}
	// Trim the name exactly as the FASTA path does, so a record's name is
	// format-independent and survives a FASTA re-serialisation (the spill
	// round-trip) byte-identically.
	s.rec = Record{Name: strings.TrimSpace(strings.TrimPrefix(header, "@")), Seq: seq}
	return true
}

// ScanRecords streams every record of r to fn in input order, with the
// Scanner's bounded-memory guarantee. A non-nil error from fn aborts the
// scan and is returned verbatim.
func ScanRecords(r io.Reader, format Format, fn func(Record) error) error {
	s := NewScanner(r, format)
	for s.Scan() {
		if err := fn(s.Record()); err != nil {
			return err
		}
	}
	return s.Err()
}

// RecordWriter streams FASTA records to an underlying writer one at a time
// (70-column wrapping, matching WriteFASTA) without buffering the set —
// the output-side counterpart of Scanner.
type RecordWriter struct {
	bw *bufio.Writer
}

// NewRecordWriter wraps w in a streaming FASTA writer. Call Flush when done.
func NewRecordWriter(w io.Writer) *RecordWriter {
	return &RecordWriter{bw: bufio.NewWriter(w)}
}

// Write appends one record.
func (rw *RecordWriter) Write(rec Record) error {
	if _, err := fmt.Fprintf(rw.bw, ">%s\n", rec.Name); err != nil {
		return err
	}
	s := rec.Seq.String()
	for len(s) > 0 {
		n := 70
		if len(s) < n {
			n = len(s)
		}
		if _, err := rw.bw.WriteString(s[:n]); err != nil {
			return err
		}
		if err := rw.bw.WriteByte('\n'); err != nil {
			return err
		}
		s = s[n:]
	}
	return nil
}

// Flush drains the buffered output.
func (rw *RecordWriter) Flush() error { return rw.bw.Flush() }
