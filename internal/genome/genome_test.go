package genome

import (
	"strings"
	"testing"
	"testing/quick"

	"pimassembler/internal/stats"
)

func TestBaseEncodingMatchesFig7(t *testing.T) {
	// Fig. 7: T=00, G=01, A=10, C=11.
	cases := []struct {
		b    Base
		code byte
		char byte
	}{
		{T, 0b00, 'T'},
		{G, 0b01, 'G'},
		{A, 0b10, 'A'},
		{C, 0b11, 'C'},
	}
	for _, c := range cases {
		if byte(c.b) != c.code {
			t.Errorf("%c encodes as %02b, want %02b", c.char, byte(c.b), c.code)
		}
		if c.b.Letter() != c.char {
			t.Errorf("code %02b renders %c, want %c", c.code, c.b.Letter(), c.char)
		}
	}
}

func TestComplementPairs(t *testing.T) {
	if A.Complement() != T || T.Complement() != A {
		t.Error("A/T complement broken")
	}
	if C.Complement() != G || G.Complement() != C {
		t.Error("C/G complement broken")
	}
	for _, b := range []Base{A, C, G, T} {
		if b.Complement().Complement() != b {
			t.Errorf("complement not involutive for %v", b)
		}
	}
}

func TestParseBase(t *testing.T) {
	for _, c := range []byte{'A', 'a', 'C', 'c', 'G', 'g', 'T', 't', 'U', 'u'} {
		if _, err := ParseBase(c); err != nil {
			t.Errorf("ParseBase(%q) failed: %v", c, err)
		}
	}
	for _, c := range []byte{'N', 'X', '-', ' ', '1'} {
		if _, err := ParseBase(c); err == nil {
			t.Errorf("ParseBase(%q) accepted", c)
		}
	}
}

func TestSequenceRoundTrip(t *testing.T) {
	const text = "ACGTTGCAACGTAGCTAGCTA"
	s, err := FromString(text)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != len(text) {
		t.Fatalf("len %d", s.Len())
	}
	if s.String() != text {
		t.Fatalf("round trip %q != %q", s.String(), text)
	}
}

func TestFromStringRejectsAmbiguity(t *testing.T) {
	if _, err := FromString("ACGTN"); err == nil {
		t.Fatal("N accepted")
	}
	if _, err := FromString("ACGTN"); err == nil || !strings.Contains(err.Error(), "position 4") {
		t.Fatalf("error should locate the bad base, got %v", err)
	}
}

func TestSetBaseBoundary(t *testing.T) {
	s := NewSequence(9)
	s.SetBase(8, C)
	if s.Base(8) != C {
		t.Fatal("last base lost")
	}
	// Packing boundary: positions 3 and 4 share no byte bits.
	s.SetBase(3, G)
	s.SetBase(4, A)
	if s.Base(3) != G || s.Base(4) != A {
		t.Fatal("byte-boundary bases interfere")
	}
}

func TestSubsequence(t *testing.T) {
	s := MustFromString("ACGTACGTAC")
	sub := s.Subsequence(2, 4)
	if sub.String() != "GTAC" {
		t.Fatalf("subsequence %q", sub.String())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range subsequence accepted")
		}
	}()
	s.Subsequence(8, 5)
}

func TestReverseComplement(t *testing.T) {
	s := MustFromString("AACGT")
	rc := s.ReverseComplement()
	if rc.String() != "ACGTT" {
		t.Fatalf("revcomp %q, want ACGTT", rc.String())
	}
	if !rc.ReverseComplement().Equal(s) {
		t.Fatal("revcomp not involutive")
	}
}

func TestAppend(t *testing.T) {
	a := MustFromString("ACG")
	b := MustFromString("TTA")
	if got := a.Append(b).String(); got != "ACGTTA" {
		t.Fatalf("append %q", got)
	}
}

func TestPackBits(t *testing.T) {
	// "TGAC" packs as T=00 G=01 A=10 C=11 → bits 11_10_01_00 = 0xE4.
	s := MustFromString("TGAC")
	if got := s.PackBits(0, 4); got != 0xE4 {
		t.Fatalf("PackBits = %#x, want 0xE4", got)
	}
}

// Property: string round trip is identity for random sequences.
func TestSequenceRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 1 + rng.Intn(500)
		g := GenerateGenome(n, rng)
		back, err := FromString(g.String())
		return err == nil && back.Equal(g)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateGenomeDeterministic(t *testing.T) {
	a := GenerateGenome(1000, stats.NewRNG(5))
	b := GenerateGenome(1000, stats.NewRNG(5))
	if !a.Equal(b) {
		t.Fatal("same seed produced different genomes")
	}
}

func TestGenerateGenomeComposition(t *testing.T) {
	g := GenerateGenome(100000, stats.NewRNG(7))
	var counts [4]int
	for i := 0; i < g.Len(); i++ {
		counts[g.Base(i)]++
	}
	for b, c := range counts {
		frac := float64(c) / float64(g.Len())
		if frac < 0.22 || frac > 0.28 {
			t.Errorf("base %d frequency %.3f far from uniform", b, frac)
		}
	}
}

func TestGenerateRepetitiveGenome(t *testing.T) {
	g := GenerateRepetitiveGenome(5000, 200, 10, stats.NewRNG(3))
	if g.Len() != 5000 {
		t.Fatalf("length %d", g.Len())
	}
}

func TestReadSampler(t *testing.T) {
	rng := stats.NewRNG(11)
	g := GenerateGenome(10000, rng)
	s := NewReadSampler(g, 101, 0, rng)
	reads := s.Sample(50)
	if len(reads) != 50 {
		t.Fatalf("got %d reads", len(reads))
	}
	for _, r := range reads {
		if r.Len() != 101 {
			t.Fatalf("read length %d", r.Len())
		}
		// Error-free reads must occur in the genome.
		if !strings.Contains(g.String(), r.String()) {
			t.Fatal("error-free read not a genome substring")
		}
	}
}

func TestReadSamplerErrors(t *testing.T) {
	rng := stats.NewRNG(13)
	g := GenerateGenome(5000, rng)
	s := NewReadSampler(g, 100, 0.1, rng)
	// With a 10% error rate, 20 reads of 100bp should virtually always
	// contain at least one substitution.
	text := g.String()
	mismatched := 0
	for i := 0; i < 20; i++ {
		if !strings.Contains(text, s.Next().String()) {
			mismatched++
		}
	}
	if mismatched == 0 {
		t.Fatal("error injection produced no substitutions")
	}
}

func TestReadSamplerPanics(t *testing.T) {
	rng := stats.NewRNG(1)
	g := GenerateGenome(50, rng)
	for _, f := range []func(){
		func() { NewReadSampler(g, 51, 0, rng) },
		func() { NewReadSampler(g, 0, 0, rng) },
		func() { NewReadSampler(g, 10, 1.0, rng) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestTilingReadsCoverGenome(t *testing.T) {
	rng := stats.NewRNG(17)
	g := GenerateGenome(1000, rng)
	reads := TilingReads(g, 50, 20)
	text := g.String()
	for _, r := range reads {
		if !strings.Contains(text, r.String()) {
			t.Fatal("tiling read not in genome")
		}
	}
	// Every genome k-mer with k = overlap+1 must appear in some read.
	k := 21
	inReads := make(map[string]bool)
	for _, r := range reads {
		rs := r.String()
		for i := 0; i+k <= len(rs); i++ {
			inReads[rs[i:i+k]] = true
		}
	}
	for i := 0; i+k <= len(text); i++ {
		if !inReads[text[i:i+k]] {
			t.Fatalf("genome %d-mer at %d missing from tiling reads", k, i)
		}
	}
}

func TestPaperChr14Constants(t *testing.T) {
	w := PaperChr14()
	if w.ReadCount != 45_711_162 || w.ReadLen != 101 {
		t.Fatalf("workload %+v does not match §IV", w)
	}
	if len(w.KmerRanges) != 4 || w.KmerRanges[0] != 16 || w.KmerRanges[3] != 32 {
		t.Fatalf("k sweep %v, want {16,22,26,32}", w.KmerRanges)
	}
	if got := w.KmersPerRead(16); got != 86 {
		t.Fatalf("kmers per read %d, want 86 for k=16", got)
	}
	if w.Coverage() < 40 || w.Coverage() > 60 {
		t.Fatalf("coverage %.1f implausible for the paper's workload", w.Coverage())
	}
	// ~9.2 GB claim: reads alone are ≈4.6 GB of bases; with FASTQ overhead
	// the dataset doubles. Sanity: total bases ≈ 4.6e9.
	totalBases := w.ReadCount * int64(w.ReadLen)
	if totalBases < 4_000_000_000 || totalBases > 5_000_000_000 {
		t.Fatalf("total bases %d out of expected range", totalBases)
	}
}

func TestDistinctKmersBounds(t *testing.T) {
	w := PaperChr14()
	if got := w.DistinctKmers(8); got != 1<<16 {
		t.Fatalf("distinct 8-mers %d, want 4^8", got)
	}
	if got := w.DistinctKmers(32); got != w.GenomeLen-31 {
		t.Fatalf("distinct 32-mers %d, want genome positions", got)
	}
}

func TestPairedSamplerInsertDistribution(t *testing.T) {
	rng := stats.NewRNG(30)
	g := GenerateGenome(20000, rng)
	s := NewPairedSampler(g, 60, 500, 25, 0, rng)
	var sum, sumsq float64
	const n = 2000
	for i := 0; i < n; i++ {
		ins := float64(s.Next().InsertSize)
		sum += ins
		sumsq += ins * ins
	}
	mean := sum / n
	std := sumsq/n - mean*mean
	if mean < 490 || mean > 510 {
		t.Fatalf("insert mean %.1f, want ~500", mean)
	}
	if std < 15*15 || std > 35*35 {
		t.Fatalf("insert variance %.1f outside the configured spread", std)
	}
}

func TestFlattenRestoresForwardStrand(t *testing.T) {
	rng := stats.NewRNG(31)
	g := GenerateGenome(5000, rng)
	pairs := NewPairedSampler(g, 70, 300, 0, 0, rng).Sample(40)
	flat := Flatten(pairs)
	if len(flat) != 80 {
		t.Fatalf("flattened %d reads, want 80", len(flat))
	}
	text := g.String()
	for i, r := range flat {
		if !strings.Contains(text, r.String()) {
			t.Fatalf("flattened read %d not on the forward strand", i)
		}
	}
}
