package genome

import (
	"strings"
	"testing"
)

// Parsers must never panic on arbitrary input — they return errors.

func FuzzFromString(f *testing.F) {
	for _, seed := range []string{"", "ACGT", "acgtu", "ACGTN", "A C G T", strings.Repeat("ACGT", 100)} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		seq, err := FromString(s)
		if err != nil {
			return
		}
		if seq.Len() != len(s) {
			t.Fatalf("parsed length %d from %d input bytes", seq.Len(), len(s))
		}
		if got := seq.String(); !strings.EqualFold(got, strings.ReplaceAll(strings.ReplaceAll(s, "u", "t"), "U", "T")) {
			t.Fatalf("round trip %q -> %q", s, got)
		}
	})
}

func FuzzReadFASTA(f *testing.F) {
	for _, seed := range []string{
		"", ">x\nACGT\n", ">a\nAC\nGT\n>b\nTTTT\n", "ACGT\n", ">only header\n",
		">x\nACGN\n", ">\n\n>\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		recs, err := ReadFASTA(strings.NewReader(s))
		if err != nil {
			return
		}
		for _, r := range recs {
			if r.Seq == nil {
				t.Fatal("record with nil sequence")
			}
		}
	})
}

func FuzzReadFASTQ(f *testing.F) {
	for _, seed := range []string{
		"", "@r\nACGT\n+\nIIII\n", "@r\nACGT\n", "garbage", "@r\nACGT\nIIII\nIIII\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		recs, err := ReadFASTQ(strings.NewReader(s))
		if err != nil {
			return
		}
		for _, r := range recs {
			if r.Seq == nil {
				t.Fatal("record with nil sequence")
			}
		}
	})
}
