package genome

import (
	"bytes"
	"strings"
	"testing"
)

// Parsers must never panic on arbitrary input — they return errors.

func FuzzFromString(f *testing.F) {
	for _, seed := range []string{"", "ACGT", "acgtu", "ACGTN", "A C G T", strings.Repeat("ACGT", 100)} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		seq, err := FromString(s)
		if err != nil {
			return
		}
		if seq.Len() != len(s) {
			t.Fatalf("parsed length %d from %d input bytes", seq.Len(), len(s))
		}
		if got := seq.String(); !strings.EqualFold(got, strings.ReplaceAll(strings.ReplaceAll(s, "u", "t"), "U", "T")) {
			t.Fatalf("round trip %q -> %q", s, got)
		}
	})
}

func FuzzReadFASTA(f *testing.F) {
	for _, seed := range []string{
		"", ">x\nACGT\n", ">a\nAC\nGT\n>b\nTTTT\n", "ACGT\n", ">only header\n",
		">x\nACGN\n", ">\n\n>\n", ">crlf\r\nACGT\r\n", ">x\nACGT", // no final newline
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		recs, err := ReadFASTA(strings.NewReader(s))
		if err != nil {
			return
		}
		for _, r := range recs {
			if r.Seq == nil {
				t.Fatal("record with nil sequence")
			}
		}
		// The streaming scanner IS the parser; a second pass must agree
		// with itself (same record count, same bytes).
		again, err := ReadFASTA(strings.NewReader(s))
		if err != nil || len(again) != len(recs) {
			t.Fatalf("reparse diverged: %v, %d vs %d records", err, len(again), len(recs))
		}
	})
}

// FuzzReadFASTQ drives the four-line parser through the malformed shapes
// real FASTQ emitters produce: quality lines shorter/longer than the
// sequence, bare and annotated '+' separators, CRLF endings, blank-line
// padding, and records truncated at every one of the four lines.
func FuzzReadFASTQ(f *testing.F) {
	for _, seed := range []string{
		"", "@r\nACGT\n+\nIIII\n", "@r\nACGT\n", "garbage", "@r\nACGT\nIIII\nIIII\n",
		"@r\nACGT\n+\nII\n",               // quality shorter than sequence
		"@r\nACGT\n+\nIIIIII\n",           // quality longer than sequence
		"@r\nACGT\n+r comment\nIIII\n",    // annotated separator
		"@r\r\nACGT\r\n+\r\nIIII\r\n",     // CRLF line endings
		"@r\n\nACGT\n\n+\n\nIIII\n",       // blank-line padding
		"@r\nACGT\n+\nIIII\n@r2\nAC\n+\n", // truncated final record (no quality)
		"@r\nACGT\n+\nIIII\n@r2\nAC\n",    // truncated final record (no separator)
		"@r\nACGT\n+\nIIII\n@r2\n",        // truncated final record (no sequence)
		"@r\nACGT\n+\nIIII\n@r2",          // truncated final record (header only)
		"@r\nACGT\n+\n@@@@\n",             // quality that looks like a header
		"@@0\nAA\n+\n00\n",                // name itself starting with '@' (fuzzer find)
		"@0\r0\nAAAA\n+\n0000",            // bare-CR line ending inside a header (fuzzer find)
		"@r\rACGT\r+\rIIII\r",             // classic-Mac CR-only line endings
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		recs, err := ReadFASTQ(strings.NewReader(s))
		if err != nil {
			return
		}
		for _, r := range recs {
			if r.Seq == nil {
				t.Fatal("record with nil sequence")
			}
			// Exactly one header marker is stripped (a name may itself
			// start with '@' when the header read "@@..."), and the name
			// never swallows a line break.
			if strings.ContainsAny(r.Name, "\r\n") {
				t.Fatalf("record name %q crosses a line boundary", r.Name)
			}
		}
	})
}

// FuzzSpillRoundTrip is the spill-format invariant behind the shard
// layer's out-of-core path: any record stream the scanner accepts — FASTA
// or FASTQ, CRLF or not — survives RecordWriter serialisation and a FASTA
// re-scan with names and sequences intact. (Quality strings are dropped by
// design; the assembly pipeline never reads them.)
func FuzzSpillRoundTrip(f *testing.F) {
	for _, seed := range []struct {
		s     string
		fastq bool
	}{
		{">x\nACGT\n>y\nTT\n", false},
		{">long\n" + strings.Repeat("ACGTACGT", 40) + "\n", false}, // wraps at 70 cols
		{">crlf\r\nACGT\r\n", false},
		{">x\nACGT", false}, // no final newline
		{"@r\nACGT\n+\nIIII\n", true},
		{"@r\r\nACGT\r\n+\r\nIIII\r\n", true},
		{"@a\nAC\n+\nII\n@b\nGGGG\n+\nIIII\n", true},
		{"", false},
	} {
		f.Add(seed.s, seed.fastq)
	}
	f.Fuzz(func(t *testing.T, s string, fastq bool) {
		format := FormatFASTA
		if fastq {
			format = FormatFASTQ
		}
		var recs []Record
		if err := ScanRecords(strings.NewReader(s), format, func(r Record) error {
			recs = append(recs, r)
			return nil
		}); err != nil || len(recs) == 0 {
			return // rejected or empty input has nothing to spill
		}
		var spill bytes.Buffer
		rw := NewRecordWriter(&spill)
		for _, r := range recs {
			if err := rw.Write(r); err != nil {
				t.Fatalf("spill write: %v", err)
			}
		}
		if err := rw.Flush(); err != nil {
			t.Fatalf("spill flush: %v", err)
		}
		var back []Record
		if err := ScanRecords(bytes.NewReader(spill.Bytes()), FormatFASTA, func(r Record) error {
			back = append(back, r)
			return nil
		}); err != nil {
			t.Fatalf("re-scan of spilled records failed: %v", err)
		}
		if len(back) != len(recs) {
			t.Fatalf("%d records out of the spill, %d in", len(back), len(recs))
		}
		for i := range recs {
			if back[i].Name != recs[i].Name {
				t.Fatalf("record %d name %q -> %q across the spill", i, recs[i].Name, back[i].Name)
			}
			if !back[i].Seq.Equal(recs[i].Seq) {
				t.Fatalf("record %d sequence changed across the spill", i)
			}
		}
	})
}

// FuzzScanRecords cross-checks the streaming scanner against the slurping
// wrappers on both formats: identical record sets, identical accept/reject
// verdicts, and error messages that carry a line position.
func FuzzScanRecords(f *testing.F) {
	for _, seed := range []string{
		">x\nACGT\n>y\nTT\n", "@r\nACGT\n+\nIIII\n", ">x\r\nAC\r\n", "@\n\n+\n\n", "",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		for _, format := range []Format{FormatFASTA, FormatFASTQ} {
			var streamed []Record
			streamErr := ScanRecords(strings.NewReader(s), format, func(r Record) error {
				streamed = append(streamed, r)
				return nil
			})
			var slurped []Record
			var slurpErr error
			if format == FormatFASTA {
				slurped, slurpErr = ReadFASTA(strings.NewReader(s))
			} else {
				slurped, slurpErr = ReadFASTQ(strings.NewReader(s))
			}
			if (streamErr == nil) != (slurpErr == nil) {
				t.Fatalf("%v: stream err %v, slurp err %v", format, streamErr, slurpErr)
			}
			if streamErr != nil {
				if !strings.Contains(streamErr.Error(), "line ") {
					t.Fatalf("%v: error %q carries no line position", format, streamErr)
				}
				continue
			}
			if len(streamed) != len(slurped) {
				t.Fatalf("%v: stream %d records, slurp %d", format, len(streamed), len(slurped))
			}
			for i := range slurped {
				if streamed[i].Name != slurped[i].Name || !streamed[i].Seq.Equal(slurped[i].Seq) {
					t.Fatalf("%v: record %d diverged", format, i)
				}
			}
		}
	})
}
