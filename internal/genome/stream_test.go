package genome

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"testing"
)

func TestScannerFASTA(t *testing.T) {
	in := ">seq1 description\r\nACGT\r\nACGT\r\n\r\n>seq2\nTTTT\n"
	s := NewScanner(strings.NewReader(in), FormatFASTA)
	var recs []Record
	for s.Scan() {
		recs = append(recs, s.Record())
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].Name != "seq1 description" || recs[0].Seq.String() != "ACGTACGT" {
		t.Fatalf("record 0: %q %q", recs[0].Name, recs[0].Seq.String())
	}
	if recs[1].Name != "seq2" || recs[1].Seq.String() != "TTTT" {
		t.Fatalf("record 1: %q %q", recs[1].Name, recs[1].Seq.String())
	}
	if s.Scan() {
		t.Fatal("Scan returned true after end of stream")
	}
}

func TestScannerFASTQCRLF(t *testing.T) {
	in := "@r1\r\nACGT\r\n+\r\nIIII\r\n@r2\r\nGGCC\r\n+r2\r\nJJJJ\r\n"
	s := NewScanner(strings.NewReader(in), FormatFASTQ)
	var names []string
	for s.Scan() {
		names = append(names, s.Record().Name)
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "r1" || names[1] != "r2" {
		t.Fatalf("names %v", names)
	}
}

// TestScannerErrorPositions pins the per-record line numbers in parse
// errors — the diagnostic the streaming layer adds over the old slurpers.
func TestScannerErrorPositions(t *testing.T) {
	cases := []struct {
		format Format
		in     string
		line   string // substring the error must carry
	}{
		{FormatFASTA, ">ok\nACGT\n>bad\nACGN\n", "line 3"},
		{FormatFASTA, "ACGT\n", "line 1"},
		{FormatFASTQ, "@r1\nACGT\n+\nIIII\nr2\nACGT\n+\nIIII\n", "line 5"},
		{FormatFASTQ, "@r1\nACGN\n+\nIIII\n", "line 2"},
		{FormatFASTQ, "@r1\nACGT\n+\nIII\n", "quality length 3 != sequence length 4"},
	}
	for _, c := range cases {
		s := NewScanner(strings.NewReader(c.in), c.format)
		for s.Scan() {
		}
		if s.Err() == nil {
			t.Errorf("%v %q: no error", c.format, c.in)
			continue
		}
		if !strings.Contains(s.Err().Error(), c.line) {
			t.Errorf("%v %q: error %q does not mention %q", c.format, c.in, s.Err(), c.line)
		}
	}
}

func TestScanRecordsAbort(t *testing.T) {
	abort := errors.New("enough")
	n := 0
	err := ScanRecords(strings.NewReader(">a\nAC\n>b\nGT\n>c\nTT\n"), FormatFASTA, func(Record) error {
		n++
		if n == 2 {
			return abort
		}
		return nil
	})
	if !errors.Is(err, abort) {
		t.Fatalf("err = %v, want the callback's error", err)
	}
	if n != 2 {
		t.Fatalf("callback ran %d times, want 2", n)
	}
}

func TestScanRecordsMatchesSlurp(t *testing.T) {
	in := ">a\nACGTAC\nGT\n\n>b\nTT\n>c\nGGGG\n"
	want, err := ReadFASTA(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	var got []Record
	if err := ScanRecords(strings.NewReader(in), FormatFASTA, func(r Record) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("stream %d records, slurp %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Name != want[i].Name || !got[i].Seq.Equal(want[i].Seq) {
			t.Fatalf("record %d: stream %+v, slurp %+v", i, got[i], want[i])
		}
	}
}

func TestDetectFormat(t *testing.T) {
	cases := map[string]Format{
		"reads.fasta": FormatFASTA,
		"reads.fa":    FormatFASTA,
		"reads.fastq": FormatFASTQ,
		"reads.fq":    FormatFASTQ,
		"reads":       FormatFASTA,
	}
	for path, want := range cases {
		if got := DetectFormat(path); got != want {
			t.Errorf("DetectFormat(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestRecordWriterMatchesWriteFASTA(t *testing.T) {
	recs := []Record{
		{Name: "a", Seq: MustFromString(strings.Repeat("ACGT", 40))},
		{Name: "b", Seq: MustFromString("GG")},
	}
	var batch, streamed strings.Builder
	if err := WriteFASTA(&batch, recs); err != nil {
		t.Fatal(err)
	}
	rw := NewRecordWriter(&streamed)
	for _, rec := range recs {
		if err := rw.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := rw.Flush(); err != nil {
		t.Fatal(err)
	}
	if batch.String() != streamed.String() {
		t.Fatal("streamed output differs from WriteFASTA")
	}
}

// fastaGen synthesizes an endless FASTA stream record by record, so the
// bounded-memory test can feed the scanner far more text than any buffer it
// is allowed to hold.
type fastaGen struct {
	records int // total records to emit
	next    int
	buf     []byte
}

func (g *fastaGen) Read(p []byte) (int, error) {
	for len(g.buf) == 0 {
		if g.next >= g.records {
			return 0, io.EOF
		}
		g.buf = fmt.Appendf(g.buf, ">read_%d\n%s\n", g.next, strings.Repeat("ACGTGGTA", 13))
		g.next++
	}
	n := copy(p, g.buf)
	g.buf = g.buf[n:]
	return n, nil
}

// TestScanBoundedMemory streams a read set ~32x the scanner's initial
// buffer (and far beyond any reasonable record size) through ScanRecords
// without retaining records, sampling the live heap as it goes. The peak
// heap growth must stay bounded by a small constant — the streaming
// guarantee the slurping ReadFASTA cannot give.
func TestScanBoundedMemory(t *testing.T) {
	const (
		records = 300_000 // ~113 bytes each: ~32 MiB of input text
		bound   = 16 << 20
	)
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	baseline := ms.HeapAlloc

	var peak uint64
	var count, bases int
	err := ScanRecords(&fastaGen{records: records}, FormatFASTA, func(rec Record) error {
		count++
		bases += rec.Seq.Len()
		if count%50_000 == 0 {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak {
				peak = ms.HeapAlloc
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != records || bases != records*104 {
		t.Fatalf("streamed %d records / %d bases, want %d / %d", count, bases, records, records*104)
	}
	if peak > baseline && peak-baseline > bound {
		t.Fatalf("peak heap grew %d bytes while streaming ~32 MiB, want < %d", peak-baseline, bound)
	}
}
