package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"pimassembler/internal/metrics"
)

// Client is a small typed client for the daemon's HTTP API — the smoke
// driver, the load-test driver, and the service benchmark all speak
// through it, so the wire format is exercised exactly once.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// APIKey is the tenant key sent as X-API-Key ("" = the default tenant).
	APIKey string
	// HTTPClient overrides http.DefaultClient when set.
	HTTPClient *http.Client
}

// APIError is a non-2xx response: the status code, the server's error
// message, and any Retry-After hint.
type APIError struct {
	StatusCode int
	Message    string
	RetryAfter time.Duration
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("service: HTTP %d: %s", e.StatusCode, e.Message)
}

// Overloaded reports whether the error is an admission rejection the
// caller should retry after backing off (429 or 503).
func (e *APIError) Overloaded() bool {
	return e.StatusCode == http.StatusTooManyRequests || e.StatusCode == http.StatusServiceUnavailable
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do issues one request and decodes a JSON success body into out (skipped
// when out is nil). Non-2xx responses return *APIError.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.APIKey != "" {
		req.Header.Set("X-API-Key", c.APIKey)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeAPIError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func decodeAPIError(resp *http.Response) error {
	apiErr := &APIError{StatusCode: resp.StatusCode}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
		apiErr.RetryAfter = time.Duration(secs) * time.Second
	}
	var doc errorDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err == nil {
		apiErr.Message = doc.Error
	}
	return apiErr
}

// Submit posts one job.
func (c *Client) Submit(ctx context.Context, req SubmitRequest) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &st)
	return st, err
}

// Status polls one job.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Cancel requests one job's cancellation.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Wait polls the job every interval until it reaches a terminal state (or
// ctx ends). A zero interval polls every 10ms.
func (c *Client) Wait(ctx context.Context, id string, interval time.Duration) (JobStatus, error) {
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return st, err
		}
		if st.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-t.C:
		}
	}
}

// Contigs fetches a done job's result FASTA.
func (c *Client) Contigs(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id+"/contigs", nil)
	if err != nil {
		return nil, err
	}
	if c.APIKey != "" {
		req.Header.Set("X-API-Key", c.APIKey)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeAPIError(resp)
	}
	return io.ReadAll(resp.Body)
}

// Metrics fetches and strictly parses the /metrics exposition, returning
// the samples keyed by metric name (with label set where present).
func (c *Client) Metrics(ctx context.Context) (map[string]float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeAPIError(resp)
	}
	return metrics.ParsePrometheus(resp.Body)
}

// Healthz reports whether the daemon answers /healthz with 200.
func (c *Client) Healthz(ctx context.Context) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return false, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return false, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK, nil
}
