package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"pimassembler/internal/assembly"
	"pimassembler/internal/debruijn"
	"pimassembler/internal/engine"
	"pimassembler/internal/genome"
	"pimassembler/internal/jobqueue"
	"pimassembler/internal/metrics"
)

// MaxBodyBytes is the default bound on one submission's payload
// (Config.MaxBodyBytes overrides); larger workloads belong on the
// out-of-core CLI path (cmd/assemble -spill-dir).
const MaxBodyBytes = 64 << 20

// MaxTenantLabels bounds the cardinality of the per-tenant pending gauge:
// the busiest tenants are labelled individually, the remainder aggregate
// under tenant="other", so unique API keys cannot grow /metrics unboundedly.
const MaxTenantLabels = 16

// PrometheusNamespace prefixes every exported metric name.
const PrometheusNamespace = "pim"

// RetryAfter is the backoff hint attached to 429/503 rejections.
const RetryAfter = 1 * time.Second

// SubmitRequest is the POST /v1/jobs payload: the reads as FASTA/FASTQ
// text plus the engine and pipeline options the CLI exposes as flags.
type SubmitRequest struct {
	// Name optionally labels the job in status output.
	Name string `json:"name,omitempty"`
	// Engine is the registry name of the execution path (see
	// cmd/assemble -list-engines).
	Engine string `json:"engine"`
	// Reads is the workload, FASTA or FASTQ text per Format.
	Reads string `json:"reads"`
	// Format is "fasta" (default) or "fastq".
	Format string `json:"format,omitempty"`
	// K is the k-mer length (default 16); MinOverlap follows it as k-4,
	// mirroring the CLI.
	K        int    `json:"k,omitempty"`
	MinCount uint32 `json:"min_count,omitempty"`
	Scaffold bool   `json:"scaffold,omitempty"`
	Simplify bool   `json:"simplify,omitempty"`
	Correct  bool   `json:"correct,omitempty"`
	// Subarrays bounds the functional PIM engine's hash-table spread.
	Subarrays int `json:"subarrays,omitempty"`
	// CountWorkers fans stage-1 counting out over the partitioned counter.
	CountWorkers int `json:"count_workers,omitempty"`
	// TimeoutMS bounds each attempt (0 = the server's default timeout).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// MaxAttempts overrides the server's retry budget when positive.
	MaxAttempts int `json:"max_attempts,omitempty"`
}

// JobStatus is the status-poll document (also the submit/cancel response).
type JobStatus struct {
	ID       string `json:"id"`
	Tenant   string `json:"tenant"`
	Name     string `json:"name,omitempty"`
	Engine   string `json:"engine"`
	State    string `json:"state"`
	Attempts int    `json:"attempts,omitempty"`
	Error    string `json:"error,omitempty"`
	// Contig statistics, present once the job is done.
	Contigs int `json:"contigs,omitempty"`
	Bases   int `json:"bases,omitempty"`
	N50     int `json:"n50,omitempty"`
	// Wall-clock latencies (non-deterministic, reporting only).
	WaitMS float64 `json:"wait_ms,omitempty"`
	RunMS  float64 `json:"run_ms,omitempty"`
}

// Terminal reports whether the status names a terminal lifecycle state.
func (st JobStatus) Terminal() bool {
	return st.State == jobqueue.StateDone.String() ||
		st.State == jobqueue.StateFailed.String() ||
		st.State == jobqueue.StateCancelled.String()
}

// errorDoc is the JSON error envelope of every non-2xx response.
type errorDoc struct {
	Error string `json:"error"`
}

// Handler returns the daemon's HTTP face:
//
//	POST   /v1/jobs              submit (202, 400, 429, 503)
//	GET    /v1/jobs/{id}         status poll (200, 404)
//	DELETE /v1/jobs/{id}         cancel (202, 404)
//	GET    /v1/jobs/{id}/contigs stream result FASTA (200, 404, 409)
//	GET    /healthz              liveness/drain state (200, 503)
//	GET    /metrics              Prometheus text exposition (200)
//
// Jobs are tenant-scoped by the X-API-Key header (absent = "anonymous"):
// one tenant's IDs are invisible to another.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/contigs", s.handleContigs)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.counters.Add("service.http.requests", 1)
		mux.ServeHTTP(w, r)
		s.counters.Observe("service.latency.http", time.Since(start))
	})
}

// tenantKey resolves the request's tenant.
func tenantKey(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return k
	}
	return DefaultTenant
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	tenant := tenantKey(r)
	var req SubmitRequest
	body := http.MaxBytesReader(w, r.Body, s.bodyLimit)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds the %d-byte limit", tooBig.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decoding request body: %v", err))
		return
	}
	spec, err := s.buildSpec(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	j, err := s.submit(tenant, req.Name, spec)
	if err != nil {
		var quota *QuotaError
		switch {
		case errors.As(err, &quota):
			w.Header().Set("Retry-After", retryAfterSeconds())
			writeError(w, http.StatusTooManyRequests, err.Error())
		case errors.Is(err, ErrDraining):
			w.Header().Set("Retry-After", retryAfterSeconds())
			writeError(w, http.StatusServiceUnavailable, err.Error())
		default:
			writeError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	writeJSON(w, http.StatusAccepted, s.status(j))
}

// buildSpec validates a submission and compiles it to a queue Spec.
func (s *Server) buildSpec(req SubmitRequest) (jobqueue.Spec, error) {
	if req.Engine == "" {
		return jobqueue.Spec{}, errors.New("missing engine name")
	}
	if _, err := s.registry.Lookup(req.Engine); err != nil {
		return jobqueue.Spec{}, err
	}
	var format genome.Format
	switch strings.ToLower(req.Format) {
	case "", "fasta":
		format = genome.FormatFASTA
	case "fastq":
		format = genome.FormatFASTQ
	default:
		return jobqueue.Spec{}, fmt.Errorf("unknown read format %q (want fasta or fastq)", req.Format)
	}
	var reads []*genome.Sequence
	err := genome.ScanRecords(strings.NewReader(req.Reads), format, func(rec genome.Record) error {
		reads = append(reads, rec.Seq)
		return nil
	})
	if err != nil {
		return jobqueue.Spec{}, fmt.Errorf("parsing reads: %v", err)
	}
	if len(reads) == 0 {
		return jobqueue.Spec{}, errors.New("no reads in request")
	}

	k := req.K
	if k == 0 {
		k = 16
	}
	if k < 2 || k > 32 {
		return jobqueue.Spec{}, fmt.Errorf("k=%d outside the supported range [2, 32]", k)
	}
	// MinOverlap follows k as k-4; scaffolding needs it positive, so reject
	// the combination here as a 400 instead of admitting a job that can
	// only fail pipeline validation at run time.
	if req.Scaffold && k-4 < 1 {
		return jobqueue.Spec{}, fmt.Errorf("scaffold requires k > 4 (k=%d yields min overlap %d)", k, k-4)
	}
	timeout := s.defTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	retry := s.retry
	if req.MaxAttempts > 0 {
		retry.MaxAttempts = req.MaxAttempts
	}
	return jobqueue.Spec{
		Name:   req.Name,
		Engine: req.Engine,
		Source: genome.NewSliceSource(reads),
		Opts: engine.Options{
			Options: assembly.Options{
				K:            k,
				MinCount:     req.MinCount,
				Scaffold:     req.Scaffold,
				Simplify:     req.Simplify,
				Correct:      req.Correct,
				MinOverlap:   k - 4,
				CountWorkers: req.CountWorkers,
			},
			Subarrays: req.Subarrays,
		},
		Timeout: timeout,
		Retry:   retry,
	}, nil
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(tenantKey(r), r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, s.status(j))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(tenantKey(r), r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	s.cancelJob(j)
	writeJSON(w, http.StatusAccepted, s.status(j))
}

func (s *Server) handleContigs(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(tenantKey(r), r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	s.mu.Lock()
	state := j.state
	res := j.res
	s.mu.Unlock()
	if state != jobqueue.StateDone || res == nil || res.Report == nil {
		writeError(w, http.StatusConflict, fmt.Sprintf("job is %s, contigs are available once done", state))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	// Record naming matches cmd/assemble's output file byte for byte.
	records := make([]genome.Record, len(res.Report.Contigs))
	for i, c := range res.Report.Contigs {
		records[i] = genome.Record{
			Name: fmt.Sprintf("contig_%d len=%d cov=%.1f", i, c.Seq.Len(), c.MeanCoverage),
			Seq:  c.Seq,
		}
	}
	if err := genome.WriteFASTA(w, records); err != nil {
		// Headers are gone; all we can do is drop the connection.
		s.counters.Add("service.http.write_errors", 1)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining || s.stopped
	pending := s.pending
	s.mu.Unlock()
	if draining {
		w.Header().Set("Retry-After", retryAfterSeconds())
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining", "pending": pending})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "pending": pending})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	pending := s.pending
	queued := s.queued
	inflight := s.inflight
	highWater := s.highWater
	draining := 0
	if s.draining || s.stopped {
		draining = 1
	}
	tenantPending := make(map[string]int, len(s.tenants))
	for k, t := range s.tenants {
		tenantPending[k] = t.pending
	}
	s.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	gauge := func(name string, v int) {
		full := metrics.PrometheusName(PrometheusNamespace, name)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", full, full, v)
	}
	gauge("service.pending", pending)
	gauge("service.queued", queued)
	gauge("service.inflight", inflight)
	gauge("service.pending_high_water", highWater)
	gauge("service.max_pending", s.maxPending)
	gauge("service.max_pending_per_tenant", s.maxPerTenant)
	gauge("service.draining", draining)
	if len(tenantPending) > 0 {
		full := metrics.PrometheusName(PrometheusNamespace, "service.tenant_pending")
		fmt.Fprintf(w, "# TYPE %s gauge\n", full)
		// Client-supplied API keys are untrusted: sanitize each to the safe
		// label charset (colliding keys sum), then cap cardinality at the
		// busiest MaxTenantLabels with the rest aggregated as "other".
		agg := make(map[string]int, len(tenantPending))
		for k, v := range tenantPending {
			agg[promLabelValue(k)] += v
		}
		if len(agg) > MaxTenantLabels {
			ranked := make([]string, 0, len(agg))
			for k := range agg {
				ranked = append(ranked, k)
			}
			sort.Slice(ranked, func(i, j int) bool {
				if agg[ranked[i]] != agg[ranked[j]] {
					return agg[ranked[i]] > agg[ranked[j]]
				}
				return ranked[i] < ranked[j]
			})
			other := 0
			for _, k := range ranked[MaxTenantLabels-1:] {
				other += agg[k]
				delete(agg, k)
			}
			agg["other"] += other
		}
		keys := make([]string, 0, len(agg))
		for k := range agg {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "%s{tenant=\"%s\"} %d\n", full, k, agg[k])
		}
	}
	if err := metrics.WritePrometheus(w, s.counters, PrometheusNamespace); err != nil {
		s.counters.Add("service.http.write_errors", 1)
	}
}

// status builds a job's status document.
func (s *Server) status(j *job) JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := JobStatus{
		ID:     j.id,
		Tenant: j.tenant,
		Name:   j.name,
		Engine: j.engine,
		State:  j.state.String(),
	}
	if res := j.res; res != nil {
		st.Attempts = res.Attempts
		if res.Err != nil {
			st.Error = res.Err.Error()
		}
		if res.Report != nil && res.Report.Contigs != nil {
			st.Contigs = len(res.Report.Contigs)
			st.Bases = debruijn.TotalBases(res.Report.Contigs)
			st.N50 = debruijn.N50(res.Report.Contigs)
		}
		st.WaitMS = float64(res.Wait) / float64(time.Millisecond)
		st.RunMS = float64(res.Run) / float64(time.Millisecond)
	}
	return st
}

// promLabelValue maps an untrusted tenant key onto a label value that is
// safe to splice into the exposition unescaped: runes outside
// [a-zA-Z0-9_.:@/-] become '_' (so no quotes, backslashes, newlines, or
// escape sequences the strict ParsePrometheus regex rejects) and the value
// is truncated to 64 runes.
func promLabelValue(v string) string {
	const maxRunes = 64
	var sb strings.Builder
	n := 0
	for _, r := range v {
		ok := r == '_' || r == '-' || r == '.' || r == ':' || r == '@' || r == '/' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if !ok {
			r = '_'
		}
		sb.WriteRune(r)
		if n++; n >= maxRunes {
			break
		}
	}
	return sb.String()
}

func writeJSON(w http.ResponseWriter, status int, doc any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(doc)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorDoc{Error: msg})
}

// retryAfterSeconds renders RetryAfter for the header (whole seconds,
// minimum 1 — the header does not speak fractions).
func retryAfterSeconds() string {
	secs := int(RetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}
