// Package service is the repository's front door: a long-lived HTTP daemon
// serving multi-tenant assembly jobs over jobqueue.Stream. It adds the
// three things the bare queue does not have — bounded admission with
// backpressure (a fixed pending-job budget per tenant and globally,
// rejected with 429 + Retry-After instead of queueing unboundedly),
// round-robin fair dispatch across tenants, and a graceful drain state
// machine (stop admitting, finish or cancel in-flight jobs within a
// deadline, then stop) — plus a Prometheus /metrics endpoint exporting the
// shared metrics.Counters. See DESIGN.md §16.
//
// Determinism: the service inherits the queue's contract. Job payloads are
// parsed to the same read sets the CLI loads, every job runs on a fresh
// engine platform, and contigs stream back byte-identical to a direct
// jobqueue.Run of the same specs — whatever the worker count, tenant mix,
// or submission timing. Only the wall-clock latency series differ.
package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"pimassembler/internal/engine"
	"pimassembler/internal/jobqueue"
	"pimassembler/internal/metrics"
	"pimassembler/internal/parallel"
)

// Admission defaults; Config overrides them per server.
const (
	// DefaultMaxPending is the global admitted-but-unfinished job budget.
	DefaultMaxPending = 64
	// DefaultMaxPendingPerTenant is the per-tenant share of that budget.
	DefaultMaxPendingPerTenant = 16
	// DefaultTenant is the tenant key of requests without an X-API-Key.
	DefaultTenant = "anonymous"
	// DefaultResultTTL is how long a terminal job's record (including its
	// contigs) stays pollable before the sweeper evicts it.
	DefaultResultTTL = 15 * time.Minute
	// DefaultMaxRetainedPerTenant caps the terminal records kept per
	// tenant; beyond it the oldest result is evicted immediately.
	DefaultMaxRetainedPerTenant = 64
)

// Config parameterises a Server. The zero value is serviceable: default
// registry, GOMAXPROCS workers, default budgets, fresh counters.
type Config struct {
	// Registry resolves engine names (nil = engine.Default()).
	Registry *engine.Registry
	// Workers bounds concurrently running jobs (0 = parallel.Workers()).
	Workers int
	// MaxPending is the global admission budget: jobs admitted but not yet
	// terminal. At the budget, submissions are rejected with a QuotaError
	// (HTTP 429), never queued. 0 = DefaultMaxPending.
	MaxPending int
	// MaxPendingPerTenant is the per-tenant admission budget.
	// 0 = DefaultMaxPendingPerTenant.
	MaxPendingPerTenant int
	// DefaultTimeout bounds each attempt of jobs that name no timeout.
	DefaultTimeout time.Duration
	// ResultTTL bounds how long terminal jobs stay pollable: a background
	// sweeper evicts older records so memory tracks the admission budget,
	// not total jobs ever served. 0 = DefaultResultTTL; negative disables
	// TTL eviction (the per-tenant cap still applies).
	ResultTTL time.Duration
	// MaxRetainedPerTenant caps terminal records kept per tenant, oldest
	// evicted first. 0 = DefaultMaxRetainedPerTenant.
	MaxRetainedPerTenant int
	// MaxBodyBytes bounds one submission's payload (0 = MaxBodyBytes).
	MaxBodyBytes int64
	// Retry is the attempt budget applied to every job (a request's
	// max_attempts overrides MaxAttempts).
	Retry jobqueue.RetryPolicy
	// Counters receives the service.* and jobs.* instrumentation
	// (nil = a fresh registry, readable via Counters()).
	Counters *metrics.Counters
}

// ErrDraining rejects submissions while the server drains or after it
// stopped; HTTP maps it to 503 + Retry-After.
var ErrDraining = errors.New("service: draining, not accepting jobs")

// QuotaError reports an admission budget at capacity; HTTP maps it to
// 429 + Retry-After. Scope names the exhausted budget.
type QuotaError struct {
	Scope   string // "global" or the tenant key
	Pending int
	Limit   int
}

// Error implements error.
func (e *QuotaError) Error() string {
	if e.Scope == "global" {
		return fmt.Sprintf("service: global pending budget exhausted (%d/%d)", e.Pending, e.Limit)
	}
	return fmt.Sprintf("service: tenant %q pending budget exhausted (%d/%d)", e.Scope, e.Pending, e.Limit)
}

// job is one admitted submission's record, protected by Server.mu except
// for the immutable identity fields.
type job struct {
	id        string
	tenant    string
	name      string
	engine    string
	spec      jobqueue.Spec
	submitted time.Time
	ctx       context.Context
	cancel    context.CancelFunc
	state     jobqueue.State
	finished  time.Time
	res       *jobqueue.Result
	done      chan struct{}
}

// tenant aggregates one API key's admission state: its FIFO of
// not-yet-dispatched jobs, its pending (admitted, non-terminal) count, and
// its retained terminal records (finish order, oldest first) awaiting
// eviction by the retention policy.
type tenant struct {
	key      string
	queue    []*job
	pending  int
	retained []*job
}

// Server is the daemon: admission control and fair dispatch in front of a
// jobqueue.Stream, plus the HTTP face in http.go. Construct with New;
// every Server must eventually be shut down with Drain or Close.
type Server struct {
	registry     *engine.Registry
	workers      int
	maxPending   int
	maxPerTenant int
	defTimeout   time.Duration
	resultTTL    time.Duration
	maxRetained  int
	bodyLimit    int64
	retry        jobqueue.RetryPolicy
	counters     *metrics.Counters
	stream       *jobqueue.Stream
	ctx          context.Context
	cancel       context.CancelFunc

	mu             sync.Mutex
	cond           *sync.Cond
	jobs           map[string]*job
	tenants        map[string]*tenant
	active         []*tenant  // round-robin ring of tenants with queued jobs
	pending        int        // admitted, non-terminal
	queued         int        // admitted, not yet dispatched
	inflight       int        // dispatched, not yet terminal
	highWater      int        // max pending ever observed
	stats          DrainStats // terminal tallies, survive record eviction
	nextID         int
	draining       bool
	stopped        bool
	dispatcherDone chan struct{}
	sweeperDone    chan struct{}
}

// New builds a Server and starts its dispatcher. The server accepts jobs
// immediately; call Drain (or Close) to shut it down.
func New(cfg Config) *Server {
	reg := cfg.Registry
	if reg == nil {
		reg = engine.Default()
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = parallel.Workers()
	}
	maxPending := cfg.MaxPending
	if maxPending < 1 {
		maxPending = DefaultMaxPending
	}
	maxPerTenant := cfg.MaxPendingPerTenant
	if maxPerTenant < 1 {
		maxPerTenant = DefaultMaxPendingPerTenant
	}
	if maxPerTenant > maxPending {
		maxPerTenant = maxPending
	}
	resultTTL := cfg.ResultTTL
	if resultTTL == 0 {
		resultTTL = DefaultResultTTL
	}
	maxRetained := cfg.MaxRetainedPerTenant
	if maxRetained < 1 {
		maxRetained = DefaultMaxRetainedPerTenant
	}
	bodyLimit := cfg.MaxBodyBytes
	if bodyLimit <= 0 {
		bodyLimit = MaxBodyBytes
	}
	counters := cfg.Counters
	if counters == nil {
		counters = metrics.NewCounters()
	}
	ctx, cancel := context.WithCancel(context.Background())
	q := jobqueue.New(reg, jobqueue.WithWorkers(workers), jobqueue.WithCounters(counters))
	s := &Server{
		registry:       reg,
		workers:        workers,
		maxPending:     maxPending,
		maxPerTenant:   maxPerTenant,
		defTimeout:     cfg.DefaultTimeout,
		resultTTL:      resultTTL,
		maxRetained:    maxRetained,
		bodyLimit:      bodyLimit,
		retry:          cfg.Retry,
		counters:       counters,
		stream:         q.Stream(ctx),
		ctx:            ctx,
		cancel:         cancel,
		jobs:           make(map[string]*job),
		tenants:        make(map[string]*tenant),
		dispatcherDone: make(chan struct{}),
		sweeperDone:    make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	go s.dispatch()
	if resultTTL > 0 {
		go s.sweep(sweepInterval(resultTTL))
	} else {
		close(s.sweeperDone)
	}
	return s
}

// sweepInterval picks the sweeper cadence for a TTL: a quarter of it,
// clamped so short test TTLs still sweep promptly and long ones do not
// wake more than once a minute.
func sweepInterval(ttl time.Duration) time.Duration {
	iv := ttl / 4
	if iv < 10*time.Millisecond {
		iv = 10 * time.Millisecond
	}
	if iv > time.Minute {
		iv = time.Minute
	}
	return iv
}

// Counters exposes the server's instrumentation registry.
func (s *Server) Counters() *metrics.Counters { return s.counters }

// Workers returns the concurrent-job bound.
func (s *Server) Workers() int { return s.workers }

// MaxPending returns the global admission budget.
func (s *Server) MaxPending() int { return s.maxPending }

// MaxPendingPerTenant returns the per-tenant admission budget.
func (s *Server) MaxPendingPerTenant() int { return s.maxPerTenant }

// Pending returns the admitted-but-unfinished job count — by construction
// never above MaxPending.
func (s *Server) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pending
}

// HighWater returns the maximum Pending ever observed — the saturation
// proof the load-test driver asserts against the budget.
func (s *Server) HighWater() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.highWater
}

// Draining reports whether admission has stopped.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining || s.stopped
}

// submit admits one job or rejects it with ErrDraining / *QuotaError. The
// spec must already be validated (engine name, parsed reads).
func (s *Server) submit(tenantKey, name string, spec jobqueue.Spec) (*job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.stopped {
		s.counters.Add("service.rejected.draining", 1)
		return nil, ErrDraining
	}
	if s.pending >= s.maxPending {
		s.counters.Add("service.rejected.quota", 1)
		return nil, &QuotaError{Scope: "global", Pending: s.pending, Limit: s.maxPending}
	}
	t := s.tenants[tenantKey]
	if t == nil {
		t = &tenant{key: tenantKey}
		s.tenants[tenantKey] = t
	}
	if t.pending >= s.maxPerTenant {
		s.counters.Add("service.rejected.quota", 1)
		return nil, &QuotaError{Scope: tenantKey, Pending: t.pending, Limit: s.maxPerTenant}
	}

	s.nextID++
	ctx, cancel := context.WithCancel(s.ctx)
	j := &job{
		id:        fmt.Sprintf("j-%d", s.nextID),
		tenant:    tenantKey,
		name:      name,
		engine:    spec.Engine,
		spec:      spec,
		submitted: time.Now(),
		ctx:       ctx,
		cancel:    cancel,
		state:     jobqueue.StateQueued,
		done:      make(chan struct{}),
	}
	s.jobs[j.id] = j
	if len(t.queue) == 0 {
		s.active = append(s.active, t)
	}
	t.queue = append(t.queue, j)
	t.pending++
	s.pending++
	s.queued++
	if s.pending > s.highWater {
		s.highWater = s.pending
	}
	s.counters.Add("service.submitted", 1)
	s.cond.Broadcast()
	return j, nil
}

// lookup resolves a job visible to tenantKey (jobs are tenant-scoped: a
// foreign or unknown ID is indistinguishably absent).
func (s *Server) lookup(tenantKey, id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil || j.tenant != tenantKey {
		return nil
	}
	return j
}

// dispatch is the fairness loop: whenever a worker slot is free and a
// tenant has queued jobs, it pops the next tenant off the round-robin ring,
// dispatches that tenant's oldest job onto the stream, and re-queues the
// tenant at the back of the ring — so a tenant with a deep backlog cannot
// starve one with a single job. It exits when the server stops.
func (s *Server) dispatch() {
	defer close(s.dispatcherDone)
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		for !s.stopped && (s.queued == 0 || s.inflight >= s.workers) {
			s.cond.Wait()
		}
		if s.stopped {
			return
		}
		t := s.active[0]
		s.active = s.active[1:]
		j := t.queue[0]
		t.queue = t.queue[1:]
		if len(t.queue) > 0 {
			s.active = append(s.active, t)
		}
		s.queued--
		s.inflight++
		j.state = jobqueue.StateRunning
		spec, jctx := j.spec, j.ctx

		s.mu.Unlock()
		slot, err := s.stream.SubmitCtx(jctx, spec)
		s.mu.Lock()
		if err != nil {
			// The stream refuses jobs only once closed, i.e. during final
			// shutdown; record the job failed rather than losing it.
			s.finishLocked(j, jobqueue.Result{Spec: spec, State: jobqueue.StateFailed, Err: err})
			continue
		}
		go s.await(j, slot)
	}
}

// await parks on one dispatched job's stream slot and records its result.
func (s *Server) await(j *job, slot int) {
	res, err := s.stream.Wait(slot)
	if err != nil {
		res = jobqueue.Result{Spec: j.spec, State: jobqueue.StateFailed, Err: err}
	}
	s.mu.Lock()
	s.finishLocked(j, res)
	s.mu.Unlock()
}

// finishLocked records a dispatched job's terminal result and applies the
// retention policy: the record joins its tenant's retained FIFO (so status
// and contigs stay pollable), the per-tenant cap evicts the oldest result
// beyond it, and the terminal tally survives any later eviction. Callers
// hold mu.
func (s *Server) finishLocked(j *job, res jobqueue.Result) {
	j.res = &res
	j.state = res.State
	j.finished = time.Now()
	j.cancel()
	close(j.done)
	s.inflight--
	s.pending--
	switch res.State {
	case jobqueue.StateDone:
		s.stats.Done++
	case jobqueue.StateFailed:
		s.stats.Failed++
	case jobqueue.StateCancelled:
		s.stats.Cancelled++
	}
	t := s.tenants[j.tenant]
	t.pending--
	t.retained = append(t.retained, j)
	for len(t.retained) > s.maxRetained {
		s.evictOldestLocked(t)
	}
	s.cond.Broadcast()
}

// evictOldestLocked drops a tenant's oldest retained terminal record,
// releasing the job (and its contig report) for collection. Callers hold mu.
func (s *Server) evictOldestLocked(t *tenant) {
	j := t.retained[0]
	t.retained[0] = nil
	t.retained = t.retained[1:]
	delete(s.jobs, j.id)
	s.counters.Add("service.evicted", 1)
}

// dropTenantIfIdleLocked removes a tenant record with no admitted jobs and
// no retained results, so the tenant map (and the /metrics label set)
// tracks live tenants rather than every key ever seen. Callers hold mu.
func (s *Server) dropTenantIfIdleLocked(t *tenant) {
	if t.pending == 0 && len(t.queue) == 0 && len(t.retained) == 0 {
		delete(s.tenants, t.key)
	}
}

// sweep is the retention loop: every interval it evicts terminal records
// older than the TTL and drops idle tenants. It exits when the server's
// context is cancelled at the end of Drain.
func (s *Server) sweep(interval time.Duration) {
	defer close(s.sweeperDone)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-tick.C:
			s.evictExpired(time.Now())
		}
	}
}

// evictExpired applies the TTL half of the retention policy.
func (s *Server) evictExpired(now time.Time) {
	cutoff := now.Add(-s.resultTTL)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range s.tenants {
		for len(t.retained) > 0 && t.retained[0].finished.Before(cutoff) {
			s.evictOldestLocked(t)
		}
		s.dropTenantIfIdleLocked(t)
	}
}

// cancelJob cancels one job's context. A queued job is still dispatched —
// into its dead context — so it flows through the queue and records
// Cancelled exactly like a mid-run cancellation.
func (s *Server) cancelJob(j *job) { j.cancel() }

// BeginDrain stops admission (idempotent): new submissions get ErrDraining,
// /healthz turns 503, in-flight and queued jobs keep running.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		s.counters.Add("service.drains", 1)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// DrainStats tallies the terminal states of every job the server ever
// admitted, reported by Drain.
type DrainStats struct {
	Done, Failed, Cancelled int
}

// String implements fmt.Stringer.
func (d DrainStats) String() string {
	return fmt.Sprintf("%d done, %d failed, %d cancelled", d.Done, d.Failed, d.Cancelled)
}

// Drain is the graceful-shutdown state machine: stop admitting, let
// in-flight and queued jobs finish until ctx expires, then cancel whatever
// remains and wait for it to record Cancelled. It returns once every
// admitted job is terminal and the dispatcher has exited; the server is
// then stopped for good. Safe to call once; Close is the
// cancel-immediately variant.
func (s *Server) Drain(ctx context.Context) DrainStats {
	s.BeginDrain()
	// cond.Wait cannot select on ctx, so expiry pokes the waiters.
	stop := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer stop()

	s.mu.Lock()
	for s.pending > 0 && ctx.Err() == nil {
		s.cond.Wait()
	}
	expired := s.pending > 0
	s.mu.Unlock()

	if expired {
		// Deadline passed: cancel every remaining job's context (they are
		// all children of s.ctx). Running attempts observe it at the next
		// stage boundary; still-queued jobs are dispatched into their dead
		// context and record Cancelled immediately.
		s.cancel()
		s.mu.Lock()
		for s.pending > 0 {
			s.cond.Wait()
		}
		s.mu.Unlock()
	}

	s.mu.Lock()
	s.stopped = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.stream.Close()
	<-s.dispatcherDone
	s.cancel()
	<-s.sweeperDone

	// The running tally, not a scan of s.jobs: retention may already have
	// evicted long-finished records, but every admitted job was counted
	// exactly once when it turned terminal.
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close shuts down immediately: every non-terminal job is cancelled and the
// server stops. It is Drain with an already-expired deadline.
func (s *Server) Close() DrainStats {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return s.Drain(ctx)
}
