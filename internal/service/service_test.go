package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pimassembler/internal/engine"
	"pimassembler/internal/genome"
	"pimassembler/internal/jobqueue"
	"pimassembler/internal/stats"
)

// fastaWorkload renders a deterministic sampled read set as FASTA text —
// the exact payload a client would POST.
func fastaWorkload(t *testing.T, seed uint64, genomeLen, reads int) string {
	t.Helper()
	rng := stats.NewRNG(seed)
	ref := genome.GenerateGenome(genomeLen, rng)
	seqs := genome.NewReadSampler(ref, 101, 0, rng).Sample(reads)
	records := make([]genome.Record, len(seqs))
	for i, s := range seqs {
		records[i] = genome.Record{Name: fmt.Sprintf("r%d", i), Seq: s}
	}
	var sb strings.Builder
	if err := genome.WriteFASTA(&sb, records); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// testEngine is a scriptable engine for lifecycle tests.
type testEngine struct {
	name string
	fn   func(ctx context.Context, src genome.ReadSource) (*engine.Report, error)
}

func (e testEngine) Name() string     { return e.name }
func (e testEngine) Describe() string { return "test stub" }
func (e testEngine) Assemble(ctx context.Context, src genome.ReadSource, _ engine.Options) (*engine.Report, error) {
	return e.fn(ctx, src)
}

// testRegistry bundles the real software engine with any stubs.
func testRegistry(t *testing.T, stubs ...engine.Engine) *engine.Registry {
	t.Helper()
	r := engine.NewRegistry()
	software, err := engine.Default().Lookup("software")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Register(software); err != nil {
		t.Fatal(err)
	}
	for _, e := range stubs {
		if err := r.Register(e); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

// blockingEngine runs until the returned release func is called (or the
// job's context ends, which reports ctx.Err()).
func blockingEngine(name string) (engine.Engine, func()) {
	release := make(chan struct{})
	var once sync.Once
	e := testEngine{name: name, fn: func(ctx context.Context, _ genome.ReadSource) (*engine.Report, error) {
		select {
		case <-release:
			return &engine.Report{Engine: name, Family: engine.FamilySoftware}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}}
	return e, func() { once.Do(func() { close(release) }) }
}

// startServer builds a Server + httptest front and tears both down.
func startServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Drain(ctx)
	})
	return srv, ts
}

func postJob(t *testing.T, ts *httptest.Server, apiKey string, req SubmitRequest) *http.Response {
	t.Helper()
	buf, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	if apiKey != "" {
		hr.Header.Set("X-API-Key", apiKey)
	}
	resp, err := ts.Client().Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestHandlerErrors is the table-driven rejection matrix of the HTTP face.
func TestHandlerErrors(t *testing.T) {
	reads := fastaWorkload(t, 7, 600, 30)
	_, ts := startServer(t, Config{Workers: 1})
	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
	}{
		{"bad engine name", "POST", "/v1/jobs",
			`{"engine":"warp-drive","reads":` + mustJSON(reads) + `}`, http.StatusBadRequest},
		{"missing engine", "POST", "/v1/jobs",
			`{"reads":` + mustJSON(reads) + `}`, http.StatusBadRequest},
		{"malformed JSON", "POST", "/v1/jobs", `{"engine":`, http.StatusBadRequest},
		{"no reads", "POST", "/v1/jobs", `{"engine":"software","reads":""}`, http.StatusBadRequest},
		{"bad read text", "POST", "/v1/jobs",
			`{"engine":"software","reads":">r0\nNOPE!\n"}`, http.StatusBadRequest},
		{"bad format", "POST", "/v1/jobs",
			`{"engine":"software","format":"sam","reads":` + mustJSON(reads) + `}`, http.StatusBadRequest},
		{"k out of range", "POST", "/v1/jobs",
			`{"engine":"software","k":64,"reads":` + mustJSON(reads) + `}`, http.StatusBadRequest},
		{"scaffold with k too small for an overlap", "POST", "/v1/jobs",
			`{"engine":"software","k":4,"scaffold":true,"reads":` + mustJSON(reads) + `}`, http.StatusBadRequest},
		{"unknown job ID", "GET", "/v1/jobs/j-999", "", http.StatusNotFound},
		{"unknown job contigs", "GET", "/v1/jobs/j-999/contigs", "", http.StatusNotFound},
		{"unknown job cancel", "DELETE", "/v1/jobs/j-999", "", http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var body *bytes.Reader
			if tc.body != "" {
				body = bytes.NewReader([]byte(tc.body))
			} else {
				body = bytes.NewReader(nil)
			}
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, body)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := ts.Client().Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			var doc errorDoc
			if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil || doc.Error == "" {
				t.Fatalf("error envelope missing (err=%v, doc=%+v)", err, doc)
			}
		})
	}
}

func mustJSON(s string) string {
	buf, err := json.Marshal(s)
	if err != nil {
		panic(err)
	}
	return string(buf)
}

// TestTenantIsolation pins that one tenant's job IDs are invisible (404)
// to another tenant.
func TestTenantIsolation(t *testing.T) {
	reads := fastaWorkload(t, 8, 600, 30)
	_, ts := startServer(t, Config{Workers: 2})
	alice := &Client{BaseURL: ts.URL, APIKey: "alice"}
	bob := &Client{BaseURL: ts.URL, APIKey: "bob"}
	ctx := context.Background()

	st, err := alice.Submit(ctx, SubmitRequest{Engine: "software", Reads: reads})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bob.Status(ctx, st.ID); !isStatus(err, http.StatusNotFound) {
		t.Fatalf("bob sees alice's job: err=%v", err)
	}
	if _, err := alice.Wait(ctx, st.ID, 0); err != nil {
		t.Fatal(err)
	}
}

func isStatus(err error, code int) bool {
	apiErr, ok := err.(*APIError)
	return ok && apiErr.StatusCode == code
}

// TestQuotaBackpressure pins bounded admission: at the per-tenant and
// global budgets, submissions are rejected 429 with a Retry-After header —
// never queued — and capacity admits again once a job finishes.
func TestQuotaBackpressure(t *testing.T) {
	block, release := blockingEngine("block")
	defer release()
	srv, ts := startServer(t, Config{
		Registry:            testRegistry(t, block),
		Workers:             1,
		MaxPending:          3,
		MaxPendingPerTenant: 2,
	})
	reads := fastaWorkload(t, 9, 600, 20)
	ctx := context.Background()
	a := &Client{BaseURL: ts.URL, APIKey: "a"}
	b := &Client{BaseURL: ts.URL, APIKey: "b"}

	// Tenant a fills its own budget (2); the worker blocks on the first.
	first, err := a.Submit(ctx, SubmitRequest{Engine: "block", Reads: reads})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Submit(ctx, SubmitRequest{Engine: "block", Reads: reads}); err != nil {
		t.Fatal(err)
	}
	resp := postJob(t, ts, "a", SubmitRequest{Engine: "block", Reads: reads})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota tenant: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	resp.Body.Close()

	// Tenant b still has its own budget, but the global cap (3) admits
	// exactly one more.
	if _, err := b.Submit(ctx, SubmitRequest{Engine: "block", Reads: reads}); err != nil {
		t.Fatal(err)
	}
	resp = postJob(t, ts, "b", SubmitRequest{Engine: "block", Reads: reads})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over global budget: status %d, want 429", resp.StatusCode)
	}
	resp.Body.Close()
	if got := srv.Pending(); got != 3 {
		t.Fatalf("pending = %d, want 3 (the budget)", got)
	}
	if hw := srv.HighWater(); hw > 3 {
		t.Fatalf("high water %d exceeded the budget 3", hw)
	}

	// Draining the blocked jobs frees capacity again.
	release()
	if _, err := a.Wait(ctx, first.ID, 0); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return srv.Pending() == 0 })
	if _, err := a.Submit(ctx, SubmitRequest{Engine: "software", Reads: reads}); err != nil {
		t.Fatalf("submit after capacity freed: %v", err)
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCancelMidRun pins DELETE: a running job ends Cancelled and reports
// that state (and its error) on the status poll.
func TestCancelMidRun(t *testing.T) {
	block, release := blockingEngine("block")
	defer release()
	_, ts := startServer(t, Config{Registry: testRegistry(t, block), Workers: 1})
	c := &Client{BaseURL: ts.URL}
	ctx := context.Background()
	reads := fastaWorkload(t, 10, 600, 20)

	st, err := c.Submit(ctx, SubmitRequest{Engine: "block", Reads: reads})
	if err != nil {
		t.Fatal(err)
	}
	// Let it reach the engine before cancelling.
	waitFor(t, 5*time.Second, func() bool {
		cur, err := c.Status(ctx, st.ID)
		return err == nil && cur.State == "running"
	})
	if _, err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, st.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != "cancelled" {
		t.Fatalf("state = %q, want cancelled", final.State)
	}
	if final.Error == "" {
		t.Fatal("cancelled job reports no error")
	}
}

// TestContigsBeforeDone pins the 409 on fetching results early.
func TestContigsBeforeDone(t *testing.T) {
	block, release := blockingEngine("block")
	defer release()
	_, ts := startServer(t, Config{Registry: testRegistry(t, block), Workers: 1})
	c := &Client{BaseURL: ts.URL}
	ctx := context.Background()
	st, err := c.Submit(ctx, SubmitRequest{Engine: "block", Reads: fastaWorkload(t, 11, 600, 20)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Contigs(ctx, st.ID); !isStatus(err, http.StatusConflict) {
		t.Fatalf("contigs before done: err = %v, want 409", err)
	}
	release()
	if _, err := c.Wait(ctx, st.ID, 0); err != nil {
		t.Fatal(err)
	}
}

// TestHTTPDeterminism pins the service's headline contract: N jobs
// submitted over HTTP produce byte-identical contig FASTA to the same
// specs run directly through jobqueue.Run.
func TestHTTPDeterminism(t *testing.T) {
	const jobs = 4
	payloads := make([]string, jobs)
	for i := range payloads {
		payloads[i] = fastaWorkload(t, 20+uint64(i), 1500, 80)
	}

	// Direct path: the same reads through a bare queue.
	specs := make([]jobqueue.Spec, jobs)
	for i, text := range payloads {
		var reads []*genome.Sequence
		err := genome.ScanRecords(strings.NewReader(text), genome.FormatFASTA, func(r genome.Record) error {
			reads = append(reads, r.Seq)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		specs[i] = jobqueue.Spec{Engine: "software", Source: genome.NewSliceSource(reads),
			Opts: defaultEngineOptions(16)}
	}
	direct := jobqueue.New(nil, jobqueue.WithWorkers(2)).Run(context.Background(), specs)

	_, ts := startServer(t, Config{Workers: 2, MaxPending: jobs * 2})
	c := &Client{BaseURL: ts.URL}
	ctx := context.Background()
	ids := make([]string, jobs)
	for i, text := range payloads {
		st, err := c.Submit(ctx, SubmitRequest{Engine: "software", Reads: text, K: 16})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = st.ID
	}
	for i, id := range ids {
		st, err := c.Wait(ctx, id, 0)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != "done" {
			t.Fatalf("job %d: state %q err %q", i, st.State, st.Error)
		}
		got, err := c.Contigs(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if direct[i].State != jobqueue.StateDone {
			t.Fatalf("direct job %d: %v", i, direct[i].Err)
		}
		want := renderContigs(t, direct[i].Report)
		if !bytes.Equal(got, want) {
			t.Errorf("job %d: HTTP contigs differ from direct jobqueue.Run (%d vs %d bytes)",
				i, len(got), len(want))
		}
	}
}

// defaultEngineOptions mirrors the server's buildSpec defaults.
func defaultEngineOptions(k int) engine.Options {
	opts := engine.Options{}
	opts.K = k
	opts.MinOverlap = k - 4
	return opts
}

// renderContigs renders a report's contigs exactly as the contigs endpoint
// (and cmd/assemble's output file) does.
func renderContigs(t *testing.T, rep *engine.Report) []byte {
	t.Helper()
	records := make([]genome.Record, len(rep.Contigs))
	for i, c := range rep.Contigs {
		records[i] = genome.Record{
			Name: fmt.Sprintf("contig_%d len=%d cov=%.1f", i, c.Seq.Len(), c.MeanCoverage),
			Seq:  c.Seq,
		}
	}
	var buf bytes.Buffer
	if err := genome.WriteFASTA(&buf, records); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFairDispatch pins round-robin fairness: with one worker and two
// tenants' backlogs admitted while the worker is blocked, dispatch
// alternates tenants instead of draining the first backlog first.
func TestFairDispatch(t *testing.T) {
	var mu sync.Mutex
	var order []string
	recorder := testEngine{name: "record", fn: func(_ context.Context, src genome.ReadSource) (*engine.Report, error) {
		read, err := src.Next()
		if err != nil {
			return nil, err
		}
		mu.Lock()
		// The first base encodes the submitting tenant (A, C, G, T space).
		order = append(order, read.String()[:1])
		mu.Unlock()
		return &engine.Report{Engine: "record", Family: engine.FamilySoftware}, nil
	}}
	gate, release := blockingEngine("block")
	srv, ts := startServer(t, Config{
		Registry:   testRegistry(t, recorder, gate),
		Workers:    1,
		MaxPending: 16,
	})
	ctx := context.Background()
	gateClient := &Client{BaseURL: ts.URL, APIKey: "gate"}
	gateJob, err := gateClient.Submit(ctx, SubmitRequest{Engine: "block", Reads: ">r\nACGTACGT\n"})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the gate job to occupy the only worker, then build backlogs.
	waitFor(t, 5*time.Second, func() bool {
		st, err := gateClient.Status(ctx, gateJob.ID)
		return err == nil && st.State == "running"
	})
	a := &Client{BaseURL: ts.URL, APIKey: "tenant-a"}
	b := &Client{BaseURL: ts.URL, APIKey: "tenant-b"}
	var ids []string
	for i := 0; i < 3; i++ {
		st, err := a.Submit(ctx, SubmitRequest{Engine: "record", Reads: ">r\nAAAAAAAA\n"})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	for i := 0; i < 3; i++ {
		st, err := b.Submit(ctx, SubmitRequest{Engine: "record", Reads: ">r\nGGGGGGGG\n"})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	release()
	for _, id := range ids[:3] {
		if _, err := a.Wait(ctx, id, 0); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range ids[3:] {
		if _, err := b.Wait(ctx, id, 0); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	got := strings.Join(order, "")
	mu.Unlock()
	if got != "AGAGAG" {
		t.Fatalf("dispatch order %q, want alternating AGAGAG", got)
	}
	waitFor(t, 5*time.Second, func() bool { return srv.Pending() == 0 })
}

// TestDrainGraceful pins the drain state machine: admission stops (503 with
// Retry-After, healthz 503), in-flight work finishes inside the deadline,
// and Drain returns with every job terminal.
func TestDrainGraceful(t *testing.T) {
	srv := New(Config{Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := &Client{BaseURL: ts.URL}
	ctx := context.Background()
	reads := fastaWorkload(t, 30, 1000, 60)

	var ids []string
	for i := 0; i < 3; i++ {
		st, err := c.Submit(ctx, SubmitRequest{Engine: "software", Reads: reads})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	srv.BeginDrain()

	resp := postJob(t, ts, "", SubmitRequest{Engine: "software", Reads: reads})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After header")
	}
	resp.Body.Close()
	if ok, err := c.Healthz(ctx); err != nil || ok {
		t.Fatalf("healthz while draining: ok=%v err=%v, want 503", ok, err)
	}

	dctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	stats := srv.Drain(dctx)
	if stats.Done != 3 || stats.Failed != 0 || stats.Cancelled != 0 {
		t.Fatalf("drain stats %v, want 3 done", stats)
	}
	if got := srv.Pending(); got != 0 {
		t.Fatalf("pending after drain = %d", got)
	}
	// Results stay pollable after drain.
	for _, id := range ids {
		st, err := c.Status(ctx, id)
		if err != nil || st.State != "done" {
			t.Fatalf("job %s after drain: state=%q err=%v", id, st.State, err)
		}
	}
}

// TestDrainDeadlineCancels pins the other half of the state machine: work
// that cannot finish inside the drain deadline is cancelled, and Drain
// still returns with zero pending.
func TestDrainDeadlineCancels(t *testing.T) {
	block, release := blockingEngine("block")
	defer release()
	srv := New(Config{Registry: testRegistry(t, block), Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := &Client{BaseURL: ts.URL}
	ctx := context.Background()

	// One running forever, one queued behind it.
	for i := 0; i < 2; i++ {
		if _, err := c.Submit(ctx, SubmitRequest{Engine: "block", Reads: ">r\nACGTACGT\n"}); err != nil {
			t.Fatal(err)
		}
	}
	dctx, cancel := context.WithTimeout(ctx, 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	stats := srv.Drain(dctx)
	if stats.Cancelled != 2 {
		t.Fatalf("drain stats %v, want 2 cancelled", stats)
	}
	if srv.Pending() != 0 {
		t.Fatalf("pending after deadline drain = %d", srv.Pending())
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("drain took %v", elapsed)
	}
}

// TestMetricsEndpoint pins that /metrics parses strictly and carries both
// the service gauges and the queue counters.
func TestMetricsEndpoint(t *testing.T) {
	srv, ts := startServer(t, Config{Workers: 2, MaxPending: 8})
	c := &Client{BaseURL: ts.URL, APIKey: "metrics-tenant"}
	ctx := context.Background()
	reads := fastaWorkload(t, 40, 800, 40)
	for i := 0; i < 2; i++ {
		st, err := c.Submit(ctx, SubmitRequest{Engine: "software", Reads: reads})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Wait(ctx, st.ID, 0); err != nil {
			t.Fatal(err)
		}
	}
	samples, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics do not parse: %v", err)
	}
	if got := samples["pim_jobs_done_total"]; got != 2 {
		t.Errorf("pim_jobs_done_total = %v, want 2", got)
	}
	if got := samples["pim_service_submitted_total"]; got != 2 {
		t.Errorf("pim_service_submitted_total = %v, want 2", got)
	}
	if _, ok := samples["pim_service_pending"]; !ok {
		t.Error("pim_service_pending gauge missing")
	}
	if _, ok := samples[`pim_service_tenant_pending{tenant="metrics-tenant"}`]; !ok {
		t.Error("per-tenant pending gauge missing")
	}
	if _, ok := samples["pim_latency_run_seconds_count"]; !ok {
		t.Error("latency summary missing")
	}
	if hw := samples["pim_service_pending_high_water"]; hw > samples["pim_service_max_pending"] {
		t.Errorf("high water %v exceeds budget %v", hw, samples["pim_service_max_pending"])
	}
	_ = srv
}

// TestBodyTooLarge pins that an over-limit payload is a 413 naming the
// limit, not an opaque 400 decode error.
func TestBodyTooLarge(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1, MaxBodyBytes: 1024})
	body := `{"engine":"software","reads":"` + strings.Repeat("A", 2048) + `"}`
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	var doc errorDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil || !strings.Contains(doc.Error, "1024") {
		t.Fatalf("error should name the limit, got %q (err=%v)", doc.Error, err)
	}
}

// TestMetricsHostileTenantKey pins that an API key full of characters the
// exposition format cannot carry (quotes, backslashes, tabs, non-ASCII)
// still yields a /metrics document the strict parser accepts, with the key
// sanitized into the label value.
func TestMetricsHostileTenantKey(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1})
	hostile := "bad\"key\\\twith\x80stuff"
	c := &Client{BaseURL: ts.URL, APIKey: hostile}
	ctx := context.Background()
	st, err := c.Submit(ctx, SubmitRequest{Engine: "software", Reads: fastaWorkload(t, 60, 600, 20)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, st.ID, 0); err != nil {
		t.Fatal(err)
	}
	samples, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("hostile tenant key broke /metrics: %v", err)
	}
	want := `pim_service_tenant_pending{tenant="` + promLabelValue(hostile) + `"}`
	if _, ok := samples[want]; !ok {
		t.Fatalf("sanitized tenant gauge %s missing", want)
	}
	if strings.ContainsAny(promLabelValue(hostile), `"\`+"\t\n") {
		t.Fatalf("sanitized label %q still carries unsafe characters", promLabelValue(hostile))
	}
}

// TestTenantLabelCardinality pins the /metrics cardinality cap: more
// tenants than MaxTenantLabels collapse into at most that many labels plus
// an aggregated "other" row, and the document still parses.
func TestTenantLabelCardinality(t *testing.T) {
	block, release := blockingEngine("block")
	defer release()
	srv, ts := startServer(t, Config{
		Registry:            testRegistry(t, block),
		Workers:             1,
		MaxPending:          2 * MaxTenantLabels,
		MaxPendingPerTenant: 1,
	})
	ctx := context.Background()
	for i := 0; i < MaxTenantLabels+4; i++ {
		c := &Client{BaseURL: ts.URL, APIKey: fmt.Sprintf("tenant-%02d", i)}
		if _, err := c.Submit(ctx, SubmitRequest{Engine: "block", Reads: ">r\nACGTACGT\n"}); err != nil {
			t.Fatal(err)
		}
	}
	samples, err := (&Client{BaseURL: ts.URL}).Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	labels, total := 0, 0.0
	for k, v := range samples {
		if strings.HasPrefix(k, "pim_service_tenant_pending{") {
			labels++
			total += v
		}
	}
	if labels > MaxTenantLabels {
		t.Fatalf("tenant label cardinality %d exceeds cap %d", labels, MaxTenantLabels)
	}
	if _, ok := samples[`pim_service_tenant_pending{tenant="other"}`]; !ok {
		t.Fatal(`aggregated tenant="other" row missing`)
	}
	if int(total) != MaxTenantLabels+4 {
		t.Fatalf("aggregated pending %v, want %d", total, MaxTenantLabels+4)
	}
	release()
	waitFor(t, 10*time.Second, func() bool { return srv.Pending() == 0 })
}

// TestResultRetention pins the memory bound on terminal records: the
// per-tenant cap evicts the oldest result immediately and the TTL sweeper
// evicts the rest, after which the IDs answer 404 and the tenant record
// itself is gone.
func TestResultRetention(t *testing.T) {
	srv, ts := startServer(t, Config{
		Workers:              1,
		ResultTTL:            200 * time.Millisecond,
		MaxRetainedPerTenant: 1,
	})
	c := &Client{BaseURL: ts.URL, APIKey: "hoarder"}
	ctx := context.Background()
	reads := fastaWorkload(t, 70, 600, 20)

	first, err := c.Submit(ctx, SubmitRequest{Engine: "software", Reads: reads})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, first.ID, 0); err != nil {
		t.Fatal(err)
	}
	second, err := c.Submit(ctx, SubmitRequest{Engine: "software", Reads: reads})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, second.ID, 0); err != nil {
		t.Fatal(err)
	}

	// Cap eviction: retaining the second result pushed out the first.
	if _, err := c.Status(ctx, first.ID); !isStatus(err, http.StatusNotFound) {
		t.Fatalf("capped-out job still pollable: err=%v", err)
	}
	// TTL eviction: the sweeper ages out the second within a few periods.
	waitFor(t, 10*time.Second, func() bool {
		_, err := c.Status(ctx, second.ID)
		return isStatus(err, http.StatusNotFound)
	})
	srv.mu.Lock()
	_, alive := srv.tenants["hoarder"]
	jobs := len(srv.jobs)
	srv.mu.Unlock()
	if alive {
		t.Fatal("idle tenant record not dropped after eviction")
	}
	if jobs != 0 {
		t.Fatalf("%d job records linger after eviction", jobs)
	}
}

// TestDrainStatsSurviveEviction pins that Drain's tally counts every job
// ever admitted even when retention already evicted the records.
func TestDrainStatsSurviveEviction(t *testing.T) {
	srv := New(Config{Workers: 1, MaxRetainedPerTenant: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := &Client{BaseURL: ts.URL}
	ctx := context.Background()
	reads := fastaWorkload(t, 80, 600, 20)
	for i := 0; i < 3; i++ {
		st, err := c.Submit(ctx, SubmitRequest{Engine: "software", Reads: reads})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Wait(ctx, st.ID, 0); err != nil {
			t.Fatal(err)
		}
	}
	dctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if stats := srv.Drain(dctx); stats.Done != 3 {
		t.Fatalf("drain stats %v, want 3 done despite eviction", stats)
	}
}

// TestConcurrentSubmitPollDrain drives concurrent submits, polls, metric
// scrapes, and a racing drain — the race-detector surface of the service.
func TestConcurrentSubmitPollDrain(t *testing.T) {
	srv := New(Config{Workers: 4, MaxPending: 32, MaxPendingPerTenant: 8})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	reads := fastaWorkload(t, 50, 600, 30)
	ctx := context.Background()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := &Client{BaseURL: ts.URL, APIKey: fmt.Sprintf("tenant-%d", g)}
			for i := 0; i < 5; i++ {
				st, err := c.Submit(ctx, SubmitRequest{Engine: "software", Reads: reads})
				if err != nil {
					// Quota and drain rejections are legitimate outcomes here.
					if apiErr, ok := err.(*APIError); ok && apiErr.Overloaded() {
						time.Sleep(5 * time.Millisecond)
						continue
					}
					t.Errorf("tenant %d: %v", g, err)
					return
				}
				if _, err := c.Wait(ctx, st.ID, time.Millisecond); err != nil {
					t.Errorf("tenant %d wait: %v", g, err)
					return
				}
				if _, err := c.Metrics(ctx); err != nil {
					t.Errorf("tenant %d metrics: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	dctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	srv.Drain(dctx)
	if srv.Pending() != 0 {
		t.Fatalf("pending after drain = %d", srv.Pending())
	}
}
