package mapping

import (
	"testing"
	"testing/quick"

	"pimassembler/internal/dram"
	"pimassembler/internal/kmer"
	"pimassembler/internal/stats"
)

func TestDefaultLayoutFitsGeometry(t *testing.T) {
	g := dram.Default()
	l := DefaultLayout(g)
	if err := l.Validate(g); err != nil {
		t.Fatal(err)
	}
	// Paper budget: 32 value rows, 8 temp rows; all 1016 data rows used.
	if l.ValueRows != 32 || l.TempRows != 8 {
		t.Fatalf("value/temp rows %d/%d, paper uses 32/8", l.ValueRows, l.TempRows)
	}
	if total := l.KmerRows + l.ValueRows + l.TempRows + l.ReservedRows; total != g.DataRows() {
		t.Fatalf("layout covers %d rows, want %d", total, g.DataRows())
	}
	if l.BasesPerRow() != 128 {
		t.Fatalf("bases per row %d, paper stores up to 128 bp", l.BasesPerRow())
	}
}

func TestLayoutCounterCoverage(t *testing.T) {
	l := DefaultLayout(dram.Default())
	if l.CounterCapacity() < l.KmerRows {
		t.Fatalf("%d counters cannot cover %d k-mer slots", l.CounterCapacity(), l.KmerRows)
	}
	if l.CounterGroups() != 4 {
		t.Fatalf("counter groups %d, want 32/8 = 4", l.CounterGroups())
	}
}

func TestLayoutRegionsDisjoint(t *testing.T) {
	l := DefaultLayout(dram.Default())
	if !(l.KmerRow(l.KmerRows-1) < l.ValueBase() &&
		l.ValueBase()+l.ValueRows <= l.TempBase() &&
		l.TempBase()+l.TempRows <= l.ReservedBase()) {
		t.Fatal("regions overlap")
	}
}

func TestCounterLocation(t *testing.T) {
	l := DefaultLayout(dram.Default())
	base0, lane0 := l.CounterLocation(0)
	if base0 != l.ValueBase() || lane0 != 0 {
		t.Fatalf("slot 0 at (%d,%d)", base0, lane0)
	}
	base, lane := l.CounterLocation(256)
	if base != l.ValueBase()+l.CounterBits || lane != 0 {
		t.Fatalf("slot 256 at (%d,%d), want next group lane 0", base, lane)
	}
	base, lane = l.CounterLocation(300)
	if base != l.ValueBase()+l.CounterBits || lane != 44 {
		t.Fatalf("slot 300 at (%d,%d)", base, lane)
	}
}

func TestCounterLocationPanics(t *testing.T) {
	l := DefaultLayout(dram.Default())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l.CounterLocation(l.KmerRows)
}

func TestHashPlacementInRange(t *testing.T) {
	l := DefaultLayout(dram.Default())
	p := NewHashPlacement(100, l)
	f := func(seed uint64) bool {
		sub, slot := p.Place(kmer.Kmer(seed))
		return sub >= 0 && sub < 100 && slot >= 0 && slot < l.KmerRows
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashPlacementSpreadsLoad(t *testing.T) {
	l := DefaultLayout(dram.Default())
	p := NewHashPlacement(16, l)
	rng := stats.NewRNG(4)
	counts := make([]int, 16)
	const n = 16000
	for i := 0; i < n; i++ {
		sub, _ := p.Place(kmer.Kmer(rng.Uint64()))
		counts[sub]++
	}
	for i, c := range counts {
		if c < n/16/2 || c > n/16*2 {
			t.Fatalf("sub-array %d got %d of %d placements; load imbalance", i, c, n)
		}
	}
}

func TestIntervalBlockPartition(t *testing.T) {
	p := NewIntervalBlockPartition(4)
	if p.Blocks() != 16 {
		t.Fatalf("blocks %d, want M²=16", p.Blocks())
	}
	f := func(a, b uint64) bool {
		s, d := p.Block(kmer.Kmer(a), kmer.Kmer(b))
		id := p.BlockID(s, d)
		return s >= 0 && s < 4 && d >= 0 && d < 4 && id >= 0 && id < 16
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBlockLoadBalance(t *testing.T) {
	p := NewIntervalBlockPartition(4)
	rng := stats.NewRNG(10)
	edges := make([][2]kmer.Kmer, 8000)
	for i := range edges {
		edges[i] = [2]kmer.Kmer{kmer.Kmer(rng.Uint64()), kmer.Kmer(rng.Uint64())}
	}
	load := p.BlockLoad(edges)
	mean := len(edges) / p.Blocks()
	for b, l := range load {
		if l < mean/2 || l > mean*2 {
			t.Fatalf("block %d holds %d edges (mean %d); hash division unbalanced", b, l, mean)
		}
	}
}

func TestSubarraysForVertices(t *testing.T) {
	// Ns = ceil(N/f), f = min(a,b).
	if got := SubarraysForVertices(1000, 1024, 256); got != 4 {
		t.Fatalf("Ns = %d, want 4", got)
	}
	if got := SubarraysForVertices(1, 1024, 256); got != 1 {
		t.Fatalf("Ns = %d, want 1", got)
	}
	if got := SubarraysForVertices(0, 1024, 256); got != 0 {
		t.Fatalf("Ns = %d, want 0", got)
	}
	if got := SubarraysForVertices(257, 1024, 256); got != 2 {
		t.Fatalf("Ns = %d, want 2", got)
	}
}

func TestReplicationMonotonicity(t *testing.T) {
	prevSpeed, prevPower := 0.0, 0.0
	for _, pd := range []int{1, 2, 4, 8} {
		r := DefaultReplication(pd)
		if r.Speedup() <= prevSpeed {
			t.Fatalf("speedup not increasing at Pd=%d", pd)
		}
		if r.PowerFactor() <= prevPower {
			t.Fatalf("power not increasing at Pd=%d", pd)
		}
		prevSpeed, prevPower = r.Speedup(), r.PowerFactor()
	}
	// Amdahl: speedup at Pd=8 must be well below 8.
	if s := DefaultReplication(8).Speedup(); s >= 6 {
		t.Fatalf("Pd=8 speedup %.2f lacks the serial-fraction penalty", s)
	}
	if DefaultReplication(1).Speedup() != 1 || DefaultReplication(1).PowerFactor() != 1 {
		t.Fatal("Pd=1 must be the identity")
	}
}

func TestPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHashPlacement(0, DefaultLayout(dram.Default())) },
		func() { NewIntervalBlockPartition(0) },
		func() { DefaultReplication(0) },
		func() { SubarraysForVertices(5, 0, 4) },
		func() { NewIntervalBlockPartition(2).BlockID(2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
