// Package mapping implements PIM-Assembler's data placement: the correlated
// partitioning of the k-mer hash table across sub-arrays (Fig. 6) and the
// interval-block partitioning of the de Bruijn graph across chips (Fig. 8),
// plus the parallelism-degree (Pd) replication model of the Fig. 10 study.
package mapping

import (
	"fmt"

	"pimassembler/internal/dram"
	"pimassembler/internal/kmer"
)

// Layout is the row-region plan of one hash-table sub-array, following
// Fig. 6: a k-mer region (one k-mer per 256-bit row, up to 128 bp), a value
// region holding the frequency counters bit-planar, a temp region receiving
// incoming queries, and a reserved region for carry/sum scratch.
//
// The paper draws 980 k-mer rows + 32 value rows + 8 temp rows + 4 reserved,
// which sums to 1024 — but 8 of a sub-array's 1024 rows are the compute rows
// x1..x8 on the modified decoder, leaving 1016 data rows. This layout keeps
// the paper's value/temp budget, grows reserved to 8 (the increment scratch
// needs three rows and Fig. 8's Resv region benefits from headroom), and
// gives the k-mer region the remaining 968 rows. DESIGN.md records the
// discrepancy.
type Layout struct {
	KmerRows     int // k-mer entries, one per row
	ValueRows    int // frequency counters, bit-planar
	TempRows     int // incoming query staging
	ReservedRows int // carry/sum scratch ("Resv." in Fig. 8)
	CounterBits  int // width of one frequency counter
	Cols         int // bit-lines per row
}

// DefaultLayout returns the layout for the paper's 1024×256 sub-array.
func DefaultLayout(g dram.Geometry) Layout {
	l := Layout{
		ValueRows:    32,
		TempRows:     8,
		ReservedRows: 8,
		CounterBits:  8,
		Cols:         g.ColsPerSubarray,
	}
	l.KmerRows = g.DataRows() - l.ValueRows - l.TempRows - l.ReservedRows
	return l
}

// Validate checks the layout against a geometry.
func (l Layout) Validate(g dram.Geometry) error {
	total := l.KmerRows + l.ValueRows + l.TempRows + l.ReservedRows
	if total > g.DataRows() {
		return fmt.Errorf("mapping: layout needs %d rows, sub-array has %d data rows", total, g.DataRows())
	}
	if l.KmerRows <= 0 || l.ValueRows <= 0 || l.TempRows <= 0 || l.ReservedRows <= 0 {
		return fmt.Errorf("mapping: all regions must be non-empty: %+v", l)
	}
	if l.CounterBits <= 0 || l.ValueRows%l.CounterBits != 0 {
		return fmt.Errorf("mapping: value rows %d not divisible by counter width %d", l.ValueRows, l.CounterBits)
	}
	if l.CounterCapacity() < l.KmerRows {
		return fmt.Errorf("mapping: %d counters cannot cover %d k-mer rows", l.CounterCapacity(), l.KmerRows)
	}
	return nil
}

// CounterGroups returns how many independent counter groups the value region
// holds (each group is CounterBits bit-plane rows over Cols lanes).
func (l Layout) CounterGroups() int { return l.ValueRows / l.CounterBits }

// CounterCapacity returns the total number of frequency counters.
func (l Layout) CounterCapacity() int { return l.CounterGroups() * l.Cols }

// Region base rows within the data-row space (k-mer region first, then
// value, temp, reserved).

// KmerRow returns the absolute data row of k-mer slot i.
func (l Layout) KmerRow(i int) int {
	l.checkSlot(i)
	return i
}

// ValueBase returns the first row of the value region.
func (l Layout) ValueBase() int { return l.KmerRows }

// TempBase returns the first row of the temp region.
func (l Layout) TempBase() int { return l.KmerRows + l.ValueRows }

// ReservedBase returns the first row of the reserved region.
func (l Layout) ReservedBase() int { return l.KmerRows + l.ValueRows + l.TempRows }

// CounterLocation returns the counter group's bit-plane base row and the
// lane (column) assigned to k-mer slot i: group = i / Cols, lane = i % Cols.
func (l Layout) CounterLocation(i int) (baseRow, lane int) {
	l.checkSlot(i)
	group := i / l.Cols
	return l.ValueBase() + group*l.CounterBits, i % l.Cols
}

func (l Layout) checkSlot(i int) {
	if i < 0 || i >= l.KmerRows {
		panic(fmt.Sprintf("mapping: k-mer slot %d outside [0,%d)", i, l.KmerRows))
	}
}

// BasesPerRow returns how many 2-bit bases one row stores (128 for the
// paper's 256-column sub-array).
func (l Layout) BasesPerRow() int { return l.Cols / 2 }

// HashPlacement assigns k-mers to (sub-array, home slot) pairs: the
// correlated partitioning that keeps a k-mer's entry, counter, and probes
// local to one sub-array.
type HashPlacement struct {
	Subarrays int
	Layout    Layout
}

// NewHashPlacement builds a placement over n sub-arrays.
func NewHashPlacement(n int, l Layout) HashPlacement {
	if n <= 0 {
		panic(fmt.Sprintf("mapping: non-positive sub-array count %d", n))
	}
	return HashPlacement{Subarrays: n, Layout: l}
}

// Place returns the sub-array index and home slot of a k-mer. The hash's
// low bits select the sub-array (spreading load) and the high bits the home
// row inside the k-mer region (linear probing resolves collisions).
func (p HashPlacement) Place(km kmer.Kmer) (subarray, slot int) {
	h := km.Hash()
	subarray = int(h % uint64(p.Subarrays))
	slot = int((h >> 32) % uint64(p.Layout.KmerRows))
	return subarray, slot
}
