package mapping

import (
	"fmt"
	"math"

	"pimassembler/internal/kmer"
)

// IntervalBlockPartition implements Fig. 8's graph placement: vertices are
// hashed into M intervals, edges into M² blocks (source interval ×
// destination interval), and each block is allocated to a chip and mapped to
// its sub-arrays as adjacency-matrix rows.
type IntervalBlockPartition struct {
	M int // number of intervals (= chips along one block axis)
}

// NewIntervalBlockPartition creates a partition over M intervals.
func NewIntervalBlockPartition(m int) IntervalBlockPartition {
	if m <= 0 {
		panic(fmt.Sprintf("mapping: non-positive interval count %d", m))
	}
	return IntervalBlockPartition{M: m}
}

// Interval returns the interval of a vertex ((k-1)-mer node), using the
// hash-based division of [21], [22].
func (p IntervalBlockPartition) Interval(node kmer.Kmer) int {
	return int(node.Hash() % uint64(p.M))
}

// Block returns the (source, destination) block coordinates of an edge.
func (p IntervalBlockPartition) Block(from, to kmer.Kmer) (src, dst int) {
	return p.Interval(from), p.Interval(to)
}

// BlockID flattens block coordinates to a chip assignment in [0, M²).
func (p IntervalBlockPartition) BlockID(src, dst int) int {
	if src < 0 || src >= p.M || dst < 0 || dst >= p.M {
		panic(fmt.Sprintf("mapping: block (%d,%d) outside %dx%d", src, dst, p.M, p.M))
	}
	return src*p.M + dst
}

// Blocks returns M², the number of edge blocks (= chips used).
func (p IntervalBlockPartition) Blocks() int { return p.M * p.M }

// SubarraysForVertices returns Ns = ⌈N/f⌉, the number of sub-arrays needed
// to process an N-vertex sub-graph where each a×b sub-array handles up to
// f = min(a, b) vertices (the allocation stage of Fig. 8).
func SubarraysForVertices(n, a, b int) int {
	if n < 0 || a <= 0 || b <= 0 {
		panic(fmt.Sprintf("mapping: invalid allocation n=%d a=%d b=%d", n, a, b))
	}
	f := a
	if b < a {
		f = b
	}
	return (n + f - 1) / f
}

// BlockLoad tallies how many edges of an edge list land in each block —
// the balance check motivating hash-based interval division.
func (p IntervalBlockPartition) BlockLoad(edges [][2]kmer.Kmer) []int {
	load := make([]int, p.Blocks())
	for _, e := range edges {
		s, d := p.Block(e[0], e[1])
		load[p.BlockID(s, d)]++
	}
	return load
}

// Replication models the parallelism-degree knob of the Fig. 10 trade-off
// study: Pd replicated sub-array groups process independent work slices.
type Replication struct {
	Pd int
	// SerialFraction is the fraction of stage work that does not scale with
	// Pd (controller dispatch, result merging) — the Amdahl term that makes
	// Pd ≈ 2 the paper's optimum once the power cost is charged.
	SerialFraction float64
	// PowerExponent shapes the replication's dynamic-power growth:
	// Pdyn(Pd) = Pdyn(1) · Pd^PowerExponent. Slightly below 1.0 because the
	// replicas share the controller, command distribution, and background
	// refresh.
	PowerExponent float64
}

// DefaultReplication returns the calibrated Fig. 10 model.
func DefaultReplication(pd int) Replication {
	if pd <= 0 {
		panic(fmt.Sprintf("mapping: non-positive parallelism degree %d", pd))
	}
	return Replication{Pd: pd, SerialFraction: 0.08, PowerExponent: 0.9}
}

// Speedup returns the delay reduction factor at this Pd:
// Pd / (1 + SerialFraction·(Pd-1)).
func (r Replication) Speedup() float64 {
	return float64(r.Pd) / (1 + r.SerialFraction*float64(r.Pd-1))
}

// PowerFactor returns the power multiplier at this Pd:
// Pd^PowerExponent.
func (r Replication) PowerFactor() float64 {
	return math.Pow(float64(r.Pd), r.PowerExponent)
}
