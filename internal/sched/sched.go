// Package sched is the controller's command scheduler model: it maps a
// stream of per-sub-array DRAM commands onto the shared command bus and the
// banks' concurrency limits, computing the parallel makespan that the
// simple serial Meter total over-states. This is the timing glue between
// the functional simulator and the analytical models (which assume a level
// of parallelism): the scheduler derives that parallelism from first
// principles — issue bandwidth, per-sub-array occupancy, and the per-bank
// activation budget. Its input is the recorded command stream of
// internal/exec (ScheduleStream), so the functional run's real sub-array
// attribution — not a synthetic spread of aggregate counts — determines the
// overlap.
package sched

import (
	"container/heap"
	"fmt"
	"sort"

	"pimassembler/internal/dram"
	"pimassembler/internal/exec"
)

// Command is one scheduled unit: a DRAM command bound for a sub-array.
type Command struct {
	Subarray int
	Kind     dram.CommandKind
}

// Config bounds the schedule.
type Config struct {
	// Timing supplies per-command durations.
	Timing dram.Timing
	// IssueIntervalNS is the minimum spacing between command issues on the
	// shared bus (command/address bandwidth).
	IssueIntervalNS float64
	// SubarraysPerBank maps sub-array IDs to banks (ID / SubarraysPerBank).
	SubarraysPerBank int
	// MaxActivePerBank caps concurrently executing commands per bank — the
	// charge-pump/power-delivery budget that keeps whole-bank concurrent
	// activation from browning out the array.
	MaxActivePerBank int
}

// DefaultConfig returns the PIM-Assembler controller's parameters for a
// geometry: one command per bus clock, banks sized per the geometry, and a
// per-bank activation budget of a quarter of its sub-arrays.
func DefaultConfig(g dram.Geometry, t dram.Timing) Config {
	return Config{
		Timing:           t,
		IssueIntervalNS:  t.TCK,
		SubarraysPerBank: g.SubarraysPerBank(),
		MaxActivePerBank: max(1, g.SubarraysPerBank()/4),
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Timing.Validate(); err != nil {
		return err
	}
	if c.IssueIntervalNS <= 0 {
		return fmt.Errorf("sched: non-positive issue interval %v", c.IssueIntervalNS)
	}
	if c.SubarraysPerBank <= 0 || c.MaxActivePerBank <= 0 {
		return fmt.Errorf("sched: non-positive bank parameters %+v", c)
	}
	return nil
}

// duration returns a command's occupancy of its sub-array — the same
// per-kind pricing the serial Meter accrues with (dram.Duration), so
// SerialNS reproduces the Meter's latency total for the same stream.
func (c Config) duration(kind dram.CommandKind) float64 {
	return dram.Duration(kind, c.Timing)
}

// Result summarises one schedule.
type Result struct {
	MakespanNS   float64
	SerialNS     float64 // sum of command durations (the Meter view)
	Commands     int
	Speedup      float64 // SerialNS / MakespanNS
	BusBoundPct  float64 // fraction of makespan the bus was issuing
	PeakParallel int     // maximum concurrently executing commands
}

// String implements fmt.Stringer.
func (r Result) String() string {
	return fmt.Sprintf("sched.Result{%d cmds, makespan %.1f µs, speedup %.1fx, bus %.0f%%, peak %d}",
		r.Commands, r.MakespanNS/1e3, r.Speedup, r.BusBoundPct, r.PeakParallel)
}

// endHeap is a min-heap of completion times.
type endHeap []float64

func (h endHeap) Len() int            { return len(h) }
func (h endHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h endHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *endHeap) Push(x interface{}) { *h = append(*h, x.(float64)) }
func (h *endHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Schedule runs the greedy in-order scheduler: commands issue in stream
// order, each at the earliest time satisfying (1) the command-bus spacing,
// (2) its sub-array being free, and (3) its bank having an activation slot.
// Commands to distinct sub-arrays overlap freely within those constraints,
// which is exactly the intra-sub-array parallelism the paper exploits.
func Schedule(cmds []Command, cfg Config) Result {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	var res Result
	res.Commands = len(cmds)
	if len(cmds) == 0 {
		return res
	}

	subFree := make(map[int]float64)
	bankActive := make(map[int]*endHeap)
	var nextIssue float64
	var makespan float64

	// Global active-interval tracking for peak parallelism.
	type edge struct {
		t     float64
		delta int
	}
	var edges []edge

	for _, cmd := range cmds {
		if cmd.Subarray < 0 {
			panic(fmt.Sprintf("sched: negative sub-array id %d", cmd.Subarray))
		}
		dur := cfg.duration(cmd.Kind)
		res.SerialNS += dur
		bank := cmd.Subarray / cfg.SubarraysPerBank

		start := nextIssue
		if f := subFree[cmd.Subarray]; f > start {
			start = f
		}
		h := bankActive[bank]
		if h == nil {
			h = &endHeap{}
			bankActive[bank] = h
		}
		// Drop completed intervals, then wait for a slot if saturated.
		for h.Len() > 0 && (*h)[0] <= start {
			heap.Pop(h)
		}
		if h.Len() >= cfg.MaxActivePerBank {
			earliest := (*h)[0]
			if earliest > start {
				start = earliest
			}
			for h.Len() > 0 && (*h)[0] <= start {
				heap.Pop(h)
			}
		}

		end := start + dur
		subFree[cmd.Subarray] = end
		heap.Push(h, end)
		nextIssue = start + cfg.IssueIntervalNS
		if end > makespan {
			makespan = end
		}
		edges = append(edges, edge{start, 1}, edge{end, -1})
	}

	res.MakespanNS = makespan
	if makespan > 0 {
		res.Speedup = res.SerialNS / makespan
		res.BusBoundPct = 100 * float64(len(cmds)) * cfg.IssueIntervalNS / makespan
		if res.BusBoundPct > 100 {
			res.BusBoundPct = 100
		}
	}

	// Peak parallelism via sweep (ends sort before starts at equal times).
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].t != edges[j].t {
			return edges[i].t < edges[j].t
		}
		return edges[i].delta < edges[j].delta
	})
	cur, peak := 0, 0
	for _, e := range edges {
		cur += e.delta
		if cur > peak {
			peak = cur
		}
	}
	res.PeakParallel = peak
	return res
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ScheduleStream schedules a recorded command stream directly: each typed
// record keeps the sub-array the functional simulator actually executed it
// in, so the computed overlap reflects the run's real data placement. This
// replaces the old aggregate-count round-robin estimate — the stream is the
// single source of truth shared with the Meter and the energy attribution.
func ScheduleStream(cmds []exec.Command, cfg Config) Result {
	sc := make([]Command, len(cmds))
	for i, c := range cmds {
		sc[i] = Command{Subarray: c.Subarray, Kind: c.Kind}
	}
	return Schedule(sc, cfg)
}

// ScheduleStages schedules each pipeline stage's subsequence independently,
// returning one Result per stage present in the stream. Stages execute
// back-to-back in the pipeline, so the whole-run makespan is bounded below
// by the sum of the per-stage makespans.
func ScheduleStages(cmds []exec.Command, cfg Config) map[exec.Stage]Result {
	byStage := make(map[exec.Stage][]Command)
	for _, c := range cmds {
		byStage[c.Stage] = append(byStage[c.Stage], Command{Subarray: c.Subarray, Kind: c.Kind})
	}
	out := make(map[exec.Stage]Result, len(byStage))
	for st, sc := range byStage {
		out[st] = Schedule(sc, cfg)
	}
	return out
}
