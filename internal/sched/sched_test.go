package sched

import (
	"testing"
	"testing/quick"

	"pimassembler/internal/dram"
	"pimassembler/internal/exec"
	"pimassembler/internal/stats"
)

func cfg() Config {
	return DefaultConfig(dram.Default(), dram.DefaultTiming())
}

func TestEmptySchedule(t *testing.T) {
	r := Schedule(nil, cfg())
	if r.MakespanNS != 0 || r.Commands != 0 {
		t.Fatalf("empty schedule %+v", r)
	}
}

func TestSingleCommand(t *testing.T) {
	r := Schedule([]Command{{Subarray: 0, Kind: dram.CmdAAP2}}, cfg())
	want := dram.DefaultTiming().AAP()
	if r.MakespanNS != want {
		t.Fatalf("makespan %v, want one AAP %v", r.MakespanNS, want)
	}
	if r.Speedup != 1 {
		t.Fatalf("speedup %v, want 1", r.Speedup)
	}
	if r.PeakParallel != 1 {
		t.Fatalf("peak %d, want 1", r.PeakParallel)
	}
}

func TestSameSubarraySerializes(t *testing.T) {
	cmds := make([]Command, 10)
	for i := range cmds {
		cmds[i] = Command{Subarray: 0, Kind: dram.CmdAAPCopy}
	}
	r := Schedule(cmds, cfg())
	want := 10 * dram.DefaultTiming().AAP()
	if r.MakespanNS < want {
		t.Fatalf("makespan %v below serial bound %v for one sub-array", r.MakespanNS, want)
	}
	if r.PeakParallel != 1 {
		t.Fatalf("peak parallel %d on a single sub-array", r.PeakParallel)
	}
}

func TestDistinctSubarraysOverlap(t *testing.T) {
	cmds := make([]Command, 10)
	for i := range cmds {
		cmds[i] = Command{Subarray: i * cfg().SubarraysPerBank, Kind: dram.CmdAAPCopy} // distinct banks
	}
	r := Schedule(cmds, cfg())
	serial := 10 * dram.DefaultTiming().AAP()
	if r.MakespanNS >= serial/2 {
		t.Fatalf("makespan %v shows no overlap (serial %v)", r.MakespanNS, serial)
	}
	if r.Speedup < 5 {
		t.Fatalf("speedup %v too low for 10 independent banks", r.Speedup)
	}
	if r.PeakParallel < 5 {
		t.Fatalf("peak %d too low", r.PeakParallel)
	}
}

func TestBankConcurrencyCap(t *testing.T) {
	c := cfg()
	c.MaxActivePerBank = 2
	// 8 commands to 8 distinct sub-arrays of the SAME bank.
	cmds := make([]Command, 8)
	for i := range cmds {
		cmds[i] = Command{Subarray: i, Kind: dram.CmdAAP2}
	}
	r := Schedule(cmds, c)
	aap := dram.DefaultTiming().AAP()
	// With 2 slots, 8 commands need at least 4 rounds.
	if r.MakespanNS < 4*aap {
		t.Fatalf("makespan %v violates the bank cap (want >= %v)", r.MakespanNS, 4*aap)
	}
	if r.PeakParallel > 2 {
		t.Fatalf("peak %d exceeds the per-bank cap 2", r.PeakParallel)
	}
}

func TestBusIssueBound(t *testing.T) {
	c := cfg()
	c.IssueIntervalNS = 50 // artificially slow bus
	cmds := make([]Command, 100)
	for i := range cmds {
		cmds[i] = Command{Subarray: i, Kind: dram.CmdDPU}
	}
	r := Schedule(cmds, c)
	if r.MakespanNS < 99*50 {
		t.Fatalf("makespan %v below the bus bound %v", r.MakespanNS, 99*50.0)
	}
	if r.BusBoundPct < 90 {
		t.Fatalf("bus-bound fraction %.1f%% should dominate", r.BusBoundPct)
	}
}

func TestMakespanBounds(t *testing.T) {
	// Property: serial/NS >= makespan >= serial/N for any trace.
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 1 + rng.Intn(200)
		kinds := []dram.CommandKind{
			dram.CmdAAPCopy, dram.CmdAAP2, dram.CmdAAP3, dram.CmdRead,
			dram.CmdWrite, dram.CmdDPU, dram.CmdActivate, dram.CmdPrecharge,
		}
		cmds := make([]Command, n)
		for i := range cmds {
			cmds[i] = Command{
				Subarray: rng.Intn(64),
				Kind:     kinds[rng.Intn(len(kinds))],
			}
		}
		r := Schedule(cmds, cfg())
		if r.MakespanNS > r.SerialNS+1e-6 {
			return false // never slower than fully serial
		}
		return r.MakespanNS > 0 && r.Speedup >= 1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// stream builds a recorded command stream of n commands of one kind spread
// round-robin over the given sub-arrays.
func stream(n int, kind dram.CommandKind, spread int, stage exec.Stage) []exec.Command {
	out := make([]exec.Command, n)
	for i := range out {
		out[i] = exec.Command{Subarray: i % spread, Kind: kind, Stage: stage}
	}
	return out
}

func TestScheduleStreamMatchesSchedule(t *testing.T) {
	cmds := stream(64, dram.CmdAAP2, 8, exec.StageHashmap)
	viaStream := ScheduleStream(cmds, cfg())
	plain := make([]Command, len(cmds))
	for i, c := range cmds {
		plain[i] = Command{Subarray: c.Subarray, Kind: c.Kind}
	}
	if got, want := viaStream, Schedule(plain, cfg()); got != want {
		t.Fatalf("ScheduleStream %+v differs from Schedule %+v", got, want)
	}
}

func TestScheduleStreamSpreadSpeedsUp(t *testing.T) {
	g := dram.Default()
	tm := dram.DefaultTiming()
	one := ScheduleStream(stream(1024, dram.CmdAAP2, 1, exec.StageNone), DefaultConfig(g, tm))
	many := ScheduleStream(stream(1024, dram.CmdAAP2, 256, exec.StageNone), DefaultConfig(g, tm))
	if many.MakespanNS >= one.MakespanNS {
		t.Fatalf("parallel spread no faster: %v vs %v", many.MakespanNS, one.MakespanNS)
	}
	if many.Speedup < 8 {
		t.Fatalf("speedup %v too low over 256 sub-arrays", many.Speedup)
	}
	if one.SerialNS != many.SerialNS {
		t.Fatalf("serial totals differ with spread: %v vs %v", one.SerialNS, many.SerialNS)
	}
}

func TestScheduleStages(t *testing.T) {
	cmds := append(stream(100, dram.CmdAAP2, 4, exec.StageHashmap),
		stream(50, dram.CmdAAPCopy, 4, exec.StageDeBruijn)...)
	byStage := ScheduleStages(cmds, cfg())
	if len(byStage) != 2 {
		t.Fatalf("got %d stages, want 2", len(byStage))
	}
	if byStage[exec.StageHashmap].Commands != 100 || byStage[exec.StageDeBruijn].Commands != 50 {
		t.Fatalf("per-stage command counts wrong: %+v", byStage)
	}
	whole := ScheduleStream(cmds, cfg())
	sum := byStage[exec.StageHashmap].SerialNS + byStage[exec.StageDeBruijn].SerialNS
	if diff := whole.SerialNS - sum; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("stage serial totals %v don't add up to %v", sum, whole.SerialNS)
	}
}

func TestConfigValidation(t *testing.T) {
	for _, mutate := range []func(*Config){
		func(c *Config) { c.IssueIntervalNS = 0 },
		func(c *Config) { c.SubarraysPerBank = 0 },
		func(c *Config) { c.MaxActivePerBank = 0 },
	} {
		c := cfg()
		mutate(&c)
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid config accepted")
				}
			}()
			Schedule([]Command{{0, dram.CmdDPU}}, c)
		}()
	}
}
