package jobqueue_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"pimassembler/internal/assembly"
	"pimassembler/internal/engine"
	"pimassembler/internal/genome"
	"pimassembler/internal/jobqueue"
	"pimassembler/internal/metrics"
	"pimassembler/internal/stats"
)

// workload builds the deterministic read set the queue tests dispatch.
func workload(seed uint64, n int) []*genome.Sequence {
	rng := stats.NewRNG(seed)
	ref := genome.GenerateGenome(2_000, rng)
	return genome.NewReadSampler(ref, 101, 0, rng).Sample(n)
}

// manifest is the fixed job mix of the determinism test: every engine
// family, two distinct workloads.
func manifest() []jobqueue.Spec {
	a, b := workload(11, 150), workload(12, 120)
	opts := engine.Options{Options: assembly.Options{K: 16}, Subarrays: 16}
	counts := assembly.PaperOpCounts(genome.PaperChr14(), 16)
	return []jobqueue.Spec{
		{Engine: "software", Source: genome.NewSliceSource(a), Opts: opts},
		{Engine: "pim", Source: genome.NewSliceSource(a), Opts: opts},
		{Engine: "pim-assembler", Source: genome.NewSliceSource(b), Opts: opts},
		{Engine: "drisa-3t1c", Opts: engine.Options{Counts: &counts}},
		{Engine: "software", Source: genome.NewSliceSource(b), Opts: opts},
		{Engine: "gpu", Source: genome.NewSliceSource(b), Opts: opts},
	}
}

// canonical strips the one wall-clock block (the software family's stage
// timings) so Reports compare bit-identically across worker counts.
func canonical(rep *engine.Report) *engine.Report {
	if rep == nil {
		return nil
	}
	c := *rep
	c.Timings = nil
	return &c
}

// TestRunDeterministic pins the queue's determinism rule: a fixed manifest
// yields identical per-job Reports in slot order for any worker count.
func TestRunDeterministic(t *testing.T) {
	var baseline []jobqueue.Result
	for _, workers := range []int{1, 4, runtime.NumCPU()} {
		// Sources carry a cursor, so every run gets a fresh manifest.
		specs := manifest()
		q := jobqueue.New(nil, jobqueue.WithWorkers(workers))
		results := q.Run(context.Background(), specs)
		if len(results) != len(specs) {
			t.Fatalf("workers=%d: %d results for %d specs", workers, len(results), len(specs))
		}
		for i, r := range results {
			if r.Slot != i {
				t.Fatalf("workers=%d: result %d carries slot %d", workers, i, r.Slot)
			}
			if r.State != jobqueue.StateDone || r.Err != nil {
				t.Fatalf("workers=%d slot=%d: state=%v err=%v", workers, i, r.State, r.Err)
			}
			if r.Attempts != 1 {
				t.Fatalf("workers=%d slot=%d: %d attempts", workers, i, r.Attempts)
			}
		}
		if results[0].Report.Timings == nil {
			t.Fatal("software job lost its wall-clock timings")
		}
		if baseline == nil {
			baseline = results
			continue
		}
		for i := range results {
			got, want := canonical(results[i].Report), canonical(baseline[i].Report)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("workers=%d slot=%d: Report differs from workers=1 run", workers, i)
			}
		}
	}
}

// fakeEngine is a scriptable registry entry for lifecycle tests.
type fakeEngine struct {
	name string
	fn   func(ctx context.Context) (*engine.Report, error)
}

func (e fakeEngine) Name() string     { return e.name }
func (e fakeEngine) Describe() string { return "test stub" }
func (e fakeEngine) Assemble(ctx context.Context, _ genome.ReadSource, _ engine.Options) (*engine.Report, error) {
	return e.fn(ctx)
}

func newTestRegistry(t *testing.T, engines ...engine.Engine) *engine.Registry {
	t.Helper()
	r := engine.NewRegistry()
	for _, e := range engines {
		if err := r.Register(e); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func okReport(name string) *engine.Report {
	return &engine.Report{Engine: name, Family: engine.FamilySoftware}
}

// TestRetryTransient pins retry-with-backoff: a job failing transiently
// succeeds within its attempt budget, and the retry counter records it.
func TestRetryTransient(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	flaky := fakeEngine{name: "flaky", fn: func(context.Context) (*engine.Report, error) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if calls < 3 {
			return nil, jobqueue.MarkTransient(fmt.Errorf("injected fault %d", calls))
		}
		return okReport("flaky"), nil
	}}
	c := metrics.NewCounters()
	q := jobqueue.New(newTestRegistry(t, flaky), jobqueue.WithWorkers(2), jobqueue.WithCounters(c))
	res := q.Run(context.Background(), []jobqueue.Spec{{
		Engine: "flaky",
		Retry:  jobqueue.RetryPolicy{MaxAttempts: 5, Backoff: time.Microsecond},
	}})[0]
	if res.State != jobqueue.StateDone || res.Err != nil {
		t.Fatalf("state=%v err=%v", res.State, res.Err)
	}
	if res.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", res.Attempts)
	}
	if got := c.Get("jobs.retries"); got != 2 {
		t.Fatalf("jobs.retries = %d, want 2", got)
	}
	if got := c.Get("jobs.done"); got != 1 {
		t.Fatalf("jobs.done = %d, want 1", got)
	}
}

// TestTerminalFailureNoRetry pins that a non-transient error consumes one
// attempt only.
func TestTerminalFailureNoRetry(t *testing.T) {
	terminal := errors.New("bad workload")
	broken := fakeEngine{name: "broken", fn: func(context.Context) (*engine.Report, error) {
		return nil, terminal
	}}
	q := jobqueue.New(newTestRegistry(t, broken), jobqueue.WithWorkers(1))
	res := q.Run(context.Background(), []jobqueue.Spec{{
		Engine: "broken",
		Retry:  jobqueue.RetryPolicy{MaxAttempts: 4, Backoff: time.Microsecond},
	}})[0]
	if res.State != jobqueue.StateFailed || !errors.Is(res.Err, terminal) {
		t.Fatalf("state=%v err=%v", res.State, res.Err)
	}
	if res.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1", res.Attempts)
	}
}

// TestRetryBudgetExhausted pins that a persistently transient job fails
// after exactly MaxAttempts attempts.
func TestRetryBudgetExhausted(t *testing.T) {
	always := fakeEngine{name: "always", fn: func(context.Context) (*engine.Report, error) {
		return nil, jobqueue.MarkTransient(errors.New("still flaky"))
	}}
	q := jobqueue.New(newTestRegistry(t, always), jobqueue.WithWorkers(1))
	res := q.Run(context.Background(), []jobqueue.Spec{{
		Engine: "always",
		Retry:  jobqueue.RetryPolicy{MaxAttempts: 3, Backoff: time.Microsecond},
	}})[0]
	if res.State != jobqueue.StateFailed || !jobqueue.Transient(res.Err) {
		t.Fatalf("state=%v err=%v", res.State, res.Err)
	}
	if res.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", res.Attempts)
	}
}

// TestPerJobTimeoutDoesNotPoison pins the isolation rule: an in-flight job
// that exceeds its per-attempt deadline returns ctx.Err() while every other
// job completes normally.
func TestPerJobTimeoutDoesNotPoison(t *testing.T) {
	hang := fakeEngine{name: "hang", fn: func(ctx context.Context) (*engine.Report, error) {
		<-ctx.Done() // a well-behaved engine returns ctx.Err() at the next stage boundary
		return nil, ctx.Err()
	}}
	fast := fakeEngine{name: "fast", fn: func(context.Context) (*engine.Report, error) {
		return okReport("fast"), nil
	}}
	c := metrics.NewCounters()
	q := jobqueue.New(newTestRegistry(t, hang, fast), jobqueue.WithWorkers(4), jobqueue.WithCounters(c))
	results := q.Run(context.Background(), []jobqueue.Spec{
		{Engine: "fast"},
		{Engine: "hang", Timeout: 10 * time.Millisecond, Retry: jobqueue.RetryPolicy{MaxAttempts: 2, Backoff: time.Microsecond}},
		{Engine: "fast"},
		{Engine: "fast"},
	})
	if got := results[1]; got.State != jobqueue.StateFailed || !errors.Is(got.Err, context.DeadlineExceeded) {
		t.Fatalf("hanging job: state=%v err=%v", got.State, got.Err)
	}
	if results[1].Attempts != 2 {
		t.Fatalf("deadline is transient: attempts = %d, want 2", results[1].Attempts)
	}
	for _, i := range []int{0, 2, 3} {
		if r := results[i]; r.State != jobqueue.StateDone || r.Err != nil || r.Report == nil {
			t.Fatalf("sibling job %d poisoned: state=%v err=%v", i, r.State, r.Err)
		}
	}
	if got := c.Get("jobs.done"); got != 3 {
		t.Fatalf("jobs.done = %d, want 3", got)
	}
	if got := c.Get("jobs.failed"); got != 1 {
		t.Fatalf("jobs.failed = %d, want 1", got)
	}
}

// TestCancellation pins run-level cancellation: an in-flight job returns
// ctx.Err(), jobs that already finished keep their Reports, and jobs still
// queued are cancelled without ever running.
func TestCancellation(t *testing.T) {
	started := make(chan struct{})
	hang := fakeEngine{name: "hang", fn: func(ctx context.Context) (*engine.Report, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}}
	fast := fakeEngine{name: "fast", fn: func(context.Context) (*engine.Report, error) {
		return okReport("fast"), nil
	}}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Worker width 1 forces strict slot order: fast(0) finishes, hang(1)
	// blocks, fast(2) never starts before the cancel.
	q := jobqueue.New(newTestRegistry(t, hang, fast), jobqueue.WithWorkers(1))
	done := make(chan []jobqueue.Result, 1)
	go func() { done <- q.Run(ctx, []jobqueue.Spec{{Engine: "fast"}, {Engine: "hang"}, {Engine: "fast"}}) }()
	<-started
	cancel()
	results := <-done

	if r := results[0]; r.State != jobqueue.StateDone || r.Report == nil {
		t.Fatalf("finished job lost its result: %+v", r)
	}
	if r := results[1]; r.State != jobqueue.StateCancelled || !errors.Is(r.Err, context.Canceled) {
		t.Fatalf("in-flight job: state=%v err=%v", r.State, r.Err)
	}
	if r := results[2]; r.State != jobqueue.StateCancelled || r.Attempts != 0 {
		t.Fatalf("queued job: state=%v attempts=%d err=%v", r.State, r.Attempts, r.Err)
	}
}

// TestUnknownEngineFails pins that an unresolvable engine name is a
// terminal submission error naming the valid engines.
func TestUnknownEngineFails(t *testing.T) {
	q := jobqueue.New(nil, jobqueue.WithWorkers(1))
	res := q.Run(context.Background(), []jobqueue.Spec{{Engine: "no-such-engine"}})[0]
	if res.State != jobqueue.StateFailed || res.Err == nil || res.Attempts != 0 {
		t.Fatalf("state=%v attempts=%d err=%v", res.State, res.Attempts, res.Err)
	}
}

// TestLifecycleObserver pins the queued → running → done transition order
// for every job.
func TestLifecycleObserver(t *testing.T) {
	fast := fakeEngine{name: "fast", fn: func(context.Context) (*engine.Report, error) {
		return okReport("fast"), nil
	}}
	var mu sync.Mutex
	seen := make(map[int][]jobqueue.State)
	q := jobqueue.New(newTestRegistry(t, fast),
		jobqueue.WithWorkers(3),
		jobqueue.WithObserver(func(slot int, s jobqueue.State) {
			mu.Lock()
			seen[slot] = append(seen[slot], s)
			mu.Unlock()
		}))
	specs := []jobqueue.Spec{{Engine: "fast"}, {Engine: "fast"}, {Engine: "fast"}}
	q.Run(context.Background(), specs)
	want := []jobqueue.State{jobqueue.StateQueued, jobqueue.StateRunning, jobqueue.StateDone}
	for slot := range specs {
		if !reflect.DeepEqual(seen[slot], want) {
			t.Fatalf("slot %d transitions = %v, want %v", slot, seen[slot], want)
		}
	}
}

// TestCounters pins the queue's instrumentation totals and that latency
// series are populated.
func TestCounters(t *testing.T) {
	fast := fakeEngine{name: "fast", fn: func(context.Context) (*engine.Report, error) {
		return okReport("fast"), nil
	}}
	c := metrics.NewCounters()
	q := jobqueue.New(newTestRegistry(t, fast), jobqueue.WithWorkers(2), jobqueue.WithCounters(c))
	q.Run(context.Background(), []jobqueue.Spec{{Engine: "fast"}, {Engine: "fast"}, {Engine: "fast"}})
	if got := c.Get("jobs.submitted"); got != 3 {
		t.Fatalf("jobs.submitted = %d, want 3", got)
	}
	if got := c.Get("jobs.done"); got != 3 {
		t.Fatalf("jobs.done = %d, want 3", got)
	}
	if got := c.Get("jobs.attempts"); got != 3 {
		t.Fatalf("jobs.attempts = %d, want 3", got)
	}
	if l := c.Latency("latency.run"); l.Count != 3 {
		t.Fatalf("latency.run count = %d, want 3", l.Count)
	}
}

// TestRetryPolicyDelay pins the deterministic exponential schedule.
func TestRetryPolicyDelay(t *testing.T) {
	p := jobqueue.RetryPolicy{MaxAttempts: 6, Backoff: 10 * time.Millisecond, MaxBackoff: 35 * time.Millisecond}
	want := map[int]time.Duration{
		2: 10 * time.Millisecond,
		3: 20 * time.Millisecond,
		4: 35 * time.Millisecond, // 40ms capped
		5: 35 * time.Millisecond,
	}
	for n, d := range want {
		if got := p.Delay(n); got != d {
			t.Errorf("delay before attempt %d = %v, want %v", n, got, d)
		}
	}
	uncapped := jobqueue.RetryPolicy{Backoff: time.Millisecond}
	if got := uncapped.Delay(4); got != 4*time.Millisecond {
		t.Errorf("uncapped delay = %v, want 4ms", got)
	}
}

// TestStateString covers the lifecycle names used in counters and CLIs.
func TestStateString(t *testing.T) {
	cases := map[jobqueue.State]string{
		jobqueue.StateQueued:    "queued",
		jobqueue.StateRunning:   "running",
		jobqueue.StateDone:      "done",
		jobqueue.StateFailed:    "failed",
		jobqueue.StateCancelled: "cancelled",
	}
	for s, name := range cases {
		if s.String() != name {
			t.Errorf("State(%d).String() = %q, want %q", s, s.String(), name)
		}
		if terminal := s.Terminal(); terminal != (name == "done" || name == "failed" || name == "cancelled") {
			t.Errorf("State %s Terminal() = %v", name, terminal)
		}
	}
}

// TestTransientClassification covers the retryability matrix.
func TestTransientClassification(t *testing.T) {
	if jobqueue.Transient(nil) {
		t.Error("nil classified transient")
	}
	if !jobqueue.Transient(context.DeadlineExceeded) {
		t.Error("deadline not transient")
	}
	if jobqueue.Transient(context.Canceled) {
		t.Error("cancellation classified transient")
	}
	if !jobqueue.Transient(jobqueue.MarkTransient(errors.New("x"))) {
		t.Error("marked error not transient")
	}
	if jobqueue.MarkTransient(nil) != nil {
		t.Error("MarkTransient(nil) != nil")
	}
	if !jobqueue.Transient(transientErr{}) {
		t.Error("Transient() interface not honoured")
	}
}

type transientErr struct{}

func (transientErr) Error() string   { return "transient by interface" }
func (transientErr) Transient() bool { return true }
