package jobqueue

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrClosed is returned by Stream.Submit after Close: a closed stream
// rejects new work with a terminal error instead of deadlocking the caller.
var ErrClosed = errors.New("jobqueue: stream closed")

// Stream is the incremental face of a Queue: a long-lived caller Submits
// jobs one at a time as they arrive (a shard splitter, a network server, a
// tail -f of a manifest) and Waits on individual slots — or Drains the lot
// — while the bounded worker pool executes at most Workers() jobs
// concurrently. Slots are assigned in submission order and results are
// keyed by slot, so the deterministic-output contract of Queue.Run carries
// over: for independent jobs the per-slot Results are bit-identical
// whatever the worker count or submission timing.
//
// A Stream is safe for concurrent Submit, Wait, Close, and Drain calls.
type Stream struct {
	q   *Queue
	ctx context.Context
	sem chan struct{}

	// completed counts jobs that reached a terminal state; Depth is
	// Submitted minus this.
	completed atomic.Int64

	mu     sync.Mutex
	jobs   []*pendingJob
	closed bool
}

// pendingJob is one submitted job's landing place; done is closed when res
// is final, broadcasting to every waiter.
type pendingJob struct {
	done chan struct{}
	res  Result
}

// Stream opens an incremental submission session over the queue. Jobs run
// under ctx exactly as in Run: cancelling ctx marks queued and in-flight
// jobs Cancelled without affecting finished ones.
func (q *Queue) Stream(ctx context.Context) *Stream {
	return &Stream{q: q, ctx: ctx, sem: make(chan struct{}, q.Workers())}
}

// Submit enqueues one job and returns its slot. It never blocks on the
// worker pool — execution is handed to a goroutine that waits for a pool
// slot — and returns ErrClosed after Close instead of deadlocking.
func (s *Stream) Submit(spec Spec) (int, error) {
	return s.SubmitCtx(s.ctx, spec)
}

// SubmitCtx enqueues one job like Submit, but the job runs under ctx
// instead of the stream's context — the hook a front-door service uses for
// per-job cancellation and deadlines. Derive ctx from the stream's context
// so cancelling the stream still cancels every job; a nil ctx falls back to
// the stream's own. Cancelling ctx while the job waits for a pool slot (or
// mid-run, at a stage boundary) records the job Cancelled exactly as
// Queue.Run would.
func (s *Stream) SubmitCtx(ctx context.Context, spec Spec) (int, error) {
	if ctx == nil {
		ctx = s.ctx
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return -1, ErrClosed
	}
	slot := len(s.jobs)
	p := &pendingJob{done: make(chan struct{})}
	s.jobs = append(s.jobs, p)
	s.mu.Unlock()

	s.q.count("jobs.submitted", 1)
	submitted := time.Now()
	go func() {
		defer close(p.done)
		defer s.completed.Add(1)
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		case <-ctx.Done():
			// Cancelled while queued for a pool slot; runJob observes the
			// dead context immediately and records the cancellation.
		}
		p.res = s.q.runJob(ctx, slot, spec, submitted)
	}()
	return slot, nil
}

// Submitted returns how many jobs have been accepted so far.
func (s *Stream) Submitted() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}

// Depth returns the queue depth: jobs submitted but not yet terminal. It
// is the gauge a bounded-admission front door watches — with admission
// capped upstream, Depth never exceeds that budget plus the pool width.
func (s *Stream) Depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	// completed is read while the mutex pins len(s.jobs): a job completes
	// only after its submission appended it, so the difference cannot go
	// negative; the clamp is belt and braces.
	if d := len(s.jobs) - int(s.completed.Load()); d > 0 {
		return d
	}
	return 0
}

// Wait blocks until the job in slot reaches a terminal state and returns
// its Result. Waiting on a slot that was never submitted is an error.
// Multiple goroutines may Wait on the same slot.
func (s *Stream) Wait(slot int) (Result, error) {
	s.mu.Lock()
	if slot < 0 || slot >= len(s.jobs) {
		n := len(s.jobs)
		s.mu.Unlock()
		return Result{}, fmt.Errorf("jobqueue: no slot %d (submitted %d)", slot, n)
	}
	p := s.jobs[slot]
	s.mu.Unlock()
	<-p.done
	return p.res, nil
}

// Close stops further submissions; already-submitted jobs keep running.
// Close is idempotent and safe to call concurrently with Submit.
func (s *Stream) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
}

// Drain closes the stream, waits for every submitted job, and returns all
// results in submission-slot order.
func (s *Stream) Drain() []Result {
	s.Close()
	s.mu.Lock()
	jobs := s.jobs
	s.mu.Unlock()
	out := make([]Result, len(jobs))
	for i, p := range jobs {
		<-p.done
		out[i] = p.res
	}
	return out
}
