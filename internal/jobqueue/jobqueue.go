// Package jobqueue serves concurrent assembly jobs over the engine
// registry: a bounded worker pool dispatches (read-source, engine-name)
// pairs onto engine workers, each job running under its own context with a
// per-attempt timeout, cancellation at stage boundaries, and deterministic
// retry-with-backoff for transient failures. This is the scaling shape the
// near-memory assembly literature argues for (many workloads multiplexed
// onto one accelerator), built on the seam DESIGN.md §10 left for it.
//
// Determinism: the queue follows internal/parallel's contract — jobs are
// independent (every engine run owns a fresh platform), results land in
// submission-slot order, and any randomness a job needs must be pre-split
// per slot before Run (parallel.SplitRNGs discipline). Under that contract
// the per-job Reports are bit-identical for any worker count; only the
// wall-clock latency series differ. See DESIGN.md §11.
package jobqueue

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"pimassembler/internal/engine"
	"pimassembler/internal/genome"
	"pimassembler/internal/metrics"
	"pimassembler/internal/parallel"
)

// State is a job's lifecycle position: Queued → Running → one of
// Done / Failed / Cancelled.
type State int32

const (
	// StateQueued means the job is accepted but no worker has picked it up.
	StateQueued State = iota
	// StateRunning means a worker is executing an attempt of the job.
	StateRunning
	// StateDone means the job produced a Report.
	StateDone
	// StateFailed means every permitted attempt errored (terminal error or
	// retry budget exhausted).
	StateFailed
	// StateCancelled means the run's context ended before or during the
	// job; Result.Err carries ctx.Err().
	StateCancelled
)

var stateNames = [...]string{
	StateQueued:    "queued",
	StateRunning:   "running",
	StateDone:      "done",
	StateFailed:    "failed",
	StateCancelled: "cancelled",
}

// String implements fmt.Stringer.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return "unknown"
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// RetryPolicy bounds the attempts of one job. Backoff is deterministic
// exponential (base doubling per retry, capped) — no jitter, so a fixed
// manifest replays identically.
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget; values < 1 mean one attempt
	// (no retry).
	MaxAttempts int
	// Backoff is the delay before the second attempt; it doubles per
	// further retry. Zero retries immediately.
	Backoff time.Duration
	// MaxBackoff caps the doubled delay when positive.
	MaxBackoff time.Duration
}

// attempts returns the effective attempt budget.
func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// Delay returns the backoff before attempt n: the base Backoff doubled per
// further retry, saturating at MaxBackoff when set and at the maximum
// Duration otherwise — the doubling never overflows into a negative delay,
// however large n grows. A non-positive Backoff means no delay; n below 2
// (the first attempt, or a nonsensical attempt number) gets the base
// Backoff.
func (p RetryPolicy) Delay(n int) time.Duration {
	d := p.Backoff
	if d <= 0 {
		return 0
	}
	for i := 2; i < n; i++ {
		if p.MaxBackoff > 0 && d >= p.MaxBackoff {
			return p.MaxBackoff
		}
		if d > math.MaxInt64/2 {
			d = math.MaxInt64
		} else {
			d *= 2
		}
	}
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		return p.MaxBackoff
	}
	return d
}

// Spec describes one assembly job: a workload plus the engine to run it on,
// resolved through the queue's registry at execution time.
type Spec struct {
	// Name is an optional label for reporting (defaults to the engine name
	// in summaries).
	Name string
	// Engine is the registry name of the execution path (see
	// engine.Names).
	Engine string
	// Source is the workload's read stream (may be nil for counts-only
	// analytical jobs); wrap an in-memory slice in genome.NewSliceSource.
	// Jobs with a retry budget need a resettable source (one implementing
	// Reset() error, like SliceSource or FileSource): the queue rewinds it
	// before every re-attempt, and fails the job terminally if it cannot.
	Source genome.ReadSource
	// Opts configures the engine run.
	Opts engine.Options
	// Timeout bounds each attempt when positive; an attempt that exceeds
	// it fails with context.DeadlineExceeded (transient, hence retryable).
	Timeout time.Duration
	// Retry is the job's attempt budget and backoff schedule.
	Retry RetryPolicy
}

// Result is one job's outcome, in submission-slot order.
type Result struct {
	// Slot is the job's index in the submitted batch.
	Slot int
	// Spec echoes the submitted job.
	Spec Spec
	// State is the terminal lifecycle state.
	State State
	// Report is the engine's unified report (nil unless State is Done).
	Report *engine.Report
	// Err is the terminal error (nil when Done; ctx.Err() when Cancelled).
	Err error
	// Attempts is how many attempts ran (0 when cancelled while queued).
	Attempts int
	// Wait is the wall-clock queue latency (submit → first attempt);
	// Run is the execution latency (first attempt → terminal state).
	// Both are non-deterministic and excluded from deterministic output.
	Wait, Run time.Duration
}

// ErrTransient marks an error as retryable when wrapped; Transient also
// recognises context.DeadlineExceeded (a per-attempt timeout on a stage
// boundary) and any error implementing interface{ Transient() bool }.
var ErrTransient = errors.New("jobqueue: transient failure")

// MarkTransient wraps err so Transient reports it retryable. A nil err
// stays nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w: %w", ErrTransient, err)
}

// Transient classifies an error as retryable: a per-attempt deadline, an
// explicit ErrTransient mark, or a type asserting Transient() true
// (fault-injected runs surface their flakiness this way).
func Transient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, ErrTransient) {
		return true
	}
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// Option configures a Queue.
type Option func(*Queue)

// WithWorkers bounds the pool width (values < 1 fall back to
// parallel.Workers at Run time).
func WithWorkers(n int) Option { return func(q *Queue) { q.workers = n } }

// WithCounters attaches an instrumentation registry; the queue reports the
// jobs.* counters and latency.* series through it.
func WithCounters(c *metrics.Counters) Option { return func(q *Queue) { q.counters = c } }

// WithObserver registers a lifecycle hook: observe(slot, state) fires
// synchronously on every transition of every job, from the dispatching
// worker's goroutine. The observer must be race-safe.
func WithObserver(observe func(slot int, state State)) Option {
	return func(q *Queue) { q.observe = observe }
}

// Queue is a bounded worker-pool job server over an engine registry.
// A Queue is stateless between Run calls and safe for concurrent Runs.
type Queue struct {
	reg      *engine.Registry
	workers  int
	counters *metrics.Counters
	observe  func(slot int, state State)
}

// New builds a queue over reg (nil means the default engine registry).
func New(reg *engine.Registry, opts ...Option) *Queue {
	if reg == nil {
		reg = engine.Default()
	}
	q := &Queue{reg: reg}
	for _, o := range opts {
		o(q)
	}
	return q
}

// Workers returns the effective pool width.
func (q *Queue) Workers() int {
	if q.workers > 0 {
		return q.workers
	}
	return parallel.Workers()
}

// Run executes every job and returns the results in submission-slot order.
// The pool runs at most Workers() jobs concurrently; a cancelled ctx marks
// in-flight and still-queued jobs Cancelled (with ctx.Err()) without
// affecting jobs that already finished — one job's failure never poisons
// another's result. Run never returns a non-positional error: per-job
// outcomes are in the Results.
func (q *Queue) Run(ctx context.Context, specs []Spec) []Result {
	results := make([]Result, len(specs))
	q.count("jobs.submitted", int64(len(specs)))
	submitted := time.Now()
	parallel.ForEachWorkers(q.Workers(), len(specs), func(i int) {
		results[i] = q.runJob(ctx, i, specs[i], submitted)
	})
	return results
}

// runJob drives one job through its lifecycle.
func (q *Queue) runJob(ctx context.Context, slot int, spec Spec, submitted time.Time) Result {
	res := Result{Slot: slot, Spec: spec, State: StateQueued}
	q.transition(slot, &res, StateQueued)
	if err := ctx.Err(); err != nil {
		// Cancelled while still queued: never ran.
		res.Err = err
		q.finish(slot, &res, StateCancelled)
		return res
	}

	eng, err := q.reg.Lookup(spec.Engine)
	if err != nil {
		// Unknown engine is a submission error, not a transient one.
		res.Err = err
		q.finish(slot, &res, StateFailed)
		return res
	}

	started := time.Now()
	res.Wait = started.Sub(submitted)
	q.transition(slot, &res, StateRunning)

	budget := spec.Retry.attempts()
	for attempt := 1; ; attempt++ {
		if attempt > 1 {
			// A retry replays the workload from the start; a source that
			// cannot rewind would re-run the attempt over an exhausted
			// stream, so it fails the job terminally instead.
			if err := resetSource(spec.Source); err != nil {
				res.Err = err
				res.Run = time.Since(started)
				q.observeLatency(&res)
				q.finish(slot, &res, StateFailed)
				return res
			}
		}
		res.Attempts = attempt
		q.count("jobs.attempts", 1)
		rep, err := q.runAttempt(ctx, eng, spec)
		if err == nil {
			res.Report = rep
			res.Run = time.Since(started)
			q.observeLatency(&res)
			q.finish(slot, &res, StateDone)
			return res
		}
		if ctx.Err() != nil {
			// The run (not the attempt) was cancelled: report ctx.Err() so
			// callers see the cancellation, whatever the engine returned.
			res.Err = ctx.Err()
			res.Run = time.Since(started)
			q.observeLatency(&res)
			q.finish(slot, &res, StateCancelled)
			return res
		}
		if attempt >= budget || !Transient(err) {
			res.Err = err
			res.Run = time.Since(started)
			q.observeLatency(&res)
			q.finish(slot, &res, StateFailed)
			return res
		}
		q.count("jobs.retries", 1)
		if err := sleep(ctx, spec.Retry.Delay(attempt+1)); err != nil {
			res.Err = err
			res.Run = time.Since(started)
			q.observeLatency(&res)
			q.finish(slot, &res, StateCancelled)
			return res
		}
	}
}

// runAttempt executes one attempt under the job's per-attempt deadline.
func (q *Queue) runAttempt(ctx context.Context, eng engine.Engine, spec Spec) (*engine.Report, error) {
	if spec.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, spec.Timeout)
		defer cancel()
	}
	return eng.Assemble(ctx, spec.Source, spec.Opts)
}

// resetSource rewinds a job's read source before a retry attempt. A nil
// source needs no rewind; a non-resettable one is a terminal error.
func resetSource(src genome.ReadSource) error {
	if src == nil {
		return nil
	}
	r, ok := src.(interface{ Reset() error })
	if !ok {
		return fmt.Errorf("jobqueue: cannot retry: read source %T is not resettable", src)
	}
	if err := r.Reset(); err != nil {
		return fmt.Errorf("jobqueue: resetting read source for retry: %w", err)
	}
	return nil
}

// transition records a non-terminal lifecycle step.
func (q *Queue) transition(slot int, res *Result, s State) {
	res.State = s
	if q.observe != nil {
		q.observe(slot, s)
	}
}

// finish records the terminal state and its counter.
func (q *Queue) finish(slot int, res *Result, s State) {
	res.State = s
	q.count("jobs."+s.String(), 1)
	if q.observe != nil {
		q.observe(slot, s)
	}
}

// observeLatency reports the job's wall-clock series.
func (q *Queue) observeLatency(res *Result) {
	if q.counters == nil {
		return
	}
	q.counters.Observe("latency.queue", res.Wait)
	q.counters.Observe("latency.run", res.Run)
}

// count bumps a queue counter when instrumentation is attached.
func (q *Queue) count(name string, delta int64) {
	if q.counters != nil {
		q.counters.Add(name, delta)
	}
}

// sleep waits d or until ctx ends, whichever is first.
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
