package jobqueue_test

import (
	"context"
	"errors"
	"math"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"pimassembler/internal/assembly"
	"pimassembler/internal/engine"
	"pimassembler/internal/genome"
	"pimassembler/internal/jobqueue"
	"pimassembler/internal/metrics"
)

// TestStreamDeterministicSlotOrder pins the Stream's contract: jobs fed
// incrementally yield the same slot-ordered, bit-identical results as a
// batch Run, for any worker count.
func TestStreamDeterministicSlotOrder(t *testing.T) {
	baseline := jobqueue.New(nil, jobqueue.WithWorkers(1)).Run(context.Background(), manifest())
	for _, workers := range []int{1, 3, runtime.NumCPU()} {
		// Sources carry a cursor, so every run gets a fresh manifest.
		specs := manifest()
		q := jobqueue.New(nil, jobqueue.WithWorkers(workers))
		st := q.Stream(context.Background())
		for i, spec := range specs {
			slot, err := st.Submit(spec)
			if err != nil {
				t.Fatalf("workers=%d: Submit %d: %v", workers, i, err)
			}
			if slot != i {
				t.Fatalf("workers=%d: job %d landed in slot %d", workers, i, slot)
			}
		}
		results := st.Drain()
		if len(results) != len(specs) {
			t.Fatalf("workers=%d: %d results for %d jobs", workers, len(results), len(specs))
		}
		for i, r := range results {
			if r.Slot != i || r.State != jobqueue.StateDone {
				t.Fatalf("workers=%d slot %d: slot=%d state=%v err=%v", workers, i, r.Slot, r.State, r.Err)
			}
			got, want := canonical(r.Report), canonical(baseline[i].Report)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("workers=%d slot %d: streamed Report differs from batch Run", workers, i)
			}
		}
	}
}

// TestStreamWait covers per-slot waiting, repeat waiting, and waits issued
// before the job finishes.
func TestStreamWait(t *testing.T) {
	release := make(chan struct{})
	slow := fakeEngine{name: "slow", fn: func(ctx context.Context) (*engine.Report, error) {
		select {
		case <-release:
			return okReport("slow"), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}}
	q := jobqueue.New(newTestRegistry(t, slow), jobqueue.WithWorkers(2))
	st := q.Stream(context.Background())
	slot, err := st.Submit(jobqueue.Spec{Engine: "slow"})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := st.Wait(slot)
			if err != nil || r.State != jobqueue.StateDone {
				t.Errorf("Wait(%d) = %v state %v", slot, err, r.State)
			}
		}()
	}
	close(release)
	wg.Wait()

	// A second Wait on a finished slot returns the same result.
	r, err := st.Wait(slot)
	if err != nil || r.Report == nil || r.Report.Engine != "slow" {
		t.Fatalf("repeat Wait = %v, %+v", err, r.Report)
	}
	if _, err := st.Wait(99); err == nil {
		t.Fatal("Wait on an unsubmitted slot succeeded")
	}
	if _, err := st.Wait(-1); err == nil {
		t.Fatal("Wait on a negative slot succeeded")
	}
}

// TestStreamSubmitAfterClose is the deadlock regression: a closed stream
// must reject Submit with ErrClosed immediately.
func TestStreamSubmitAfterClose(t *testing.T) {
	q := jobqueue.New(newTestRegistry(t, fakeEngine{name: "ok", fn: func(context.Context) (*engine.Report, error) {
		return okReport("ok"), nil
	}}), jobqueue.WithWorkers(1))
	st := q.Stream(context.Background())
	if _, err := st.Submit(jobqueue.Spec{Engine: "ok"}); err != nil {
		t.Fatal(err)
	}
	st.Close()
	st.Close() // idempotent

	done := make(chan error, 1)
	go func() {
		_, err := st.Submit(jobqueue.Spec{Engine: "ok"})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, jobqueue.ErrClosed) {
			t.Fatalf("Submit after Close = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Submit after Close deadlocked")
	}

	results := st.Drain()
	if len(results) != 1 || results[0].State != jobqueue.StateDone {
		t.Fatalf("Drain after Close: %+v", results)
	}
	if st.Submitted() != 1 {
		t.Fatalf("Submitted() = %d, want 1", st.Submitted())
	}
}

// TestStreamCancellation: cancelling the session context terminates queued
// and in-flight jobs as Cancelled without wedging Drain.
func TestStreamCancellation(t *testing.T) {
	started := make(chan struct{})
	block := make(chan struct{})
	defer close(block)
	stuck := fakeEngine{name: "stuck", fn: func(ctx context.Context) (*engine.Report, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		select {
		case <-block:
			return okReport("stuck"), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}}
	ctx, cancel := context.WithCancel(context.Background())
	q := jobqueue.New(newTestRegistry(t, stuck), jobqueue.WithWorkers(1))
	st := q.Stream(ctx)
	for i := 0; i < 3; i++ {
		if _, err := st.Submit(jobqueue.Spec{Engine: "stuck"}); err != nil {
			t.Fatal(err)
		}
	}
	<-started // one job holds the single worker slot
	cancel()
	for i, r := range st.Drain() {
		if r.State != jobqueue.StateCancelled {
			t.Errorf("slot %d: state %v, want cancelled", i, r.State)
		}
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("slot %d: err %v, want context.Canceled", i, r.Err)
		}
	}
}

// TestStreamCounters: streamed submissions report through the same
// instrumentation as batch runs.
func TestStreamCounters(t *testing.T) {
	c := metrics.NewCounters()
	q := jobqueue.New(newTestRegistry(t, fakeEngine{name: "ok", fn: func(context.Context) (*engine.Report, error) {
		return okReport("ok"), nil
	}}), jobqueue.WithWorkers(2), jobqueue.WithCounters(c))
	st := q.Stream(context.Background())
	for i := 0; i < 4; i++ {
		if _, err := st.Submit(jobqueue.Spec{Engine: "ok"}); err != nil {
			t.Fatal(err)
		}
	}
	st.Drain()
	if got := c.Get("jobs.submitted"); got != 4 {
		t.Errorf("jobs.submitted = %d, want 4", got)
	}
	if got := c.Get("jobs.done"); got != 4 {
		t.Errorf("jobs.done = %d, want 4", got)
	}
}

// TestRetryPolicyDelayEdges is the table-driven sweep of the backoff
// schedule's corners: attempt numbers at and below the meaningful range,
// degenerate base backoffs, and doubling far past the overflow point.
func TestRetryPolicyDelayEdges(t *testing.T) {
	const base = 10 * time.Millisecond
	cases := []struct {
		name string
		p    jobqueue.RetryPolicy
		n    int
		want time.Duration
	}{
		{"first retry", jobqueue.RetryPolicy{Backoff: base}, 2, base},
		{"attempt one", jobqueue.RetryPolicy{Backoff: base}, 1, base},
		{"attempt zero", jobqueue.RetryPolicy{Backoff: base}, 0, base},
		{"negative attempt", jobqueue.RetryPolicy{Backoff: base}, -3, base},
		{"zero backoff", jobqueue.RetryPolicy{}, 5, 0},
		{"negative backoff", jobqueue.RetryPolicy{Backoff: -time.Second}, 4, 0},
		{"doubling", jobqueue.RetryPolicy{Backoff: base}, 5, 80 * time.Millisecond},
		{"capped", jobqueue.RetryPolicy{Backoff: base, MaxBackoff: 25 * time.Millisecond}, 5, 25 * time.Millisecond},
		{"cap below base", jobqueue.RetryPolicy{Backoff: base, MaxBackoff: time.Millisecond}, 2, time.Millisecond},
		{"overflow saturates uncapped", jobqueue.RetryPolicy{Backoff: time.Hour}, 200, time.Duration(math.MaxInt64)},
		{"overflow saturates at cap", jobqueue.RetryPolicy{Backoff: time.Hour, MaxBackoff: 24 * time.Hour}, 200, 24 * time.Hour},
		{"max base stays put", jobqueue.RetryPolicy{Backoff: time.Duration(math.MaxInt64)}, 7, time.Duration(math.MaxInt64)},
	}
	for _, c := range cases {
		if got := c.p.Delay(c.n); got != c.want {
			t.Errorf("%s: Delay(%d) = %v, want %v", c.name, c.n, got, c.want)
		}
	}
	// Saturation, not wraparound: the schedule is monotonically
	// non-decreasing and never negative across the whole attempt range.
	p := jobqueue.RetryPolicy{Backoff: time.Hour}
	prev := time.Duration(0)
	for n := 0; n < 300; n++ {
		d := p.Delay(n)
		if d < 0 {
			t.Fatalf("Delay(%d) = %v went negative", n, d)
		}
		if d < prev {
			t.Fatalf("Delay(%d) = %v below Delay(%d) = %v", n, d, n-1, prev)
		}
		prev = d
	}
}

// TestStreamConsumesEngineOptions sanity-checks that specs pass through the
// stream unchanged (the assembly options reach the engine).
func TestStreamConsumesEngineOptions(t *testing.T) {
	var got engine.Options
	probe := fakeEngine{name: "probe", fn: func(context.Context) (*engine.Report, error) {
		return okReport("probe"), nil
	}}
	reg := engine.NewRegistry()
	if err := reg.Register(optionProbe{probe, &got}); err != nil {
		t.Fatal(err)
	}
	st := jobqueue.New(reg, jobqueue.WithWorkers(1)).Stream(context.Background())
	want := engine.Options{Options: assembly.Options{K: 22, MinCount: 3}, Subarrays: 8}
	if _, err := st.Submit(jobqueue.Spec{Engine: "probe", Opts: want}); err != nil {
		t.Fatal(err)
	}
	st.Drain()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("engine saw options %+v, want %+v", got, want)
	}
}

// optionProbe records the Options an Assemble call received.
type optionProbe struct {
	fakeEngine
	got *engine.Options
}

func (p optionProbe) Assemble(ctx context.Context, src genome.ReadSource, opts engine.Options) (*engine.Report, error) {
	*p.got = opts
	return p.fakeEngine.Assemble(ctx, src, opts)
}
