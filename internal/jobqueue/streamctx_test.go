package jobqueue_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"pimassembler/internal/engine"
	"pimassembler/internal/genome"
	"pimassembler/internal/jobqueue"
)

// TestStreamSubmitCtxCancelsOneJob pins per-job cancellation: cancelling a
// SubmitCtx context ends that job (Cancelled, ctx.Err()) while its
// neighbours on the same stream finish normally.
func TestStreamSubmitCtxCancelsOneJob(t *testing.T) {
	release := make(chan struct{})
	slow := fakeEngine{name: "slow", fn: func(ctx context.Context) (*engine.Report, error) {
		select {
		case <-release:
			return okReport("slow"), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}}
	q := jobqueue.New(newTestRegistry(t, slow), jobqueue.WithWorkers(2))
	st := q.Stream(context.Background())

	jobCtx, cancelJob := context.WithCancel(context.Background())
	defer cancelJob()
	doomed, err := st.SubmitCtx(jobCtx, jobqueue.Spec{Engine: "slow"})
	if err != nil {
		t.Fatal(err)
	}
	survivor, err := st.Submit(jobqueue.Spec{Engine: "slow"})
	if err != nil {
		t.Fatal(err)
	}

	cancelJob()
	res, err := st.Wait(doomed)
	if err != nil {
		t.Fatal(err)
	}
	if res.State != jobqueue.StateCancelled || !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("doomed job: state=%v err=%v, want cancelled/context.Canceled", res.State, res.Err)
	}

	close(release)
	res, err = st.Wait(survivor)
	if err != nil {
		t.Fatal(err)
	}
	if res.State != jobqueue.StateDone {
		t.Fatalf("survivor: state=%v err=%v, want done", res.State, res.Err)
	}
}

// TestStreamSubmitCtxNilFallsBack pins that a nil per-job context inherits
// the stream's context.
func TestStreamSubmitCtxNilFallsBack(t *testing.T) {
	ok := fakeEngine{name: "ok", fn: func(context.Context) (*engine.Report, error) {
		return okReport("ok"), nil
	}}
	q := jobqueue.New(newTestRegistry(t, ok), jobqueue.WithWorkers(1))
	st := q.Stream(context.Background())
	slot, err := st.SubmitCtx(nil, jobqueue.Spec{Engine: "ok", Source: genome.NewSliceSource(nil)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Wait(slot)
	if err != nil {
		t.Fatal(err)
	}
	if res.State != jobqueue.StateDone {
		t.Fatalf("state=%v err=%v, want done", res.State, res.Err)
	}
}

// TestStreamDepth pins the queue-depth gauge: it rises with submissions,
// falls as jobs finish, and ends at zero after Drain.
func TestStreamDepth(t *testing.T) {
	release := make(chan struct{})
	slow := fakeEngine{name: "slow", fn: func(ctx context.Context) (*engine.Report, error) {
		select {
		case <-release:
			return okReport("slow"), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}}
	q := jobqueue.New(newTestRegistry(t, slow), jobqueue.WithWorkers(2))
	st := q.Stream(context.Background())
	if d := st.Depth(); d != 0 {
		t.Fatalf("fresh stream depth = %d, want 0", d)
	}
	for i := 0; i < 3; i++ {
		if _, err := st.Submit(jobqueue.Spec{Engine: "slow"}); err != nil {
			t.Fatal(err)
		}
	}
	if d := st.Depth(); d != 3 {
		t.Fatalf("depth with 3 in-flight jobs = %d, want 3", d)
	}
	close(release)
	results := st.Drain()
	for i, r := range results {
		if r.State != jobqueue.StateDone {
			t.Fatalf("slot %d: state=%v err=%v", i, r.State, r.Err)
		}
	}
	// Drain waits on every job's done channel, and the depth accounting
	// settles before done closes.
	deadline := time.Now().Add(5 * time.Second)
	for st.Depth() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("depth stuck at %d after Drain", st.Depth())
		}
		time.Sleep(time.Millisecond)
	}
}
