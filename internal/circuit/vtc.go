// Package circuit models the analog behaviour of PIM-Assembler's
// reconfigurable sense amplifier: the shifted-VTC threshold-detector
// inverters, DRAM charge sharing across simultaneously activated rows, the
// enable-signal decode of Fig. 2a, transient waveforms (Fig. 3a), the
// noise-source model of Fig. 4, and the Monte-Carlo process-variation study
// of Table I.
//
// This package replaces the paper's Cadence Spectre + NCSU 45 nm PDK flow
// with a numerical model (see DESIGN.md §1): the experiments only depend on
// where shared bit-line voltages land relative to detector thresholds, and
// on the qualitative shape of the regeneration waveforms, both of which this
// model computes directly.
package circuit

import (
	"fmt"
	"math"
)

// Vdd is the nominal supply voltage of the 45 nm process, in volts.
const Vdd = 1.2

// Inverter models a CMOS inverter by its voltage transfer characteristic.
// Vs is the switching (trip) voltage; Gain is the magnitude of the slope at
// the trip point. The paper uses three flavours (Fig. 2b): a normal-Vs pair
// forming the regular sense amplifier, a low-Vs inverter (high-Vth NMOS,
// low-Vth PMOS) acting as a NOR-style threshold detector at Vdd/4, and a
// high-Vs inverter (low-Vth NMOS, high-Vth PMOS) acting as a NAND-style
// detector at 3·Vdd/4.
type Inverter struct {
	Vs   float64 // switching voltage, volts
	Gain float64 // |dVout/dVin| at Vin = Vs
}

// NormalInverter returns the regular SA inverter (Vs = Vdd/2).
func NormalInverter() Inverter { return Inverter{Vs: Vdd / 2, Gain: 25} }

// LowVsInverter returns the low switching-voltage inverter used as the NOR2
// threshold detector (Vs ≈ Vdd/4).
func LowVsInverter() Inverter { return Inverter{Vs: Vdd / 4, Gain: 25} }

// HighVsInverter returns the high switching-voltage inverter used as the
// NAND2 threshold detector (Vs ≈ 3·Vdd/4).
func HighVsInverter() Inverter { return Inverter{Vs: 3 * Vdd / 4, Gain: 25} }

// Vout evaluates the transfer characteristic at vin. The curve is a smooth
// logistic approximation of a static CMOS inverter VTC: rail-to-rail output
// with a transition of width ~Vdd/Gain centred on Vs.
func (inv Inverter) Vout(vin float64) float64 {
	return Vdd / (1 + math.Exp(inv.Gain/Vdd*4*(vin-inv.Vs)))
}

// Logic thresholds a voltage into a digital level using the inverter as a
// comparator: output is true (logic '1') when the inverter output is above
// Vdd/2, i.e. when vin is below the switching voltage.
func (inv Inverter) Logic(vin float64) bool { return inv.Vout(vin) > Vdd/2 }

// Validate checks the inverter parameters.
func (inv Inverter) Validate() error {
	if inv.Vs <= 0 || inv.Vs >= Vdd {
		return fmt.Errorf("circuit: switching voltage %.3f outside (0, Vdd)", inv.Vs)
	}
	if inv.Gain <= 1 {
		return fmt.Errorf("circuit: inverter gain %.2f must exceed 1", inv.Gain)
	}
	return nil
}
