package circuit

import (
	"math"
	"testing"

	"pimassembler/internal/stats"
)

func TestInverterRails(t *testing.T) {
	for _, inv := range []Inverter{NormalInverter(), LowVsInverter(), HighVsInverter()} {
		if err := inv.Validate(); err != nil {
			t.Fatal(err)
		}
		if out := inv.Vout(0); out < 0.95*Vdd {
			t.Errorf("Vs=%.2f: Vout(0) = %.3f, want near Vdd", inv.Vs, out)
		}
		if out := inv.Vout(Vdd); out > 0.05*Vdd {
			t.Errorf("Vs=%.2f: Vout(Vdd) = %.3f, want near 0", inv.Vs, out)
		}
		if out := inv.Vout(inv.Vs); math.Abs(out-Vdd/2) > 0.01*Vdd {
			t.Errorf("Vs=%.2f: Vout(Vs) = %.3f, want Vdd/2 at trip point", inv.Vs, out)
		}
	}
}

func TestInverterMonotonicity(t *testing.T) {
	inv := NormalInverter()
	prev := inv.Vout(0)
	for v := 0.01; v <= Vdd; v += 0.01 {
		cur := inv.Vout(v)
		if cur > prev+1e-12 {
			t.Fatalf("VTC not monotonically decreasing at %.2f", v)
		}
		prev = cur
	}
}

// The low-Vs inverter realises NOR2 and the high-Vs inverter NAND2 on the
// idealised charge-share levels, per the Fig. 2b truth table.
func TestDetectorTruthTable(t *testing.T) {
	sa := NewSenseAmp()
	cases := []struct {
		di, dj          bool
		nor, nand, xorw bool
	}{
		{false, false, true, true, false},
		{false, true, false, true, true},
		{true, false, false, true, true},
		{true, true, false, false, false},
	}
	for _, c := range cases {
		n := 0
		if c.di {
			n++
		}
		if c.dj {
			n++
		}
		nor, nand, xr := sa.DetectorOutputs(IdealShare(n, 2))
		if nor != c.nor || nand != c.nand || xr != c.xorw {
			t.Errorf("Di=%v Dj=%v: got (nor=%v nand=%v xor=%v), want (%v %v %v)",
				c.di, c.dj, nor, nand, xr, c.nor, c.nand, c.xorw)
		}
	}
}

func TestSenseXNORTruthTable(t *testing.T) {
	sa := NewSenseAmp()
	for _, di := range []bool{false, true} {
		for _, dj := range []bool{false, true} {
			xnor, xor := sa.SenseXNOR(di, dj)
			if want := di == dj; xnor != want {
				t.Errorf("XNOR(%v,%v) = %v", di, dj, xnor)
			}
			if xnor == xor {
				t.Error("BL and BLbar must be complementary")
			}
		}
	}
}

func TestSenseCarryMajority(t *testing.T) {
	sa := NewSenseAmp()
	for p := 0; p < 8; p++ {
		a, b, c := p&1 != 0, p&2 != 0, p&4 != 0
		got := sa.SenseCarry(a, b, c)
		want := b2i(a)+b2i(b)+b2i(c) >= 2
		if got != want {
			t.Errorf("MAJ(%v,%v,%v) = %v, want %v", a, b, c, got, want)
		}
		if sa.Latch() != got {
			t.Error("carry not latched")
		}
	}
}

func TestSenseSumFullAdder(t *testing.T) {
	sa := NewSenseAmp()
	for p := 0; p < 8; p++ {
		a, b, cin := p&1 != 0, p&2 != 0, p&4 != 0
		sa.SetLatch(cin)
		got := sa.SenseSum(a, b)
		want := (a != b) != cin
		if got != want {
			t.Errorf("SUM(%v,%v,cin=%v) = %v, want %v", a, b, cin, got, want)
		}
	}
}

func TestSenseMemoryReadsStoredValue(t *testing.T) {
	sa := NewSenseAmp()
	if sa.SenseMemory(false) {
		t.Fatal("read stored 0 as 1")
	}
	if !sa.SenseMemory(true) {
		t.Fatal("read stored 1 as 0")
	}
}

func TestEnablesMatchPaperTable(t *testing.T) {
	// XNOR2 is "01110" in (Enm, Enx, Enmux, Enc1, Enc2) order.
	e := Enables(ModeXNOR)
	if e.Enm || !e.Enx || !e.Enmux || !e.Enc1 || e.Enc2 {
		t.Fatalf("XNOR2 enables %+v do not match 01110", e)
	}
	// W/R keeps the MUX off the bit-lines.
	if w := Enables(ModeMemory); w.Enmux {
		t.Fatal("memory mode must not drive BL from the MUX")
	}
	// Carry and Sum both need the latch.
	if !Enables(ModeCarry).LatchEn || !Enables(ModeSum).LatchEn {
		t.Fatal("addition modes require the latch enable")
	}
}

func TestModeString(t *testing.T) {
	if ModeXNOR.String() != "XNOR2" || Mode(42).String() == "" {
		t.Fatal("mode names broken")
	}
}

func TestShareVoltageBounds(t *testing.T) {
	p := DefaultCellParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// All-zero cells pull the bit-line below Vdd/2, all-one cells above.
	v0 := ShareVoltage(p.CBL, []float64{p.CCell, p.CCell}, []float64{0, 0})
	v2 := ShareVoltage(p.CBL, []float64{p.CCell, p.CCell}, []float64{Vdd, Vdd})
	if v0 >= Vdd/2 || v2 <= Vdd/2 {
		t.Fatalf("share voltages v0=%.3f v2=%.3f not straddling Vdd/2", v0, v2)
	}
	if v0 < 0 || v2 > Vdd {
		t.Fatal("share voltage outside rails")
	}
}

func TestShareDeviationSymmetry(t *testing.T) {
	p := DefaultCellParams()
	d0 := p.ShareDeviation(0, 2)
	d2 := p.ShareDeviation(2, 2)
	if math.Abs(d0+d2) > 1e-9 {
		t.Fatalf("deviations %v and %v not symmetric", d0, d2)
	}
	if d1 := p.ShareDeviation(1, 2); math.Abs(d1) > 1e-9 {
		t.Fatalf("n=1 of 2 deviation %v, want 0", d1)
	}
}

func TestTRAMarginIsNarrow(t *testing.T) {
	// The paper's reliability argument: the TRA margin (|deviation| between
	// minority and majority cases) is much smaller than the two-row
	// detector's Vdd/4 margins.
	p := DefaultCellParams()
	traMargin := p.ShareDeviation(2, 3) // n=2 of 3 vs the Vdd/2 threshold
	if traMargin <= 0 {
		t.Fatal("majority case must deviate positive")
	}
	if traMargin > Vdd/8 {
		t.Fatalf("TRA margin %.3f V implausibly wide", traMargin)
	}
}

func TestIdealShareLevels(t *testing.T) {
	if IdealShare(0, 2) != 0 || IdealShare(2, 2) != Vdd {
		t.Fatal("ideal share endpoints wrong")
	}
	if math.Abs(IdealShare(1, 2)-Vdd/2) > 1e-12 {
		t.Fatal("ideal share midpoint wrong")
	}
}

func TestIdealSharePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	IdealShare(3, 2)
}

func TestTransientXNORAllCases(t *testing.T) {
	cfg := DefaultTransientConfig()
	for p := 0; p < 4; p++ {
		di, dj := p&1 != 0, p&2 != 0
		samples := SimulateXNOR2(cfg, di, dj)
		if len(samples) == 0 {
			t.Fatal("no samples")
		}
		// Paper Fig. 3a: cell charges to Vdd when DiDj ∈ {00,11},
		// discharges to GND when DiDj ∈ {10,01}.
		final := FinalCellVoltage(samples)
		if di == dj && final < 0.9*Vdd {
			t.Errorf("DiDj=%v%v: final cell %.3f, want near Vdd", b2i(di), b2i(dj), final)
		}
		if di != dj && final > 0.1*Vdd {
			t.Errorf("DiDj=%v%v: final cell %.3f, want near GND", b2i(di), b2i(dj), final)
		}
		// BL carries XOR2 in this MUX configuration.
		bl := FinalBL(samples)
		if (di != dj) && bl < 0.9*Vdd {
			t.Errorf("BL %.3f, want Vdd for XOR=1", bl)
		}
		if (di == dj) && bl > 0.1*Vdd {
			t.Errorf("BL %.3f, want GND for XOR=0", bl)
		}
	}
}

func TestTransientPhasesOrdered(t *testing.T) {
	samples := SimulateXNOR2(DefaultTransientConfig(), true, false)
	last := PhasePrecharge
	for _, s := range samples {
		if s.Phase < last {
			t.Fatal("phases not monotonically ordered")
		}
		last = s.Phase
	}
	if last != PhaseSense {
		t.Fatal("transient must end in sense phase")
	}
}

func TestTransientStartsAtPrecharge(t *testing.T) {
	samples := SimulateXNOR2(DefaultTransientConfig(), true, true)
	if math.Abs(samples[0].VBL-Vdd/2) > 1e-9 {
		t.Fatalf("initial BL %.3f, want Vdd/2", samples[0].VBL)
	}
}

func TestMonteCarloZeroVariationIsErrorFree(t *testing.T) {
	m := DefaultVariationModel()
	r := m.MonteCarlo(2000, 0, stats.NewRNG(1))
	if r.TRAErrPct != 0 || r.TwoRowErrPct != 0 {
		t.Fatalf("zero variation produced errors: %+v", r)
	}
}

func TestMonteCarloTableIShape(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-trial Monte-Carlo sweep")
	}
	m := DefaultVariationModel()
	rows := m.TableI(42)
	if len(rows) != 5 {
		t.Fatalf("expected 5 sweep points, got %d", len(rows))
	}
	// Paper-shape assertions: error-free at ±5 %, two-row error-free at
	// ±10 %, TRA strictly worse than two-row at every point with errors,
	// and both monotonically non-decreasing.
	if rows[0].TRAErrPct != 0 || rows[0].TwoRowErrPct != 0 {
		t.Errorf("±5%% must be error free: %+v", rows[0])
	}
	if rows[1].TwoRowErrPct > 0.05 {
		t.Errorf("two-row at ±10%% should be ~0, got %.2f%%", rows[1].TwoRowErrPct)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].TRAErrPct < rows[i-1].TRAErrPct-0.5 {
			t.Errorf("TRA error not monotonic: %v -> %v", rows[i-1], rows[i])
		}
		if rows[i].TwoRowErrPct < rows[i-1].TwoRowErrPct-0.5 {
			t.Errorf("two-row error not monotonic: %v -> %v", rows[i-1], rows[i])
		}
	}
	for _, r := range rows[1:] {
		if r.TRAErrPct < r.TwoRowErrPct {
			t.Errorf("TRA must fail at least as often as two-row: %v", r)
		}
	}
	// Magnitudes in the paper's ballpark.
	if rows[2].TRAErrPct < 2 || rows[2].TRAErrPct > 12 {
		t.Errorf("TRA ±15%% error %.2f%% far from paper's 5.5%%", rows[2].TRAErrPct)
	}
	if rows[4].TRAErrPct < 20 || rows[4].TRAErrPct > 40 {
		t.Errorf("TRA ±30%% error %.2f%% far from paper's 28.4%%", rows[4].TRAErrPct)
	}
}

func TestMonteCarloDeterminism(t *testing.T) {
	m := DefaultVariationModel()
	a := m.MonteCarlo(500, 0.2, stats.NewRNG(9))
	b := m.MonteCarlo(500, 0.2, stats.NewRNG(9))
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestMonteCarloPanics(t *testing.T) {
	m := DefaultVariationModel()
	for _, f := range []func(){
		func() { m.MonteCarlo(0, 0.1, stats.NewRNG(1)) },
		func() { m.MonteCarlo(10, -0.1, stats.NewRNG(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
