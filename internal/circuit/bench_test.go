package circuit

import (
	"testing"

	"pimassembler/internal/stats"
)

func BenchmarkSenseXNOR(b *testing.B) {
	sa := NewSenseAmp()
	for i := 0; i < b.N; i++ {
		sa.SenseXNOR(i&1 != 0, i&2 != 0)
	}
}

func BenchmarkTransientXNOR2(b *testing.B) {
	cfg := DefaultTransientConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SimulateXNOR2(cfg, true, false)
	}
}

func BenchmarkMonteCarloTrial(b *testing.B) {
	m := DefaultVariationModel()
	rng := stats.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MonteCarlo(1, 0.15, rng)
	}
}
