package circuit

import "fmt"

// CellParams holds the DRAM cell and bit-line capacitances used by the
// charge-sharing model. Nominal values follow the Rambus DRAM power model
// parameters the paper scales from, for a 45 nm device with the short local
// bit-lines of a 1024-row sub-array.
type CellParams struct {
	CCell  float64 // storage capacitor, femtofarads
	CBL    float64 // bit-line parasitic capacitance, femtofarads
	CWBL   float64 // word-line to bit-line coupling capacitance (Fig. 4)
	CCross float64 // bit-line to adjacent bit-line coupling (Fig. 4)
}

// DefaultCellParams returns the nominal 45 nm cell model.
func DefaultCellParams() CellParams {
	return CellParams{
		CCell:  22.0,
		CBL:    85.0,
		CWBL:   0.35,
		CCross: 1.8,
	}
}

// Validate checks the parameters are physical.
func (p CellParams) Validate() error {
	if p.CCell <= 0 || p.CBL <= 0 {
		return fmt.Errorf("circuit: capacitances must be positive: %+v", p)
	}
	if p.CWBL < 0 || p.CCross < 0 {
		return fmt.Errorf("circuit: coupling capacitances must be non-negative: %+v", p)
	}
	return nil
}

// ShareVoltage returns the bit-line voltage after charge sharing between the
// precharged bit-line (Vdd/2) and the given cell voltages, each stored on
// its own capacitor. cellCaps[i] is the (possibly variation-perturbed)
// capacitance of cell i; cellVolts[i] its stored voltage. blCap is the
// bit-line capacitance.
//
// This is the single source of truth for in-memory logic: the ideal
// Vi = n·Vdd/C relation of the paper is the limit of this expression for
// identical unit capacitors dominating the bit-line, and the digital
// fast-path in internal/subarray is property-tested against it.
func ShareVoltage(blCap float64, cellCaps, cellVolts []float64) float64 {
	if len(cellCaps) != len(cellVolts) {
		panic("circuit: cellCaps and cellVolts length mismatch")
	}
	charge := blCap * (Vdd / 2)
	total := blCap
	for i, c := range cellCaps {
		charge += c * cellVolts[i]
		total += c
	}
	return charge / total
}

// ShareDeviation returns the deviation of the shared bit-line voltage from
// the Vdd/2 precharge level when n of k activated cells store '1', using
// nominal parameters. Positive deviation means the SA senses towards '1'.
func (p CellParams) ShareDeviation(n, k int) float64 {
	if n < 0 || k <= 0 || n > k {
		panic(fmt.Sprintf("circuit: invalid n=%d of k=%d cells", n, k))
	}
	caps := make([]float64, k)
	volts := make([]float64, k)
	for i := range caps {
		caps[i] = p.CCell
		if i < n {
			volts[i] = Vdd
		}
	}
	return ShareVoltage(p.CBL, caps, volts) - Vdd/2
}

// IdealShare returns the paper's idealised detector input Vi = n·Vdd/C for
// n of c unit capacitors storing logic '1'. The reconfigurable SA buffers
// the shared charge onto matched unit capacitors feeding the detector
// inverters, which is why the detector sees the full-swing division rather
// than the attenuated bit-line deviation.
func IdealShare(n, c int) float64 {
	if n < 0 || c <= 0 || n > c {
		panic(fmt.Sprintf("circuit: invalid n=%d of c=%d capacitors", n, c))
	}
	return float64(n) * Vdd / float64(c)
}
