package circuit

import (
	"testing"

	"pimassembler/internal/parallel"
	"pimassembler/internal/stats"
)

// TestMonteCarloParallelMatchesSerial pins the determinism contract for the
// chunked Monte-Carlo engine at every Table I sweep point: identical error
// percentages (not just close — identical, since the chunk RNG streams are
// pre-split and merged in chunk order) for 1 vs many workers, and the
// caller's RNG must be left in the same state either way.
func TestMonteCarloParallelMatchesSerial(t *testing.T) {
	defer parallel.SetWorkers(0)
	m := DefaultVariationModel()
	const trials = 4000
	for _, v := range TableIVariations() {
		for _, workers := range []int{2, 4, 8} {
			parallel.SetWorkers(1)
			serialRNG := stats.NewRNG(7)
			serial := m.MonteCarlo(trials, v, serialRNG)

			parallel.SetWorkers(workers)
			parRNG := stats.NewRNG(7)
			par := m.MonteCarlo(trials, v, parRNG)

			if par != serial {
				t.Fatalf("±%.0f%% workers=%d: %+v, serial %+v", v*100, workers, par, serial)
			}
			if parRNG.Uint64() != serialRNG.Uint64() {
				t.Fatalf("±%.0f%% workers=%d: caller RNG state diverged", v*100, workers)
			}
		}
	}
}

// TestTableIParallelMatchesSerial runs the whole sweep at 1 and 4 workers.
func TestTableIParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full 10k-trial sweep")
	}
	defer parallel.SetWorkers(0)
	m := DefaultVariationModel()
	parallel.SetWorkers(1)
	serial := m.TableI(3)
	parallel.SetWorkers(4)
	par := m.TableI(3)
	if len(par) != len(serial) {
		t.Fatalf("lengths %d vs %d", len(par), len(serial))
	}
	for i := range serial {
		if par[i] != serial[i] {
			t.Fatalf("point %d: %+v vs %+v", i, par[i], serial[i])
		}
	}
}
