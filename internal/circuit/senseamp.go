package circuit

import "fmt"

// Mode enumerates the operating modes of the reconfigurable sense amplifier
// (Fig. 2a control table).
type Mode int

const (
	// ModeMemory is the normal DRAM write/read sense operation.
	ModeMemory Mode = iota
	// ModeXNOR performs single-cycle XNOR2/XOR2 between two activated rows.
	ModeXNOR
	// ModeCarry performs Ambit-style triple-row-activation majority,
	// latching the carry in the SA's D-latch.
	ModeCarry
	// ModeSum produces Sum = XOR(XOR(a, b), latched carry) via the add-on
	// XOR gate with the latch enabled.
	ModeSum
)

var modeNames = [...]string{
	ModeMemory: "W/R",
	ModeXNOR:   "XNOR2",
	ModeCarry:  "Carry",
	ModeSum:    "Sum",
}

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m < 0 || int(m) >= len(modeNames) {
		return fmt.Sprintf("Mode(%d)", int(m))
	}
	return modeNames[m]
}

// EnableSet is the five enable signals controlling the add-on circuit, plus
// the latch enable, matching the control-signal table of Fig. 2a. Signal
// order in the paper's "01110" shorthand is (Enm, Enx, Enmux, Enc1, Enc2).
type EnableSet struct {
	Enm     bool // connects the normal back-to-back inverter pair
	Enx     bool // connects the shifted-VTC detector inverters
	Enmux   bool // drives the BL/BLbar from the 4:1 MUX output
	Enc1    bool // MUX selector bit 1
	Enc2    bool // MUX selector bit 2
	LatchEn bool // opens the D-latch to capture carry
}

// Enables returns the enable-signal configuration for a mode, following the
// Fig. 2a table: W/R = 110xx, XNOR2 = 01110, Carry (addition) = 11100 with
// latch, Sum = 11011 with latch.
func Enables(m Mode) EnableSet {
	switch m {
	case ModeMemory:
		return EnableSet{Enm: true, Enx: true}
	case ModeXNOR:
		return EnableSet{Enx: true, Enmux: true, Enc1: true}
	case ModeCarry:
		return EnableSet{Enm: true, Enx: true, Enmux: true, LatchEn: true}
	case ModeSum:
		return EnableSet{Enm: true, Enx: true, Enc1: true, Enc2: true, LatchEn: true}
	default:
		panic(fmt.Sprintf("circuit: unknown mode %v", m))
	}
}

// SenseAmp is a functional model of the reconfigurable sense amplifier: the
// regular cross-coupled pair plus the add-on circuit (two shifted-VTC
// inverters, an AND gate with one inverted input forming XOR2, a D-latch,
// and the 4:1 MUX).
type SenseAmp struct {
	Normal Inverter // regular SA pair (majority threshold)
	LowVs  Inverter // NOR2 detector
	HighVs Inverter // NAND2 detector
	Cells  CellParams

	latch bool // D-latch state (carry)
}

// NewSenseAmp returns a sense amplifier with nominal 45 nm parameters.
func NewSenseAmp() *SenseAmp {
	return &SenseAmp{
		Normal: NormalInverter(),
		LowVs:  LowVsInverter(),
		HighVs: HighVsInverter(),
		Cells:  DefaultCellParams(),
	}
}

// Latch returns the current D-latch (carry) state.
func (sa *SenseAmp) Latch() bool { return sa.latch }

// SetLatch loads the D-latch, e.g. to clear carry before an addition.
func (sa *SenseAmp) SetLatch(v bool) { sa.latch = v }

// DetectorOutputs evaluates the two threshold detectors and the XOR gate for
// a detector input voltage vin (ideally n·Vdd/2 for n of two cells storing
// '1'). It returns (out1, out2, out3) = (NOR2, NAND2, XOR2) per Fig. 2b:
// the low-Vs inverter outputs '1' only below Vdd/4 (NOR), the high-Vs
// inverter outputs '1' below 3·Vdd/4 (NAND), and the AND gate with the NOR
// input inverted yields XOR.
func (sa *SenseAmp) DetectorOutputs(vin float64) (nor, nand, xor bool) {
	nor = sa.LowVs.Logic(vin)
	nand = sa.HighVs.Logic(vin)
	xor = nand && !nor
	return nor, nand, xor
}

// SenseXNOR performs the single-cycle two-row-activation XNOR2 between
// stored bits di and dj. It returns the value driven onto BL (XNOR2) and
// BLbar (XOR2). The detector input follows the idealised capacitive divider
// Vi = n·Vdd/C with C = 2 unit capacitors.
func (sa *SenseAmp) SenseXNOR(di, dj bool) (xnor, xor bool) {
	n := b2i(di) + b2i(dj)
	_, _, x := sa.DetectorOutputs(IdealShare(n, 2))
	return !x, x
}

// SenseCarry performs the triple-row-activation majority of (a, b, cin) and
// latches the result. The regular SA pair thresholds the three-cell charge
// share at Vdd/2, which resolves MAJ3. The latched carry is returned.
func (sa *SenseAmp) SenseCarry(a, b, cin bool) bool {
	n := b2i(a) + b2i(b) + b2i(cin)
	vin := IdealShare(n, 3)
	carry := !sa.Normal.Logic(vin) // inverter output low ⇒ input above Vdd/2 ⇒ majority '1'
	sa.latch = carry
	return carry
}

// SenseSum produces Sum = a XOR b XOR latchedCarry using the add-on XOR gate
// fed by the two-row XOR2 result and the previously latched carry. The
// carry latch is left untouched: in the paper's two-cycle addition the carry
// for the *next* bit position was latched by the preceding SenseCarry.
func (sa *SenseAmp) SenseSum(a, b bool) bool {
	n := b2i(a) + b2i(b)
	_, _, x := sa.DetectorOutputs(IdealShare(n, 2))
	return x != sa.latch
}

// SenseMemory performs the normal DRAM sense: with a single activated cell
// the bit-line deviates from Vdd/2 towards the stored value and the regular
// pair regenerates it to full swing.
func (sa *SenseAmp) SenseMemory(stored bool) bool {
	v := Vdd/2 + sa.Cells.ShareDeviation(b2i(stored), 1)
	return !sa.Normal.Logic(v)
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
