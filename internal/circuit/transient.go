package circuit

import (
	"fmt"
	"math"
)

// Phase labels the stages of an in-memory operation's transient (Fig. 3a).
type Phase int

const (
	// PhasePrecharge: BL and BLbar held at Vdd/2.
	PhasePrecharge Phase = iota
	// PhaseChargeShare: compute-row word-lines raised, cells share charge
	// with the bit-line.
	PhaseChargeShare
	// PhaseSense: sense amplification; the MUX drives the XOR2/XNOR2
	// result to full swing and the cell capacitors restore accordingly.
	PhaseSense
)

var phaseNames = [...]string{
	PhasePrecharge:   "precharge",
	PhaseChargeShare: "charge-share",
	PhaseSense:       "sense-amplification",
}

// String implements fmt.Stringer.
func (p Phase) String() string {
	if p < 0 || int(p) >= len(phaseNames) {
		return fmt.Sprintf("Phase(%d)", int(p))
	}
	return phaseNames[p]
}

// Sample is one point of a transient waveform.
type Sample struct {
	TimeNS float64
	VBL    float64 // bit-line voltage
	VBLbar float64 // complementary bit-line voltage
	VCell  float64 // compute-row cell capacitor voltage
	Phase  Phase
}

// TransientConfig parameterises the numerical transient simulation.
type TransientConfig struct {
	PrechargeNS   float64 // duration of the precharge hold shown before t0
	ShareNS       float64 // duration of the charge-sharing phase
	SenseNS       float64 // duration of the sense-amplification phase
	StepNS        float64 // integration step
	TauShareNS    float64 // RC constant of cell-to-BL charge sharing
	TauSenseNS    float64 // regeneration time constant of the SA/MUX driver
	TauRestoreNS  float64 // cell restore time constant during sensing
	CellVoltsHigh float64 // stored '1' level (slightly degraded from Vdd)
}

// DefaultTransientConfig returns timing constants representative of a 45 nm
// DRAM sub-array (sub-nanosecond sharing, few-nanosecond regeneration).
func DefaultTransientConfig() TransientConfig {
	return TransientConfig{
		PrechargeNS:   1.0,
		ShareNS:       2.0,
		SenseNS:       5.0,
		StepNS:        0.01,
		TauShareNS:    0.35,
		TauSenseNS:    0.6,
		TauRestoreNS:  1.1,
		CellVoltsHigh: 0.95 * Vdd,
	}
}

// SimulateXNOR2 runs the transient of a two-row-activation XNOR2 between
// stored bits di and dj, mirroring Fig. 3a: the MUX selectors are configured
// to drive BL with the XOR2 result (so BLbar carries XNOR2), and the
// compute-row cell capacitors charge to Vdd when DiDj ∈ {00, 11} or
// discharge to GND when DiDj ∈ {10, 01} during sense amplification.
//
// Note the figure's convention: the *cell* ends at the XNOR2 value (the
// write-back), matching the paper's caption.
func SimulateXNOR2(cfg TransientConfig, di, dj bool) []Sample {
	sa := NewSenseAmp()
	xnor, xor := sa.SenseXNOR(di, dj)

	// Shared bit-line target after the compute rows dump their charge.
	cells := DefaultCellParams()
	n := b2i(di) + b2i(dj)
	vShareTarget := Vdd/2 + cells.ShareDeviation(n, 2)

	// Initial cell voltage: average of the two compute-row cells as an
	// aggregate "cell" trace (the figure plots one representative cell).
	vCellInit := float64(n) / 2 * cfg.CellVoltsHigh

	var out []Sample
	vbl := Vdd / 2
	vblbar := Vdd / 2
	vcell := vCellInit

	record := func(t float64, ph Phase) {
		out = append(out, Sample{TimeNS: t, VBL: vbl, VBLbar: vblbar, VCell: vcell, Phase: ph})
	}

	t := 0.0
	for ; t < cfg.PrechargeNS; t += cfg.StepNS {
		record(t, PhasePrecharge)
	}

	// Charge sharing: BL relaxes exponentially towards the shared level;
	// the cell follows the bit-line (they are connected through the access
	// transistor).
	shareEnd := cfg.PrechargeNS + cfg.ShareNS
	for ; t < shareEnd; t += cfg.StepNS {
		vbl += (vShareTarget - vbl) / cfg.TauShareNS * cfg.StepNS
		vcell += (vbl - vcell) / cfg.TauShareNS * cfg.StepNS
		record(t, PhaseChargeShare)
	}

	// Sense amplification: MUX drives BL to the XOR2 rail and BLbar to the
	// XNOR2 rail; the still-connected cells restore towards the BLbar
	// (write-back) value.
	vblTarget := railVoltage(xor)
	vblbarTarget := railVoltage(xnor)
	senseEnd := shareEnd + cfg.SenseNS
	for ; t < senseEnd; t += cfg.StepNS {
		vbl += (vblTarget - vbl) / cfg.TauSenseNS * cfg.StepNS
		vblbar += (vblbarTarget - vblbar) / cfg.TauSenseNS * cfg.StepNS
		vcell += (vblbar - vcell) / cfg.TauRestoreNS * cfg.StepNS
		record(t, PhaseSense)
	}
	return out
}

func railVoltage(b bool) float64 {
	if b {
		return Vdd
	}
	return 0
}

// FinalCellVoltage returns the last cell-capacitor voltage of a waveform.
func FinalCellVoltage(samples []Sample) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	return samples[len(samples)-1].VCell
}

// FinalBL returns the last bit-line voltage of a waveform.
func FinalBL(samples []Sample) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	return samples[len(samples)-1].VBL
}
