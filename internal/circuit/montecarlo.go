package circuit

import (
	"fmt"

	"pimassembler/internal/parallel"
	"pimassembler/internal/stats"
)

// VariationModel parameterises the Monte-Carlo process-variation study of
// Table I. Each trial perturbs every component the paper lists (Fig. 4):
// the DRAM cell capacitance and stored level, bit-line capacitance, the
// coupling capacitances (WL-BL, BL-BL), and the SA transistor geometry
// (which moves the inverter switching voltages).
//
// Component mismatch is drawn as Gaussian with 3σ equal to the variation
// bound, the standard interpretation of a "±X %" Monte-Carlo corner. On top
// of the linear component mismatch, a compounding term quadratic in the
// variation models the large-variation effects Spectre captures but a small
// signal model misses: incomplete charge transfer within the fixed sharing
// window and access-transistor drive loss, both of which degrade
// multiplicatively as devices leave their nominal operating region.
type VariationModel struct {
	Cells CellParams
	// ComponentScale scales the per-component Gaussian mismatch (1.0 means
	// 3σ = variation bound).
	ComponentScale float64
	// ThresholdScale scales the mismatch of the shifted-VTC inverter
	// switching voltages. The low-/high-Vth devices realising the shifted
	// VTCs sit farther from the process centre and vary more than the
	// nominal transistors, so this exceeds ComponentScale.
	ThresholdScale float64
	// CompoundCoeff is the coefficient of the quadratic input-referred
	// noise term, in units of Vdd per (variation fraction)².
	CompoundCoeff float64
	// CouplingActivity is the fraction of worst-case adjacent-bit-line
	// coupling injected per evaluation.
	CouplingActivity float64
}

// DefaultVariationModel returns the calibrated model. CompoundCoeff is
// calibrated so the TRA failure rates track Table I (0.18 % at ±10 %,
// ≈28 % at ±30 %); the two-row mechanism's lower rates then follow from its
// structurally larger noise margin — TRA senses a charge-share deviation of
// only ≈±87 mV on the loaded bit-line, while the two-row detector senses the
// buffered full-swing capacitive division with ≈±Vdd/4 margins. That margin
// asymmetry is the paper's core reliability argument, not a tuned constant.
func DefaultVariationModel() VariationModel {
	return VariationModel{
		Cells:            DefaultCellParams(),
		ComponentScale:   0.30,
		ThresholdScale:   2.50,
		CompoundCoeff:    2.35,
		CouplingActivity: 0.5,
	}
}

// VariationResult reports the outcome of one Monte-Carlo sweep point.
type VariationResult struct {
	Variation    float64 // e.g. 0.10 for ±10 %
	Trials       int
	TRAErrPct    float64 // triple-row-activation test error, per cent
	TwoRowErrPct float64 // two-row-activation test error, per cent
}

// String implements fmt.Stringer.
func (r VariationResult) String() string {
	return fmt.Sprintf("±%.0f%%: TRA %.2f%%  2-row %.2f%% (%d trials)",
		r.Variation*100, r.TRAErrPct, r.TwoRowErrPct, r.Trials)
}

// mcChunkTrials is the fixed trial count per Monte-Carlo chunk. It depends
// only on the total trial count — never on the worker count — so the chunk
// boundaries, the per-chunk RNG streams, and therefore every sampled trial
// are identical no matter how the chunks are scheduled.
const mcChunkTrials = 500

// mcCounts holds the raw pass/fail counters one chunk of trials produces.
type mcCounts struct {
	traWrong, traTotal, twoWrong, twoTotal int
}

func (c *mcCounts) add(o mcCounts) {
	c.traWrong += o.traWrong
	c.traTotal += o.traTotal
	c.twoWrong += o.twoWrong
	c.twoTotal += o.twoTotal
}

// MonteCarlo runs trials Monte-Carlo trials at the given variation bound and
// returns the per-pattern test-error percentages for both activation
// mechanisms, reproducing one row of Table I.
//
// Trials are sharded into fixed-size chunks executed on the parallel
// fan-out engine. Each chunk draws from its own RNG stream, pre-split from
// rng in chunk order before the fan-out, and the chunk counters are merged
// in chunk order afterwards — so the result (and the state rng is left in)
// is bit-identical for any worker count, including 1.
func (m VariationModel) MonteCarlo(trials int, variation float64, rng *stats.RNG) VariationResult {
	if trials <= 0 {
		panic("circuit: trials must be positive")
	}
	if variation < 0 {
		panic("circuit: variation must be non-negative")
	}
	res := VariationResult{Variation: variation, Trials: trials}
	spans := parallel.Spans(trials, mcChunkTrials)
	rngs := parallel.SplitRNGs(rng, len(spans))
	parts := parallel.Map(len(spans), func(i int) mcCounts {
		return m.mcChunk(spans[i].Len(), variation, rngs[i])
	})
	var c mcCounts
	for _, p := range parts {
		c.add(p)
	}
	res.TRAErrPct = 100 * float64(c.traWrong) / float64(c.traTotal)
	res.TwoRowErrPct = 100 * float64(c.twoWrong) / float64(c.twoTotal)
	return res
}

// mcChunk evaluates one chunk of trials serially on the given RNG stream.
func (m VariationModel) mcChunk(trials int, variation float64, rng *stats.RNG) mcCounts {
	sigmaComp := variation / 3 * m.ComponentScale
	sigmaTh := variation / 3 * m.ThresholdScale
	sigmaCompound := m.CompoundCoeff * variation * variation * Vdd
	// The coupling amplitude is a pure function of the cell parameters —
	// hoisted out of the per-evaluation path (it used to be recomputed for
	// every one of the 12 pattern evaluations per trial).
	couplingAmp := (m.Cells.CCross*m.CouplingActivity + m.Cells.CWBL) /
		(m.Cells.CBL + 2*m.Cells.CCell) * Vdd

	var cnt mcCounts
	for trial := 0; trial < trials; trial++ {
		// Per-trial static mismatch: capacitor and threshold perturbations
		// are fixed per die, evaluated across all input patterns.
		capPerturb := func() float64 { return 1 + rng.Gaussian(0, sigmaComp) }
		c := [3]float64{
			m.Cells.CCell * capPerturb(),
			m.Cells.CCell * capPerturb(),
			m.Cells.CCell * capPerturb(),
		}
		vHigh := [3]float64{
			Vdd * (1 + rng.Gaussian(0, sigmaComp)),
			Vdd * (1 + rng.Gaussian(0, sigmaComp)),
			Vdd * (1 + rng.Gaussian(0, sigmaComp)),
		}
		vsLow := (Vdd / 4) * (1 + rng.Gaussian(0, sigmaTh))
		vsHigh := (3 * Vdd / 4) * (1 + rng.Gaussian(0, sigmaTh))
		vsNormal := (Vdd / 2) * (1 + rng.Gaussian(0, sigmaComp))
		blCap := m.Cells.CBL * capPerturb()

		coupling := func() float64 {
			// Adjacent bit-line swing couples through CCross; word-line
			// rise couples through CWBL. Sign is random per evaluation.
			sign := 1.0
			if rng.Float64() < 0.5 {
				sign = -1
			}
			return sign * couplingAmp * rng.Float64()
		}

		// Two-row activation: four input patterns, XOR2 via the buffered
		// full-swing detector divider (the new SA's key advantage).
		for p := 0; p < 4; p++ {
			d0, d1 := p&1 != 0, p&2 != 0
			num := c[0]*cellV(d0, vHigh[0]) + c[1]*cellV(d1, vHigh[1])
			den := c[0] + c[1]
			vin := num/den + coupling() + rng.Gaussian(0, sigmaCompound)
			nor := vin < vsLow
			nand := vin < vsHigh
			got := nand && !nor
			want := d0 != d1
			if got != want {
				cnt.twoWrong++
			}
			cnt.twoTotal++
		}

		// Triple-row activation: eight input patterns, MAJ3 sensed by the
		// regular SA as a small deviation of the loaded bit-line from the
		// Vdd/2 precharge — the mechanism with the narrow margin (≈87 mV
		// nominal) that Table I shows failing first.
		for p := 0; p < 8; p++ {
			d0, d1, d2 := p&1 != 0, p&2 != 0, p&4 != 0
			volts := []float64{cellV(d0, vHigh[0]), cellV(d1, vHigh[1]), cellV(d2, vHigh[2])}
			vin := ShareVoltage(blCap, c[:], volts) + coupling() + rng.Gaussian(0, sigmaCompound)
			got := vin > vsNormal
			want := b2i(d0)+b2i(d1)+b2i(d2) >= 2
			if got != want {
				cnt.traWrong++
			}
			cnt.traTotal++
		}
	}
	return cnt
}

func cellV(d bool, high float64) float64 {
	if d {
		return high
	}
	return 0
}

// TableIVariations lists the variation sweep points of Table I.
func TableIVariations() []float64 { return []float64{0.05, 0.10, 0.15, 0.20, 0.30} }

// TableI runs the full Table I sweep with the paper's 10 000 trials. The
// variation points run concurrently: their RNG streams are pre-split in
// point order, and the results land in point-indexed slots, so the sweep is
// bit-identical to the old serial loop for any worker count.
func (m VariationModel) TableI(seed uint64) []VariationResult {
	vars := TableIVariations()
	rngs := parallel.SplitRNGs(stats.NewRNG(seed), len(vars))
	return parallel.Map(len(vars), func(i int) VariationResult {
		return m.MonteCarlo(10000, vars[i], rngs[i])
	})
}
