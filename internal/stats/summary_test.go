package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("unexpected summary %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("std %v, want sqrt(2.5)", s.Std)
	}
}

func TestSummarizeEvenMedian(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.Median != 2.5 {
		t.Fatalf("median %v, want 2.5", s.Median)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary should be zero, got %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Std != 0 || s.Median != 7 {
		t.Fatalf("unexpected single-element summary %+v", s)
	}
}

// Property: min <= median <= max and min <= mean <= max for any sample.
func TestSummarizeOrderingProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			// Exclude magnitudes whose running sum could overflow; the
			// invariant under test is ordering, not extended-range safety.
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e150 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Min <= s.Median && s.Median <= s.Max && s.Min <= s.Mean && s.Mean <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeoMean(t *testing.T) {
	got := GeoMean([]float64{1, 4})
	if math.Abs(got-2) > 1e-12 {
		t.Fatalf("GeoMean(1,4) = %v, want 2", got)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("GeoMean(nil) should be 0")
	}
}

func TestGeoMeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("GeoMean with zero did not panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 100} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("under=%d over=%d", h.Under, h.Over)
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Fatalf("bin0=%d, want 2", h.Counts[0])
	}
	if h.Counts[1] != 1 || h.Counts[4] != 1 {
		t.Fatalf("bins %v", h.Counts)
	}
	if h.Total() != 7 {
		t.Fatalf("total %d, want 7", h.Total())
	}
	if c := h.BinCenter(0); c != 1 {
		t.Fatalf("bin 0 center %v, want 1", c)
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(5, 5, 3)
}
