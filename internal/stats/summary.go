package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics for a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes descriptive statistics over xs. It returns a zero
// Summary for an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g med=%.4g max=%.4g",
		s.N, s.Mean, s.Std, s.Min, s.Median, s.Max)
}

// GeoMean returns the geometric mean of xs. All values must be positive;
// it returns 0 for an empty slice and panics on non-positive values, since a
// non-positive speedup in a geometric mean is always a caller bug.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var acc float64
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeoMean of non-positive value %v", x))
		}
		acc += math.Log(x)
	}
	return math.Exp(acc / float64(len(xs)))
}

// Histogram is a fixed-width-bin histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi   float64
	Counts   []int
	Under    int // samples below Lo
	Over     int // samples at or above Hi
	binWidth float64
}

// NewHistogram creates a histogram with bins equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{
		Lo:       lo,
		Hi:       hi,
		Counts:   make([]int, bins),
		binWidth: (hi - lo) / float64(bins),
	}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		h.Counts[int((x-h.Lo)/h.binWidth)]++
	}
}

// Total returns the number of recorded samples, including out-of-range ones.
func (h *Histogram) Total() int {
	t := h.Under + h.Over
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.binWidth
}
