package stats

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(12345)
	b := NewRNG(12345)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: %d != %d for identical seeds", i, got, want)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds produced %d identical draws out of 100", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams collided %d/100 times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(99)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(99)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v deviates from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(5)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) returned %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(31)
	const n = 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sq += x * x
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %v deviates from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance %v deviates from 1", variance)
	}
}

func TestGaussianScaling(t *testing.T) {
	r := NewRNG(8)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Gaussian(10, 2)
	}
	if mean := sum / n; math.Abs(mean-10) > 0.05 {
		t.Fatalf("Gaussian(10,2) mean %v", mean)
	}
}

func TestUniformRange(t *testing.T) {
	r := NewRNG(4)
	for i := 0; i < 10000; i++ {
		x := r.Uniform(-3, 5)
		if x < -3 || x >= 5 {
			t.Fatalf("Uniform(-3,5) returned %v", x)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(11)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

// TestNormFloat64TailFractions checks the ziggurat sampler's distribution
// shape beyond the first two moments: the mass outside ±1σ/±2σ/±3σ must
// match the normal law, and the sign must be symmetric. A ziggurat with a
// mis-built table typically passes a moments test but fails the 3σ tail.
func TestNormFloat64TailFractions(t *testing.T) {
	rng := NewRNG(77)
	const n = 400000
	var beyond1, beyond2, beyond3, pos int
	for i := 0; i < n; i++ {
		x := rng.NormFloat64()
		a := math.Abs(x)
		if a > 1 {
			beyond1++
		}
		if a > 2 {
			beyond2++
		}
		if a > 3 {
			beyond3++
		}
		if x > 0 {
			pos++
		}
	}
	for _, tc := range []struct {
		got  int
		want float64
		tol  float64
	}{
		{beyond1, 0.31731, 0.005},
		{beyond2, 0.04550, 0.002},
		{beyond3, 0.00270, 0.0005},
		{pos, 0.5, 0.005},
	} {
		frac := float64(tc.got) / n
		if math.Abs(frac-tc.want) > tc.tol {
			t.Fatalf("tail fraction %.5f, want %.5f ± %.4f", frac, tc.want, tc.tol)
		}
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	rng := NewRNG(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += rng.NormFloat64()
	}
	_ = sink
}
