// Package stats provides the deterministic random-number generation and
// summary-statistics utilities shared by the simulators and the evaluation
// harness. Every stochastic process in the repository (genome generation,
// read sampling, Monte-Carlo process variation) draws from this package with
// an explicit seed so that all experiments regenerate byte-identically.
package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256** seeded via splitmix64). It is not safe for concurrent use;
// use Split to derive independent streams for parallel work.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via splitmix64 so that even
// adjacent seeds produce decorrelated streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives an independent generator from the current state. The parent
// advances, so successive Split calls yield distinct streams.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xa0761d6478bd642f)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform float64 in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// NormFloat64 returns a standard normal variate (Box-Muller; one value per
// call, the pair's second value is discarded to keep the state trajectory
// simple and reproducible).
func (r *RNG) NormFloat64() float64 {
	for {
		u1 := r.Float64()
		if u1 <= 1e-300 {
			continue
		}
		u2 := r.Float64()
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}

// Gaussian returns a normal variate with the given mean and standard
// deviation.
func (r *RNG) Gaussian(mean, sigma float64) float64 {
	return mean + sigma*r.NormFloat64()
}

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
