// Package stats provides the deterministic random-number generation and
// summary-statistics utilities shared by the simulators and the evaluation
// harness. Every stochastic process in the repository (genome generation,
// read sampling, Monte-Carlo process variation) draws from this package with
// an explicit seed so that all experiments regenerate byte-identically.
package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256** seeded via splitmix64). It is not safe for concurrent use;
// use Split to derive independent streams for parallel work.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via splitmix64 so that even
// adjacent seeds produce decorrelated streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives an independent generator from the current state. The parent
// advances, so successive Split calls yield distinct streams.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xa0761d6478bd642f)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform float64 in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Ziggurat tables for NormFloat64 (Marsaglia–Tsang, 128 layers), computed
// once at init rather than pasted as literals. zigRN is the start of the
// right tail; each layer (and the tail) has area 9.91256303526217e-3.
const (
	zigRN = 3.442619855899
	zigM1 = 1 << 31
)

var (
	zigKN [128]uint32  // acceptance thresholds on the raw 32-bit draw
	zigWN [128]float64 // layer widths: x = j * zigWN[i]
	zigFN [128]float64 // f(x) at the layer boundaries
)

func init() {
	const vn = 9.91256303526217e-3
	dn, tn := zigRN, zigRN
	q := vn / math.Exp(-0.5*dn*dn)
	zigKN[0] = uint32(dn / q * zigM1)
	zigKN[1] = 0
	zigWN[0] = q / zigM1
	zigWN[127] = dn / zigM1
	zigFN[0] = 1
	zigFN[127] = math.Exp(-0.5 * dn * dn)
	for i := 126; i >= 1; i-- {
		dn = math.Sqrt(-2 * math.Log(vn/dn+math.Exp(-0.5*dn*dn)))
		zigKN[i+1] = uint32(dn / tn * zigM1)
		tn = dn
		zigFN[i] = math.Exp(-0.5 * dn * dn)
		zigWN[i] = dn / zigM1
	}
}

// NormFloat64 returns a standard normal variate via the 128-layer ziggurat.
// ~98.8 % of calls consume one Uint64 and cost a multiply and two compares;
// the transcendental slow path runs only on layer-edge and tail draws. This
// replaced a Box-Muller sampler whose sqrt/log/cos per call dominated the
// Monte-Carlo variation study.
func (r *RNG) NormFloat64() float64 {
	for {
		j := int32(uint32(r.Uint64() >> 32)) // signed 32-bit draw
		i := j & 0x7f
		x := float64(j) * zigWN[i]
		abs := uint32(j)
		if j < 0 {
			abs = uint32(-j)
		}
		if abs < zigKN[i] {
			return x // inside the layer rectangle: accept immediately
		}
		if i == 0 {
			// Tail beyond zigRN: Marsaglia's exponential-rejection sample.
			for {
				x = -math.Log(1-r.Float64()) / zigRN
				y := -math.Log(1 - r.Float64())
				if y+y >= x*x {
					break
				}
			}
			if j > 0 {
				return zigRN + x
			}
			return -(zigRN + x)
		}
		if zigFN[i]+r.Float64()*(zigFN[i-1]-zigFN[i]) < math.Exp(-0.5*x*x) {
			return x
		}
	}
}

// Gaussian returns a normal variate with the given mean and standard
// deviation.
func (r *RNG) Gaussian(mean, sigma float64) float64 {
	return mean + sigma*r.NormFloat64()
}

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
