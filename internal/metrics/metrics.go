// Package metrics computes assembly quality metrics against a known
// reference — the evaluation toolkit the examples and robustness tests use
// to judge contig sets: genome fraction, largest alignment, NGA-style
// statistics, duplication, and a substring-based misassembly check. With a
// synthetic reference genome (this repository's substitute for chr14) exact
// substring containment is the appropriate alignment model.
package metrics

import (
	"fmt"
	"sort"
	"strings"

	"pimassembler/internal/align"
	"pimassembler/internal/debruijn"
	"pimassembler/internal/genome"
)

// Report is the quality summary of a contig set against a reference.
type Report struct {
	Contigs        int
	TotalBases     int
	ReferenceLen   int
	N50            int
	NG50           int // N50 computed against the reference length
	LargestContig  int
	LargestAligned int     // longest contig that is an exact reference substring
	GenomeFraction float64 // fraction of reference positions covered by aligned contigs
	Duplication    float64 // aligned bases / covered reference bases
	Misassembled   int     // contigs that are not reference substrings
	NearMiss       int     // non-exact contigs within the edit tolerance (EvaluateTolerant only)
}

// String implements fmt.Stringer.
func (r Report) String() string {
	return fmt.Sprintf(
		"contigs=%d bases=%d N50=%d NG50=%d largest=%d genome-fraction=%.1f%% dup=%.2f misassembled=%d",
		r.Contigs, r.TotalBases, r.N50, r.NG50, r.LargestContig,
		100*r.GenomeFraction, r.Duplication, r.Misassembled)
}

// Evaluate scores contigs against the reference with exact substring
// alignment (appropriate for clean synthetic references). For runs with
// sequencing errors or injected faults, EvaluateTolerant also recognises
// near-miss contigs.
func Evaluate(contigs []debruijn.Contig, ref *genome.Sequence) Report {
	return evaluate(contigs, ref, -1)
}

// EvaluateTolerant scores contigs like Evaluate but reclassifies non-exact
// contigs whose banded semi-global edit distance to the reference is at
// most maxEditRate × contig length as near-misses instead of
// misassemblies. Near-miss contigs count toward aligned bases but not
// positional coverage (their exact placement is ambiguous). Quadratic in
// contig × reference length — intended for test-scale references.
func EvaluateTolerant(contigs []debruijn.Contig, ref *genome.Sequence, maxEditRate float64) Report {
	if maxEditRate < 0 || maxEditRate >= 1 {
		panic(fmt.Sprintf("metrics: edit rate %v outside [0,1)", maxEditRate))
	}
	return evaluate(contigs, ref, maxEditRate)
}

func evaluate(contigs []debruijn.Contig, ref *genome.Sequence, maxEditRate float64) Report {
	rep := Report{
		Contigs:      len(contigs),
		ReferenceLen: ref.Len(),
		N50:          debruijn.N50(contigs),
		TotalBases:   debruijn.TotalBases(contigs),
	}
	text := ref.String()
	covered := make([]bool, ref.Len())
	var alignedBases int

	lengths := make([]int, 0, len(contigs))
	for _, c := range contigs {
		cl := c.Seq.Len()
		lengths = append(lengths, cl)
		if cl > rep.LargestContig {
			rep.LargestContig = cl
		}
		s := c.Seq.String()
		idx := strings.Index(text, s)
		if idx < 0 {
			if maxEditRate >= 0 {
				maxEdits := int(maxEditRate * float64(cl))
				if align.WithinDistance(c.Seq, ref, maxEdits) {
					rep.NearMiss++
					alignedBases += cl
					continue
				}
			}
			rep.Misassembled++
			continue
		}
		if cl > rep.LargestAligned {
			rep.LargestAligned = cl
		}
		alignedBases += cl
		// Mark every occurrence as covered (repeat contigs legitimately
		// align to several places; coverage counts positions once).
		for at := idx; at >= 0; {
			for i := 0; i < cl; i++ {
				covered[at+i] = true
			}
			next := strings.Index(text[at+1:], s)
			if next < 0 {
				break
			}
			at = at + 1 + next
		}
	}

	coveredCount := 0
	for _, c := range covered {
		if c {
			coveredCount++
		}
	}
	if ref.Len() > 0 {
		rep.GenomeFraction = float64(coveredCount) / float64(ref.Len())
	}
	if coveredCount > 0 {
		rep.Duplication = float64(alignedBases) / float64(coveredCount)
	}

	// NG50: the largest L such that contigs of length >= L sum to at least
	// half the *reference* length.
	sort.Sort(sort.Reverse(sort.IntSlice(lengths)))
	acc := 0
	for _, l := range lengths {
		acc += l
		if 2*acc >= ref.Len() {
			rep.NG50 = l
			break
		}
	}
	return rep
}

// CompareReports returns a short verdict of how b improves (or degrades) on
// a — used by the simplification and fault studies.
func CompareReports(a, b Report) string {
	verdict := func(name string, av, bv float64, higherBetter bool) string {
		switch {
		case av == bv:
			return ""
		case (bv > av) == higherBetter:
			return fmt.Sprintf(" %s improved (%.4g -> %.4g);", name, av, bv)
		default:
			return fmt.Sprintf(" %s degraded (%.4g -> %.4g);", name, av, bv)
		}
	}
	var sb strings.Builder
	sb.WriteString("comparison:")
	sb.WriteString(verdict("N50", float64(a.N50), float64(b.N50), true))
	sb.WriteString(verdict("genome fraction", a.GenomeFraction, b.GenomeFraction, true))
	sb.WriteString(verdict("misassemblies", float64(a.Misassembled), float64(b.Misassembled), false))
	sb.WriteString(verdict("contig count", float64(a.Contigs), float64(b.Contigs), false))
	if sb.String() == "comparison:" {
		return "comparison: identical"
	}
	return strings.TrimSuffix(sb.String(), ";")
}
