package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// LatencySummary aggregates the observations of one named latency series:
// count, total, and the extremes. It is a value snapshot — mutate it only
// through Counters.Observe.
type LatencySummary struct {
	Count int64
	Total time.Duration
	Min   time.Duration
	Max   time.Duration
}

// Mean returns the average observed latency (0 with no observations).
func (l LatencySummary) Mean() time.Duration {
	if l.Count == 0 {
		return 0
	}
	return l.Total / time.Duration(l.Count)
}

// String implements fmt.Stringer.
func (l LatencySummary) String() string {
	return fmt.Sprintf("n=%d mean=%v min=%v max=%v", l.Count, l.Mean(), l.Min, l.Max)
}

// Counters is a small race-safe instrumentation registry: named monotonic
// counters plus named latency series. The job queue (and any other
// subsystem) reports through one; consumers read deterministic snapshots.
// Counter values are deterministic for a deterministic workload; latency
// values are wall-clock and must never feed deterministic output paths.
// The zero value is not usable — construct with NewCounters.
//
// Established counter families (dotted prefixes, underscored for the
// Prometheus exposition):
//
//   - jobs.*    — internal/jobqueue dispatch (done, failed)
//   - spill.*   — internal/shard out-of-core partitioning (files, records,
//     bytes, evictions)
//   - dist.*    — internal/distshard multi-process dispatch (workers,
//     respawns, jobs, retries, results, timeouts, frame.errors)
//   - service.* — the assembly service daemon's admission and lifecycle
type Counters struct {
	mu     sync.Mutex
	counts map[string]int64
	lats   map[string]LatencySummary
}

// NewCounters returns an empty registry.
func NewCounters() *Counters {
	return &Counters{
		counts: make(map[string]int64),
		lats:   make(map[string]LatencySummary),
	}
}

// Add increments the named counter by delta (creating it at zero first).
func (c *Counters) Add(name string, delta int64) {
	c.mu.Lock()
	c.counts[name] += delta
	c.mu.Unlock()
}

// Get returns the named counter's value (0 when never written).
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[name]
}

// Observe folds one duration into the named latency series.
func (c *Counters) Observe(name string, d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	l := c.lats[name]
	if l.Count == 0 || d < l.Min {
		l.Min = d
	}
	if d > l.Max {
		l.Max = d
	}
	l.Count++
	l.Total += d
	c.lats[name] = l
}

// Latency returns a snapshot of the named latency series (zero value when
// never observed).
func (c *Counters) Latency(name string) LatencySummary {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lats[name]
}

// Snapshot returns every counter value, keyed by name.
func (c *Counters) Snapshot() map[string]int64 {
	counts, _ := c.SnapshotAll()
	return counts
}

// LatencySnapshot returns every latency series, keyed by name.
func (c *Counters) LatencySnapshot() map[string]LatencySummary {
	_, lats := c.SnapshotAll()
	return lats
}

// SnapshotAll returns every counter and every latency series from a single
// lock acquisition — one consistent view, so renderers (String, the
// Prometheus exporter) never interleave two reads of a moving registry.
func (c *Counters) SnapshotAll() (map[string]int64, map[string]LatencySummary) {
	c.mu.Lock()
	defer c.mu.Unlock()
	counts := make(map[string]int64, len(c.counts))
	for k, v := range c.counts {
		counts[k] = v
	}
	lats := make(map[string]LatencySummary, len(c.lats))
	for k, v := range c.lats {
		lats[k] = v
	}
	return counts, lats
}

// String renders every counter and latency series, sorted by name, one per
// line — stable for a fixed set of values. It reads through SnapshotAll,
// the same consistent path the Prometheus exporter uses.
func (c *Counters) String() string {
	counts, lats := c.SnapshotAll()
	names := make([]string, 0, len(counts))
	for k := range counts {
		names = append(names, k)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, k := range names {
		fmt.Fprintf(&sb, "%-24s %d\n", k, counts[k])
	}
	lnames := make([]string, 0, len(lats))
	for k := range lats {
		lnames = append(lnames, k)
	}
	sort.Strings(lnames)
	for _, k := range lnames {
		fmt.Fprintf(&sb, "%-24s %s\n", k, lats[k])
	}
	return sb.String()
}
