package metrics

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders one consistent snapshot of c in the Prometheus
// text exposition format (version 0.0.4). Every counter becomes a
// `<namespace>_<name>_total` counter sample; every latency series becomes a
// `<namespace>_<name>_seconds` summary whose quantile 0 / 1 samples carry
// the observed min / max alongside the usual _sum and _count. Metric names
// are sanitised (every run of characters outside [a-zA-Z0-9_] collapses to
// one underscore), and output order is sorted by source name, so the
// rendering is stable for a fixed set of values. Counters and latency
// series come from a single SnapshotAll read — the same path String uses —
// never from two racing lock acquisitions.
func WritePrometheus(w io.Writer, c *Counters, namespace string) error {
	counts, lats := c.SnapshotAll()

	names := make([]string, 0, len(counts))
	for k := range counts {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		name := PrometheusName(namespace, k) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, counts[k]); err != nil {
			return err
		}
	}

	lnames := make([]string, 0, len(lats))
	for k := range lats {
		lnames = append(lnames, k)
	}
	sort.Strings(lnames)
	for _, k := range lnames {
		l := lats[k]
		name := PrometheusName(namespace, k) + "_seconds"
		_, err := fmt.Fprintf(w,
			"# TYPE %s summary\n%s{quantile=\"0\"} %s\n%s{quantile=\"1\"} %s\n%s_sum %s\n%s_count %d\n",
			name,
			name, formatPromValue(l.Min.Seconds()),
			name, formatPromValue(l.Max.Seconds()),
			name, formatPromValue(l.Total.Seconds()),
			name, l.Count)
		if err != nil {
			return err
		}
	}
	return nil
}

// PrometheusName joins namespace and name into a valid Prometheus metric
// name: characters outside [a-zA-Z0-9_] become underscores (so the dotted
// counter names turn into `jobs_done`, `latency_run`, ...), runs collapse,
// and a leading digit gains an underscore prefix.
func PrometheusName(namespace, name string) string {
	full := name
	if namespace != "" {
		full = namespace + "_" + name
	}
	var sb strings.Builder
	lastUnderscore := false
	for _, r := range full {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if !ok {
			r = '_'
		}
		if r == '_' && lastUnderscore {
			continue
		}
		lastUnderscore = r == '_'
		sb.WriteRune(r)
	}
	out := sb.String()
	if out == "" || (out[0] >= '0' && out[0] <= '9') {
		out = "_" + out
	}
	return out
}

// formatPromValue renders a float sample the way Prometheus expects:
// shortest round-trip representation, no exponent surprises for the common
// small-duration values.
func formatPromValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promSampleRE matches one exposition sample line: a metric name, an
// optional label set, and a float value (timestamp suffixes are not
// emitted by this package and are rejected).
var promSampleRE = regexp.MustCompile(
	`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*")*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)

// ParsePrometheus reads a text exposition document and returns its samples
// keyed by `name` or `name{labels}` exactly as written. It is the strict
// checker the service smoke test and the load-test driver use: a malformed
// sample line, an unknown TYPE, or a duplicate sample key is an error.
func ParsePrometheus(r io.Reader) (map[string]float64, error) {
	samples := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), "\r")
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if err := checkPromComment(text); err != nil {
				return nil, fmt.Errorf("metrics: line %d: %w", line, err)
			}
			continue
		}
		m := promSampleRE.FindStringSubmatch(text)
		if m == nil {
			return nil, fmt.Errorf("metrics: line %d: malformed sample %q", line, text)
		}
		key := m[1] + m[2]
		if _, dup := samples[key]; dup {
			return nil, fmt.Errorf("metrics: line %d: duplicate sample %q", line, key)
		}
		v, err := strconv.ParseFloat(m[4], 64)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: bad value in %q: %w", line, text, err)
		}
		samples[key] = v
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("metrics: reading exposition: %w", err)
	}
	return samples, nil
}

// promTypes are the metric types this package emits (gauge covers the
// service-level pending/inflight samples layered on top of the counters).
var promTypes = map[string]bool{"counter": true, "gauge": true, "summary": true, "histogram": true, "untyped": true}

// checkPromComment validates a # HELP / # TYPE line (other comments pass).
func checkPromComment(text string) error {
	fields := strings.Fields(text)
	if len(fields) < 2 || (fields[1] != "TYPE" && fields[1] != "HELP") {
		return nil // free-form comment
	}
	if fields[1] == "TYPE" {
		if len(fields) != 4 {
			return fmt.Errorf("malformed TYPE comment %q", text)
		}
		if !promTypes[fields[3]] {
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
	}
	return nil
}
