package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCountersAddGet(t *testing.T) {
	c := NewCounters()
	if got := c.Get("missing"); got != 0 {
		t.Fatalf("unset counter = %d, want 0", got)
	}
	c.Add("jobs.done", 2)
	c.Add("jobs.done", 3)
	c.Add("jobs.failed", 1)
	if got := c.Get("jobs.done"); got != 5 {
		t.Fatalf("jobs.done = %d, want 5", got)
	}
	snap := c.Snapshot()
	if snap["jobs.done"] != 5 || snap["jobs.failed"] != 1 {
		t.Fatalf("snapshot = %v", snap)
	}
	// Snapshot is a copy, not a view.
	snap["jobs.done"] = 99
	if got := c.Get("jobs.done"); got != 5 {
		t.Fatalf("snapshot aliases live map: jobs.done = %d", got)
	}
}

func TestCountersLatency(t *testing.T) {
	c := NewCounters()
	if l := c.Latency("missing"); l.Count != 0 || l.Mean() != 0 {
		t.Fatalf("unset latency = %+v", l)
	}
	c.Observe("run", 10*time.Millisecond)
	c.Observe("run", 30*time.Millisecond)
	c.Observe("run", 20*time.Millisecond)
	l := c.Latency("run")
	if l.Count != 3 {
		t.Fatalf("count = %d, want 3", l.Count)
	}
	if l.Min != 10*time.Millisecond || l.Max != 30*time.Millisecond {
		t.Fatalf("min/max = %v/%v", l.Min, l.Max)
	}
	if l.Mean() != 20*time.Millisecond {
		t.Fatalf("mean = %v, want 20ms", l.Mean())
	}
}

func TestCountersStringSorted(t *testing.T) {
	c := NewCounters()
	c.Add("b.second", 2)
	c.Add("a.first", 1)
	c.Observe("z.lat", time.Millisecond)
	s := c.String()
	ia, ib := strings.Index(s, "a.first"), strings.Index(s, "b.second")
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("names not sorted in:\n%s", s)
	}
	if !strings.Contains(s, "z.lat") {
		t.Fatalf("latency series missing in:\n%s", s)
	}
}

func TestCountersConcurrent(t *testing.T) {
	c := NewCounters()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Add("n", 1)
				c.Observe("lat", time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := c.Get("n"); got != 8000 {
		t.Fatalf("n = %d, want 8000", got)
	}
	if l := c.Latency("lat"); l.Count != 8000 {
		t.Fatalf("lat count = %d, want 8000", l.Count)
	}
}
