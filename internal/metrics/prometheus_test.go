package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestWritePrometheusRoundTrip(t *testing.T) {
	c := NewCounters()
	c.Add("jobs.done", 3)
	c.Add("jobs.failed", 0)
	c.Add("service.rejected.quota", 7)
	c.Observe("latency.run", 10*time.Millisecond)
	c.Observe("latency.run", 30*time.Millisecond)

	var sb strings.Builder
	if err := WritePrometheus(&sb, c, "pim"); err != nil {
		t.Fatal(err)
	}
	text := sb.String()

	samples, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatalf("rendered exposition does not parse: %v\n%s", err, text)
	}
	want := map[string]float64{
		"pim_jobs_done_total":                   3,
		"pim_jobs_failed_total":                 0,
		"pim_service_rejected_quota_total":      7,
		`pim_latency_run_seconds{quantile="0"}`: 0.01,
		`pim_latency_run_seconds{quantile="1"}`: 0.03,
		"pim_latency_run_seconds_sum":           0.04,
		"pim_latency_run_seconds_count":         2,
	}
	for k, v := range want {
		got, ok := samples[k]
		if !ok {
			t.Errorf("sample %q missing\n%s", k, text)
			continue
		}
		if got != v {
			t.Errorf("sample %q = %v, want %v", k, got, v)
		}
	}
	if len(samples) != len(want) {
		t.Errorf("got %d samples, want %d:\n%s", len(samples), len(want), text)
	}
}

func TestWritePrometheusStableOrder(t *testing.T) {
	c := NewCounters()
	c.Add("b", 2)
	c.Add("a", 1)
	c.Observe("lat.z", time.Millisecond)
	c.Observe("lat.a", time.Millisecond)
	var one, two strings.Builder
	if err := WritePrometheus(&one, c, "pim"); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheus(&two, c, "pim"); err != nil {
		t.Fatal(err)
	}
	if one.String() != two.String() {
		t.Errorf("two renders of the same registry differ:\n%s\n---\n%s", one.String(), two.String())
	}
	if !strings.Contains(one.String(), "pim_a_total 1\n# TYPE pim_b_total counter") {
		t.Errorf("counters not in sorted order:\n%s", one.String())
	}
}

func TestPrometheusName(t *testing.T) {
	cases := []struct{ ns, in, want string }{
		{"pim", "jobs.done", "pim_jobs_done"},
		{"pim", "latency.run", "pim_latency_run"},
		{"", "a..b", "a_b"},
		{"", "9lives", "_9lives"},
		{"", "spill.files", "spill_files"},
		{"ns", "weird name-v2", "ns_weird_name_v2"},
	}
	for _, tc := range cases {
		if got := PrometheusName(tc.ns, tc.in); got != tc.want {
			t.Errorf("PrometheusName(%q, %q) = %q, want %q", tc.ns, tc.in, got, tc.want)
		}
	}
}

func TestParsePrometheusRejectsMalformed(t *testing.T) {
	cases := []string{
		"pim_ok 1\npim_ok 2\n",        // duplicate sample
		"bad metric 1\n",              // space in name
		"pim_x{tenant=\"a} 1\n",       // unterminated label value
		"# TYPE pim_x wat\npim_x 1\n", // unknown type
		"pim_x 1 2 3\n",               // trailing garbage
	}
	for _, doc := range cases {
		if _, err := ParsePrometheus(strings.NewReader(doc)); err == nil {
			t.Errorf("ParsePrometheus accepted malformed doc %q", doc)
		}
	}
}

// TestSnapshotAllConsistent pins that SnapshotAll sees counters and
// latencies from one lock acquisition (both halves present) and that the
// single-map accessors agree with it.
func TestSnapshotAllConsistent(t *testing.T) {
	c := NewCounters()
	c.Add("n", 5)
	c.Observe("l", 2*time.Second)
	counts, lats := c.SnapshotAll()
	if counts["n"] != 5 {
		t.Errorf("counts[n] = %d, want 5", counts["n"])
	}
	if lats["l"].Count != 1 || lats["l"].Total != 2*time.Second {
		t.Errorf("lats[l] = %+v, want one 2s observation", lats["l"])
	}
	if got := c.Snapshot()["n"]; got != 5 {
		t.Errorf("Snapshot[n] = %d, want 5", got)
	}
	if got := c.LatencySnapshot()["l"]; got != lats["l"] {
		t.Errorf("LatencySnapshot[l] = %+v, want %+v", got, lats["l"])
	}
}
