package metrics

import (
	"strings"
	"testing"

	"pimassembler/internal/assembly"
	"pimassembler/internal/debruijn"
	"pimassembler/internal/genome"
	"pimassembler/internal/stats"
)

func contigOf(s *genome.Sequence) debruijn.Contig {
	return debruijn.Contig{Seq: s, EdgeCount: s.Len(), MeanCoverage: 1}
}

func TestPerfectAssembly(t *testing.T) {
	rng := stats.NewRNG(1)
	ref := genome.GenerateGenome(1000, rng)
	rep := Evaluate([]debruijn.Contig{contigOf(ref)}, ref)
	if rep.GenomeFraction != 1 {
		t.Fatalf("genome fraction %v, want 1", rep.GenomeFraction)
	}
	if rep.Misassembled != 0 || rep.Duplication != 1 {
		t.Fatalf("unexpected report %+v", rep)
	}
	if rep.N50 != 1000 || rep.NG50 != 1000 || rep.LargestAligned != 1000 {
		t.Fatalf("length stats wrong: %+v", rep)
	}
}

func TestFragmentedAssembly(t *testing.T) {
	rng := stats.NewRNG(2)
	ref := genome.GenerateGenome(1000, rng)
	contigs := []debruijn.Contig{
		contigOf(ref.Subsequence(0, 600)),
		contigOf(ref.Subsequence(650, 300)),
	}
	rep := Evaluate(contigs, ref)
	if rep.GenomeFraction < 0.89 || rep.GenomeFraction > 0.91 {
		t.Fatalf("genome fraction %v, want 0.90", rep.GenomeFraction)
	}
	if rep.Misassembled != 0 {
		t.Fatal("exact substrings flagged misassembled")
	}
	if rep.NG50 != 600 {
		t.Fatalf("NG50 %d, want 600", rep.NG50)
	}
}

func TestMisassemblyDetected(t *testing.T) {
	rng := stats.NewRNG(3)
	ref := genome.GenerateGenome(500, rng)
	// A chimeric contig: two distant pieces joined.
	chimera := ref.Subsequence(0, 100).Append(ref.Subsequence(300, 100))
	rep := Evaluate([]debruijn.Contig{contigOf(chimera)}, ref)
	if rep.Misassembled != 1 {
		t.Fatalf("chimera not flagged: %+v", rep)
	}
	if rep.GenomeFraction != 0 {
		t.Fatal("misassembled contig must not count as coverage")
	}
}

func TestDuplicationCounted(t *testing.T) {
	rng := stats.NewRNG(4)
	ref := genome.GenerateGenome(400, rng)
	piece := ref.Subsequence(50, 200)
	rep := Evaluate([]debruijn.Contig{contigOf(piece), contigOf(piece)}, ref)
	if rep.Duplication != 2 {
		t.Fatalf("duplication %v, want 2", rep.Duplication)
	}
}

func TestRepeatContigCoversAllOccurrences(t *testing.T) {
	// Reference = X + Y + X: a contig equal to X covers both copies.
	rng := stats.NewRNG(5)
	x := genome.GenerateGenome(120, rng)
	y := genome.GenerateGenome(200, rng)
	ref := x.Append(y).Append(x)
	rep := Evaluate([]debruijn.Contig{contigOf(x)}, ref)
	wantFrac := float64(2*x.Len()) / float64(ref.Len())
	if rep.GenomeFraction < wantFrac-0.01 {
		t.Fatalf("genome fraction %v, want >= %v (both repeat copies)", rep.GenomeFraction, wantFrac)
	}
}

func TestEndToEndAssemblyQuality(t *testing.T) {
	rng := stats.NewRNG(6)
	ref := genome.GenerateGenome(5000, rng)
	reads := genome.NewReadSampler(ref, 101, 0, rng).Sample(2000)
	res, err := assembly.Assemble(reads, assembly.Options{K: 21})
	if err != nil {
		t.Fatal(err)
	}
	rep := Evaluate(res.Contigs, ref)
	if rep.GenomeFraction < 0.95 {
		t.Fatalf("clean 40x assembly covers only %.1f%%", 100*rep.GenomeFraction)
	}
	if rep.Misassembled > 0 {
		t.Fatalf("%d misassemblies on clean reads", rep.Misassembled)
	}
}

func TestSimplificationImprovesMetrics(t *testing.T) {
	rng := stats.NewRNG(7)
	ref := genome.GenerateGenome(3000, rng)
	reads := genome.NewReadSampler(ref, 80, 0.004, rng).Sample(1500)
	noisy, err := assembly.Assemble(reads, assembly.Options{K: 15})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := assembly.Assemble(reads, assembly.Options{K: 15, MinCount: 3, Simplify: true})
	if err != nil {
		t.Fatal(err)
	}
	repNoisy := Evaluate(noisy.Contigs, ref)
	repClean := Evaluate(clean.Contigs, ref)
	if repClean.N50 <= repNoisy.N50 {
		t.Fatalf("simplification did not improve N50: %d vs %d", repClean.N50, repNoisy.N50)
	}
	if repClean.Contigs >= repNoisy.Contigs {
		t.Fatalf("simplification did not reduce fragmentation: %d vs %d",
			repClean.Contigs, repNoisy.Contigs)
	}
	verdict := CompareReports(repNoisy, repClean)
	if !strings.Contains(verdict, "N50 improved") {
		t.Fatalf("verdict missing N50 improvement: %s", verdict)
	}
}

func TestCompareReportsIdentical(t *testing.T) {
	r := Report{N50: 5, GenomeFraction: 0.5}
	if got := CompareReports(r, r); got != "comparison: identical" {
		t.Fatalf("got %q", got)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	rng := stats.NewRNG(8)
	ref := genome.GenerateGenome(100, rng)
	rep := Evaluate(nil, ref)
	if rep.Contigs != 0 || rep.GenomeFraction != 0 || rep.N50 != 0 {
		t.Fatalf("empty evaluation %+v", rep)
	}
}

func TestEvaluateTolerantNearMiss(t *testing.T) {
	rng := stats.NewRNG(20)
	ref := genome.GenerateGenome(800, rng)
	// A contig with one substitution: not an exact substring, but within a
	// 2% edit tolerance.
	c := ref.Subsequence(100, 200)
	c.SetBase(50, genome.Base((int(c.Base(50))+1)%4))
	rep := Evaluate([]debruijn.Contig{contigOf(c)}, ref)
	if rep.Misassembled != 1 {
		t.Fatal("exact evaluation must flag the edited contig")
	}
	tol := EvaluateTolerant([]debruijn.Contig{contigOf(c)}, ref, 0.02)
	if tol.NearMiss != 1 || tol.Misassembled != 0 {
		t.Fatalf("tolerant evaluation: %+v", tol)
	}
	// A genuinely chimeric contig stays misassembled even under tolerance.
	chimera := ref.Subsequence(0, 100).Append(ref.Subsequence(500, 100))
	tol2 := EvaluateTolerant([]debruijn.Contig{contigOf(chimera)}, ref, 0.02)
	if tol2.Misassembled != 1 || tol2.NearMiss != 0 {
		t.Fatalf("chimera misclassified: %+v", tol2)
	}
}

func TestEvaluateTolerantPanics(t *testing.T) {
	rng := stats.NewRNG(21)
	ref := genome.GenerateGenome(100, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EvaluateTolerant(nil, ref, 1.5)
}
