package bitvec

import (
	"testing"
	"testing/quick"

	"pimassembler/internal/stats"
)

func randomVec(rng *stats.RNG, n int) *Vector {
	v := New(n)
	for i := 0; i < n; i++ {
		v.Set(i, rng.Float64() < 0.5)
	}
	return v
}

func TestNewZeroed(t *testing.T) {
	v := New(130)
	if v.Len() != 130 {
		t.Fatalf("len %d", v.Len())
	}
	if v.AnySet() {
		t.Fatal("new vector has set bits")
	}
}

func TestNewPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0)
}

func TestSetGet(t *testing.T) {
	v := New(200)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 199} {
		v.Set(i, true)
		if !v.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
		v.Set(i, false)
		if v.Get(i) {
			t.Fatalf("bit %d not cleared", i)
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	v := New(10)
	for _, i := range []int{-1, 10, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Get(%d) did not panic", i)
				}
			}()
			v.Get(i)
		}()
	}
}

func TestXnorTruthTable(t *testing.T) {
	a := FromBits([]bool{false, false, true, true})
	b := FromBits([]bool{false, true, false, true})
	v := New(4)
	v.Xnor(a, b)
	want := []bool{true, false, false, true}
	for i, w := range want {
		if v.Get(i) != w {
			t.Fatalf("XNOR bit %d = %v, want %v", i, v.Get(i), w)
		}
	}
}

func TestMaj3TruthTable(t *testing.T) {
	a := FromBits([]bool{false, false, false, false, true, true, true, true})
	b := FromBits([]bool{false, false, true, true, false, false, true, true})
	c := FromBits([]bool{false, true, false, true, false, true, false, true})
	v := New(8)
	v.Maj3(a, b, c)
	want := []bool{false, false, false, true, false, true, true, true}
	for i, w := range want {
		if v.Get(i) != w {
			t.Fatalf("MAJ3 bit %d = %v, want %v", i, v.Get(i), w)
		}
	}
}

func TestNotRespectsWidthMask(t *testing.T) {
	v := New(70)
	src := New(70)
	v.Not(src)
	if v.PopCount() != 70 {
		t.Fatalf("NOT of zeros popcount %d, want 70 (tail bits must stay masked)", v.PopCount())
	}
	if !v.AllOnes() {
		t.Fatal("AllOnes false after NOT of zeros")
	}
}

func TestXnorRespectsWidthMask(t *testing.T) {
	a := New(65)
	b := New(65)
	v := New(65)
	v.Xnor(a, b)
	if !v.AllOnes() {
		t.Fatal("XNOR(0,0) must be all ones within width")
	}
	if v.PopCount() != 65 {
		t.Fatalf("popcount %d, want 65", v.PopCount())
	}
}

func TestWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(8).Xnor(New(8), New(9))
}

func TestCloneIndependent(t *testing.T) {
	v := New(64)
	v.Set(3, true)
	c := v.Clone()
	c.Set(5, true)
	if v.Get(5) {
		t.Fatal("clone shares storage with original")
	}
	if !c.Get(3) {
		t.Fatal("clone lost bit 3")
	}
}

func TestFill(t *testing.T) {
	v := New(100)
	v.Fill(true)
	if v.PopCount() != 100 {
		t.Fatalf("fill(true) popcount %d", v.PopCount())
	}
	v.Fill(false)
	if v.AnySet() {
		t.Fatal("fill(false) left bits set")
	}
}

func TestUint64RoundTrip(t *testing.T) {
	v := New(256)
	v.SetUint64(13, 40, 0xABCDE12345)
	if got := v.Uint64(13, 40); got != 0xABCDE12345 {
		t.Fatalf("round trip got %x", got)
	}
	// Neighbouring bits untouched.
	if v.Get(12) || v.Get(53) {
		t.Fatal("SetUint64 disturbed neighbouring bits")
	}
}

func TestEqual(t *testing.T) {
	a := New(33)
	b := New(33)
	if !a.Equal(b) {
		t.Fatal("equal zero vectors reported unequal")
	}
	b.Set(32, true)
	if a.Equal(b) {
		t.Fatal("unequal vectors reported equal")
	}
	if a.Equal(New(34)) {
		t.Fatal("different widths reported equal")
	}
}

func TestString(t *testing.T) {
	v := FromBits([]bool{true, false, true})
	if s := v.String(); s != "101" {
		t.Fatalf("String() = %q", s)
	}
}

// Property: XNOR is commutative and involutive against XOR+NOT.
func TestXnorProperties(t *testing.T) {
	rng := stats.NewRNG(1)
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed ^ rng.Uint64())
		n := 1 + r.Intn(300)
		a, b := randomVec(r, n), randomVec(r, n)
		ab, ba := New(n), New(n)
		ab.Xnor(a, b)
		ba.Xnor(b, a)
		if !ab.Equal(ba) {
			return false
		}
		// XNOR == NOT(XOR)
		x, nx := New(n), New(n)
		x.Xor(a, b)
		nx.Not(x)
		return ab.Equal(nx)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: MAJ3(a,b,0) == AND(a,b) and MAJ3(a,b,1) == OR(a,b) — the Ambit
// identities the PIM controller relies on.
func TestMaj3AmbitIdentities(t *testing.T) {
	rng := stats.NewRNG(2)
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed ^ rng.Uint64())
		n := 1 + r.Intn(300)
		a, b := randomVec(r, n), randomVec(r, n)
		zeros, ones := New(n), New(n)
		ones.Fill(true)
		maj, and, or := New(n), New(n), New(n)
		maj.Maj3(a, b, zeros)
		and.And(a, b)
		if !maj.Equal(and) {
			return false
		}
		maj.Maj3(a, b, ones)
		or.Or(a, b)
		return maj.Equal(or)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: popcount of XOR equals Hamming distance computed bitwise.
func TestPopCountXorHamming(t *testing.T) {
	rng := stats.NewRNG(3)
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed ^ rng.Uint64())
		n := 1 + r.Intn(500)
		a, b := randomVec(r, n), randomVec(r, n)
		x := New(n)
		x.Xor(a, b)
		want := 0
		for i := 0; i < n; i++ {
			if a.Get(i) != b.Get(i) {
				want++
			}
		}
		return x.PopCount() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
