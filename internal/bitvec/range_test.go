package bitvec

import (
	"testing"
	"testing/quick"

	"pimassembler/internal/stats"
)

// naiveCopy is the bit-by-bit loop CopySlice/WriteSlice replace; the range
// primitives must match it for every offset, aligned or not.
func naiveCopy(dst *Vector, dstOff int, src *Vector, srcOff, n int) {
	for i := 0; i < n; i++ {
		dst.Set(dstOff+i, src.Get(srcOff+i))
	}
}

func TestCopySliceMatchesNaive(t *testing.T) {
	rng := stats.NewRNG(21)
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed ^ rng.Uint64())
		srcLen := 1 + r.Intn(400)
		width := 1 + r.Intn(srcLen)
		from := r.Intn(srcLen - width + 1)
		src := randomVec(r, srcLen)
		got := randomVec(r, width) // pre-filled: every bit must be overwritten
		want := New(width)
		naiveCopy(want, 0, src, from, width)
		src.CopySlice(got, from)
		return got.Equal(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWriteSliceMatchesNaive(t *testing.T) {
	rng := stats.NewRNG(22)
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed ^ rng.Uint64())
		dstLen := 1 + r.Intn(400)
		width := 1 + r.Intn(dstLen)
		at := r.Intn(dstLen - width + 1)
		src := randomVec(r, width)
		got := randomVec(r, dstLen)
		want := got.Clone()
		naiveCopy(want, at, src, 0, width)
		got.WriteSlice(at, src)
		return got.Equal(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRangeOpsUnalignedBoundaries pins the awkward cases: offsets straddling
// word boundaries, single-bit ranges, and full-word ranges at odd offsets.
func TestRangeOpsUnalignedBoundaries(t *testing.T) {
	src := New(200)
	for i := 0; i < 200; i += 3 {
		src.Set(i, true)
	}
	for _, tc := range []struct{ at, width int }{
		{0, 1}, {63, 1}, {64, 1}, {63, 2}, {1, 64}, {63, 64}, {64, 64},
		{0, 200}, {7, 129}, {127, 73}, {199, 1},
	} {
		if tc.at+tc.width > 200 {
			t.Fatalf("bad case %+v", tc)
		}
		out := New(tc.width)
		src.CopySlice(out, tc.at)
		for i := 0; i < tc.width; i++ {
			if out.Get(i) != src.Get(tc.at+i) {
				t.Fatalf("CopySlice(at=%d,width=%d): bit %d wrong", tc.at, tc.width, i)
			}
		}
		back := New(200)
		back.Fill(true)
		back.WriteSlice(tc.at, out)
		for i := 0; i < 200; i++ {
			want := true
			if i >= tc.at && i < tc.at+tc.width {
				want = src.Get(i)
			}
			if back.Get(i) != want {
				t.Fatalf("WriteSlice(at=%d,width=%d): bit %d wrong", tc.at, tc.width, i)
			}
		}
	}
}

func TestRangeOpsPanicOutOfRange(t *testing.T) {
	v := New(100)
	for _, f := range []func(){
		func() { v.CopySlice(New(101), 0) },
		func() { v.CopySlice(New(10), 91) },
		func() { v.CopySlice(New(10), -1) },
		func() { v.WriteSlice(95, New(10)) },
		func() { v.WriteSlice(-1, New(10)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func BenchmarkCopySliceUnaligned(b *testing.B) {
	src := New(1 << 14)
	for i := 0; i < src.Len(); i += 5 {
		src.Set(i, true)
	}
	dst := New(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.CopySlice(dst, (i*37)%(src.Len()-256))
	}
}

func BenchmarkWriteSliceAligned(b *testing.B) {
	dst := New(1 << 14)
	src := New(256)
	src.Fill(true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.WriteSlice((i%64)*256, src)
	}
}
