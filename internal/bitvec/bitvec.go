// Package bitvec implements fixed-width bit vectors used as the digital
// representation of DRAM rows throughout the functional simulator. A vector
// corresponds to one sub-array row: bit i is the cell on bit-line (column) i.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Vector is a fixed-width bit vector. The zero value is unusable; create
// vectors with New. Width is immutable after creation.
type Vector struct {
	n     int
	words []uint64
}

// New returns an all-zero vector of n bits.
func New(n int) *Vector {
	if n <= 0 {
		panic(fmt.Sprintf("bitvec: non-positive width %d", n))
	}
	return &Vector{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromBits builds a vector from a slice of booleans (bit 0 first).
func FromBits(bits []bool) *Vector {
	v := New(len(bits))
	for i, b := range bits {
		if b {
			v.Set(i, true)
		}
	}
	return v
}

// Len returns the vector width in bits.
func (v *Vector) Len() int { return v.n }

// Get returns bit i.
func (v *Vector) Get(i int) bool {
	v.check(i)
	return v.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Set assigns bit i.
func (v *Vector) Set(i int, b bool) {
	v.check(i)
	if b {
		v.words[i/wordBits] |= 1 << (uint(i) % wordBits)
	} else {
		v.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
	}
}

func (v *Vector) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
}

// Clone returns an independent copy.
func (v *Vector) Clone() *Vector {
	c := New(v.n)
	copy(c.words, v.words)
	return c
}

// CopyFrom overwrites v with src. Widths must match.
func (v *Vector) CopyFrom(src *Vector) {
	v.sameWidth(src)
	copy(v.words, src.words)
}

func (v *Vector) sameWidth(o *Vector) {
	if v.n != o.n {
		panic(fmt.Sprintf("bitvec: width mismatch %d vs %d", v.n, o.n))
	}
}

// CopySlice copies dst.Len() bits of v starting at bit from into dst,
// word-at-a-time — the read half of the range primitives the bulk-operation
// row staging is built on. from need not be word-aligned. v and dst must be
// distinct vectors.
func (v *Vector) CopySlice(dst *Vector, from int) {
	copyRange(dst, 0, v, from, dst.n)
}

// WriteSlice overwrites v[at : at+src.Len()] with src, word-at-a-time — the
// write half of the range primitives, used to reassemble bulk results from
// row-sized chunks. at need not be word-aligned. v and src must be distinct
// vectors.
//
// Concurrency: when both at and src.Len() are multiples of 64, the write
// touches only whole words of v, so concurrent WriteSlice calls on disjoint
// word-aligned ranges of one vector do not race. Unaligned ranges share
// boundary words and must be serialised by the caller.
func (v *Vector) WriteSlice(at int, src *Vector) {
	copyRange(v, at, src, 0, src.n)
}

// copyRange copies n bits from src starting at srcOff into dst starting at
// dstOff. Writes proceed in dst-word-aligned steps: after an initial partial
// step each iteration replaces one whole destination word, gathering the
// source bits from (at most) two source words.
func copyRange(dst *Vector, dstOff int, src *Vector, srcOff, n int) {
	if n < 0 {
		panic(fmt.Sprintf("bitvec: negative range width %d", n))
	}
	if dstOff < 0 || dstOff+n > dst.n {
		panic(fmt.Sprintf("bitvec: destination range [%d,%d) outside [0,%d)", dstOff, dstOff+n, dst.n))
	}
	if srcOff < 0 || srcOff+n > src.n {
		panic(fmt.Sprintf("bitvec: source range [%d,%d) outside [0,%d)", srcOff, srcOff+n, src.n))
	}
	for done := 0; done < n; {
		step := wordBits - (dstOff+done)%wordBits
		if step > n-done {
			step = n - done
		}
		dst.setRangeWord(dstOff+done, step, src.rangeWord(srcOff+done, step))
		done += step
	}
}

// rangeWord extracts nbits (1..64) starting at bit pos as a little-endian
// word. The caller guarantees pos+nbits <= v.n.
func (v *Vector) rangeWord(pos, nbits int) uint64 {
	w, off := pos/wordBits, uint(pos%wordBits)
	x := v.words[w] >> off
	if int(off)+nbits > wordBits {
		x |= v.words[w+1] << (wordBits - off)
	}
	if nbits < wordBits {
		x &= 1<<uint(nbits) - 1
	}
	return x
}

// setRangeWord stores the low nbits (1..64) of x at bit pos, spilling into
// the next word when the range straddles a word boundary. The caller
// guarantees pos+nbits <= v.n. (copyRange's dst-aligned stepping never
// spills; the spill path keeps the primitive generally correct.)
func (v *Vector) setRangeWord(pos, nbits int, x uint64) {
	m := ^uint64(0)
	if nbits < wordBits {
		m = 1<<uint(nbits) - 1
		x &= m
	}
	w, off := pos/wordBits, uint(pos%wordBits)
	v.words[w] = v.words[w]&^(m<<off) | x<<off
	if int(off)+nbits > wordBits {
		rem := uint(int(off) + nbits - wordBits)
		hi := uint64(1)<<rem - 1
		v.words[w+1] = v.words[w+1]&^hi | x>>(wordBits-off)
	}
}

// mask returns the valid-bit mask for the last word.
func (v *Vector) mask(i int) uint64 {
	if i < len(v.words)-1 || v.n%wordBits == 0 {
		return ^uint64(0)
	}
	return (1 << (uint(v.n) % wordBits)) - 1
}

// Xnor sets v = a XNOR b elementwise.
func (v *Vector) Xnor(a, b *Vector) {
	v.sameWidth(a)
	v.sameWidth(b)
	for i := range v.words {
		v.words[i] = ^(a.words[i] ^ b.words[i]) & v.mask(i)
	}
}

// Xor sets v = a XOR b elementwise.
func (v *Vector) Xor(a, b *Vector) {
	v.sameWidth(a)
	v.sameWidth(b)
	for i := range v.words {
		v.words[i] = (a.words[i] ^ b.words[i]) & v.mask(i)
	}
}

// And sets v = a AND b elementwise.
func (v *Vector) And(a, b *Vector) {
	v.sameWidth(a)
	v.sameWidth(b)
	for i := range v.words {
		v.words[i] = a.words[i] & b.words[i]
	}
}

// Or sets v = a OR b elementwise.
func (v *Vector) Or(a, b *Vector) {
	v.sameWidth(a)
	v.sameWidth(b)
	for i := range v.words {
		v.words[i] = a.words[i] | b.words[i]
	}
}

// Not sets v = NOT a elementwise.
func (v *Vector) Not(a *Vector) {
	v.sameWidth(a)
	for i := range v.words {
		v.words[i] = ^a.words[i] & v.mask(i)
	}
}

// Maj3 sets v to the bitwise 3-input majority of a, b, c — the function an
// Ambit-style triple-row activation computes.
func (v *Vector) Maj3(a, b, c *Vector) {
	v.sameWidth(a)
	v.sameWidth(b)
	v.sameWidth(c)
	for i := range v.words {
		v.words[i] = (a.words[i] & b.words[i]) | (a.words[i] & c.words[i]) | (b.words[i] & c.words[i])
	}
}

// Fill sets every bit to b.
func (v *Vector) Fill(b bool) {
	var w uint64
	if b {
		w = ^uint64(0)
	}
	for i := range v.words {
		v.words[i] = w & v.mask(i)
	}
}

// PopCount returns the number of set bits.
func (v *Vector) PopCount() int {
	var c int
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// AllOnes reports whether every bit is set — the DPU's row-wide AND
// reduction used for k-mer match detection.
func (v *Vector) AllOnes() bool { return v.PopCount() == v.n }

// AnySet reports whether any bit is set.
func (v *Vector) AnySet() bool {
	for _, w := range v.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether v and o hold identical bits.
func (v *Vector) Equal(o *Vector) bool {
	if v.n != o.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// SetUint64 stores the low nbits of x starting at bit offset (little-endian
// within the vector).
func (v *Vector) SetUint64(offset, nbits int, x uint64) {
	if nbits < 0 || nbits > 64 {
		panic(fmt.Sprintf("bitvec: nbits %d out of range", nbits))
	}
	for i := 0; i < nbits; i++ {
		v.Set(offset+i, x&(1<<uint(i)) != 0)
	}
}

// Uint64 extracts nbits starting at bit offset as a little-endian integer.
func (v *Vector) Uint64(offset, nbits int) uint64 {
	if nbits < 0 || nbits > 64 {
		panic(fmt.Sprintf("bitvec: nbits %d out of range", nbits))
	}
	var x uint64
	for i := 0; i < nbits; i++ {
		if v.Get(offset + i) {
			x |= 1 << uint(i)
		}
	}
	return x
}

// String renders the vector as a bit string, bit 0 first, for debugging.
func (v *Vector) String() string {
	var sb strings.Builder
	sb.Grow(v.n)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}
