package bitvec

import (
	"testing"

	"pimassembler/internal/stats"
)

func benchVectors(b *testing.B, n int) (*Vector, *Vector, *Vector) {
	b.Helper()
	rng := stats.NewRNG(1)
	a, c := New(n), New(n)
	for i := 0; i < n; i++ {
		a.Set(i, rng.Float64() < 0.5)
		c.Set(i, rng.Float64() < 0.5)
	}
	return a, c, New(n)
}

func BenchmarkXnor256(b *testing.B) {
	x, y, dst := benchVectors(b, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.Xnor(x, y)
	}
}

func BenchmarkMaj3_256(b *testing.B) {
	x, y, dst := benchVectors(b, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.Maj3(x, y, x)
	}
}

func BenchmarkPopCount256(b *testing.B) {
	x, _, _ := benchVectors(b, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if x.PopCount() < 0 {
			b.Fatal("impossible")
		}
	}
}

func BenchmarkAllOnes256(b *testing.B) {
	x := New(256)
	x.Fill(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !x.AllOnes() {
			b.Fatal("impossible")
		}
	}
}
