// Package correct implements k-mer-spectrum read correction — the
// pre-assembly cleanup pass (in the spirit of Velvet/SPAdes pipelines) that
// repairs likely sequencing errors before k-mer counting: a substitution
// error turns up to k covering k-mers from "solid" (frequent) to "weak"
// (rare); replacing the base with the alternative that restores solidity
// removes the error without discarding the read.
package correct

import (
	"fmt"

	"pimassembler/internal/genome"
	"pimassembler/internal/kmer"
)

// Corrector holds the k-mer spectrum and correction policy.
type Corrector struct {
	table kmer.Counter
	k     int
	// SolidThreshold is the minimum count for a k-mer to be trusted.
	SolidThreshold uint32
	// MaxCorrections bounds edits per read (reads needing more are left
	// unchanged — they are better handled by graph simplification).
	MaxCorrections int
}

// New builds a corrector from a counted spectrum — the serial CountTable or
// the hash-partitioned parallel table alike.
func New(table kmer.Counter, solidThreshold uint32, maxCorrections int) *Corrector {
	if solidThreshold == 0 {
		panic("correct: solid threshold must be positive")
	}
	if maxCorrections <= 0 {
		panic(fmt.Sprintf("correct: max corrections %d must be positive", maxCorrections))
	}
	return &Corrector{
		table:          table,
		k:              table.K(),
		SolidThreshold: solidThreshold,
		MaxCorrections: maxCorrections,
	}
}

// Stats summarises a correction run.
type Stats struct {
	Reads        int
	Corrected    int // reads with at least one repair
	Edits        int // total base repairs
	Unrepairable int // reads left with weak k-mers
}

// solid reports whether a k-mer is trusted.
func (c *Corrector) solid(km kmer.Kmer) bool {
	return c.table.Count(km) >= c.SolidThreshold
}

// weakPositions returns the base positions covered by at least one weak
// k-mer (nil when the read is clean or too short).
func (c *Corrector) weakPositions(read *genome.Sequence) []bool {
	if read.Len() < c.k {
		return nil
	}
	weak := make([]bool, read.Len())
	any := false
	pos := 0
	kmer.Iterate(read, c.k, func(km kmer.Kmer) {
		if !c.solid(km) {
			for i := pos; i < pos+c.k; i++ {
				weak[i] = true
			}
			any = true
		}
		pos++
	})
	if !any {
		return nil
	}
	return weak
}

// CorrectRead repairs a single read in place, returning the number of edits
// applied. The heuristic: while weak k-mers remain (and the edit budget
// holds), pick the position where the most weak windows overlap, try the
// three alternative bases, and keep the one that maximises the number of
// solid covering k-mers; stop when no substitution improves.
func (c *Corrector) CorrectRead(read *genome.Sequence) int {
	edits := 0
	for edits < c.MaxCorrections {
		if c.weakPositions(read) == nil {
			return edits
		}
		pos := c.pickPosition(read)
		if pos < 0 {
			return edits
		}
		base := read.Base(pos)
		bestBase, bestScore := base, c.solidAround(read, pos)
		for d := 1; d < 4; d++ {
			candidate := genome.Base((int(base) + d) % 4)
			read.SetBase(pos, candidate)
			if s := c.solidAround(read, pos); s > bestScore {
				bestBase, bestScore = candidate, s
			}
		}
		read.SetBase(pos, bestBase)
		if bestBase == base {
			return edits // no improvement possible at the hot spot
		}
		edits++
	}
	return edits
}

// pickPosition returns the base position covered by the most weak k-mers.
func (c *Corrector) pickPosition(read *genome.Sequence) int {
	votes := make([]int, read.Len())
	pos := 0
	kmer.Iterate(read, c.k, func(km kmer.Kmer) {
		if !c.solid(km) {
			for i := pos; i < pos+c.k; i++ {
				votes[i]++
			}
		}
		pos++
	})
	best, bestV := -1, 0
	for i, v := range votes {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// solidAround counts solid k-mers among the windows covering position pos.
func (c *Corrector) solidAround(read *genome.Sequence, pos int) int {
	lo := pos - c.k + 1
	if lo < 0 {
		lo = 0
	}
	hi := pos
	if hi > read.Len()-c.k {
		hi = read.Len() - c.k
	}
	solid := 0
	for w := lo; w <= hi; w++ {
		if c.solid(kmer.FromSequence(read.Subsequence(w, c.k), c.k)) {
			solid++
		}
	}
	return solid
}

// CorrectAll repairs every read in place and reports statistics.
func (c *Corrector) CorrectAll(reads []*genome.Sequence) Stats {
	st := Stats{Reads: len(reads)}
	for _, r := range reads {
		if e := c.CorrectRead(r); e > 0 {
			st.Corrected++
			st.Edits += e
		}
		if c.weakPositions(r) != nil {
			st.Unrepairable++
		}
	}
	return st
}

// FromReads counts the reads' own spectrum and builds a corrector from it —
// the usual self-correction bootstrap.
func FromReads(reads []*genome.Sequence, k int, solidThreshold uint32, maxCorrections int) *Corrector {
	return FromReadsWorkers(reads, k, solidThreshold, maxCorrections, 1)
}

// FromReadsWorkers is FromReads with the spectrum counted by the parallel
// hash-partitioned counter when workers > 1 (serial CountReads otherwise).
// The spectrum — and therefore every correction decision — is identical
// either way.
func FromReadsWorkers(reads []*genome.Sequence, k int, solidThreshold uint32, maxCorrections, workers int) *Corrector {
	if workers > 1 {
		return New(kmer.CountReadsParallel(reads, k, workers), solidThreshold, maxCorrections)
	}
	return New(kmer.CountReads(reads, k), solidThreshold, maxCorrections)
}
