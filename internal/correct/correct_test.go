package correct

import (
	"testing"

	"pimassembler/internal/genome"
	"pimassembler/internal/kmer"
	"pimassembler/internal/stats"
)

// errReads draws reads with a known per-base error rate.
func errReads(seed uint64, genomeLen, readLen, n int, rate float64) (*genome.Sequence, []*genome.Sequence, []*genome.Sequence) {
	rng := stats.NewRNG(seed)
	ref := genome.GenerateGenome(genomeLen, rng)
	// Sample positions deterministically, derive clean + noisy variants of
	// the same reads for oracle comparison.
	clean := make([]*genome.Sequence, n)
	noisy := make([]*genome.Sequence, n)
	for i := 0; i < n; i++ {
		pos := rng.Intn(genomeLen - readLen + 1)
		clean[i] = ref.Subsequence(pos, readLen)
		noisy[i] = ref.Subsequence(pos, readLen)
		for j := 0; j < readLen; j++ {
			if rng.Float64() < rate {
				noisy[i].SetBase(j, genome.Base((int(noisy[i].Base(j))+1+rng.Intn(3))%4))
			}
		}
	}
	return ref, clean, noisy
}

func TestCorrectSingleError(t *testing.T) {
	_, clean, noisy := errReads(1, 3000, 80, 1200, 0.002)
	c := FromReads(noisy, 15, 3, 4)
	st := c.CorrectAll(noisy)
	if st.Corrected == 0 || st.Edits == 0 {
		t.Fatalf("nothing corrected: %+v", st)
	}
	// Most repaired reads should now equal their clean originals.
	restored, damaged := 0, 0
	for i := range noisy {
		if noisy[i].Equal(clean[i]) {
			restored++
		} else {
			damaged++
		}
	}
	if restored < len(noisy)*95/100 {
		t.Fatalf("only %d/%d reads exact after correction", restored, len(noisy))
	}
}

func TestCorrectLeavesCleanReadsAlone(t *testing.T) {
	rng := stats.NewRNG(2)
	ref := genome.GenerateGenome(2000, rng)
	reads := genome.NewReadSampler(ref, 70, 0, rng).Sample(600)
	originals := make([]string, len(reads))
	for i, r := range reads {
		originals[i] = r.String()
	}
	c := FromReads(reads, 15, 3, 4)
	st := c.CorrectAll(reads)
	if st.Edits != 0 {
		t.Fatalf("clean reads edited: %+v", st)
	}
	for i, r := range reads {
		if r.String() != originals[i] {
			t.Fatalf("read %d mutated", i)
		}
	}
}

func TestCorrectionShrinksSpectrum(t *testing.T) {
	_, _, noisy := errReads(3, 3000, 80, 1200, 0.003)
	k := 15
	before := kmer.CountReads(noisy, k).Len()
	FromReads(noisy, k, 3, 4).CorrectAll(noisy)
	after := kmer.CountReads(noisy, k).Len()
	trueKmers := 3000 - k + 1
	if after >= before {
		t.Fatalf("spectrum did not shrink: %d -> %d", before, after)
	}
	if after > trueKmers*115/100 {
		t.Fatalf("%d distinct k-mers remain vs %d true", after, trueKmers)
	}
}

func TestShortReadUntouched(t *testing.T) {
	c := FromReads([]*genome.Sequence{genome.MustFromString("ACGTACGTACGTACGTACGT")}, 15, 2, 4)
	short := genome.MustFromString("ACGT")
	if c.CorrectRead(short) != 0 {
		t.Fatal("read shorter than k must not be edited")
	}
}

func TestNewPanics(t *testing.T) {
	tbl := kmer.NewCountTable(15, 4)
	for _, f := range []func(){
		func() { New(tbl, 0, 4) },
		func() { New(tbl, 3, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
