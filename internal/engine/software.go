package engine

import (
	"context"

	"pimassembler/internal/assembly"
	"pimassembler/internal/genome"
)

// softwareEngine wraps the plain-Go reference pipeline (assembly.Assemble).
type softwareEngine struct{}

// Name implements Engine.
func (softwareEngine) Name() string { return "software" }

// Describe implements Engine.
func (softwareEngine) Describe() string {
	return "software reference pipeline (plain Go; wall-clock stage timings + measured op counts)"
}

// Assemble implements Engine.
func (e softwareEngine) Assemble(ctx context.Context, src genome.ReadSource, opts Options) (*Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res, err := assembly.AssembleSource(src, opts.Options)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rep := &Report{
		Engine:    e.Name(),
		Family:    FamilySoftware,
		Contigs:   res.Contigs,
		Scaffolds: res.Scaffolds,
		EulerWalk: res.EulerWalk,
		EulerErr:  res.EulerErr,
		Counts:    &res.Counts,
		Timings:   &res.Timings,
	}
	score(rep, opts)
	return rep, nil
}
