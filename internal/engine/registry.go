package engine

import (
	"fmt"
	"strings"
	"sync"

	"pimassembler/internal/platforms"
)

// Registry is a name-keyed engine catalogue. Lookup is case-insensitive
// over canonical names and aliases; listings run in registration order, so
// they are deterministic for a fixed registration sequence.
type Registry struct {
	mu      sync.RWMutex
	order   []string          // canonical names, registration order
	engines map[string]Engine // canonical name -> engine
	alias   map[string]string // lower-cased name/alias -> canonical name
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		engines: make(map[string]Engine),
		alias:   make(map[string]string),
	}
}

// Register adds an engine under its Name plus any aliases. Names and
// aliases share one case-insensitive namespace; a collision is an error.
func (r *Registry) Register(e Engine, aliases ...string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	name := e.Name()
	keys := append([]string{name}, aliases...)
	for _, k := range keys {
		lk := strings.ToLower(k)
		if prev, ok := r.alias[lk]; ok {
			return fmt.Errorf("engine: name %q already registered (engine %q)", k, prev)
		}
	}
	for _, k := range keys {
		r.alias[strings.ToLower(k)] = name
	}
	r.engines[name] = e
	r.order = append(r.order, name)
	return nil
}

// Lookup resolves an engine by name or alias, case-insensitively. The
// unknown-name error lists every valid engine name.
func (r *Registry) Lookup(name string) (Engine, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if canonical, ok := r.alias[strings.ToLower(name)]; ok {
		return r.engines[canonical], nil
	}
	return nil, fmt.Errorf("engine: unknown engine %q (valid: %s)",
		name, strings.Join(r.order, ", "))
}

// Names returns the canonical engine names in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// Engines returns the registered engines in registration order.
func (r *Registry) Engines() []Engine {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Engine, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.engines[name])
	}
	return out
}

// defaultRegistry holds the package-level catalogue: the software reference
// pipeline, the functional PIM simulator, and one analytical estimator per
// evaluated platform, in the paper's comparison order.
var (
	defaultRegistry     *Registry
	defaultRegistryOnce sync.Once
)

// Default returns the package-level registry, building it on first use.
func Default() *Registry {
	defaultRegistryOnce.Do(func() {
		r := NewRegistry()
		mustRegister(r, softwareEngine{})
		mustRegister(r, pimEngine{}, "pim-functional")
		for _, s := range platforms.All() {
			e := newAnalyticalEngine(s)
			// The spec's short paper name (CPU, D1, P-A, ...) doubles as an
			// alias where it differs from the canonical engine name.
			if !strings.EqualFold(s.Name, e.Name()) {
				mustRegister(r, e, s.Name)
			} else {
				mustRegister(r, e)
			}
		}
		defaultRegistry = r
	})
	return defaultRegistry
}

func mustRegister(r *Registry, e Engine, aliases ...string) {
	if err := r.Register(e, aliases...); err != nil {
		panic(err) // default catalogue names are disjoint by construction
	}
}

// Lookup resolves a name against the default registry.
func Lookup(name string) (Engine, error) { return Default().Lookup(name) }

// Names lists the default registry's canonical names in order.
func Names() []string { return Default().Names() }

// Engines lists the default registry's engines in order.
func Engines() []Engine { return Default().Engines() }
