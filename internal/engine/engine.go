// Package engine unifies the repository's three execution paths — the
// software reference pipeline, the functional PIM simulator, and the
// per-platform analytical estimators — behind one pluggable interface and a
// name-keyed registry. Any assembly workload can run on any engine by name,
// apples-to-apples: every engine consumes the same reads and Options and
// produces the same Report shape, with the fields an engine family cannot
// populate left nil. The registry is the seam the ROADMAP's scaling work
// (job queues, sharded multi-engine runs, per-engine cost-model caching)
// plugs into; see DESIGN.md §10.
package engine

import (
	"context"

	"pimassembler/internal/assembly"
	"pimassembler/internal/core"
	"pimassembler/internal/debruijn"
	"pimassembler/internal/genome"
	"pimassembler/internal/kmer"
	"pimassembler/internal/metrics"
	"pimassembler/internal/perfmodel"
)

// Family is the engine implementation class; it determines which Report
// fields an engine promises to populate (see the Report field matrix in
// DESIGN.md §10).
type Family int

const (
	// FamilySoftware is the plain-Go reference pipeline: contigs plus
	// wall-clock stage timings and measured operation counts.
	FamilySoftware Family = iota
	// FamilyFunctional is the bit-accurate PIM simulator: contigs plus the
	// recorded command stream's histogram, makespan, and energy.
	FamilyFunctional
	// FamilyAnalytical is a platform cost model: it measures the workload's
	// operation counts with the reference pipeline (or takes them directly
	// via Options.Counts) and prices them through internal/perfmodel.
	FamilyAnalytical
)

var familyNames = [...]string{
	FamilySoftware:   "software",
	FamilyFunctional: "functional",
	FamilyAnalytical: "analytical",
}

// String implements fmt.Stringer.
func (f Family) String() string {
	if int(f) < len(familyNames) {
		return familyNames[f]
	}
	return "unknown"
}

// Options configures one engine run. The embedded assembly.Options carries
// the pipeline parameters every family understands; the remaining fields
// are engine-layer concerns.
type Options struct {
	assembly.Options

	// Subarrays bounds the hash-table spread of the functional PIM engine
	// (0 means the 16-sub-array test-scale default; the analytical engines
	// cover full scale). Other families ignore it.
	Subarrays int

	// Ref optionally provides the reference genome; when set, engines fill
	// Report.Quality with the contigs scored against it.
	Ref *genome.Sequence

	// Counts optionally provides a precomputed operation profile for the
	// analytical engines (e.g. assembly.PaperOpCounts for the full-scale
	// chr14 workload). When set, an analytical engine prices these counts
	// directly — reads may be nil and no contigs are produced. Other
	// families ignore it.
	Counts *assembly.OpCounts
}

// DefaultOptions mirrors assembly.DefaultOptions at the engine layer.
func DefaultOptions() Options {
	return Options{Options: assembly.DefaultOptions(), Subarrays: DefaultSubarrays}
}

// DefaultSubarrays is the functional engine's hash-table spread when
// Options.Subarrays is zero.
const DefaultSubarrays = 16

func (o Options) subarrays() int {
	if o.Subarrays > 0 {
		return o.Subarrays
	}
	return DefaultSubarrays
}

// Report is the unified result of one engine run. Engine and Family are
// always set; Contigs and the assembly fields are set by every family
// except an analytical run priced from Options.Counts alone; the remaining
// blocks are family-specific and nil where an engine cannot produce them:
//
//	Timings    — software family only (wall-clock per stage)
//	Functional — functional family only (command stream accounting)
//	Cost       — analytical family only (modeled per-stage latency/energy)
type Report struct {
	// Engine is the registry name of the engine that produced this report.
	Engine string
	// Family is the producing engine's implementation class.
	Family Family

	// Contigs is the assembled contig set (nil for counts-only analytical
	// runs).
	Contigs []debruijn.Contig
	// Scaffolds is the stage-3 output when Options.Scaffold was set.
	Scaffolds []assembly.Scaffold
	// EulerWalk and EulerErr mirror assembly.Result: the Eulerian node walk
	// when one exists, or the diagnostic reason none was emitted.
	EulerWalk []kmer.Kmer
	EulerErr  error

	// Counts is the workload's operation profile: measured by the software
	// and functional families, echoed from Options.Counts by the
	// analytical family.
	Counts *assembly.OpCounts
	// Quality scores the contigs against Options.Ref (nil without a
	// reference).
	Quality *metrics.Report

	// Timings is the software family's wall-clock stage breakdown.
	Timings *assembly.StageTimings
	// Functional is the functional family's command-stream accounting:
	// serial meter totals, scheduled makespan, per-stage schedules, and the
	// command histogram/energy attribution.
	Functional *core.Summary
	// Cost is the analytical family's modeled per-stage latency/energy and
	// power — exactly perfmodel.AssemblyCost of Counts on the engine's
	// platform spec.
	Cost *perfmodel.StageCost
}

// Engine is one pluggable execution path: resolve it from the registry by
// name and run any workload on it.
type Engine interface {
	// Name is the engine's registry name (stable, lower-case).
	Name() string
	// Describe is a one-line human description for listings.
	Describe() string
	// Assemble runs the workload pulled from src. Slice callers wrap
	// their reads in genome.NewSliceSource; src may be nil for counts-only
	// analytical runs. Cancellation is checked at stage boundaries; a
	// cancelled context returns ctx.Err().
	Assemble(ctx context.Context, src genome.ReadSource, opts Options) (*Report, error)
}

// score fills rep.Quality when a reference was provided.
func score(rep *Report, opts Options) {
	if opts.Ref == nil || rep.Contigs == nil {
		return
	}
	q := metrics.Evaluate(rep.Contigs, opts.Ref)
	rep.Quality = &q
}
