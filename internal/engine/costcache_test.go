package engine

import (
	"context"
	"reflect"
	"testing"

	"pimassembler/internal/assembly"
	"pimassembler/internal/genome"
	"pimassembler/internal/perfmodel"
	"pimassembler/internal/platforms"
)

// TestCostCacheHits pins the memoization behaviour: the first pricing of a
// (Spec, OpCounts) pair misses, every repeat hits, and a different key
// misses again.
func TestCostCacheHits(t *testing.T) {
	defer SetCostCaching(SetCostCaching(true))
	ResetCostCache()
	defer ResetCostCache()

	counts := assembly.PaperOpCounts(genome.PaperChr14(), 16)
	spec := platforms.PIMAssembler()

	first := cachedAssemblyCost(spec, counts)
	if hits, misses := CostCacheStats(); hits != 0 || misses != 1 {
		t.Fatalf("after first pricing: hits=%d misses=%d, want 0/1", hits, misses)
	}
	for i := 0; i < 3; i++ {
		if got := cachedAssemblyCost(spec, counts); got != first {
			t.Fatalf("cached cost diverged: %+v vs %+v", got, first)
		}
	}
	if hits, misses := CostCacheStats(); hits != 3 || misses != 1 {
		t.Fatalf("after repeats: hits=%d misses=%d, want 3/1", hits, misses)
	}
	if got, want := first, perfmodel.AssemblyCost(spec, counts); got != want {
		t.Fatalf("cached cost %+v != direct %+v", got, want)
	}

	// A different k is a different key.
	other := assembly.PaperOpCounts(genome.PaperChr14(), 32)
	cachedAssemblyCost(spec, other)
	if hits, misses := CostCacheStats(); hits != 3 || misses != 2 {
		t.Fatalf("after new key: hits=%d misses=%d, want 3/2", hits, misses)
	}
	// So is a different platform with the same counts.
	cachedAssemblyCost(platforms.DRISA3T1C(), counts)
	if hits, misses := CostCacheStats(); hits != 3 || misses != 3 {
		t.Fatalf("after new spec: hits=%d misses=%d, want 3/3", hits, misses)
	}
}

// TestCostCacheReportsIdentical pins that an analytical engine produces
// identical Reports with caching on and off, on both the counts-only and
// the measured-run paths.
func TestCostCacheReportsIdentical(t *testing.T) {
	eng, err := Lookup("drisa-3t1c")
	if err != nil {
		t.Fatal(err)
	}
	counts := assembly.PaperOpCounts(genome.PaperChr14(), 22)
	_, reads := conformanceWorkload()
	ctx := context.Background()

	run := func(opts Options) *Report {
		t.Helper()
		rep, err := eng.Assemble(ctx, genome.NewSliceSource(reads), opts)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	for name, opts := range map[string]Options{
		"counts-only":  {Counts: &counts},
		"measured-run": {Options: assembly.Options{K: 16}},
	} {
		prev := SetCostCaching(false)
		ResetCostCache()
		uncached := run(opts)
		SetCostCaching(true)
		warm := run(opts) // populates the cache
		cached := run(opts)
		if hits, _ := CostCacheStats(); hits < 1 {
			t.Errorf("%s: expected at least one cache hit", name)
		}
		SetCostCaching(prev)

		for variant, rep := range map[string]*Report{"warm": warm, "cached": cached} {
			if !reflect.DeepEqual(rep, uncached) {
				t.Errorf("%s/%s: Report differs between caching on and off", name, variant)
			}
		}
	}
}

// TestSetCostCachingDisableClears pins that disabling drops cached entries.
func TestSetCostCachingDisableClears(t *testing.T) {
	defer SetCostCaching(SetCostCaching(true))
	ResetCostCache()
	defer ResetCostCache()

	counts := assembly.PaperOpCounts(genome.PaperChr14(), 26)
	spec := platforms.PIMAssembler()
	cachedAssemblyCost(spec, counts)
	SetCostCaching(false)
	SetCostCaching(true)
	ResetCostCache()
	cachedAssemblyCost(spec, counts)
	if hits, misses := CostCacheStats(); hits != 0 || misses != 1 {
		t.Fatalf("cache survived disable: hits=%d misses=%d", hits, misses)
	}
}
