package engine

import (
	"context"
	"fmt"
	"strings"

	"pimassembler/internal/assembly"
	"pimassembler/internal/genome"
	"pimassembler/internal/perfmodel"
	"pimassembler/internal/platforms"
)

// analyticalEngine prices a workload on one platform's analytical model
// (the role the paper's Matlab behavioural simulator plays). The operation
// profile comes either from Options.Counts — full-scale estimates without
// executing anything — or from a measured software reference run, in which
// case the report also carries the real contigs, so "run on the GPU model"
// still assembles the workload.
type analyticalEngine struct {
	spec platforms.Spec
	name string
}

// newAnalyticalEngine wraps one platform spec as an engine.
func newAnalyticalEngine(s platforms.Spec) analyticalEngine {
	return analyticalEngine{spec: s, name: analyticalName(s)}
}

// analyticalName maps a spec's short paper name to the engine's canonical
// registry name.
func analyticalName(s platforms.Spec) string {
	switch s.Name {
	case "P-A":
		return "pim-assembler"
	case "D1":
		return "drisa-1t1c"
	case "D3":
		return "drisa-3t1c"
	default:
		return strings.ToLower(s.Name)
	}
}

// Name implements Engine.
func (e analyticalEngine) Name() string { return e.name }

// Describe implements Engine.
func (e analyticalEngine) Describe() string {
	family := "in-situ PIM"
	if e.spec.Kind == platforms.KindBandwidth {
		family = "bandwidth-bound"
	}
	return fmt.Sprintf("analytical %s model of %s (perfmodel latency/energy over measured or supplied op counts)",
		family, e.spec.Name)
}

// Assemble implements Engine.
func (e analyticalEngine) Assemble(ctx context.Context, src genome.ReadSource, opts Options) (*Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rep := &Report{Engine: e.name, Family: FamilyAnalytical}

	if opts.Counts != nil {
		// Counts-only pricing: no execution, no contigs.
		counts := *opts.Counts
		rep.Counts = &counts
	} else {
		res, err := assembly.AssembleSource(src, opts.Options)
		if err != nil {
			return nil, err
		}
		rep.Contigs = res.Contigs
		rep.Scaffolds = res.Scaffolds
		rep.EulerWalk = res.EulerWalk
		rep.EulerErr = res.EulerErr
		rep.Counts = &res.Counts
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := rep.Counts.Validate(); err != nil {
		return nil, fmt.Errorf("engine %s: %w", e.name, err)
	}
	cost := cachedAssemblyCost(e.spec, *rep.Counts)
	rep.Cost = &cost
	score(rep, opts)
	return rep, nil
}

// EstimateAll prices one operation profile on every registered analytical
// engine, in registry order — the unified replacement for ad-hoc
// per-platform estimate loops.
func EstimateAll(counts assembly.OpCounts) []perfmodel.StageCost {
	var out []perfmodel.StageCost
	for _, e := range Engines() {
		a, ok := e.(analyticalEngine)
		if !ok {
			continue
		}
		out = append(out, cachedAssemblyCost(a.spec, counts))
	}
	return out
}
