package engine

import (
	"context"

	"pimassembler/internal/assembly"
	"pimassembler/internal/core"
	"pimassembler/internal/genome"
)

// pimEngine wraps the functional PIM simulator (assembly.AssemblePIM) over
// a fresh default platform per run, so concurrent engine runs never share
// sub-array state, meters, or command streams.
type pimEngine struct{}

// Name implements Engine.
func (pimEngine) Name() string { return "pim" }

// Describe implements Engine.
func (pimEngine) Describe() string {
	return "functional PIM simulator (bit-accurate sub-arrays; command histogram, makespan, energy)"
}

// Assemble implements Engine.
func (e pimEngine) Assemble(ctx context.Context, src genome.ReadSource, opts Options) (*Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// The simulated sub-array loader addresses reads by bank slot, so the
	// functional engine drains the source up front.
	reads, err := genome.ReadAll(src)
	if err != nil {
		return nil, err
	}
	p := core.NewDefaultPlatform()
	res, err := assembly.AssemblePIM(p, reads, opts.Options, opts.subarrays())
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	summary := p.Summarize()
	rep := &Report{
		Engine:     e.Name(),
		Family:     FamilyFunctional,
		Contigs:    res.Contigs,
		Scaffolds:  res.Scaffolds,
		EulerWalk:  res.EulerWalk,
		EulerErr:   res.EulerErr,
		Counts:     &res.Counts,
		Functional: &summary,
	}
	score(rep, opts)
	return rep, nil
}
