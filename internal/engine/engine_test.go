package engine

import (
	"context"
	"strings"
	"sync"
	"testing"

	"pimassembler/internal/assembly"
	"pimassembler/internal/genome"
	"pimassembler/internal/perfmodel"
	"pimassembler/internal/platforms"
	"pimassembler/internal/stats"
)

// conformanceWorkload is the shared synthetic read set the conformance
// suite runs every registered engine on.
func conformanceWorkload() (*genome.Sequence, []*genome.Sequence) {
	rng := stats.NewRNG(0xE16)
	ref := genome.GenerateGenome(2_000, rng)
	reads := genome.NewReadSampler(ref, 101, 0, rng).Sample(150)
	return ref, reads
}

func conformanceOptions(ref *genome.Sequence) Options {
	return Options{Options: assembly.Options{K: 16}, Subarrays: 16, Ref: ref}
}

// wantNames is the default catalogue in its fixed registration order:
// software, pim, then the seven analytical platforms in the paper's
// comparison order.
var wantNames = []string{
	"software", "pim",
	"cpu", "gpu", "hmc", "ambit", "drisa-1t1c", "drisa-3t1c", "pim-assembler",
}

func TestDefaultRegistryNamesDeterministic(t *testing.T) {
	got := Names()
	if len(got) != len(wantNames) {
		t.Fatalf("registry has %d engines %v, want %d", len(got), got, len(wantNames))
	}
	for i, name := range wantNames {
		if got[i] != name {
			t.Fatalf("Names()[%d] = %q, want %q (full: %v)", i, got[i], name, got)
		}
	}
	// Listing order must be stable across calls and match Engines().
	again := Names()
	engines := Engines()
	for i := range got {
		if again[i] != got[i] {
			t.Fatalf("Names() not deterministic: %v vs %v", got, again)
		}
		if engines[i].Name() != got[i] {
			t.Fatalf("Engines()[%d].Name() = %q, want %q", i, engines[i].Name(), got[i])
		}
	}
}

func TestLookupCaseInsensitiveAndAliases(t *testing.T) {
	for query, want := range map[string]string{
		"SOFTWARE":       "software",
		"Pim":            "pim",
		"pim-functional": "pim",
		"GPU":            "gpu",
		"DRISA-3T1C":     "drisa-3t1c",
		"d3":             "drisa-3t1c",
		"D1":             "drisa-1t1c",
		"P-A":            "pim-assembler",
		"hmc":            "hmc",
	} {
		e, err := Lookup(query)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", query, err)
		}
		if e.Name() != want {
			t.Errorf("Lookup(%q) = %q, want %q", query, e.Name(), want)
		}
	}
}

func TestUnknownEngineErrorListsValidNames(t *testing.T) {
	_, err := Lookup("warp-drive")
	if err == nil {
		t.Fatal("Lookup of unknown engine succeeded")
	}
	for _, name := range wantNames {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("unknown-engine error %q does not list %q", err, name)
		}
	}
}

func TestRegistryRejectsDuplicates(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(softwareEngine{}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(softwareEngine{}); err == nil {
		t.Error("duplicate canonical name accepted")
	}
	if err := r.Register(pimEngine{}, "Software"); err == nil {
		t.Error("alias colliding with a registered name (case-insensitively) accepted")
	}
}

// TestConformanceAllEngines runs every registered engine on one synthetic
// read set and checks the contract: a populated Report with valid contigs
// and the fields the engine's family promises.
func TestConformanceAllEngines(t *testing.T) {
	ref, reads := conformanceWorkload()
	opts := conformanceOptions(ref)
	ctx := context.Background()

	for _, e := range Engines() {
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			rep, err := e.Assemble(ctx, genome.NewSliceSource(reads), opts)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Engine != e.Name() {
				t.Errorf("Report.Engine = %q, want %q", rep.Engine, e.Name())
			}
			if e.Describe() == "" {
				t.Error("empty Describe()")
			}
			if len(rep.Contigs) == 0 {
				t.Fatal("no contigs")
			}
			for i, c := range rep.Contigs {
				if c.Seq.Len() < opts.K {
					t.Fatalf("contig %d shorter than k (%d < %d)", i, c.Seq.Len(), opts.K)
				}
			}
			if rep.Counts == nil {
				t.Fatal("Counts not populated")
			}
			if err := rep.Counts.Validate(); err != nil {
				t.Fatalf("invalid Counts: %v", err)
			}
			if rep.Quality == nil {
				t.Fatal("Quality not populated despite Options.Ref")
			}
			if rep.Quality.GenomeFraction < 0.5 {
				t.Errorf("genome fraction %.2f suspiciously low", rep.Quality.GenomeFraction)
			}

			switch rep.Family {
			case FamilySoftware:
				if rep.Timings == nil {
					t.Error("software family must populate Timings")
				}
				if rep.Functional != nil || rep.Cost != nil {
					t.Error("software family must leave Functional and Cost nil")
				}
			case FamilyFunctional:
				fn := rep.Functional
				if fn == nil {
					t.Fatal("functional family must populate Functional")
				}
				if fn.Commands <= 0 || fn.SerialLatencyNS <= 0 || fn.EnergyPJ <= 0 {
					t.Errorf("degenerate functional summary: %+v", fn)
				}
				if int64(fn.Histogram.Commands) != fn.Commands {
					t.Errorf("histogram commands %d != meter commands %d",
						fn.Histogram.Commands, fn.Commands)
				}
				if fn.Makespan.MakespanNS <= 0 || fn.Makespan.MakespanNS > fn.SerialLatencyNS*1.0000001 {
					t.Errorf("makespan %.1f ns outside (0, serial %.1f ns]",
						fn.Makespan.MakespanNS, fn.SerialLatencyNS)
				}
				if len(fn.StageCosts) == 0 || len(fn.Stages) == 0 {
					t.Error("per-stage attribution missing")
				}
			case FamilyAnalytical:
				if rep.Cost == nil {
					t.Fatal("analytical family must populate Cost")
				}
				if rep.Cost.TotalS() <= 0 || rep.Cost.PowerW <= 0 {
					t.Errorf("degenerate cost: %+v", rep.Cost)
				}
				if rep.Timings != nil || rep.Functional != nil {
					t.Error("analytical family must leave Timings and Functional nil")
				}
			default:
				t.Fatalf("unknown family %v", rep.Family)
			}
		})
	}
}

// TestSoftwareAndPIMEnginesEmitIdenticalContigs is the cross-engine
// equivalence half of the conformance contract.
func TestSoftwareAndPIMEnginesEmitIdenticalContigs(t *testing.T) {
	ref, reads := conformanceWorkload()
	opts := conformanceOptions(ref)
	ctx := context.Background()

	sw, err := mustLookup(t, "software").Assemble(ctx, genome.NewSliceSource(reads), opts)
	if err != nil {
		t.Fatal(err)
	}
	pim, err := mustLookup(t, "pim").Assemble(ctx, genome.NewSliceSource(reads), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Contigs) != len(pim.Contigs) {
		t.Fatalf("contig count: software %d, pim %d", len(sw.Contigs), len(pim.Contigs))
	}
	for i := range sw.Contigs {
		if !sw.Contigs[i].Seq.Equal(pim.Contigs[i].Seq) {
			t.Fatalf("contig %d differs between software and pim engines", i)
		}
	}
}

// TestAnalyticalEnginesMatchPerfmodel pins the analytical family to the
// perfmodel figures: pricing the measured counts through the engine must
// reproduce perfmodel.AssemblyCost exactly, for both the measured-run and
// the counts-only paths.
func TestAnalyticalEnginesMatchPerfmodel(t *testing.T) {
	ref, reads := conformanceWorkload()
	opts := conformanceOptions(ref)
	ctx := context.Background()

	sw, err := mustLookup(t, "software").Assemble(ctx, genome.NewSliceSource(reads), opts)
	if err != nil {
		t.Fatal(err)
	}
	counts := *sw.Counts

	for _, spec := range platforms.All() {
		spec := spec
		name := analyticalName(spec)
		t.Run(name, func(t *testing.T) {
			want := perfmodel.AssemblyCost(spec, counts)

			rep, err := mustLookup(t, name).Assemble(ctx, genome.NewSliceSource(reads), opts)
			if err != nil {
				t.Fatal(err)
			}
			if *rep.Cost != want {
				t.Errorf("measured-run cost %+v != perfmodel %+v", *rep.Cost, want)
			}

			only, err := mustLookup(t, name).Assemble(ctx, nil, Options{Counts: &counts})
			if err != nil {
				t.Fatal(err)
			}
			if *only.Cost != want {
				t.Errorf("counts-only cost %+v != perfmodel %+v", *only.Cost, want)
			}
			if only.Contigs != nil {
				t.Error("counts-only run must not fabricate contigs")
			}
		})
	}
}

func TestEstimateAllCoversEveryPlatformInOrder(t *testing.T) {
	_, reads := conformanceWorkload()
	sw, err := mustLookup(t, "software").Assemble(context.Background(), genome.NewSliceSource(reads), Options{Options: assembly.Options{K: 16}})
	if err != nil {
		t.Fatal(err)
	}
	costs := EstimateAll(*sw.Counts)
	specs := platforms.All()
	if len(costs) != len(specs) {
		t.Fatalf("EstimateAll returned %d costs, want %d", len(costs), len(specs))
	}
	for i, c := range costs {
		if c.Platform != specs[i].Name {
			t.Errorf("EstimateAll[%d].Platform = %q, want %q", i, c.Platform, specs[i].Name)
		}
	}
}

func TestEnginesRespectContextCancellation(t *testing.T) {
	_, reads := conformanceWorkload()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, e := range Engines() {
		if _, err := e.Assemble(ctx, genome.NewSliceSource(reads), Options{Options: assembly.Options{K: 16}}); err == nil {
			t.Errorf("engine %s ignored a cancelled context", e.Name())
		}
	}
}

func TestEnginesRejectEmptyInput(t *testing.T) {
	ctx := context.Background()
	for _, e := range Engines() {
		if _, err := e.Assemble(ctx, nil, Options{Options: assembly.Options{K: 16}}); err == nil {
			t.Errorf("engine %s accepted nil reads without counts", e.Name())
		}
	}
}

// TestRegistryConcurrentLookups exercises the registry under the race
// detector: lookups, listings, and registrations from many goroutines.
func TestRegistryConcurrentLookups(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if _, err := Lookup("drisa-3t1c"); err != nil {
					t.Error(err)
					return
				}
				Names()
				Engines()
			}
		}()
	}
	wg.Wait()
}

func mustLookup(t *testing.T, name string) Engine {
	t.Helper()
	e, err := Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return e
}
