package engine

import (
	"sync"

	"pimassembler/internal/assembly"
	"pimassembler/internal/perfmodel"
	"pimassembler/internal/platforms"
)

// The cost cache memoizes perfmodel.AssemblyCost per (Spec, OpCounts)
// behind the analytical engines (ROADMAP: sweep-heavy callers — ksweep,
// Fig. 9/10/11 re-renders, batch manifests — price the same profile on the
// same platform over and over). Both key halves are flat comparable
// structs, so the pair is a valid map key and two equal keys price
// identically by construction; the cached value is returned by value, so
// callers can never mutate a cached entry.
type costKey struct {
	spec   platforms.Spec
	counts assembly.OpCounts
}

var costCache = struct {
	sync.Mutex
	enabled      bool
	entries      map[costKey]perfmodel.StageCost
	hits, misses int64
}{enabled: true, entries: make(map[costKey]perfmodel.StageCost)}

// cachedAssemblyCost is the analytical engines' pricing entry point:
// perfmodel.AssemblyCost with memoization (when enabled).
func cachedAssemblyCost(s platforms.Spec, c assembly.OpCounts) perfmodel.StageCost {
	costCache.Lock()
	if !costCache.enabled {
		costCache.Unlock()
		return perfmodel.AssemblyCost(s, c)
	}
	key := costKey{spec: s, counts: c}
	if cost, ok := costCache.entries[key]; ok {
		costCache.hits++
		costCache.Unlock()
		return cost
	}
	costCache.misses++
	costCache.Unlock()

	// Price outside the lock: AssemblyCost is pure, so a racing duplicate
	// computation is wasted work at worst, never a wrong answer.
	cost := perfmodel.AssemblyCost(s, c)

	costCache.Lock()
	if costCache.enabled {
		costCache.entries[key] = cost
	}
	costCache.Unlock()
	return cost
}

// SetCostCaching toggles the analytical cost cache (on by default) and
// returns the previous setting. Disabling clears the cache, so a
// subsequent enable starts cold — the caching-on/off equivalence test
// relies on this.
func SetCostCaching(on bool) bool {
	costCache.Lock()
	defer costCache.Unlock()
	prev := costCache.enabled
	costCache.enabled = on
	if !on {
		costCache.entries = make(map[costKey]perfmodel.StageCost)
	}
	return prev
}

// ResetCostCache drops every cached entry and zeroes the hit/miss stats.
func ResetCostCache() {
	costCache.Lock()
	defer costCache.Unlock()
	costCache.entries = make(map[costKey]perfmodel.StageCost)
	costCache.hits, costCache.misses = 0, 0
}

// CostCacheStats returns the cumulative hit/miss counts since the last
// ResetCostCache.
func CostCacheStats() (hits, misses int64) {
	costCache.Lock()
	defer costCache.Unlock()
	return costCache.hits, costCache.misses
}
