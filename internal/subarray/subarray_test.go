package subarray

import (
	"testing"

	"pimassembler/internal/bitvec"
	"pimassembler/internal/dram"
	"pimassembler/internal/stats"
)

func newTestSubarray() *Subarray {
	return New(dram.Default(), dram.NewMeter(dram.DefaultTiming(), dram.DefaultEnergy()))
}

func randomRow(rng *stats.RNG, n int) *bitvec.Vector {
	v := bitvec.New(n)
	for i := 0; i < n; i++ {
		v.Set(i, rng.Float64() < 0.5)
	}
	return v
}

func TestLayout(t *testing.T) {
	s := newTestSubarray()
	if s.Rows() != 1024 || s.Cols() != 256 || s.DataRows() != 1016 {
		t.Fatalf("layout %d/%d/%d", s.Rows(), s.Cols(), s.DataRows())
	}
	if s.ComputeRow(0) != 1016 || s.ComputeRow(7) != 1023 {
		t.Fatal("compute rows misplaced")
	}
	if s.IsComputeRow(1015) || !s.IsComputeRow(1016) {
		t.Fatal("IsComputeRow boundary wrong")
	}
}

func TestComputeRowPanics(t *testing.T) {
	s := newTestSubarray()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.ComputeRow(8)
}

func TestWriteRead(t *testing.T) {
	s := newTestSubarray()
	v := randomRow(stats.NewRNG(1), 256)
	s.Write(10, v)
	if !s.Read(10).Equal(v) {
		t.Fatal("read-back mismatch")
	}
	if s.Meter().Counts[dram.CmdWrite] != 1 || s.Meter().Counts[dram.CmdRead] != 1 {
		t.Fatalf("counts %v", s.Meter().Counts)
	}
}

func TestPeekPokeFree(t *testing.T) {
	s := newTestSubarray()
	v := randomRow(stats.NewRNG(2), 256)
	s.Poke(5, v)
	if !s.Peek(5).Equal(v) {
		t.Fatal("poke/peek mismatch")
	}
	if s.Meter().TotalCommands() != 0 {
		t.Fatal("peek/poke must not account commands")
	}
}

func TestRowClone(t *testing.T) {
	s := newTestSubarray()
	v := randomRow(stats.NewRNG(3), 256)
	s.Poke(0, v)
	s.RowClone(0, 100)
	if !s.Peek(100).Equal(v) {
		t.Fatal("RowClone mismatch")
	}
	if s.Meter().Counts[dram.CmdAAPCopy] != 1 {
		t.Fatal("RowClone must cost one copy AAP")
	}
}

func TestTwoRowXNOR(t *testing.T) {
	s := newTestSubarray()
	rng := stats.NewRNG(4)
	a, b := randomRow(rng, 256), randomRow(rng, 256)
	x1, x2 := s.ComputeRow(0), s.ComputeRow(1)
	s.Poke(x1, a)
	s.Poke(x2, b)
	s.TwoRowXNOR(x1, x2, 50)
	want := bitvec.New(256)
	want.Xnor(a, b)
	if !s.Peek(50).Equal(want) {
		t.Fatal("XNOR result wrong")
	}
	// Destructive charge sharing: compute rows restore to the result.
	if !s.Peek(x1).Equal(want) || !s.Peek(x2).Equal(want) {
		t.Fatal("compute rows must restore to the XNOR result (Fig. 3a)")
	}
	if s.Meter().Counts[dram.CmdAAP2] != 1 {
		t.Fatal("XNOR must be a single AAP cycle")
	}
}

func TestTwoRowXNORRejectsDataRows(t *testing.T) {
	s := newTestSubarray()
	defer func() {
		if recover() == nil {
			t.Fatal("two-row activation of a data row must panic: only the MRD multi-activates")
		}
	}()
	s.TwoRowXNOR(10, 11, 50)
}

func TestTwoRowXOR(t *testing.T) {
	s := newTestSubarray()
	rng := stats.NewRNG(5)
	a, b := randomRow(rng, 256), randomRow(rng, 256)
	x1, x2 := s.ComputeRow(0), s.ComputeRow(1)
	s.Poke(x1, a)
	s.Poke(x2, b)
	s.TwoRowXOR(x1, x2, 60)
	want := bitvec.New(256)
	want.Xor(a, b)
	if !s.Peek(60).Equal(want) {
		t.Fatal("XOR result wrong")
	}
}

func TestTRACarry(t *testing.T) {
	s := newTestSubarray()
	rng := stats.NewRNG(6)
	a, b, c := randomRow(rng, 256), randomRow(rng, 256), randomRow(rng, 256)
	x1, x2, x3 := s.ComputeRow(0), s.ComputeRow(1), s.ComputeRow(2)
	s.Poke(x1, a)
	s.Poke(x2, b)
	s.Poke(x3, c)
	s.TRACarry(x1, x2, x3, 70)
	want := bitvec.New(256)
	want.Maj3(a, b, c)
	if !s.Peek(70).Equal(want) {
		t.Fatal("TRA majority wrong")
	}
	if !s.LatchState().Equal(want) {
		t.Fatal("carry not latched")
	}
	if !s.Peek(x1).Equal(want) || !s.Peek(x3).Equal(want) {
		t.Fatal("TRA must restore majority into all three rows")
	}
	if s.Meter().Counts[dram.CmdAAP3] != 1 {
		t.Fatal("TRA must be one 3-source AAP")
	}
}

func TestSumWithLatch(t *testing.T) {
	s := newTestSubarray()
	rng := stats.NewRNG(7)
	a, b, cin := randomRow(rng, 256), randomRow(rng, 256), randomRow(rng, 256)
	x1, x2, x3 := s.ComputeRow(0), s.ComputeRow(1), s.ComputeRow(2)
	// Latch cin via a TRA against itself (MAJ(c,c,c) = c).
	s.Poke(x1, cin)
	s.Poke(x2, cin)
	s.Poke(x3, cin)
	s.TRACarry(x1, x2, x3, 90)
	s.Poke(x1, a)
	s.Poke(x2, b)
	s.SumWithLatch(x1, x2, 80)
	want := bitvec.New(256)
	want.Xor(a, b)
	want.Xor(want.Clone(), cin)
	if !s.Peek(80).Equal(want) {
		t.Fatal("Sum = a XOR b XOR cin failed")
	}
}

func TestXNORConvenienceCostsThreeAAPs(t *testing.T) {
	s := newTestSubarray()
	rng := stats.NewRNG(8)
	a, b := randomRow(rng, 256), randomRow(rng, 256)
	s.Poke(1, a)
	s.Poke(2, b)
	s.XNOR(1, 2, 3)
	want := bitvec.New(256)
	want.Xnor(a, b)
	if !s.Peek(3).Equal(want) {
		t.Fatal("staged XNOR wrong")
	}
	m := s.Meter()
	if m.Counts[dram.CmdAAPCopy] != 2 || m.Counts[dram.CmdAAP2] != 1 {
		t.Fatalf("staged XNOR must cost 2 copies + 1 compute AAP, got %v", m.Counts)
	}
	// Operands in data rows must be preserved.
	if !s.Peek(1).Equal(a) || !s.Peek(2).Equal(b) {
		t.Fatal("staged XNOR clobbered its data-row operands")
	}
}

func TestMatchAllOnes(t *testing.T) {
	s := newTestSubarray()
	ones := bitvec.New(256)
	ones.Fill(true)
	s.Poke(4, ones)
	if !s.MatchAllOnes(4) {
		t.Fatal("all-ones row not matched")
	}
	ones.Set(137, false)
	s.Poke(4, ones)
	if s.MatchAllOnes(4) {
		t.Fatal("row with a zero bit matched")
	}
	if s.Meter().Counts[dram.CmdDPU] != 2 {
		t.Fatal("DPU reduction must be metered")
	}
}

func TestDPUPopCount(t *testing.T) {
	s := newTestSubarray()
	v := bitvec.New(256)
	for i := 0; i < 77; i++ {
		v.Set(i*3%256, true)
	}
	s.Poke(9, v)
	if got := s.DPUPopCount(9); got != v.PopCount() {
		t.Fatalf("popcount %d, want %d", got, v.PopCount())
	}
}

func TestResetLatch(t *testing.T) {
	s := newTestSubarray()
	ones := bitvec.New(256)
	ones.Fill(true)
	x1, x2, x3 := s.ComputeRow(0), s.ComputeRow(1), s.ComputeRow(2)
	s.Poke(x1, ones)
	s.Poke(x2, ones)
	s.Poke(x3, ones)
	s.TRACarry(x1, x2, x3, 90)
	if !s.LatchState().AnySet() {
		t.Fatal("latch should be set")
	}
	s.ResetLatch()
	if s.LatchState().AnySet() {
		t.Fatal("latch should be clear")
	}
}

func TestTwoRowNORAndNAND(t *testing.T) {
	s := newTestSubarray()
	rng := stats.NewRNG(14)
	a, b := randomRow(rng, 256), randomRow(rng, 256)
	x1, x2 := s.ComputeRow(0), s.ComputeRow(1)

	s.Poke(x1, a)
	s.Poke(x2, b)
	s.TwoRowNOR(x1, x2, 30)
	wantNOR := bitvec.New(256)
	or := bitvec.New(256)
	or.Or(a, b)
	wantNOR.Not(or)
	if !s.Peek(30).Equal(wantNOR) {
		t.Fatal("NOR result wrong")
	}

	s.Poke(x1, a)
	s.Poke(x2, b)
	s.TwoRowNAND(x1, x2, 31)
	wantNAND := bitvec.New(256)
	and := bitvec.New(256)
	and.And(a, b)
	wantNAND.Not(and)
	if !s.Peek(31).Equal(wantNAND) {
		t.Fatal("NAND result wrong")
	}
}

// Fig. 2b identity: XOR2 = NAND2 AND NOT(NOR2); the SA's three outputs must
// be mutually consistent on the functional model as well.
func TestDetectorIdentity(t *testing.T) {
	s := newTestSubarray()
	rng := stats.NewRNG(15)
	a, b := randomRow(rng, 256), randomRow(rng, 256)
	x1, x2 := s.ComputeRow(0), s.ComputeRow(1)

	s.Poke(x1, a)
	s.Poke(x2, b)
	s.TwoRowNOR(x1, x2, 40)
	s.Poke(x1, a)
	s.Poke(x2, b)
	s.TwoRowNAND(x1, x2, 41)
	s.Poke(x1, a)
	s.Poke(x2, b)
	s.TwoRowXOR(x1, x2, 42)

	notNor := bitvec.New(256)
	notNor.Not(s.Peek(40))
	expect := bitvec.New(256)
	expect.And(s.Peek(41), notNor)
	if !s.Peek(42).Equal(expect) {
		t.Fatal("XOR != NAND AND NOT(NOR)")
	}
}

func TestXNOREmulatedTRAMatchesNative(t *testing.T) {
	s := newTestSubarray()
	rng := stats.NewRNG(16)
	a, b := randomRow(rng, 256), randomRow(rng, 256)
	s.Poke(0, a)
	s.Poke(1, b)
	s.XNOREmulatedTRA(0, 1, 20)
	want := bitvec.New(256)
	want.Xnor(a, b)
	if !s.Peek(20).Equal(want) {
		t.Fatal("emulated XNOR computes the wrong function")
	}
	// Source rows preserved.
	if !s.Peek(0).Equal(a) || !s.Peek(1).Equal(b) {
		t.Fatal("emulation clobbered its operands")
	}
	// The emulation must cost several times the native op.
	emuCmds := s.Meter().TotalCommands()
	s2 := newTestSubarray()
	s2.Poke(0, a)
	s2.Poke(1, b)
	s2.XNOR(0, 1, 20)
	if emuCmds < 5*s2.Meter().TotalCommands() {
		t.Fatalf("emulation used %d commands vs native %d; cost model implausible",
			emuCmds, s2.Meter().TotalCommands())
	}
}

func TestReadInto(t *testing.T) {
	s := newTestSubarray()
	v := randomRow(stats.NewRNG(17), 256)
	s.Write(5, v)
	dst := bitvec.New(256)
	s.ReadInto(5, dst)
	if !dst.Equal(v) {
		t.Fatal("ReadInto mismatch")
	}
	if !dst.Equal(s.Read(5)) {
		t.Fatal("ReadInto disagrees with Read")
	}
	if got := s.Meter().Counts[dram.CmdRead]; got != 2 {
		t.Fatalf("CmdRead count %d, want 2 (ReadInto must meter like Read)", got)
	}
}

func TestSetMeterSwapsAndRestores(t *testing.T) {
	s := newTestSubarray()
	orig := s.Meter()
	private := dram.NewMeter(dram.DefaultTiming(), dram.DefaultEnergy())
	if prev := s.SetMeter(private); prev != orig {
		t.Fatal("SetMeter did not return the previous meter")
	}
	s.Write(3, randomRow(stats.NewRNG(18), 256))
	if private.Counts[dram.CmdWrite] != 1 || orig.Counts[dram.CmdWrite] != 0 {
		t.Fatal("command metered on the wrong meter after swap")
	}
	s.SetMeter(orig)
	s.Read(3)
	if orig.Counts[dram.CmdRead] != 1 {
		t.Fatal("command not metered on the restored meter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("nil meter accepted")
		}
	}()
	s.SetMeter(nil)
}
