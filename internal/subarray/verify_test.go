package subarray

import (
	"testing"
	"testing/quick"

	"pimassembler/internal/circuit"
	"pimassembler/internal/stats"
)

// These tests tie the digital fast path to the analog model: every bitwise
// function the sub-array computes must agree, bit for bit, with what the
// charge-sharing sense amplifier resolves. This is the repository's
// cross-abstraction invariant (DESIGN.md §4.2).

func TestXNORAgreesWithSenseAmp(t *testing.T) {
	s := newTestSubarray()
	sa := circuit.NewSenseAmp()
	rng := stats.NewRNG(77)
	a, b := randomRow(rng, 256), randomRow(rng, 256)
	x1, x2 := s.ComputeRow(0), s.ComputeRow(1)
	s.Poke(x1, a)
	s.Poke(x2, b)
	s.TwoRowXNOR(x1, x2, 0)
	digital := s.Peek(0)
	for i := 0; i < 256; i++ {
		analog, _ := sa.SenseXNOR(a.Get(i), b.Get(i))
		if digital.Get(i) != analog {
			t.Fatalf("bit %d: digital %v, analog %v for (%v,%v)",
				i, digital.Get(i), analog, a.Get(i), b.Get(i))
		}
	}
}

func TestTRAAgreesWithSenseAmp(t *testing.T) {
	s := newTestSubarray()
	sa := circuit.NewSenseAmp()
	rng := stats.NewRNG(78)
	a, b, c := randomRow(rng, 256), randomRow(rng, 256), randomRow(rng, 256)
	x1, x2, x3 := s.ComputeRow(0), s.ComputeRow(1), s.ComputeRow(2)
	s.Poke(x1, a)
	s.Poke(x2, b)
	s.Poke(x3, c)
	s.TRACarry(x1, x2, x3, 0)
	digital := s.Peek(0)
	for i := 0; i < 256; i++ {
		if analog := sa.SenseCarry(a.Get(i), b.Get(i), c.Get(i)); digital.Get(i) != analog {
			t.Fatalf("bit %d: digital %v, analog %v", i, digital.Get(i), analog)
		}
	}
}

// Property: full-adder semantics of (SumWithLatch after TRACarry) agree with
// the circuit-level SenseSum/SenseCarry pair for every bit.
func TestFullAdderAgreesWithSenseAmp(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		s := newTestSubarray()
		sa := circuit.NewSenseAmp()
		a, b, cin := randomRow(rng, 256), randomRow(rng, 256), randomRow(rng, 256)
		x1, x2, x3 := s.ComputeRow(0), s.ComputeRow(1), s.ComputeRow(2)

		// Latch cin (TRA of the carry row against itself), then Sum.
		s.Poke(x1, cin)
		s.Poke(x2, cin)
		s.Poke(x3, cin)
		s.TRACarry(x1, x2, x3, 1)
		s.Poke(x1, a)
		s.Poke(x2, b)
		s.SumWithLatch(x1, x2, 0)
		sum := s.Peek(0)

		// Carry out.
		s.Poke(x1, a)
		s.Poke(x2, b)
		s.Poke(x3, cin)
		s.TRACarry(x1, x2, x3, 2)
		carry := s.Peek(2)

		for i := 0; i < 256; i++ {
			sa.SetLatch(cin.Get(i))
			wantSum := sa.SenseSum(a.Get(i), b.Get(i))
			wantCarry := sa.SenseCarry(a.Get(i), b.Get(i), cin.Get(i))
			if sum.Get(i) != wantSum || carry.Get(i) != wantCarry {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// The transient simulation's final rails must agree with the functional
// XNOR for all four input combinations — analog waveform and digital model
// tell one story.
func TestTransientAgreesWithFunctionalXNOR(t *testing.T) {
	cfg := circuit.DefaultTransientConfig()
	sa := circuit.NewSenseAmp()
	for p := 0; p < 4; p++ {
		di, dj := p&1 != 0, p&2 != 0
		samples := circuit.SimulateXNOR2(cfg, di, dj)
		xnor, _ := sa.SenseXNOR(di, dj)
		finalCell := circuit.FinalCellVoltage(samples)
		gotBit := finalCell > circuit.Vdd/2
		if gotBit != xnor {
			t.Errorf("DiDj=%v%v: transient cell %.2fV implies %v, functional XNOR %v",
				di, dj, finalCell, gotBit, xnor)
		}
	}
}
