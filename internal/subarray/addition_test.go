package subarray

import (
	"testing"
	"testing/quick"

	"pimassembler/internal/bitvec"
	"pimassembler/internal/dram"
	"pimassembler/internal/stats"
)

// pokePlanar stores the m-bit values vals (one per lane) bit-planar at base.
func pokePlanar(s *Subarray, base, m int, vals []uint64) {
	for bit := 0; bit < m; bit++ {
		row := bitvec.New(s.Cols())
		for lane, v := range vals {
			row.Set(lane, v&(1<<uint(bit)) != 0)
		}
		s.Poke(base+bit, row)
	}
}

// peekPlanar extracts m-bit lane values stored bit-planar at base.
func peekPlanar(s *Subarray, base, m, lanes int) []uint64 {
	out := make([]uint64, lanes)
	for bit := 0; bit < m; bit++ {
		row := s.Peek(base + bit)
		for lane := 0; lane < lanes; lane++ {
			if row.Get(lane) {
				out[lane] |= 1 << uint(bit)
			}
		}
	}
	return out
}

func TestBitSerialAddKnown(t *testing.T) {
	s := newTestSubarray()
	a := []uint64{0, 1, 5, 15, 7, 8}
	b := []uint64{0, 1, 10, 15, 9, 8}
	pokePlanar(s, 0, 4, a)
	pokePlanar(s, 10, 4, b)
	s.BitSerialAdd(0, 10, 20, 30, 4)
	got := peekPlanar(s, 20, 5, len(a))
	for i := range a {
		if got[i] != a[i]+b[i] {
			t.Errorf("lane %d: %d + %d = %d", i, a[i], b[i], got[i])
		}
	}
}

func TestBitSerialAddCycleCount(t *testing.T) {
	s := newTestSubarray()
	pokePlanar(s, 0, 8, []uint64{3})
	pokePlanar(s, 10, 8, []uint64{200})
	s.BitSerialAdd(0, 10, 20, 30, 8)
	m := s.Meter()
	// The paper counts 2·m compute cycles: one Sum AAP and one Carry (TRA)
	// AAP per bit position.
	if got := m.Counts[dram.CmdAAP2]; got != 8 {
		t.Errorf("sum AAPs %d, want m=8", got)
	}
	if got := m.Counts[dram.CmdAAP3]; got != 8 {
		t.Errorf("carry AAPs %d, want m=8", got)
	}
}

// Property: bit-serial in-memory addition equals integer addition for all
// lane values, any width 1..16.
func TestBitSerialAddProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		m := 1 + rng.Intn(16)
		s := newTestSubarray()
		lanes := s.Cols()
		a := make([]uint64, lanes)
		b := make([]uint64, lanes)
		mask := uint64(1)<<uint(m) - 1
		for i := 0; i < lanes; i++ {
			a[i] = rng.Uint64() & mask
			b[i] = rng.Uint64() & mask
		}
		pokePlanar(s, 0, m, a)
		pokePlanar(s, 100, m, b)
		s.BitSerialAdd(0, 100, 200, 300, m)
		got := peekPlanar(s, 200, m+1, lanes)
		for i := 0; i < lanes; i++ {
			if got[i] != a[i]+b[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCarrySave3(t *testing.T) {
	s := newTestSubarray()
	rng := stats.NewRNG(10)
	a, b, c := randomRow(rng, 256), randomRow(rng, 256), randomRow(rng, 256)
	s.Poke(0, a)
	s.Poke(1, b)
	s.Poke(2, c)
	s.CarrySave3(0, 1, 2, 10, 11)
	wantSum := bitvec.New(256)
	wantSum.Xor(a, b)
	wantSum.Xor(wantSum.Clone(), c)
	wantCarry := bitvec.New(256)
	wantCarry.Maj3(a, b, c)
	if !s.Peek(10).Equal(wantSum) {
		t.Fatal("CSA sum wrong")
	}
	if !s.Peek(11).Equal(wantCarry) {
		t.Fatal("CSA carry wrong")
	}
	// Sources intact.
	if !s.Peek(0).Equal(a) || !s.Peek(1).Equal(b) || !s.Peek(2).Equal(c) {
		t.Fatal("CSA clobbered source rows")
	}
}

func TestPopCountRowsKnown(t *testing.T) {
	s := newTestSubarray()
	// 7 one-bit rows; lane i has bit set in rows 0..(i mod 8)-1, so lane
	// popcounts cycle 0..7.
	n := 7
	src := make([]int, n)
	for r := 0; r < n; r++ {
		src[r] = r
		row := bitvec.New(256)
		for lane := 0; lane < 256; lane++ {
			if r < lane%8 {
				row.Set(lane, true)
			}
		}
		s.Poke(r, row)
	}
	m := 4
	scratch := make([]int, n+3*m+4)
	for i := range scratch {
		scratch[i] = 100 + i
	}
	s.PopCountRows(src, 50, scratch, m)
	got := peekPlanar(s, 50, m, 256)
	for lane := 0; lane < 256; lane++ {
		want := uint64(lane % 8)
		if want > uint64(n) {
			want = uint64(n)
		}
		if got[lane] != want {
			t.Fatalf("lane %d popcount %d, want %d", lane, got[lane], want)
		}
	}
}

// Property: PopCountRows matches per-lane popcount for random inputs.
func TestPopCountRowsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		s := newTestSubarray()
		n := 1 + rng.Intn(20)
		m := 5
		src := make([]int, n)
		want := make([]uint64, 256)
		for r := 0; r < n; r++ {
			src[r] = r
			row := randomRow(rng, 256)
			s.Poke(r, row)
			for lane := 0; lane < 256; lane++ {
				if row.Get(lane) {
					want[lane]++
				}
			}
		}
		scratch := make([]int, n+3*m+4)
		for i := range scratch {
			scratch[i] = 200 + i
		}
		s.PopCountRows(src, 100, scratch, m)
		got := peekPlanar(s, 100, m, 256)
		for lane := 0; lane < 256; lane++ {
			if got[lane] != want[lane] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestPopCountRowsPanicsOnTinyCounter(t *testing.T) {
	s := newTestSubarray()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic: counter too narrow")
		}
	}()
	src := []int{0, 1, 2, 3}
	s.PopCountRows(src, 50, []int{100, 101, 102, 103, 104, 105, 106, 107, 108, 109, 110, 111}, 2)
}

func TestPopCountRowsPanicsOnScratchShortage(t *testing.T) {
	s := newTestSubarray()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic: scratch shortage")
		}
	}()
	s.PopCountRows([]int{0, 1, 2}, 50, []int{100, 101}, 4)
}

func TestBitSerialAddPanicsOnZeroWidth(t *testing.T) {
	s := newTestSubarray()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.BitSerialAdd(0, 10, 20, 30, 0)
}
