package subarray

import (
	"fmt"

	"pimassembler/internal/bitvec"
)

// This file implements PIM-Assembler's in-memory arithmetic (paper §III,
// Fig. 8): numbers live bit-planar — an m-bit vector of 256 lane elements
// occupies m consecutive rows, row base+i holding bit i of every element —
// and addition proceeds bit-serially, one Carry (TRA) and one Sum (latched
// XOR) compute cycle per bit position, "concluded after 2×m cycles".

// BitSerialAdd adds the two m-bit bit-planar numbers at rows aBase and bBase
// and writes the (m+1)-bit result at dstBase (rows dstBase..dstBase+m).
// carryRow is a scratch data row holding the running carry between bit
// positions; it is left holding the final carry (also duplicated at
// dstBase+m).
//
// Per bit position the controller issues: two RowClones staging a_i and b_i
// into x1/x2, the Sum AAP (consuming the latched carry from the previous
// position), two more RowClones restaging the operands, and the TRA AAP
// producing the next carry in both the latch and compute row x3. The two
// compute AAPs per bit match the paper's 2·m-cycle count; the RowClones are
// the staging overhead the end-to-end model charges separately.
func (s *Subarray) BitSerialAdd(aBase, bBase, dstBase, carryRow, m int) {
	if m <= 0 {
		panic(fmt.Sprintf("subarray: BitSerialAdd with non-positive width %d", m))
	}
	s.checkRow(aBase + m - 1)
	s.checkRow(bBase + m - 1)
	s.checkRow(dstBase + m)
	s.checkRow(carryRow)

	x1, x2, x3 := s.ComputeRow(0), s.ComputeRow(1), s.ComputeRow(2)

	// Clear the carry: zero the carry row and the latch. (t1 is free here —
	// the compute primitives below overwrite it before reading.)
	s.t1.Fill(false)
	s.Write(carryRow, s.t1)
	s.ResetLatch()
	s.RowClone(carryRow, x3)

	for i := 0; i < m; i++ {
		// Sum cycle: dst_i = a_i XOR b_i XOR latched carry-in.
		s.RowClone(aBase+i, x1)
		s.RowClone(bBase+i, x2)
		s.SumWithLatch(x1, x2, dstBase+i)

		// Carry cycle: x3/latch = MAJ(a_i, b_i, carry-in). The two-row
		// activation destroyed x1/x2, so the operands are restaged.
		s.RowClone(aBase+i, x1)
		s.RowClone(bBase+i, x2)
		s.TRACarry(x1, x2, x3, carryRow)
		// TRA wrote the majority back into x3, which therefore already
		// holds the carry-in for the next bit position.
	}
	// Final carry becomes the top result bit.
	s.RowClone(carryRow, dstBase+m)
}

// CarrySave3 reduces three equal-weight one-bit rows a, b, c into a sum row
// (same weight) and a carry row (next weight up): the "(3) mapping" stage of
// Fig. 8, where every three adjacency-matrix rows collapse into C and S rows
// written to the reserved space. Source rows are not modified.
func (s *Subarray) CarrySave3(a, b, c, dstSum, dstCarry int) {
	s.checkRow(a)
	s.checkRow(b)
	s.checkRow(c)
	s.checkRow(dstSum)
	s.checkRow(dstCarry)

	x1, x2, x3 := s.ComputeRow(0), s.ComputeRow(1), s.ComputeRow(2)
	x4, x5 := s.ComputeRow(3), s.ComputeRow(4)

	// Sum = a XOR b XOR c: two chained two-row XORs via x4/x5.
	s.RowClone(a, x1)
	s.RowClone(b, x2)
	s.TwoRowXOR(x1, x2, x4)
	s.RowClone(c, x5)
	s.TwoRowXOR(x4, x5, dstSum)

	// Carry = MAJ(a, b, c) via triple-row activation.
	s.RowClone(a, x1)
	s.RowClone(b, x2)
	s.RowClone(c, x3)
	s.TRACarry(x1, x2, x3, dstCarry)
}

// PopCountRows sums n one-bit rows per column into an m-bit bit-planar
// counter at dstBase (rows dstBase..dstBase+m-1) — the in/out-degree
// accumulation of the Traverse procedure (Fig. 8). It runs a Wallace-style
// carry-save tree of CarrySave3 reductions followed by one final
// BitSerialAdd, exactly the partition→reduce→ripple flow the figure draws.
//
// scratch must provide at least len(src)+3·m+4 free data rows; they are
// clobbered. dst must not overlap src or scratch. m must satisfy
// 2^m > len(src).
func (s *Subarray) PopCountRows(src []int, dstBase int, scratch []int, m int) {
	if len(src) == 0 {
		panic("subarray: PopCountRows with no source rows")
	}
	if m <= 0 || (m < 63 && (1<<uint(m)) <= len(src)) {
		panic(fmt.Sprintf("subarray: %d-bit counter cannot hold popcount of %d rows", m, len(src)))
	}
	need := len(src) + 3*m + 4
	if len(scratch) < need {
		panic(fmt.Sprintf("subarray: PopCountRows needs %d scratch rows, got %d", need, len(scratch)))
	}

	alloc := newRowPool(scratch)

	// weights[w] lists rows currently holding weight-2^w partial bits.
	weights := make([][]int, m+1)
	weights[0] = append([]int(nil), src...)
	// Track which rows came from the pool so they can be recycled; source
	// rows must stay intact.
	pooled := make(map[int]bool, len(scratch))

	for w := 0; w <= m; w++ {
		for len(weights[w]) >= 3 {
			a, b, c := weights[w][0], weights[w][1], weights[w][2]
			weights[w] = weights[w][3:]
			sum := alloc.take()
			s.CarrySave3(a, b, c, sum, alloc.reserveNextCarry())
			carry := alloc.lastCarry
			pooled[sum] = true
			pooled[carry] = true
			weights[w] = append(weights[w], sum)
			if w+1 <= m {
				weights[w+1] = append(weights[w+1], carry)
			}
			for _, r := range []int{a, b, c} {
				if pooled[r] {
					alloc.give(r)
					delete(pooled, r)
				}
			}
		}
	}

	// At most two rows remain per weight: assemble two bit-planar numbers
	// and ripple-add them. Missing positions are zero-filled.
	zeroVec := bitvec.New(s.cols)
	aBase := make([]int, m)
	bBase := make([]int, m)
	for w := 0; w < m; w++ {
		rows := weights[w]
		switch len(rows) {
		case 0:
			za, zb := alloc.take(), alloc.take()
			s.Write(za, zeroVec)
			s.Write(zb, zeroVec)
			aBase[w], bBase[w] = za, zb
		case 1:
			zb := alloc.take()
			s.Write(zb, zeroVec)
			aBase[w], bBase[w] = rows[0], zb
		default:
			aBase[w], bBase[w] = rows[0], rows[1]
		}
	}

	carryRow := alloc.take()
	// The (m+1)-bit result lands in scratch first; the low m bits are then
	// cloned to dst (the top bit is zero by the 2^m capacity precondition).
	res := alloc.takeN(m + 1)
	s.bitSerialAddAt(aBase, bBase, res, carryRow)
	for w := 0; w < m; w++ {
		s.RowClone(res[w], dstBase+w)
	}
}

// bitSerialAddAt is BitSerialAdd over explicit (not necessarily contiguous)
// row lists; a, b have length m and dst length m+1.
func (s *Subarray) bitSerialAddAt(a, b, dst []int, carryRow int) {
	m := len(a)
	x1, x2, x3 := s.ComputeRow(0), s.ComputeRow(1), s.ComputeRow(2)
	zero := bitvec.New(s.cols)
	s.Write(carryRow, zero)
	s.ResetLatch()
	s.RowClone(carryRow, x3)
	for i := 0; i < m; i++ {
		s.RowClone(a[i], x1)
		s.RowClone(b[i], x2)
		s.SumWithLatch(x1, x2, dst[i])
		s.RowClone(a[i], x1)
		s.RowClone(b[i], x2)
		s.TRACarry(x1, x2, x3, carryRow)
	}
	s.RowClone(carryRow, dst[m])
}

// rowPool hands out scratch rows and recycles returned ones.
type rowPool struct {
	free      []int
	lastCarry int
}

func newRowPool(rows []int) *rowPool {
	return &rowPool{free: append([]int(nil), rows...)}
}

func (p *rowPool) take() int {
	if len(p.free) == 0 {
		panic("subarray: scratch row pool exhausted")
	}
	r := p.free[0]
	p.free = p.free[1:]
	return r
}

func (p *rowPool) takeN(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = p.take()
	}
	return out
}

// reserveNextCarry takes a row and remembers it as the most recent carry
// destination, letting CarrySave3 call sites read it back.
func (p *rowPool) reserveNextCarry() int {
	p.lastCarry = p.take()
	return p.lastCarry
}

func (p *rowPool) give(r int) { p.free = append(p.free, r) }

// RippleIncrement adds the one-bit row incRow into the m-bit bit-planar
// counter stored at counterRows (LSB first, not necessarily contiguous) —
// the PIM_Add(k_mer, 1) frequency update of the Hashmap procedure. Lanes
// whose incRow bit is 0 are unchanged; lanes at the counter maximum wrap.
//
// carryRow, tmpRow and zeroRow are scratch data rows (clobbered). Per bit
// the controller issues the XOR for the new counter bit and an AND (TRA
// against the zero row, the Ambit identity MAJ(a,b,0) = a∧b) for the next
// carry.
func (s *Subarray) RippleIncrement(counterRows []int, incRow, carryRow, tmpRow, zeroRow int) {
	if len(counterRows) == 0 {
		panic("subarray: RippleIncrement with no counter rows")
	}
	x1, x2, x3 := s.ComputeRow(0), s.ComputeRow(1), s.ComputeRow(2)
	zero := bitvec.New(s.cols)
	s.Write(zeroRow, zero)
	s.RowClone(incRow, carryRow)
	for _, cRow := range counterRows {
		// tmp = counter ⊕ carry.
		s.RowClone(cRow, x1)
		s.RowClone(carryRow, x2)
		s.TwoRowXOR(x1, x2, tmpRow)
		// carry = counter ∧ carry.
		s.RowClone(cRow, x1)
		s.RowClone(carryRow, x2)
		s.RowClone(zeroRow, x3)
		s.TRACarry(x1, x2, x3, carryRow)
		// counter ← tmp.
		s.RowClone(tmpRow, cRow)
	}
}
