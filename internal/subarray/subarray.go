// Package subarray is the bit-accurate functional model of one PIM-Assembler
// computational sub-array: 1016 data rows plus 8 compute rows (x1..x8) wired
// to the modified row decoder, a reconfigurable sense amplifier per
// bit-line, and the MAT-level DPU reduction port.
//
// Every operation both computes the digital result and records its DRAM
// command cost on the sub-array's Meter, so functional runs double as
// cycle/energy measurements. The digital fast path is property-tested
// against the analog model in internal/circuit (see verify_test.go): the
// charge-sharing sense amplifier and these bitwise operations are the same
// function expressed at two abstraction levels.
package subarray

import (
	"fmt"

	"pimassembler/internal/bitvec"
	"pimassembler/internal/dram"
	"pimassembler/internal/exec"
)

// FaultHook observes (and may corrupt) the result row of an in-memory
// compute operation before it is written back — the injection point for
// process-variation fault studies (internal/fault). kind identifies the
// mechanism: CmdAAP2 for two-row activation, CmdAAP3 for TRA.
type FaultHook func(kind dram.CommandKind, result *bitvec.Vector)

// Subarray models one computational sub-array.
type Subarray struct {
	rows        int
	cols        int
	computeRows int

	cells []*bitvec.Vector // row-major cell state
	latch *bitvec.Vector   // per-column SA D-latch (carry storage)
	meter *dram.Meter
	fault FaultHook

	// t1, t2 are scratch rows reused by the compute primitives, which keep
	// the per-command fast paths allocation-free. Every use fully
	// overwrites them first; they are never aliased with cell rows.
	t1, t2 *bitvec.Vector

	// rec receives typed per-command records (nil disables recording); id
	// is the platform-global sub-array index stamped on every record and
	// stage the pipeline phase tag the current caller set.
	rec   exec.Recorder
	id    int
	stage exec.Stage
}

// AttachRecorder binds the sub-array to a command-stream recorder under the
// given platform-global sub-array id. A nil recorder detaches.
func (s *Subarray) AttachRecorder(r exec.Recorder, id int) {
	s.rec = r
	s.id = id
}

// SetStage tags subsequent commands with the pipeline stage issuing them.
func (s *Subarray) SetStage(st exec.Stage) { s.stage = st }

// Stage returns the current stage tag.
func (s *Subarray) Stage() exec.Stage { return s.stage }

// record accounts one command on the serial meter and, when a recorder is
// attached, emits the typed per-sub-array record. Both views are fed from
// this single point so they cannot drift.
func (s *Subarray) record(kind dram.CommandKind) {
	s.meter.Record(kind, 1)
	if s.rec != nil {
		s.rec.Record(exec.Command{
			Subarray: s.id,
			Kind:     kind,
			Stage:    s.stage,
			Rows:     kind.SourceRows(),
		})
	}
}

// SetFaultHook installs (or clears, with nil) the fault-injection hook.
func (s *Subarray) SetFaultHook(h FaultHook) { s.fault = h }

// applyFault runs the hook on a freshly computed result row.
func (s *Subarray) applyFault(kind dram.CommandKind, result *bitvec.Vector) {
	if s.fault != nil {
		s.fault(kind, result)
	}
}

// New creates a sub-array from a geometry and a command meter. The meter may
// be shared across sub-arrays that execute sequentially, or one per
// sub-array for parallel regions (merge afterwards).
func New(g dram.Geometry, meter *dram.Meter) *Subarray {
	if err := g.Validate(); err != nil {
		panic(err)
	}
	s := &Subarray{
		rows:        g.RowsPerSubarray,
		cols:        g.ColsPerSubarray,
		computeRows: g.ComputeRows,
		cells:       make([]*bitvec.Vector, g.RowsPerSubarray),
		latch:       bitvec.New(g.ColsPerSubarray),
		t1:          bitvec.New(g.ColsPerSubarray),
		t2:          bitvec.New(g.ColsPerSubarray),
		meter:       meter,
	}
	for i := range s.cells {
		s.cells[i] = bitvec.New(g.ColsPerSubarray)
	}
	return s
}

// Rows returns the total row count (data + compute).
func (s *Subarray) Rows() int { return s.rows }

// Cols returns the number of bit-lines.
func (s *Subarray) Cols() int { return s.cols }

// DataRows returns the number of regular rows.
func (s *Subarray) DataRows() int { return s.rows - s.computeRows }

// ComputeRow returns the absolute row index of compute row x(i+1), i.e.
// ComputeRow(0) is x1. Compute rows occupy the top of the row space.
func (s *Subarray) ComputeRow(i int) int {
	if i < 0 || i >= s.computeRows {
		panic(fmt.Sprintf("subarray: compute row %d out of range [0,%d)", i, s.computeRows))
	}
	return s.rows - s.computeRows + i
}

// IsComputeRow reports whether absolute row r is one of x1..x8.
func (s *Subarray) IsComputeRow(r int) bool {
	return r >= s.rows-s.computeRows && r < s.rows
}

func (s *Subarray) checkRow(r int) {
	if r < 0 || r >= s.rows {
		panic(fmt.Sprintf("subarray: row %d out of range [0,%d)", r, s.rows))
	}
}

func (s *Subarray) checkComputeRow(r int) {
	s.checkRow(r)
	if !s.IsComputeRow(r) {
		panic(fmt.Sprintf("subarray: row %d is not a compute row; the modified row decoder only multi-activates x1..x%d", r, s.computeRows))
	}
}

// Meter returns the command meter.
func (s *Subarray) Meter() *dram.Meter { return s.meter }

// SetMeter replaces the sub-array's command meter, returning the previous
// one. Parallel bulk drivers hand each worker-owned sub-array a private
// meter for the duration of a fan-out and merge the private totals in
// sub-array order afterwards, so the accumulated floating-point latency and
// energy sums never depend on goroutine scheduling.
func (s *Subarray) SetMeter(m *dram.Meter) *dram.Meter {
	if m == nil {
		panic("subarray: nil meter")
	}
	old := s.meter
	s.meter = m
	return old
}

// Write stores data into row r through the normal memory path.
func (s *Subarray) Write(r int, data *bitvec.Vector) {
	s.checkRow(r)
	s.cells[r].CopyFrom(data)
	s.record(dram.CmdWrite)
}

// Read returns a copy of row r through the normal memory path.
func (s *Subarray) Read(r int) *bitvec.Vector {
	s.checkRow(r)
	s.record(dram.CmdRead)
	return s.cells[r].Clone()
}

// ReadInto reads row r through the normal memory path into the caller-owned
// dst, avoiding Read's per-call clone allocation — the bulk-loop fast path.
func (s *Subarray) ReadInto(r int, dst *bitvec.Vector) {
	s.checkRow(r)
	s.record(dram.CmdRead)
	dst.CopyFrom(s.cells[r])
}

// Peek returns row r without cost accounting (simulator introspection only).
func (s *Subarray) Peek(r int) *bitvec.Vector {
	s.checkRow(r)
	return s.cells[r].Clone()
}

// Poke sets row r without cost accounting (simulator setup only).
func (s *Subarray) Poke(r int, data *bitvec.Vector) {
	s.checkRow(r)
	s.cells[r].CopyFrom(data)
}

// RowClone copies row src to row dst with a type-1 AAP (RowClone FPM).
func (s *Subarray) RowClone(src, dst int) {
	s.checkRow(src)
	s.checkRow(dst)
	s.cells[dst].CopyFrom(s.cells[src])
	s.record(dram.CmdAAPCopy)
}

// TwoRowXNOR executes the paper's single-cycle type-2 AAP: compute rows xa
// and xb are simultaneously activated, the reconfigurable SA resolves XNOR2
// on BL (and XOR2 on BLbar), and the result is written to dst. The charge
// sharing is destructive: both compute rows restore to the XNOR2 result,
// matching the Fig. 3a transient where the cell capacitors end at the
// result value.
func (s *Subarray) TwoRowXNOR(xa, xb, dst int) {
	s.checkComputeRow(xa)
	s.checkComputeRow(xb)
	s.checkRow(dst)
	res := s.t1
	res.Xnor(s.cells[xa], s.cells[xb])
	s.applyFault(dram.CmdAAP2, res)
	s.cells[xa].CopyFrom(res)
	s.cells[xb].CopyFrom(res)
	s.cells[dst].CopyFrom(res)
	s.record(dram.CmdAAP2)
}

// TwoRowXOR is TwoRowXNOR with the MUX selectors swapped so dst receives
// XOR2 (the complementary BLbar value).
func (s *Subarray) TwoRowXOR(xa, xb, dst int) {
	s.checkComputeRow(xa)
	s.checkComputeRow(xb)
	s.checkRow(dst)
	res := s.t1
	res.Xor(s.cells[xa], s.cells[xb])
	s.applyFault(dram.CmdAAP2, res)
	xnor := s.t2
	xnor.Not(res)
	// Cells restore to the BL value (XNOR side in this MUX configuration
	// feeds the write-back, complement goes to dst).
	s.cells[xa].CopyFrom(xnor)
	s.cells[xb].CopyFrom(xnor)
	s.cells[dst].CopyFrom(res)
	s.record(dram.CmdAAP2)
}

// TRACarry executes the type-3 AAP (Ambit triple-row activation): rows xa,
// xb, xc are activated together, the regular SA resolves 3-input majority,
// the result lands in dst and is captured by the per-column D-latch. All
// three compute rows restore to the majority value.
func (s *Subarray) TRACarry(xa, xb, xc, dst int) {
	s.checkComputeRow(xa)
	s.checkComputeRow(xb)
	s.checkComputeRow(xc)
	s.checkRow(dst)
	res := s.t1
	res.Maj3(s.cells[xa], s.cells[xb], s.cells[xc])
	s.applyFault(dram.CmdAAP3, res)
	s.cells[xa].CopyFrom(res)
	s.cells[xb].CopyFrom(res)
	s.cells[xc].CopyFrom(res)
	s.cells[dst].CopyFrom(res)
	s.latch.CopyFrom(res)
	s.record(dram.CmdAAP3)
}

// SumWithLatch executes the Sum cycle of the paper's two-cycle addition:
// with the latch enabled, the add-on XOR gate combines the two-row XOR2 of
// xa, xb with the previously latched carry, producing
// dst = xa XOR xb XOR latch. The compute rows restore to their XNOR2 value
// as in TwoRowXNOR; the latch is preserved for inspection.
func (s *Subarray) SumWithLatch(xa, xb, dst int) {
	s.checkComputeRow(xa)
	s.checkComputeRow(xb)
	s.checkRow(dst)
	x := s.t1
	x.Xor(s.cells[xa], s.cells[xb])
	sum := s.t2
	sum.Xor(x, s.latch)
	s.applyFault(dram.CmdAAP2, sum)
	x.Not(x) // in-place word-wise inversion: x now holds the XNOR restore value
	s.cells[xa].CopyFrom(x)
	s.cells[xb].CopyFrom(x)
	s.cells[dst].CopyFrom(sum)
	s.record(dram.CmdAAP2)
}

// ResetLatch clears the carry latch (one DPU-issued control op).
func (s *Subarray) ResetLatch() {
	s.latch.Fill(false)
	s.record(dram.CmdDPU)
}

// LatchState returns a copy of the carry latch.
func (s *Subarray) LatchState() *bitvec.Vector { return s.latch.Clone() }

// XNOR is the staged convenience operation the controller issues for
// PIM_XNOR: RowClone srcA→x1, RowClone srcB→x2, then the single-cycle
// two-row XNOR into dst. Cost: 3 AAPs.
func (s *Subarray) XNOR(srcA, srcB, dst int) {
	x1, x2 := s.ComputeRow(0), s.ComputeRow(1)
	s.RowClone(srcA, x1)
	s.RowClone(srcB, x2)
	s.TwoRowXNOR(x1, x2, dst)
}

// MatchAllOnes is the DPU's row-wide AND reduction: it reads the sub-array's
// sensed row r and reports whether every bit is '1'. Used after a PIM_XNOR
// to detect an exact k-mer match (Fig. 7).
func (s *Subarray) MatchAllOnes(r int) bool {
	s.checkRow(r)
	s.record(dram.CmdDPU)
	return s.cells[r].AllOnes()
}

// DPUPopCount is the DPU's population-count reduction over row r, used by
// degree accumulation checks.
func (s *Subarray) DPUPopCount(r int) int {
	s.checkRow(r)
	s.record(dram.CmdDPU)
	return s.cells[r].PopCount()
}

// TwoRowNOR drives dst with the low-Vs detector's NOR2 of two compute rows
// (the out1 path of Fig. 2b, selected by the MUX). Destructive like the
// other two-row activations: the compute rows restore to the result.
func (s *Subarray) TwoRowNOR(xa, xb, dst int) {
	s.checkComputeRow(xa)
	s.checkComputeRow(xb)
	s.checkRow(dst)
	res, or := s.t1, s.t2
	or.Or(s.cells[xa], s.cells[xb])
	res.Not(or)
	s.applyFault(dram.CmdAAP2, res)
	s.cells[xa].CopyFrom(res)
	s.cells[xb].CopyFrom(res)
	s.cells[dst].CopyFrom(res)
	s.record(dram.CmdAAP2)
}

// TwoRowNAND drives dst with the high-Vs detector's NAND2 of two compute
// rows (the out2 path of Fig. 2b).
func (s *Subarray) TwoRowNAND(xa, xb, dst int) {
	s.checkComputeRow(xa)
	s.checkComputeRow(xb)
	s.checkRow(dst)
	res, and := s.t1, s.t2
	and.And(s.cells[xa], s.cells[xb])
	res.Not(and)
	s.applyFault(dram.CmdAAP2, res)
	s.cells[xa].CopyFrom(res)
	s.cells[xb].CopyFrom(res)
	s.cells[dst].CopyFrom(res)
	s.record(dram.CmdAAP2)
}

// XNOREmulatedTRA computes srcA XNOR srcB into dst using only the
// operations a majority-based design (Ambit) has: triple-row-activation
// majority with initialised control rows and one-cycle row inversion
// (dual-contact NOT, modelled by the XOR-with-ones path at equal cost).
// The identity is a XNOR b = OR(AND(a, b), AND(NOT a, NOT b)).
//
// It exists for the baseline-emulation studies: building the same hash
// table with XNOR (3 command slots) and XNOREmulatedTRA (18 slots) measures
// the end-to-end cost gap between the paper's single-cycle mechanism and
// the majority-based alternative on identical data.
func (s *Subarray) XNOREmulatedTRA(srcA, srcB, dst int) {
	x1, x2, x3 := s.ComputeRow(0), s.ComputeRow(1), s.ComputeRow(2)
	// Scratch rows live in the compute region to avoid clobbering data.
	notA, notB := s.ComputeRow(3), s.ComputeRow(4)
	and1, and2 := s.ComputeRow(5), s.ComputeRow(6)
	zeroV := bitvec.New(s.cols)
	onesV := bitvec.New(s.cols)
	onesV.Fill(true)

	// and1 = MAJ(a, b, 0).
	s.Write(x3, zeroV)
	s.RowClone(srcA, x1)
	s.RowClone(srcB, x2)
	s.TRACarry(x1, x2, x3, and1)
	// notA = a XOR 1, notB = b XOR 1.
	s.Write(x2, onesV)
	s.RowClone(srcA, x1)
	s.TwoRowXOR(x1, x2, notA)
	s.Write(x2, onesV)
	s.RowClone(srcB, x1)
	s.TwoRowXOR(x1, x2, notB)
	// and2 = MAJ(notA, notB, 0).
	s.Write(x3, zeroV)
	s.RowClone(notA, x1)
	s.RowClone(notB, x2)
	s.TRACarry(x1, x2, x3, and2)
	// dst = MAJ(and1, and2, 1) = OR.
	s.Write(x3, onesV)
	s.RowClone(and1, x1)
	s.RowClone(and2, x2)
	s.TRACarry(x1, x2, x3, dst)
}
