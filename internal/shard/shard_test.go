package shard_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"pimassembler/internal/assembly"
	"pimassembler/internal/engine"
	"pimassembler/internal/genome"
	"pimassembler/internal/shard"
	"pimassembler/internal/stats"
)

// workload builds a deterministic read set.
func workload(seed uint64, genomeLen, readLen, n int, errRate float64) []*genome.Sequence {
	rng := stats.NewRNG(seed)
	ref := genome.GenerateGenome(genomeLen, rng)
	return genome.NewReadSampler(ref, readLen, errRate, rng).Sample(n)
}

func TestSplit(t *testing.T) {
	reads := workload(1, 500, 40, 10, 0)
	cases := []struct {
		n     int
		sizes []int
	}{
		{1, []int{10}},
		{3, []int{3, 3, 4}},
		{4, []int{2, 3, 2, 3}},
		{10, []int{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}},
		{25, []int{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}}, // clamped to len(reads)
		{0, []int{10}},                            // clamped to 1
		{-2, []int{10}},
	}
	for _, c := range cases {
		got := shard.Split(reads, c.n)
		if len(got) != len(c.sizes) {
			t.Fatalf("Split(%d): %d shards, want %d", c.n, len(got), len(c.sizes))
		}
		total := 0
		for i, sh := range got {
			if len(sh) != c.sizes[i] {
				t.Errorf("Split(%d) shard %d: %d reads, want %d", c.n, i, len(sh), c.sizes[i])
			}
			total += len(sh)
		}
		if total != len(reads) {
			t.Errorf("Split(%d) covers %d reads, want %d", c.n, total, len(reads))
		}
		// Concatenation in shard order is the input order (no reshuffling).
		i := 0
		for _, sh := range got {
			for _, r := range sh {
				if r != reads[i] {
					t.Fatalf("Split(%d): read %d out of order", c.n, i)
				}
				i++
			}
		}
	}
	if shard.Split(nil, 4) != nil {
		t.Error("Split of an empty read set should be nil")
	}
}

func TestAssembleErrors(t *testing.T) {
	ctx := context.Background()
	if _, err := shard.Assemble(ctx, nil, shard.Plan{Shards: 2}); err == nil {
		t.Error("no-reads run succeeded")
	}
	reads := workload(2, 800, 50, 20, 0)
	if _, err := shard.Assemble(ctx, reads, shard.Plan{Shards: 2, Engines: []string{"no-such-engine"}}); err == nil {
		t.Error("unknown engine accepted")
	}
	// A failing shard names its index and engine.
	reg := engine.NewRegistry()
	boom := errors.New("boom")
	if err := reg.Register(failingEngine{err: boom}); err != nil {
		t.Fatal(err)
	}
	_, err := shard.Assemble(ctx, reads, shard.Plan{
		Shards: 3, Engines: []string{"failing"}, Registry: reg,
		Opts: engine.Options{Options: assembly.Options{K: 16}},
	})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the engine failure", err)
	}
	if !strings.Contains(err.Error(), "shard 0") || !strings.Contains(err.Error(), "failing") {
		t.Errorf("err %q does not name the shard and engine", err)
	}
}

type failingEngine struct{ err error }

func (failingEngine) Name() string     { return "failing" }
func (failingEngine) Describe() string { return "always fails" }
func (e failingEngine) Assemble(context.Context, genome.ReadSource, engine.Options) (*engine.Report, error) {
	return nil, e.err
}

func TestAssembleCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reads := workload(3, 800, 50, 20, 0)
	_, err := shard.Assemble(ctx, reads, shard.Plan{
		Shards: 2, Opts: engine.Options{Options: assembly.Options{K: 16}},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestHeterogeneousEngines runs a software+functional engine mix and checks
// the round-robin assignment, the functional aggregates, and that the
// merged contigs still match the unsharded software reference (the
// cross-engine conformance property extended to shards).
func TestHeterogeneousEngines(t *testing.T) {
	reads := workload(4, 2_000, 101, 120, 0)
	opts := engine.Options{Options: assembly.Options{K: 16}, Subarrays: 16}

	sw, err := engine.Lookup("software")
	if err != nil {
		t.Fatal(err)
	}
	base, err := sw.Assemble(context.Background(), genome.NewSliceSource(reads), opts)
	if err != nil {
		t.Fatal(err)
	}

	res, err := shard.Assemble(context.Background(), reads, shard.Plan{
		Shards: 4, Engines: []string{"software", "pim"}, Opts: opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantEngines := []string{"software", "pim", "software", "pim"}
	for i, name := range res.Engines {
		if name != wantEngines[i] {
			t.Errorf("shard %d engine %s, want %s", i, name, wantEngines[i])
		}
	}
	if res.Commands <= 0 || res.EnergyPJ <= 0 || res.MakespanNS <= 0 {
		t.Errorf("functional aggregates not populated: commands=%d energy=%.1f makespan=%.1f",
			res.Commands, res.EnergyPJ, res.MakespanNS)
	}
	// Makespan is a max, energy a sum: the sum of per-shard makespans must
	// be at least the recorded max.
	var maxSeen float64
	for _, rep := range res.PerShard {
		if rep.Functional != nil && rep.Functional.Makespan.MakespanNS > maxSeen {
			maxSeen = rep.Functional.Makespan.MakespanNS
		}
	}
	if res.MakespanNS != maxSeen {
		t.Errorf("MakespanNS = %.1f, want per-shard max %.1f", res.MakespanNS, maxSeen)
	}
	assertSameContigs(t, "heterogeneous 4-shard", base, res.Report)
	if !strings.Contains(res.Report.Engine, "software+pim") {
		t.Errorf("merged engine label %q", res.Report.Engine)
	}
}

// TestAnalyticalShards: analytical engines price each shard; the merged
// cost is max-over-shards time and summed energy, and the merged contigs
// (produced by the analytical engines' embedded reference runs) match.
func TestAnalyticalShards(t *testing.T) {
	reads := workload(5, 1_500, 80, 60, 0)
	opts := engine.Options{Options: assembly.Options{K: 16}}
	res, err := shard.Assemble(context.Background(), reads, shard.Plan{
		Shards: 3, Engines: []string{"pim-assembler"}, Opts: opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CostTotalS <= 0 || res.CostEnergyJ <= 0 {
		t.Fatalf("analytical aggregates not populated: %.3g s, %.3g J", res.CostTotalS, res.CostEnergyJ)
	}
	var wantMax, wantEnergy float64
	for _, rep := range res.PerShard {
		if rep.Cost == nil {
			t.Fatal("analytical shard without Cost block")
		}
		if tot := rep.Cost.TotalS(); tot > wantMax {
			wantMax = tot
		}
		wantEnergy += rep.Cost.EnergyJ()
	}
	if res.CostTotalS != wantMax || res.CostEnergyJ != wantEnergy {
		t.Errorf("cost aggregates %.6g/%.6g, want %.6g/%.6g",
			res.CostTotalS, res.CostEnergyJ, wantMax, wantEnergy)
	}
}

// assertSameContigs compares contig sequences (the deterministic merge
// contract: structure, not coverage).
func assertSameContigs(t *testing.T, label string, want, got *engine.Report) {
	t.Helper()
	if len(want.Contigs) != len(got.Contigs) {
		t.Fatalf("%s: %d contigs, want %d", label, len(got.Contigs), len(want.Contigs))
	}
	for i := range want.Contigs {
		if !want.Contigs[i].Seq.Equal(got.Contigs[i].Seq) {
			t.Fatalf("%s: contig %d differs:\n got %s\nwant %s", label, i,
				got.Contigs[i].Seq, want.Contigs[i].Seq)
		}
	}
}

func TestScaffoldAndQualityCarryThroughMerge(t *testing.T) {
	rng := stats.NewRNG(6)
	ref := genome.GenerateGenome(1_200, rng)
	reads := genome.NewReadSampler(ref, 80, 0, rng).Sample(90)
	opts := engine.Options{
		Options: assembly.Options{K: 16, Scaffold: true, MinOverlap: 12},
		Ref:     ref,
	}
	res, err := shard.Assemble(context.Background(), reads, shard.Plan{Shards: 3, Opts: opts})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Scaffolds == nil {
		t.Error("merged report lost the stage-3 scaffolds")
	}
	if res.Report.Quality == nil {
		t.Error("merged report lost the quality block")
	}
}

func ExampleSplit() {
	reads := workload(7, 400, 40, 7, 0)
	for i, sh := range shard.Split(reads, 3) {
		fmt.Printf("shard %d: %d reads\n", i, len(sh))
	}
	// Output:
	// shard 0: 2 reads
	// shard 1: 2 reads
	// shard 2: 3 reads
}
