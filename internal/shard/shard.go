// Package shard scales one assembly workload across several engines: the
// read set is split into deterministic contiguous shards, every shard is
// dispatched through the job-queue stream onto an engine resolved from the
// registry — the same engine N ways, or a heterogeneous engine list assigned
// round-robin — and the per-shard engine.Reports are merged into one unified
// report. This is the batch-partitioned processing shape the near-memory
// assembly literature (NMP-PaK; the PIM-for-genomics surveys) identifies as
// the path to paper-scale read sets; see DESIGN.md §12.
//
// Merge algebra:
//
//   - Contigs: concatenated in shard order, then re-deduplicated by running
//     the reference assembly pipeline over them as reads. A shard's contigs
//     spell exactly the k-mers of the shard's reads, so the merged de Bruijn
//     edge set is the union of the per-shard k-mer sets — identical to the
//     unsharded graph. Contig emission depends only on graph structure,
//     so for count-independent options (MinCount ≤ 1, no Simplify/Correct)
//     the merged contig sequences are byte-identical to an unsharded run,
//     for any shard count. Count-dependent options apply per shard and are
//     approximate; merged MeanCoverage counts shard multiplicity, not read
//     coverage.
//   - Operation counts: ReadCount and TotalKmers are summed over shards
//     (every read lands in exactly one shard, so the sums are invariant in
//     the shard count); DistinctKmers/Nodes/Edges are measured exactly on
//     the merged graph; AvgProbes and ReadLen are shard-weighted means.
//   - Latency: shards run in parallel, so the merged makespan is the max
//     over shards (functional schedules and analytical stage models alike).
//   - Energy: summed over shards — every shard's commands execute somewhere.
//
// Determinism: Split depends only on (len(reads), Shards); dispatch rides
// the job queue's slot-ordered contract; the merge pass is the deterministic
// reference pipeline. Merged output is bit-identical for any worker count.
package shard

import (
	"context"
	"fmt"
	"strings"
	"time"

	"pimassembler/internal/assembly"
	"pimassembler/internal/engine"
	"pimassembler/internal/genome"
	"pimassembler/internal/jobqueue"
	"pimassembler/internal/metrics"
)

// Plan describes one sharded run.
type Plan struct {
	// Shards is the shard count; values < 1 mean one shard, and counts
	// beyond the read count are clamped so no shard is empty.
	Shards int
	// Engines names the execution paths, assigned to shards round-robin
	// (shard i runs on Engines[i % len(Engines)]). Empty means every shard
	// runs the software reference engine.
	Engines []string
	// Opts configures each shard's engine run. Count-dependent pipeline
	// options (MinCount > 1, Simplify, Correct) apply per shard, not
	// globally — see the package comment.
	Opts engine.Options
	// Workers bounds the dispatch pool (0 = parallel.Workers()).
	Workers int
	// Registry resolves engine names (nil = engine.Default()).
	Registry *engine.Registry
	// Timeout and Retry carry the job queue's per-shard attempt controls.
	Timeout time.Duration
	Retry   jobqueue.RetryPolicy
	// MaxResidentReads caps how many reads the spill-backed path
	// (AssembleSpill) admits into flight at once across all shards
	// (<= 0 means DefaultMaxResidentReads). The in-memory Assemble,
	// which already holds every read, ignores it.
	MaxResidentReads int
	// Counters optionally collects the job queue's jobs.*/latency.*
	// instrumentation for the dispatch (nil = uninstrumented).
	Counters *metrics.Counters
}

// engines returns the effective engine list.
func (p Plan) engines() []string {
	if len(p.Engines) == 0 {
		return []string{"software"}
	}
	return p.Engines
}

// registry returns the effective registry.
func (p Plan) registry() *engine.Registry {
	if p.Registry != nil {
		return p.Registry
	}
	return engine.Default()
}

// Split partitions reads into n deterministic contiguous shards whose sizes
// differ by at most one. n is clamped to [1, len(reads)], so every returned
// shard is non-empty; the shards alias the input slice (no copying).
//
// Contiguous-assignment contract: shard i is exactly the subslice
// reads[i*len(reads)/n : (i+1)*len(reads)/n] — each shard slice is
// allocated at its final size (never grown by append), concatenating the
// shards in index order reproduces the input order, and the assignment
// depends only on (len(reads), n), never on read contents. The streaming
// spill partitioner routes the same multiset of reads with a different
// (round-robin) shape; the merge algebra above is what makes the merged
// output invariant to that difference.
func Split(reads []*genome.Sequence, n int) [][]*genome.Sequence {
	if len(reads) == 0 {
		return nil
	}
	if n < 1 {
		n = 1
	}
	if n > len(reads) {
		n = len(reads)
	}
	out := make([][]*genome.Sequence, n)
	for i := 0; i < n; i++ {
		lo, hi := i*len(reads)/n, (i+1)*len(reads)/n
		out[i] = reads[lo:hi]
	}
	return out
}

// Result is one completed sharded run.
type Result struct {
	// Report is the unified merged report. With a single shard it is that
	// shard's report verbatim — merging one shard is the identity, which
	// keeps `-shards 1` byte-identical to an unsharded run.
	Report *engine.Report
	// PerShard holds each shard's report in shard order.
	PerShard []*engine.Report
	// Engines names the engine each shard actually ran on, shard order.
	Engines []string

	// Functional aggregates over the shards that ran the PIM functional
	// engine (zero when none did): command slots and array energy summed,
	// makespan the max over shards.
	Commands   int64
	EnergyPJ   float64
	MakespanNS float64

	// Analytical aggregates over the shards priced by a platform model
	// (zero when none were): modeled stage time as the max over shards,
	// modeled energy summed.
	CostTotalS  float64
	CostEnergyJ float64
}

// Assemble runs one sharded multi-engine assembly: split, dispatch through
// the job-queue stream, merge. Any shard failure fails the run with the
// shard index and engine named.
func Assemble(ctx context.Context, reads []*genome.Sequence, plan Plan) (*Result, error) {
	if len(reads) == 0 {
		return nil, fmt.Errorf("shard: no reads")
	}
	engines := plan.engines()
	reg := plan.registry()
	for _, name := range engines {
		if _, err := reg.Lookup(name); err != nil {
			return nil, err
		}
	}

	shards := Split(reads, plan.Shards)
	q := jobqueue.New(reg, jobqueue.WithWorkers(plan.Workers), jobqueue.WithCounters(plan.Counters))
	st := q.Stream(ctx)
	names := make([]string, len(shards))
	for i, sh := range shards {
		names[i] = engines[i%len(engines)]
		if _, err := st.Submit(jobqueue.Spec{
			Name:    fmt.Sprintf("shard-%d", i),
			Engine:  names[i],
			Source:  genome.NewSliceSource(sh),
			Opts:    plan.Opts,
			Timeout: plan.Timeout,
			Retry:   plan.Retry,
		}); err != nil {
			return nil, err
		}
	}

	res := &Result{Engines: names, PerShard: make([]*engine.Report, len(shards))}
	return finishRun(st, res, plan)
}

// finishRun drains the dispatch stream into res, aggregates the
// family-specific accounting, and merges the per-shard reports — the
// shared tail of the in-memory and spill-backed entry points.
func finishRun(st *jobqueue.Stream, res *Result, plan Plan) (*Result, error) {
	for i, r := range st.Drain() {
		if r.Err != nil {
			return nil, fmt.Errorf("shard %d (engine %s): %w", i, res.Engines[i], r.Err)
		}
		res.PerShard[i] = r.Report
	}
	return res.finish(plan.Opts)
}

// Merge builds the unified Result from per-shard reports that were produced
// elsewhere — the exported merge path the multi-process coordinator
// (internal/distshard) feeds with reports reconstructed from worker wire
// frames. perShard and engines are in shard order and must be the same
// length; the merge algebra is exactly the in-process one (union-graph
// contig re-dedup, summed workload counters, makespan max), so for
// count-independent options the merged contigs are byte-identical whether
// the shards ran in this process or across a worker fleet.
func Merge(perShard []*engine.Report, engines []string, opts engine.Options) (*Result, error) {
	if len(perShard) == 0 {
		return nil, fmt.Errorf("shard: no shard reports to merge")
	}
	if len(engines) != len(perShard) {
		return nil, fmt.Errorf("shard: %d engine names for %d shard reports", len(engines), len(perShard))
	}
	for i, rep := range perShard {
		if rep == nil {
			return nil, fmt.Errorf("shard: missing report for shard %d (engine %s)", i, engines[i])
		}
	}
	res := &Result{Engines: engines, PerShard: perShard}
	return res.finish(opts)
}

// finish aggregates the family accounting and merges the per-shard reports
// into res.Report — the tail shared by every entry point, in-process or
// distributed.
func (r *Result) finish(opts engine.Options) (*Result, error) {
	r.aggregate()

	if len(r.PerShard) == 1 {
		r.Report = r.PerShard[0]
		return r, nil
	}
	rep, err := merge(r, opts)
	if err != nil {
		return nil, err
	}
	r.Report = rep
	return r, nil
}

// aggregate folds the per-shard family-specific accounting into the Result.
func (r *Result) aggregate() {
	for _, rep := range r.PerShard {
		if f := rep.Functional; f != nil {
			r.Commands += f.Commands
			r.EnergyPJ += f.EnergyPJ
			if f.Makespan.MakespanNS > r.MakespanNS {
				r.MakespanNS = f.Makespan.MakespanNS
			}
		}
		if c := rep.Cost; c != nil {
			if t := c.TotalS(); t > r.CostTotalS {
				r.CostTotalS = t
			}
			r.CostEnergyJ += c.EnergyJ()
		}
	}
}

// merge builds the unified report from ≥ 2 shard reports: concatenate the
// contigs in shard order, re-deduplicate them through the reference
// assembly pipeline, and merge the operation counts.
func merge(res *Result, opts engine.Options) (*engine.Report, error) {
	var contigReads []*genome.Sequence
	for _, rep := range res.PerShard {
		for _, c := range rep.Contigs {
			contigReads = append(contigReads, c.Seq)
		}
	}
	if len(contigReads) == 0 {
		return nil, fmt.Errorf("shard: no contigs to merge (did every shard run a contig-producing engine?)")
	}
	// Only the count-independent options carry into the merge pass: the
	// contig multiplicities here count shards, not reads, so MinCount /
	// Simplify / Correct must not re-filter. CountWorkers carries through —
	// the re-dedup pass counts the concatenated contigs' k-mers, the
	// heaviest part of the merge, and parallel counting is contig-identical.
	mergeOpts := assembly.Options{
		K: opts.K, Scaffold: opts.Scaffold, MinOverlap: opts.MinOverlap,
		CountWorkers: opts.CountWorkers,
	}
	mres, err := assembly.Assemble(contigReads, mergeOpts)
	if err != nil {
		return nil, fmt.Errorf("shard: merge: %w", err)
	}

	rep := &engine.Report{
		Engine: label(res.Engines),
		// The merged contigs come out of the reference pipeline's merge
		// pass, whatever families the shards ran.
		Family:    engine.FamilySoftware,
		Contigs:   mres.Contigs,
		Scaffolds: mres.Scaffolds,
		EulerWalk: mres.EulerWalk,
		EulerErr:  mres.EulerErr,
		Counts:    mergedCounts(res.PerShard, &mres.Counts),
	}
	if opts.Ref != nil {
		q := metrics.Evaluate(rep.Contigs, opts.Ref)
		rep.Quality = &q
	}
	return rep, nil
}

// label names the merged report's engine, e.g. "shard(software x4)" or
// "shard(software+pim x3)".
func label(names []string) string {
	var uniq []string
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		if !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}
	return fmt.Sprintf("shard(%s x%d)", strings.Join(uniq, "+"), len(names))
}

// mergedCounts sums the per-shard workload totals (each read is in exactly
// one shard) and takes the global graph structure from the merge pass,
// which measured it exactly. Returns nil if any shard lacks counts.
func mergedCounts(per []*engine.Report, merged *assembly.OpCounts) *assembly.OpCounts {
	out := assembly.OpCounts{}
	var probeW, lenW float64
	for _, rep := range per {
		c := rep.Counts
		if c == nil {
			return nil
		}
		if out.K == 0 {
			out.K = c.K
			out.CounterBits = c.CounterBits
			out.DegreeBits = c.DegreeBits
		}
		out.ReadCount += c.ReadCount
		out.TotalKmers += c.TotalKmers
		probeW += c.AvgProbes * c.TotalKmers
		lenW += float64(c.ReadLen) * float64(c.ReadCount)
	}
	if out.TotalKmers > 0 {
		out.AvgProbes = probeW / out.TotalKmers
	}
	if out.ReadCount > 0 {
		out.ReadLen = int((lenW + float64(out.ReadCount)/2) / float64(out.ReadCount))
	}
	out.DistinctKmers = merged.DistinctKmers
	out.Nodes = merged.Nodes
	out.Edges = merged.Edges
	return &out
}
