package shard

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"pimassembler/internal/engine"
	"pimassembler/internal/genome"
	"pimassembler/internal/jobqueue"
	"pimassembler/internal/metrics"
)

// DefaultMaxResidentReads bounds how many decoded reads the out-of-core
// path holds in memory at once (partitioning buffers and in-flight shard
// admissions alike) when the caller does not set a cap. At ~101 bp per
// read it is a few MiB of sequence data.
const DefaultMaxResidentReads = 1 << 16

// SpillConfig configures a streaming spill partition.
type SpillConfig struct {
	// Shards is the spill-file count (values < 1 mean one).
	Shards int
	// Dir is the parent directory for the run's private spill directory
	// ("" = the system temp dir). It is created if missing.
	Dir string
	// MaxResidentReads caps the records buffered in memory across all
	// shards before an eviction flushes them to their spill files
	// (<= 0 = DefaultMaxResidentReads).
	MaxResidentReads int
	// Counters optionally receives the spill.* instrumentation
	// (spill.files, spill.records, spill.bytes, spill.evictions).
	Counters *metrics.Counters
}

// shards returns the effective shard count.
func (c SpillConfig) shards() int {
	if c.Shards < 1 {
		return 1
	}
	return c.Shards
}

// maxResident returns the effective resident-read cap.
func (c SpillConfig) maxResident() int {
	if c.MaxResidentReads <= 0 {
		return DefaultMaxResidentReads
	}
	return c.MaxResidentReads
}

// Spill is a completed streaming partition: n per-shard FASTA spill files
// in a private temp directory. Close removes the directory; it is
// idempotent and safe after errors.
type Spill struct {
	dir       string
	files     []string
	counts    []int
	bytes     int64
	evictions int64
	records   int64
	closed    bool
}

// Shards returns the spill-file count.
func (s *Spill) Shards() int { return len(s.files) }

// Count returns how many reads shard i holds.
func (s *Spill) Count(i int) int { return s.counts[i] }

// TotalReads returns the number of records partitioned.
func (s *Spill) TotalReads() int64 { return s.records }

// Bytes returns the total bytes written across all spill files.
func (s *Spill) Bytes() int64 { return s.bytes }

// Evictions returns how many times the resident-read cap forced the
// record buffers to disk mid-stream (the final flush is not an eviction).
func (s *Spill) Evictions() int64 { return s.evictions }

// Dir returns the private spill directory (gone after Close).
func (s *Spill) Dir() string { return s.dir }

// Source opens shard i's spill file for streaming re-reads. The caller
// owns the returned source and should Close it (a fully drained source
// closes itself).
func (s *Spill) Source(i int) (*genome.FileSource, error) {
	return genome.OpenFileSource(s.files[i])
}

// Path returns shard i's spill-file path — the handle the multi-process
// coordinator hands to worker processes, which open it themselves. The
// file is gone after Close.
func (s *Spill) Path(i int) string { return s.files[i] }

// Close removes the spill directory and every file in it.
func (s *Spill) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	return os.RemoveAll(s.dir)
}

// countingWriter counts bytes through to an underlying writer.
type countingWriter struct {
	w io.Writer
	n *int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	*c.n += int64(n)
	return n, err
}

// Partition streams the records of r (in the given format) into n
// per-shard FASTA spill files under a fresh private directory, routing
// record j to shard j mod n — deterministic in the input alone, no size or
// content sensitivity. Records buffer in memory only up to the
// resident-read cap; hitting it evicts every buffer to its spill file, so
// peak memory is the cap plus one record in flight, never the stream.
//
// Round-robin routing gives a different partition shape than Split's
// contiguous slicing, but the merge algebra (see the package comment) is
// partition-shape-invariant for count-independent options: every read
// lands in exactly one shard, and the union de Bruijn graph — hence the
// merged contig set — depends only on the read multiset.
//
// On any error (malformed input, I/O failure, ctx cancellation) the spill
// directory and everything in it are removed before returning.
func Partition(ctx context.Context, r io.Reader, format genome.Format, cfg SpillConfig) (*Spill, error) {
	n := cfg.shards()
	capReads := cfg.maxResident()
	parent := cfg.Dir
	if parent != "" {
		if err := os.MkdirAll(parent, 0o755); err != nil {
			return nil, fmt.Errorf("shard: spill dir: %w", err)
		}
	}
	dir, err := os.MkdirTemp(parent, "pimspill-*")
	if err != nil {
		return nil, fmt.Errorf("shard: spill dir: %w", err)
	}

	sp := &Spill{dir: dir, files: make([]string, n), counts: make([]int, n)}
	files := make([]*os.File, n)
	writers := make([]*genome.RecordWriter, n)
	fail := func(err error) (*Spill, error) {
		for _, f := range files {
			if f != nil {
				f.Close()
			}
		}
		os.RemoveAll(dir)
		return nil, err
	}
	for i := range files {
		path := filepath.Join(dir, fmt.Sprintf("shard-%04d.fasta", i))
		f, err := os.Create(path)
		if err != nil {
			return fail(fmt.Errorf("shard: spill file: %w", err))
		}
		files[i] = f
		sp.files[i] = path
		writers[i] = genome.NewRecordWriter(&countingWriter{w: f, n: &sp.bytes})
	}

	buffers := make([][]genome.Record, n)
	resident := 0
	flush := func() error {
		for i, buf := range buffers {
			for _, rec := range buf {
				if err := writers[i].Write(rec); err != nil {
					return fmt.Errorf("shard: spill write: %w", err)
				}
			}
			buffers[i] = buffers[i][:0]
		}
		resident = 0
		return nil
	}

	next := 0
	err = genome.ScanRecords(r, format, func(rec genome.Record) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		i := next % n
		next++
		sp.counts[i]++
		buffers[i] = append(buffers[i], rec)
		resident++
		if resident >= capReads {
			sp.evictions++
			return flush()
		}
		return nil
	})
	if err != nil {
		return fail(err)
	}
	if err := flush(); err != nil {
		return fail(err)
	}
	for i := range writers {
		if err := writers[i].Flush(); err != nil {
			return fail(fmt.Errorf("shard: spill flush: %w", err))
		}
		f := files[i]
		files[i] = nil
		if err := f.Close(); err != nil {
			return fail(fmt.Errorf("shard: spill close: %w", err))
		}
	}
	sp.records = int64(next)

	if cfg.Counters != nil {
		cfg.Counters.Add("spill.files", int64(n))
		cfg.Counters.Add("spill.records", sp.records)
		cfg.Counters.Add("spill.bytes", sp.bytes)
		cfg.Counters.Add("spill.evictions", sp.evictions)
	}
	return sp, nil
}

// readGate admits shards into flight by their declared read counts,
// bounding the decoded reads resident across all running shard jobs. A
// request larger than the whole budget is clamped, so a single oversized
// shard still runs (alone) instead of deadlocking; release applies the
// same clamp so the books stay balanced.
type readGate struct {
	mu       sync.Mutex
	cond     *sync.Cond
	capacity int
	used     int
}

func newReadGate(capacity int) *readGate {
	g := &readGate{capacity: capacity}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// clamp bounds one shard's reservation to the gate capacity.
func (g *readGate) clamp(n int) int {
	if n > g.capacity {
		return g.capacity
	}
	return n
}

// acquire blocks until n reads fit under the cap or ctx ends. Pair every
// successful acquire with exactly one release of the same n.
func (g *readGate) acquire(ctx context.Context, n int) error {
	n = g.clamp(n)
	g.mu.Lock()
	defer g.mu.Unlock()
	for g.used+n > g.capacity {
		if err := ctx.Err(); err != nil {
			return err
		}
		g.cond.Wait()
	}
	g.used += n
	return nil
}

// release returns n reads to the budget and wakes every waiter.
func (g *readGate) release(n int) {
	n = g.clamp(n)
	g.mu.Lock()
	g.used -= n
	g.cond.Broadcast()
	g.mu.Unlock()
}

// wake broadcasts under the lock so blocked acquires re-check their
// context; registered via context.AfterFunc. Taking the mutex first is
// what makes the wakeup race-free against a waiter between its ctx check
// and its cond.Wait.
func (g *readGate) wake() {
	g.mu.Lock()
	g.cond.Broadcast()
	g.mu.Unlock()
}

// maxResidentReads returns the plan's effective resident-read cap.
func (p Plan) maxResidentReads() int {
	if p.MaxResidentReads > 0 {
		return p.MaxResidentReads
	}
	return DefaultMaxResidentReads
}

// AssembleSpill assembles a completed spill partition out-of-core: each
// non-empty shard streams from its spill file through the job queue onto
// its engine with stage-1 streaming forced on, admissions gated so the
// decoded reads in flight never exceed Plan.MaxResidentReads, and the
// per-shard reports merge through the same union-graph re-dedup as the
// in-memory path. For count-independent options the merged contigs are
// byte-identical to both the in-memory sharded run and the unsharded run.
//
// The caller owns sp and should Close it after use; AssembleSpill closes
// only the per-shard sources it opens.
func AssembleSpill(ctx context.Context, sp *Spill, plan Plan) (*Result, error) {
	if sp == nil || sp.TotalReads() == 0 {
		return nil, fmt.Errorf("shard: no reads")
	}
	engines := plan.engines()
	reg := plan.registry()
	for _, name := range engines {
		if _, err := reg.Lookup(name); err != nil {
			return nil, err
		}
	}

	// Stream stage 1 so a shard's resident footprint is the record in
	// flight plus its k-mer table, not the shard. (Engines that must
	// drain — the functional simulator — hold at most their shard, which
	// is exactly what the gate admitted.)
	opts := plan.Opts
	opts.StreamStage1 = true

	gate := newReadGate(plan.maxResidentReads())
	stopWake := context.AfterFunc(ctx, gate.wake)
	defer stopWake()

	q := jobqueue.New(reg, jobqueue.WithWorkers(plan.Workers), jobqueue.WithCounters(plan.Counters))
	st := q.Stream(ctx)
	var wg sync.WaitGroup
	// Any exit path must close the stream and wait for the per-slot
	// release goroutines, so sources are closed before the caller removes
	// the spill directory.
	settle := func() {
		st.Close()
		wg.Wait()
	}

	var names []string
	for i := 0; i < sp.Shards(); i++ {
		if sp.Count(i) == 0 {
			// Round-robin leaves shards i >= TotalReads empty when there
			// are fewer reads than shards — mirroring Split's clamp, they
			// simply do not run.
			continue
		}
		reserve := sp.Count(i)
		if err := gate.acquire(ctx, reserve); err != nil {
			settle()
			return nil, err
		}
		src, err := sp.Source(i)
		if err != nil {
			gate.release(reserve)
			settle()
			return nil, err
		}
		name := engines[len(names)%len(engines)]
		slot, err := st.Submit(jobqueue.Spec{
			Name:    fmt.Sprintf("shard-%d", i),
			Engine:  name,
			Source:  src,
			Opts:    opts,
			Timeout: plan.Timeout,
			Retry:   plan.Retry,
		})
		if err != nil {
			gate.release(reserve)
			src.Close()
			settle()
			return nil, err
		}
		names = append(names, name)
		wg.Add(1)
		go func(slot, reserve int, src *genome.FileSource) {
			defer wg.Done()
			st.Wait(slot)
			src.Close()
			gate.release(reserve)
		}(slot, reserve, src)
	}

	res := &Result{Engines: names, PerShard: make([]*engine.Report, len(names))}
	out, err := finishRun(st, res, plan)
	wg.Wait()
	return out, err
}
