//go:build !race

package shard_test

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = false
