package shard_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"testing"
	"time"

	"pimassembler/internal/assembly"
	"pimassembler/internal/engine"
	"pimassembler/internal/genome"
	"pimassembler/internal/metrics"
	"pimassembler/internal/shard"
)

// fastaBytes serialises reads as a FASTA stream, the form the spill
// partitioner ingests.
func fastaBytes(t *testing.T, reads []*genome.Sequence) []byte {
	t.Helper()
	var buf bytes.Buffer
	rw := genome.NewRecordWriter(&buf)
	for i, r := range reads {
		if err := rw.Write(genome.Record{Name: fmt.Sprintf("r%d", i), Seq: r}); err != nil {
			t.Fatal(err)
		}
	}
	if err := rw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestPartitionRoundRobin pins the spill partitioner's contract: record j
// lands in shard j mod n, spill files re-read bit-identically in routing
// order, repeated runs produce identical bytes, and Close removes the
// spill directory.
func TestPartitionRoundRobin(t *testing.T) {
	reads := workload(31, 1_000, 60, 23, 0)
	data := fastaBytes(t, reads)
	const n = 4
	cfg := shard.SpillConfig{Shards: n, Dir: t.TempDir(), MaxResidentReads: 7}

	sp, err := shard.Partition(context.Background(), bytes.NewReader(data), genome.FormatFASTA, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sp.TotalReads() != int64(len(reads)) {
		t.Fatalf("TotalReads = %d, want %d", sp.TotalReads(), len(reads))
	}
	if sp.Evictions() == 0 {
		t.Error("a 23-read stream under a 7-read cap never evicted")
	}
	if sp.Bytes() <= 0 {
		t.Error("no spill bytes recorded")
	}
	for i := 0; i < n; i++ {
		src, err := sp.Source(i)
		if err != nil {
			t.Fatal(err)
		}
		got, err := genome.ReadAll(src)
		if err != nil {
			t.Fatal(err)
		}
		var want []*genome.Sequence
		for j := i; j < len(reads); j += n {
			want = append(want, reads[j])
		}
		if len(got) != len(want) || len(got) != sp.Count(i) {
			t.Fatalf("shard %d: %d reads, want %d (Count %d)", i, len(got), len(want), sp.Count(i))
		}
		for j := range got {
			if !got[j].Equal(want[j]) {
				t.Fatalf("shard %d read %d differs after the spill round-trip", i, j)
			}
		}
	}

	// Determinism: a second partition of the same stream is byte-identical.
	sp2, err := shard.Partition(context.Background(), bytes.NewReader(data), genome.FormatFASTA, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		a, err := os.ReadFile(sp.Dir() + fmt.Sprintf("/shard-%04d.fasta", i))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(sp2.Dir() + fmt.Sprintf("/shard-%04d.fasta", i))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("shard %d spill file differs between identical runs", i)
		}
	}
	sp2.Close()

	dir := sp.Dir()
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sp.Close(); err != nil {
		t.Fatalf("Close not idempotent: %v", err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("spill dir %s survived Close (stat err %v)", dir, err)
	}
}

// TestPartitionCleanupOnError pins the no-leak guarantee: malformed input
// and cancellation both remove the spill directory before returning.
func TestPartitionCleanupOnError(t *testing.T) {
	parent := t.TempDir()
	bad := ">ok\nACGT\n>broken\nNOT-DNA!\n"
	if _, err := shard.Partition(context.Background(), strings.NewReader(bad), genome.FormatFASTA,
		shard.SpillConfig{Shards: 2, Dir: parent}); err == nil {
		t.Fatal("malformed input partitioned successfully")
	}
	ents, err := os.ReadDir(parent)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("spill directory leaked after error: %v", ents)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	data := fastaBytes(t, workload(32, 500, 40, 6, 0))
	if _, err := shard.Partition(ctx, bytes.NewReader(data), genome.FormatFASTA,
		shard.SpillConfig{Shards: 2, Dir: parent}); err == nil {
		t.Fatal("cancelled partition succeeded")
	}
	ents, err = os.ReadDir(parent)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("spill directory leaked after cancellation: %v", ents)
	}
}

// cancelAfterReader cancels a context partway through the stream: the
// first n Reads pass through, then the cancellation fires with the stream
// still mid-flight — spill files already created and partially written.
type cancelAfterReader struct {
	r      io.Reader
	n      int
	cancel context.CancelFunc
}

func (c *cancelAfterReader) Read(p []byte) (int, error) {
	if c.n == 0 {
		c.cancel()
	}
	c.n--
	// Small reads keep many records arriving after the cancellation point,
	// so the partitioner is genuinely mid-stream when it notices.
	if len(p) > 64 {
		p = p[:64]
	}
	return c.r.Read(p)
}

// TestPartitionMidStreamCancelCleanup pins the cleanup contract on the
// hardest path: cancellation firing while Partition is mid-stream, with
// spill files already open and partially written (evictions forced by a
// tiny resident cap). The partial spill directory must be gone before
// Partition returns — this is what lets every caller treat a Partition
// error as "nothing to clean up", including the multi-process coordinator
// whose workers would otherwise inherit dangling paths.
func TestPartitionMidStreamCancelCleanup(t *testing.T) {
	parent := t.TempDir()
	data := fastaBytes(t, workload(38, 1_000, 60, 40, 0))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel roughly halfway through the byte stream.
	r := &cancelAfterReader{r: bytes.NewReader(data), n: len(data) / 64 / 2, cancel: cancel}
	_, err := shard.Partition(ctx, r, genome.FormatFASTA,
		shard.SpillConfig{Shards: 4, Dir: parent, MaxResidentReads: 3})
	if err == nil {
		t.Fatal("mid-stream-cancelled partition succeeded")
	}
	if !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Errorf("err = %v, want the context cancellation surfaced", err)
	}
	ents, err := os.ReadDir(parent)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		var names []string
		for _, e := range ents {
			names = append(names, e.Name())
		}
		t.Fatalf("partial spill state leaked after mid-stream cancellation: %v", names)
	}
}

// TestSpillCounters pins the metrics export: partitioning reports the
// spill.* series through the supplied Counters.
func TestSpillCounters(t *testing.T) {
	reads := workload(33, 800, 50, 17, 0)
	c := metrics.NewCounters()
	sp, err := shard.Partition(context.Background(), bytes.NewReader(fastaBytes(t, reads)), genome.FormatFASTA,
		shard.SpillConfig{Shards: 3, Dir: t.TempDir(), MaxResidentReads: 5, Counters: c})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	for name, want := range map[string]int64{
		"spill.files":     3,
		"spill.records":   int64(len(reads)),
		"spill.bytes":     sp.Bytes(),
		"spill.evictions": sp.Evictions(),
	} {
		if got := c.Get(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if c.Get("spill.evictions") == 0 {
		t.Error("expected at least one eviction under a 5-read cap")
	}
}

// TestSpillMatchesInMemory is the out-of-core identity property: for shard
// counts k ∈ {1..8} with a resident cap 4x smaller than the input, the
// spill-backed merged contigs are byte-identical to both the in-memory
// sharded run and the unsharded reference, and the summed workload counts
// are invariant in the partition shape.
func TestSpillMatchesInMemory(t *testing.T) {
	reads := workload(34, 2_000, 101, 160, 0.01)
	data := fastaBytes(t, reads)
	opts := engine.Options{Options: assembly.Options{K: 16}}
	cap := len(reads) / 4 // input is 4x larger than the resident cap

	sw, err := engine.Lookup("software")
	if err != nil {
		t.Fatal(err)
	}
	base, err := sw.Assemble(context.Background(), genome.NewSliceSource(reads), opts)
	if err != nil {
		t.Fatal(err)
	}

	for k := 1; k <= 8; k++ {
		inMem, err := shard.Assemble(context.Background(), reads, shard.Plan{Shards: k, Opts: opts})
		if err != nil {
			t.Fatalf("shards=%d in-memory: %v", k, err)
		}
		sp, err := shard.Partition(context.Background(), bytes.NewReader(data), genome.FormatFASTA,
			shard.SpillConfig{Shards: k, Dir: t.TempDir(), MaxResidentReads: cap})
		if err != nil {
			t.Fatalf("shards=%d partition: %v", k, err)
		}
		spill, err := shard.AssembleSpill(context.Background(), sp, shard.Plan{
			Opts: opts, MaxResidentReads: cap,
		})
		if err != nil {
			t.Fatalf("shards=%d spill: %v", k, err)
		}
		assertSameContigs(t, fmt.Sprintf("shards=%d spill vs unsharded", k), base, spill.Report)
		assertSameContigs(t, fmt.Sprintf("shards=%d spill vs in-memory", k), inMem.Report, spill.Report)
		if k > 1 && sp.Evictions() == 0 {
			t.Errorf("shards=%d: no evictions despite cap %d < %d reads", k, cap, len(reads))
		}
		if got, want := spill.Report.Counts.ReadCount, base.Counts.ReadCount; got != want {
			t.Errorf("shards=%d: merged ReadCount %d, want %d", k, got, want)
		}
		if got, want := spill.Report.Counts.TotalKmers, base.Counts.TotalKmers; got != want {
			t.Errorf("shards=%d: merged TotalKmers %.0f, want %.0f", k, got, want)
		}
		sp.Close()
	}
}

// TestSpillHeterogeneousEngines runs the spill path on a software+pim
// engine mix and checks the merged contigs against the unsharded
// reference — the functional engine drains its shard, which the admission
// gate accounts for exactly.
func TestSpillHeterogeneousEngines(t *testing.T) {
	reads := workload(35, 1_500, 80, 120, 0)
	opts := engine.Options{Options: assembly.Options{K: 16}}
	sw, err := engine.Lookup("software")
	if err != nil {
		t.Fatal(err)
	}
	base, err := sw.Assemble(context.Background(), genome.NewSliceSource(reads), opts)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := shard.Partition(context.Background(), bytes.NewReader(fastaBytes(t, reads)), genome.FormatFASTA,
		shard.SpillConfig{Shards: 4, Dir: t.TempDir(), MaxResidentReads: 30})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	res, err := shard.AssembleSpill(context.Background(), sp, shard.Plan{
		Engines: []string{"software", "pim"}, Opts: opts, MaxResidentReads: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSameContigs(t, "spill software+pim", base, res.Report)
	if res.Commands <= 0 {
		t.Error("functional shards produced no command-stream aggregates")
	}
}

// TestSpillFewerReadsThanShards pins the empty-tail contract: round-robin
// leaves trailing spill files empty when reads < shards, and those shards
// simply do not run — mirroring Split's clamp.
func TestSpillFewerReadsThanShards(t *testing.T) {
	reads := workload(36, 600, 50, 5, 0)
	sp, err := shard.Partition(context.Background(), bytes.NewReader(fastaBytes(t, reads)), genome.FormatFASTA,
		shard.SpillConfig{Shards: 8, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	res, err := shard.AssembleSpill(context.Background(), sp, shard.Plan{
		Opts: engine.Options{Options: assembly.Options{K: 16}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerShard) != 5 {
		t.Fatalf("%d shards ran, want 5 (one per read)", len(res.PerShard))
	}
	if res.Report.Counts.ReadCount != 5 {
		t.Fatalf("merged ReadCount = %d, want 5", res.Report.Counts.ReadCount)
	}
}

// TestAssembleSpillValidation covers the error paths: a nil/empty spill
// and an unknown engine both fail before any dispatch.
func TestAssembleSpillValidation(t *testing.T) {
	if _, err := shard.AssembleSpill(context.Background(), nil, shard.Plan{}); err == nil {
		t.Error("nil spill accepted")
	}
	sp, err := shard.Partition(context.Background(), bytes.NewReader(fastaBytes(t, workload(37, 500, 40, 8, 0))),
		genome.FormatFASTA, shard.SpillConfig{Shards: 2, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	if _, err := shard.AssembleSpill(context.Background(), sp, shard.Plan{Engines: []string{"warp-drive"}}); err == nil {
		t.Error("unknown engine accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := shard.AssembleSpill(ctx, sp, shard.Plan{}); err == nil {
		t.Error("cancelled spill assembly succeeded")
	}
	// The spill survives failed assembly attempts and still closes cleanly.
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
}

// fastaGen streams n synthetic FASTA records without materialising the
// stream — the shard-layer mirror of the genome package's bounded-memory
// generator (~113 bytes per record).
type fastaGen struct {
	records int
	next    int
	buf     []byte
}

func (g *fastaGen) Read(p []byte) (int, error) {
	for len(g.buf) < len(p) && g.next < g.records {
		g.buf = append(g.buf, fmt.Sprintf(">read_%d\n", g.next)...)
		g.buf = append(g.buf, strings.Repeat("ACGTGGTA", 13)...)
		g.buf = append(g.buf, '\n')
		g.next++
	}
	if len(g.buf) == 0 {
		return 0, io.EOF
	}
	n := copy(p, g.buf)
	g.buf = g.buf[n:]
	return n, nil
}

// TestShardSpillBoundedMemory is the out-of-core memory pin (mirror of the
// genome package's TestScanBoundedMemory): spilling and assembling a
// ~64 MiB synthetic stream under an 8192-read resident cap grows the heap
// by less than 16 MiB — resident memory tracks the cap, not the input.
func TestShardSpillBoundedMemory(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation behaviour and slows the 64 MiB stream ~10x; the bound is pinned in the regular test pass")
	}
	if testing.Short() {
		t.Skip("64 MiB stream in -short mode")
	}
	const records = 600_000 // ≈ 64 MiB of FASTA text
	const capReads = 8192   // the input is ~73x the resident cap

	// The pin is on resident memory, not GC-pacing transients: with the
	// default GOGC the sampler would also see reclaimable garbage between
	// collections. Tight pacing keeps HeapAlloc tracking live data.
	old := debug.SetGCPercent(20)
	defer debug.SetGCPercent(old)

	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)

	// Sample the heap concurrently: the partition and assembly loops have
	// no callback seam, so a background sampler records the peak.
	var (
		peakMu sync.Mutex
		peak   uint64
		stop   = make(chan struct{})
		done   = make(chan struct{})
	)
	go func() {
		defer close(done)
		var ms runtime.MemStats
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				peakMu.Lock()
				if ms.HeapAlloc > peak {
					peak = ms.HeapAlloc
				}
				peakMu.Unlock()
			}
		}
	}()

	sp, err := shard.Partition(context.Background(), &fastaGen{records: records}, genome.FormatFASTA,
		shard.SpillConfig{Shards: 8, Dir: t.TempDir(), MaxResidentReads: capReads})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	if sp.TotalReads() != records {
		t.Fatalf("partitioned %d records, want %d", sp.TotalReads(), records)
	}
	if sp.Evictions() == 0 {
		t.Error("no evictions on a stream ~73x the resident cap")
	}

	opts := engine.Options{Options: assembly.Options{K: 16}}
	res, err := shard.AssembleSpill(context.Background(), sp, shard.Plan{
		Opts: opts, MaxResidentReads: capReads, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	close(stop)
	<-done

	peakMu.Lock()
	growth := int64(peak) - int64(base.HeapAlloc)
	peakMu.Unlock()
	t.Logf("heap growth: %.1f MiB (baseline %.1f MiB) over a %d-record stream",
		float64(growth)/(1<<20), float64(base.HeapAlloc)/(1<<20), records)
	if growth > 16<<20 {
		t.Errorf("heap grew %.1f MiB while spill-assembling, want < 16 MiB", float64(growth)/(1<<20))
	}

	if got := res.Report.Counts.ReadCount; got != records {
		t.Fatalf("merged ReadCount = %d, want %d", got, records)
	}
	// Every record is the same 104-base sequence, so the merged contigs
	// must equal a direct assembly of that one read.
	single, err := genome.FromString(strings.Repeat("ACGTGGTA", 13))
	if err != nil {
		t.Fatal(err)
	}
	sw, err := engine.Lookup("software")
	if err != nil {
		t.Fatal(err)
	}
	want, err := sw.Assemble(context.Background(), genome.NewSliceSource([]*genome.Sequence{single}), opts)
	if err != nil {
		t.Fatal(err)
	}
	assertSameContigs(t, "64 MiB stream", want, res.Report)
}
