package shard_test

import (
	"context"
	"reflect"
	"testing"

	"pimassembler/internal/assembly"
	"pimassembler/internal/engine"
	"pimassembler/internal/genome"
	"pimassembler/internal/shard"
)

// TestOneShardByteIdentical pins the pass-through contract: a 1-shard run
// returns the software engine's report verbatim (same struct, field for
// field), so `-shards 1` CLI output is byte-identical to an unsharded run.
func TestOneShardByteIdentical(t *testing.T) {
	reads := workload(11, 2_000, 101, 150, 0.01)
	opts := engine.Options{Options: assembly.Options{K: 16}}

	sw, err := engine.Lookup("software")
	if err != nil {
		t.Fatal(err)
	}
	base, err := sw.Assemble(context.Background(), genome.NewSliceSource(reads), opts)
	if err != nil {
		t.Fatal(err)
	}

	res, err := shard.Assemble(context.Background(), reads, shard.Plan{Shards: 1, Opts: opts})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerShard) != 1 || res.Report != res.PerShard[0] {
		t.Fatal("1-shard Result.Report is not the shard's report verbatim")
	}
	if !reflect.DeepEqual(stripClocks(res.Report), stripClocks(base)) {
		t.Errorf("1-shard report differs from the unsharded software engine:\n got %+v\nwant %+v",
			res.Report, base)
	}
}

// stripClocks zeroes the wall-clock timings, the only legitimately
// non-deterministic Report field.
func stripClocks(r *engine.Report) engine.Report {
	c := *r
	c.Timings = nil
	return c
}

// TestShardCountInvariance is the tentpole property: for a random read set
// and every shard count k ∈ {1..8}, the merged contig sequences are
// byte-identical to the unsharded software baseline, and the summed
// workload OpCounts are invariant in k.
func TestShardCountInvariance(t *testing.T) {
	trials := []struct {
		name                         string
		seed                         uint64
		genomeLen, readLen, numReads int
		errRate                      float64
	}{
		{"clean reads", 21, 2_000, 101, 150, 0},
		{"erroneous reads", 22, 1_500, 80, 200, 0.01}, // tips/bubbles in the graph
		{"short genome", 23, 400, 60, 64, 0},
		{"reads barely above k", 24, 900, 18, 120, 0},
	}
	opts := engine.Options{Options: assembly.Options{K: 16}}
	for _, tr := range trials {
		t.Run(tr.name, func(t *testing.T) {
			reads := workload(tr.seed, tr.genomeLen, tr.readLen, tr.numReads, tr.errRate)
			sw, err := engine.Lookup("software")
			if err != nil {
				t.Fatal(err)
			}
			base, err := sw.Assemble(context.Background(), genome.NewSliceSource(reads), opts)
			if err != nil {
				t.Fatal(err)
			}
			for k := 1; k <= 8; k++ {
				res, err := shard.Assemble(context.Background(), reads, shard.Plan{Shards: k, Opts: opts})
				if err != nil {
					t.Fatalf("k=%d: %v", k, err)
				}
				assertSameContigs(t, tr.name, base, res.Report)
				c := res.Report.Counts
				if c == nil {
					t.Fatalf("k=%d: merged report has no counts", k)
				}
				if c.ReadCount != base.Counts.ReadCount {
					t.Errorf("k=%d: merged ReadCount %d, want %d", k, c.ReadCount, base.Counts.ReadCount)
				}
				if c.TotalKmers != base.Counts.TotalKmers {
					t.Errorf("k=%d: merged TotalKmers %.0f, want %.0f", k, c.TotalKmers, base.Counts.TotalKmers)
				}
				if c.DistinctKmers != base.Counts.DistinctKmers {
					t.Errorf("k=%d: merged DistinctKmers %.0f, want %.0f", k, c.DistinctKmers, base.Counts.DistinctKmers)
				}
				if c.Nodes != base.Counts.Nodes || c.Edges != base.Counts.Edges {
					t.Errorf("k=%d: merged graph %v nodes / %v edges, want %v / %v",
						k, c.Nodes, c.Edges, base.Counts.Nodes, base.Counts.Edges)
				}
				if c.ReadLen != base.Counts.ReadLen {
					t.Errorf("k=%d: merged ReadLen %d, want %d", k, c.ReadLen, base.Counts.ReadLen)
				}
			}
		})
	}
}

// TestWorkerCountInvariance: the merged report is bit-identical whatever
// the dispatch pool width — sharding inherits the parallel determinism
// contract end to end.
func TestWorkerCountInvariance(t *testing.T) {
	reads := workload(31, 2_000, 101, 150, 0)
	opts := engine.Options{Options: assembly.Options{K: 16}}
	var want *engine.Report
	for _, workers := range []int{1, 3, 8} {
		res, err := shard.Assemble(context.Background(), reads, shard.Plan{
			Shards: 5, Opts: opts, Workers: workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := stripClocks(res.Report)
		if want == nil {
			w := got
			want = &w
			continue
		}
		if !reflect.DeepEqual(got, *want) {
			t.Errorf("workers=%d: merged report differs from workers=1 run", workers)
		}
	}
}
