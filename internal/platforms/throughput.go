package platforms

import "fmt"

// BulkOp enumerates the two §II-B micro-benchmark operations.
type BulkOp int

const (
	// OpXNOR is the bulk bit-wise XNOR comparison.
	OpXNOR BulkOp = iota
	// OpAdd is the bulk element-wise addition (32-bit lanes).
	OpAdd
)

// String implements fmt.Stringer.
func (op BulkOp) String() string {
	if op == OpXNOR {
		return "XNOR"
	}
	return "ADD"
}

// AddElemBits is the element width of the bulk-addition micro-benchmark.
const AddElemBits = 32

// trafficBytesPerResultBit is the off-array traffic of a bandwidth-bound
// platform per result bit: read two operand bits, write one result bit —
// 3 bits = 3/8 bytes regardless of op (the add reads/writes the same
// streams word-wise).
const trafficBytesPerResultBit = 3.0 / 8.0

// OpLatencyNS returns the latency of one bulk operation over nBits-bit
// operands on this platform.
func (s Spec) OpLatencyNS(op BulkOp, nBits float64) float64 {
	if nBits <= 0 {
		panic(fmt.Sprintf("platforms: non-positive operand size %v", nBits))
	}
	switch s.Kind {
	case KindBandwidth:
		bytes := nBits * trafficBytesPerResultBit
		return s.LaunchOverheadNS + bytes/s.SeqBandwidthGBs // GB/s == bytes/ns
	case KindInSitu:
		g := PIMGeometry()
		lanes := float64(g.ParallelBits())
		var aapsPerWave float64
		var waves float64
		switch op {
		case OpXNOR:
			// One wave computes `lanes` result bits.
			aapsPerWave = s.XNORCycles
			waves = ceilDiv(nBits, lanes)
		case OpAdd:
			// One wave computes `lanes` element lanes × AddElemBits result
			// bits, at AddCyclesPerBit AAPs per bit-plane.
			aapsPerWave = s.AddCyclesPerBit * AddElemBits
			waves = ceilDiv(nBits/AddElemBits, lanes)
		default:
			panic(fmt.Sprintf("platforms: unknown op %v", op))
		}
		return 2e3 + waves*aapsPerWave*AAPLatencyNS()
	default:
		panic(fmt.Sprintf("platforms: unknown kind %v", s.Kind))
	}
}

// Throughput returns bits of operand processed per second for the bulk op.
func (s Spec) Throughput(op BulkOp, nBits float64) float64 {
	return nBits / s.OpLatencyNS(op, nBits) * 1e9
}

func ceilDiv(a, b float64) float64 {
	w := a / b
	if float64(int64(w)) != w {
		return float64(int64(w)) + 1
	}
	return w
}

// ThroughputRow is one platform's series over the paper's three vector
// lengths (2^27, 2^28, 2^29 bits), per Fig. 3b.
type ThroughputRow struct {
	Platform string
	Op       BulkOp
	BitsPerS [3]float64 // at 2^27, 2^28, 2^29 bits
}

// Fig3bSizes lists the micro-benchmark vector lengths.
func Fig3bSizes() []float64 {
	return []float64{1 << 27, 1 << 28, 1 << 29}
}

// Fig3b computes the full Fig. 3b matrix: throughput of XNOR and addition
// for every platform at every vector length.
func Fig3b() []ThroughputRow {
	var rows []ThroughputRow
	for _, op := range []BulkOp{OpXNOR, OpAdd} {
		for _, s := range All() {
			r := ThroughputRow{Platform: s.Name, Op: op}
			for i, n := range Fig3bSizes() {
				r.BitsPerS[i] = s.Throughput(op, n)
			}
			rows = append(rows, r)
		}
	}
	return rows
}

// MeanThroughput averages a row's three sizes.
func (r ThroughputRow) MeanThroughput() float64 {
	return (r.BitsPerS[0] + r.BitsPerS[1] + r.BitsPerS[2]) / 3
}
