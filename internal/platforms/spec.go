// Package platforms defines the analytical models of the seven evaluated
// platforms: PIM-Assembler itself plus the paper's baselines — Intel Core-i7
// CPU, NVIDIA GTX 1080Ti GPU, HMC 2.0, Ambit, DRISA-1T1C and DRISA-3T1C.
//
// Two model families cover them:
//
//   - bandwidth-bound (CPU, GPU, HMC): bulk bit-wise throughput is limited
//     by effective memory bandwidth, as the paper observes ("either the
//     external or internal DRAM bandwidth has limited the throughput");
//   - in-situ PIM (P-A, Ambit, DRISA variants): throughput is row-parallel
//     compute bound, parameterised by AAP cycle counts per operation.
//
// Every constant that shapes a figure is in this file with its provenance;
// see DESIGN.md §1 and §4.3.
package platforms

import (
	"fmt"
	"strings"

	"pimassembler/internal/dram"
)

// Kind distinguishes the two model families.
type Kind int

const (
	// KindBandwidth models a von-Neumann platform limited by memory
	// bandwidth.
	KindBandwidth Kind = iota
	// KindInSitu models a processing-in-DRAM platform limited by AAP
	// compute cycles.
	KindInSitu
)

// Spec holds one platform's analytical parameters.
type Spec struct {
	Name string
	Kind Kind

	// --- bandwidth-bound parameters ---

	// SeqBandwidthGBs is the effective sequential/streaming bandwidth in
	// GB/s for bulk bit-wise kernels.
	SeqBandwidthGBs float64
	// RandBandwidthGBs is the effective bandwidth for pointer-chasing /
	// hash-probe access patterns (GUPS-like), in GB/s.
	RandBandwidthGBs float64
	// LaunchOverheadNS is the fixed per-operation overhead (kernel launch,
	// loop setup).
	LaunchOverheadNS float64

	// --- in-situ PIM parameters (AAP cycle counts include operand
	//     staging/copy and, for the baselines, their row-initialisation) ---

	// XNORCycles is the AAP count of one row-wide XNOR.
	XNORCycles float64
	// AddCyclesPerBit is the AAP count per bit position of a row-parallel
	// full add.
	AddCyclesPerBit float64
	// IncCyclesPerBit is the AAP count per bit position of the hash-counter
	// increment (PIM_Add(k_mer, 1)).
	IncCyclesPerBit float64
	// TraverseStepAAPs is the AAP count of one sequential Euler-walk step
	// (latency-bound; no row parallelism helps).
	TraverseStepAAPs float64
	// DeBruijnAAPsPerEdge is the AAP count of inserting one node/edge pair
	// (MEM_insert-dominated).
	DeBruijnAAPsPerEdge float64
	// DispatchParallel is the number of sub-arrays the controller keeps
	// concurrently busy (command-issue constrained; all in-situ designs
	// share the controller architecture, so the value is common).
	DispatchParallel float64
	// EnergyScale multiplies PIM-Assembler's per-AAP energy: >1 for the
	// baselines due to triple/quintuple-row activation, row initialisation,
	// and (DRISA) per-cell compute circuitry.
	EnergyScale float64
	// InitStallFraction is the fraction of run time a baseline spends on
	// row initialisation and extra operand copies that stall the compute
	// path (feeds the Fig. 11 MBR model).
	InitStallFraction float64

	// --- shared parameters ---

	// SchedulerEfficiency is the achievable fraction of post-stall peak
	// throughput (feeds the Fig. 11 RUR model).
	SchedulerEfficiency float64
	// StagePowerW is the platform's typical power draw while running the
	// genome pipeline, before the Pd scaling of Fig. 10 (in-situ platforms
	// compute power from energy instead; this field covers CPU/GPU/HMC).
	StagePowerW float64
	// IdlePowerW is the background/static power.
	IdlePowerW float64
}

// Geometry shared by all in-situ platforms for fairness, per §II-B: "an
// identical physical memory configuration is also considered".
func PIMGeometry() dram.Geometry { return dram.ThroughputConfig() }

// AAPLatencyNS returns the common AAP latency from the DDR3-1600 timing.
func AAPLatencyNS() float64 { return dram.DefaultTiming().AAP() }

// EnergyPerAAPpJ is PIM-Assembler's per-sub-array AAP energy used by the
// analytical power model: 580 pJ covering array core, command distribution,
// global word-line drivers and controller share (the functional meter in
// internal/dram counts the array core alone).
const EnergyPerAAPpJ = 580.0

// PIMAssembler returns the paper's platform: single-cycle two-row XNOR
// (3 AAPs with RowClone staging), 2-cycle/bit addition (6 with staging),
// 7-AAP/bit counter increment (5 copies + XOR + TRA-AND).
func PIMAssembler() Spec {
	return Spec{
		Name:                "P-A",
		Kind:                KindInSitu,
		XNORCycles:          3,
		AddCyclesPerBit:     6,
		IncCyclesPerBit:     7,
		TraverseStepAAPs:    1,
		DeBruijnAAPsPerEdge: 14,
		DispatchParallel:    5120,
		EnergyScale:         1.0,
		InitStallFraction:   0.0,
		SchedulerEfficiency: 0.72,
		IdlePowerW:          3.2,
	}
}

// Ambit: X(N)OR costs 7 memory cycles (paper §I citing [5]) including its
// control-row initialisation; additions are majority-based with dual-contact
// cells; every op triple-row-activates, raising energy ≈3×.
func Ambit() Spec {
	return Spec{
		Name:                "Ambit",
		Kind:                KindInSitu,
		XNORCycles:          7,
		AddCyclesPerBit:     10,
		IncCyclesPerBit:     14,
		TraverseStepAAPs:    4,
		DeBruijnAAPsPerEdge: 16,
		DispatchParallel:    5120,
		EnergyScale:         2.92,
		InitStallFraction:   0.20,
		SchedulerEfficiency: 0.62,
		IdlePowerW:          3.2,
	}
}

// DRISA1T1C (D1): NOR-based 1T1C computing; good raw logic throughput
// (6-cycle XNOR) but heavy copy traffic for arithmetic since every
// intermediate migrates through compute rows.
func DRISA1T1C() Spec {
	return Spec{
		Name:                "D1",
		Kind:                KindInSitu,
		XNORCycles:          6,
		AddCyclesPerBit:     11,
		IncCyclesPerBit:     12,
		TraverseStepAAPs:    4,
		DeBruijnAAPsPerEdge: 16,
		DispatchParallel:    5120,
		EnergyScale:         3.46,
		InitStallFraction:   0.25,
		SchedulerEfficiency: 0.64,
		IdlePowerW:          3.2,
	}
}

// DRISA3T1C (D3): 3T1C cells with in-cell AND + shift; slowest bulk logic
// (11-cycle XNOR) but comparatively efficient arithmetic chains.
func DRISA3T1C() Spec {
	return Spec{
		Name:                "D3",
		Kind:                KindInSitu,
		XNORCycles:          11,
		AddCyclesPerBit:     13,
		IncCyclesPerBit:     10,
		TraverseStepAAPs:    3.2,
		DeBruijnAAPsPerEdge: 16,
		DispatchParallel:    5120,
		EnergyScale:         2.80,
		InitStallFraction:   0.30,
		SchedulerEfficiency: 0.73,
		IdlePowerW:          3.2,
	}
}

// CPU: Core-i7 (4C/8T) with two 64-bit DDR4-1866/2133 channels (§II-B):
// peak ≈34 GB/s; bulk bit-wise kernels run at the bandwidth roofline.
// Random hash probes achieve ≈2 GB/s of useful traffic (GUPS-like).
func CPU() Spec {
	return Spec{
		Name:                "CPU",
		Kind:                KindBandwidth,
		SeqBandwidthGBs:     34.1,
		RandBandwidthGBs:    2.0,
		LaunchOverheadNS:    5e3,
		SchedulerEfficiency: 0.45,
		StagePowerW:         95,
		IdlePowerW:          25,
	}
}

// GPU: GTX 1080Ti-class Pascal, 3584 CUDA cores @1.5 GHz, 352-bit GDDR5X
// (peak 484 GB/s). Chained bulk bit-wise kernels at 2^27..2^29-bit sizes
// achieve ≈25 % of peak once launch/sync overhead is folded in; hash-probe
// patterns achieve ≈15 GB/s of useful traffic.
func GPU() Spec {
	return Spec{
		Name:                "GPU",
		Kind:                KindBandwidth,
		SeqBandwidthGBs:     120,
		RandBandwidthGBs:    15,
		LaunchOverheadNS:    20e3,
		SchedulerEfficiency: 0.65,
		StagePowerW:         280,
		IdlePowerW:          55,
	}
}

// HMC 2.0: 32 vaults × 10 GB/s (§II-B). Vault-logic bulk ops sustain ≈35 %
// of aggregate internal bandwidth after vault-controller serialisation.
func HMC() Spec {
	return Spec{
		Name:                "HMC",
		Kind:                KindBandwidth,
		SeqBandwidthGBs:     112, // 320 GB/s aggregate × 0.35
		RandBandwidthGBs:    24,
		LaunchOverheadNS:    8e3,
		SchedulerEfficiency: 0.5,
		StagePowerW:         65,
		IdlePowerW:          11,
	}
}

// All returns the seven platforms in the paper's comparison order.
func All() []Spec {
	return []Spec{CPU(), GPU(), HMC(), Ambit(), DRISA1T1C(), DRISA3T1C(), PIMAssembler()}
}

// PIMBaselines returns the four in-situ platforms (P-A last).
func PIMBaselines() []Spec {
	return []Spec{Ambit(), DRISA1T1C(), DRISA3T1C(), PIMAssembler()}
}

// Names returns the seven platform names in the paper's comparison order.
func Names() []string {
	specs := All()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// ByName returns the named spec, matching case-insensitively; the
// unknown-name error lists every valid platform.
func ByName(name string) (Spec, error) {
	for _, s := range All() {
		if strings.EqualFold(s.Name, name) {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("platforms: unknown platform %q (valid: %s)",
		name, strings.Join(Names(), ", "))
}
