package platforms

import (
	"math"
	"strings"
	"testing"
)

func TestAllPlatformsPresent(t *testing.T) {
	names := map[string]bool{}
	for _, s := range All() {
		names[s.Name] = true
	}
	for _, want := range []string{"CPU", "GPU", "HMC", "Ambit", "D1", "D3", "P-A"} {
		if !names[want] {
			t.Errorf("platform %s missing", want)
		}
	}
	if len(All()) != 7 {
		t.Fatalf("got %d platforms, want 7", len(All()))
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("Ambit")
	if err != nil || s.Name != "Ambit" {
		t.Fatalf("ByName failed: %v", err)
	}
	if _, err := ByName("TPU"); err == nil {
		t.Fatal("unknown platform accepted")
	}
}

func TestByNameCaseInsensitive(t *testing.T) {
	for query, want := range map[string]string{
		"GPU": "GPU", "gpu": "GPU", "ambit": "Ambit",
		"d3": "D3", "p-a": "P-A", "hmc": "HMC",
	} {
		s, err := ByName(query)
		if err != nil {
			t.Fatalf("ByName(%q): %v", query, err)
		}
		if s.Name != want {
			t.Errorf("ByName(%q) = %q, want %q", query, s.Name, want)
		}
	}
}

func TestByNameErrorListsValidNames(t *testing.T) {
	_, err := ByName("TPU")
	if err == nil {
		t.Fatal("unknown platform accepted")
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("unknown-platform error %q does not list %q", err, name)
		}
	}
}

func TestPaperXNORCycleCounts(t *testing.T) {
	// §I: Ambit imposes 7 memory cycles for X(N)OR; P-A's full staged op is
	// 2 RowClones + 1 compute AAP.
	if Ambit().XNORCycles != 7 {
		t.Fatalf("Ambit XNOR cycles %v, paper says 7", Ambit().XNORCycles)
	}
	if PIMAssembler().XNORCycles != 3 {
		t.Fatalf("P-A XNOR cycles %v, want 3 (2 staging + 1 compute)", PIMAssembler().XNORCycles)
	}
}

func TestThroughputHeadlineRatios(t *testing.T) {
	mean := func(name string, op BulkOp) float64 {
		s, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, n := range Fig3bSizes() {
			sum += s.Throughput(op, n)
		}
		return sum / 3
	}
	paX := mean("P-A", OpXNOR)
	paA := mean("P-A", OpAdd)

	// Paper §I: 8.4x vs CPU averaged over the bulk ops (tolerance ±20%).
	cpuRatio := (paX/mean("CPU", OpXNOR) + paA/mean("CPU", OpAdd)) / 2
	if cpuRatio < 6.7 || cpuRatio > 10.1 {
		t.Errorf("P-A vs CPU ratio %.2f outside 8.4x ±20%%", cpuRatio)
	}
	// Paper §II-B: 2.3x vs Ambit, 1.9x vs D1, 3.7x vs D3 on XNOR.
	for _, c := range []struct {
		name  string
		paper float64
	}{{"Ambit", 2.3}, {"D1", 1.9}, {"D3", 3.7}} {
		r := paX / mean(c.name, OpXNOR)
		if r < c.paper*0.8 || r > c.paper*1.2 {
			t.Errorf("P-A vs %s XNOR ratio %.2f outside %.1fx ±20%%", c.name, r, c.paper)
		}
	}
}

func TestPAOutperformsEverythingOnXNOR(t *testing.T) {
	pa, _ := ByName("P-A")
	paT := pa.Throughput(OpXNOR, 1<<28)
	for _, s := range All() {
		if s.Name == "P-A" {
			continue
		}
		if s.Throughput(OpXNOR, 1<<28) >= paT {
			t.Errorf("%s out-throughputs P-A on XNOR; Fig. 3b shape broken", s.Name)
		}
	}
}

func TestBandwidthPlatformsAreBandwidthLimited(t *testing.T) {
	// Doubling the vector size must leave bandwidth-bound throughput
	// essentially flat (launch overhead amortises).
	for _, name := range []string{"CPU", "GPU", "HMC"} {
		s, _ := ByName(name)
		t1 := s.Throughput(OpXNOR, 1<<27)
		t2 := s.Throughput(OpXNOR, 1<<29)
		if math.Abs(t1-t2)/t2 > 0.05 {
			t.Errorf("%s throughput varies %.1f%% across sizes; should be bandwidth-flat",
				name, 100*math.Abs(t1-t2)/t2)
		}
	}
}

func TestXNORFasterThanAddEverywhereInSitu(t *testing.T) {
	for _, s := range PIMBaselines() {
		if s.Throughput(OpXNOR, 1<<28) <= s.Throughput(OpAdd, 1<<28) {
			t.Errorf("%s: bit-serial add should not beat single-pass XNOR", s.Name)
		}
	}
}

func TestOpLatencyMonotonicInSize(t *testing.T) {
	for _, s := range All() {
		for _, op := range []BulkOp{OpXNOR, OpAdd} {
			if s.OpLatencyNS(op, 1<<27) >= s.OpLatencyNS(op, 1<<29) {
				t.Errorf("%s %v latency not increasing with size", s.Name, op)
			}
		}
	}
}

func TestOpLatencyPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PIMAssembler().OpLatencyNS(OpXNOR, 0)
}

func TestPIMGeometryMatchesThroughputStudy(t *testing.T) {
	g := PIMGeometry()
	if g.ActiveBanks != 8 {
		t.Fatalf("throughput study uses 8 banks, got %d", g.ActiveBanks)
	}
	if g.RowsPerSubarray != 1024 || g.ColsPerSubarray != 256 {
		t.Fatal("sub-array organisation drifted from 1024x256")
	}
}

func TestEnergyScalesOrdering(t *testing.T) {
	// P-A's two-row mechanism must be the cheapest per AAP.
	pa := PIMAssembler()
	for _, s := range []Spec{Ambit(), DRISA1T1C(), DRISA3T1C()} {
		if s.EnergyScale <= pa.EnergyScale {
			t.Errorf("%s energy scale %.2f not above P-A's %.2f", s.Name, s.EnergyScale, pa.EnergyScale)
		}
	}
}

func TestFig3bMatrixComplete(t *testing.T) {
	rows := Fig3b()
	if len(rows) != 14 { // 7 platforms × 2 ops
		t.Fatalf("Fig3b has %d rows, want 14", len(rows))
	}
	for _, r := range rows {
		for i, v := range r.BitsPerS {
			if v <= 0 {
				t.Errorf("%s %v size %d: non-positive throughput", r.Platform, r.Op, i)
			}
		}
	}
}
