package distshard

import (
	"context"
	"io"
	"os"
	"strings"
	"testing"
	"time"

	"pimassembler/internal/assembly"
	"pimassembler/internal/engine"
	"pimassembler/internal/genome"
	"pimassembler/internal/jobqueue"
	"pimassembler/internal/metrics"
	"pimassembler/internal/shard"
)

// faultFixture partitions a small deterministic workload and returns the
// spill plus the unsharded reference report the recovered run must match.
func faultFixture(t *testing.T) (*shard.Spill, *engine.Report, engine.Options) {
	t.Helper()
	reads := workload(61, 1_200, 60, 48, 0)
	opts := engine.Options{Options: assembly.Options{K: 16}}
	sw, err := engine.Lookup("software")
	if err != nil {
		t.Fatal(err)
	}
	base, err := sw.Assemble(context.Background(), genome.NewSliceSource(reads), opts)
	if err != nil {
		t.Fatal(err)
	}
	return partition(t, fastaBytes(t, reads), genome.FormatFASTA, 3), base, opts
}

// recoverRun asserts one armed-once fault recovers: the run succeeds on a
// respawned worker, the merged contigs still match the unsharded
// reference, and no worker process or spill directory outlives the test.
func recoverRun(t *testing.T, mode string, cfg Config) *metrics.Counters {
	t.Helper()
	sp, base, opts := faultFixture(t)
	defer sp.Close()
	c := metrics.NewCounters()
	cfg.WorkerCmd = helperCmd(t)
	cfg.Env = helperEnv(t, mode, true)
	cfg.Opts = opts
	cfg.Counters = c
	cfg.Retry = jobqueue.RetryPolicy{MaxAttempts: 3}
	res, err := Assemble(context.Background(), sp, cfg)
	if err != nil {
		t.Fatalf("armed-once %q fault did not recover: %v", mode, err)
	}
	assertSameContigs(t, mode+" recovery", base, res.Report)
	if got := c.Get("dist.retries"); got < 1 {
		t.Errorf("dist.retries = %d, want >= 1", got)
	}
	if got := c.Get("dist.respawns"); got < 1 {
		t.Errorf("dist.respawns = %d, want >= 1 (fault kills the worker)", got)
	}
	assertNoChildren(t)
	return c
}

// TestWorkerKilledMidShard injects one crash between job acceptance and
// reply: the coordinator must classify it transient, respawn the worker,
// and finish with the exact in-process result.
func TestWorkerKilledMidShard(t *testing.T) {
	recoverRun(t, "die", Config{WorkerProcs: 1})
}

// TestWorkerGarbageFrame injects one burst of non-frame bytes: the frame
// decoder must reject the magic, the coordinator must kill and respawn.
func TestWorkerGarbageFrame(t *testing.T) {
	c := recoverRun(t, "garbage", Config{WorkerProcs: 1})
	if got := c.Get("dist.frame.errors"); got < 1 {
		t.Errorf("dist.frame.errors = %d, want >= 1", got)
	}
}

// TestWorkerTruncatedFrame injects one frame whose header promises more
// payload than ever arrives: the incremental payload read must surface the
// truncation, and the run must recover on a respawn.
func TestWorkerTruncatedFrame(t *testing.T) {
	c := recoverRun(t, "truncate", Config{WorkerProcs: 1})
	if got := c.Get("dist.frame.errors"); got < 1 {
		t.Errorf("dist.frame.errors = %d, want >= 1", got)
	}
}

// TestWorkerHangPastTimeout injects one infinite stall: the per-attempt
// timeout must fire, the hung process must be killed (not leaked), and the
// retry must land on a fresh worker.
func TestWorkerHangPastTimeout(t *testing.T) {
	c := recoverRun(t, "hang", Config{WorkerProcs: 1, Timeout: 500 * time.Millisecond})
	if got := c.Get("dist.timeouts"); got < 1 {
		t.Errorf("dist.timeouts = %d, want >= 1", got)
	}
}

// TestPersistentFaultNamesShard arms the crash on every attempt: the run
// must fail once the budget is exhausted, the error must name the failing
// shard and engine, and the teardown contract still holds — no zombie
// workers, and the spill directory still closes cleanly.
func TestPersistentFaultNamesShard(t *testing.T) {
	sp, _, opts := faultFixture(t)
	c := metrics.NewCounters()
	_, err := Assemble(context.Background(), sp, Config{
		WorkerProcs: 2,
		WorkerCmd:   helperCmd(t),
		Env:         helperEnv(t, "die", false), // every job crashes
		Opts:        opts,
		Retry:       jobqueue.RetryPolicy{MaxAttempts: 2},
		Counters:    c,
	})
	if err == nil {
		t.Fatal("run with a persistently crashing worker succeeded")
	}
	if !strings.Contains(err.Error(), "shard ") || !strings.Contains(err.Error(), "engine ") {
		t.Errorf("failure does not name the shard and engine: %v", err)
	}
	if got := c.Get("dist.retries"); got < 1 {
		t.Errorf("dist.retries = %d, want >= 1", got)
	}
	assertNoChildren(t)
	dir := sp.Dir()
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("spill dir leaked after failed run (stat err %v)", err)
	}
}

// TestCancellationTearsDownWorkers cancels mid-run against hung workers:
// Assemble must return the context error promptly and reap every worker
// process on the way out.
func TestCancellationTearsDownWorkers(t *testing.T) {
	sp, _, opts := faultFixture(t)
	defer sp.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		// Give the workers time to spawn, handshake, and stall on a job.
		time.Sleep(300 * time.Millisecond)
		cancel()
		close(done)
	}()
	_, err := Assemble(ctx, sp, Config{
		WorkerProcs: 2,
		WorkerCmd:   helperCmd(t),
		Env:         helperEnv(t, "hang", false), // every job stalls forever
		Opts:        opts,
	})
	<-done
	if err == nil {
		t.Fatal("cancelled run against hung workers succeeded")
	}
	if ctx.Err() == nil {
		t.Fatalf("run failed before cancellation: %v", err)
	}
	assertNoChildren(t)
}

// TestHandshakeVersionMismatch pins the fail-fast contract: a worker
// speaking a different protocol version is rejected at spawn, terminally —
// no retry loop, no dispatched work.
func TestHandshakeVersionMismatch(t *testing.T) {
	// RunWorker enforces the version worker-side; exercise the
	// coordinator-side check directly over an in-process pipe pair.
	hello := &Hello{Proto: ProtoVersion, K: 16, OptHash: "abc"}
	p := &workerProc{frames: make(chan frameOrErr, 1), done: make(chan struct{})}
	r, w := io.Pipe()
	p.stdin = w
	go func() {
		m, err := readFrame(r)
		if err != nil || m.Type != MsgHello {
			p.frames <- frameOrErr{err: err}
			return
		}
		p.frames <- frameOrErr{msg: &Msg{Type: MsgHello, Hello: &Hello{Proto: ProtoVersion + 7, K: m.Hello.K, OptHash: m.Hello.OptHash}}}
	}()
	err := p.handshake(context.Background(), hello, time.Second)
	if err == nil || !strings.Contains(err.Error(), "protocol version mismatch") {
		t.Fatalf("version-skewed handshake error = %v, want protocol version mismatch", err)
	}
}
