package distshard

import (
	"fmt"

	"pimassembler/internal/assembly"
	"pimassembler/internal/core"
	"pimassembler/internal/debruijn"
	"pimassembler/internal/engine"
	"pimassembler/internal/genome"
)

// toWireReport projects one shard's engine report onto the wire: contig
// and scaffold sequences as ACGT text, counts and timings verbatim, and
// the functional accounting reduced to the aggregate view the merge
// algebra consumes.
func toWireReport(shard int, rep *engine.Report) *WireReport {
	w := &WireReport{
		Shard:   shard,
		Engine:  rep.Engine,
		Family:  int(rep.Family),
		Counts:  rep.Counts,
		Timings: rep.Timings,
		Cost:    rep.Cost,
	}
	w.Contigs = make([]WireContig, len(rep.Contigs))
	for i, c := range rep.Contigs {
		w.Contigs[i] = WireContig{
			Seq:          c.Seq.String(),
			EdgeCount:    c.EdgeCount,
			MeanCoverage: c.MeanCoverage,
		}
	}
	for _, s := range rep.Scaffolds {
		w.Scaffolds = append(w.Scaffolds, WireScaffold{Seq: s.Seq.String(), Contigs: s.Contigs})
	}
	if f := rep.Functional; f != nil {
		w.Functional = &WireFunctional{
			Commands:        f.Commands,
			SerialLatencyNS: f.SerialLatencyNS,
			EnergyPJ:        f.EnergyPJ,
			Subarrays:       f.Subarrays,
			Makespan:        f.Makespan,
		}
	}
	return w
}

// fromWireReport rebuilds the engine report the coordinator merges. The
// inverse of toWireReport up to the documented trimming: the functional
// block carries only its aggregate view (no per-stage schedules or
// histogram), and the Eulerian walk is re-derived by the merge pass.
func fromWireReport(w *WireReport) (*engine.Report, error) {
	if w.Family < 0 || w.Family > int(engine.FamilyAnalytical) {
		return nil, fmt.Errorf("distshard: shard %d report: unknown engine family %d", w.Shard, w.Family)
	}
	rep := &engine.Report{
		Engine:  w.Engine,
		Family:  engine.Family(w.Family),
		Counts:  w.Counts,
		Timings: w.Timings,
		Cost:    w.Cost,
	}
	rep.Contigs = make([]debruijn.Contig, len(w.Contigs))
	for i, c := range w.Contigs {
		seq, err := genome.FromString(c.Seq)
		if err != nil {
			return nil, fmt.Errorf("distshard: shard %d contig %d: %w", w.Shard, i, err)
		}
		rep.Contigs[i] = debruijn.Contig{Seq: seq, EdgeCount: c.EdgeCount, MeanCoverage: c.MeanCoverage}
	}
	for i, s := range w.Scaffolds {
		seq, err := genome.FromString(s.Seq)
		if err != nil {
			return nil, fmt.Errorf("distshard: shard %d scaffold %d: %w", w.Shard, i, err)
		}
		rep.Scaffolds = append(rep.Scaffolds, assembly.Scaffold{Seq: seq, Contigs: s.Contigs})
	}
	if f := w.Functional; f != nil {
		rep.Functional = &core.Summary{
			Commands:        f.Commands,
			SerialLatencyNS: f.SerialLatencyNS,
			EnergyPJ:        f.EnergyPJ,
			Subarrays:       f.Subarrays,
			Makespan:        f.Makespan,
		}
	}
	return rep, nil
}
