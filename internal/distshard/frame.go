// Package distshard lifts the out-of-core sharded assembly protocol across
// process boundaries: a coordinator partitions the input into spill files
// (internal/shard.Partition), launches N worker processes — the same
// binary, in `-worker` mode — over stdin/stdout pipes, dispatches one spill
// file per job, and merges the per-shard reports through the exported
// in-process merge path (shard.Merge), so the merged contigs are
// byte-identical to both the in-process sharded run and the unsharded run
// for count-independent options. This is the ROADMAP's "one big box → a
// fleet" step; see DESIGN.md §17.
//
// Wire protocol: length-prefixed JSON frames. Every frame is an 8-byte
// header — 4 magic bytes "PDSF" then a big-endian uint32 payload length —
// followed by the JSON encoding of one Msg. The first exchange is a
// handshake: the coordinator sends a hello carrying the protocol version,
// k, and a hash of the run options; the worker verifies the version
// against its own compiled-in constant and echoes a hello carrying its
// version, so mismatched binaries on either side fail fast before any work
// is dispatched. Jobs then carry the engine name, the spill-file path, and
// the full options (whose hash the worker re-checks against the
// handshake); the worker answers each job with exactly one result or error
// frame. A bye frame (or stdin EOF) shuts the worker down cleanly.
//
// The payload length is bounded by MaxFramePayload and the payload is read
// incrementally, so a hostile or corrupt length prefix costs at most the
// bytes that actually arrived, never a length-sized allocation.
package distshard

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"

	"pimassembler/internal/assembly"
	"pimassembler/internal/engine"
	"pimassembler/internal/perfmodel"
	"pimassembler/internal/sched"
)

// ProtoVersion is this binary's wire-protocol version. The handshake
// carries it in both directions; any mismatch aborts the worker before a
// job is dispatched.
const ProtoVersion = 1

// MaxFramePayload caps one frame's JSON payload. A length prefix beyond it
// is rejected as hostile or corrupt before any payload is read.
const MaxFramePayload = 256 << 20

// frameMagic opens every frame; garbage on the pipe fails the very first
// header check instead of being interpreted as a length.
var frameMagic = [4]byte{'P', 'D', 'S', 'F'}

// MsgType discriminates the frame payloads.
type MsgType string

const (
	// MsgHello is the handshake, sent coordinator→worker and echoed back.
	MsgHello MsgType = "hello"
	// MsgJob dispatches one spill file to a worker.
	MsgJob MsgType = "job"
	// MsgResult answers a job with the shard's wire report.
	MsgResult MsgType = "result"
	// MsgError answers a job with a failure (Transient marks it retryable).
	MsgError MsgType = "error"
	// MsgBye asks the worker to exit cleanly; it carries no payload.
	MsgBye MsgType = "bye"
)

// Msg is the frame envelope: Type plus exactly the matching payload.
type Msg struct {
	Type   MsgType     `json:"type"`
	Hello  *Hello      `json:"hello,omitempty"`
	Job    *Job        `json:"job,omitempty"`
	Result *WireReport `json:"result,omitempty"`
	Error  *WireError  `json:"error,omitempty"`
}

// Hello is the handshake payload. The coordinator fills all three fields
// from its run; the worker echoes K and OptHash verbatim and substitutes
// its own ProtoVersion, so each side checks the other's binary.
type Hello struct {
	Proto   int    `json:"proto"`
	K       int    `json:"k"`
	OptHash string `json:"optHash"`
}

// Job dispatches one shard: the spill file to stream, the engine to run it
// on, and the full run options (hash-checked against the handshake).
type Job struct {
	Shard     int     `json:"shard"`
	Engine    string  `json:"engine"`
	SpillPath string  `json:"spillPath"`
	Opts      Options `json:"opts"`
}

// WireError is a worker-reported job failure. Transient mirrors
// jobqueue.Transient: the coordinator retries transient failures within
// the shard's attempt budget and treats the rest as terminal.
type WireError struct {
	Shard     int    `json:"shard"`
	Msg       string `json:"msg"`
	Transient bool   `json:"transient"`
}

// Error implements error.
func (e *WireError) Error() string {
	return fmt.Sprintf("distshard: worker error on shard %d: %s", e.Shard, e.Msg)
}

// Options is the wire form of engine.Options: the scalar pipeline
// parameters only. Ref and Counts never cross the wire — quality scoring
// happens in the coordinator's merge pass, and counts-only analytical runs
// have no spill file to dispatch.
type Options struct {
	Assembly  assembly.Options `json:"assembly"`
	Subarrays int              `json:"subarrays"`
}

// wireOptions projects the engine options onto the wire form.
func wireOptions(o engine.Options) Options {
	return Options{Assembly: o.Options, Subarrays: o.Subarrays}
}

// engineOptions rebuilds the engine options a worker runs with.
func (o Options) engineOptions() engine.Options {
	return engine.Options{Options: o.Assembly, Subarrays: o.Subarrays}
}

// hash fingerprints the options for the handshake and the per-job check:
// FNV-64a over the canonical JSON encoding (struct field order is fixed,
// so the encoding is deterministic).
func (o Options) hash() string {
	b, err := json.Marshal(o)
	if err != nil {
		// Options is a closed scalar struct; Marshal cannot fail on it.
		panic(fmt.Sprintf("distshard: hashing options: %v", err))
	}
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}

// WireContig is one contig on the wire: the ACGT text plus its evidence.
type WireContig struct {
	Seq          string  `json:"seq"`
	EdgeCount    int     `json:"edgeCount"`
	MeanCoverage float64 `json:"meanCoverage"`
}

// WireScaffold is one stage-3 scaffold on the wire.
type WireScaffold struct {
	Seq     string `json:"seq"`
	Contigs int    `json:"contigs"`
}

// WireFunctional is the functional family's aggregate view: exactly what
// the merge algebra consumes (commands and energy summed, makespan maxed).
// The per-stage schedules and command histogram stay worker-side — the
// coordinator never needs them.
type WireFunctional struct {
	Commands        int64        `json:"commands"`
	SerialLatencyNS float64      `json:"serialLatencyNS"`
	EnergyPJ        float64      `json:"energyPJ"`
	Subarrays       int          `json:"subarrays"`
	Makespan        sched.Result `json:"makespan"`
}

// WireReport is one shard's engine.Report on the wire: contigs, scaffolds,
// the workload operation counts, and the family-specific aggregates. The
// Eulerian walk and diagnostic error are deliberately dropped — the merge
// pass re-derives both on the union graph.
type WireReport struct {
	Shard      int                    `json:"shard"`
	Engine     string                 `json:"engine"`
	Family     int                    `json:"family"`
	Contigs    []WireContig           `json:"contigs"`
	Scaffolds  []WireScaffold         `json:"scaffolds,omitempty"`
	Counts     *assembly.OpCounts     `json:"counts,omitempty"`
	Timings    *assembly.StageTimings `json:"timings,omitempty"`
	Functional *WireFunctional        `json:"functional,omitempty"`
	Cost       *perfmodel.StageCost   `json:"cost,omitempty"`
}

// validate checks the envelope invariant: a known type carrying its
// payload. Unknown extra payloads are tolerated (forward compatibility);
// a missing required payload is a protocol error.
func (m *Msg) validate() error {
	switch m.Type {
	case MsgHello:
		if m.Hello == nil {
			return fmt.Errorf("distshard: hello frame without handshake payload")
		}
	case MsgJob:
		if m.Job == nil {
			return fmt.Errorf("distshard: job frame without job payload")
		}
	case MsgResult:
		if m.Result == nil {
			return fmt.Errorf("distshard: result frame without report payload")
		}
	case MsgError:
		if m.Error == nil {
			return fmt.Errorf("distshard: error frame without error payload")
		}
	case MsgBye:
		// No payload.
	default:
		return fmt.Errorf("distshard: unknown frame type %q", m.Type)
	}
	return nil
}

// writeFrame encodes one message as a length-prefixed frame.
func writeFrame(w io.Writer, m *Msg) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("distshard: encoding frame: %w", err)
	}
	if len(payload) > MaxFramePayload {
		return fmt.Errorf("distshard: frame payload %d bytes exceeds cap %d", len(payload), MaxFramePayload)
	}
	var hdr [8]byte
	copy(hdr[:4], frameMagic[:])
	binary.BigEndian.PutUint32(hdr[4:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("distshard: writing frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("distshard: writing frame payload: %w", err)
	}
	return nil
}

// readFrame decodes the next frame. io.EOF (verbatim) means the stream
// ended cleanly between frames; any other error is a protocol failure —
// bad magic, a hostile length prefix, a truncated payload, or malformed
// JSON. The payload is copied incrementally, so a corrupt length costs at
// most the bytes that actually arrived.
func readFrame(r io.Reader) (*Msg, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("distshard: reading frame header: %w", err)
	}
	if !bytes.Equal(hdr[:4], frameMagic[:]) {
		return nil, fmt.Errorf("distshard: bad frame magic %q", hdr[:4])
	}
	n := binary.BigEndian.Uint32(hdr[4:])
	if n > MaxFramePayload {
		return nil, fmt.Errorf("distshard: frame payload length %d exceeds cap %d (hostile or corrupt prefix)", n, MaxFramePayload)
	}
	var buf bytes.Buffer
	if _, err := io.CopyN(&buf, r, int64(n)); err != nil {
		return nil, fmt.Errorf("distshard: truncated frame (%d of %d payload bytes): %w", buf.Len(), n, err)
	}
	m := new(Msg)
	if err := json.Unmarshal(buf.Bytes(), m); err != nil {
		return nil, fmt.Errorf("distshard: decoding frame payload: %w", err)
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	return m, nil
}
