package distshard

import (
	"bufio"
	"context"
	"fmt"
	"io"

	"pimassembler/internal/engine"
	"pimassembler/internal/genome"
	"pimassembler/internal/jobqueue"
)

// RunWorker serves one worker process over its stdin/stdout pipes: perform
// the handshake, then answer job frames with result or error frames until
// a bye frame or EOF. cmd/assemble's `-worker` mode (and the test
// harnesses) call this with the process's real pipes; reg nil means the
// default engine registry — the same one the coordinator validated names
// against, since both ends are the same binary.
//
// RunWorker returns nil on a clean shutdown (bye or EOF between frames)
// and an error on any protocol violation: a version-mismatched handshake,
// a job whose options do not hash to the handshake's fingerprint, or a
// malformed frame. Engine failures are not protocol errors — they are
// reported to the coordinator as error frames (with the jobqueue transient
// classification) and the worker keeps serving.
func RunWorker(r io.Reader, w io.Writer, reg *engine.Registry) error {
	if reg == nil {
		reg = engine.Default()
	}
	br := bufio.NewReader(r)
	bw := bufio.NewWriter(w)

	m, err := readFrame(br)
	if err != nil {
		return fmt.Errorf("distshard: worker handshake: %w", err)
	}
	if m.Type != MsgHello {
		return fmt.Errorf("distshard: worker handshake: expected hello, got %q", m.Type)
	}
	hello := m.Hello
	// Echo the handshake with this binary's own protocol version before
	// enforcing the match, so a mismatched coordinator reads a well-formed
	// reply naming the worker's version instead of a broken pipe.
	reply := &Msg{Type: MsgHello, Hello: &Hello{Proto: ProtoVersion, K: hello.K, OptHash: hello.OptHash}}
	if err := writeFrame(bw, reply); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("distshard: worker handshake: %w", err)
	}
	if hello.Proto != ProtoVersion {
		return fmt.Errorf("distshard: protocol version mismatch: coordinator speaks %d, this binary speaks %d", hello.Proto, ProtoVersion)
	}

	for {
		m, err := readFrame(br)
		if err == io.EOF {
			// Coordinator closed the pipe: clean shutdown.
			return nil
		}
		if err != nil {
			return err
		}
		switch m.Type {
		case MsgBye:
			return nil
		case MsgJob:
			if got := m.Job.Opts.hash(); got != hello.OptHash {
				return fmt.Errorf("distshard: job %d options hash %s does not match handshake %s", m.Job.Shard, got, hello.OptHash)
			}
			if err := writeFrame(bw, runJob(reg, m.Job)); err != nil {
				return err
			}
			if err := bw.Flush(); err != nil {
				return fmt.Errorf("distshard: worker reply: %w", err)
			}
		default:
			return fmt.Errorf("distshard: worker: unexpected frame %q", m.Type)
		}
	}
}

// runJob executes one dispatched shard and packages the outcome as the
// reply frame. The spill file streams through a FileSource exactly as the
// in-process AssembleSpill path streams it, so the per-shard report — and
// therefore the coordinator's merge — is identical to the in-process run.
func runJob(reg *engine.Registry, job *Job) *Msg {
	fail := func(err error) *Msg {
		return &Msg{Type: MsgError, Error: &WireError{
			Shard:     job.Shard,
			Msg:       err.Error(),
			Transient: jobqueue.Transient(err),
		}}
	}
	eng, err := reg.Lookup(job.Engine)
	if err != nil {
		return fail(err)
	}
	src, err := genome.OpenFileSource(job.SpillPath)
	if err != nil {
		return fail(err)
	}
	defer src.Close()
	rep, err := eng.Assemble(context.Background(), src, job.Opts.engineOptions())
	if err != nil {
		return fail(err)
	}
	return &Msg{Type: MsgResult, Result: toWireReport(job.Shard, rep)}
}
