package distshard

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"strings"
	"testing"

	"pimassembler/internal/assembly"
	"pimassembler/internal/engine"
	"pimassembler/internal/genome"
	"pimassembler/internal/metrics"
	"pimassembler/internal/shard"
	"pimassembler/internal/stats"
)

// workload samples a deterministic read set from a synthetic genome.
func workload(seed uint64, genomeLen, readLen, n int, errRate float64) []*genome.Sequence {
	rng := stats.NewRNG(seed)
	ref := genome.GenerateGenome(genomeLen, rng)
	return genome.NewReadSampler(ref, readLen, errRate, rng).Sample(n)
}

// fastaBytes serialises reads as the FASTA stream the partitioner ingests.
func fastaBytes(t *testing.T, reads []*genome.Sequence) []byte {
	t.Helper()
	var buf bytes.Buffer
	rw := genome.NewRecordWriter(&buf)
	for i, r := range reads {
		if err := rw.Write(genome.Record{Name: fmt.Sprintf("r%d", i), Seq: r}); err != nil {
			t.Fatal(err)
		}
	}
	if err := rw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// fastqBytes serialises reads as four-line FASTQ records (uniform quality —
// the pipeline only consumes the bases).
func fastqBytes(t *testing.T, reads []*genome.Sequence) []byte {
	t.Helper()
	var b strings.Builder
	for i, r := range reads {
		s := r.String()
		fmt.Fprintf(&b, "@r%d\n%s\n+\n%s\n", i, s, strings.Repeat("I", len(s)))
	}
	return []byte(b.String())
}

// partition spills data under the test's temp dir.
func partition(t *testing.T, data []byte, format genome.Format, shards int) *shard.Spill {
	t.Helper()
	sp, err := shard.Partition(context.Background(), bytes.NewReader(data), format,
		shard.SpillConfig{Shards: shards, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// assertSameContigs requires got's contig set to be byte-identical to
// want's: same count, same order, same sequences.
func assertSameContigs(t *testing.T, label string, want, got *engine.Report) {
	t.Helper()
	if len(want.Contigs) != len(got.Contigs) {
		t.Fatalf("%s: %d contigs, want %d", label, len(got.Contigs), len(want.Contigs))
	}
	for i := range want.Contigs {
		if !want.Contigs[i].Seq.Equal(got.Contigs[i].Seq) {
			t.Fatalf("%s: contig %d differs:\n got %s\nwant %s", label, i,
				got.Contigs[i].Seq, want.Contigs[i].Seq)
		}
	}
}

// TestCrossProcessConformance is the distributed identity property, the
// cross-process mirror of the shard package's TestSpillMatchesInMemory:
// for shard/worker counts {1, 2, 8} × {FASTA, FASTQ} × k ∈ {4, 16}, the
// multi-process merged contigs are byte-identical to the in-process
// out-of-core run over the same spill AND to the unsharded reference, and
// the summed workload counters are partition-invariant. Workers are real
// child processes (this test binary re-executed via TestMain), so the
// whole frame protocol — handshake, dispatch, report decode, merge — is on
// the identity path.
func TestCrossProcessConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns 11 worker-process fleets")
	}
	type sample struct {
		format genome.Format
		data   []byte
	}
	reads := workload(51, 3_000, 64, 96, 0.01)
	samples := []sample{
		{genome.FormatFASTA, fastaBytes(t, reads)},
		{genome.FormatFASTQ, fastqBytes(t, reads)},
	}
	cmd := helperCmd(t)
	env := helperEnv(t, "worker", false)

	for _, ksize := range []int{4, 16} {
		opts := engine.Options{Options: assembly.Options{K: ksize}}
		sw, err := engine.Lookup("software")
		if err != nil {
			t.Fatal(err)
		}
		base, err := sw.Assemble(context.Background(), genome.NewSliceSource(reads), opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range samples {
			for _, shards := range []int{1, 2, 8} {
				label := fmt.Sprintf("k=%d %v shards=%d", ksize, s.format, shards)
				sp := partition(t, s.data, s.format, shards)
				inProc, err := shard.AssembleSpill(context.Background(), sp, shard.Plan{Opts: opts})
				if err != nil {
					t.Fatalf("%s in-proc: %v", label, err)
				}
				dist, err := Assemble(context.Background(), sp, Config{
					WorkerProcs: shards, // 1, 2, and 8 worker processes
					WorkerCmd:   cmd,
					Env:         env,
					Opts:        opts,
				})
				if err != nil {
					t.Fatalf("%s dist: %v", label, err)
				}
				assertSameContigs(t, label+" dist vs in-proc spill", inProc.Report, dist.Report)
				assertSameContigs(t, label+" dist vs unsharded", base, dist.Report)
				if got, want := dist.Report.Counts.ReadCount, base.Counts.ReadCount; got != want {
					t.Errorf("%s: merged ReadCount %d, want %d", label, got, want)
				}
				if got, want := dist.Report.Counts.TotalKmers, base.Counts.TotalKmers; got != want {
					t.Errorf("%s: merged TotalKmers %.0f, want %.0f", label, got, want)
				}
				sp.Close()
			}
		}
	}
	assertNoChildren(t)
}

// TestDistHeterogeneousEngines mirrors the shard package's mixed-engine
// spill test across processes: software and pim shards dispatch to worker
// processes, the functional aggregates survive the wire, and the merged
// contigs still match the unsharded reference.
func TestDistHeterogeneousEngines(t *testing.T) {
	reads := workload(52, 1_500, 80, 60, 0)
	opts := engine.Options{Options: assembly.Options{K: 16}}
	sw, err := engine.Lookup("software")
	if err != nil {
		t.Fatal(err)
	}
	base, err := sw.Assemble(context.Background(), genome.NewSliceSource(reads), opts)
	if err != nil {
		t.Fatal(err)
	}
	sp := partition(t, fastaBytes(t, reads), genome.FormatFASTA, 4)
	defer sp.Close()
	c := metrics.NewCounters()
	res, err := Assemble(context.Background(), sp, Config{
		WorkerProcs: 2,
		WorkerCmd:   helperCmd(t),
		Env:         helperEnv(t, "worker", false),
		Engines:     []string{"software", "pim"},
		Opts:        opts,
		Counters:    c,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSameContigs(t, "dist software+pim", base, res.Report)
	if res.Commands <= 0 {
		t.Error("functional shard aggregates lost crossing the wire")
	}
	if got := c.Get("dist.jobs"); got != 4 {
		t.Errorf("dist.jobs = %d, want 4", got)
	}
	if got := c.Get("dist.results"); got != 4 {
		t.Errorf("dist.results = %d, want 4", got)
	}
	if got := c.Get("dist.workers"); got != 2 {
		t.Errorf("dist.workers = %d, want 2", got)
	}
	assertNoChildren(t)
}

// TestDistValidation covers the before-any-spawn error paths: a nil spill,
// an unknown engine, and a cancelled context all fail without launching a
// single worker process.
func TestDistValidation(t *testing.T) {
	if _, err := Assemble(context.Background(), nil, Config{}); err == nil {
		t.Error("nil spill accepted")
	}
	sp := partition(t, fastaBytes(t, workload(53, 500, 40, 8, 0)), genome.FormatFASTA, 2)
	defer sp.Close()
	if _, err := Assemble(context.Background(), sp, Config{Engines: []string{"warp-drive"}}); err == nil {
		t.Error("unknown engine accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Assemble(ctx, sp, Config{
		WorkerCmd: helperCmd(t), Env: helperEnv(t, "worker", false),
		Opts: engine.Options{Options: assembly.Options{K: 16}},
	}); err == nil {
		t.Error("cancelled run succeeded")
	}
	assertNoChildren(t)
	// The spill itself survives failed runs and closes cleanly.
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(sp.Dir()); !os.IsNotExist(err) {
		t.Fatalf("spill dir survived Close (stat err %v)", err)
	}
}
