package distshard

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"io"
	"strings"
	"testing"

	"pimassembler/internal/assembly"
	"pimassembler/internal/engine"
)

// sampleMsgs covers every frame type with a representative payload.
func sampleMsgs() []*Msg {
	wopts := wireOptions(engine.Options{Options: assembly.Options{K: 16, MinCount: 2}, Subarrays: 8})
	return []*Msg{
		{Type: MsgHello, Hello: &Hello{Proto: ProtoVersion, K: 16, OptHash: wopts.hash()}},
		{Type: MsgJob, Job: &Job{Shard: 3, Engine: "software", SpillPath: "/tmp/x/shard-0003.fasta", Opts: wopts}},
		{Type: MsgResult, Result: &WireReport{
			Shard: 3, Engine: "software", Family: 0,
			Contigs: []WireContig{{Seq: "ACGTACGT", EdgeCount: 5, MeanCoverage: 2.5}},
			Counts:  &assembly.OpCounts{ReadCount: 7, TotalKmers: 100},
		}},
		{Type: MsgError, Error: &WireError{Shard: 1, Msg: "engine exploded", Transient: true}},
		{Type: MsgBye},
	}
}

// TestFrameRoundTrip pins the codec identity: every frame type survives
// encode→decode with its JSON form intact.
func TestFrameRoundTrip(t *testing.T) {
	for _, m := range sampleMsgs() {
		var buf bytes.Buffer
		if err := writeFrame(&buf, m); err != nil {
			t.Fatalf("%s: write: %v", m.Type, err)
		}
		got, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("%s: read: %v", m.Type, err)
		}
		a, _ := json.Marshal(m)
		b, _ := json.Marshal(got)
		if !bytes.Equal(a, b) {
			t.Errorf("%s: round-trip drift:\n in %s\nout %s", m.Type, a, b)
		}
	}
}

// TestFrameRejectsHostileInput covers the decoder's defences: clean EOF
// between frames, bad magic, a hostile length prefix (rejected before any
// allocation-sized read), truncated payloads, malformed JSON, and
// envelope-invariant violations.
func TestFrameRejectsHostileInput(t *testing.T) {
	header := func(n uint32) []byte {
		var hdr [8]byte
		copy(hdr[:4], frameMagic[:])
		binary.BigEndian.PutUint32(hdr[4:], n)
		return hdr[:]
	}
	if _, err := readFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Errorf("empty stream: err = %v, want bare io.EOF", err)
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"garbage magic", []byte("XXXXXXXXXXXXXXXX"), "bad frame magic"},
		{"mid-header EOF", header(8)[:5], "reading frame header"},
		{"hostile length", header(1 << 31), "exceeds cap"},
		{"max-plus-one length", header(MaxFramePayload + 1), "exceeds cap"},
		{"truncated payload", append(header(4096), []byte(`{"type":"bye"`)...), "truncated frame"},
		{"malformed json", append(header(9), []byte("not json!")...), "decoding frame payload"},
		{"unknown type", frameBytes(t, `{"type":"warp"}`), "unknown frame type"},
		{"job without payload", frameBytes(t, `{"type":"job"}`), "job frame without job payload"},
		{"hello without payload", frameBytes(t, `{"type":"hello"}`), "hello frame without handshake payload"},
		{"result without payload", frameBytes(t, `{"type":"result"}`), "result frame without report payload"},
		{"error without payload", frameBytes(t, `{"type":"error"}`), "error frame without error payload"},
	}
	for _, c := range cases {
		_, err := readFrame(bytes.NewReader(c.data))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
}

// frameBytes builds a well-framed message from raw JSON (for payloads the
// encoder itself would refuse to produce).
func frameBytes(t *testing.T, payload string) []byte {
	t.Helper()
	var buf bytes.Buffer
	magic := frameMagic
	buf.Write(magic[:])
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(payload)))
	buf.Write(n[:])
	buf.WriteString(payload)
	return buf.Bytes()
}

// TestOptionsHashDiscriminates pins the handshake fingerprint: identical
// options hash identically, and any scalar drift — the mismatched-binary
// scenario — changes the hash.
func TestOptionsHashDiscriminates(t *testing.T) {
	base := engine.Options{Options: assembly.Options{K: 16, MinCount: 2}, Subarrays: 8}
	if wireOptions(base).hash() != wireOptions(base).hash() {
		t.Fatal("identical options hash differently")
	}
	variants := []engine.Options{
		{Options: assembly.Options{K: 17, MinCount: 2}, Subarrays: 8},
		{Options: assembly.Options{K: 16, MinCount: 3}, Subarrays: 8},
		{Options: assembly.Options{K: 16, MinCount: 2, Scaffold: true}, Subarrays: 8},
		{Options: assembly.Options{K: 16, MinCount: 2}, Subarrays: 16},
	}
	for i, v := range variants {
		if wireOptions(v).hash() == wireOptions(base).hash() {
			t.Errorf("variant %d collides with the base options hash", i)
		}
	}
}

// TestRunWorkerProtocolErrors drives RunWorker over in-process pipes
// through its refusal paths: a version-skewed hello (echoed well-formed,
// then rejected) and a job whose options do not hash to the handshake.
func TestRunWorkerProtocolErrors(t *testing.T) {
	t.Run("version mismatch", func(t *testing.T) {
		in := new(bytes.Buffer)
		out := new(bytes.Buffer)
		writeFrame(in, &Msg{Type: MsgHello, Hello: &Hello{Proto: ProtoVersion + 1, K: 16, OptHash: "x"}})
		err := RunWorker(in, out, nil)
		if err == nil || !strings.Contains(err.Error(), "protocol version mismatch") {
			t.Fatalf("err = %v, want protocol version mismatch", err)
		}
		// The echo must still be well-formed so the coordinator can name
		// the worker's version instead of reading a closed pipe.
		echo, rerr := readFrame(out)
		if rerr != nil || echo.Type != MsgHello || echo.Hello.Proto != ProtoVersion {
			t.Fatalf("echo = %+v (err %v), want well-formed hello with proto %d", echo, rerr, ProtoVersion)
		}
	})
	t.Run("options hash mismatch", func(t *testing.T) {
		in := new(bytes.Buffer)
		out := new(bytes.Buffer)
		wopts := wireOptions(engine.Options{Options: assembly.Options{K: 16}})
		writeFrame(in, &Msg{Type: MsgHello, Hello: &Hello{Proto: ProtoVersion, K: 16, OptHash: "0000000000000000"}})
		writeFrame(in, &Msg{Type: MsgJob, Job: &Job{Shard: 0, Engine: "software", SpillPath: "/nope", Opts: wopts}})
		err := RunWorker(in, out, nil)
		if err == nil || !strings.Contains(err.Error(), "does not match handshake") {
			t.Fatalf("err = %v, want options-hash mismatch", err)
		}
	})
	t.Run("clean bye", func(t *testing.T) {
		in := new(bytes.Buffer)
		out := new(bytes.Buffer)
		writeFrame(in, &Msg{Type: MsgHello, Hello: &Hello{Proto: ProtoVersion, K: 16, OptHash: "x"}})
		writeFrame(in, &Msg{Type: MsgBye})
		if err := RunWorker(in, out, nil); err != nil {
			t.Fatalf("bye shutdown returned %v", err)
		}
	})
}

// FuzzFrameCodec is the differential fuzz target over the frame decoder:
// any byte stream the decoder accepts must re-encode and re-decode to the
// same message (and hostile length prefixes must fail cheaply instead of
// allocating). Wired into `make fuzz-smoke` alongside the genome and k-mer
// codecs.
func FuzzFrameCodec(f *testing.F) {
	for _, m := range sampleMsgs() {
		var buf bytes.Buffer
		if err := writeFrame(&buf, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	var hostile [8]byte
	copy(hostile[:4], frameMagic[:])
	binary.BigEndian.PutUint32(hostile[4:], 1<<31)
	f.Add(hostile[:])
	f.Add([]byte("PDSF garbage that is not a frame"))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return // rejected input: the only contract is no panic, no OOM
		}
		var buf bytes.Buffer
		if err := writeFrame(&buf, m); err != nil {
			t.Fatalf("decoded frame failed to re-encode: %v", err)
		}
		m2, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		a, _ := json.Marshal(m)
		b, _ := json.Marshal(m2)
		if !bytes.Equal(a, b) {
			t.Fatalf("codec round-trip drift:\n in %s\nout %s", a, b)
		}
	})
}
