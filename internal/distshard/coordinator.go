package distshard

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
	"time"

	"pimassembler/internal/engine"
	"pimassembler/internal/jobqueue"
	"pimassembler/internal/metrics"
	"pimassembler/internal/shard"
)

// DefaultHandshakeTimeout bounds how long the coordinator waits for a
// freshly spawned worker's hello echo.
const DefaultHandshakeTimeout = 10 * time.Second

// shutdownGrace is how long a worker gets to exit after the bye frame
// before it is force-killed.
const shutdownGrace = 2 * time.Second

// Config describes one distributed sharded run.
type Config struct {
	// WorkerProcs is how many worker processes to launch (values < 1 mean
	// one; clamped to the non-empty shard count so no worker sits idle).
	WorkerProcs int
	// WorkerCmd is the argv launching one worker (empty means this
	// process's own executable with "-worker" appended — the same-binary
	// default cmd/assemble uses).
	WorkerCmd []string
	// Env is appended to the inherited environment of every worker
	// process (the test harnesses select helper behaviours through it).
	Env []string
	// Engines names the execution paths, assigned to non-empty shards
	// round-robin exactly as shard.AssembleSpill assigns them (empty means
	// the software reference engine).
	Engines []string
	// Opts configures each shard's engine run. StreamStage1 is forced on
	// for dispatch, mirroring the in-process spill path; Ref and Counts do
	// not cross the wire (quality is scored in the merge pass).
	Opts engine.Options
	// Registry validates engine names coordinator-side before any process
	// is launched (nil = engine.Default()). Workers resolve names against
	// their own default registry — the same one, being the same binary.
	Registry *engine.Registry
	// Timeout bounds each dispatch attempt when positive; an attempt that
	// exceeds it kills the worker and counts against the retry budget.
	Timeout time.Duration
	// Retry carries the jobqueue attempt semantics across processes:
	// MaxAttempts bounds the attempts per shard and Delay schedules the
	// backoff between them. Worker crashes, corrupt frames, and timeouts
	// are transient (retried on a respawned worker); an error frame is
	// retried only if the worker classified it transient.
	Retry jobqueue.RetryPolicy
	// HandshakeTimeout bounds the hello exchange per spawn
	// (0 = DefaultHandshakeTimeout).
	HandshakeTimeout time.Duration
	// Counters optionally receives the dist.* instrumentation
	// (dist.workers, dist.respawns, dist.jobs, dist.retries, dist.results,
	// dist.timeouts, dist.frame.errors).
	Counters *metrics.Counters
}

// engines returns the effective engine list.
func (c Config) engines() []string {
	if len(c.Engines) == 0 {
		return []string{"software"}
	}
	return c.Engines
}

// registry returns the effective coordinator-side registry.
func (c Config) registry() *engine.Registry {
	if c.Registry != nil {
		return c.Registry
	}
	return engine.Default()
}

// handshakeTimeout returns the effective handshake bound.
func (c Config) handshakeTimeout() time.Duration {
	if c.HandshakeTimeout > 0 {
		return c.HandshakeTimeout
	}
	return DefaultHandshakeTimeout
}

// attempts returns the effective per-shard attempt budget (RetryPolicy
// semantics: values < 1 mean one attempt).
func (c Config) attempts() int {
	if c.Retry.MaxAttempts < 1 {
		return 1
	}
	return c.Retry.MaxAttempts
}

// count bumps a dist counter when instrumentation is attached.
func (c Config) count(name string, delta int64) {
	if c.Counters != nil {
		c.Counters.Add(name, delta)
	}
}

// dispatchJob is one shard's dispatch unit: idx is the compact launch
// index (non-empty shards in shard order — the slot order shard.Merge
// expects), shard the spill-file index.
type dispatchJob struct {
	idx    int
	shard  int
	engine string
	path   string
}

// Assemble runs one distributed sharded assembly over a completed spill
// partition: launch workers, dispatch one spill file per job, collect the
// per-shard reports, and merge them through shard.Merge — the exact
// in-process merge path, so for count-independent options the merged
// contigs are byte-identical to shard.AssembleSpill and to an unsharded
// run. Any shard that exhausts its attempt budget fails the run with the
// shard index and engine named; workers are torn down (and reaped) on
// every exit path, including context cancellation.
//
// The caller owns sp and should Close it after use.
func Assemble(ctx context.Context, sp *shard.Spill, cfg Config) (*shard.Result, error) {
	if sp == nil || sp.TotalReads() == 0 {
		return nil, fmt.Errorf("distshard: no reads")
	}
	engines := cfg.engines()
	reg := cfg.registry()
	for _, name := range engines {
		if _, err := reg.Lookup(name); err != nil {
			return nil, err
		}
	}
	workerCmd := cfg.WorkerCmd
	if len(workerCmd) == 0 {
		exe, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("distshard: resolving worker binary: %w", err)
		}
		workerCmd = []string{exe, "-worker"}
	}

	// Mirror the in-process spill path: stage-1 streaming forced on, empty
	// tail shards skipped, engines assigned round-robin over the compact
	// launch order.
	opts := cfg.Opts
	opts.StreamStage1 = true
	wopts := wireOptions(opts)
	hello := &Hello{Proto: ProtoVersion, K: opts.K, OptHash: wopts.hash()}

	var jobs []dispatchJob
	for i := 0; i < sp.Shards(); i++ {
		if sp.Count(i) == 0 {
			continue
		}
		jobs = append(jobs, dispatchJob{
			idx:    len(jobs),
			shard:  i,
			engine: engines[len(jobs)%len(engines)],
			path:   sp.Path(i),
		})
	}
	names := make([]string, len(jobs))
	for _, j := range jobs {
		names[j.idx] = j.engine
	}

	procs := cfg.WorkerProcs
	if procs < 1 {
		procs = 1
	}
	if procs > len(jobs) {
		procs = len(jobs)
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	co := &coordinator{cfg: cfg, cmd: workerCmd, hello: hello, wopts: wopts}

	jobsCh := make(chan dispatchJob)
	go func() {
		defer close(jobsCh)
		for _, j := range jobs {
			select {
			case jobsCh <- j:
			case <-runCtx.Done():
				return
			}
		}
	}()

	reports := make([]*engine.Report, len(jobs))
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	setErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		cancel()
	}
	for w := 0; w < procs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			co.runWorkerLoop(runCtx, jobsCh, reports, setErr)
		}()
	}
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return shard.Merge(reports, names, cfg.Opts)
}

// coordinator carries the per-run dispatch state shared by the worker
// runner goroutines.
type coordinator struct {
	cfg   Config
	cmd   []string
	hello *Hello
	wopts Options
}

// runWorkerLoop owns one worker process slot: it pulls jobs, keeps a live
// (respawned as needed) worker under it, and records each shard's report.
// The first terminal failure cancels the run through setErr.
func (c *coordinator) runWorkerLoop(ctx context.Context, jobsCh <-chan dispatchJob, reports []*engine.Report, setErr func(error)) {
	var proc *workerProc
	defer func() {
		if proc == nil {
			return
		}
		if ctx.Err() != nil {
			proc.reap()
		} else {
			proc.quit(shutdownGrace)
		}
	}()
	for {
		select {
		case <-ctx.Done():
			return
		case j, ok := <-jobsCh:
			if !ok {
				return
			}
			rep, err := c.runShard(ctx, &proc, j)
			if err != nil {
				if ctx.Err() == nil {
					setErr(err)
				}
				return
			}
			reports[j.idx] = rep
		}
	}
}

// runShard drives one shard through its attempt budget on *procp,
// respawning the worker after any attempt that killed it.
func (c *coordinator) runShard(ctx context.Context, procp **workerProc, j dispatchJob) (*engine.Report, error) {
	budget := c.cfg.attempts()
	c.cfg.count("dist.jobs", 1)
	for attempt := 1; ; attempt++ {
		if *procp == nil {
			p, err := c.spawn(ctx, attempt > 1)
			if err != nil {
				return nil, fmt.Errorf("distshard: shard %d (engine %s): %w", j.shard, j.engine, err)
			}
			*procp = p
		}
		rep, err, dead := c.dispatch(ctx, *procp, j)
		if err == nil {
			c.cfg.count("dist.results", 1)
			return rep, nil
		}
		if dead {
			(*procp).reap()
			*procp = nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if attempt >= budget || !jobqueue.Transient(err) {
			return nil, fmt.Errorf("distshard: shard %d (engine %s): %w", j.shard, j.engine, err)
		}
		c.cfg.count("dist.retries", 1)
		if err := sleep(ctx, c.cfg.Retry.Delay(attempt+1)); err != nil {
			return nil, err
		}
	}
}

// dispatch sends one job frame and waits for its reply under the attempt
// timeout. dead reports whether the worker must be respawned before the
// next attempt: crashes, corrupt frames, wrong-shard replies, and timeouts
// kill it; a well-formed error frame leaves it serving.
func (c *coordinator) dispatch(ctx context.Context, p *workerProc, j dispatchJob) (rep *engine.Report, err error, dead bool) {
	job := &Msg{Type: MsgJob, Job: &Job{Shard: j.shard, Engine: j.engine, SpillPath: j.path, Opts: c.wopts}}
	if err := writeFrame(p.stdin, job); err != nil {
		c.cfg.count("dist.frame.errors", 1)
		return nil, jobqueue.MarkTransient(fmt.Errorf("worker %s: %w", p.describe(), err)), true
	}

	var timeout <-chan time.Time
	if c.cfg.Timeout > 0 {
		t := time.NewTimer(c.cfg.Timeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case <-ctx.Done():
		return nil, ctx.Err(), true
	case <-timeout:
		c.cfg.count("dist.timeouts", 1)
		return nil, jobqueue.MarkTransient(fmt.Errorf("worker %s: attempt timed out after %v", p.describe(), c.cfg.Timeout)), true
	case fe := <-p.frames:
		if fe.err != nil {
			c.cfg.count("dist.frame.errors", 1)
			return nil, jobqueue.MarkTransient(fmt.Errorf("worker %s died mid-shard: %w%s", p.describe(), fe.err, p.stderrTail())), true
		}
		switch fe.msg.Type {
		case MsgResult:
			if fe.msg.Result.Shard != j.shard {
				c.cfg.count("dist.frame.errors", 1)
				return nil, jobqueue.MarkTransient(fmt.Errorf("worker %s answered shard %d for shard %d", p.describe(), fe.msg.Result.Shard, j.shard)), true
			}
			rep, err := fromWireReport(fe.msg.Result)
			if err != nil {
				c.cfg.count("dist.frame.errors", 1)
				return nil, jobqueue.MarkTransient(err), true
			}
			return rep, nil, false
		case MsgError:
			we := fe.msg.Error
			if we.Shard != j.shard {
				c.cfg.count("dist.frame.errors", 1)
				return nil, jobqueue.MarkTransient(fmt.Errorf("worker %s answered shard %d for shard %d", p.describe(), we.Shard, j.shard)), true
			}
			if we.Transient {
				return nil, jobqueue.MarkTransient(we), false
			}
			return nil, we, false
		default:
			c.cfg.count("dist.frame.errors", 1)
			return nil, jobqueue.MarkTransient(fmt.Errorf("worker %s: unexpected frame %q", p.describe(), fe.msg.Type)), true
		}
	}
}

// spawn launches one worker process and completes the handshake. Spawn and
// handshake failures are terminal — a binary that cannot start or speaks
// the wrong protocol version will not get better on retry.
func (c *coordinator) spawn(ctx context.Context, respawn bool) (*workerProc, error) {
	cmd := exec.Command(c.cmd[0], c.cmd[1:]...)
	cmd.Env = append(os.Environ(), c.cfg.Env...)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	stderr := &tailBuffer{limit: 4096}
	cmd.Stderr = stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("launching worker %q: %w", c.cmd[0], err)
	}
	c.cfg.count("dist.workers", 1)
	if respawn {
		c.cfg.count("dist.respawns", 1)
	}
	p := &workerProc{
		cmd:    cmd,
		stdin:  stdin,
		stderr: stderr,
		frames: make(chan frameOrErr),
		done:   make(chan struct{}),
	}
	go p.readLoop(stdout)

	if err := p.handshake(ctx, c.hello, c.cfg.handshakeTimeout()); err != nil {
		p.reap()
		return nil, fmt.Errorf("worker handshake: %w%s", err, p.stderrTail())
	}
	return p, nil
}

// frameOrErr is one reader-goroutine delivery: a decoded frame or the
// terminal read error (io.EOF when the worker closed its stdout).
type frameOrErr struct {
	msg *Msg
	err error
}

// workerProc is one live worker process plus its pipe plumbing. All
// methods are called from the owning runner goroutine only.
type workerProc struct {
	cmd    *exec.Cmd
	stdin  io.WriteCloser
	stderr *tailBuffer
	// frames delivers decoded frames (or the terminal read error) from
	// the reader goroutine; done tears the reader down when the process
	// is reaped before its stream ended.
	frames chan frameOrErr
	done   chan struct{}
	reaped bool
}

// readLoop decodes frames off the worker's stdout until the stream ends;
// the terminal error (io.EOF on clean exit) is delivered like a frame.
func (p *workerProc) readLoop(stdout io.Reader) {
	br := bufio.NewReader(stdout)
	for {
		m, err := readFrame(br)
		select {
		case p.frames <- frameOrErr{msg: m, err: err}:
		case <-p.done:
			return
		}
		if err != nil {
			return
		}
	}
}

// handshake sends the hello and verifies the worker's echo: its protocol
// version must match this binary's, and k and the option hash must echo
// back verbatim.
func (p *workerProc) handshake(ctx context.Context, hello *Hello, timeout time.Duration) error {
	if err := writeFrame(p.stdin, &Msg{Type: MsgHello, Hello: hello}); err != nil {
		return err
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return fmt.Errorf("no hello reply within %v", timeout)
	case fe := <-p.frames:
		if fe.err != nil {
			return fe.err
		}
		if fe.msg.Type != MsgHello {
			return fmt.Errorf("expected hello echo, got %q", fe.msg.Type)
		}
		h := fe.msg.Hello
		if h.Proto != ProtoVersion {
			return fmt.Errorf("protocol version mismatch: worker speaks %d, this binary speaks %d", h.Proto, ProtoVersion)
		}
		if h.K != hello.K || h.OptHash != hello.OptHash {
			return fmt.Errorf("handshake echo mismatch: k=%d hash=%s, want k=%d hash=%s", h.K, h.OptHash, hello.K, hello.OptHash)
		}
		return nil
	}
}

// describe names the process for error messages.
func (p *workerProc) describe() string {
	if p.cmd.Process != nil {
		return fmt.Sprintf("pid %d", p.cmd.Process.Pid)
	}
	return "(not started)"
}

// stderrTail renders the captured stderr tail for error messages.
func (p *workerProc) stderrTail() string {
	s := p.stderr.String()
	if s == "" {
		return ""
	}
	return fmt.Sprintf(" (worker stderr: %q)", s)
}

// reap force-kills the worker and waits for it, so no exit path leaves a
// zombie. Idempotent.
func (p *workerProc) reap() {
	if p.reaped {
		return
	}
	p.reaped = true
	close(p.done)
	p.stdin.Close()
	if p.cmd.Process != nil {
		p.cmd.Process.Kill()
	}
	p.cmd.Wait()
}

// quit asks the worker to exit cleanly — bye frame, stdin close — and
// reaps it; a worker that has not closed its stdout within grace is
// force-killed. Idempotent via reap.
func (p *workerProc) quit(grace time.Duration) {
	if p.reaped {
		return
	}
	writeFrame(p.stdin, &Msg{Type: MsgBye})
	p.stdin.Close()
	t := time.NewTimer(grace)
	defer t.Stop()
	for {
		select {
		case fe := <-p.frames:
			if fe.err != nil {
				// Stream ended: the worker is exiting; reap without the
				// kill being necessary (Wait still runs to collect it).
				p.reaped = true
				close(p.done)
				p.cmd.Wait()
				return
			}
			// A straggler frame after bye: drain and keep waiting.
		case <-t.C:
			p.reap()
			return
		}
	}
}

// tailBuffer retains the first limit bytes written (worker stderr capture
// for error messages; a chatty worker cannot grow it unboundedly).
type tailBuffer struct {
	mu    sync.Mutex
	limit int
	buf   bytes.Buffer
}

func (b *tailBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if room := b.limit - b.buf.Len(); room > 0 {
		if len(p) > room {
			b.buf.Write(p[:room])
		} else {
			b.buf.Write(p)
		}
	}
	return len(p), nil
}

func (b *tailBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// sleep waits d or until ctx ends (the jobqueue backoff discipline).
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
