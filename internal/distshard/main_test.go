package distshard

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pimassembler/internal/engine"
)

// TestMain doubles as the worker-process entry point for the cross-process
// tests: when DISTSHARD_HELPER is set the test binary does not run tests at
// all — it serves the coordinator protocol (faithfully or with an injected
// fault) and exits. The coordinator under test launches this same binary
// via Config.WorkerCmd, which is exactly how cmd/assemble's -worker mode is
// launched in production: same binary, different entry flag.
func TestMain(m *testing.M) {
	mode := os.Getenv("DISTSHARD_HELPER")
	if mode == "" {
		os.Exit(m.Run())
	}
	if mode == "worker" {
		if err := RunWorker(os.Stdin, os.Stdout, nil); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	helperMain(mode)
	os.Exit(0)
}

// helperMain is a protocol-level worker with one injected fault. The fault
// arms once per DISTSHARD_FAULT_MARKER file: the first job trips it (and
// creates the marker), every later job — including on a respawned helper —
// is served faithfully. With no marker the fault trips on every job, so
// the coordinator's retry budget must exhaust.
func helperMain(mode string) {
	br := bufio.NewReader(os.Stdin)
	bw := bufio.NewWriter(os.Stdout)
	m, err := readFrame(br)
	if err != nil || m.Type != MsgHello {
		fmt.Fprintln(os.Stderr, "helper: bad handshake:", err)
		os.Exit(3)
	}
	reply := &Msg{Type: MsgHello, Hello: &Hello{Proto: ProtoVersion, K: m.Hello.K, OptHash: m.Hello.OptHash}}
	if err := writeFrame(bw, reply); err != nil {
		os.Exit(3)
	}
	if err := bw.Flush(); err != nil {
		os.Exit(3)
	}

	for {
		job, err := readFrame(br)
		if err == io.EOF {
			os.Exit(0)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "helper: read:", err)
			os.Exit(3)
		}
		if job.Type == MsgBye {
			os.Exit(0)
		}
		if job.Type != MsgJob {
			os.Exit(3)
		}
		armed := true
		if marker := os.Getenv("DISTSHARD_FAULT_MARKER"); marker != "" {
			if _, err := os.Stat(marker); err == nil {
				armed = false
			} else {
				os.WriteFile(marker, []byte("fired\n"), 0o644)
			}
		}
		if armed {
			switch mode {
			case "die":
				// Crash mid-shard: job accepted, no reply, process gone.
				os.Exit(3)
			case "garbage":
				// Corrupt stream: bytes that are not a frame, then exit.
				os.Stdout.WriteString("THIS IS NOT A FRAME AND NEVER WILL BE")
				os.Exit(0)
			case "truncate":
				// A frame header promising far more payload than ever
				// arrives, then a dead pipe.
				var hdr [8]byte
				copy(hdr[:4], frameMagic[:])
				hdr[4], hdr[5], hdr[6], hdr[7] = 0, 0, 0x10, 0 // 4096 bytes
				os.Stdout.Write(hdr[:])
				os.Stdout.WriteString(`{"type":"result"`)
				os.Exit(0)
			case "hang":
				// Serve nothing, exit never: only the coordinator's attempt
				// timeout (and kill) gets past this. Sleeping (not a bare
				// select{}) keeps the runtime's deadlock detector quiet —
				// this must look like a hang, not a crash.
				for {
					time.Sleep(time.Hour)
				}
			default:
				fmt.Fprintln(os.Stderr, "helper: unknown mode", mode)
				os.Exit(3)
			}
		}
		if err := writeFrame(bw, runJob(engine.Default(), job.Job)); err != nil {
			os.Exit(3)
		}
		if err := bw.Flush(); err != nil {
			os.Exit(3)
		}
	}
}

// helperCmd returns a WorkerCmd launching this test binary as a helper
// worker (the env selecting the mode rides in Config.Env).
func helperCmd(t *testing.T) []string {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	return []string{exe}
}

// helperEnv builds the Config.Env for one helper mode; faultOnce arms the
// fault for a single job via a marker file under the test's temp dir.
func helperEnv(t *testing.T, mode string, faultOnce bool) []string {
	t.Helper()
	env := []string{"DISTSHARD_HELPER=" + mode}
	if faultOnce {
		env = append(env, "DISTSHARD_FAULT_MARKER="+filepath.Join(t.TempDir(), "fault-fired"))
	}
	return env
}

// childPIDs lists this process's live direct children (zombies included —
// an unreaped worker shows up here until someone calls wait on it).
func childPIDs(t *testing.T) []string {
	t.Helper()
	matches, err := filepath.Glob("/proc/self/task/*/children")
	if err != nil || len(matches) == 0 {
		t.Skip("no /proc children listing on this platform")
	}
	var pids []string
	for _, m := range matches {
		b, err := os.ReadFile(m)
		if err != nil {
			continue
		}
		pids = append(pids, strings.Fields(string(b))...)
	}
	return pids
}

// assertNoChildren fails the test if any worker process outlives the run —
// the no-zombie, no-leak teardown contract. A just-killed child needs a
// moment to leave the process table, so poll briefly before declaring a
// leak.
func assertNoChildren(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		kids := childPIDs(t)
		if len(kids) == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker processes leaked past the run: pids %v", kids)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
