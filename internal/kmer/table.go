package kmer

import (
	"fmt"
	"math"

	"pimassembler/internal/genome"
)

// tableCapacity returns the slot count backing an open-addressing table
// expected to hold hint entries: the smallest power of two keeping the load
// factor at or below ½, with a floor of 16. Hints large enough that the
// doubling would overflow int are clamped instead — the old unguarded loop
// wrapped capacity negative and spun forever on such hints.
func tableCapacity(hint int) int {
	const minCapacity = 16
	if hint <= minCapacity/2 {
		return minCapacity
	}
	if hint > math.MaxInt/4 {
		hint = math.MaxInt / 4
	}
	capacity := minCapacity
	for capacity < 2*hint {
		capacity *= 2
	}
	return capacity
}

// CountTable is the software reference k-mer hash table: open addressing
// with linear probing, the same probe discipline the PIM mapping uses
// row-by-row inside a sub-array, so its probe statistics transfer directly
// to the hardware cost model.
type CountTable struct {
	k        int
	keys     []Kmer
	counts   []uint32
	used     []bool
	n        int
	probeOps int64 // total probe comparisons, for op-count extraction
}

// NewCountTable creates a table for k-mers of length k with capacity for at
// least hint entries before growing.
func NewCountTable(k int, hint int) *CountTable {
	checkK(k)
	capacity := tableCapacity(hint)
	return &CountTable{
		k:      k,
		keys:   make([]Kmer, capacity),
		counts: make([]uint32, capacity),
		used:   make([]bool, capacity),
	}
}

// K returns the table's k-mer length.
func (t *CountTable) K() int { return t.k }

// Len returns the number of distinct k-mers stored.
func (t *CountTable) Len() int { return t.n }

// ProbeOps returns the cumulative number of slot comparisons performed — the
// quantity the performance model converts into PIM_XNOR operations.
func (t *CountTable) ProbeOps() int64 { return t.probeOps }

// Add increments the count of km, inserting it if absent, and returns the
// new count: one iteration of the Hashmap procedure in Fig. 5b.
func (t *CountTable) Add(km Kmer) uint32 {
	if t.n*2 >= len(t.keys) {
		t.grow()
	}
	mask := uint64(len(t.keys) - 1)
	i := km.Hash() & mask
	for {
		t.probeOps++
		if !t.used[i] {
			t.used[i] = true
			t.keys[i] = km
			t.counts[i] = 1
			t.n++
			return 1
		}
		if t.keys[i] == km {
			t.counts[i]++
			return t.counts[i]
		}
		i = (i + 1) & mask
	}
}

// AddAll folds a staged batch of k-mers into the table in slice order: the
// per-partition drain loop of the parallel counting layer. It is exactly
// len(kms) Add calls, kept as one tight loop on the hot path.
func (t *CountTable) AddAll(kms []Kmer) {
	for _, km := range kms {
		t.Add(km)
	}
}

// Count returns the stored count of km (0 if absent).
func (t *CountTable) Count(km Kmer) uint32 {
	mask := uint64(len(t.keys) - 1)
	i := km.Hash() & mask
	for {
		t.probeOps++
		if !t.used[i] {
			return 0
		}
		if t.keys[i] == km {
			return t.counts[i]
		}
		i = (i + 1) & mask
	}
}

func (t *CountTable) grow() {
	old := *t
	t.keys = make([]Kmer, len(old.keys)*2)
	t.counts = make([]uint32, len(old.counts)*2)
	t.used = make([]bool, len(old.used)*2)
	t.n = 0
	mask := uint64(len(t.keys) - 1)
	for i, u := range old.used {
		if !u {
			continue
		}
		j := old.keys[i].Hash() & mask
		for t.used[j] {
			j = (j + 1) & mask
		}
		t.used[j] = true
		t.keys[j] = old.keys[i]
		t.counts[j] = old.counts[i]
		t.n++
	}
	t.probeOps = old.probeOps
}

// Entry is one (k-mer, count) pair.
type Entry struct {
	Kmer  Kmer
	Count uint32
}

// Entries returns all entries sorted by k-mer value — a deterministic order
// for graph construction and tests. Ordering is the shared radix sort over
// the packed codes, not a comparison sort.
func (t *CountTable) Entries() []Entry {
	out := make([]Entry, 0, t.n)
	for i, u := range t.used {
		if u {
			out = append(out, Entry{t.keys[i], t.counts[i]})
		}
	}
	sortEntries(out)
	return out
}

// Each calls fn for every entry in unspecified order; return false to stop.
func (t *CountTable) Each(fn func(Kmer, uint32) bool) {
	for i, u := range t.used {
		if u && !fn(t.keys[i], t.counts[i]) {
			return
		}
	}
}

// CountReads builds a table over every k-mer of every read: stage 1 of the
// assembly pipeline.
func CountReads(reads []*genome.Sequence, k int) *CountTable {
	hint := 0
	for _, r := range reads {
		if r.Len() >= k {
			hint += r.Len() - k + 1
		}
	}
	t := NewCountTable(k, hint)
	for _, r := range reads {
		Iterate(r, k, func(km Kmer) { t.Add(km) })
	}
	return t
}

// Spectrum returns the frequency spectrum: spectrum[c] is the number of
// distinct k-mers observed exactly c times (index 0 unused).
func (t *CountTable) Spectrum() []int64 {
	var maxC uint32
	t.Each(func(_ Kmer, c uint32) bool {
		if c > maxC {
			maxC = c
		}
		return true
	})
	spec := make([]int64, maxC+1)
	t.Each(func(_ Kmer, c uint32) bool {
		spec[c]++
		return true
	})
	return spec
}

// FilterMinCount returns the entries with count ≥ min, sorted by k-mer —
// the low-frequency error-trimming step assemblers apply before graph
// construction. Survivors are counted first and collected into one exact
// allocation, then sorted: the old path materialised the full sorted
// Entries slice only to re-append the survivors through repeated growth.
func (t *CountTable) FilterMinCount(min uint32) []Entry {
	if min <= 1 {
		return t.Entries()
	}
	survivors := 0
	for i, u := range t.used {
		if u && t.counts[i] >= min {
			survivors++
		}
	}
	out := make([]Entry, 0, survivors)
	for i, u := range t.used {
		if u && t.counts[i] >= min {
			out = append(out, Entry{t.keys[i], t.counts[i]})
		}
	}
	sortEntries(out)
	return out
}

// String summarises the table.
func (t *CountTable) String() string {
	return fmt.Sprintf("kmer.CountTable{k=%d, distinct=%d, capacity=%d}", t.k, t.n, len(t.keys))
}
