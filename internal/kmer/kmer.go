// Package kmer implements k-mer extraction and counting: the packed k-mer
// representation, the software reference hash table the PIM results are
// cross-checked against, and frequency-spectrum utilities. The PIM-mapped
// hash table itself lives in internal/core, built on these types.
package kmer

import (
	"fmt"

	"pimassembler/internal/genome"
)

// MaxK is the largest supported k-mer length: 32 bases fit one uint64 at
// 2 bits per base, covering the paper's k ∈ {16, 22, 26, 32} sweep.
const MaxK = 32

// Kmer is a 2-bit-packed k-mer, base 0 in the least-significant bits, using
// the Fig. 7 encoding (T=00, G=01, A=10, C=11). The length k is carried by
// context (table, graph) rather than by the value.
type Kmer uint64

// Mask returns the valid-bit mask for length k.
func Mask(k int) uint64 {
	checkK(k)
	if k == MaxK {
		return ^uint64(0)
	}
	return (1 << (2 * uint(k))) - 1
}

func checkK(k int) {
	if k <= 0 || k > MaxK {
		panic(fmt.Sprintf("kmer: k=%d outside [1,%d]", k, MaxK))
	}
}

// FromSequence packs the first k bases of s into a Kmer.
func FromSequence(s *genome.Sequence, k int) Kmer {
	checkK(k)
	if s.Len() < k {
		panic(fmt.Sprintf("kmer: sequence length %d shorter than k=%d", s.Len(), k))
	}
	return Kmer(s.PackBits(0, k))
}

// Base returns base i of the k-mer.
func (km Kmer) Base(i int) genome.Base {
	return genome.Base(km >> (2 * uint(i)) & 3)
}

// String renders the k-mer as k letters.
func (km Kmer) String(k int) string {
	checkK(k)
	out := make([]byte, k)
	for i := 0; i < k; i++ {
		out[i] = km.Base(i).Letter()
	}
	return string(out)
}

// Parse converts a letter string of length ≤ MaxK into a Kmer.
func Parse(s string) (Kmer, error) {
	if len(s) == 0 || len(s) > MaxK {
		return 0, fmt.Errorf("kmer: length %d outside [1,%d]", len(s), MaxK)
	}
	var km Kmer
	for i := 0; i < len(s); i++ {
		b, err := genome.ParseBase(s[i])
		if err != nil {
			return 0, err
		}
		km |= Kmer(b) << (2 * uint(i))
	}
	return km, nil
}

// MustParse is Parse for trusted literals.
func MustParse(s string) Kmer {
	km, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return km
}

// Prefix returns the (k-1)-mer over bases [0, k-1) — node_1 of the
// DeBruijn procedure in Fig. 5c.
func (km Kmer) Prefix(k int) Kmer {
	checkK(k)
	return km & Kmer(Mask(k-1))
}

// Suffix returns the (k-1)-mer over bases [1, k) — node_2 of the DeBruijn
// procedure in Fig. 5c.
func (km Kmer) Suffix(k int) Kmer {
	checkK(k)
	return (km >> 2) & Kmer(Mask(k-1))
}

// Extend appends base b to a (k-1)-mer, producing the k-mer whose prefix is
// km: the graph-walk inverse of Suffix∘Prefix composition.
func (km Kmer) Extend(k int, b genome.Base) Kmer {
	checkK(k)
	return (km & Kmer(Mask(k-1))) | Kmer(b)<<(2*uint(k-1))
}

// FirstBase returns base 0.
func (km Kmer) FirstBase() genome.Base { return km.Base(0) }

// LastBase returns base k-1.
func (km Kmer) LastBase(k int) genome.Base { return km.Base(k - 1) }

// ReverseComplement returns the reverse complement k-mer.
func (km Kmer) ReverseComplement(k int) Kmer {
	checkK(k)
	var rc Kmer
	for i := 0; i < k; i++ {
		rc |= Kmer(km.Base(i).Complement()) << (2 * uint(k-1-i))
	}
	return rc
}

// Canonical returns the lexicographically smaller of km and its reverse
// complement (optional strand normalisation; the paper's pipeline is
// single-stranded, so the assembler uses it only when configured to).
func (km Kmer) Canonical(k int) Kmer {
	if rc := km.ReverseComplement(k); rc < km {
		return rc
	}
	return km
}

// Hash mixes the k-mer into a well-distributed 64-bit value
// (splitmix64 finaliser), used for both the software table and the
// sub-array home-slot assignment of the PIM mapping.
func (km Kmer) Hash() uint64 {
	z := uint64(km) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Iterate calls fn for every k-mer of s in order, reusing the rolling 2-bit
// window: the Hashmap(S, k) loop of Fig. 5b.
func Iterate(s *genome.Sequence, k int, fn func(Kmer)) {
	checkK(k)
	if s.Len() < k {
		return
	}
	km := FromSequence(s, k)
	fn(km)
	for i := k; i < s.Len(); i++ {
		km = (km >> 2) | Kmer(s.Base(i))<<(2*uint(k-1))
		fn(km)
	}
}

// Extract returns all k-mers of s in order.
func Extract(s *genome.Sequence, k int) []Kmer {
	if s.Len() < k {
		return nil
	}
	out := make([]Kmer, 0, s.Len()-k+1)
	Iterate(s, k, func(km Kmer) { out = append(out, km) })
	return out
}

// ToSequence expands the k-mer back into a Sequence.
func (km Kmer) ToSequence(k int) *genome.Sequence {
	checkK(k)
	s := genome.NewSequence(k)
	for i := 0; i < k; i++ {
		s.SetBase(i, km.Base(i))
	}
	return s
}
