package kmer

import (
	"testing"

	"pimassembler/internal/genome"
	"pimassembler/internal/stats"
)

func BenchmarkIterate(b *testing.B) {
	rng := stats.NewRNG(1)
	s := genome.GenerateGenome(10_000, rng)
	b.SetBytes(int64(s.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		Iterate(s, 16, func(Kmer) { n++ })
		if n != s.Len()-15 {
			b.Fatal("wrong k-mer count")
		}
	}
}

func BenchmarkCountTableAdd(b *testing.B) {
	rng := stats.NewRNG(2)
	kms := make([]Kmer, 1<<14)
	for i := range kms {
		kms[i] = Kmer(rng.Uint64()) & Kmer(Mask(16))
	}
	tbl := NewCountTable(16, len(kms))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Add(kms[i%len(kms)])
	}
}

func BenchmarkHash(b *testing.B) {
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= Kmer(i).Hash()
	}
	if acc == 1 {
		b.Fatal("unlikely")
	}
}

func BenchmarkCountReads(b *testing.B) {
	rng := stats.NewRNG(3)
	g := genome.GenerateGenome(20_000, rng)
	reads := genome.NewReadSampler(g, 101, 0, rng).Sample(500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CountReads(reads, 16)
	}
}
