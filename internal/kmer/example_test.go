package kmer_test

import (
	"fmt"

	"pimassembler/internal/genome"
	"pimassembler/internal/kmer"
)

// The paper's Fig. 5b worked example: hashing S = CGTGCGTGCTT at k = 5.
func ExampleCountTable() {
	s := genome.MustFromString("CGTGCGTGCTT")
	tbl := kmer.NewCountTable(5, 8)
	kmer.Iterate(s, 5, func(km kmer.Kmer) { tbl.Add(km) })
	for _, e := range tbl.Entries() {
		fmt.Printf("%s %d\n", e.Kmer.String(5), e.Count)
	}
	// Unordered output:
	// CGTGC 2
	// GTGCG 1
	// TGCGT 1
	// GCGTG 1
	// GTGCT 1
	// TGCTT 1
}

// Prefix and suffix are the de Bruijn node pair of Fig. 5c.
func ExampleKmer_Prefix() {
	km := kmer.MustParse("CGTGC")
	fmt.Println(km.Prefix(5).String(4), "->", km.Suffix(5).String(4))
	// Output: CGTG -> GTGC
}

func ExampleExtract() {
	s := genome.MustFromString("ACGTAC")
	for _, km := range kmer.Extract(s, 4) {
		fmt.Println(km.String(4))
	}
	// Output:
	// ACGT
	// CGTA
	// GTAC
}
