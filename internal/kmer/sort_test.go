package kmer

import (
	"reflect"
	"sort"
	"testing"

	"pimassembler/internal/stats"
)

// refSortEntries is the pre-radix reference order: the exact sort.Slice
// call Entries used to make, kept to pin the radix output byte-identical.
func refSortEntries(es []Entry) {
	sort.Slice(es, func(a, b int) bool { return es[a].Kmer < es[b].Kmer })
}

func TestSortEntriesMatchesReference(t *testing.T) {
	rng := stats.NewRNG(40)
	cases := []struct {
		name string
		gen  func(n int) []Entry
		ns   []int
	}{
		{"random-k16", func(n int) []Entry {
			out := make([]Entry, n)
			for i := range out {
				out[i] = Entry{Kmer(rng.Uint64()) & Kmer(Mask(16)), uint32(rng.Intn(100) + 1)}
			}
			return out
		}, []int{0, 1, 2, 3, 17, 48, 49, 100, 5000}},
		{"random-k32-full-width", func(n int) []Entry {
			out := make([]Entry, n)
			for i := range out {
				out[i] = Entry{Kmer(rng.Uint64()), uint32(i + 1)}
			}
			return out
		}, []int{64, 4096}},
		{"tiny-keyspace", func(n int) []Entry {
			out := make([]Entry, n)
			for i := range out {
				out[i] = Entry{Kmer(rng.Uint64() % 7), uint32(rng.Intn(9) + 1)}
			}
			return out
		}, []int{100, 1000}},
		{"all-equal", func(n int) []Entry {
			out := make([]Entry, n)
			for i := range out {
				out[i] = Entry{Kmer(42), uint32(i)}
			}
			return out
		}, []int{300}},
	}
	for _, tc := range cases {
		for _, n := range tc.ns {
			es := tc.gen(n)
			want := append(make([]Entry, 0, n), es...)
			sort.SliceStable(want, func(a, b int) bool { return want[a].Kmer < want[b].Kmer })
			sortEntries(es)
			if !reflect.DeepEqual(es, want) {
				t.Fatalf("%s n=%d: radix order diverges from stable reference", tc.name, n)
			}
		}
	}
}

func TestSortEntriesPresorted(t *testing.T) {
	es := make([]Entry, 2000)
	for i := range es {
		es[i] = Entry{Kmer(i * 3), uint32(i + 1)}
	}
	want := append([]Entry(nil), es...)
	sortEntries(es)
	if !reflect.DeepEqual(es, want) {
		t.Fatal("sorting a sorted slice changed it")
	}
	// Reverse order exercises every distribution pass.
	for i := range es {
		es[i] = want[len(want)-1-i]
	}
	sortEntries(es)
	if !reflect.DeepEqual(es, want) {
		t.Fatal("reverse input not fully sorted")
	}
}

// TestEntriesOrderPinned pins that the table's Entries order is exactly the
// order the old comparison sort produced — distinct keys, so stable vs
// unstable cannot differ, but the regression guards the radix swap.
func TestEntriesOrderPinned(t *testing.T) {
	rng := stats.NewRNG(41)
	tbl := NewCountTable(20, 16)
	for i := 0; i < 4000; i++ {
		tbl.Add(Kmer(rng.Uint64()) & Kmer(Mask(20)))
	}
	got := tbl.Entries()
	want := make([]Entry, 0, tbl.Len())
	tbl.Each(func(km Kmer, c uint32) bool {
		want = append(want, Entry{km, c})
		return true
	})
	refSortEntries(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("Entries order diverges from the pre-radix sort.Slice order")
	}
}
