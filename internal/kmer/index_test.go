package kmer

import (
	"math"
	"testing"
)

func TestIndexInternAssignsDenseIDs(t *testing.T) {
	idx := NewIndex(5, 0)
	if idx.K() != 5 {
		t.Fatalf("K() = %d, want 5", idx.K())
	}
	kms := []Kmer{Kmer(0b0110), Kmer(0), Kmer(0b1111), Kmer(42)}
	for i, km := range kms {
		id := idx.Intern(km)
		if id != int32(i) {
			t.Fatalf("Intern(%v) = %d, want %d", km, id, i)
		}
	}
	if idx.Len() != len(kms) {
		t.Fatalf("Len() = %d, want %d", idx.Len(), len(kms))
	}
	// Re-interning returns the original ID, without growing.
	for i, km := range kms {
		if id := idx.Intern(km); id != int32(i) {
			t.Fatalf("re-Intern(%v) = %d, want %d", km, id, i)
		}
	}
	if idx.Len() != len(kms) {
		t.Fatalf("Len() after re-intern = %d, want %d", idx.Len(), len(kms))
	}
	for i, km := range kms {
		if got := idx.At(int32(i)); got != km {
			t.Fatalf("At(%d) = %v, want %v", i, got, km)
		}
		id, ok := idx.Lookup(km)
		if !ok || id != int32(i) {
			t.Fatalf("Lookup(%v) = (%d, %v), want (%d, true)", km, id, ok, i)
		}
	}
	if _, ok := idx.Lookup(Kmer(999)); ok {
		t.Fatal("Lookup of absent k-mer reported present")
	}
}

func TestIndexGrowPreservesIDs(t *testing.T) {
	idx := NewIndex(16, 0) // min capacity, forces several rehashes below
	const n = 10_000
	for i := 0; i < n; i++ {
		km := Kmer(uint64(i) * 0x9e3779b97f4a7c15)
		if id := idx.Intern(km); id != int32(i) {
			t.Fatalf("Intern #%d returned id %d", i, id)
		}
	}
	if idx.Len() != n {
		t.Fatalf("Len() = %d, want %d", idx.Len(), n)
	}
	for i := 0; i < n; i++ {
		km := Kmer(uint64(i) * 0x9e3779b97f4a7c15)
		id, ok := idx.Lookup(km)
		if !ok || id != int32(i) {
			t.Fatalf("after growth Lookup #%d = (%d, %v)", i, id, ok)
		}
		if idx.At(int32(i)) != km {
			t.Fatalf("after growth At(%d) = %v, want %v", i, idx.At(int32(i)), km)
		}
	}
}

// TestTableCapacitySizing is the regression test for the capacity-sizing
// overflow: the old doubling loop compared against hint*2, which wraps
// negative for hints above MaxInt/2 and then spins forever (capacity
// eventually overflows to 0 and 0 *= 2 never terminates). tableCapacity
// must terminate and stay a power of two for every hint.
func TestTableCapacitySizing(t *testing.T) {
	cases := []struct {
		hint, want int
	}{
		{-5, 16},
		{0, 16},
		{8, 16},
		{9, 32},
		{16, 32},
		{17, 64},
		{1 << 20, 1 << 21},
	}
	for _, c := range cases {
		if got := tableCapacity(c.hint); got != c.want {
			t.Errorf("tableCapacity(%d) = %d, want %d", c.hint, got, c.want)
		}
	}

	// Huge hints must terminate (the regression) and still return a
	// positive power of two. (The old loop compared capacity < hint*2, so
	// any hint above MaxInt/2 wrapped the bound negative, capacity doubled
	// to zero, and 0 *= 2 spun forever.)
	for _, hint := range []int{math.MaxInt, math.MaxInt / 2, math.MaxInt/2 + 1, math.MaxInt / 4} {
		got := tableCapacity(hint)
		if got <= 0 || got&(got-1) != 0 {
			t.Fatalf("tableCapacity(%d) = %d, not a positive power of two", hint, got)
		}
	}
}
