package kmer

// sortEntries orders entries by ascending k-mer code in place: the shared
// sorting primitive behind CountTable.Entries, FilterMinCount, and the
// per-partition runs of PartitionedTable. It replaces the old comparison
// sort (O(n log n) sort.Slice) with an LSD radix sort over the packed
// uint64 codes — O(n) passes, one pass per byte the codes actually occupy,
// so a k=16 table pays 4 passes and a k=8 table 2. The sort is stable,
// which is stronger than the old sort.Slice guarantee; tables never hold
// duplicate keys, so the output order is identical either way.
func sortEntries(es []Entry) {
	n := len(es)
	if n < 2 {
		return
	}
	if n <= 48 {
		insertionSortEntries(es)
		return
	}

	// One gathering pass builds the histogram of every byte lane; uniform
	// lanes (all high bytes for small k, shared prefixes in a partition)
	// are skipped entirely.
	var hist [8][256]int
	for _, e := range es {
		v := uint64(e.Kmer)
		hist[0][byte(v)]++
		hist[1][byte(v>>8)]++
		hist[2][byte(v>>16)]++
		hist[3][byte(v>>24)]++
		hist[4][byte(v>>32)]++
		hist[5][byte(v>>40)]++
		hist[6][byte(v>>48)]++
		hist[7][byte(v>>56)]++
	}

	buf := make([]Entry, n)
	src, dst := es, buf
	for b := 0; b < 8; b++ {
		h := &hist[b]
		shift := uint(8 * b)
		// The byte histogram is permutation-invariant, so src[0] probes
		// uniformity regardless of how earlier passes reordered entries.
		if h[byte(uint64(src[0].Kmer)>>shift)] == n {
			continue
		}
		var off [256]int
		sum := 0
		for i := range h {
			off[i] = sum
			sum += h[i]
		}
		for _, e := range src {
			d := byte(uint64(e.Kmer) >> shift)
			dst[off[d]] = e
			off[d]++
		}
		src, dst = dst, src
	}
	if &src[0] != &es[0] {
		copy(es, src)
	}
}

// insertionSortEntries handles the short slices where radix bookkeeping
// costs more than it saves.
func insertionSortEntries(es []Entry) {
	for i := 1; i < len(es); i++ {
		e := es[i]
		j := i - 1
		for j >= 0 && es[j].Kmer > e.Kmer {
			es[j+1] = es[j]
			j--
		}
		es[j+1] = e
	}
}
