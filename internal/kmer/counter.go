package kmer

// Counter is the stage-1 counting contract: everything the layers above the
// hash table consume — graph construction (Each, Len), read correction
// (Count), trimming (FilterMinCount), spectra, deterministic enumeration
// (Entries), and the op-count extraction feeding the analytical models
// (ProbeOps). Both the serial CountTable and the hash-partitioned
// PartitionedTable satisfy it, so a pipeline switches between serial and
// parallel counting without touching any downstream code.
type Counter interface {
	// K returns the k-mer length.
	K() int
	// Len returns the number of distinct k-mers stored.
	Len() int
	// Count returns the stored count of km (0 if absent).
	Count(km Kmer) uint32
	// Each calls fn for every entry in unspecified order; return false to
	// stop early.
	Each(fn func(Kmer, uint32) bool)
	// Entries returns all entries sorted by k-mer value.
	Entries() []Entry
	// Spectrum returns the frequency spectrum (index 0 unused).
	Spectrum() []int64
	// FilterMinCount returns the entries with count ≥ min, sorted by k-mer.
	FilterMinCount(min uint32) []Entry
	// ProbeOps returns the cumulative slot comparisons performed.
	ProbeOps() int64
}

var (
	_ Counter = (*CountTable)(nil)
	_ Counter = (*PartitionedTable)(nil)
)
