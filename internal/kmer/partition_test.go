package kmer

import (
	"reflect"
	"runtime"
	"testing"

	"pimassembler/internal/genome"
	"pimassembler/internal/stats"
)

// countWorkload builds one of the four PR-5 workload shapes (the shard
// property-test suite's trials): clean reads, erroneous reads, a short
// genome, and reads barely above k.
func countWorkload(seed uint64, genomeLen, readLen, n int, errRate float64) []*genome.Sequence {
	rng := stats.NewRNG(seed)
	ref := genome.GenerateGenome(genomeLen, rng)
	return genome.NewReadSampler(ref, readLen, errRate, rng).Sample(n)
}

var countTrials = []struct {
	name                         string
	seed                         uint64
	genomeLen, readLen, numReads int
	errRate                      float64
}{
	{"clean reads", 21, 2_000, 101, 150, 0},
	{"erroneous reads", 22, 1_500, 80, 200, 0.01},
	{"short genome", 23, 400, 60, 64, 0},
	{"reads barely above k", 24, 900, 18, 120, 0},
}

// TestPartitionedMatchesSerial is the tentpole property: for k ∈ {2..8} ×
// the four PR-5 workload shapes, and across partition and worker counts,
// the partitioned counter agrees with the serial CountTable on entries
// order, Len, per-key counts, spectrum, and trimmed entries.
func TestPartitionedMatchesSerial(t *testing.T) {
	workerSweeps := []int{1, 4, runtime.NumCPU()}
	for _, tr := range countTrials {
		t.Run(tr.name, func(t *testing.T) {
			reads := countWorkload(tr.seed, tr.genomeLen, tr.readLen, tr.numReads, tr.errRate)
			for k := 2; k <= 8; k++ {
				serial := CountReads(reads, k)
				wantEntries := serial.Entries()
				wantSpec := serial.Spectrum()
				wantTrim := serial.FilterMinCount(2)
				for _, parts := range []int{1, 4, 64} {
					for _, workers := range workerSweeps {
						pt := CountReadsPartitioned(reads, k, parts, workers)
						if pt.Len() != serial.Len() {
							t.Fatalf("k=%d P=%d W=%d: Len %d, want %d", k, parts, workers, pt.Len(), serial.Len())
						}
						if got := pt.Entries(); !reflect.DeepEqual(got, wantEntries) {
							t.Fatalf("k=%d P=%d W=%d: entries diverge from serial", k, parts, workers)
						}
						if got := pt.Spectrum(); !reflect.DeepEqual(got, wantSpec) {
							t.Fatalf("k=%d P=%d W=%d: spectrum diverges from serial", k, parts, workers)
						}
						if got := pt.FilterMinCount(2); !reflect.DeepEqual(got, wantTrim) {
							t.Fatalf("k=%d P=%d W=%d: FilterMinCount diverges from serial", k, parts, workers)
						}
						for _, e := range wantEntries[:min(len(wantEntries), 32)] {
							if got := pt.Count(e.Kmer); got != e.Count {
								t.Fatalf("k=%d P=%d W=%d: Count(%v)=%d, want %d", k, parts, workers, e.Kmer, got, e.Count)
							}
						}
						if pt.Count(Kmer(Mask(k))) != serial.Count(Kmer(Mask(k))) {
							t.Fatalf("k=%d P=%d W=%d: probe of edge key diverges", k, parts, workers)
						}
					}
				}
			}
		})
	}
}

// TestPartitionedWorkerInvariance pins the full bit-identity contract
// across worker counts at a fixed partition count: entries AND the physical
// ProbeOps totals, which depend on per-partition insertion order.
func TestPartitionedWorkerInvariance(t *testing.T) {
	reads := countWorkload(21, 2_000, 101, 150, 0)
	for _, k := range []int{4, 16, 31} {
		base := CountReadsPartitioned(reads, k, DefaultPartitions, 1)
		baseEntries := base.Entries()
		for _, workers := range []int{2, 4, runtime.NumCPU(), 3 * runtime.NumCPU()} {
			pt := CountReadsPartitioned(reads, k, DefaultPartitions, workers)
			if pt.ProbeOps() != base.ProbeOps() {
				t.Fatalf("k=%d workers=%d: ProbeOps %d, want %d (workers=1)",
					k, workers, pt.ProbeOps(), base.ProbeOps())
			}
			if !reflect.DeepEqual(pt.Entries(), baseEntries) {
				t.Fatalf("k=%d workers=%d: entries diverge from workers=1", k, workers)
			}
		}
	}
}

// TestCountReadsParallelDefault pins CountReadsParallel to the
// DefaultPartitions geometry.
func TestCountReadsParallelDefault(t *testing.T) {
	reads := countWorkload(23, 400, 60, 64, 0)
	pt := CountReadsParallel(reads, 8, 2)
	if pt.NumPartitions() != DefaultPartitions {
		t.Fatalf("partitions %d, want %d", pt.NumPartitions(), DefaultPartitions)
	}
	want := CountReadsPartitioned(reads, 8, DefaultPartitions, 2)
	if pt.ProbeOps() != want.ProbeOps() || !reflect.DeepEqual(pt.Entries(), want.Entries()) {
		t.Fatal("CountReadsParallel differs from explicit DefaultPartitions call")
	}
}

// TestPartitionedTableGeometry covers the partition-count rounding and the
// routing function's edge cases.
func TestPartitionedTableGeometry(t *testing.T) {
	for _, tc := range []struct{ req, want int }{
		{-3, 1}, {0, 1}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {64, 64}, {65, 128},
		{maxPartitions, maxPartitions}, {maxPartitions + 1, maxPartitions},
	} {
		pt := NewPartitionedTable(16, tc.req, 0)
		if pt.NumPartitions() != tc.want {
			t.Errorf("partitions(%d) = %d, want %d", tc.req, pt.NumPartitions(), tc.want)
		}
	}
	// One partition must route everything to index 0 (Hash() >> 64 == 0).
	pt := NewPartitionedTable(16, 1, 0)
	rng := stats.NewRNG(3)
	for i := 0; i < 100; i++ {
		pt.Add(Kmer(rng.Uint64()) & Kmer(Mask(16)))
	}
	if pt.parts[0].Len() != pt.Len() {
		t.Fatal("single-partition table scattered keys")
	}
}

// TestPartitionedAddAndEach covers the direct mutation path and Each's
// early-termination across partition boundaries.
func TestPartitionedAddAndEach(t *testing.T) {
	pt := NewPartitionedTable(6, 8, 0)
	rng := stats.NewRNG(6)
	ref := make(map[Kmer]uint32)
	for i := 0; i < 2000; i++ {
		km := Kmer(rng.Uint64()%200) & Kmer(Mask(6))
		if got, want := pt.Add(km), ref[km]+1; got != want {
			t.Fatalf("Add returned %d, want %d", got, want)
		}
		ref[km]++
	}
	if pt.Len() != len(ref) {
		t.Fatalf("Len %d, want %d", pt.Len(), len(ref))
	}
	visited := 0
	pt.Each(func(km Kmer, c uint32) bool {
		if ref[km] != c {
			t.Fatalf("Each saw %v=%d, want %d", km, c, ref[km])
		}
		visited++
		return true
	})
	if visited != len(ref) {
		t.Fatalf("Each visited %d entries, want %d", visited, len(ref))
	}
	for _, stop := range []int{1, 2, len(ref) / 2, len(ref)} {
		calls := 0
		pt.Each(func(Kmer, uint32) bool {
			calls++
			return calls < stop
		})
		if calls != stop {
			t.Fatalf("early stop at %d made %d calls", stop, calls)
		}
	}
}

// TestMergeEntryRuns exercises the k-way merge directly, including empty
// and single runs.
func TestMergeEntryRuns(t *testing.T) {
	if got := mergeEntryRuns(nil); len(got) != 0 {
		t.Fatal("merging no runs must be empty")
	}
	if got := mergeEntryRuns([][]Entry{nil, {}, nil}); len(got) != 0 {
		t.Fatal("merging empty runs must be empty")
	}
	one := []Entry{{1, 1}, {5, 2}}
	if got := mergeEntryRuns([][]Entry{nil, one}); !reflect.DeepEqual(got, one) {
		t.Fatal("single live run must pass through")
	}
	rng := stats.NewRNG(7)
	var runs [][]Entry
	var all []Entry
	next := Kmer(0)
	for r := 0; r < 9; r++ {
		n := rng.Intn(40)
		run := make([]Entry, 0, n)
		for i := 0; i < n; i++ {
			next += Kmer(rng.Intn(5) + 1)
			run = append(run, Entry{next, uint32(r + 1)})
		}
		runs = append(runs, run)
		all = append(all, run...)
	}
	// Scatter: reassign entries to runs round-robin so runs interleave.
	scattered := make([][]Entry, 7)
	for i, e := range all {
		scattered[i%7] = append(scattered[i%7], e)
	}
	want := append([]Entry(nil), all...)
	refSortEntries(want)
	if got := mergeEntryRuns(scattered); !reflect.DeepEqual(got, want) {
		t.Fatal("k-way merge diverges from reference sort")
	}
}
