package kmer

// Index interns k-mers into dense int32 IDs: the open-addressing /
// linear-probing discipline of CountTable, generalised from counting to
// identity assignment. IDs are issued in first-insertion order, 0..Len()-1,
// so downstream structures (the de Bruijn graph's CSR adjacency, degree
// vectors, traversal scratch) can be flat arrays indexed by ID instead of
// hash maps keyed by Kmer.
type Index struct {
	k     int
	slots []int32 // slot -> id+1; 0 marks an empty slot
	keys  []Kmer  // slot -> interned k-mer (parallel to slots)
	kmers []Kmer  // id -> k-mer (the reverse mapping)
}

// NewIndex creates an index for k-mers of length k with room for at least
// hint entries before growing.
func NewIndex(k, hint int) *Index {
	checkK(k)
	capacity := tableCapacity(hint)
	return &Index{
		k:     k,
		slots: make([]int32, capacity),
		keys:  make([]Kmer, capacity),
		kmers: make([]Kmer, 0, capacity/2),
	}
}

// K returns the index's k-mer length.
func (x *Index) K() int { return x.k }

// Len returns the number of interned k-mers (and the exclusive upper bound
// of issued IDs).
func (x *Index) Len() int { return len(x.kmers) }

// At returns the k-mer interned as id.
func (x *Index) At(id int32) Kmer { return x.kmers[id] }

// Intern returns km's dense ID, assigning the next free ID on first sight.
func (x *Index) Intern(km Kmer) int32 {
	if len(x.kmers)*2 >= len(x.slots) {
		x.grow()
	}
	mask := uint64(len(x.slots) - 1)
	i := km.Hash() & mask
	for {
		s := x.slots[i]
		if s == 0 {
			id := int32(len(x.kmers))
			x.kmers = append(x.kmers, km)
			x.slots[i] = id + 1
			x.keys[i] = km
			return id
		}
		if x.keys[i] == km {
			return s - 1
		}
		i = (i + 1) & mask
	}
}

// Lookup returns km's ID without inserting.
func (x *Index) Lookup(km Kmer) (int32, bool) {
	mask := uint64(len(x.slots) - 1)
	i := km.Hash() & mask
	for {
		s := x.slots[i]
		if s == 0 {
			return 0, false
		}
		if x.keys[i] == km {
			return s - 1, true
		}
		i = (i + 1) & mask
	}
}

func (x *Index) grow() {
	oldSlots, oldKeys := x.slots, x.keys
	x.slots = make([]int32, len(oldSlots)*2)
	x.keys = make([]Kmer, len(oldKeys)*2)
	mask := uint64(len(x.slots) - 1)
	for i, s := range oldSlots {
		if s == 0 {
			continue
		}
		j := oldKeys[i].Hash() & mask
		for x.slots[j] != 0 {
			j = (j + 1) & mask
		}
		x.slots[j] = s
		x.keys[j] = oldKeys[i]
	}
}
