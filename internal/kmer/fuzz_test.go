package kmer

import (
	"reflect"
	"testing"

	"pimassembler/internal/genome"
)

// FuzzPartitionedVsSerial is the differential target for the parallel
// counting layer: arbitrary bytes become a read set, and the partitioned
// counter (fuzzed partition and worker counts) must agree with the serial
// CountTable on length, entries order, spectrum, and trimmed entries.
func FuzzPartitionedVsSerial(f *testing.F) {
	f.Add([]byte("CGTGCGTGCTT"), uint8(5), uint8(4), uint8(2))
	f.Add([]byte{}, uint8(2), uint8(1), uint8(1))
	f.Add([]byte{0, 1, 2, 3, 0, 1, 2, 3, 255, 254, 9, 9, 9}, uint8(3), uint8(64), uint8(8))
	f.Add([]byte("AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA"), uint8(8), uint8(16), uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, kRaw, partsRaw, workersRaw uint8) {
		k := 2 + int(kRaw)%7 // 2..8, the property-test sweep
		parts := 1 + int(partsRaw)%128
		workers := 1 + int(workersRaw)%8
		reads := fuzzReads(data, k)
		serial := CountReads(reads, k)
		pt := CountReadsPartitioned(reads, k, parts, workers)
		if pt.Len() != serial.Len() {
			t.Fatalf("Len %d, want %d", pt.Len(), serial.Len())
		}
		if !reflect.DeepEqual(pt.Entries(), serial.Entries()) {
			t.Fatal("entries diverge from serial")
		}
		if !reflect.DeepEqual(pt.Spectrum(), serial.Spectrum()) {
			t.Fatal("spectrum diverges from serial")
		}
		if !reflect.DeepEqual(pt.FilterMinCount(2), serial.FilterMinCount(2)) {
			t.Fatal("FilterMinCount diverges from serial")
		}
	})
}

// fuzzReads decodes bytes into a read set: read lengths cycle through a
// fixed schedule around k (below, at, and well above), bases are the low
// two bits of successive bytes.
func fuzzReads(data []byte, k int) []*genome.Sequence {
	lengths := []int{k - 1, k, 2*k + 3, 37, 1}
	var reads []*genome.Sequence
	pos, li := 0, 0
	for pos < len(data) {
		n := lengths[li%len(lengths)]
		li++
		if n > len(data)-pos {
			n = len(data) - pos
		}
		if n <= 0 {
			break
		}
		s := genome.NewSequence(n)
		for i := 0; i < n; i++ {
			s.SetBase(i, genome.Base(data[pos+i]&3))
		}
		reads = append(reads, s)
		pos += n
	}
	return reads
}
