package kmer

import (
	"testing"
	"testing/quick"

	"pimassembler/internal/genome"
	"pimassembler/internal/stats"
)

func TestParseStringRoundTrip(t *testing.T) {
	for _, s := range []string{"A", "ACGT", "TTTTTTTT", "CGTGC", "ACGTACGTACGTACGTACGTACGTACGTACGT"} {
		km, err := Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		if got := km.String(len(s)); got != s {
			t.Fatalf("round trip %q -> %q", s, got)
		}
	}
}

func TestParseRejects(t *testing.T) {
	if _, err := Parse(""); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := Parse("ACGTN"); err == nil {
		t.Fatal("N accepted")
	}
	if _, err := Parse("ACGTACGTACGTACGTACGTACGTACGTACGTA"); err == nil {
		t.Fatal("33-mer accepted")
	}
}

func TestFromSequence(t *testing.T) {
	s := genome.MustFromString("CGTGCGTGCTT")
	km := FromSequence(s, 5)
	if km.String(5) != "CGTGC" {
		t.Fatalf("got %q", km.String(5))
	}
}

func TestPrefixSuffix(t *testing.T) {
	// Fig. 5c: node_1 = k_mer[0..k-2], node_2 = k_mer[1..k-1].
	km := MustParse("CGTGC")
	if got := km.Prefix(5).String(4); got != "CGTG" {
		t.Fatalf("prefix %q, want CGTG", got)
	}
	if got := km.Suffix(5).String(4); got != "GTGC" {
		t.Fatalf("suffix %q, want GTGC", got)
	}
}

func TestExtendInvertsPrefix(t *testing.T) {
	km := MustParse("ACGTAGG")
	k := 7
	rebuilt := km.Prefix(k).Extend(k, km.LastBase(k))
	if rebuilt != km {
		t.Fatalf("Extend(Prefix) != identity: %q vs %q", rebuilt.String(k), km.String(k))
	}
}

func TestFirstLastBase(t *testing.T) {
	km := MustParse("GATTC")
	if km.FirstBase() != genome.G || km.LastBase(5) != genome.C {
		t.Fatal("first/last base wrong")
	}
}

func TestReverseComplement(t *testing.T) {
	km := MustParse("AACGT")
	if got := km.ReverseComplement(5).String(5); got != "ACGTT" {
		t.Fatalf("revcomp %q", got)
	}
}

func TestCanonicalIdempotent(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		k := 1 + rng.Intn(MaxK)
		km := Kmer(rng.Uint64()) & Kmer(Mask(k))
		c := km.Canonical(k)
		return c.Canonical(k) == c && (c == km || c == km.ReverseComplement(k))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIterateMatchesExtract(t *testing.T) {
	rng := stats.NewRNG(3)
	s := genome.GenerateGenome(300, rng)
	k := 21
	kms := Extract(s, k)
	if len(kms) != s.Len()-k+1 {
		t.Fatalf("extracted %d k-mers, want %d", len(kms), s.Len()-k+1)
	}
	// Rolling extraction must equal direct packing at every offset.
	for i, km := range kms {
		want := FromSequence(s.Subsequence(i, k), k)
		if km != want {
			t.Fatalf("k-mer %d: rolling %q != direct %q", i, km.String(k), want.String(k))
		}
	}
}

func TestExtractShortSequence(t *testing.T) {
	s := genome.MustFromString("ACG")
	if got := Extract(s, 5); got != nil {
		t.Fatalf("short sequence yielded %v", got)
	}
}

func TestToSequenceRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		k := 1 + rng.Intn(MaxK)
		km := Kmer(rng.Uint64()) & Kmer(Mask(k))
		return FromSequence(km.ToSequence(k), k) == km
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMask(t *testing.T) {
	if Mask(1) != 3 || Mask(2) != 15 {
		t.Fatal("small masks wrong")
	}
	if Mask(32) != ^uint64(0) {
		t.Fatal("full mask wrong")
	}
}

func TestHashDistribution(t *testing.T) {
	// Adjacent k-mers must not collide in the low bits used for slotting.
	seen := make(map[uint64]int)
	for i := 0; i < 4096; i++ {
		h := Kmer(i).Hash() & 1023
		seen[h]++
	}
	for h, c := range seen {
		if c > 20 { // expectation 4, generous bound
			t.Fatalf("hash bucket %d has %d entries; poor mixing", h, c)
		}
	}
}

func TestCheckKPanics(t *testing.T) {
	for _, k := range []int{0, -1, 33} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("k=%d accepted", k)
				}
			}()
			Mask(k)
		}()
	}
}
