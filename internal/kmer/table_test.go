package kmer

import (
	"testing"
	"testing/quick"

	"pimassembler/internal/genome"
	"pimassembler/internal/stats"
)

func TestCountTablePaperExample(t *testing.T) {
	// Fig. 5b: S = CGTGCGTGCTT, k = 5 yields the hash table
	// CGTGC:2, GTGCG:1, TGCGT:1, GCGTG:1, GTGCT:1, TGCTT:1.
	s := genome.MustFromString("CGTGCGTGCTT")
	tbl := NewCountTable(5, 8)
	Iterate(s, 5, func(km Kmer) { tbl.Add(km) })
	want := map[string]uint32{
		"CGTGC": 2, "GTGCG": 1, "TGCGT": 1, "GCGTG": 1, "GTGCT": 1, "TGCTT": 1,
	}
	if tbl.Len() != len(want) {
		t.Fatalf("distinct %d, want %d", tbl.Len(), len(want))
	}
	for text, count := range want {
		if got := tbl.Count(MustParse(text)); got != count {
			t.Errorf("count(%s) = %d, want %d", text, got, count)
		}
	}
	if tbl.Count(MustParse("AAAAA")) != 0 {
		t.Error("absent k-mer has non-zero count")
	}
}

func TestCountTableGrowth(t *testing.T) {
	tbl := NewCountTable(16, 1)
	rng := stats.NewRNG(5)
	ref := make(map[Kmer]uint32)
	for i := 0; i < 5000; i++ {
		km := Kmer(rng.Uint64()) & Kmer(Mask(16))
		tbl.Add(km)
		ref[km]++
	}
	if tbl.Len() != len(ref) {
		t.Fatalf("distinct %d, want %d", tbl.Len(), len(ref))
	}
	for km, c := range ref {
		if got := tbl.Count(km); got != c {
			t.Fatalf("count %v = %d, want %d", km, got, c)
		}
	}
}

func TestCountTableAddReturnsNewCount(t *testing.T) {
	tbl := NewCountTable(4, 4)
	km := MustParse("ACGT")
	if tbl.Add(km) != 1 || tbl.Add(km) != 2 || tbl.Add(km) != 3 {
		t.Fatal("Add must return the updated frequency (New_freq of Fig. 5b)")
	}
}

func TestEntriesSorted(t *testing.T) {
	tbl := NewCountTable(8, 16)
	rng := stats.NewRNG(8)
	for i := 0; i < 100; i++ {
		tbl.Add(Kmer(rng.Uint64()) & Kmer(Mask(8)))
	}
	es := tbl.Entries()
	for i := 1; i < len(es); i++ {
		if es[i-1].Kmer >= es[i].Kmer {
			t.Fatal("entries not strictly sorted")
		}
	}
}

func TestCountReadsAgainstMap(t *testing.T) {
	rng := stats.NewRNG(9)
	g := genome.GenerateGenome(2000, rng)
	reads := genome.NewReadSampler(g, 80, 0, rng).Sample(40)
	k := 13
	tbl := CountReads(reads, k)
	ref := make(map[Kmer]uint32)
	for _, r := range reads {
		for _, km := range Extract(r, k) {
			ref[km]++
		}
	}
	if tbl.Len() != len(ref) {
		t.Fatalf("distinct %d, want %d", tbl.Len(), len(ref))
	}
	for km, c := range ref {
		if tbl.Count(km) != c {
			t.Fatal("count mismatch vs reference map")
		}
	}
}

func TestSpectrumSumsToDistinct(t *testing.T) {
	rng := stats.NewRNG(10)
	g := genome.GenerateGenome(1000, rng)
	tbl := CountReads(genome.TilingReads(g, 100, 50), 15)
	spec := tbl.Spectrum()
	var total int64
	for _, c := range spec {
		total += c
	}
	if total != int64(tbl.Len()) {
		t.Fatalf("spectrum sums to %d, want %d", total, tbl.Len())
	}
	if spec[0] != 0 {
		t.Fatal("spectrum[0] must be empty")
	}
}

func TestFilterMinCount(t *testing.T) {
	tbl := NewCountTable(4, 4)
	a, b := MustParse("ACGT"), MustParse("TTTT")
	tbl.Add(a)
	tbl.Add(a)
	tbl.Add(b)
	kept := tbl.FilterMinCount(2)
	if len(kept) != 1 || kept[0].Kmer != a {
		t.Fatalf("filter kept %v", kept)
	}
}

// TestSpectrumUnderGrowth drives the table through several grow cycles
// (hint 1, thousands of inserts with heavy repetition) and checks the
// spectrum bucket by bucket against a reference map.
func TestSpectrumUnderGrowth(t *testing.T) {
	tbl := NewCountTable(12, 1)
	rng := stats.NewRNG(11)
	ref := make(map[Kmer]uint32)
	for i := 0; i < 20_000; i++ {
		km := Kmer(rng.Uint64()%3000) & Kmer(Mask(12))
		tbl.Add(km)
		ref[km]++
	}
	wantSpec := make(map[uint32]int64)
	var maxC uint32
	for _, c := range ref {
		wantSpec[c]++
		if c > maxC {
			maxC = c
		}
	}
	spec := tbl.Spectrum()
	if len(spec) != int(maxC)+1 {
		t.Fatalf("spectrum length %d, want %d", len(spec), maxC+1)
	}
	for c, n := range spec {
		if n != wantSpec[uint32(c)] {
			t.Fatalf("spectrum[%d] = %d, want %d", c, n, wantSpec[uint32(c)])
		}
	}
}

// TestEachEarlyTerminationUnderGrowth pins that Each stops exactly at the
// first false return — no further callbacks — on a table that has regrown
// several times, and that a full pass visits each entry exactly once.
func TestEachEarlyTerminationUnderGrowth(t *testing.T) {
	tbl := NewCountTable(10, 1)
	rng := stats.NewRNG(12)
	for i := 0; i < 5_000; i++ {
		tbl.Add(Kmer(rng.Uint64()) & Kmer(Mask(10)))
	}
	if tbl.Len() < 1000 {
		t.Fatalf("workload too small to force growth: %d distinct", tbl.Len())
	}
	seen := make(map[Kmer]int)
	tbl.Each(func(km Kmer, _ uint32) bool {
		seen[km]++
		return true
	})
	if len(seen) != tbl.Len() {
		t.Fatalf("full Each visited %d distinct, want %d", len(seen), tbl.Len())
	}
	for km, n := range seen {
		if n != 1 {
			t.Fatalf("entry %v visited %d times", km, n)
		}
	}
	for _, stop := range []int{1, 7, tbl.Len() / 2, tbl.Len()} {
		calls := 0
		tbl.Each(func(Kmer, uint32) bool {
			calls++
			return calls < stop
		})
		if calls != stop {
			t.Fatalf("early stop at %d made %d callbacks", stop, calls)
		}
	}
}

// TestFilterMinCountMatchesReference checks the preallocated filter against
// the naive filter-of-Entries on a grown table, for every threshold the
// spectrum contains (plus one past the maximum).
func TestFilterMinCountMatchesReference(t *testing.T) {
	tbl := NewCountTable(9, 1)
	rng := stats.NewRNG(13)
	for i := 0; i < 8_000; i++ {
		tbl.Add(Kmer(rng.Uint64()%600) & Kmer(Mask(9)))
	}
	all := tbl.Entries()
	var maxC uint32
	for _, e := range all {
		if e.Count > maxC {
			maxC = e.Count
		}
	}
	for min := uint32(0); min <= maxC+1; min++ {
		want := make([]Entry, 0)
		for _, e := range all {
			if e.Count >= min {
				want = append(want, e)
			}
		}
		got := tbl.FilterMinCount(min)
		if len(got) != len(want) {
			t.Fatalf("min=%d: %d survivors, want %d", min, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("min=%d: survivor %d is %+v, want %+v", min, i, got[i], want[i])
			}
		}
	}
}

func TestProbeOpsMonotone(t *testing.T) {
	tbl := NewCountTable(8, 8)
	before := tbl.ProbeOps()
	tbl.Add(MustParse("ACGTACGT"))
	if tbl.ProbeOps() <= before {
		t.Fatal("probe counter must advance on Add")
	}
	mid := tbl.ProbeOps()
	tbl.Count(MustParse("ACGTACGT"))
	if tbl.ProbeOps() <= mid {
		t.Fatal("probe counter must advance on Count")
	}
}

// Property: table counts always match a reference map.
func TestCountTableProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		k := 1 + rng.Intn(MaxK)
		tbl := NewCountTable(k, 4)
		ref := make(map[Kmer]uint32)
		// Draw from a small keyspace to force collisions and repeats.
		for i := 0; i < 300; i++ {
			km := Kmer(rng.Uint64()%32) & Kmer(Mask(k))
			tbl.Add(km)
			ref[km]++
		}
		if tbl.Len() != len(ref) {
			return false
		}
		for km, c := range ref {
			if tbl.Count(km) != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
