package kmer

import (
	"fmt"

	"pimassembler/internal/genome"
	"pimassembler/internal/parallel"
)

// DefaultPartitions is the partition count CountReadsParallel uses: enough
// partitions that every worker count up to DefaultPartitions gets disjoint
// ownership, and each partition's table stays small enough to be
// cache-resident on realistic workloads. The partition count — never the
// worker count — determines the physical probe sequences, so keeping it a
// fixed constant makes ProbeOps (and everything else) invariant in the
// worker count.
const DefaultPartitions = 64

// maxPartitions bounds NewPartitionedTable against absurd requests.
const maxPartitions = 1 << 16

// Staging geometry of the parallel counting pipeline. Reads are scanned in
// chunks of stageChunkReads; staged k-mers are drained into the partition
// tables whenever a batch reaches stageBatchKmers, so resident staging
// memory is bounded (~9 MiB at the default: 34 bytes per staged k-mer
// across code, hash, partition, and scatter buffers) however large the read
// set is. Both constants are pure functions of nothing — batch and chunk
// boundaries depend only on the read list and k, never on workers — which
// the determinism contract relies on.
const (
	stageChunkReads = 64
	stageBatchKmers = 1 << 18
)

// PartitionedTable is the hash-partitioned parallel counterpart of
// CountTable: k-mer space is split into P partitions by the top bits of
// Kmer.Hash, each partition owning an independent CountTable (its own
// capacity, growth schedule, and probe counter). Routing is a pure function
// of the k-mer, so a distinct k-mer lives in exactly one partition and the
// aggregate (counts, entries, spectra) is the disjoint union of the
// per-partition tables — no cross-partition merge of counts ever happens.
//
// Determinism: entries order, counts, Len, Spectrum, and FilterMinCount are
// identical to a serial CountTable over the same reads, for any partition
// count and any worker count. ProbeOps is the sum of the per-partition
// probe counters: invariant in the worker count (insertion order per
// partition is pinned to read order), but — like the serial table's
// dependence on its capacity hint — it reflects the physical layout, so it
// varies with the partition count.
type PartitionedTable struct {
	k     int
	shift uint // partition = Hash() >> shift; shift = 64 - log2(P)
	parts []*CountTable
}

// NewPartitionedTable creates a table of `partitions` partitions (rounded
// up to a power of two, clamped to [1, 65536]) for k-mers of length k, with
// aggregate capacity for about hint entries.
func NewPartitionedTable(k, partitions, hint int) *PartitionedTable {
	checkK(k)
	if partitions < 1 {
		partitions = 1
	}
	if partitions > maxPartitions {
		partitions = maxPartitions
	}
	p := 1
	shift := uint(64)
	for p < partitions {
		p *= 2
		shift--
	}
	parts := make([]*CountTable, p)
	for i := range parts {
		parts[i] = NewCountTable(k, hint/p)
	}
	return &PartitionedTable{k: k, shift: shift, parts: parts}
}

// K returns the table's k-mer length.
func (t *PartitionedTable) K() int { return t.k }

// NumPartitions returns the partition count (a power of two).
func (t *PartitionedTable) NumPartitions() int { return len(t.parts) }

// partition returns the index of the partition owning km.
func (t *PartitionedTable) partition(km Kmer) int {
	return int(km.Hash() >> t.shift)
}

// Len returns the number of distinct k-mers stored across all partitions.
func (t *PartitionedTable) Len() int {
	n := 0
	for _, p := range t.parts {
		n += p.Len()
	}
	return n
}

// ProbeOps returns the aggregate probe comparisons over all partitions.
func (t *PartitionedTable) ProbeOps() int64 {
	var ops int64
	for _, p := range t.parts {
		ops += p.ProbeOps()
	}
	return ops
}

// Add increments the count of km in its home partition and returns the new
// count. Not safe for concurrent use — the parallel counting pipeline gives
// every worker disjoint partitions instead of sharing Add.
func (t *PartitionedTable) Add(km Kmer) uint32 {
	return t.parts[t.partition(km)].Add(km)
}

// Count returns the stored count of km (0 if absent).
func (t *PartitionedTable) Count(km Kmer) uint32 {
	return t.parts[t.partition(km)].Count(km)
}

// Each calls fn for every entry, partition by partition in index order and
// in each partition's slot order; return false to stop.
func (t *PartitionedTable) Each(fn func(Kmer, uint32) bool) {
	stopped := false
	for _, p := range t.parts {
		p.Each(func(km Kmer, c uint32) bool {
			if !fn(km, c) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			return
		}
	}
}

// Entries returns all entries sorted by k-mer value, identical to the
// serial CountTable order: each partition's run is sorted independently (in
// parallel, radix), then the P runs are merged — linear in the entry count
// for the fixed partition counts in use, instead of a global O(n log n)
// comparison sort.
func (t *PartitionedTable) Entries() []Entry {
	runs := make([][]Entry, len(t.parts))
	parallel.ForEach(len(t.parts), func(i int) { runs[i] = t.parts[i].Entries() })
	return mergeEntryRuns(runs)
}

// FilterMinCount returns the entries with count ≥ min, sorted by k-mer:
// per-partition filtered runs merged the same way as Entries.
func (t *PartitionedTable) FilterMinCount(min uint32) []Entry {
	runs := make([][]Entry, len(t.parts))
	parallel.ForEach(len(t.parts), func(i int) { runs[i] = t.parts[i].FilterMinCount(min) })
	return mergeEntryRuns(runs)
}

// Spectrum returns the frequency spectrum summed over partitions —
// identical to the serial table's, since every distinct k-mer is counted in
// exactly one partition.
func (t *PartitionedTable) Spectrum() []int64 {
	specs := parallel.Map(len(t.parts), func(i int) []int64 { return t.parts[i].Spectrum() })
	maxLen := 1
	for _, s := range specs {
		if len(s) > maxLen {
			maxLen = len(s)
		}
	}
	out := make([]int64, maxLen)
	for _, s := range specs {
		for c, v := range s {
			out[c] += v
		}
	}
	return out
}

// String summarises the table.
func (t *PartitionedTable) String() string {
	return fmt.Sprintf("kmer.PartitionedTable{k=%d, distinct=%d, partitions=%d}", t.k, t.Len(), len(t.parts))
}

// mergeEntryRuns merges sorted entry runs into one sorted slice. Distinct
// k-mers never repeat across runs (routing is a pure function of the key),
// so the merge is a plain k-way minimum selection over the run heads,
// organised as a small binary heap of run indices: O(n log P) comparisons —
// linear in n for a fixed partition count — and a single output allocation.
func mergeEntryRuns(runs [][]Entry) []Entry {
	total := 0
	live := make([]int, 0, len(runs))
	for i, r := range runs {
		total += len(r)
		if len(r) > 0 {
			live = append(live, i)
		}
	}
	out := make([]Entry, 0, total)
	switch len(live) {
	case 0:
		return out
	case 1:
		return append(out, runs[live[0]]...)
	}

	pos := make([]int, len(runs))
	head := func(i int) Kmer { return runs[i][pos[i]].Kmer }
	// Build the heap of run indices ordered by their head k-mer.
	heap := live
	less := func(a, b int) bool { return head(heap[a]) < head(heap[b]) }
	down := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			min := i
			if l < len(heap) && less(l, min) {
				min = l
			}
			if r < len(heap) && less(r, min) {
				min = r
			}
			if min == i {
				return
			}
			heap[i], heap[min] = heap[min], heap[i]
			i = min
		}
	}
	for i := len(heap)/2 - 1; i >= 0; i-- {
		down(i)
	}
	for len(heap) > 0 {
		r := heap[0]
		out = append(out, runs[r][pos[r]])
		pos[r]++
		if pos[r] == len(runs[r]) {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
		}
		down(0)
	}
	return out
}

// CountReadsParallel builds a hash-partitioned table over every k-mer of
// every read — stage 1 of the assembly pipeline, fanned out over workers on
// DefaultPartitions partitions. Counts, entries order, spectra, and
// ProbeOps are bit-identical for any worker count; counts and entries are
// additionally identical to the serial CountReads table.
func CountReadsParallel(reads []*genome.Sequence, k, workers int) *PartitionedTable {
	return CountReadsPartitioned(reads, k, DefaultPartitions, workers)
}

// chunkStage is one scan chunk's staging state, reused across batches: the
// chunk's k-mers in read order, each k-mer's partition, and the k-mers
// scattered into per-partition runs (run p is scat[off[p]:off[p+1]],
// read order preserved within the run — the scatter is stable).
type chunkStage struct {
	kms  []Kmer
	pid  []uint16
	off  []int32
	pos  []int32
	scat []Kmer
}

// stage fills the chunk's buffers from reads in one fused pass — extract
// every k-mer, route it by top hash bits, count partition occupancy —
// then prefix-sums the occupancy and scatters. Buffers are pre-sized from
// the read lengths, so the hot loop is plain index stores.
func (c *chunkStage) stage(reads []*genome.Sequence, k int, nparts int, shift uint) {
	n := 0
	for _, r := range reads {
		if m := r.Len() - k + 1; m > 0 {
			n += m
		}
	}
	if cap(c.kms) < n {
		c.kms = make([]Kmer, n)
		c.pid = make([]uint16, n)
		c.scat = make([]Kmer, n)
	}
	c.kms = c.kms[:n]
	c.pid = c.pid[:n]
	c.scat = c.scat[:n]
	if cap(c.off) < nparts+1 {
		c.off = make([]int32, nparts+1)
		c.pos = make([]int32, nparts)
	}
	c.off = c.off[:nparts+1]
	for i := range c.off {
		c.off[i] = 0
	}
	idx := 0
	for _, r := range reads {
		Iterate(r, k, func(km Kmer) {
			p := uint16(km.Hash() >> shift)
			c.kms[idx] = km
			c.pid[idx] = p
			c.off[p+1]++
			idx++
		})
	}
	for p := 0; p < nparts; p++ {
		c.off[p+1] += c.off[p]
	}
	// Stable scatter: pos[p] walks run p from its start offset.
	c.pos = c.pos[:nparts]
	copy(c.pos, c.off[:nparts])
	for i, km := range c.kms {
		p := c.pid[i]
		c.scat[c.pos[p]] = km
		c.pos[p]++
	}
}

// run returns the chunk's staged k-mers for partition p, in read order.
func (c *chunkStage) run(p int) []Kmer { return c.scat[c.off[p]:c.off[p+1]] }

// CountReadsPartitioned is CountReadsParallel with an explicit partition
// count. workers <= 0 means parallel.Workers(); the output is bit-identical
// for any worker value, including 1 — the parallel == serial contract of
// internal/parallel, which the race-gated property tests pin.
//
// Shape: reads are scanned in fixed-size chunks; each scan task extracts
// its chunk's k-mers and scatters them into per-partition runs (top hash
// bits choose the partition; the scatter is stable, so runs keep read
// order). When a batch of staged k-mers reaches the bound, partition tasks
// drain it: partition p folds the batch's runs chunk-by-chunk in chunk
// order, so per-partition insertion order is exactly read order restricted
// to the partition — independent of workers, chunk size, and batch
// boundaries, which is what makes ProbeOps worker-invariant. No locks
// anywhere: scan tasks own their chunk's buffers, drain tasks own their
// partition's table, and the staging buffers are reused across batches so
// resident memory stays bounded by the batch budget.
func CountReadsPartitioned(reads []*genome.Sequence, k, partitions, workers int) *PartitionedTable {
	checkK(k)
	if workers <= 0 {
		workers = parallel.Workers()
	}
	hint := 0
	for _, r := range reads {
		if r.Len() >= k {
			hint += r.Len() - k + 1
		}
	}
	t := NewPartitionedTable(k, partitions, hint)
	nparts := len(t.parts)
	shift := t.shift

	var stages []*chunkStage
	lo := 0
	for lo < len(reads) {
		// Grow the batch read-by-read until the staged k-mer budget is
		// reached (always at least one chunk of reads).
		hi, staged := lo, 0
		for hi < len(reads) && (staged < stageBatchKmers || hi-lo < stageChunkReads) {
			if n := reads[hi].Len() - k + 1; n > 0 {
				staged += n
			}
			hi++
		}
		spans := parallel.Spans(hi-lo, stageChunkReads)
		for len(stages) < len(spans) {
			stages = append(stages, &chunkStage{})
		}
		parallel.ForEachWorkers(workers, len(spans), func(c int) {
			stages[c].stage(reads[lo+spans[c].Lo:lo+spans[c].Hi], k, nparts, shift)
		})
		parallel.ForEachWorkers(workers, nparts, func(p int) {
			tbl := t.parts[p]
			for c := range spans {
				tbl.AddAll(stages[c].run(p))
			}
		})
		lo = hi
	}
	return t
}
