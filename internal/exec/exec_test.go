package exec

import (
	"strings"
	"sync"
	"testing"

	"pimassembler/internal/dram"
)

func TestStreamViews(t *testing.T) {
	s := NewStream()
	s.Record(Command{Subarray: 0, Kind: dram.CmdAAP2, Stage: StageHashmap, Rows: 2})
	s.Record(Command{Subarray: 0, Kind: dram.CmdAAP2, Stage: StageHashmap, Rows: 2})
	s.Record(Command{Subarray: 3, Kind: dram.CmdWrite, Stage: StageInput, Rows: 1})
	s.Record(Command{Subarray: 7, Kind: dram.CmdDPU, Stage: StageTraverse, Rows: 1})

	if s.Len() != 4 {
		t.Fatalf("len %d, want 4", s.Len())
	}
	if s.Subarrays() != 3 {
		t.Fatalf("subarrays %d, want 3", s.Subarrays())
	}
	tot := s.Totals()
	if tot[dram.CmdAAP2] != 2 || tot[dram.CmdWrite] != 1 || tot[dram.CmdDPU] != 1 {
		t.Fatalf("totals %v", tot)
	}
	h := s.Histogram()
	if h.Commands != 4 {
		t.Fatalf("histogram commands %d", h.Commands)
	}
	if h.PerStage[StageHashmap][dram.CmdAAP2] != 2 {
		t.Fatalf("per-stage %v", h.PerStage)
	}
	if !strings.Contains(h.String(), "hashmap") {
		t.Fatalf("rendered histogram missing stage row:\n%s", h.String())
	}
	cmds := s.Commands()
	if len(cmds) != 4 || cmds[0].Kind != dram.CmdAAP2 || cmds[3].Subarray != 7 {
		t.Fatalf("commands copy wrong: %v", cmds)
	}
	s.Reset()
	if s.Len() != 0 {
		t.Fatalf("reset left %d commands", s.Len())
	}
}

func TestAttributeMatchesMeter(t *testing.T) {
	tm := dram.DefaultTiming()
	en := dram.DefaultEnergy()
	m := dram.NewMeter(tm, en)
	s := NewStream()
	kinds := []dram.CommandKind{
		dram.CmdAAPCopy, dram.CmdAAP2, dram.CmdAAP3, dram.CmdRead,
		dram.CmdWrite, dram.CmdDPU, dram.CmdActivate, dram.CmdPrecharge,
	}
	stages := []Stage{StageInput, StageHashmap, StageDeBruijn, StageTraverse}
	for i := 0; i < 200; i++ {
		k := kinds[i%len(kinds)]
		m.Record(k, 1)
		s.Record(Command{Subarray: i % 5, Kind: k, Stage: stages[i%len(stages)], Rows: k.SourceRows()})
	}
	costs := s.Attribute(tm, en)
	if len(costs) != len(stages) {
		t.Fatalf("got %d stage costs, want %d", len(costs), len(stages))
	}
	var ns, pj float64
	var n int64
	for _, c := range costs {
		ns += c.SerialNS
		pj += c.EnergyPJ
		n += c.Commands
	}
	if n != 200 {
		t.Fatalf("attributed %d commands, want 200", n)
	}
	if !near(ns, m.LatencyNS) {
		t.Fatalf("attributed serial %v ns, meter %v ns", ns, m.LatencyNS)
	}
	if !near(pj, m.EnergyPJ) {
		t.Fatalf("attributed energy %v pJ, meter %v pJ", pj, m.EnergyPJ)
	}
}

func TestStreamConcurrentRecord(t *testing.T) {
	s := NewStream()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Record(Command{Subarray: w, Kind: dram.CmdAAP2, Stage: StageHashmap, Rows: 2})
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 800 {
		t.Fatalf("len %d, want 800", s.Len())
	}
	if s.Subarrays() != 8 {
		t.Fatalf("subarrays %d, want 8", s.Subarrays())
	}
}

func TestTee(t *testing.T) {
	a, b := NewStream(), NewStream()
	tee := Tee{a, b}
	tee.Record(Command{Subarray: 1, Kind: dram.CmdRead, Stage: StageNone, Rows: 1})
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatalf("tee fan-out wrong: %d, %d", a.Len(), b.Len())
	}
}

func TestStageStrings(t *testing.T) {
	if StageHashmap.String() != "hashmap" || StageDeBruijn.String() != "deBruijn" {
		t.Fatalf("stage names wrong: %v %v", StageHashmap, StageDeBruijn)
	}
	if len(Stages()) != int(numStages) {
		t.Fatalf("Stages() returned %d entries", len(Stages()))
	}
	if Stage(200).String() == "" {
		t.Fatal("out-of-range stage should still render")
	}
}

func near(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := b
	if scale < 0 {
		scale = -scale
	}
	if scale < 1 {
		scale = 1
	}
	return d/scale < 1e-9
}

func TestCanonicalPreservesSubsequencesDeterministically(t *testing.T) {
	// Record the same per-sub-array subsequences under two different
	// interleavings; Canonical must return the identical slice for both.
	mk := func(order []int) *Stream {
		s := NewStream()
		next := map[int]int{}
		for _, sub := range order {
			s.Record(Command{Subarray: sub, Kind: dram.CmdRead, Stage: Stage(1 + next[sub]%4), Rows: 1})
			next[sub]++
		}
		return s
	}
	a := mk([]int{2, 0, 0, 1, 2, 1, 0, 2})
	b := mk([]int{0, 1, 2, 0, 2, 1, 0, 2}) // same multiset per sub-array order
	ca, cb := a.Canonical(), b.Canonical()
	if len(ca) != len(cb) || len(ca) != 8 {
		t.Fatalf("lengths %d vs %d", len(ca), len(cb))
	}
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatalf("slot %d: %v vs %v", i, ca[i], cb[i])
		}
	}
	// Per-sub-array subsequence must be preserved exactly.
	var got []Stage
	for _, c := range ca {
		if c.Subarray == 0 {
			got = append(got, c.Stage)
		}
	}
	want := []Stage{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sub 0 subsequence %v, want %v", got, want)
		}
	}
	// Round-robin: the first len(ids) commands cover each sub-array once.
	seen := map[int]bool{}
	for _, c := range ca[:3] {
		seen[c.Subarray] = true
	}
	if len(seen) != 3 {
		t.Fatalf("first round covers %d sub-arrays, want 3", len(seen))
	}
}
