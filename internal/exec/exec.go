// Package exec is the per-sub-array command-stream layer between the
// functional simulator and the timing/energy models. Every DRAM/PIM command
// a functional sub-array executes is recorded here as a typed record —
// which sub-array, which command kind, how many rows the first ACTIVATE
// opens, and which pipeline stage issued it — so the one recorded stream is
// the single source of truth that the serial Meter, the controller
// scheduler (internal/sched), and the per-stage energy attribution all
// consume. The serial Meter totals and the stream totals are maintained in
// lock step by internal/subarray and cross-checked by tests; the scheduler
// derives the parallel makespan from the stream's real sub-array
// attribution instead of a synthetic round-robin spread.
package exec

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"pimassembler/internal/dram"
)

// Stage tags a command with the assembly-pipeline phase that issued it,
// matching the paper's three procedures plus the bookkeeping phases around
// them.
type Stage uint8

const (
	// StageNone marks commands issued outside a tagged pipeline phase.
	StageNone Stage = iota
	// StageInput is sequence-bank loading (writing reads into DRAM rows).
	StageInput
	// StageHashmap is stage 1: read dispatch from the bank plus the k-mer
	// hash-table probes, inserts, and counter increments (Fig. 5b).
	StageHashmap
	// StageDeBruijn is stage 2a: reading the table back out and writing the
	// adjacency blocks of the graph (Fig. 8 mapping).
	StageDeBruijn
	// StageTraverse is stage 2b: the in-memory degree reductions and the
	// traversal's reads (Fig. 8 reduce/ripple flow).
	StageTraverse
	// StageBulk is the §II-B raw bulk bit-wise workload.
	StageBulk

	numStages
)

var stageNames = [...]string{
	StageNone:     "none",
	StageInput:    "input",
	StageHashmap:  "hashmap",
	StageDeBruijn: "deBruijn",
	StageTraverse: "traverse",
	StageBulk:     "bulk",
}

// String implements fmt.Stringer.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return fmt.Sprintf("Stage(%d)", uint8(s))
}

// Stages returns every stage in rendering order.
func Stages() []Stage {
	out := make([]Stage, numStages)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// Command is one typed per-sub-array command record.
type Command struct {
	// Subarray is the platform-global sub-array index the command executed
	// in.
	Subarray int
	// Kind is the DRAM/PIM command primitive.
	Kind dram.CommandKind
	// Stage is the pipeline phase that issued the command.
	Stage Stage
	// Rows is how many rows the command's first ACTIVATE opens (1 for
	// normal commands, 2 for two-row AAPs, 3 for TRA).
	Rows int
}

// String implements fmt.Stringer.
func (c Command) String() string {
	return fmt.Sprintf("sub%d %v [%v]", c.Subarray, c.Kind, c.Stage)
}

// Recorder receives command records. Implementations must be safe for
// concurrent use: parallel stage-1 workers record from one goroutine per
// active sub-array group.
type Recorder interface {
	Record(c Command)
}

// Stream is the default Recorder: an append-only, mutex-protected command
// log with aggregation views. Detach a producer by handing it a nil
// Recorder interface, not a nil *Stream.
type Stream struct {
	mu   sync.Mutex
	cmds []Command
}

// NewStream returns an empty stream.
func NewStream() *Stream { return &Stream{} }

// Record appends one command.
func (s *Stream) Record(c Command) {
	s.mu.Lock()
	s.cmds = append(s.cmds, c)
	s.mu.Unlock()
}

// Len returns the number of recorded commands.
func (s *Stream) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.cmds)
}

// Commands returns a copy of the recorded stream in issue order. In
// parallel runs the inter-sub-array interleaving is scheduling-dependent,
// but each sub-array's subsequence is deterministic.
func (s *Stream) Commands() []Command {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Command, len(s.cmds))
	copy(out, s.cmds)
	return out
}

// Canonical returns the commands in a deterministic round-robin
// interleaving across sub-arrays: each sub-array's own subsequence is
// preserved (that order is deterministic even under parallel functional
// runs), and commands are drawn one at a time from every non-exhausted
// sub-array in ascending index order. Use it to schedule a stream recorded
// by a parallel run — the raw append order depends on goroutine scheduling,
// so a makespan derived from it would not reproduce, while the canonical
// interleaving both reproduces exactly and models the cross-sub-array
// overlap a controller could extract.
func (s *Stream) Canonical() []Command {
	cmds := s.Commands()
	bySub := make(map[int][]Command)
	var ids []int
	for _, c := range cmds {
		if _, ok := bySub[c.Subarray]; !ok {
			ids = append(ids, c.Subarray)
		}
		bySub[c.Subarray] = append(bySub[c.Subarray], c)
	}
	sort.Ints(ids)
	out := make([]Command, 0, len(cmds))
	pos := make(map[int]int, len(ids))
	for len(out) < len(cmds) {
		for _, id := range ids {
			if pos[id] < len(bySub[id]) {
				out = append(out, bySub[id][pos[id]])
				pos[id]++
			}
		}
	}
	return out
}

// Reset clears the stream.
func (s *Stream) Reset() {
	s.mu.Lock()
	s.cmds = nil
	s.mu.Unlock()
}

// Totals returns the per-kind command counts — the view the serial
// dram.Meter maintains independently; tests assert the two never drift.
func (s *Stream) Totals() map[dram.CommandKind]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[dram.CommandKind]int64)
	for _, c := range s.cmds {
		out[c.Kind]++
	}
	return out
}

// Subarrays returns how many distinct sub-arrays the stream touched.
func (s *Stream) Subarrays() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := make(map[int]struct{})
	for _, c := range s.cmds {
		seen[c.Subarray] = struct{}{}
	}
	return len(seen)
}

// Histogram is the per-stage × per-kind command breakdown of a stream.
type Histogram struct {
	// PerStage maps stage -> kind -> count.
	PerStage map[Stage]map[dram.CommandKind]int64
	// Totals is the per-kind count over all stages.
	Totals map[dram.CommandKind]int64
	// Commands is the total record count.
	Commands int
}

// Histogram aggregates the stream.
func (s *Stream) Histogram() Histogram {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := Histogram{
		PerStage: make(map[Stage]map[dram.CommandKind]int64),
		Totals:   make(map[dram.CommandKind]int64),
		Commands: len(s.cmds),
	}
	for _, c := range s.cmds {
		m := h.PerStage[c.Stage]
		if m == nil {
			m = make(map[dram.CommandKind]int64)
			h.PerStage[c.Stage] = m
		}
		m[c.Kind]++
		h.Totals[c.Kind]++
	}
	return h
}

// histogramKinds is the rendering order of command kinds.
var histogramKinds = []dram.CommandKind{
	dram.CmdAAPCopy, dram.CmdAAP2, dram.CmdAAP3,
	dram.CmdRead, dram.CmdWrite, dram.CmdDPU,
	dram.CmdActivate, dram.CmdPrecharge,
}

// String renders the histogram as a stage × kind table.
func (h Histogram) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s", "stage")
	for _, k := range histogramKinds {
		fmt.Fprintf(&sb, " %10s", k)
	}
	fmt.Fprintf(&sb, " %10s\n", "total")
	for _, st := range Stages() {
		m := h.PerStage[st]
		if len(m) == 0 {
			continue
		}
		var total int64
		fmt.Fprintf(&sb, "%-10s", st)
		for _, k := range histogramKinds {
			fmt.Fprintf(&sb, " %10d", m[k])
			total += m[k]
		}
		fmt.Fprintf(&sb, " %10d\n", total)
	}
	fmt.Fprintf(&sb, "%-10s", "all")
	var total int64
	for _, k := range histogramKinds {
		fmt.Fprintf(&sb, " %10d", h.Totals[k])
		total += h.Totals[k]
	}
	fmt.Fprintf(&sb, " %10d\n", total)
	return sb.String()
}

// StageCost is one stage's share of the stream's serial time and energy.
type StageCost struct {
	Stage     Stage
	Commands  int64
	SerialNS  float64
	EnergyPJ  float64
	Subarrays int
}

// String implements fmt.Stringer.
func (c StageCost) String() string {
	return fmt.Sprintf("%-9s %9d cmds  %10.1f µs serial  %10.2f µJ  %4d sub-arrays",
		c.Stage, c.Commands, c.SerialNS/1e3, c.EnergyPJ/1e6, c.Subarrays)
}

// Attribute prices every stage's commands with the given timing and energy
// models, returning one StageCost per stage present in the stream, in stage
// order. The per-kind pricing is dram.Duration/dram.EnergyOf — the same
// functions the Meter accrues with — so summing the stages reproduces the
// Meter's serial totals exactly.
func (s *Stream) Attribute(t dram.Timing, e dram.Energy) []StageCost {
	s.mu.Lock()
	defer s.mu.Unlock()
	costs := make(map[Stage]*StageCost)
	subs := make(map[Stage]map[int]struct{})
	for _, c := range s.cmds {
		sc := costs[c.Stage]
		if sc == nil {
			sc = &StageCost{Stage: c.Stage}
			costs[c.Stage] = sc
			subs[c.Stage] = make(map[int]struct{})
		}
		sc.Commands++
		sc.SerialNS += dram.Duration(c.Kind, t)
		sc.EnergyPJ += dram.EnergyOf(c.Kind, e)
		subs[c.Stage][c.Subarray] = struct{}{}
	}
	out := make([]StageCost, 0, len(costs))
	for st, sc := range costs {
		sc.Subarrays = len(subs[st])
		out = append(out, *sc)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Stage < out[b].Stage })
	return out
}

// Tee fans one record out to several recorders.
type Tee []Recorder

// Record implements Recorder.
func (t Tee) Record(c Command) {
	for _, r := range t {
		r.Record(c)
	}
}
