package dram

import "fmt"

// Energy holds per-command energy parameters for one sub-array. The values
// are scaled to the sub-array granularity (256 bit-lines) from published
// 45 nm DDR3 device numbers (Rambus power model, as the paper uses, and the
// per-operation breakdowns reported by Ambit and DRISA). All energies are in
// picojoules; power in watts.
type Energy struct {
	// EActivate is the energy of activating one 256-cell sub-array row
	// (word-line swing + cell restore + sense amplification).
	EActivate float64
	// EPrecharge is the energy of precharging the sub-array's bit-lines.
	EPrecharge float64
	// EMultiRowFactor is the extra activation energy factor per
	// simultaneously opened row beyond the first (charge-sharing rows do
	// not fully restore, so the increment is below 1.0).
	EMultiRowFactor float64
	// ESenseAddon is the energy of the reconfigurable SA's add-on circuit
	// (two shifted-VTC inverters, AND, XOR, latch, MUX) per row operation.
	ESenseAddon float64
	// EDPUOp is the energy of one MAT-level DPU operation (row-wide AND
	// reduction or small scalar add).
	EDPUOp float64
	// ERowBuffer is the energy of moving one row through the global row
	// buffer (normal read/write path), per row.
	ERowBuffer float64
	// PStaticSubarray is the static (leakage + refresh amortised) power per
	// sub-array in watts.
	PStaticSubarray float64
	// PController is the memory-group controller power in watts.
	PController float64
}

// DefaultEnergy returns the calibrated 45 nm sub-array energy model.
//
// Calibration notes (see DESIGN.md §1): a full 8 kB DRAM row activation
// costs ≈0.9 nJ on DDR3; one 256-bit sub-array row is 1/256 of that bank row
// across the device, giving ≈28 pJ per sub-array-row activation once local
// word-line and SA overheads are folded in. The add-on SA circuit (~50
// transistors per bit-line) adds ≈15 % on top of sense energy.
func DefaultEnergy() Energy {
	return Energy{
		EActivate:       28.0,
		EPrecharge:      9.0,
		EMultiRowFactor: 0.55,
		ESenseAddon:     4.2,
		EDPUOp:          6.5,
		ERowBuffer:      22.0,
		PStaticSubarray: 190e-6,
		PController:     3.2,
	}
}

// Validate checks that the model is physically sensible.
func (e Energy) Validate() error {
	if e.EActivate <= 0 || e.EPrecharge <= 0 || e.ERowBuffer <= 0 {
		return fmt.Errorf("dram: command energies must be positive: %+v", e)
	}
	if e.EMultiRowFactor <= 0 || e.EMultiRowFactor > 1 {
		return fmt.Errorf("dram: multi-row factor %.2f outside (0,1]", e.EMultiRowFactor)
	}
	if e.ESenseAddon < 0 || e.EDPUOp < 0 || e.PStaticSubarray < 0 || e.PController < 0 {
		return fmt.Errorf("dram: energy components must be non-negative: %+v", e)
	}
	return nil
}

// ActivationEnergy returns the energy of simultaneously activating rows
// word-lines in one sub-array (1 for a normal ACTIVATE, 2 for the paper's
// two-row mechanism, 3 for Ambit-style TRA).
func (e Energy) ActivationEnergy(rows int) float64 {
	if rows <= 0 {
		return 0
	}
	return e.EActivate * (1 + e.EMultiRowFactor*float64(rows-1))
}

// AAPEnergy returns the energy of one AAP primitive in one sub-array:
// first activation opens srcRows rows, the second opens dstRows rows, then
// one precharge closes the array. The add-on SA circuit is charged once if
// the AAP computes (i.e. is not a plain copy).
func (e Energy) AAPEnergy(srcRows, dstRows int, compute bool) float64 {
	total := e.ActivationEnergy(srcRows) + e.ActivationEnergy(dstRows) + e.EPrecharge
	if compute {
		total += e.ESenseAddon
	}
	return total
}
