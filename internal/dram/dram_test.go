package dram

import (
	"math"
	"testing"
)

func TestDefaultGeometryMatchesPaper(t *testing.T) {
	g := Default()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.RowsPerSubarray != 1024 || g.ColsPerSubarray != 256 {
		t.Fatalf("sub-array %dx%d, paper uses 1024x256", g.RowsPerSubarray, g.ColsPerSubarray)
	}
	if g.DataRows() != 1016 {
		t.Fatalf("data rows %d, paper splits 1016 data + 8 compute", g.DataRows())
	}
	if g.ComputeRows != 8 {
		t.Fatalf("compute rows %d, want 8", g.ComputeRows)
	}
	if g.MATsPerBank() != 16 {
		t.Fatalf("MATs per bank %d, paper uses 4x4", g.MATsPerBank())
	}
	if g.Banks() != 256 {
		t.Fatalf("banks %d, paper uses 16x16 per group", g.Banks())
	}
}

func TestGeometryDerivedCounts(t *testing.T) {
	g := Default()
	if got := g.SubarraysPerBank(); got != g.MATsPerBank()*g.SubarraysPerMAT {
		t.Fatalf("SubarraysPerBank %d inconsistent", got)
	}
	if got := g.TotalSubarrays(); got != g.Banks()*g.SubarraysPerBank() {
		t.Fatalf("TotalSubarrays %d inconsistent", got)
	}
	if got := g.ActiveSubarrays(); got != g.ActiveBanks*g.SubarraysPerBank() {
		t.Fatalf("ActiveSubarrays %d inconsistent", got)
	}
	if got := g.ParallelBits(); got != g.ActiveSubarrays()*256 {
		t.Fatalf("ParallelBits %d inconsistent", got)
	}
	if got := g.SubarrayBits(); got != 1024*256 {
		t.Fatalf("SubarrayBits %d", got)
	}
	if got := g.CapacityBits(); got != int64(g.TotalSubarrays())*1024*256 {
		t.Fatalf("CapacityBits %d", got)
	}
}

func TestGeometryValidateRejectsBadConfigs(t *testing.T) {
	cases := []func(*Geometry){
		func(g *Geometry) { g.RowsPerSubarray = 0 },
		func(g *Geometry) { g.ColsPerSubarray = -1 },
		func(g *Geometry) { g.ComputeRows = 0 },
		func(g *Geometry) { g.ComputeRows = g.RowsPerSubarray },
		func(g *Geometry) { g.ReservedRows = -1 },
		func(g *Geometry) { g.SubarraysPerMAT = 0 },
		func(g *Geometry) { g.BankRows = 0 },
		func(g *Geometry) { g.ActiveBanks = 0 },
		func(g *Geometry) { g.ActiveBanks = g.Banks() + 1 },
	}
	for i, mutate := range cases {
		g := Default()
		mutate(&g)
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: invalid geometry accepted: %+v", i, g)
		}
	}
}

func TestTimingDerived(t *testing.T) {
	tm := DefaultTiming()
	if err := tm.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := tm.RowCycle(), tm.TRAS+tm.TRP; got != want {
		t.Fatalf("RowCycle %v, want %v", got, want)
	}
	if got, want := tm.AAP(), 2*tm.TRAS+tm.TRP; got != want {
		t.Fatalf("AAP %v, want %v", got, want)
	}
	if tm.AAP() <= tm.RowCycle() {
		t.Fatal("AAP must cost more than a single row cycle")
	}
}

func TestTimingValidateRejectsBad(t *testing.T) {
	tm := DefaultTiming()
	tm.TRAS = tm.TRCD / 2
	if err := tm.Validate(); err == nil {
		t.Fatal("tRAS < tRCD accepted")
	}
	tm = DefaultTiming()
	tm.TCK = 0
	if err := tm.Validate(); err == nil {
		t.Fatal("zero tCK accepted")
	}
}

func TestEnergyActivation(t *testing.T) {
	e := DefaultEnergy()
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := e.ActivationEnergy(0); got != 0 {
		t.Fatalf("0-row activation energy %v", got)
	}
	one := e.ActivationEnergy(1)
	two := e.ActivationEnergy(2)
	three := e.ActivationEnergy(3)
	if one != e.EActivate {
		t.Fatalf("single activation %v, want %v", one, e.EActivate)
	}
	if two <= one || three <= two {
		t.Fatal("multi-row activation energy must increase with rows")
	}
	if two >= 2*one {
		t.Fatal("second row must cost less than a full activation (shared restore)")
	}
}

func TestAAPEnergyComputePremium(t *testing.T) {
	e := DefaultEnergy()
	plain := e.AAPEnergy(1, 1, false)
	compute := e.AAPEnergy(2, 1, true)
	if compute <= plain {
		t.Fatal("compute AAP with 2 source rows must cost more than a copy AAP")
	}
}

func TestMeterAccounting(t *testing.T) {
	m := NewMeter(DefaultTiming(), DefaultEnergy())
	m.Record(CmdAAP2, 4)
	if m.Counts[CmdAAP2] != 1 {
		t.Fatalf("count %d", m.Counts[CmdAAP2])
	}
	if m.LatencyNS != DefaultTiming().AAP() {
		t.Fatalf("latency %v, want one AAP", m.LatencyNS)
	}
	wantE := 4 * DefaultEnergy().AAPEnergy(2, 1, true)
	if math.Abs(m.EnergyPJ-wantE) > 1e-9 {
		t.Fatalf("energy %v, want %v", m.EnergyPJ, wantE)
	}
}

func TestMeterParallelEnergyScalesNotLatency(t *testing.T) {
	seq := NewMeter(DefaultTiming(), DefaultEnergy())
	par := NewMeter(DefaultTiming(), DefaultEnergy())
	seq.Record(CmdAAPCopy, 1)
	par.Record(CmdAAPCopy, 100)
	if seq.LatencyNS != par.LatencyNS {
		t.Fatal("broadcast command latency must not scale with sub-array count")
	}
	if par.EnergyPJ <= seq.EnergyPJ {
		t.Fatal("broadcast command energy must scale with sub-array count")
	}
}

func TestMeterAveragePower(t *testing.T) {
	m := NewMeter(DefaultTiming(), DefaultEnergy())
	if m.AveragePowerW() != 0 {
		t.Fatal("empty meter power must be 0")
	}
	m.Record(CmdActivate, 1)
	// pJ/ns/1000 = W
	want := m.EnergyPJ / m.LatencyNS / 1000
	if got := m.AveragePowerW(); math.Abs(got-want) > 1e-15 {
		t.Fatalf("power %v, want %v", got, want)
	}
}

func TestMeterMergeAndReset(t *testing.T) {
	a := NewMeter(DefaultTiming(), DefaultEnergy())
	b := NewMeter(DefaultTiming(), DefaultEnergy())
	a.Record(CmdRead, 1)
	b.Record(CmdRead, 1)
	b.Record(CmdWrite, 1)
	a.Merge(b)
	if a.Counts[CmdRead] != 2 || a.Counts[CmdWrite] != 1 {
		t.Fatalf("merged counts %v", a.Counts)
	}
	if a.TotalCommands() != 3 {
		t.Fatalf("total %d", a.TotalCommands())
	}
	a.Reset()
	if a.TotalCommands() != 0 || a.LatencyNS != 0 || a.EnergyPJ != 0 {
		t.Fatal("reset did not clear meter")
	}
}

func TestCommandKindString(t *testing.T) {
	if CmdAAP3.String() != "AAP.3src" {
		t.Fatalf("got %q", CmdAAP3.String())
	}
	if CommandKind(99).String() == "" {
		t.Fatal("unknown kind must still render")
	}
}

func TestThroughputConfigUses8Banks(t *testing.T) {
	g := ThroughputConfig()
	if g.ActiveBanks != 8 {
		t.Fatalf("throughput config active banks %d, paper §II-B uses 8", g.ActiveBanks)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddressRoundTrip(t *testing.T) {
	g := Default()
	cases := []Address{
		{0, 0, 0, 0},
		{0, 0, 0, 1023},
		{1, 3, 7, 512},
		{g.Banks() - 1, g.MATsPerBank() - 1, g.SubarraysPerMAT - 1, g.RowsPerSubarray - 1},
	}
	for _, a := range cases {
		if err := a.Validate(g); err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		back, err := DecodeFlatRow(g, a.FlatRow(g))
		if err != nil {
			t.Fatal(err)
		}
		if back != a {
			t.Fatalf("round trip %v -> %v", a, back)
		}
	}
}

func TestAddressFlatRowProperty(t *testing.T) {
	g := Default()
	// Every flat row decodes to a valid address that re-encodes to itself.
	total := int64(g.TotalSubarrays()) * int64(g.RowsPerSubarray)
	for _, flat := range []int64{0, 1, 1023, 1024, total / 2, total - 1} {
		a, err := DecodeFlatRow(g, flat)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Validate(g); err != nil {
			t.Fatalf("flat %d decodes invalid %v", flat, a)
		}
		if a.FlatRow(g) != flat {
			t.Fatalf("flat %d re-encodes to %d", flat, a.FlatRow(g))
		}
	}
	if _, err := DecodeFlatRow(g, total); err == nil {
		t.Fatal("out-of-range flat row accepted")
	}
	if _, err := DecodeFlatRow(g, -1); err == nil {
		t.Fatal("negative flat row accepted")
	}
}

func TestSubarrayAddressAgreesWithGlobal(t *testing.T) {
	g := Default()
	for _, sub := range []int{0, 1, g.SubarraysPerBank() - 1, g.SubarraysPerBank(), g.TotalSubarrays() - 1} {
		a, err := SubarrayAddress(g, sub, 7)
		if err != nil {
			t.Fatal(err)
		}
		if a.GlobalSubarray(g) != sub {
			t.Fatalf("sub-array %d maps to %d", sub, a.GlobalSubarray(g))
		}
	}
	if _, err := SubarrayAddress(g, g.TotalSubarrays(), 0); err == nil {
		t.Fatal("out-of-range sub-array accepted")
	}
	if _, err := SubarrayAddress(g, 0, g.RowsPerSubarray); err == nil {
		t.Fatal("out-of-range row accepted")
	}
}

func TestAddressValidateRejects(t *testing.T) {
	g := Default()
	for _, a := range []Address{
		{Bank: -1}, {Bank: g.Banks()},
		{MAT: g.MATsPerBank()}, {Subarray: g.SubarraysPerMAT},
		{Row: g.RowsPerSubarray},
	} {
		if err := a.Validate(g); err == nil {
			t.Fatalf("invalid address %v accepted", a)
		}
	}
}
