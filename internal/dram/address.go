package dram

import "fmt"

// Address locates one row within the memory group's hierarchy:
// bank → MAT → sub-array → row. The AAP instructions' src/des operands are
// flat row addresses; this mapping is how the controller resolves them.
type Address struct {
	Bank     int
	MAT      int
	Subarray int // within the MAT
	Row      int // within the sub-array
}

// Validate checks the address against a geometry.
func (a Address) Validate(g Geometry) error {
	switch {
	case a.Bank < 0 || a.Bank >= g.Banks():
		return fmt.Errorf("dram: bank %d outside [0,%d)", a.Bank, g.Banks())
	case a.MAT < 0 || a.MAT >= g.MATsPerBank():
		return fmt.Errorf("dram: MAT %d outside [0,%d)", a.MAT, g.MATsPerBank())
	case a.Subarray < 0 || a.Subarray >= g.SubarraysPerMAT:
		return fmt.Errorf("dram: sub-array %d outside [0,%d)", a.Subarray, g.SubarraysPerMAT)
	case a.Row < 0 || a.Row >= g.RowsPerSubarray:
		return fmt.Errorf("dram: row %d outside [0,%d)", a.Row, g.RowsPerSubarray)
	}
	return nil
}

// GlobalSubarray returns the flat sub-array index used by the platform and
// scheduler: banks-major, then MATs, then sub-arrays.
func (a Address) GlobalSubarray(g Geometry) int {
	return (a.Bank*g.MATsPerBank()+a.MAT)*g.SubarraysPerMAT + a.Subarray
}

// FlatRow returns the device-wide flat row address (the form AAP operands
// carry): GlobalSubarray × RowsPerSubarray + Row.
func (a Address) FlatRow(g Geometry) int64 {
	return int64(a.GlobalSubarray(g))*int64(g.RowsPerSubarray) + int64(a.Row)
}

// DecodeFlatRow inverts FlatRow.
func DecodeFlatRow(g Geometry, flat int64) (Address, error) {
	totalRows := int64(g.TotalSubarrays()) * int64(g.RowsPerSubarray)
	if flat < 0 || flat >= totalRows {
		return Address{}, fmt.Errorf("dram: flat row %d outside [0,%d)", flat, totalRows)
	}
	sub := int(flat / int64(g.RowsPerSubarray))
	row := int(flat % int64(g.RowsPerSubarray))
	perBank := g.SubarraysPerBank()
	return Address{
		Bank:     sub / perBank,
		MAT:      (sub % perBank) / g.SubarraysPerMAT,
		Subarray: sub % g.SubarraysPerMAT,
		Row:      row,
	}, nil
}

// SubarrayAddress builds the address of a (global sub-array, row) pair.
func SubarrayAddress(g Geometry, globalSubarray, row int) (Address, error) {
	if globalSubarray < 0 || globalSubarray >= g.TotalSubarrays() {
		return Address{}, fmt.Errorf("dram: sub-array %d outside [0,%d)", globalSubarray, g.TotalSubarrays())
	}
	if row < 0 || row >= g.RowsPerSubarray {
		return Address{}, fmt.Errorf("dram: row %d outside [0,%d)", row, g.RowsPerSubarray)
	}
	perBank := g.SubarraysPerBank()
	return Address{
		Bank:     globalSubarray / perBank,
		MAT:      (globalSubarray % perBank) / g.SubarraysPerMAT,
		Subarray: globalSubarray % g.SubarraysPerMAT,
		Row:      row,
	}, nil
}

// String implements fmt.Stringer.
func (a Address) String() string {
	return fmt.Sprintf("bank%d.mat%d.sub%d.row%d", a.Bank, a.MAT, a.Subarray, a.Row)
}
