package dram

import (
	"fmt"
	"sync"
)

// CommandKind enumerates the DRAM and PIM command primitives PIM-Assembler's
// controller issues. The three AAP variants correspond to the paper's §II-B
// "Software Support" instruction types.
type CommandKind int

const (
	// CmdActivate opens one row (normal DRAM ACTIVATE).
	CmdActivate CommandKind = iota
	// CmdPrecharge closes the open row(s).
	CmdPrecharge
	// CmdRead performs a column read burst through the row buffer.
	CmdRead
	// CmdWrite performs a column write burst through the row buffer.
	CmdWrite
	// CmdAAPCopy is the type-1 AAP(src, des, size): RowClone copy.
	CmdAAPCopy
	// CmdAAP2 is the type-2 AAP(src1, src2, des, size): two-row activation
	// computing X(N)OR/NOR/NAND in the reconfigurable SA.
	CmdAAP2
	// CmdAAP3 is the type-3 AAP(src1, src2, src3, des, size): Ambit-style
	// triple-row activation computing 3-input majority (carry).
	CmdAAP3
	// CmdDPU is a MAT-level digital processing unit operation (non-bulk).
	CmdDPU
)

var commandNames = [...]string{
	CmdActivate:  "ACTIVATE",
	CmdPrecharge: "PRECHARGE",
	CmdRead:      "READ",
	CmdWrite:     "WRITE",
	CmdAAPCopy:   "AAP.copy",
	CmdAAP2:      "AAP.2src",
	CmdAAP3:      "AAP.3src",
	CmdDPU:       "DPU",
}

// String implements fmt.Stringer.
func (k CommandKind) String() string {
	if k < 0 || int(k) >= len(commandNames) {
		return fmt.Sprintf("CommandKind(%d)", int(k))
	}
	return commandNames[k]
}

// SourceRows returns how many rows the first ACTIVATE of the command opens:
// 1 for normal commands and copies, 2 for two-row AAPs, 3 for TRA.
func (k CommandKind) SourceRows() int {
	switch k {
	case CmdAAPCopy:
		return 1
	case CmdAAP2:
		return 2
	case CmdAAP3:
		return 3
	default:
		return 1
	}
}

// computes reports whether the command engages the add-on SA logic.
func (k CommandKind) computes() bool { return k == CmdAAP2 || k == CmdAAP3 }

// Duration returns one command's critical-path latency in nanoseconds under
// a timing model. It is the single pricing function shared by the Meter,
// the controller scheduler, and the command-stream attribution.
func Duration(kind CommandKind, t Timing) float64 {
	switch kind {
	case CmdActivate:
		return t.TRAS
	case CmdPrecharge:
		return t.TRP
	case CmdRead:
		return t.ReadLatency()
	case CmdWrite:
		return t.WriteLatency()
	case CmdAAPCopy, CmdAAP2, CmdAAP3:
		return t.AAP()
	case CmdDPU:
		return t.TCK
	default:
		panic(fmt.Sprintf("dram: unknown command kind %v", kind))
	}
}

// EnergyOf returns one command's dynamic energy in picojoules for a single
// participating sub-array under an energy model. Broadcast commands multiply
// by the sub-array count (see Meter.Record).
func EnergyOf(kind CommandKind, e Energy) float64 {
	switch kind {
	case CmdActivate:
		return e.ActivationEnergy(1)
	case CmdPrecharge:
		return e.EPrecharge
	case CmdRead, CmdWrite:
		return e.ActivationEnergy(1) + e.ERowBuffer
	case CmdAAPCopy, CmdAAP2, CmdAAP3:
		return e.AAPEnergy(kind.SourceRows(), 1, kind.computes())
	case CmdDPU:
		return e.EDPUOp
	default:
		panic(fmt.Sprintf("dram: unknown command kind %v", kind))
	}
}

// Meter accumulates latency and energy for a stream of commands issued to a
// set of sub-arrays. One Meter typically tracks one controller's activity;
// parallel sub-arrays executing the same broadcast command account the
// energy of every participating sub-array but the latency only once.
//
// Record and Merge are safe for concurrent use (parallel stage-1 workers
// share the platform meter); read the exported fields only after the
// recording goroutines have joined.
type Meter struct {
	timing Timing
	energy Energy
	mu     sync.Mutex

	// Cycles counts issued command slots per kind.
	Counts map[CommandKind]int64
	// LatencyNS is the accumulated critical-path latency in nanoseconds.
	LatencyNS float64
	// EnergyPJ is the accumulated dynamic energy in picojoules.
	EnergyPJ float64
}

// NewMeter returns a Meter using the given timing and energy models.
func NewMeter(t Timing, e Energy) *Meter {
	return &Meter{
		timing: t,
		energy: e,
		Counts: make(map[CommandKind]int64),
	}
}

// Timing returns the meter's timing model.
func (m *Meter) Timing() Timing { return m.timing }

// Energy returns the meter's energy model.
func (m *Meter) Energy() Energy { return m.energy }

// Record accounts one command broadcast to parallelSubarrays sub-arrays.
// Latency accrues once (the sub-arrays operate in lock step); energy accrues
// per participating sub-array.
func (m *Meter) Record(kind CommandKind, parallelSubarrays int) {
	if parallelSubarrays <= 0 {
		parallelSubarrays = 1
	}
	dur := Duration(kind, m.timing)
	pj := EnergyOf(kind, m.energy)
	m.mu.Lock()
	m.Counts[kind]++
	m.LatencyNS += dur
	m.EnergyPJ += float64(parallelSubarrays) * pj
	m.mu.Unlock()
}

// TotalCommands returns the total number of recorded command slots.
func (m *Meter) TotalCommands() int64 {
	var t int64
	for _, c := range m.Counts {
		t += c
	}
	return t
}

// AveragePowerW returns dynamic power averaged over the accumulated latency,
// in watts. Returns 0 when no latency has accrued.
func (m *Meter) AveragePowerW() float64 {
	if m.LatencyNS <= 0 {
		return 0
	}
	return m.EnergyPJ / m.LatencyNS / 1000 // pJ/ns = mW; /1000 → W
}

// Reset clears all accumulated state in place — the counts map is kept so
// meters reused across parallel bulk regions don't reallocate per region.
func (m *Meter) Reset() {
	m.mu.Lock()
	clear(m.Counts)
	m.LatencyNS = 0
	m.EnergyPJ = 0
	m.mu.Unlock()
}

// Merge adds the counts, latency and energy of other into m. Use it to fold
// per-worker meters from parallel functional simulation into one total.
func (m *Meter) Merge(other *Meter) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for k, v := range other.Counts {
		m.Counts[k] += v
	}
	m.LatencyNS += other.LatencyNS
	m.EnergyPJ += other.EnergyPJ
}
