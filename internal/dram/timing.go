package dram

import "fmt"

// Timing holds the DRAM timing parameters that bound every in-memory
// operation. Values default to a DDR3-1600-class 45 nm device, the process
// node the paper's circuit work targets and the same baseline Ambit and
// DRISA report against.
//
// All durations are in nanoseconds.
type Timing struct {
	TRCD float64 // ACTIVATE to column command
	TRAS float64 // ACTIVATE to PRECHARGE (row restore complete)
	TRP  float64 // PRECHARGE duration
	TCK  float64 // bus clock period
	TBL  float64 // burst transfer time for one column burst
}

// DefaultTiming returns DDR3-1600 timing (11-11-11 grade).
func DefaultTiming() Timing {
	return Timing{
		TRCD: 13.75,
		TRAS: 35.0,
		TRP:  13.75,
		TCK:  1.25,
		TBL:  5.0,
	}
}

// Validate checks that all parameters are positive and ordered sensibly.
func (t Timing) Validate() error {
	if t.TRCD <= 0 || t.TRAS <= 0 || t.TRP <= 0 || t.TCK <= 0 || t.TBL <= 0 {
		return fmt.Errorf("dram: timing parameters must be positive: %+v", t)
	}
	if t.TRAS < t.TRCD {
		return fmt.Errorf("dram: tRAS (%.2f) must cover tRCD (%.2f)", t.TRAS, t.TRCD)
	}
	return nil
}

// RowCycle returns tRC = tRAS + tRP, the minimum interval between successive
// ACTIVATEs to the same sub-array. A single-ACTIVATE PIM step (one AP pair)
// costs one row cycle.
func (t Timing) RowCycle() float64 { return t.TRAS + t.TRP }

// AAP returns the latency of one ACTIVATE-ACTIVATE-PRECHARGE primitive. Per
// RowClone/Ambit, the second ACTIVATE overlaps the tail of the first row
// restore, so an AAP costs roughly 2·tRAS + tRP rather than two full row
// cycles.
func (t Timing) AAP() float64 { return 2*t.TRAS + t.TRP }

// ReadLatency returns the latency of a normal row read (ACTIVATE + column
// access + burst).
func (t Timing) ReadLatency() float64 { return t.TRCD + t.TBL }

// WriteLatency returns the latency of a normal row write.
func (t Timing) WriteLatency() float64 { return t.TRCD + t.TBL }
