// Package dram models the physical organisation, timing, and energy of the
// DRAM device that PIM-Assembler is built on. It provides the vocabulary the
// rest of the repository shares: the chip/bank/MAT/sub-array hierarchy from
// Fig. 1 of the paper, JEDEC-style timing parameters, per-command energy, and
// the ACTIVATE/PRECHARGE-derived command set (including the multi-row AAP
// primitives) with cycle and energy accounting.
package dram

import "fmt"

// Geometry describes the hierarchical organisation of a PIM-Assembler memory
// group. The defaults mirror the paper's §IV setup: 1024×256 sub-arrays,
// 4×4 MATs per bank, 16×16 banks per memory group. Sub-array row space is
// split into 1016 data rows and 8 compute rows (x1..x8) per Fig. 1b.
type Geometry struct {
	// RowsPerSubarray is the total number of word-lines per sub-array
	// (data rows + compute rows).
	RowsPerSubarray int
	// ColsPerSubarray is the number of bit-lines (columns) per sub-array;
	// one row therefore stores ColsPerSubarray bits.
	ColsPerSubarray int
	// ComputeRows is the number of rows wired to the modified row decoder
	// (MRD) for multi-row activation (x1..x8 in the paper).
	ComputeRows int
	// ReservedRows is the number of data rows set aside per sub-array for
	// carry/sum scratch space ("Resv." in Fig. 8).
	ReservedRows int
	// SubarraysPerMAT is how many computational sub-arrays share one global
	// row buffer within a MAT.
	SubarraysPerMAT int
	// MATRows and MATCols give the MAT grid per bank (4×4 in the paper).
	MATRows, MATCols int
	// BankRows and BankCols give the bank grid per memory group (16×16).
	BankRows, BankCols int
	// ActiveBanks is how many banks may compute concurrently. The raw
	// throughput study in §II-B uses 8 banks.
	ActiveBanks int
}

// Default returns the paper's §IV memory-group configuration.
func Default() Geometry {
	return Geometry{
		RowsPerSubarray: 1024,
		ColsPerSubarray: 256,
		ComputeRows:     8,
		ReservedRows:    4,
		SubarraysPerMAT: 8,
		MATRows:         4,
		MATCols:         4,
		BankRows:        16,
		BankCols:        16,
		ActiveBanks:     8,
	}
}

// ThroughputConfig returns the 8-bank raw-throughput configuration used for
// the Fig. 3b bulk bit-wise comparison ("8 banks with 1024×256 computational
// sub-arrays"). All MATs inside an active bank compute concurrently since
// in-situ operations never leave the local bit-lines.
func ThroughputConfig() Geometry {
	g := Default()
	g.ActiveBanks = 8
	return g
}

// Validate checks internal consistency.
func (g Geometry) Validate() error {
	switch {
	case g.RowsPerSubarray <= 0 || g.ColsPerSubarray <= 0:
		return fmt.Errorf("dram: sub-array dimensions must be positive, got %dx%d",
			g.RowsPerSubarray, g.ColsPerSubarray)
	case g.ComputeRows <= 0 || g.ComputeRows >= g.RowsPerSubarray:
		return fmt.Errorf("dram: compute rows %d out of range for %d total rows",
			g.ComputeRows, g.RowsPerSubarray)
	case g.ReservedRows < 0 || g.ReservedRows >= g.RowsPerSubarray-g.ComputeRows:
		return fmt.Errorf("dram: reserved rows %d out of range", g.ReservedRows)
	case g.SubarraysPerMAT <= 0 || g.MATRows <= 0 || g.MATCols <= 0:
		return fmt.Errorf("dram: MAT organisation must be positive")
	case g.BankRows <= 0 || g.BankCols <= 0:
		return fmt.Errorf("dram: bank grid must be positive")
	case g.ActiveBanks <= 0 || g.ActiveBanks > g.BankRows*g.BankCols:
		return fmt.Errorf("dram: active banks %d exceeds %d banks",
			g.ActiveBanks, g.BankRows*g.BankCols)
	}
	return nil
}

// DataRows returns the number of regular (non-compute) rows per sub-array,
// including the reserved scratch region.
func (g Geometry) DataRows() int { return g.RowsPerSubarray - g.ComputeRows }

// Banks returns the number of banks per memory group.
func (g Geometry) Banks() int { return g.BankRows * g.BankCols }

// MATsPerBank returns the MAT count per bank.
func (g Geometry) MATsPerBank() int { return g.MATRows * g.MATCols }

// SubarraysPerBank returns the computational sub-array count per bank.
func (g Geometry) SubarraysPerBank() int { return g.MATsPerBank() * g.SubarraysPerMAT }

// TotalSubarrays returns the sub-array count of the whole memory group.
func (g Geometry) TotalSubarrays() int { return g.Banks() * g.SubarraysPerBank() }

// ActiveSubarrays returns how many sub-arrays can execute an in-memory
// operation in the same cycle: every sub-array of every active bank, since
// in-situ computation stays on local bit-lines and needs no shared bus.
func (g Geometry) ActiveSubarrays() int { return g.ActiveBanks * g.SubarraysPerBank() }

// RowBits returns the number of bits processed by one row-wide operation in
// a single sub-array.
func (g Geometry) RowBits() int { return g.ColsPerSubarray }

// ParallelBits returns the number of bit-lanes the memory group operates on
// per in-memory compute cycle.
func (g Geometry) ParallelBits() int { return g.ActiveSubarrays() * g.RowBits() }

// SubarrayBits returns the storage capacity of one sub-array in bits.
func (g Geometry) SubarrayBits() int { return g.RowsPerSubarray * g.ColsPerSubarray }

// CapacityBits returns the storage capacity of the memory group in bits.
func (g Geometry) CapacityBits() int64 {
	return int64(g.TotalSubarrays()) * int64(g.SubarrayBits())
}

// String implements fmt.Stringer.
func (g Geometry) String() string {
	return fmt.Sprintf("dram.Geometry{%dx%d subarrays, %d/MAT, %dx%d MATs, %dx%d banks, %d active}",
		g.RowsPerSubarray, g.ColsPerSubarray, g.SubarraysPerMAT,
		g.MATRows, g.MATCols, g.BankRows, g.BankCols, g.ActiveBanks)
}
