package perfmodel

import (
	"fmt"

	"pimassembler/internal/assembly"
	"pimassembler/internal/platforms"
)

// Utilization is one platform's Fig. 11 point: the Memory Bottleneck Ratio
// (fraction of run time spent waiting on on-/off-chip data transfer) and the
// Resource Utilization Ratio (fraction of peak compute throughput achieved).
type Utilization struct {
	Platform string
	K        int
	MBRPct   float64
	RURPct   float64
}

// String implements fmt.Stringer.
func (u Utilization) String() string {
	return fmt.Sprintf("%-6s k=%-2d MBR=%5.1f%% RUR=%5.1f%%", u.Platform, u.K, u.MBRPct, u.RURPct)
}

// Bottleneck derives MBR and RUR from a platform's stage cost: MBR is the
// transfer share of the run; RUR is the post-stall throughput times the
// platform's scheduler efficiency.
func Bottleneck(s platforms.Spec, c StageCost) Utilization {
	total := c.TotalS()
	mbr := 0.0
	if total > 0 {
		mbr = c.TransferS / total
	}
	if mbr > 1 {
		mbr = 1
	}
	return Utilization{
		Platform: c.Platform,
		K:        c.K,
		MBRPct:   100 * mbr,
		RURPct:   100 * (1 - mbr) * s.SchedulerEfficiency,
	}
}

// Fig11 computes the MBR/RUR matrix for the paper's five genome-pipeline
// platforms at the given k values.
func Fig11(specs []platforms.Spec, counts func(k int) assembly.OpCounts, ks []int) []Utilization {
	var out []Utilization
	for _, k := range ks {
		c := counts(k)
		for _, s := range specs {
			out = append(out, Bottleneck(s, AssemblyCost(s, c)))
		}
	}
	return out
}
