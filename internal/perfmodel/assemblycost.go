// Package perfmodel converts algorithm-level operation counts into platform
// latency, power, memory-bottleneck and utilisation estimates — the role the
// paper's in-house Matlab behavioural simulator plays. It implements the
// models behind Fig. 9 (execution time and power), Fig. 10 (parallelism
// trade-off), Fig. 11 (MBR and RUR), and the §II-B area-overhead estimate.
package perfmodel

import (
	"fmt"

	"pimassembler/internal/assembly"
	"pimassembler/internal/mapping"
	"pimassembler/internal/platforms"
)

// DispatchBusGBs is the internal bus bandwidth available for streaming short
// reads out of the sequence bank and routing k-mers to their home
// sub-arrays — the only data movement an in-situ platform performs.
const DispatchBusGBs = 20.0

// StageCost is the latency/energy breakdown of one pipeline run.
type StageCost struct {
	Platform string
	K        int

	HashmapS  float64
	DeBruijnS float64
	TraverseS float64

	// TransferS is the time attributable to on-/off-chip data movement
	// (subset of the stage times above), feeding the MBR model.
	TransferS float64

	PowerW float64
}

// TotalS returns the summed stage time.
func (c StageCost) TotalS() float64 { return c.HashmapS + c.DeBruijnS + c.TraverseS }

// EnergyJ returns the total energy.
func (c StageCost) EnergyJ() float64 { return c.TotalS() * c.PowerW }

// String implements fmt.Stringer.
func (c StageCost) String() string {
	return fmt.Sprintf("%-6s k=%-2d hashmap=%ss debruijn=%ss traverse=%ss total=%ss power=%5.1fW",
		c.Platform, c.K, secs(c.HashmapS), secs(c.DeBruijnS), secs(c.TraverseS), secs(c.TotalS()), c.PowerW)
}

// secs renders a duration in seconds with sensible precision across the
// paper-scale (hundreds of seconds) and test-scale (microseconds) regimes.
func secs(s float64) string {
	if s >= 1 {
		return fmt.Sprintf("%7.1f", s)
	}
	return fmt.Sprintf("%7.2g", s)
}

// kmerDispatchBytes is the bus traffic of routing one k-mer to its home
// sub-array: the packed key plus command/address overhead.
func kmerDispatchBytes(k int) float64 { return float64(2*k)/8 + 8 }

// AssemblyCost prices one assembly workload on a platform.
func AssemblyCost(s platforms.Spec, c assembly.OpCounts) StageCost {
	if err := c.Validate(); err != nil {
		panic(err)
	}
	switch s.Kind {
	case platforms.KindInSitu:
		return inSituCost(s, c)
	case platforms.KindBandwidth:
		return bandwidthCost(s, c)
	default:
		panic(fmt.Sprintf("perfmodel: unknown kind %v", s.Kind))
	}
}

// inSituCost models a processing-in-DRAM platform. Hashmap and deBruijn
// work is row-parallel across DispatchParallel sub-arrays; the Euler walk is
// a sequential dependence chain priced at TraverseStepAAPs per edge. Data
// movement is the k-mer dispatch stream over the internal bus.
func inSituCost(s platforms.Spec, c assembly.OpCounts) StageCost {
	aap := platforms.AAPLatencyNS() * 1e-9

	aapsPerAdd := HashmapAAPsPerAdd(s, c.CounterBits, c.AvgProbes)
	hashCompute := c.TotalKmers * aapsPerAdd * aap / s.DispatchParallel
	dispatch := c.TotalKmers * kmerDispatchBytes(c.K) / (DispatchBusGBs * 1e9)
	hash := hashCompute + dispatch

	// DeBruijn: MEM_insert-dominated edge emission, row-parallel, plus the
	// edge dispatch stream.
	dbCompute := c.Edges * s.DeBruijnAAPsPerEdge * aap / s.DispatchParallel
	dbDispatch := c.Edges * (2 * kmerDispatchBytes(c.K-1)) / (DispatchBusGBs * 1e9)
	db := dbCompute + dbDispatch

	// Traverse: degree reduction is row-parallel (2 directions ×
	// edges/256-lane batches × DegreeBits-bit adds); the walk itself is a
	// sequential chain.
	lanes := 256.0
	degreeAAPs := 2 * (c.Edges / lanes) * (float64(c.DegreeBits)*s.AddCyclesPerBit + 20)
	degree := degreeAAPs * aap / s.DispatchParallel
	walk := c.Edges * s.TraverseStepAAPs * aap
	trav := degree + walk

	// Baseline designs stall additionally on row initialisation; charge it
	// proportionally on the compute stages (shares computed before any
	// stage is inflated).
	stall := s.InitStallFraction * (hash + db + trav)
	hs, ds, ts := hashShare(hash, db, trav), hashShare(db, hash, trav), hashShare(trav, hash, db)
	hash += stall * hs
	db += stall * ds
	trav += stall * ts

	total := hash + db + trav
	power := s.IdlePowerW + s.DispatchParallel*platforms.EnergyPerAAPpJ*s.EnergyScale*1e-12/aap
	return StageCost{
		Platform:  s.Name,
		K:         c.K,
		HashmapS:  hash,
		DeBruijnS: db,
		TraverseS: trav,
		TransferS: dispatch + dbDispatch + s.InitStallFraction*total,
		PowerW:    power,
	}
}

// HashmapAAPsPerAdd is the per-Add command-slot formula of the in-situ
// hashmap model: one temp-row write, probes × (staged compare + DPU match),
// one one-hot write, and the bit-serial counter increment. The functional
// simulator is held to this same formula (cross-tier validation in
// crosscheck_test.go), with counterBits set to the functional layout's
// width.
func HashmapAAPsPerAdd(s platforms.Spec, counterBits int, avgProbes float64) float64 {
	return 1 + avgProbes*(s.XNORCycles+0.2) + 1 + float64(counterBits)*s.IncCyclesPerBit
}

// hashShare apportions a stall across stages proportionally.
func hashShare(x, a, b float64) float64 {
	t := x + a + b
	if t == 0 {
		return 0
	}
	return x / t
}

// bandwidthCost models a von-Neumann platform: every stage is priced as
// traffic over the appropriate effective bandwidth.
func bandwidthCost(s platforms.Spec, c assembly.OpCounts) StageCost {
	randBW := s.RandBandwidthGBs * 1e9

	// Hashmap: each Add streams the k-mer and performs probe-dependent
	// random accesses into the table (key compare + counter update lines).
	hashBytesPerAdd := 58 + 18*float64(c.K)
	hash := c.TotalKmers * hashBytesPerAdd * c.AvgProbes / 2 / randBW

	// DeBruijn: GPU-Euler-style construction revisits every k-mer instance
	// with atomics/scatter passes (random-access bound) plus node/edge
	// insertion traffic.
	db := c.TotalKmers*96/randBW + c.Edges*64/randBW

	// Traverse: latency-bound pointer chasing with partial cache reuse.
	const traverseNSPerEdge = 180.0
	trav := c.Edges * traverseNSPerEdge * 1e-9

	total := hash + db + trav
	// Memory-stall share rises with k (larger keys, more lines per probe).
	stallFrac := 0.50 + 0.00625*float64(c.K)
	return StageCost{
		Platform:  s.Name,
		K:         c.K,
		HashmapS:  hash,
		DeBruijnS: db,
		TraverseS: trav,
		TransferS: stallFrac * total,
		PowerW:    s.StagePowerW,
	}
}

// CostForPlatform prices one workload on the platform named name
// (case-insensitive, see platforms.ByName) — the registry-friendly entry
// point the engine layer and CLIs resolve estimates through.
func CostForPlatform(name string, c assembly.OpCounts) (StageCost, error) {
	s, err := platforms.ByName(name)
	if err != nil {
		return StageCost{}, err
	}
	if err := c.Validate(); err != nil {
		return StageCost{}, err
	}
	return AssemblyCost(s, c), nil
}

// CostsForK prices every platform in specs on the paper-scale workload.
func CostsForK(specs []platforms.Spec, counts assembly.OpCounts) []StageCost {
	out := make([]StageCost, 0, len(specs))
	for _, s := range specs {
		out = append(out, AssemblyCost(s, counts))
	}
	return out
}

// PdPoint is one point of the Fig. 10 power/delay trade-off.
type PdPoint struct {
	Pd     int
	K      int
	DelayS float64
	PowerW float64
}

// EnergyJ returns the run energy (J).
func (p PdPoint) EnergyJ() float64 { return p.PowerW * p.DelayS }

// EDP returns the energy-delay product (J·s).
func (p PdPoint) EDP() float64 { return p.PowerW * p.DelayS * p.DelayS }

// PdTradeoff evaluates PIM-Assembler at parallelism degrees pds: replicated
// sub-array groups split the workload (including per-component traversal
// walks) with an Amdahl dispatch penalty, while dynamic power grows with the
// replica count and static power is shared.
func PdTradeoff(counts assembly.OpCounts, pds []int) []PdPoint {
	spec := platforms.PIMAssembler()
	base := AssemblyCost(spec, counts)
	dynamic := base.PowerW - spec.IdlePowerW
	out := make([]PdPoint, 0, len(pds))
	for _, pd := range pds {
		r := mapping.DefaultReplication(pd)
		delay := base.TotalS() / r.Speedup()
		power := spec.IdlePowerW + dynamic*r.PowerFactor()
		out = append(out, PdPoint{Pd: pd, K: counts.K, DelayS: delay, PowerW: power})
	}
	return out
}

// OptimalPd returns the Pd with the minimum run energy (power × delay) —
// the efficiency criterion under which the paper determines "the optimum
// performance of PIM-Assembler, where Pd ≈ 2".
func OptimalPd(points []PdPoint) int {
	best, bestE := 0, 0.0
	for i, p := range points {
		if i == 0 || p.EnergyJ() < bestE {
			best, bestE = p.Pd, p.EnergyJ()
		}
	}
	return best
}
