package perfmodel

import (
	"math"
	"testing"

	"pimassembler/internal/core"
	"pimassembler/internal/dram"
	"pimassembler/internal/kmer"
	"pimassembler/internal/platforms"
	"pimassembler/internal/stats"
)

// Cross-tier validation: the analytical hashmap cost formula must agree
// with what the functional simulator actually meters for the same workload.
// The model's IncCyclesPerBit assumes the controller's increment
// µprogram writes the new counter bit straight from the sense amplifier
// (7 slots/bit); the functional implementation conservatively stages
// through a scratch row (8 slots/bit), so the functional count is allowed
// to sit up to ~15 % above the model but never below it.
func TestHashmapCostFormulaMatchesFunctionalSimulator(t *testing.T) {
	p := core.NewDefaultPlatform()
	tbl := core.NewHashTable(p, 16, 8)
	rng := stats.NewRNG(99)

	// Repeat-heavy stream, as in real coverage.
	distinct := make([]kmer.Kmer, 300)
	for i := range distinct {
		distinct[i] = kmer.Kmer(rng.Uint64()) & kmer.Kmer(kmer.Mask(16))
	}
	adds := 0
	probes := int64(0)
	for round := 0; round < 4; round++ {
		for _, km := range distinct {
			if _, err := tbl.Add(km); err != nil {
				t.Fatal(err)
			}
			adds++
		}
	}
	m := p.Meter()
	// Functional modeled latency per Add (the meter prices each command at
	// its own duration; the formula prices everything in AAP-cycle
	// equivalents, so latency is the common currency).
	nsPerAdd := m.LatencyNS / float64(adds)

	// Measured probes per Add: every DPU op is one occupied-slot match
	// test; empty-slot hits don't compare. The model's AvgProbes counts
	// comparisons, so derive it the same way.
	probes = m.Counts[dram.CmdDPU]
	avgProbes := float64(probes) / float64(adds)

	lay := p.Layout()
	formula := HashmapAAPsPerAdd(platforms.PIMAssembler(), lay.CounterBits, avgProbes)
	modelNS := formula * platforms.AAPLatencyNS()

	// The functional implementation stages the increment through a scratch
	// row (one extra RowClone per counter bit) that the model's optimized
	// controller µprogram elides, so the functional latency may run up to
	// ~15 % above the model but never below.
	ratio := nsPerAdd / modelNS
	if ratio < 0.98 || ratio > 1.15 {
		t.Fatalf("functional %.0f ns/Add vs model %.0f ns (ratio %.3f): tiers diverged",
			nsPerAdd, modelNS, ratio)
	}
}

// The functional increment cost itself must match first principles exactly:
// RippleIncrement issues, per counter bit, 6 RowClones + 1 XOR AAP + 1 TRA,
// plus a zero write and the carry seed copy.
func TestRippleIncrementCostExact(t *testing.T) {
	p := core.NewDefaultPlatform()
	tbl := core.NewHashTable(p, 16, 1)
	// One insert into an empty table: 1 temp write + 1 RowClone (insert,
	// no comparisons) + 1 one-hot write + increment.
	if _, err := tbl.Add(kmer.MustParse("ACGTACGTACGTACGT")); err != nil {
		t.Fatal(err)
	}
	m := p.Meter()
	bits := p.Layout().CounterBits

	wantWrites := int64(2 + 1)          // temp query + one-hot + zero row
	wantCopies := int64(1 + 1 + 6*bits) // insert clone + carry seed + per-bit staging
	wantAAP2 := int64(bits)             // XOR per bit
	wantAAP3 := int64(bits)             // TRA-AND per bit
	if m.Counts[dram.CmdWrite] != wantWrites {
		t.Errorf("writes %d, want %d", m.Counts[dram.CmdWrite], wantWrites)
	}
	if m.Counts[dram.CmdAAPCopy] != wantCopies {
		t.Errorf("copies %d, want %d", m.Counts[dram.CmdAAPCopy], wantCopies)
	}
	if m.Counts[dram.CmdAAP2] != wantAAP2 {
		t.Errorf("AAP2 %d, want %d", m.Counts[dram.CmdAAP2], wantAAP2)
	}
	if m.Counts[dram.CmdAAP3] != wantAAP3 {
		t.Errorf("AAP3 %d, want %d", m.Counts[dram.CmdAAP3], wantAAP3)
	}
}

// The per-bit addition cycle count of the analytical model (AddCyclesPerBit
// = 6 for P-A) must equal the functional BitSerialAdd's slots per bit.
func TestBitSerialAddCyclesMatchModel(t *testing.T) {
	p := core.NewDefaultPlatform()
	s := p.Subarray(0)
	const m = 16
	s.BitSerialAdd(0, 100, 200, 300, m)
	meter := p.Meter()
	// Remove the fixed setup (zero write, latch reset, carry seed copy,
	// final carry copy).
	slots := float64(meter.TotalCommands()-4) / float64(m)
	want := platforms.PIMAssembler().AddCyclesPerBit
	if math.Abs(slots-want) > 0.01 {
		t.Fatalf("functional add %.2f slots/bit, model says %.0f", slots, want)
	}
}
