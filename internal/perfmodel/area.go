package perfmodel

import (
	"fmt"

	"pimassembler/internal/dram"
)

// AreaModel reproduces the §II-B area-overhead estimate: the three hardware
// cost sources of PIM-Assembler on top of a commodity DRAM chip.
type AreaModel struct {
	// SAAddOnTransistorsPerBL: add-on transistors per sense amplifier
	// (two shifted-VTC inverters, AND, XOR, D-latch, 4:1 MUX), one SA per
	// bit-line: "each SA requires ∼50 additional transistors".
	SAAddOnTransistorsPerBL int
	// MRDAddOnTransistors: the modified 3:8 row decoder adds two buffer
	// transistors per compute-row word-line driver: "only 16 add-on
	// transistors for computational rows".
	MRDAddOnTransistors int
	// CtrlRowEquivalent: controller/enable-signal overhead expressed in
	// DRAM-row-equivalents per sub-array.
	CtrlRowEquivalent float64
}

// DefaultAreaModel returns the paper's §II-B accounting.
func DefaultAreaModel() AreaModel {
	return AreaModel{
		SAAddOnTransistorsPerBL: 50,
		MRDAddOnTransistors:     16,
		CtrlRowEquivalent:       0.8,
	}
}

// AreaReport is the computed overhead.
type AreaReport struct {
	AddOnTransistorsPerSubarray int
	RowEquivalentPerSubarray    float64
	OverheadPct                 float64
}

// Overhead computes the chip-area overhead for a geometry. Following the
// paper's accounting, add-on transistors are expressed in row-equivalents
// (one DRAM row = ColsPerSubarray one-transistor cells) and compared to the
// sub-array's row count: "51 DRAM rows (51×256 transistors) per sub-array,
// at the most ... ∼5% of DRAM chip area".
func (m AreaModel) Overhead(g dram.Geometry) AreaReport {
	perSubarray := m.SAAddOnTransistorsPerBL*g.ColsPerSubarray + m.MRDAddOnTransistors
	rows := float64(perSubarray)/float64(g.ColsPerSubarray) + m.CtrlRowEquivalent
	return AreaReport{
		AddOnTransistorsPerSubarray: perSubarray,
		RowEquivalentPerSubarray:    rows,
		OverheadPct:                 100 * rows / float64(g.RowsPerSubarray),
	}
}

// String implements fmt.Stringer.
func (r AreaReport) String() string {
	return fmt.Sprintf("add-on transistors/sub-array=%d (≈%.1f row-equivalents) → %.2f%% chip area",
		r.AddOnTransistorsPerSubarray, r.RowEquivalentPerSubarray, r.OverheadPct)
}
