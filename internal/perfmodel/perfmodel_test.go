package perfmodel

import (
	"testing"

	"pimassembler/internal/assembly"
	"pimassembler/internal/genome"
	"pimassembler/internal/platforms"
)

func counts(k int) assembly.OpCounts {
	return assembly.PaperOpCounts(genome.PaperChr14(), k)
}

func fig9Specs() []platforms.Spec {
	return []platforms.Spec{
		platforms.GPU(), platforms.PIMAssembler(), platforms.Ambit(),
		platforms.DRISA3T1C(), platforms.DRISA1T1C(),
	}
}

func costOf(t *testing.T, name string, k int) StageCost {
	t.Helper()
	s, err := platforms.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return AssemblyCost(s, counts(k))
}

func TestFig9SpeedupShape(t *testing.T) {
	// Paper headline numbers with generous tolerance: who wins and by
	// roughly what factor.
	ks := genome.PaperChr14().KmerRanges
	avg := map[string]float64{}
	for _, k := range ks {
		for _, s := range fig9Specs() {
			avg[s.Name] += AssemblyCost(s, counts(k)).TotalS() / float64(len(ks))
		}
	}
	pa := avg["P-A"]
	checks := []struct {
		name       string
		paperRatio float64
		tol        float64
	}{
		{"GPU", 5.0, 0.5}, // "reduces the execution time on average by 5x"
		{"Ambit", 2.9, 0.35},
		{"D3", 2.5, 0.35},
		{"D1", 2.8, 0.35},
	}
	for _, c := range checks {
		r := avg[c.name] / pa
		if r < c.paperRatio*(1-c.tol) || r > c.paperRatio*(1+c.tol) {
			t.Errorf("P-A vs %s ratio %.2f outside paper's %.1fx ±%.0f%%",
				c.name, r, c.paperRatio, c.tol*100)
		}
	}
}

func TestHashmapSpeedupGrowsWithK(t *testing.T) {
	// Paper: ~5.2x at k=16 growing to ~9.8x at k=32 vs GPU.
	s16 := costOf(t, "GPU", 16).HashmapS / costOf(t, "P-A", 16).HashmapS
	s32 := costOf(t, "GPU", 32).HashmapS / costOf(t, "P-A", 32).HashmapS
	if s16 < 4 || s16 > 7 {
		t.Errorf("k=16 hashmap speedup %.1f far from paper's 5.2x", s16)
	}
	if s32 < 7.5 || s32 > 12 {
		t.Errorf("k=32 hashmap speedup %.1f far from paper's 9.8x", s32)
	}
	if s32 <= s16 {
		t.Error("hashmap speedup must grow with k")
	}
}

func TestHashmapDominatesGPUTime(t *testing.T) {
	// Paper: "hashmap procedure ... takes the largest fraction of execution
	// time and power in GPU platform (over 60%)".
	for _, k := range genome.PaperChr14().KmerRanges {
		c := costOf(t, "GPU", k)
		if frac := c.HashmapS / c.TotalS(); frac < 0.6 {
			t.Errorf("k=%d: GPU hashmap fraction %.2f below 60%%", k, frac)
		}
	}
}

func TestPowerShape(t *testing.T) {
	pa := costOf(t, "P-A", 16).PowerW
	// Paper: P-A averages 38.4 W.
	if pa < 33 || pa > 44 {
		t.Errorf("P-A power %.1f W far from paper's 38.4 W", pa)
	}
	gpu := costOf(t, "GPU", 16).PowerW
	if r := gpu / pa; r < 6 || r > 9 {
		t.Errorf("GPU/P-A power ratio %.1f far from paper's ~7.5x", r)
	}
	// P-A is the lowest-power platform; best PIM baseline ≈ 2.8x higher.
	best := 1e30
	for _, name := range []string{"Ambit", "D1", "D3"} {
		if p := costOf(t, name, 16).PowerW; p < best {
			best = p
		}
		if costOf(t, name, 16).PowerW <= pa {
			t.Errorf("%s power not above P-A's", name)
		}
	}
	if r := best / pa; r < 2.1 || r > 3.5 {
		t.Errorf("best-PIM/P-A power ratio %.1f far from paper's ~2.8x", r)
	}
}

func TestMBRShape(t *testing.T) {
	// Paper Fig. 11a: P-A ~9% at k=16 rising to ≲16% at k=32; GPU 60→70%.
	paSpec, _ := platforms.ByName("P-A")
	gpuSpec, _ := platforms.ByName("GPU")
	pa16 := Bottleneck(paSpec, costOf(t, "P-A", 16))
	pa32 := Bottleneck(paSpec, costOf(t, "P-A", 32))
	if pa16.MBRPct < 5 || pa16.MBRPct > 13 {
		t.Errorf("P-A MBR@16 = %.1f%%, paper ~9%%", pa16.MBRPct)
	}
	if pa32.MBRPct > 17 {
		t.Errorf("P-A MBR@32 = %.1f%%, paper caps at ~16%%", pa32.MBRPct)
	}
	if pa32.MBRPct <= pa16.MBRPct {
		t.Error("P-A MBR must grow with k")
	}
	gpu16 := Bottleneck(gpuSpec, costOf(t, "GPU", 16))
	gpu32 := Bottleneck(gpuSpec, costOf(t, "GPU", 32))
	if gpu32.MBRPct < 65 || gpu32.MBRPct > 75 {
		t.Errorf("GPU MBR@32 = %.1f%%, paper ~70%%", gpu32.MBRPct)
	}
	if gpu16.MBRPct >= gpu32.MBRPct {
		t.Error("GPU MBR must grow with k")
	}
}

func TestRURShape(t *testing.T) {
	// Paper Fig. 11b: P-A highest, up to ~65% at k=16; PIMs > 45%; GPU low.
	us := Fig11(fig9Specs(), counts, []int{16, 32})
	byKey := map[string]Utilization{}
	for _, u := range us {
		byKey[u.Platform+string(rune(u.K))] = u
	}
	pa16 := byKey["P-A"+string(rune(16))]
	if pa16.RURPct < 58 || pa16.RURPct > 70 {
		t.Errorf("P-A RUR@16 = %.1f%%, paper up to ~65%%", pa16.RURPct)
	}
	for _, u := range us {
		switch u.Platform {
		case "P-A":
			if u.RURPct <= byKey["GPU"+string(rune(u.K))].RURPct {
				t.Error("P-A must have the highest RUR")
			}
		case "Ambit", "D1", "D3":
			if u.RURPct < 43 {
				t.Errorf("%s RUR %.1f%% below the paper's >45%% PIM band", u.Platform, u.RURPct)
			}
		case "GPU":
			if u.RURPct > 35 {
				t.Errorf("GPU RUR %.1f%% too high", u.RURPct)
			}
		}
	}
}

func TestPdTradeoffShape(t *testing.T) {
	for _, k := range []int{16, 32} {
		pts := PdTradeoff(counts(k), []int{1, 2, 4, 8})
		for i := 1; i < len(pts); i++ {
			if pts[i].DelayS >= pts[i-1].DelayS {
				t.Errorf("k=%d: delay not decreasing at Pd=%d", k, pts[i].Pd)
			}
			if pts[i].PowerW <= pts[i-1].PowerW {
				t.Errorf("k=%d: power not increasing at Pd=%d", k, pts[i].Pd)
			}
		}
		// Paper: "we determine the optimum performance ... where Pd ≈ 2".
		if opt := OptimalPd(pts); opt != 2 {
			t.Errorf("k=%d: optimum Pd = %d, paper finds ≈2", k, opt)
		}
	}
}

func TestAreaOverheadMatchesPaper(t *testing.T) {
	rep := DefaultAreaModel().Overhead(platforms.PIMGeometry())
	// Paper: "51 DRAM rows (51×256 transistors) per sub-array, at the most
	// ... ∼5% of DRAM chip area".
	if rep.RowEquivalentPerSubarray > 51.5 || rep.RowEquivalentPerSubarray < 49 {
		t.Errorf("row equivalents %.1f, paper bounds at 51", rep.RowEquivalentPerSubarray)
	}
	if rep.OverheadPct < 4.5 || rep.OverheadPct > 5.5 {
		t.Errorf("area overhead %.2f%%, paper says ~5%%", rep.OverheadPct)
	}
	if rep.AddOnTransistorsPerSubarray != 50*256+16 {
		t.Errorf("transistor accounting %d, want 50/SA × 256 BLs + 16 MRD", rep.AddOnTransistorsPerSubarray)
	}
}

func TestStageCostAccessors(t *testing.T) {
	c := costOf(t, "P-A", 16)
	if c.TotalS() != c.HashmapS+c.DeBruijnS+c.TraverseS {
		t.Fatal("TotalS inconsistent")
	}
	if c.EnergyJ() != c.TotalS()*c.PowerW {
		t.Fatal("EnergyJ inconsistent")
	}
	if c.String() == "" {
		t.Fatal("String empty")
	}
}

func TestAssemblyCostPanicsOnBadCounts(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AssemblyCost(platforms.PIMAssembler(), assembly.OpCounts{})
}

func TestTransferNeverExceedsTotal(t *testing.T) {
	for _, k := range genome.PaperChr14().KmerRanges {
		for _, s := range fig9Specs() {
			c := AssemblyCost(s, counts(k))
			if c.TransferS > c.TotalS() {
				t.Errorf("%s k=%d: transfer %.1f exceeds total %.1f",
					s.Name, k, c.TransferS, c.TotalS())
			}
		}
	}
}

func TestDispatchSensitivityOrderingsRobust(t *testing.T) {
	// The qualitative conclusions (P-A beats every baseline; Ambit, D1 and
	// D3 stay slower than P-A) must survive halving or doubling the one
	// calibrated parallelism constant.
	pts := DispatchSensitivity(counts(16), []float64{0.5, 1, 2})
	for _, p := range pts {
		if !p.PAFastest {
			t.Errorf("scale %.1f: P-A no longer fastest: %+v", p.Scale, p)
		}
		if p.SpeedupVsGPU < 2 {
			t.Errorf("scale %.1f: GPU speedup %.1f collapsed", p.Scale, p.SpeedupVsGPU)
		}
	}
	// More dispatch parallelism must not hurt P-A's relative standing.
	if pts[2].SpeedupVsGPU <= pts[0].SpeedupVsGPU {
		t.Error("speedup not increasing with dispatch scale")
	}
}

func TestDispatchSensitivityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DispatchSensitivity(counts(16), []float64{0})
}
