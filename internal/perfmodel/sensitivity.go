package perfmodel

import (
	"fmt"
	"io"

	"pimassembler/internal/assembly"
	"pimassembler/internal/parallel"
	"pimassembler/internal/platforms"
)

// Sensitivity analysis: DESIGN.md §4.3 commits to calibration constants
// being auditable data. This file quantifies how much the reproduction's
// *qualitative* conclusions depend on the one truly free constant —
// DispatchParallel, which sets P-A's absolute pipeline time — by sweeping it
// and checking that every ordering claim survives.

// SensitivityPoint is the headline state at one DispatchParallel scale.
type SensitivityPoint struct {
	Scale          float64 // multiplier on every in-situ platform's DispatchParallel
	SpeedupVsGPU   float64
	SpeedupVsAmbit float64
	SpeedupVsD1    float64
	SpeedupVsD3    float64
	PAFastest      bool // P-A still beats every baseline
}

// DispatchSensitivity sweeps DispatchParallel by the given multipliers at
// one workload and reports the headline ratios. Applying the scale to every
// in-situ platform preserves the paper's identical-configuration fairness
// rule.
func DispatchSensitivity(counts assembly.OpCounts, scales []float64) []SensitivityPoint {
	specs := []platforms.Spec{
		platforms.GPU(), platforms.PIMAssembler(), platforms.Ambit(),
		platforms.DRISA1T1C(), platforms.DRISA3T1C(),
	}
	// Scales are independent analytic evaluations; run them on the fan-out
	// pool with results in scale-indexed slots (deterministic by index).
	return parallel.Map(len(scales), func(i int) SensitivityPoint {
		scale := scales[i]
		if scale <= 0 {
			panic(fmt.Sprintf("perfmodel: non-positive scale %v", scale))
		}
		totals := map[string]float64{}
		for _, s := range specs {
			adjusted := s
			if s.Kind == platforms.KindInSitu {
				adjusted.DispatchParallel = s.DispatchParallel * scale
			}
			totals[s.Name] = AssemblyCost(adjusted, counts).TotalS()
		}
		pa := totals["P-A"]
		p := SensitivityPoint{
			Scale:          scale,
			SpeedupVsGPU:   totals["GPU"] / pa,
			SpeedupVsAmbit: totals["Ambit"] / pa,
			SpeedupVsD1:    totals["D1"] / pa,
			SpeedupVsD3:    totals["D3"] / pa,
		}
		p.PAFastest = p.SpeedupVsGPU > 1 && p.SpeedupVsAmbit > 1 &&
			p.SpeedupVsD1 > 1 && p.SpeedupVsD3 > 1
		return p
	})
}

// RenderSensitivity writes the sweep as text.
func RenderSensitivity(w io.Writer, counts assembly.OpCounts, scales []float64) {
	fmt.Fprintln(w, "Sensitivity — headline speedups vs DispatchParallel scale (calibration audit)")
	fmt.Fprintf(w, "  %-7s %10s %10s %8s %8s %10s\n", "scale", "vs GPU", "vs Ambit", "vs D1", "vs D3", "P-A wins")
	for _, p := range DispatchSensitivity(counts, scales) {
		fmt.Fprintf(w, "  %-7.2f %10.1f %10.1f %8.1f %8.1f %10v\n",
			p.Scale, p.SpeedupVsGPU, p.SpeedupVsAmbit, p.SpeedupVsD1, p.SpeedupVsD3, p.PAFastest)
	}
}
