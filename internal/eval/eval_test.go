package eval

import (
	"bytes"
	"strings"
	"testing"

	"pimassembler/internal/circuit"
)

func TestFig3aWaveforms(t *testing.T) {
	waves := Fig3a()
	if len(waves) != 4 {
		t.Fatalf("expected 4 patterns, got %d", len(waves))
	}
	// Matching inputs charge the cell, differing inputs discharge it.
	for key, want := range map[string]bool{
		"DiDj=00": true, "DiDj=11": true, "DiDj=10": false, "DiDj=01": false,
	} {
		final := circuit.FinalCellVoltage(waves[key])
		if want && final < 0.9*circuit.Vdd {
			t.Errorf("%s: final %.2f, want near Vdd", key, final)
		}
		if !want && final > 0.1*circuit.Vdd {
			t.Errorf("%s: final %.2f, want near GND", key, final)
		}
	}
}

func TestTableIDeterministic(t *testing.T) {
	a := TableI()
	b := TableI()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Table I not reproducible")
		}
	}
}

func TestFig9CoversAllKsAndPlatforms(t *testing.T) {
	fig9 := Fig9()
	if len(fig9) != 4 {
		t.Fatalf("expected 4 k values, got %d", len(fig9))
	}
	for k, costs := range fig9 {
		if len(costs) != 5 {
			t.Fatalf("k=%d: %d platforms, want 5", k, len(costs))
		}
		for _, c := range costs {
			if c.TotalS() <= 0 || c.PowerW <= 0 {
				t.Fatalf("k=%d %s: degenerate cost %+v", k, c.Platform, c)
			}
		}
	}
}

func TestFig10OptimumAtTwo(t *testing.T) {
	for k, pts := range Fig10() {
		if len(pts) != 4 {
			t.Fatalf("k=%d: %d Pd points", k, len(pts))
		}
	}
}

func TestFig11CoversBothKs(t *testing.T) {
	us := Fig11()
	if len(us) != 10 { // 5 platforms × 2 ks
		t.Fatalf("got %d utilization points, want 10", len(us))
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	renderers := map[string]func(w *bytes.Buffer){
		"fig3a":  func(w *bytes.Buffer) { RenderFig3a(w) },
		"fig3b":  func(w *bytes.Buffer) { RenderFig3b(w) },
		"table1": func(w *bytes.Buffer) { RenderTableI(w) },
		"area":   func(w *bytes.Buffer) { RenderArea(w) },
		"fig9":   func(w *bytes.Buffer) { RenderFig9(w) },
		"fig10":  func(w *bytes.Buffer) { RenderFig10(w) },
		"fig11":  func(w *bytes.Buffer) { RenderFig11(w) },
	}
	for name, f := range renderers {
		var buf bytes.Buffer
		f(&buf)
		if buf.Len() < 50 {
			t.Errorf("%s renderer produced %d bytes", name, buf.Len())
		}
	}
}

func TestRenderAllContainsEveryArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness render")
	}
	var buf bytes.Buffer
	RenderAll(&buf)
	out := buf.String()
	for _, marker := range []string{
		"Fig. 3a", "Fig. 3b", "Table I", "Area overhead",
		"Fig. 9a", "Fig. 9b", "Fig. 10", "Fig. 11",
		"Cross-engine comparison", "E17 — shard-count sweep",
	} {
		if !strings.Contains(out, marker) {
			t.Errorf("RenderAll missing %q", marker)
		}
	}
}

func TestHeadlineRatioStringsMentionPaperValues(t *testing.T) {
	for _, line := range ThroughputRatios() {
		if !strings.Contains(line, "paper:") {
			t.Errorf("ratio line lacks paper reference: %q", line)
		}
	}
	for _, line := range AssemblyRatios() {
		if !strings.Contains(line, "paper:") {
			t.Errorf("ratio line lacks paper reference: %q", line)
		}
	}
}

func TestRenderFig2bTruthTable(t *testing.T) {
	var buf bytes.Buffer
	RenderFig2b(&buf)
	out := buf.String()
	for _, want := range []string{"low-Vs=0.30V", "high-Vs=0.90V", "NOR", "NAND", "XOR"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig2b output missing %q", want)
		}
	}
}

func TestFaultStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full fault study")
	}
	corners := FaultStudy()
	if len(corners) != 4 {
		t.Fatalf("got %d corners", len(corners))
	}
	// The safe corner is exact; degradation is monotone in injected flips.
	if corners[0].FlippedBits != 0 || corners[0].Contigs != 1 {
		t.Fatalf("±5%% corner not clean: %+v", corners[0])
	}
	for i := 1; i < len(corners); i++ {
		if corners[i].FlippedBits <= corners[i-1].FlippedBits {
			t.Errorf("flips not increasing at corner %d", i)
		}
	}
	// Fragmentation grows once errors appear (unless the run overflowed).
	for _, c := range corners[1:] {
		if !c.Failed && c.Contigs <= corners[0].Contigs {
			t.Errorf("±%.0f%%: no fragmentation despite %d flips", c.Variation*100, c.FlippedBits)
		}
	}
}

func TestWriteCSVAllExperiments(t *testing.T) {
	for _, name := range CSVExperiments() {
		var buf bytes.Buffer
		if err := WriteCSV(name, &buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
		if len(lines) < 2 {
			t.Errorf("%s: CSV has %d lines", name, len(lines))
		}
		// Every row has the header's column count.
		cols := strings.Count(lines[0], ",")
		for i, l := range lines {
			if strings.Count(l, ",") != cols {
				t.Errorf("%s line %d: ragged CSV", name, i)
			}
		}
	}
	if err := WriteCSV("nope", &bytes.Buffer{}); err == nil {
		t.Fatal("unknown CSV experiment accepted")
	}
}

func TestKSweepMonotoneTail(t *testing.T) {
	// Past the keyspace crossover (k >= 16), the hashmap speedup must grow
	// monotonically with k — the Fig. 9 trend generalised.
	prev := 0.0
	for _, k := range KSweepKs() {
		if k < 16 {
			continue
		}
		gpu, pa := KSweepPoint(k)
		s := gpu.HashmapS / pa.HashmapS
		if s <= prev {
			t.Fatalf("hashmap speedup not increasing at k=%d (%.2f <= %.2f)", k, s, prev)
		}
		prev = s
	}
}

func TestRenderSensitivityOutput(t *testing.T) {
	var buf bytes.Buffer
	RenderSensitivity(&buf)
	out := buf.String()
	if !strings.Contains(out, "P-A wins") || !strings.Contains(out, "true") {
		t.Fatalf("sensitivity output missing verdicts:\n%s", out)
	}
	if strings.Contains(out, "false") {
		t.Fatal("an ordering flipped within the audited calibration range")
	}
}
