package eval

import (
	"bytes"
	"strings"
	"testing"

	"pimassembler/internal/engine"
	"pimassembler/internal/parallel"
	"pimassembler/internal/perfmodel"
	"pimassembler/internal/platforms"
)

// TestCrossEngineRows runs (also under -short, so the race gate covers the
// concurrent fan-out): every registered engine must complete the shared
// workload, reproduce the software reference's contigs byte-for-byte, and
// report its family's native cost figures.
func TestCrossEngineRows(t *testing.T) {
	rows := CrossEngine()
	if len(rows) != len(engine.Names()) {
		t.Fatalf("got %d rows for %d registered engines", len(rows), len(engine.Names()))
	}
	for i, name := range engine.Names() {
		if rows[i].Name != name {
			t.Fatalf("row %d is %q, want registry order %q", i, rows[i].Name, name)
		}
	}
	for _, r := range rows {
		if r.Err != "" {
			t.Errorf("engine %s failed: %s", r.Name, r.Err)
			continue
		}
		if r.Contigs == 0 {
			t.Errorf("engine %s produced no contigs", r.Name)
		}
		if !r.Identical {
			t.Errorf("engine %s contigs differ from the software reference", r.Name)
		}
		switch r.Family {
		case "functional":
			if r.Commands <= 0 || r.MakespanNS <= 0 || r.EnergyPJ <= 0 {
				t.Errorf("engine %s missing functional accounting: %+v", r.Name, r)
			}
		case "analytical":
			if r.ModelTotalS <= 0 || r.ModelPowerW <= 0 {
				t.Errorf("engine %s missing modeled cost: %+v", r.Name, r)
			}
		}
	}
}

// TestCrossEngineDeterministicAcrossWorkerCounts pins the experiment to the
// parallel engine's determinism contract.
func TestCrossEngineDeterministicAcrossWorkerCounts(t *testing.T) {
	defer parallel.SetWorkers(0)
	parallel.SetWorkers(1)
	serial := CrossEngine()
	parallel.SetWorkers(0)
	pooled := CrossEngine()
	if len(serial) != len(pooled) {
		t.Fatalf("row count differs: %d vs %d", len(serial), len(pooled))
	}
	for i := range serial {
		if serial[i] != pooled[i] {
			t.Errorf("row %d differs across worker counts:\n  serial: %+v\n  pooled: %+v",
				i, serial[i], pooled[i])
		}
	}
}

// TestRenderEnginesMatchesFig9Figures checks the paper-scale section: the
// analytical engines priced on the chr14 profile must reproduce the same
// perfmodel figures Fig. 9 reports.
func TestRenderEnginesMatchesFig9Figures(t *testing.T) {
	counts := PaperCounts(16)
	costs := engine.EstimateAll(counts)
	specs := platforms.All()
	if len(costs) != len(specs) {
		t.Fatalf("EstimateAll covers %d platforms, want %d", len(costs), len(specs))
	}
	for i, want := range perfmodel.CostsForK(specs, counts) {
		if costs[i] != want {
			t.Errorf("%s: engine estimate %+v != perfmodel %+v", specs[i].Name, costs[i], want)
		}
	}

	var buf bytes.Buffer
	RenderEngines(&buf)
	out := buf.String()
	for _, marker := range []string{"Cross-engine comparison", "drisa-3t1c", "pim-assembler", "chr14"} {
		if !strings.Contains(out, marker) {
			t.Errorf("RenderEngines output missing %q", marker)
		}
	}
}
