package eval

import (
	"fmt"
	"io"

	"pimassembler/internal/assembly"
	"pimassembler/internal/circuit"
	"pimassembler/internal/core"
	"pimassembler/internal/fault"
	"pimassembler/internal/genome"
	"pimassembler/internal/metrics"
	"pimassembler/internal/parallel"
	"pimassembler/internal/perfmodel"
	"pimassembler/internal/stats"
)

// RenderFig2b writes the reconfigurable SA's inverter voltage-transfer
// characteristics and the NOR/NAND/XOR truth table of Fig. 2b.
func RenderFig2b(w io.Writer) {
	fmt.Fprintln(w, "Fig. 2b — VTC of the SA's inverters and the detector truth table")
	low, high, normal := circuit.LowVsInverter(), circuit.HighVsInverter(), circuit.NormalInverter()
	fmt.Fprintf(w, "  switching voltages: low-Vs=%.2fV  normal-Vs=%.2fV  high-Vs=%.2fV (Vdd=%.1fV)\n",
		low.Vs, normal.Vs, high.Vs, circuit.Vdd)
	fmt.Fprintln(w, "\n  Vin,  Vout(high-Vs), Vout(low-Vs), Vout(normal-Vs)")
	for vin := 0.0; vin <= circuit.Vdd+1e-9; vin += circuit.Vdd / 12 {
		fmt.Fprintf(w, "  %.2f %12.3f %12.3f %12.3f\n",
			vin, high.Vout(vin), low.Vout(vin), normal.Vout(vin))
	}
	fmt.Fprintln(w, "\n  Di Dj | out1(NOR) out2(NAND) out3(XOR)")
	sa := circuit.NewSenseAmp()
	for p := 0; p < 4; p++ {
		di, dj := p&1 != 0, p&2 != 0
		n := b2i(di) + b2i(dj)
		nor, nand, xor := sa.DetectorOutputs(circuit.IdealShare(n, 2))
		fmt.Fprintf(w, "   %d  %d  |     %d        %d         %d\n",
			b2i(di), b2i(dj), b2i(nor), b2i(nand), b2i(xor))
	}
}

// FaultCorner is one row of the reliability study.
type FaultCorner struct {
	Variation      float64
	Rates          fault.Rates
	GenomeFraction float64
	Contigs        int
	FlippedBits    int64
	Failed         bool
}

// FaultStudy runs the Table-I-to-application experiment: inject each
// corner's error rates into a functional assembly and score the result.
// The corners run concurrently — the workload is generated once before the
// fan-out, each corner owns its platform, injector, and fixed-seed RNGs,
// and results land in corner-indexed slots, so the study is deterministic
// for any worker count.
func FaultStudy() []FaultCorner {
	rng := stats.NewRNG(Seed)
	ref := genome.GenerateGenome(1200, rng)
	reads := genome.NewReadSampler(ref, 90, 0, rng).Sample(150)
	opts := assembly.Options{K: 15}

	corners := []float64{0.05, 0.10, 0.20, 0.30}
	return parallel.Map(len(corners), func(i int) FaultCorner {
		v := corners[i]
		corner := FaultCorner{Variation: v, Rates: fault.RatesFromVariation(v, 5000, Seed+1)}
		p := core.NewDefaultPlatform()
		injector := fault.NewInjector(corner.Rates, stats.NewRNG(Seed+2))
		injector.AttachPlatform(p)
		res, err := assembly.AssemblePIM(p, reads, opts, 16)
		corner.FlippedBits = injector.FlippedBits
		if err != nil {
			corner.Failed = true
		} else {
			rep := metrics.Evaluate(res.Contigs, ref)
			corner.GenomeFraction = rep.GenomeFraction
			corner.Contigs = rep.Contigs
		}
		return corner
	})
}

// RenderSensitivity writes the calibration-audit sweep: the headline
// speedups with the DispatchParallel constant halved and doubled.
func RenderSensitivity(w io.Writer) {
	perfmodel.RenderSensitivity(w, PaperCounts(16), []float64{0.5, 0.75, 1, 1.5, 2})
}

// RenderFaultStudy writes the reliability table.
func RenderFaultStudy(w io.Writer) {
	fmt.Fprintln(w, "Fault study — Table I error rates injected into the functional pipeline")
	fmt.Fprintf(w, "  %-8s %-20s %s\n", "corner", "rates (2-row/TRA)", "assembly outcome")
	for _, c := range FaultStudy() {
		rates := fmt.Sprintf("%.2g / %.2g", c.Rates.TwoRow, c.Rates.TRA)
		if c.Failed {
			fmt.Fprintf(w, "  ±%-7.0f %-20s table overflow from corrupted matches (%d flips)\n",
				c.Variation*100, rates, c.FlippedBits)
			continue
		}
		fmt.Fprintf(w, "  ±%-7.0f %-20s genome %.1f%%, %d contigs, %d flips\n",
			c.Variation*100, rates, 100*c.GenomeFraction, c.Contigs, c.FlippedBits)
	}
}
