package eval

import (
	"bytes"
	"runtime"
	"testing"

	"pimassembler/internal/parallel"
)

// TestRenderAllDeterministicAcrossWorkers is the golden-output test for the
// concurrent harness: the full evaluation report must be byte-identical
// whether the sections (and every parallel stage beneath them — Monte-Carlo
// chunks, fault corners, sensitivity scales, bulk ops) run on 1 worker or
// many, at elevated GOMAXPROCS.
func TestRenderAllDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation run")
	}
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	defer parallel.SetWorkers(0)

	render := func(workers int) []byte {
		parallel.SetWorkers(workers)
		var buf bytes.Buffer
		RenderAll(&buf)
		return buf.Bytes()
	}
	serial := render(1)
	if len(serial) == 0 {
		t.Fatal("empty report")
	}
	par := render(4)
	if !bytes.Equal(serial, par) {
		i := 0
		for i < len(serial) && i < len(par) && serial[i] == par[i] {
			i++
		}
		lo, hi := i-120, i+120
		if lo < 0 {
			lo = 0
		}
		ctx := func(b []byte) string {
			h := hi
			if h > len(b) {
				h = len(b)
			}
			if lo >= h {
				return ""
			}
			return string(b[lo:h])
		}
		t.Fatalf("report diverges at byte %d:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s",
			i, ctx(serial), ctx(par))
	}
}
