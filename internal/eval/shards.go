package eval

import (
	"context"
	"fmt"
	"io"

	"pimassembler/internal/assembly"
	"pimassembler/internal/debruijn"
	"pimassembler/internal/engine"
	"pimassembler/internal/genome"
	"pimassembler/internal/shard"
)

// ShardRow is one shard-count configuration's outcome in the E17 sweep.
// Only deterministic quantities are recorded (no wall clocks), so the
// experiment renders byte-identically for any worker count.
type ShardRow struct {
	Shards  int
	Engines string
	Err     string

	// Merged assembly outcome.
	Contigs int
	N50     int
	// Identical reports byte-identical merged contigs vs the unsharded
	// software reference — the sweep's headline invariant.
	Identical bool
	// ReadCount and TotalKmers are the summed workload counts, which must
	// be invariant in the shard count.
	ReadCount  int64
	TotalKmers float64

	// Functional shards: commands and energy summed, makespan max.
	Commands   int64
	MakespanNS float64
	EnergyPJ   float64
}

// ShardSweep assembles the shared stream workload (150 reads × 101 bp,
// k = 16) under shard counts {1, 2, 4, 8} on the software engine, plus one
// heterogeneous software+pim split and one all-functional split, and checks
// every merged contig set byte-for-byte against the unsharded reference.
func ShardSweep() []ShardRow {
	reads := streamWorkload()
	opts := engine.Options{Options: assembly.Options{K: 16}, Subarrays: 16}

	sw, err := engine.Lookup("software")
	if err != nil {
		panic(err)
	}
	base, err := sw.Assemble(context.Background(), genome.NewSliceSource(reads), opts)
	if err != nil {
		panic(err)
	}

	configs := []struct {
		shards  int
		engines []string
	}{
		{1, []string{"software"}},
		{2, []string{"software"}},
		{4, []string{"software"}},
		{8, []string{"software"}},
		{4, []string{"software", "pim"}},
		{2, []string{"pim"}},
	}
	rows := make([]ShardRow, len(configs))
	for i, cfg := range configs {
		row := ShardRow{Shards: cfg.shards, Engines: joinNames(cfg.engines)}
		res, err := shard.Assemble(context.Background(), reads, shard.Plan{
			Shards: cfg.shards, Engines: cfg.engines, Opts: opts,
		})
		if err != nil {
			row.Err = err.Error()
			rows[i] = row
			continue
		}
		rep := res.Report
		row.Contigs = len(rep.Contigs)
		row.N50 = debruijn.N50(rep.Contigs)
		row.Identical = contigsEqual(base.Contigs, rep.Contigs)
		if rep.Counts != nil {
			row.ReadCount = rep.Counts.ReadCount
			row.TotalKmers = rep.Counts.TotalKmers
		}
		row.Commands = res.Commands
		row.MakespanNS = res.MakespanNS
		row.EnergyPJ = res.EnergyPJ
		rows[i] = row
	}
	return rows
}

// joinNames formats an engine list for the sweep table.
func joinNames(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += "+"
		}
		out += n
	}
	return out
}

// RenderShards writes E17 — the shard-count sweep: merged contigs checked
// against the unsharded reference at every shard count, summed workload
// counts shown invariant, and the functional shards' parallel makespan.
func RenderShards(w io.Writer) {
	fmt.Fprintln(w, "E17 — shard-count sweep: sharded multi-engine assembly vs the unsharded reference")
	fmt.Fprintln(w, "(150 reads x 101 bp, k=16; merged contigs byte-checked against shards=1 software)")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  %-6s %-14s %7s %6s %10s %7s %12s %12s\n",
		"shards", "engines", "contigs", "N50", "identical", "reads", "kmers", "makespan")
	for _, r := range ShardSweep() {
		if r.Err != "" {
			fmt.Fprintf(w, "  %-6d %-14s ERROR %s\n", r.Shards, r.Engines, r.Err)
			continue
		}
		makespan := "-"
		if r.Commands > 0 {
			makespan = fmt.Sprintf("%.1f µs", r.MakespanNS/1e3)
		}
		fmt.Fprintf(w, "  %-6d %-14s %7d %6d %10v %7d %12.0f %12s\n",
			r.Shards, r.Engines, r.Contigs, r.N50, r.Identical, r.ReadCount, r.TotalKmers, makespan)
	}
	fmt.Fprintln(w, "\n  invariants: identical=true on every row; reads and kmers constant across rows")
	fmt.Fprintln(w, "  (merge algebra: shard contigs spell exactly the shard's k-mer set, so the")
	fmt.Fprintln(w, "  merged de Bruijn graph is the union graph — see DESIGN.md §12)")
}
