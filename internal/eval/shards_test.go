package eval

import (
	"bytes"
	"strings"
	"testing"
)

// TestShardSweepInvariants pins E17's headline claims: every configuration
// merges to contigs identical to the unsharded reference, and the summed
// workload counts do not depend on the shard count or engine mix.
func TestShardSweepInvariants(t *testing.T) {
	rows := ShardSweep()
	if len(rows) != 6 {
		t.Fatalf("got %d sweep rows, want 6", len(rows))
	}
	for _, r := range rows {
		if r.Err != "" {
			t.Fatalf("shards=%d engines=%s: %s", r.Shards, r.Engines, r.Err)
		}
		if !r.Identical {
			t.Errorf("shards=%d engines=%s: merged contigs differ from the unsharded reference", r.Shards, r.Engines)
		}
		if r.ReadCount != rows[0].ReadCount {
			t.Errorf("shards=%d: ReadCount %d, want %d", r.Shards, r.ReadCount, rows[0].ReadCount)
		}
		if r.TotalKmers != rows[0].TotalKmers {
			t.Errorf("shards=%d: TotalKmers %.0f, want %.0f", r.Shards, r.TotalKmers, rows[0].TotalKmers)
		}
	}
	// The functional configurations carry command-stream aggregates; the
	// software-only ones must not.
	for _, r := range rows {
		functional := strings.Contains(r.Engines, "pim")
		if functional && (r.Commands <= 0 || r.MakespanNS <= 0 || r.EnergyPJ <= 0) {
			t.Errorf("shards=%d engines=%s: functional aggregates missing", r.Shards, r.Engines)
		}
		if !functional && r.Commands != 0 {
			t.Errorf("shards=%d engines=%s: unexpected functional commands %d", r.Shards, r.Engines, r.Commands)
		}
	}
}

func TestRenderShardsMarkers(t *testing.T) {
	var buf bytes.Buffer
	RenderShards(&buf)
	out := buf.String()
	for _, marker := range []string{"E17", "shard-count sweep", "software+pim", "identical", "DESIGN.md §12"} {
		if !strings.Contains(out, marker) {
			t.Errorf("RenderShards output missing %q", marker)
		}
	}
	if strings.Contains(out, "false") {
		t.Error("RenderShards reports a non-identical merge")
	}
	if strings.Contains(out, "ERROR") {
		t.Error("RenderShards reports a failed configuration")
	}
}
