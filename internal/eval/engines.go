package eval

import (
	"context"
	"fmt"
	"io"

	"pimassembler/internal/assembly"
	"pimassembler/internal/debruijn"
	"pimassembler/internal/engine"
	"pimassembler/internal/genome"
	"pimassembler/internal/jobqueue"
	"pimassembler/internal/parallel"
)

// EngineRow is one engine's outcome in the cross-engine comparison: the
// same workload run on every registered execution path, apples-to-apples.
// Only deterministic quantities are recorded (no wall clocks), so the
// experiment renders byte-identically for any worker count.
type EngineRow struct {
	Name   string
	Family string
	Err    string

	// Assembly outcome (all families that execute the workload).
	Contigs int
	N50     int
	// Identical reports byte-identical contigs vs the software reference.
	Identical bool

	// Functional family: command-stream accounting.
	Commands   int64
	MakespanNS float64
	EnergyPJ   float64

	// Analytical family: modeled cost of this workload.
	ModelTotalS float64
	ModelPowerW float64
}

// CrossEngine runs every registered engine on the shared stream workload
// (150 reads × 101 bp, k = 16) and compares each contig set byte-for-byte
// against the software reference. The experiment is a thin client of the
// assembly job queue: one job per engine, dispatched onto the bounded
// worker pool, results in registry-slot order — so the result is
// bit-identical for any worker count.
func CrossEngine() []EngineRow {
	reads := streamWorkload()
	opts := engine.Options{Options: assembly.Options{K: 16}, Subarrays: 16}

	names := engine.Names()
	specs := make([]jobqueue.Spec, len(names))
	for i, name := range names {
		// Each spec gets its own source: sources carry a cursor, so jobs
		// must never share one even over the same underlying slice.
		specs[i] = jobqueue.Spec{Name: name, Engine: name, Source: genome.NewSliceSource(reads), Opts: opts}
	}
	q := jobqueue.New(engine.Default(), jobqueue.WithWorkers(parallel.Workers()))
	results := q.Run(context.Background(), specs)

	// The software reference is always the registry's first engine; its
	// contigs are the baseline of the Identical column.
	var baseline []debruijn.Contig
	for _, r := range results {
		if r.Spec.Engine == "software" && r.Report != nil {
			baseline = r.Report.Contigs
			break
		}
	}

	rows := make([]EngineRow, len(results))
	for i, r := range results {
		row := EngineRow{Name: r.Spec.Name}
		if r.Err != nil {
			row.Err = r.Err.Error()
			rows[i] = row
			continue
		}
		rep := r.Report
		row.Family = rep.Family.String()
		row.Contigs = len(rep.Contigs)
		row.N50 = debruijn.N50(rep.Contigs)
		row.Identical = contigsEqual(baseline, rep.Contigs)
		if rep.Functional != nil {
			row.Commands = rep.Functional.Commands
			row.MakespanNS = rep.Functional.Makespan.MakespanNS
			row.EnergyPJ = rep.Functional.EnergyPJ
		}
		if rep.Cost != nil {
			row.ModelTotalS = rep.Cost.TotalS()
			row.ModelPowerW = rep.Cost.PowerW
		}
		rows[i] = row
	}
	return rows
}

// contigsEqual reports byte-identical contig sets.
func contigsEqual(a, b []debruijn.Contig) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Seq.Equal(b[i].Seq) {
			return false
		}
	}
	return true
}

// RenderEngines writes the cross-engine comparison: every registered
// engine on one workload, the contig cross-check, and each family's native
// cost figures, followed by the analytical engines priced on the full-scale
// chr14 profile (which must reproduce the Fig. 9 perfmodel numbers).
func RenderEngines(w io.Writer) {
	fmt.Fprintln(w, "Cross-engine comparison — one workload, every registered engine")
	fmt.Fprintln(w, "(150 reads x 101 bp, k=16; contigs cross-checked against the software reference)")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  %-14s %-10s %7s %6s %10s %12s %12s %12s\n",
		"engine", "family", "contigs", "N50", "identical", "cmds", "makespan", "model-total")
	for _, r := range CrossEngine() {
		if r.Err != "" {
			fmt.Fprintf(w, "  %-14s ERROR %s\n", r.Name, r.Err)
			continue
		}
		cmds, makespan, model := "-", "-", "-"
		if r.Commands > 0 {
			cmds = fmt.Sprintf("%d", r.Commands)
			makespan = fmt.Sprintf("%.1f µs", r.MakespanNS/1e3)
		}
		if r.ModelTotalS > 0 {
			model = fmt.Sprintf("%.3g s", r.ModelTotalS)
		}
		fmt.Fprintf(w, "  %-14s %-10s %7d %6d %10v %12s %12s %12s\n",
			r.Name, r.Family, r.Contigs, r.N50, r.Identical, cmds, makespan, model)
	}

	fmt.Fprintln(w, "\n  analytical engines on the full-scale chr14 profile (k=16):")
	counts := PaperCounts(16)
	for _, c := range engine.EstimateAll(counts) {
		fmt.Fprintf(w, "    %s\n", c)
	}
}
