package eval

import (
	"bytes"
	"context"
	"fmt"
	"io"

	"pimassembler/internal/assembly"
	"pimassembler/internal/debruijn"
	"pimassembler/internal/engine"
	"pimassembler/internal/genome"
	"pimassembler/internal/shard"
)

// SpillRow is one shard-count configuration's outcome in the E19 sweep.
// Only deterministic quantities are recorded: spill bytes and eviction
// counts depend on nothing but the input stream and the resident cap.
type SpillRow struct {
	Shards int
	Err    string

	// Merged assembly outcome.
	Contigs int
	N50     int
	// Identical reports byte-identical merged contigs vs the unsharded
	// software reference; MatchesInMemory vs the slice-sharded run at the
	// same shard count — together the out-of-core headline invariant.
	Identical       bool
	MatchesInMemory bool
	// Summed workload counts, invariant in the partition shape.
	ReadCount  int64
	TotalKmers float64

	// Out-of-core accounting.
	SpillBytes int64
	Evictions  int64
}

// spillResident is the E19 resident-read cap: 150 reads against a 32-read
// budget, so both the partitioner and the admission gate must spill and
// serialize to finish.
const spillResident = 32

// SpillSweep assembles the shared stream workload (150 reads × 101 bp,
// k = 16) out-of-core under shard counts {1, 2, 4, 8}: the reads are
// serialized once, streamed into per-shard spill files under a 32-read
// resident cap, assembled from disk, and the merged contigs are checked
// byte-for-byte against both the unsharded software reference and the
// in-memory sharded run at the same shard count.
func SpillSweep() []SpillRow {
	reads := streamWorkload()
	opts := engine.Options{Options: assembly.Options{K: 16}}

	var fasta bytes.Buffer
	rw := genome.NewRecordWriter(&fasta)
	for i, r := range reads {
		if err := rw.Write(genome.Record{Name: fmt.Sprintf("r%d", i), Seq: r}); err != nil {
			panic(err)
		}
	}
	if err := rw.Flush(); err != nil {
		panic(err)
	}

	sw, err := engine.Lookup("software")
	if err != nil {
		panic(err)
	}
	base, err := sw.Assemble(context.Background(), genome.NewSliceSource(reads), opts)
	if err != nil {
		panic(err)
	}

	shardCounts := []int{1, 2, 4, 8}
	rows := make([]SpillRow, len(shardCounts))
	for i, n := range shardCounts {
		row := SpillRow{Shards: n}
		inMem, err := shard.Assemble(context.Background(), reads, shard.Plan{Shards: n, Opts: opts})
		if err != nil {
			row.Err = err.Error()
			rows[i] = row
			continue
		}
		sp, err := shard.Partition(context.Background(), bytes.NewReader(fasta.Bytes()), genome.FormatFASTA,
			shard.SpillConfig{Shards: n, MaxResidentReads: spillResident})
		if err != nil {
			row.Err = err.Error()
			rows[i] = row
			continue
		}
		res, err := shard.AssembleSpill(context.Background(), sp, shard.Plan{
			Opts: opts, MaxResidentReads: spillResident,
		})
		row.SpillBytes = sp.Bytes()
		row.Evictions = sp.Evictions()
		sp.Close()
		if err != nil {
			row.Err = err.Error()
			rows[i] = row
			continue
		}
		rep := res.Report
		row.Contigs = len(rep.Contigs)
		row.N50 = debruijn.N50(rep.Contigs)
		row.Identical = contigsEqual(base.Contigs, rep.Contigs)
		row.MatchesInMemory = contigsEqual(inMem.Report.Contigs, rep.Contigs)
		if rep.Counts != nil {
			row.ReadCount = rep.Counts.ReadCount
			row.TotalKmers = rep.Counts.TotalKmers
		}
		rows[i] = row
	}
	return rows
}

// RenderSpill writes E19 — the out-of-core spill sweep: the stream workload
// spilled to per-shard files under a resident cap ~5x smaller than the read
// count, assembled from disk, and byte-checked against both the unsharded
// reference and the in-memory sharded run at every shard count.
func RenderSpill(w io.Writer) {
	fmt.Fprintln(w, "E19 — out-of-core spill sweep: disk-backed sharded assembly vs the in-memory paths")
	fmt.Fprintf(w, "(150 reads x 101 bp, k=16, resident cap %d reads; round-robin spill files,\n", spillResident)
	fmt.Fprintln(w, "merged contigs byte-checked against the unsharded software run and the")
	fmt.Fprintln(w, "slice-sharded run at the same shard count)")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  %-6s %7s %6s %10s %10s %7s %12s %11s %10s\n",
		"shards", "contigs", "N50", "identical", "in-memory", "reads", "kmers", "spill-bytes", "evictions")
	for _, r := range SpillSweep() {
		if r.Err != "" {
			fmt.Fprintf(w, "  %-6d ERROR %s\n", r.Shards, r.Err)
			continue
		}
		fmt.Fprintf(w, "  %-6d %7d %6d %10v %10v %7d %12.0f %11d %10d\n",
			r.Shards, r.Contigs, r.N50, r.Identical, r.MatchesInMemory,
			r.ReadCount, r.TotalKmers, r.SpillBytes, r.Evictions)
	}
	fmt.Fprintln(w, "\n  invariants: identical=true and in-memory=true on every row; reads, kmers,")
	fmt.Fprintln(w, "  and spill-bytes constant across rows; evictions > 0 (the cap forced spills)")
	fmt.Fprintln(w, "  (round-robin spill vs contiguous Split is partition-shape-invariant under")
	fmt.Fprintln(w, "  the union-graph merge — see DESIGN.md §15)")
}
