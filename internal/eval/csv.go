package eval

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"pimassembler/internal/genome"
	"pimassembler/internal/perfmodel"
	"pimassembler/internal/platforms"
)

// CSV exporters for the plottable artefacts: each writes one tidy table
// (header + rows) ready for any plotting tool.

// CSVExperiments lists the experiments with CSV exporters.
func CSVExperiments() []string {
	return []string{"fig3b", "table1", "fig9", "fig10", "fig11", "ksweep"}
}

// WriteCSV exports the named experiment. Unknown names return an error.
func WriteCSV(name string, w io.Writer) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	switch name {
	case "fig3b":
		return csvFig3b(cw)
	case "table1":
		return csvTableI(cw)
	case "fig9":
		return csvFig9(cw)
	case "fig10":
		return csvFig10(cw)
	case "fig11":
		return csvFig11(cw)
	case "ksweep":
		return csvKSweep(cw)
	default:
		return fmt.Errorf("eval: no CSV exporter for %q (have %v)", name, CSVExperiments())
	}
}

func csvFig3b(w *csv.Writer) error {
	if err := w.Write([]string{"platform", "op", "bits", "throughput_gbit_s"}); err != nil {
		return err
	}
	for _, r := range platforms.Fig3b() {
		for i, n := range platforms.Fig3bSizes() {
			rec := []string{
				r.Platform, r.Op.String(),
				strconv.FormatFloat(n, 'f', 0, 64),
				strconv.FormatFloat(r.BitsPerS[i]/1e9, 'f', 2, 64),
			}
			if err := w.Write(rec); err != nil {
				return err
			}
		}
	}
	return nil
}

func csvTableI(w *csv.Writer) error {
	if err := w.Write([]string{"variation_pct", "tra_err_pct", "two_row_err_pct"}); err != nil {
		return err
	}
	for _, r := range TableI() {
		rec := []string{
			strconv.FormatFloat(r.Variation*100, 'f', 0, 64),
			strconv.FormatFloat(r.TRAErrPct, 'f', 2, 64),
			strconv.FormatFloat(r.TwoRowErrPct, 'f', 2, 64),
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	return nil
}

func csvFig9(w *csv.Writer) error {
	if err := w.Write([]string{"k", "platform", "hashmap_s", "debruijn_s", "traverse_s", "total_s", "power_w"}); err != nil {
		return err
	}
	fig9 := Fig9()
	for _, k := range genome.PaperChr14().KmerRanges {
		for _, c := range fig9[k] {
			rec := []string{
				strconv.Itoa(k), c.Platform,
				fmtF(c.HashmapS), fmtF(c.DeBruijnS), fmtF(c.TraverseS),
				fmtF(c.TotalS()), fmtF(c.PowerW),
			}
			if err := w.Write(rec); err != nil {
				return err
			}
		}
	}
	return nil
}

func csvFig10(w *csv.Writer) error {
	if err := w.Write([]string{"k", "pd", "delay_s", "power_w", "energy_j"}); err != nil {
		return err
	}
	for _, k := range []int{16, 32} {
		for _, p := range perfmodel.PdTradeoff(PaperCounts(k), Fig10Pds()) {
			rec := []string{
				strconv.Itoa(k), strconv.Itoa(p.Pd),
				fmtF(p.DelayS), fmtF(p.PowerW), fmtF(p.EnergyJ()),
			}
			if err := w.Write(rec); err != nil {
				return err
			}
		}
	}
	return nil
}

func csvFig11(w *csv.Writer) error {
	if err := w.Write([]string{"k", "platform", "mbr_pct", "rur_pct"}); err != nil {
		return err
	}
	for _, u := range Fig11() {
		rec := []string{
			strconv.Itoa(u.K), u.Platform, fmtF(u.MBRPct), fmtF(u.RURPct),
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	return nil
}

// csvKSweep is the extension experiment: the GPU-vs-P-A trend over a denser
// k grid than the paper's four points, showing where the speedup comes from
// (GPU hash-probe traffic grows with k while P-A's row-parallel compare
// does not).
func csvKSweep(w *csv.Writer) error {
	if err := w.Write([]string{"k", "gpu_total_s", "pa_total_s", "speedup", "hashmap_speedup"}); err != nil {
		return err
	}
	for _, k := range KSweepKs() {
		gpu, pa := KSweepPoint(k)
		rec := []string{
			strconv.Itoa(k),
			fmtF(gpu.TotalS()), fmtF(pa.TotalS()),
			fmtF(gpu.TotalS() / pa.TotalS()),
			fmtF(gpu.HashmapS / pa.HashmapS),
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	return nil
}

// KSweepKs returns the extension sweep's k grid.
func KSweepKs() []int { return []int{8, 10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30, 32} }

// KSweepPoint prices the chr14 workload at k on GPU and P-A.
func KSweepPoint(k int) (gpu, pa perfmodel.StageCost) {
	counts := PaperCounts(k)
	return perfmodel.AssemblyCost(platforms.GPU(), counts),
		perfmodel.AssemblyCost(platforms.PIMAssembler(), counts)
}

// RenderKSweep writes the extension sweep as text.
func RenderKSweep(w io.Writer) {
	fmt.Fprintln(w, "Extension — GPU vs P-A over a dense k grid (paper samples k=16,22,26,32)")
	fmt.Fprintf(w, "  %-4s %10s %10s %9s %17s\n", "k", "GPU (s)", "P-A (s)", "speedup", "hashmap speedup")
	for _, k := range KSweepKs() {
		gpu, pa := KSweepPoint(k)
		fmt.Fprintf(w, "  %-4d %10.1f %10.1f %9.1f %17.1f\n",
			k, gpu.TotalS(), pa.TotalS(), gpu.TotalS()/pa.TotalS(), gpu.HashmapS/pa.HashmapS)
	}
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
