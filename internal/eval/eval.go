// Package eval is the experiment harness: one runner per table/figure of
// the paper's evaluation, each producing both structured data and the
// rendered rows/series the paper reports. The cmd/pimassembler binary and
// the benchmark suite are thin wrappers over this package.
package eval

import (
	"bytes"
	"fmt"
	"io"
	"strings"

	"pimassembler/internal/assembly"
	"pimassembler/internal/circuit"
	"pimassembler/internal/genome"
	"pimassembler/internal/parallel"
	"pimassembler/internal/perfmodel"
	"pimassembler/internal/platforms"
)

// Seed is the deterministic seed every experiment uses.
const Seed = 0xD0C2020

// Fig9Platforms lists the five genome-pipeline platforms in the paper's
// bar-group order ("GPU, PIM-Assembler, Ambit, DRISA-3T1C, DRISA-1T1C").
func Fig9Platforms() []platforms.Spec {
	return []platforms.Spec{
		platforms.GPU(),
		platforms.PIMAssembler(),
		platforms.Ambit(),
		platforms.DRISA3T1C(),
		platforms.DRISA1T1C(),
	}
}

// PaperCounts returns the full-scale operation profile at k.
func PaperCounts(k int) assembly.OpCounts {
	return assembly.PaperOpCounts(genome.PaperChr14(), k)
}

// --- E1: Fig. 3a — transient simulation of in-memory XNOR2 ---

// Fig3a runs the four-input-pattern transient and returns the waveforms.
func Fig3a() map[string][]circuit.Sample {
	cfg := circuit.DefaultTransientConfig()
	out := make(map[string][]circuit.Sample, 4)
	for p := 0; p < 4; p++ {
		di, dj := p&1 != 0, p&2 != 0
		key := fmt.Sprintf("DiDj=%d%d", b2i(di), b2i(dj))
		out[key] = circuit.SimulateXNOR2(cfg, di, dj)
	}
	return out
}

// RenderFig3a writes a summary plus a CSV-style waveform dump (decimated).
func RenderFig3a(w io.Writer) {
	fmt.Fprintln(w, "Fig. 3a — transient simulation of in-memory XNOR2 (two-row activation)")
	waves := Fig3a()
	for _, key := range []string{"DiDj=00", "DiDj=10", "DiDj=01", "DiDj=11"} {
		s := waves[key]
		final := circuit.FinalCellVoltage(s)
		verdict := "charged to Vdd (XNOR2=1)"
		if final < circuit.Vdd/2 {
			verdict = "discharged to GND (XNOR2=0)"
		}
		fmt.Fprintf(w, "  %s: final cell %.3f V — %s\n", key, final, verdict)
	}
	fmt.Fprintln(w, "\n  t_ns,VBL_00,VCell_00,VBL_10,VCell_10,VBL_01,VCell_01,VBL_11,VCell_11")
	ref := waves["DiDj=00"]
	step := len(ref) / 40
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(ref); i += step {
		fmt.Fprintf(w, "  %.2f", ref[i].TimeNS)
		for _, key := range []string{"DiDj=00", "DiDj=10", "DiDj=01", "DiDj=11"} {
			s := waves[key][i]
			fmt.Fprintf(w, ",%.3f,%.3f", s.VBL, s.VCell)
		}
		fmt.Fprintln(w)
	}
}

// --- E2: Fig. 3b — raw throughput ---

// RenderFig3b writes the throughput matrix for both ops, all platforms, all
// three vector lengths, plus the headline ratios.
func RenderFig3b(w io.Writer) {
	fmt.Fprintln(w, "Fig. 3b — bulk bit-wise throughput (Gbit/s), 8 banks of 1024x256 sub-arrays")
	fmt.Fprintf(w, "  %-5s %-4s %12s %12s %12s\n", "plat", "op", "2^27 bits", "2^28 bits", "2^29 bits")
	rows := platforms.Fig3b()
	for _, r := range rows {
		fmt.Fprintf(w, "  %-5s %-4s %12.1f %12.1f %12.1f\n",
			r.Platform, r.Op, r.BitsPerS[0]/1e9, r.BitsPerS[1]/1e9, r.BitsPerS[2]/1e9)
	}
	fmt.Fprintln(w)
	for _, line := range ThroughputRatios() {
		fmt.Fprintln(w, "  "+line)
	}
}

// ThroughputRatios derives the paper's §I/§II-B headline numbers from the
// Fig. 3b data: P-A vs CPU (both ops averaged) and vs each PIM baseline.
func ThroughputRatios() []string {
	mean := func(name string, op platforms.BulkOp) float64 {
		for _, r := range platforms.Fig3b() {
			if r.Platform == name && r.Op == op {
				return r.MeanThroughput()
			}
		}
		panic("eval: platform missing from Fig3b")
	}
	paX := mean("P-A", platforms.OpXNOR)
	paA := mean("P-A", platforms.OpAdd)
	cpuRatio := (paX/mean("CPU", platforms.OpXNOR) + paA/mean("CPU", platforms.OpAdd)) / 2
	out := []string{
		fmt.Sprintf("P-A vs CPU (both ops avg): %.1fx (paper: 8.4x)", cpuRatio),
	}
	for _, base := range []struct {
		name  string
		paper float64
	}{{"Ambit", 2.3}, {"D1", 1.9}, {"D3", 3.7}} {
		r := paX / mean(base.name, platforms.OpXNOR)
		out = append(out, fmt.Sprintf("P-A vs %s (XNOR): %.1fx (paper: %.1fx)", base.name, r, base.paper))
	}
	return out
}

// --- E3: Table I — process variation ---

// TableI runs the Monte-Carlo sweep with the paper's 10 000 trials.
func TableI() []circuit.VariationResult {
	return circuit.DefaultVariationModel().TableI(Seed)
}

// RenderTableI writes the table next to the paper's values.
func RenderTableI(w io.Writer) {
	fmt.Fprintln(w, "Table I — process-variation test error (%), 10 000 Monte-Carlo trials")
	fmt.Fprintf(w, "  %-10s %12s %12s %14s %14s\n", "variation", "TRA", "2-row act.", "paper TRA", "paper 2-row")
	paperTRA := []float64{0.00, 0.18, 5.5, 17.1, 28.4}
	paperTwo := []float64{0.00, 0.00, 1.6, 11.2, 18.1}
	for i, r := range TableI() {
		fmt.Fprintf(w, "  ±%-9.0f %12.2f %12.2f %14.2f %14.2f\n",
			r.Variation*100, r.TRAErrPct, r.TwoRowErrPct, paperTRA[i], paperTwo[i])
	}
}

// --- E4: area overhead ---

// RenderArea writes the §II-B area accounting.
func RenderArea(w io.Writer) {
	rep := perfmodel.DefaultAreaModel().Overhead(platforms.PIMGeometry())
	fmt.Fprintln(w, "Area overhead (paper §II-B: ~5% of DRAM chip area)")
	fmt.Fprintf(w, "  %s\n", rep)
}

// --- E5/E6: Fig. 9 — execution time and power ---

// Fig9 prices the chr14 workload on the five platforms for every k.
func Fig9() map[int][]perfmodel.StageCost {
	out := make(map[int][]perfmodel.StageCost)
	for _, k := range genome.PaperChr14().KmerRanges {
		out[k] = perfmodel.CostsForK(Fig9Platforms(), PaperCounts(k))
	}
	return out
}

// RenderFig9 writes the stacked execution-time breakdown (Fig. 9a) and the
// power bars (Fig. 9b) plus the headline ratios.
func RenderFig9(w io.Writer) {
	fig9 := Fig9()
	fmt.Fprintln(w, "Fig. 9a — execution time breakdown (s): hashmap / deBruijn / traverse")
	for _, k := range genome.PaperChr14().KmerRanges {
		fmt.Fprintf(w, "  k=%d\n", k)
		for _, c := range fig9[k] {
			fmt.Fprintf(w, "    %-6s %7.1f / %6.1f / %6.1f  = %7.1f s\n",
				c.Platform, c.HashmapS, c.DeBruijnS, c.TraverseS, c.TotalS())
		}
	}
	fmt.Fprintln(w, "\nFig. 9b — power (W)")
	for _, k := range genome.PaperChr14().KmerRanges {
		fmt.Fprintf(w, "  k=%d:", k)
		for _, c := range fig9[k] {
			fmt.Fprintf(w, "  %s=%.1f", c.Platform, c.PowerW)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
	for _, line := range AssemblyRatios() {
		fmt.Fprintln(w, "  "+line)
	}
}

// AssemblyRatios derives the paper's genome-pipeline headline numbers.
func AssemblyRatios() []string {
	fig9 := Fig9()
	ks := genome.PaperChr14().KmerRanges
	avgTotal := map[string]float64{}
	avgPower := map[string]float64{}
	var hm16GPU, hm16PA, hm32GPU, hm32PA float64
	for _, k := range ks {
		for _, c := range fig9[k] {
			avgTotal[c.Platform] += c.TotalS() / float64(len(ks))
			avgPower[c.Platform] += c.PowerW / float64(len(ks))
			if k == 16 && c.Platform == "GPU" {
				hm16GPU = c.HashmapS
			}
			if k == 16 && c.Platform == "P-A" {
				hm16PA = c.HashmapS
			}
			if k == 32 && c.Platform == "GPU" {
				hm32GPU = c.HashmapS
			}
			if k == 32 && c.Platform == "P-A" {
				hm32PA = c.HashmapS
			}
		}
	}
	pa := avgTotal["P-A"]
	bestPIMPower := avgPower["Ambit"]
	for _, n := range []string{"D3", "D1"} {
		if avgPower[n] < bestPIMPower {
			bestPIMPower = avgPower[n]
		}
	}
	return []string{
		fmt.Sprintf("hashmap speedup vs GPU @k=16: %.1fx (paper: ~5.2x)", hm16GPU/hm16PA),
		fmt.Sprintf("hashmap speedup vs GPU @k=32: %.1fx (paper: ~9.8x)", hm32GPU/hm32PA),
		fmt.Sprintf("execution time vs GPU:   %.1fx (paper: ~5x)", avgTotal["GPU"]/pa),
		fmt.Sprintf("execution time vs Ambit: %.1fx (paper: 2.9x)", avgTotal["Ambit"]/pa),
		fmt.Sprintf("execution time vs D3:    %.1fx (paper: 2.5x)", avgTotal["D3"]/pa),
		fmt.Sprintf("execution time vs D1:    %.1fx (paper: 2.8x)", avgTotal["D1"]/pa),
		fmt.Sprintf("P-A average power: %.1f W (paper: 38.4 W)", avgPower["P-A"]),
		fmt.Sprintf("power vs GPU: %.1fx lower (paper: ~7.5x)", avgPower["GPU"]/avgPower["P-A"]),
		fmt.Sprintf("power vs best PIM: %.1fx lower (paper: ~2.8x)", bestPIMPower/avgPower["P-A"]),
	}
}

// --- E7: Fig. 10 — parallelism-degree trade-off ---

// Fig10Pds lists the swept parallelism degrees.
func Fig10Pds() []int { return []int{1, 2, 4, 8} }

// Fig10 evaluates the Pd trade-off for k = 16 and 32.
func Fig10() map[int][]perfmodel.PdPoint {
	out := make(map[int][]perfmodel.PdPoint)
	for _, k := range []int{16, 32} {
		out[k] = perfmodel.PdTradeoff(PaperCounts(k), Fig10Pds())
	}
	return out
}

// RenderFig10 writes the power/delay series and the optimum.
func RenderFig10(w io.Writer) {
	fmt.Fprintln(w, "Fig. 10 — power/delay vs parallelism degree (Pd)")
	for _, k := range []int{16, 32} {
		pts := perfmodel.PdTradeoff(PaperCounts(k), Fig10Pds())
		fmt.Fprintf(w, "  k=%d\n", k)
		for _, p := range pts {
			fmt.Fprintf(w, "    Pd=%d: delay=%6.1f s  power=%6.1f W  energy=%7.0f J\n",
				p.Pd, p.DelayS, p.PowerW, p.EnergyJ())
		}
		fmt.Fprintf(w, "    optimum (min energy): Pd=%d (paper: Pd ≈ 2)\n", perfmodel.OptimalPd(pts))
	}
}

// --- E8/E9: Fig. 11 — MBR and RUR ---

// Fig11 computes MBR/RUR for the five platforms at k = 16 and 32.
func Fig11() []perfmodel.Utilization {
	return perfmodel.Fig11(Fig9Platforms(), PaperCounts, []int{16, 32})
}

// RenderFig11 writes both panels.
func RenderFig11(w io.Writer) {
	fmt.Fprintln(w, "Fig. 11 — (a) memory bottleneck ratio, (b) resource utilization ratio")
	for _, u := range Fig11() {
		fmt.Fprintf(w, "  %s\n", u)
	}
}

// RenderAll runs every experiment in DESIGN.md order. The sections execute
// concurrently, each rendering into a private buffer; the buffers are
// flushed to w in the fixed section order, so the combined output is
// byte-identical to the old serial loop for any worker count.
func RenderAll(w io.Writer) {
	sections := []func(io.Writer){
		RenderFig2b, RenderFig3a, RenderFig3b, RenderTableI, RenderArea,
		RenderFig9, RenderFig10, RenderFig11, RenderKSweep,
		RenderSensitivity, RenderFaultStudy, RenderStream, RenderEngines,
		RenderShards, RenderSpill,
	}
	rendered := parallel.Map(len(sections), func(i int) []byte {
		var buf bytes.Buffer
		sections[i](&buf)
		return buf.Bytes()
	})
	for i, b := range rendered {
		if i > 0 {
			fmt.Fprintln(w, strings.Repeat("-", 72))
		}
		w.Write(b)
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
