package eval

import (
	"fmt"
	"io"

	"pimassembler/internal/assembly"
	"pimassembler/internal/core"
	"pimassembler/internal/exec"
	"pimassembler/internal/genome"
	"pimassembler/internal/sched"
	"pimassembler/internal/stats"
)

// StreamReport is the command-stream experiment's structured result: the
// per-stage command histogram, the scheduled makespans, and the energy
// attribution of one functional AssemblePIM run, plus the serial/parallel
// stage-1 comparison.
type StreamReport struct {
	Histogram  exec.Histogram
	StageCosts []exec.StageCost
	Whole      sched.Result
	// WholeSharded schedules the sharded-stage-1 run's stream in its
	// canonical round-robin interleaving: consecutive commands spread over
	// sub-arrays — what the controller can actually overlap — without the
	// raw append order's scheduling dependence, so the makespan reproduces
	// byte-identically across runs and worker counts.
	WholeSharded sched.Result
	PerStage     map[exec.Stage]sched.Result
	// ParallelMatches reports whether the sharded stage 1 reproduced the
	// serial run's per-kind command totals exactly.
	ParallelMatches bool
	Contigs         int
}

// streamWorkload returns the deterministic read set the experiment assembles.
func streamWorkload() []*genome.Sequence {
	rng := stats.NewRNG(Seed + 7)
	return genome.NewReadSampler(genome.GenerateGenome(2_000, rng), 101, 0, rng).Sample(150)
}

// Stream runs the functional pipeline once per stage-1 mode and aggregates
// the recorded command stream.
func Stream() StreamReport {
	reads := streamWorkload()
	opts := assembly.Options{K: 16}

	p := core.NewDefaultPlatform()
	res, err := assembly.AssemblePIM(p, reads, opts, 16)
	if err != nil {
		panic(err)
	}

	opts.ParallelStage1 = true
	pp := core.NewDefaultPlatform()
	if _, err := assembly.AssemblePIM(pp, reads, opts, 16); err != nil {
		panic(err)
	}
	match := true
	serialTotals := p.Stream().Totals()
	for kind, n := range pp.Stream().Totals() {
		if serialTotals[kind] != n {
			match = false
		}
	}

	return StreamReport{
		Histogram:       p.Stream().Histogram(),
		StageCosts:      p.Stream().Attribute(p.Timing(), p.Energy()),
		Whole:           p.ParallelEstimate(),
		WholeSharded:    sched.ScheduleStream(pp.Stream().Canonical(), pp.SchedConfig()),
		PerStage:        p.StageEstimates(),
		ParallelMatches: match && p.Stream().Len() == pp.Stream().Len(),
		Contigs:         len(res.Contigs),
	}
}

// RenderStream writes the command-stream accounting: what each pipeline
// stage issued, what it costs serially and under the controller scheduler,
// and where the energy went.
func RenderStream(w io.Writer) {
	r := Stream()
	fmt.Fprintln(w, "Command stream — per-stage histogram, makespan, and energy attribution")
	fmt.Fprintln(w, "(functional AssemblePIM run, 150 reads x 101 bp, k=16, 16 hash sub-arrays)")
	fmt.Fprintln(w)
	for _, line := range splitLines(r.Histogram.String()) {
		fmt.Fprintln(w, "  "+line)
	}
	fmt.Fprintln(w, "\n  per-stage serial cost and energy (prices the same stream the Meter sums):")
	for _, c := range r.StageCosts {
		fmt.Fprintf(w, "    %s\n", c)
	}
	fmt.Fprintln(w, "\n  controller schedule (shared bus + per-bank activation budget):")
	for _, st := range exec.Stages() {
		res, ok := r.PerStage[st]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "    %-9s makespan %9.1f µs  speedup %5.1fx  peak %3d\n",
			st, res.MakespanNS/1e3, res.Speedup, res.PeakParallel)
	}
	fmt.Fprintf(w, "    %-9s makespan %9.1f µs  speedup %5.1fx  peak %3d\n",
		"whole run", r.Whole.MakespanNS/1e3, r.Whole.Speedup, r.Whole.PeakParallel)
	fmt.Fprintf(w, "    %-9s makespan %9.1f µs  speedup %5.1fx  peak %3d  (sharded stage-1 stream)\n",
		"whole run", r.WholeSharded.MakespanNS/1e3, r.WholeSharded.Speedup, r.WholeSharded.PeakParallel)
	verdict := "IDENTICAL command totals"
	if !r.ParallelMatches {
		verdict = "MISMATCH (bug!)"
	}
	fmt.Fprintf(w, "\n  parallel stage 1 vs serial: %s; %d contigs\n", verdict, r.Contigs)
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
