package eval

import (
	"bytes"
	"strings"
	"testing"
)

// TestSpillSweepInvariants pins E19's headline claims: every shard count
// assembles out-of-core to contigs identical to both the unsharded
// reference and the in-memory sharded run, the summed workload counts and
// spill bytes do not depend on the shard count, and the 32-read resident
// cap forced evictions on every row.
func TestSpillSweepInvariants(t *testing.T) {
	rows := SpillSweep()
	if len(rows) != 4 {
		t.Fatalf("got %d sweep rows, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Err != "" {
			t.Fatalf("shards=%d: %s", r.Shards, r.Err)
		}
		if !r.Identical {
			t.Errorf("shards=%d: spill contigs differ from the unsharded reference", r.Shards)
		}
		if !r.MatchesInMemory {
			t.Errorf("shards=%d: spill contigs differ from the in-memory sharded run", r.Shards)
		}
		if r.ReadCount != rows[0].ReadCount {
			t.Errorf("shards=%d: ReadCount %d, want %d", r.Shards, r.ReadCount, rows[0].ReadCount)
		}
		if r.TotalKmers != rows[0].TotalKmers {
			t.Errorf("shards=%d: TotalKmers %.0f, want %.0f", r.Shards, r.TotalKmers, rows[0].TotalKmers)
		}
		if r.SpillBytes != rows[0].SpillBytes {
			t.Errorf("shards=%d: SpillBytes %d, want %d (partition-shape-invariant)", r.Shards, r.SpillBytes, rows[0].SpillBytes)
		}
		if r.Evictions <= 0 {
			t.Errorf("shards=%d: no evictions under the %d-read cap", r.Shards, spillResident)
		}
	}
}

func TestRenderSpillMarkers(t *testing.T) {
	var buf bytes.Buffer
	RenderSpill(&buf)
	out := buf.String()
	for _, marker := range []string{"E19", "out-of-core spill sweep", "identical", "in-memory", "evictions", "DESIGN.md §15"} {
		if !strings.Contains(out, marker) {
			t.Errorf("RenderSpill output missing %q", marker)
		}
	}
	if strings.Contains(out, "false") {
		t.Error("RenderSpill reports a non-identical merge")
	}
	if strings.Contains(out, "ERROR") {
		t.Error("RenderSpill reports a failed configuration")
	}
}
