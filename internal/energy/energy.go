// Package energy turns command streams and stage costs into energy and
// power breakdowns: per-command-kind energy of a functional run (from the
// dram.Meter), per-operation energy of the in-situ platforms, and stage
// energy summaries for the pipeline (the data behind Fig. 9b's bars).
package energy

import (
	"fmt"
	"sort"
	"strings"

	"pimassembler/internal/dram"
	"pimassembler/internal/perfmodel"
	"pimassembler/internal/platforms"
)

// Breakdown attributes a functional run's dynamic energy to command kinds.
type Breakdown struct {
	ByCommand map[dram.CommandKind]float64 // picojoules
	TotalPJ   float64
	LatencyNS float64
}

// FromMeter reconstructs the per-kind energy split of a meter's command
// stream. The meter accumulates only totals, so the split is recomputed
// from the counts and the energy model; for broadcast commands recorded
// with parallel sub-arrays the split reflects command slots, i.e. the
// single-sub-array energy — callers wanting the full-array figure should
// use the meter's own EnergyPJ total (returned unchanged here).
func FromMeter(m *dram.Meter) Breakdown {
	e := m.Energy()
	b := Breakdown{
		ByCommand: make(map[dram.CommandKind]float64),
		TotalPJ:   m.EnergyPJ,
		LatencyNS: m.LatencyNS,
	}
	per := map[dram.CommandKind]float64{
		dram.CmdActivate:  e.ActivationEnergy(1),
		dram.CmdPrecharge: e.EPrecharge,
		dram.CmdRead:      e.ActivationEnergy(1) + e.ERowBuffer,
		dram.CmdWrite:     e.ActivationEnergy(1) + e.ERowBuffer,
		dram.CmdAAPCopy:   e.AAPEnergy(1, 1, false),
		dram.CmdAAP2:      e.AAPEnergy(2, 1, true),
		dram.CmdAAP3:      e.AAPEnergy(3, 1, true),
		dram.CmdDPU:       e.EDPUOp,
	}
	for kind, count := range m.Counts {
		b.ByCommand[kind] = float64(count) * per[kind]
	}
	return b
}

// DominantKind returns the command kind consuming the most energy.
func (b Breakdown) DominantKind() dram.CommandKind {
	var best dram.CommandKind
	bestE := -1.0
	kinds := make([]dram.CommandKind, 0, len(b.ByCommand))
	for k := range b.ByCommand {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		if b.ByCommand[k] > bestE {
			best, bestE = k, b.ByCommand[k]
		}
	}
	return best
}

// String renders the breakdown sorted by energy.
func (b Breakdown) String() string {
	kinds := make([]dram.CommandKind, 0, len(b.ByCommand))
	for k := range b.ByCommand {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return b.ByCommand[kinds[i]] > b.ByCommand[kinds[j]] })
	var sb strings.Builder
	fmt.Fprintf(&sb, "energy %.1f nJ over %.1f µs:", b.TotalPJ/1e3, b.LatencyNS/1e3)
	for _, k := range kinds {
		fmt.Fprintf(&sb, " %s=%.1fnJ", k, b.ByCommand[k]/1e3)
	}
	return sb.String()
}

// OpEnergy is the modeled energy of one row-wide bulk operation on an
// in-situ platform, in picojoules per sub-array.
func OpEnergy(s platforms.Spec, op platforms.BulkOp) float64 {
	if s.Kind != platforms.KindInSitu {
		panic(fmt.Sprintf("energy: %s is not an in-situ platform", s.Name))
	}
	cycles := s.XNORCycles
	if op == platforms.OpAdd {
		cycles = s.AddCyclesPerBit * platforms.AddElemBits
	}
	return cycles * platforms.EnergyPerAAPpJ * s.EnergyScale
}

// StageEnergy is a pipeline stage's energy in joules.
type StageEnergy struct {
	Platform  string
	K         int
	HashmapJ  float64
	DeBruijnJ float64
	TraverseJ float64
}

// TotalJ sums the stages.
func (s StageEnergy) TotalJ() float64 { return s.HashmapJ + s.DeBruijnJ + s.TraverseJ }

// FromStageCost converts a stage cost to per-stage energy (stage time ×
// platform power; the power draw is modeled flat across stages).
func FromStageCost(c perfmodel.StageCost) StageEnergy {
	return StageEnergy{
		Platform:  c.Platform,
		K:         c.K,
		HashmapJ:  c.HashmapS * c.PowerW,
		DeBruijnJ: c.DeBruijnS * c.PowerW,
		TraverseJ: c.TraverseS * c.PowerW,
	}
}

// EfficiencyRatio returns how many times less energy `a` uses than `b` for
// the same workload.
func EfficiencyRatio(a, b StageEnergy) float64 {
	if a.TotalJ() <= 0 {
		panic("energy: non-positive reference energy")
	}
	return b.TotalJ() / a.TotalJ()
}
