package energy

import (
	"math"
	"strings"
	"testing"

	"pimassembler/internal/assembly"
	"pimassembler/internal/dram"
	"pimassembler/internal/genome"
	"pimassembler/internal/perfmodel"
	"pimassembler/internal/platforms"
)

func TestFromMeterSplitsTotal(t *testing.T) {
	m := dram.NewMeter(dram.DefaultTiming(), dram.DefaultEnergy())
	m.Record(dram.CmdAAPCopy, 1)
	m.Record(dram.CmdAAP2, 1)
	m.Record(dram.CmdAAP3, 1)
	m.Record(dram.CmdRead, 1)
	m.Record(dram.CmdWrite, 1)
	m.Record(dram.CmdDPU, 1)
	m.Record(dram.CmdActivate, 1)
	m.Record(dram.CmdPrecharge, 1)
	b := FromMeter(m)
	var sum float64
	for _, e := range b.ByCommand {
		sum += e
	}
	if math.Abs(sum-b.TotalPJ) > 1e-6 {
		t.Fatalf("per-kind energies sum to %.3f, meter total %.3f", sum, b.TotalPJ)
	}
	if b.LatencyNS != m.LatencyNS {
		t.Fatal("latency not carried over")
	}
}

func TestDominantKind(t *testing.T) {
	m := dram.NewMeter(dram.DefaultTiming(), dram.DefaultEnergy())
	for i := 0; i < 100; i++ {
		m.Record(dram.CmdAAP3, 1)
	}
	m.Record(dram.CmdDPU, 1)
	b := FromMeter(m)
	if got := b.DominantKind(); got != dram.CmdAAP3 {
		t.Fatalf("dominant kind %v, want AAP3", got)
	}
	if !strings.Contains(b.String(), "AAP.3src") {
		t.Fatal("breakdown string missing dominant kind")
	}
}

func TestOpEnergyOrdering(t *testing.T) {
	// The two-row mechanism must be the cheapest XNOR; baselines cost more
	// both in cycles and per-AAP energy.
	pa := OpEnergy(platforms.PIMAssembler(), platforms.OpXNOR)
	for _, s := range []platforms.Spec{platforms.Ambit(), platforms.DRISA1T1C(), platforms.DRISA3T1C()} {
		if e := OpEnergy(s, platforms.OpXNOR); e <= pa {
			t.Errorf("%s XNOR energy %.0f pJ not above P-A's %.0f pJ", s.Name, e, pa)
		}
	}
	// Addition costs more than XNOR everywhere (bit-serial).
	for _, s := range platforms.PIMBaselines() {
		if OpEnergy(s, platforms.OpAdd) <= OpEnergy(s, platforms.OpXNOR) {
			t.Errorf("%s: add energy not above XNOR energy", s.Name)
		}
	}
}

func TestOpEnergyPanicsOnBandwidthPlatform(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	OpEnergy(platforms.GPU(), platforms.OpXNOR)
}

func TestStageEnergyMatchesFig9Claim(t *testing.T) {
	// Paper conclusion: ~5x time and ~7.5x power vs GPU compound to ~37x
	// energy; verify the energy ratio is far above the time ratio alone.
	counts := assembly.PaperOpCounts(genome.PaperChr14(), 16)
	pa := FromStageCost(perfmodel.AssemblyCost(platforms.PIMAssembler(), counts))
	gpu := FromStageCost(perfmodel.AssemblyCost(platforms.GPU(), counts))
	r := EfficiencyRatio(pa, gpu)
	if r < 25 || r > 55 {
		t.Fatalf("energy ratio %.1f outside the ~37x band implied by 5x·7.5x", r)
	}
	if pa.TotalJ() <= 0 || gpu.TotalJ() <= pa.TotalJ() {
		t.Fatal("energy totals inconsistent")
	}
}

func TestStageEnergyComposition(t *testing.T) {
	counts := assembly.PaperOpCounts(genome.PaperChr14(), 16)
	c := perfmodel.AssemblyCost(platforms.PIMAssembler(), counts)
	e := FromStageCost(c)
	if math.Abs(e.TotalJ()-c.EnergyJ()) > 1e-9*c.EnergyJ() {
		t.Fatalf("stage energies %.1f J do not sum to cost energy %.1f J", e.TotalJ(), c.EnergyJ())
	}
	if e.Platform != "P-A" || e.K != 16 {
		t.Fatal("metadata lost")
	}
}

func TestEfficiencyRatioPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EfficiencyRatio(StageEnergy{}, StageEnergy{})
}
