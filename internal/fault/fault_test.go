package fault

import (
	"math"
	"testing"

	"pimassembler/internal/bitvec"
	"pimassembler/internal/core"
	"pimassembler/internal/dram"
	"pimassembler/internal/kmer"
	"pimassembler/internal/stats"
	"pimassembler/internal/subarray"
)

func newSub() *subarray.Subarray {
	return subarray.New(dram.Default(), dram.NewMeter(dram.DefaultTiming(), dram.DefaultEnergy()))
}

func randomRow(rng *stats.RNG, n int) *bitvec.Vector {
	v := bitvec.New(n)
	for i := 0; i < n; i++ {
		v.Set(i, rng.Float64() < 0.5)
	}
	return v
}

func TestZeroRateIsTransparent(t *testing.T) {
	s := newSub()
	in := NewInjector(Rates{}, stats.NewRNG(1))
	in.Attach(s)
	rng := stats.NewRNG(2)
	a, b := randomRow(rng, 256), randomRow(rng, 256)
	s.Poke(0, a)
	s.Poke(1, b)
	s.XNOR(0, 1, 2)
	want := bitvec.New(256)
	want.Xnor(a, b)
	if !s.Peek(2).Equal(want) {
		t.Fatal("zero-rate injector corrupted a result")
	}
	if in.FlippedBits != 0 || in.AffectedOps != 0 {
		t.Fatal("zero-rate injector reported flips")
	}
	if in.TotalOps != 1 {
		t.Fatalf("observed %d ops, want 1", in.TotalOps)
	}
}

func TestInjectionRateObserved(t *testing.T) {
	s := newSub()
	const rate = 0.01
	in := NewInjector(Rates{TwoRow: rate, TRA: rate}, stats.NewRNG(3))
	in.Attach(s)
	rng := stats.NewRNG(4)
	s.Poke(0, randomRow(rng, 256))
	s.Poke(1, randomRow(rng, 256))
	const ops = 400
	for i := 0; i < ops; i++ {
		s.XNOR(0, 1, 2)
	}
	got := float64(in.FlippedBits) / float64(ops*256)
	if math.Abs(got-rate)/rate > 0.25 {
		t.Fatalf("observed flip rate %.4f vs configured %.4f", got, rate)
	}
	if in.ErrorRate() <= 0 {
		t.Fatal("no affected ops at a 1% bit rate over 256-bit rows")
	}
}

func TestMechanismSpecificRates(t *testing.T) {
	s := newSub()
	// TRA faults only: two-row results stay clean.
	in := NewInjector(Rates{TRA: 0.5}, stats.NewRNG(5))
	in.Attach(s)
	rng := stats.NewRNG(6)
	a, b := randomRow(rng, 256), randomRow(rng, 256)
	s.Poke(0, a)
	s.Poke(1, b)
	s.XNOR(0, 1, 2)
	want := bitvec.New(256)
	want.Xnor(a, b)
	if !s.Peek(2).Equal(want) {
		t.Fatal("two-row op corrupted despite TRA-only rates")
	}
	// A TRA now must flip ~half the bits.
	x1, x2, x3 := s.ComputeRow(0), s.ComputeRow(1), s.ComputeRow(2)
	s.Poke(x1, a)
	s.Poke(x2, a)
	s.Poke(x3, a)
	s.TRACarry(x1, x2, x3, 3)
	if s.Peek(3).Equal(a) {
		t.Fatal("TRA result unchanged at 50% flip rate")
	}
}

func TestRatesFromVariationMonotone(t *testing.T) {
	low := RatesFromVariation(0.05, 2000, 7)
	high := RatesFromVariation(0.30, 2000, 7)
	if low.TRA > 0.001 || low.TwoRow > 0.001 {
		t.Fatalf("±5%% variation should be error-free, got %+v", low)
	}
	if high.TRA <= low.TRA || high.TwoRow <= low.TwoRow {
		t.Fatalf("rates not increasing with variation: %+v vs %+v", low, high)
	}
	if high.TRA < high.TwoRow {
		t.Fatal("TRA must fail at least as often as two-row")
	}
}

func TestValidateRejectsBadRates(t *testing.T) {
	for _, r := range []Rates{{TwoRow: -0.1}, {TRA: 1.5}} {
		if err := r.Validate(); err == nil {
			t.Fatalf("rates %+v accepted", r)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewInjector accepted bad rates")
		}
	}()
	NewInjector(Rates{TwoRow: 2}, stats.NewRNG(1))
}

// End-to-end reliability study: at the paper's safe corner (±5 %) the PIM
// hash table is exact; at an aggressive corner the injected faults corrupt
// stored counts or keys — the failure the two-row mechanism's margin
// prevents in practice.
func TestHashTableUnderVariation(t *testing.T) {
	build := func(rates Rates) (exactKeys bool, exactCounts bool) {
		p := core.NewDefaultPlatform()
		rng := stats.NewRNG(8)
		in := NewInjector(rates, stats.NewRNG(9))
		tbl := core.NewHashTable(p, 12, 4)
		// Attach the hook to every sub-array the table will touch.
		for i := 0; i < 4; i++ {
			in.Attach(p.Subarray(i))
		}
		ref := make(map[kmer.Kmer]uint32)
		for i := 0; i < 300; i++ {
			km := kmer.Kmer(rng.Uint64()) & kmer.Kmer(kmer.Mask(12))
			if _, err := tbl.Add(km); err != nil {
				return false, false
			}
			ref[km]++
		}
		entries := tbl.Entries()
		if len(entries) != len(ref) {
			return false, false
		}
		exactKeys, exactCounts = true, true
		for _, e := range entries {
			want, ok := ref[e.Kmer]
			if !ok {
				exactKeys = false
				continue
			}
			if e.Count != want {
				exactCounts = false
			}
		}
		return exactKeys, exactCounts
	}

	keys, counts := build(RatesFromVariation(0.05, 2000, 10))
	if !keys || !counts {
		t.Fatal("±5% corner corrupted the hash table; Table I says it is error-free")
	}
	keys, counts = build(Rates{TwoRow: 0.02, TRA: 0.05})
	if keys && counts {
		t.Fatal("aggressive fault rates left the table untouched; injection ineffective")
	}
}
