// Package fault injects process-variation bit errors into the functional
// simulator, closing the loop between the circuit-level Monte-Carlo study
// (Table I) and the application: the per-mechanism test-error rates become
// per-bit flip probabilities on the sub-array's compute results, letting
// the repository measure what a given variation corner does to hash-table
// integrity and assembled contigs.
package fault

import (
	"fmt"

	"pimassembler/internal/bitvec"
	"pimassembler/internal/circuit"
	"pimassembler/internal/core"
	"pimassembler/internal/dram"
	"pimassembler/internal/stats"
	"pimassembler/internal/subarray"
)

// Rates are per-bit error probabilities for the two activation mechanisms.
type Rates struct {
	// TwoRow is the flip probability per result bit of a two-row
	// activation (XNOR/XOR/Sum).
	TwoRow float64
	// TRA is the flip probability per result bit of a triple-row
	// activation (carry/majority).
	TRA float64
}

// Validate checks the probabilities.
func (r Rates) Validate() error {
	if r.TwoRow < 0 || r.TwoRow > 1 || r.TRA < 0 || r.TRA > 1 {
		return fmt.Errorf("fault: probabilities outside [0,1]: %+v", r)
	}
	return nil
}

// RatesFromVariation derives per-bit error rates from the circuit-level
// Monte-Carlo model at a variation corner: the Table I test-error
// percentages are per-evaluation error probabilities, which is exactly the
// per-bit rate of the row-wide operation (each bit-line evaluates
// independently).
func RatesFromVariation(variation float64, trials int, seed uint64) Rates {
	m := circuit.DefaultVariationModel()
	res := m.MonteCarlo(trials, variation, stats.NewRNG(seed))
	return Rates{
		TwoRow: res.TwoRowErrPct / 100,
		TRA:    res.TRAErrPct / 100,
	}
}

// Injector corrupts compute results at the configured rates and counts what
// it did. Attach one injector per sub-array (it is not safe for concurrent
// use; derive per-sub-array RNGs with stats.RNG.Split).
type Injector struct {
	rates Rates
	rng   *stats.RNG

	// FlippedBits counts injected bit errors.
	FlippedBits int64
	// AffectedOps counts compute operations that had at least one flip.
	AffectedOps int64
	// TotalOps counts observed compute operations.
	TotalOps int64
}

// NewInjector builds an injector.
func NewInjector(rates Rates, rng *stats.RNG) *Injector {
	if err := rates.Validate(); err != nil {
		panic(err)
	}
	return &Injector{rates: rates, rng: rng}
}

// Hook returns the subarray.FaultHook implementing the injection.
func (in *Injector) Hook() subarray.FaultHook {
	return func(kind dram.CommandKind, result *bitvec.Vector) {
		rate := in.rates.TwoRow
		if kind == dram.CmdAAP3 {
			rate = in.rates.TRA
		}
		in.TotalOps++
		if rate <= 0 {
			return
		}
		flipped := false
		for i := 0; i < result.Len(); i++ {
			if in.rng.Float64() < rate {
				result.Set(i, !result.Get(i))
				in.FlippedBits++
				flipped = true
			}
		}
		if flipped {
			in.AffectedOps++
		}
	}
}

// Attach installs the injector on a sub-array.
func (in *Injector) Attach(s *subarray.Subarray) {
	s.SetFaultHook(in.Hook())
}

// AttachPlatform installs the injector on every sub-array of a platform,
// present and future.
func (in *Injector) AttachPlatform(p *core.Platform) {
	p.SetFaultHook(in.Hook())
}

// ErrorRate returns the observed per-op error rate.
func (in *Injector) ErrorRate() float64 {
	if in.TotalOps == 0 {
		return 0
	}
	return float64(in.AffectedOps) / float64(in.TotalOps)
}

// String summarises the injector's activity.
func (in *Injector) String() string {
	return fmt.Sprintf("fault.Injector{rates=%.2g/%.2g, ops=%d, affected=%d, bits=%d}",
		in.rates.TwoRow, in.rates.TRA, in.TotalOps, in.AffectedOps, in.FlippedBits)
}
