// Package align implements DNA sequence alignment: global (Needleman-
// Wunsch) and semi-global (query fitted anywhere inside a longer target)
// edit-distance alignment with traceback, plus banded variants for bounded
// divergence. It is the evaluation substrate that upgrades contig scoring
// from exact substring matching to tolerance of small differences — the
// regime fault-injected and error-read assemblies live in.
package align

import (
	"fmt"
	"strings"

	"pimassembler/internal/genome"
)

// Op is one alignment operation.
type Op byte

const (
	// OpMatch: equal bases.
	OpMatch Op = 'M'
	// OpMismatch: substitution.
	OpMismatch Op = 'X'
	// OpInsert: base present in the query, absent in the target.
	OpInsert Op = 'I'
	// OpDelete: base present in the target, absent in the query.
	OpDelete Op = 'D'
)

// Alignment is a scored alignment of query against target.
type Alignment struct {
	// Distance is the edit distance (unit costs).
	Distance int
	// TargetStart/TargetEnd delimit the aligned target window (semi-global
	// alignments choose it; global alignments span the whole target).
	TargetStart, TargetEnd int
	// Ops is the traceback, query-order.
	Ops []Op
}

// CIGAR renders the ops in a compact run-length form (e.g. "35M1X64M").
func (a Alignment) CIGAR() string {
	if len(a.Ops) == 0 {
		return ""
	}
	var sb strings.Builder
	run := a.Ops[0]
	count := 0
	flush := func() {
		fmt.Fprintf(&sb, "%d%c", count, run)
	}
	for _, op := range a.Ops {
		if op == run {
			count++
			continue
		}
		flush()
		run, count = op, 1
	}
	flush()
	return sb.String()
}

// Identity returns the fraction of query bases aligned as matches.
func (a Alignment) Identity() float64 {
	if len(a.Ops) == 0 {
		return 0
	}
	m := 0
	for _, op := range a.Ops {
		if op == OpMatch {
			m++
		}
	}
	return float64(m) / float64(len(a.Ops))
}

// Global aligns query against target end-to-end and returns the optimal
// unit-cost alignment.
func Global(query, target *genome.Sequence) Alignment {
	n, m := query.Len(), target.Len()
	// dp[i][j]: edit distance of query[:i] vs target[:j].
	dp := makeMatrix(n+1, m+1)
	for i := 0; i <= n; i++ {
		dp[i][0] = i
	}
	for j := 0; j <= m; j++ {
		dp[0][j] = j
	}
	fillDP(dp, query, target, n, m)
	a := Alignment{Distance: dp[n][m], TargetStart: 0, TargetEnd: m}
	a.Ops = traceback(dp, query, target, n, m, 0)
	return a
}

// SemiGlobal fits the whole query anywhere inside the target: gaps before
// and after the query's window are free. This is the contig-to-reference
// alignment model.
func SemiGlobal(query, target *genome.Sequence) Alignment {
	n, m := query.Len(), target.Len()
	dp := makeMatrix(n+1, m+1)
	for i := 0; i <= n; i++ {
		dp[i][0] = i
	}
	// Free leading target gaps.
	for j := 0; j <= m; j++ {
		dp[0][j] = 0
	}
	fillDP(dp, query, target, n, m)
	// Free trailing target gaps: best end column on the last row.
	bestJ := 0
	for j := 0; j <= m; j++ {
		if dp[n][j] < dp[n][bestJ] {
			bestJ = j
		}
	}
	a := Alignment{Distance: dp[n][bestJ], TargetEnd: bestJ}
	a.Ops = traceback(dp, query, target, n, bestJ, 0)
	// Recover the start: walk ops to count target consumption.
	consumed := 0
	for _, op := range a.Ops {
		if op != OpInsert {
			consumed++
		}
	}
	a.TargetStart = bestJ - consumed
	return a
}

// Distance returns the plain edit distance between two sequences without
// traceback, in O(min) memory.
func Distance(a, b *genome.Sequence) int {
	n, m := a.Len(), b.Len()
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for j := 0; j <= m; j++ {
		prev[j] = j
	}
	for i := 1; i <= n; i++ {
		cur[0] = i
		for j := 1; j <= m; j++ {
			cost := 1
			if a.Base(i-1) == b.Base(j-1) {
				cost = 0
			}
			cur[j] = min3(prev[j-1]+cost, prev[j]+1, cur[j-1]+1)
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

// WithinDistance reports whether the semi-global distance of query inside
// target is at most maxDist, using a banded scan that exits early — the
// fast path metrics uses to classify near-miss contigs. A negative maxDist
// always reports false.
func WithinDistance(query, target *genome.Sequence, maxDist int) bool {
	if maxDist < 0 {
		return false
	}
	n, m := query.Len(), target.Len()
	if n == 0 {
		return true
	}
	// Ukkonen-style banded semi-global DP over rows of the query; column
	// range per row is bounded by the band around every possible start.
	// With free leading/trailing gaps the band cannot prune by diagonal
	// alone, so bound per-row values and bail when the row minimum exceeds
	// maxDist.
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for j := 0; j <= m; j++ {
		prev[j] = 0 // free leading gaps
	}
	for i := 1; i <= n; i++ {
		cur[0] = i
		rowMin := cur[0]
		for j := 1; j <= m; j++ {
			cost := 1
			if query.Base(i-1) == target.Base(j-1) {
				cost = 0
			}
			cur[j] = min3(prev[j-1]+cost, prev[j]+1, cur[j-1]+1)
			if cur[j] < rowMin {
				rowMin = cur[j]
			}
		}
		if rowMin > maxDist {
			return false
		}
		prev, cur = cur, prev
	}
	for j := 0; j <= m; j++ {
		if prev[j] <= maxDist {
			return true
		}
	}
	return false
}

func makeMatrix(rows, cols int) [][]int {
	flat := make([]int, rows*cols)
	out := make([][]int, rows)
	for i := range out {
		out[i], flat = flat[:cols], flat[cols:]
	}
	return out
}

func fillDP(dp [][]int, query, target *genome.Sequence, n, m int) {
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			cost := 1
			if query.Base(i-1) == target.Base(j-1) {
				cost = 0
			}
			dp[i][j] = min3(dp[i-1][j-1]+cost, dp[i-1][j]+1, dp[i][j-1]+1)
		}
	}
}

// traceback recovers ops from dp ending at (i, j); stopJ is the column at
// which row 0 stops (0 for global; semi-global stops wherever row 0 is
// reached since leading gaps are free).
func traceback(dp [][]int, query, target *genome.Sequence, i, j, stopJ int) []Op {
	var rev []Op
	for i > 0 || j > stopJ {
		switch {
		case i > 0 && j > 0 && dp[i][j] == dp[i-1][j-1]+matchCost(query, target, i, j):
			if query.Base(i-1) == target.Base(j-1) {
				rev = append(rev, OpMatch)
			} else {
				rev = append(rev, OpMismatch)
			}
			i--
			j--
		case i > 0 && dp[i][j] == dp[i-1][j]+1:
			rev = append(rev, OpInsert)
			i--
		case j > 0 && dp[i][j] == dp[i][j-1]+1:
			rev = append(rev, OpDelete)
			j--
		default:
			// Row 0 with free gaps: stop.
			if i == 0 {
				return reverse(rev)
			}
			panic("align: traceback stuck")
		}
	}
	return reverse(rev)
}

func matchCost(q, t *genome.Sequence, i, j int) int {
	if q.Base(i-1) == t.Base(j-1) {
		return 0
	}
	return 1
}

func reverse(ops []Op) []Op {
	for i, j := 0, len(ops)-1; i < j; i, j = i+1, j-1 {
		ops[i], ops[j] = ops[j], ops[i]
	}
	return ops
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
