package align

import (
	"strings"
	"testing"
	"testing/quick"

	"pimassembler/internal/genome"
	"pimassembler/internal/stats"
)

func seq(t *testing.T, s string) *genome.Sequence {
	t.Helper()
	return genome.MustFromString(s)
}

func TestGlobalIdentical(t *testing.T) {
	a := Global(seq(t, "ACGTACGT"), seq(t, "ACGTACGT"))
	if a.Distance != 0 {
		t.Fatalf("distance %d", a.Distance)
	}
	if a.CIGAR() != "8M" {
		t.Fatalf("cigar %q", a.CIGAR())
	}
	if a.Identity() != 1 {
		t.Fatalf("identity %v", a.Identity())
	}
}

func TestGlobalSubstitution(t *testing.T) {
	a := Global(seq(t, "ACGTACGT"), seq(t, "ACGAACGT"))
	if a.Distance != 1 {
		t.Fatalf("distance %d", a.Distance)
	}
	if a.CIGAR() != "3M1X4M" {
		t.Fatalf("cigar %q", a.CIGAR())
	}
}

func TestGlobalIndel(t *testing.T) {
	a := Global(seq(t, "ACGTT"), seq(t, "ACGT"))
	if a.Distance != 1 {
		t.Fatalf("distance %d", a.Distance)
	}
	if !strings.Contains(a.CIGAR(), "I") {
		t.Fatalf("cigar %q lacks insertion", a.CIGAR())
	}
	b := Global(seq(t, "ACGT"), seq(t, "ACGTT"))
	if b.Distance != 1 || !strings.Contains(b.CIGAR(), "D") {
		t.Fatalf("deletion case: %d %q", b.Distance, b.CIGAR())
	}
}

func TestSemiGlobalFindsWindow(t *testing.T) {
	rng := stats.NewRNG(1)
	target := genome.GenerateGenome(500, rng)
	query := target.Subsequence(137, 60)
	a := SemiGlobal(query, target)
	if a.Distance != 0 {
		t.Fatalf("exact substring distance %d", a.Distance)
	}
	if a.TargetStart != 137 || a.TargetEnd != 197 {
		t.Fatalf("window [%d,%d), want [137,197)", a.TargetStart, a.TargetEnd)
	}
	if a.CIGAR() != "60M" {
		t.Fatalf("cigar %q", a.CIGAR())
	}
}

func TestSemiGlobalWithErrors(t *testing.T) {
	rng := stats.NewRNG(2)
	target := genome.GenerateGenome(400, rng)
	query := target.Subsequence(100, 80)
	// Two substitutions.
	query.SetBase(10, genome.Base((int(query.Base(10))+1)%4))
	query.SetBase(50, genome.Base((int(query.Base(50))+2)%4))
	a := SemiGlobal(query, target)
	if a.Distance != 2 {
		t.Fatalf("distance %d, want 2", a.Distance)
	}
	if a.TargetStart != 100 {
		t.Fatalf("start %d, want 100", a.TargetStart)
	}
}

func TestDistanceMatchesGlobal(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		a := genome.GenerateGenome(1+rng.Intn(60), rng)
		b := genome.GenerateGenome(1+rng.Intn(60), rng)
		return Distance(a, b) == Global(a, b).Distance
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: edit distance is a metric — symmetry, identity, and the
// triangle inequality.
func TestDistanceMetricProperties(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		a := genome.GenerateGenome(1+rng.Intn(40), rng)
		b := genome.GenerateGenome(1+rng.Intn(40), rng)
		c := genome.GenerateGenome(1+rng.Intn(40), rng)
		if Distance(a, a) != 0 {
			return false
		}
		if Distance(a, b) != Distance(b, a) {
			return false
		}
		return Distance(a, c) <= Distance(a, b)+Distance(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the traceback's op counts reconcile with the distance and both
// sequence lengths.
func TestTracebackConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		q := genome.GenerateGenome(1+rng.Intn(50), rng)
		tg := genome.GenerateGenome(1+rng.Intn(50), rng)
		a := Global(q, tg)
		var qBases, tBases, edits int
		for _, op := range a.Ops {
			switch op {
			case OpMatch:
				qBases++
				tBases++
			case OpMismatch:
				qBases++
				tBases++
				edits++
			case OpInsert:
				qBases++
				edits++
			case OpDelete:
				tBases++
				edits++
			}
		}
		return qBases == q.Len() && tBases == tg.Len() && edits == a.Distance
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWithinDistance(t *testing.T) {
	rng := stats.NewRNG(3)
	target := genome.GenerateGenome(600, rng)
	query := target.Subsequence(200, 100)
	query.SetBase(40, genome.Base((int(query.Base(40))+1)%4))
	if !WithinDistance(query, target, 1) {
		t.Fatal("1-edit query rejected at maxDist=1")
	}
	if WithinDistance(query, target, 0) {
		t.Fatal("1-edit query accepted at maxDist=0")
	}
	if WithinDistance(query, target, -1) {
		t.Fatal("negative maxDist accepted")
	}
}

// Property: WithinDistance agrees with the full semi-global distance.
func TestWithinDistanceAgreesWithSemiGlobal(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		tg := genome.GenerateGenome(30+rng.Intn(80), rng)
		q := genome.GenerateGenome(1+rng.Intn(25), rng)
		d := SemiGlobal(q, tg).Distance
		return WithinDistance(q, tg, d) && !WithinDistance(q, tg, d-1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCIGAREmpty(t *testing.T) {
	if got := (Alignment{}).CIGAR(); got != "" {
		t.Fatalf("empty cigar %q", got)
	}
}
