package assembly

import (
	"fmt"

	"pimassembler/internal/core"
	"pimassembler/internal/debruijn"
	"pimassembler/internal/genome"
	"pimassembler/internal/kmer"
)

// PIMResult is an assembly executed on the functional PIM simulator: the
// hash table was built with in-memory XNOR probes and ripple increments, the
// graph degrees with in-memory popcounts, and the command stream is on the
// platform meter.
type PIMResult struct {
	Result
	Platform *core.Platform
	// HashSubarrays is how many sub-arrays the hash table spread over.
	HashSubarrays int
	// BankSubarrays is how many sub-arrays the sequence bank occupied.
	BankSubarrays int
}

// AssemblePIM runs stages 1-2 on the functional PIM platform, fully
// memory-resident: the short reads are first stored into the Original
// Sequence Bank (Fig. 6), then streamed back out through the memory path as
// the controller parses k-mers into the hash sub-arrays. nSubarrays bounds
// the hash-table spread (keep it small for tests; the analytical model
// covers full scale). The returned contigs are produced from the table read
// back out of the simulated DRAM rows, so every base has passed through the
// in-memory pipeline twice — once as a banked read, once as a hash entry.
func AssemblePIM(p *core.Platform, reads []*genome.Sequence, opts Options, nSubarrays int) (*PIMResult, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if len(reads) == 0 {
		return nil, fmt.Errorf("assembly: no reads")
	}

	// Stage 0: load the reads into the sequence bank.
	perRow := p.Geometry().ColsPerSubarray / genome.BaseBits
	rowsNeeded := 0
	for _, r := range reads {
		rowsNeeded += (r.Len() + perRow - 1) / perRow
	}
	bankN := (rowsNeeded + p.Geometry().DataRows() - 1) / p.Geometry().DataRows()
	// Row-granular packing can spill across a sub-array boundary once per
	// sub-array; one spare absorbs it.
	bankN++
	bank := core.NewSequenceBank(p, 0, bankN)
	if err := bank.StoreAll(reads); err != nil {
		return nil, err
	}

	// Stage 1: PIM k-mer analysis, streaming reads back from the bank.
	table := core.NewHashTableAt(p, opts.K, bankN, nSubarrays)
	var addErr error
	bank.Each(func(_ int, r *genome.Sequence) {
		if addErr != nil {
			return
		}
		kmer.Iterate(r, opts.K, func(km kmer.Kmer) {
			if addErr != nil {
				return
			}
			if _, err := table.Add(km); err != nil {
				addErr = err
			}
		})
	})
	if addErr != nil {
		return nil, addErr
	}

	// Stage 2a: graph construction from the DRAM-resident table.
	g := debruijn.NewGraph(opts.K)
	entries := table.Entries()
	for _, e := range entries {
		if opts.MinCount > 1 && e.Count < opts.MinCount {
			continue
		}
		g.AddKmer(e.Kmer, e.Count)
	}

	// Stage 2b: PIM degree computation + traversal, then contigs.
	res := &PIMResult{
		Result: Result{
			Options: opts,
			Graph:   g,
		},
		Platform:      p,
		HashSubarrays: nSubarrays,
		BankSubarrays: bankN,
	}
	engine := core.NewGraphEngine(p, g, bankN+nSubarrays)
	if walk, err := engine.EulerPath(); err == nil {
		res.EulerWalk = walk
	}
	res.Contigs = g.Contigs()
	if opts.Scaffold {
		res.Scaffolds = ScaffoldContigs(res.Contigs, opts.MinOverlap)
	}
	return res, nil
}
