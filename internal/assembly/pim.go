package assembly

import (
	"fmt"
	"sync"

	"pimassembler/internal/core"
	"pimassembler/internal/debruijn"
	"pimassembler/internal/genome"
	"pimassembler/internal/kmer"
)

// PIMResult is an assembly executed on the functional PIM simulator: the
// hash table was built with in-memory XNOR probes and ripple increments, the
// graph degrees with in-memory popcounts, and the command stream is on the
// platform meter and the platform's exec.Stream.
type PIMResult struct {
	Result
	Platform *core.Platform
	// HashSubarrays is how many sub-arrays the hash table spread over.
	HashSubarrays int
	// BankSubarrays is how many sub-arrays the sequence bank occupied.
	BankSubarrays int
}

// AssemblePIM runs stages 1-2 on the functional PIM platform, fully
// memory-resident: the short reads are first stored into the Original
// Sequence Bank (Fig. 6), then streamed back out through the memory path as
// the controller parses k-mers into the hash sub-arrays. nSubarrays bounds
// the hash-table spread (keep it small for tests; the analytical model
// covers full scale). The returned contigs are produced from the table read
// back out of the simulated DRAM rows, so every base has passed through the
// in-memory pipeline twice — once as a banked read, once as a hash entry.
//
// With opts.ParallelStage1 the k-mer stream is sharded by home sub-array and
// the Hashmap procedure runs on a bank-keyed worker pool (bounded by the
// scheduler's per-bank activation budget). The resulting table is
// bit-identical to the serial path's: every k-mer's probes, inserts, and
// counter updates stay inside its home sub-array, and the shards preserve
// the serial arrival order within each sub-array.
func AssemblePIM(p *core.Platform, reads []*genome.Sequence, opts Options, nSubarrays int) (*PIMResult, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if len(reads) == 0 {
		return nil, fmt.Errorf("assembly: no reads")
	}

	// Stage 0: load the reads into the sequence bank.
	perRow := p.Geometry().ColsPerSubarray / genome.BaseBits
	rowsNeeded := 0
	for _, r := range reads {
		rowsNeeded += (r.Len() + perRow - 1) / perRow
	}
	bankN := (rowsNeeded + p.Geometry().DataRows() - 1) / p.Geometry().DataRows()
	// Row-granular packing can spill across a sub-array boundary once per
	// sub-array; one spare absorbs it.
	bankN++
	bank := core.NewSequenceBank(p, 0, bankN)
	if err := bank.StoreAll(reads); err != nil {
		return nil, err
	}

	// Stage 1: PIM k-mer analysis, streaming reads back from the bank.
	table := core.NewHashTableAt(p, opts.K, bankN, nSubarrays)
	var addErr error
	if opts.ParallelStage1 {
		addErr = countParallel(p, bank, table, opts.K)
	} else {
		addErr = countSerial(bank, table, opts.K)
	}
	if addErr != nil {
		return nil, addErr
	}

	// Stage 2a: graph construction from the DRAM-resident table, into the
	// dense interned-ID/CSR graph pre-sized for the table's entry count.
	entries := table.Entries()
	g := debruijn.NewGraphHint(opts.K, len(entries)+1, len(entries))
	for _, e := range entries {
		if opts.MinCount > 1 && e.Count < opts.MinCount {
			continue
		}
		g.AddKmer(e.Kmer, e.Count)
	}

	// Stage 2b: PIM degree computation + traversal, then contigs.
	res := &PIMResult{
		Result: Result{
			Options: opts,
			Graph:   g,
		},
		Platform:      p,
		HashSubarrays: nSubarrays,
		BankSubarrays: bankN,
	}
	engine := core.NewGraphEngine(p, g, bankN+nSubarrays)
	if walk, err := engine.EulerPath(); err == nil {
		res.EulerWalk = walk
	} else {
		res.EulerErr = err
	}
	res.Contigs = g.Contigs()
	if opts.Scaffold {
		res.Scaffolds = ScaffoldContigs(res.Contigs, opts.MinOverlap)
	}
	res.Counts = measurePIMCounts(reads, opts.K, table, g)
	return res, nil
}

// measurePIMCounts extracts the operation profile of a functional run for
// the analytical models — the PIM-side twin of measureCounts, with the
// probe count taken from the simulated hash table's slot visits.
func measurePIMCounts(reads []*genome.Sequence, k int, table *core.HashTable, g *debruijn.Graph) OpCounts {
	t := totalsOf(reads, k)
	avg := 1.0
	if t.kmers > 0 {
		avg = float64(table.ProbeOps()) / float64(t.kmers)
	}
	if avg < 1 {
		avg = 1
	}
	readLen := 0
	if t.reads > 0 {
		readLen = int((t.bases + t.reads/2) / t.reads)
	}
	return OpCounts{
		K:             k,
		ReadCount:     t.reads,
		ReadLen:       readLen,
		TotalKmers:    float64(t.kmers),
		DistinctKmers: float64(table.Len()),
		AvgProbes:     avg,
		Nodes:         float64(g.NumNodes()),
		Edges:         float64(g.NumEdges()),
		CounterBits:   32,
		DegreeBits:    9,
	}
}

// countSerial streams the bank and runs the Hashmap procedure k-mer by
// k-mer, stopping the read stream at the first hash-table error.
func countSerial(bank *core.SequenceBank, table *core.HashTable, k int) error {
	var addErr error
	bank.Each(func(_ int, r *genome.Sequence) bool {
		kmer.Iterate(r, k, func(km kmer.Kmer) {
			if addErr != nil {
				return
			}
			if _, err := table.Add(km); err != nil {
				addErr = err
			}
		})
		return addErr == nil
	})
	return addErr
}

// countParallel is the sharded Hashmap procedure. The read stream is fetched
// from the bank exactly as in the serial path (same dispatch traffic), but
// the parsed k-mers are routed into per-home-sub-array shards that preserve
// the serial arrival order. One worker then owns each sub-array — no two
// goroutines ever touch the same rows, bitmap, or temp region — and workers
// are pooled per bank, at most the scheduler's per-bank activation budget
// running concurrently, mirroring the charge-pump constraint the controller
// enforces in hardware.
func countParallel(p *core.Platform, bank *core.SequenceBank, table *core.HashTable, k int) error {
	shards := make([][]kmer.Kmer, table.Subarrays())
	bank.Each(func(_ int, r *genome.Sequence) bool {
		kmer.Iterate(r, k, func(km kmer.Kmer) {
			home := table.Home(km)
			shards[home] = append(shards[home], km)
		})
		return true
	})

	// Sub-array materialisation mutates platform maps: do it all up front so
	// workers only perform concurrent-safe operations.
	table.Materialize()

	// Group shards by bank; each bank gets its own bounded worker pool.
	spb := p.Geometry().SubarraysPerBank()
	budget := p.SchedConfig().MaxActivePerBank
	perBank := make(map[int][]int)
	for subIdx, shard := range shards {
		if len(shard) == 0 {
			continue
		}
		b := table.GlobalSubarray(subIdx) / spb
		perBank[b] = append(perBank[b], subIdx)
	}

	errs := make([]error, table.Subarrays())
	var wg sync.WaitGroup
	for _, subs := range perBank {
		queue := make(chan int, len(subs))
		for _, subIdx := range subs {
			queue <- subIdx
		}
		close(queue)
		workers := budget
		if workers > len(subs) {
			workers = len(subs)
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for subIdx := range queue {
					for _, km := range shards[subIdx] {
						if _, err := table.Add(km); err != nil {
							errs[subIdx] = err
							break
						}
					}
				}
			}()
		}
	}
	wg.Wait()

	// Deterministic error selection: lowest failing sub-array wins,
	// regardless of goroutine completion order.
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
