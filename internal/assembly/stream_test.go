package assembly

import (
	"testing"

	"pimassembler/internal/core"
	"pimassembler/internal/genome"
	"pimassembler/internal/sched"
	"pimassembler/internal/stats"
)

// pimRun executes AssemblePIM on a fresh default platform with a fixed read
// set and returns the platform and result.
func pimRun(t *testing.T, parallel bool) (*core.Platform, *PIMResult) {
	t.Helper()
	rng := stats.NewRNG(91)
	reads := genome.NewReadSampler(genome.GenerateGenome(1200, rng), 90, 0, rng).Sample(120)
	p := core.NewDefaultPlatform()
	res, err := AssemblePIM(p, reads, Options{K: 15, ParallelStage1: parallel}, 16)
	if err != nil {
		t.Fatal(err)
	}
	return p, res
}

// TestStreamMatchesMeter is the single-source-of-truth cross-check: for a
// full AssemblePIM run, the recorded command stream's per-kind totals must
// exactly equal the serial Meter's counts, and pricing the stream with the
// platform's models must reproduce the Meter's latency and energy totals.
func TestStreamMatchesMeter(t *testing.T) {
	p, _ := pimRun(t, false)
	m := p.Meter()
	streamTotals := p.Stream().Totals()

	if got, want := int64(p.Stream().Len()), m.TotalCommands(); got != want {
		t.Fatalf("stream has %d commands, meter %d", got, want)
	}
	for kind, n := range m.Counts {
		if streamTotals[kind] != n {
			t.Fatalf("kind %v: stream %d, meter %d", kind, streamTotals[kind], n)
		}
	}
	for kind, n := range streamTotals {
		if m.Counts[kind] != n {
			t.Fatalf("kind %v in stream (%d) but not meter", kind, n)
		}
	}

	// The scheduled stream's serial total is the Meter's latency.
	est := sched.ScheduleStream(p.Stream().Commands(), p.SchedConfig())
	if !nearNS(est.SerialNS, m.LatencyNS) {
		t.Fatalf("scheduled serial %v ns, meter %v ns", est.SerialNS, m.LatencyNS)
	}
	if est.MakespanNS > est.SerialNS+1e-6 {
		t.Fatalf("makespan %v exceeds serial %v", est.MakespanNS, est.SerialNS)
	}

	// Per-stage attribution sums back to the Meter totals.
	var ns, pj float64
	for _, c := range p.Stream().Attribute(p.Timing(), p.Energy()) {
		ns += c.SerialNS
		pj += c.EnergyPJ
	}
	if !nearNS(ns, m.LatencyNS) {
		t.Fatalf("attributed %v ns, meter %v ns", ns, m.LatencyNS)
	}
	if !nearNS(pj, m.EnergyPJ) {
		t.Fatalf("attributed %v pJ, meter %v pJ", pj, m.EnergyPJ)
	}

	// Every pipeline phase left commands in the stream.
	h := p.Stream().Histogram()
	for _, st := range []string{"input", "hashmap", "deBruijn", "traverse"} {
		found := false
		for stage, kinds := range h.PerStage {
			if stage.String() == st && len(kinds) > 0 {
				found = true
			}
		}
		if !found {
			t.Fatalf("stage %s missing from histogram %v", st, h.PerStage)
		}
	}
}

// TestParallelStage1BitIdentical verifies the sharded Hashmap procedure is
// indistinguishable from the serial one: same contigs, same Euler walk, same
// graph, same per-kind command totals, and bit-identical DRAM rows across
// the whole hash-table region.
func TestParallelStage1BitIdentical(t *testing.T) {
	ps, rs := pimRun(t, false)
	pp, rp := pimRun(t, true)

	// Functional outputs.
	if len(rs.Contigs) != len(rp.Contigs) {
		t.Fatalf("contig counts differ: %d vs %d", len(rs.Contigs), len(rp.Contigs))
	}
	for i := range rs.Contigs {
		if !rs.Contigs[i].Seq.Equal(rp.Contigs[i].Seq) {
			t.Fatalf("contig %d differs", i)
		}
	}
	if len(rs.EulerWalk) != len(rp.EulerWalk) {
		t.Fatalf("Euler walks differ: %d vs %d nodes", len(rs.EulerWalk), len(rp.EulerWalk))
	}
	if rs.Graph.NumNodes() != rp.Graph.NumNodes() || rs.Graph.NumEdges() != rp.Graph.NumEdges() {
		t.Fatal("graphs differ")
	}

	// Command accounting: per-kind totals are exactly equal (scheduling can
	// reorder the parallel stream, never change it).
	cs, cp := ps.Meter().Counts, pp.Meter().Counts
	for kind, n := range cs {
		if cp[kind] != n {
			t.Fatalf("kind %v: serial %d, parallel %d", kind, n, cp[kind])
		}
	}
	if ps.Stream().Len() != pp.Stream().Len() {
		t.Fatalf("stream lengths differ: %d vs %d", ps.Stream().Len(), pp.Stream().Len())
	}

	// Raw DRAM state: every row of the hash-table region matches bit for
	// bit (Peek bypasses the meter).
	if rs.BankSubarrays != rp.BankSubarrays || rs.HashSubarrays != rp.HashSubarrays {
		t.Fatal("layouts differ")
	}
	rows := ps.Geometry().RowsPerSubarray
	for sub := rs.BankSubarrays; sub < rs.BankSubarrays+rs.HashSubarrays; sub++ {
		a, b := ps.Subarray(sub), pp.Subarray(sub)
		for r := 0; r < rows; r++ {
			if !a.Peek(r).Equal(b.Peek(r)) {
				t.Fatalf("sub-array %d row %d differs between serial and parallel", sub, r)
			}
		}
	}
}

// TestParallelStage1Deterministic runs the parallel path twice and demands
// identical functional output and accounting both times.
func TestParallelStage1Deterministic(t *testing.T) {
	p1, r1 := pimRun(t, true)
	p2, r2 := pimRun(t, true)
	if len(r1.Contigs) != len(r2.Contigs) {
		t.Fatalf("contig counts differ across runs: %d vs %d", len(r1.Contigs), len(r2.Contigs))
	}
	for i := range r1.Contigs {
		if !r1.Contigs[i].Seq.Equal(r2.Contigs[i].Seq) {
			t.Fatalf("contig %d differs across runs", i)
		}
	}
	c1, c2 := p1.Meter().Counts, p2.Meter().Counts
	for kind, n := range c1 {
		if c2[kind] != n {
			t.Fatalf("kind %v: %d vs %d across runs", kind, n, c2[kind])
		}
	}
}

func nearNS(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := b
	if scale < 0 {
		scale = -scale
	}
	if scale < 1 {
		scale = 1
	}
	return d/scale < 1e-9
}
