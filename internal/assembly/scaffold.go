package assembly

import (
	"sort"

	"pimassembler/internal/debruijn"
	"pimassembler/internal/genome"
)

// Scaffold is a chain of contigs joined on suffix-prefix overlaps — the
// stage-3 output. The paper defers scaffolding to future work; this greedy
// overlap joiner is the repository's implementation of that extension and
// is excluded from paper-figure comparisons.
type Scaffold struct {
	Seq     *genome.Sequence
	Contigs int // how many contigs were chained
}

// ScaffoldContigs greedily chains contigs whose suffix overlaps another's
// prefix by at least minOverlap bases. Each contig is used at most once;
// longest contigs seed chains first.
func ScaffoldContigs(contigs []debruijn.Contig, minOverlap int) []Scaffold {
	if minOverlap <= 0 {
		panic("assembly: minOverlap must be positive")
	}
	// Work on string forms for overlap matching.
	type piece struct {
		text string
		used bool
	}
	pieces := make([]piece, len(contigs))
	for i, c := range contigs {
		pieces[i] = piece{text: c.Seq.String()}
	}
	order := make([]int, len(pieces))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if len(pieces[order[a]].text) != len(pieces[order[b]].text) {
			return len(pieces[order[a]].text) > len(pieces[order[b]].text)
		}
		return pieces[order[a]].text < pieces[order[b]].text
	})

	overlap := func(a, b string) int {
		max := len(a)
		if len(b) < max {
			max = len(b)
		}
		for o := max; o >= minOverlap; o-- {
			if a[len(a)-o:] == b[:o] {
				return o
			}
		}
		return 0
	}

	var scaffolds []Scaffold
	for _, seed := range order {
		if pieces[seed].used {
			continue
		}
		pieces[seed].used = true
		chainText := pieces[seed].text
		count := 1
		// Extend right greedily with the largest available overlap.
		for {
			best, bestO := -1, 0
			for _, j := range order {
				if pieces[j].used {
					continue
				}
				if o := overlap(chainText, pieces[j].text); o > bestO {
					best, bestO = j, o
				}
			}
			if best < 0 {
				break
			}
			pieces[best].used = true
			chainText += pieces[best].text[bestO:]
			count++
		}
		// Extend left greedily.
		for {
			best, bestO := -1, 0
			for _, j := range order {
				if pieces[j].used {
					continue
				}
				if o := overlap(pieces[j].text, chainText); o > bestO {
					best, bestO = j, o
				}
			}
			if best < 0 {
				break
			}
			pieces[best].used = true
			chainText = pieces[best].text[:len(pieces[best].text)-bestO] + chainText
			count++
		}
		scaffolds = append(scaffolds, Scaffold{Seq: genome.MustFromString(chainText), Contigs: count})
	}
	sort.Slice(scaffolds, func(a, b int) bool {
		la, lb := scaffolds[a].Seq.Len(), scaffolds[b].Seq.Len()
		if la != lb {
			return la > lb
		}
		return scaffolds[a].Seq.String() < scaffolds[b].Seq.String()
	})
	return scaffolds
}
