package assembly

import (
	"fmt"
	"math"

	"pimassembler/internal/genome"
)

// OpCounts is the algorithm-level operation profile of one assembly
// workload: everything the platform performance models need to price a run
// without executing it. Counts come either from a measured functional run
// (measureCounts) or from the closed-form workload estimates below for the
// paper's full-scale chromosome-14 dataset.
type OpCounts struct {
	K             int
	ReadCount     int64
	ReadLen       int
	TotalKmers    float64 // hash-table Add operations (stage 1)
	DistinctKmers float64 // table entries = graph edges
	AvgProbes     float64 // slot comparisons per Add (load-factor dependent)
	Nodes         float64 // graph nodes ((k-1)-mers)
	Edges         float64 // graph edges (distinct k-mers)
	CounterBits   int     // frequency counter width
	DegreeBits    int     // degree counter width
}

// Validate sanity-checks the profile.
func (c OpCounts) Validate() error {
	if c.K <= 0 || c.TotalKmers <= 0 || c.DistinctKmers <= 0 {
		return fmt.Errorf("assembly: degenerate op counts %+v", c)
	}
	if c.AvgProbes < 1 {
		return fmt.Errorf("assembly: probes per op %.2f below 1", c.AvgProbes)
	}
	if c.DistinctKmers > c.TotalKmers {
		return fmt.Errorf("assembly: distinct %.0f exceeds total %.0f", c.DistinctKmers, c.TotalKmers)
	}
	return nil
}

// PaperOpCounts derives the full-scale operation profile for the paper's
// chromosome-14 workload at a given k, using closed-form estimates:
//
//   - total k-mers: reads × (L-k+1);
//   - distinct k-mers: genome positions capped by the 4^k keyspace, scaled
//     by the expected fraction observed at this coverage (≈1 at 53×);
//   - probes per Add: 1/(1-α) for linear probing at load factor α — the
//     hash regions run at ≈0.5 occupancy by construction of the mapping;
//   - nodes: distinct (k-1)-mers ≈ distinct k-mers for k ≫ log₄(genome).
func PaperOpCounts(w genome.Chr14Workload, k int) OpCounts {
	total := float64(w.TotalKmers(k))
	distinct := float64(w.DistinctKmers(k))
	// Fraction of genome k-mers covered at this depth (coupon collector at
	// coverage c: 1 - e^{-c·(L-k+1)/L}).
	cov := w.Coverage() * float64(w.ReadLen-k+1) / float64(w.ReadLen)
	distinct *= 1 - math.Exp(-cov)
	const loadFactor = 0.5
	return OpCounts{
		K:             k,
		ReadCount:     w.ReadCount,
		ReadLen:       w.ReadLen,
		TotalKmers:    total,
		DistinctKmers: distinct,
		AvgProbes:     1 / (1 - loadFactor),
		Nodes:         distinct, // (k-1)-mers ≈ k-mers at genome scale
		Edges:         distinct,
		CounterBits:   32,
		DegreeBits:    9,
	}
}
