package assembly

import (
	"fmt"
	"sort"
	"sync"

	"pimassembler/internal/core"
	"pimassembler/internal/dram"
	"pimassembler/internal/genome"
	"pimassembler/internal/kmer"
)

// ParallelCountResult is the outcome of a sharded PIM k-mer count.
type ParallelCountResult struct {
	Entries []kmer.Entry
	// Meter is the merged command accounting of all shards. Its latency is
	// the per-shard serial sum; shards ran concurrently, so the wall-clock
	// lower bound is MaxShardLatencyNS.
	Meter *dram.Meter
	// MaxShardLatencyNS is the largest single shard's serial latency — the
	// critical path when shards execute in parallel hardware.
	MaxShardLatencyNS float64
	Shards            int
}

// CountKmersPIMParallel runs stage 1 on nShards independent PIM hash-table
// shards, each owning its own sub-platform and meter, processed by one
// goroutine per shard. K-mers route to shards by hash (the same correlated
// partitioning idea as Fig. 6, one level up), so shards share nothing and
// the merge is a concatenation.
//
// subarraysPerShard bounds each shard's table spread. The merged entries
// are identical to a serial software count — asserted by tests — and the
// merged meter matches the serial functional run's command totals.
func CountKmersPIMParallel(reads []*genome.Sequence, k, nShards, subarraysPerShard int) (*ParallelCountResult, error) {
	if nShards <= 0 {
		return nil, fmt.Errorf("assembly: non-positive shard count %d", nShards)
	}
	if len(reads) == 0 {
		return nil, fmt.Errorf("assembly: no reads")
	}

	// Pre-split the k-mer stream per shard (routing by high hash bits so
	// it stays independent of the table's own placement hashing).
	shardInput := make([][]kmer.Kmer, nShards)
	for _, r := range reads {
		kmer.Iterate(r, k, func(km kmer.Kmer) {
			s := int(km.Hash() >> 48 % uint64(nShards))
			shardInput[s] = append(shardInput[s], km)
		})
	}

	type shardOut struct {
		entries []kmer.Entry
		meter   *dram.Meter
		err     error
	}
	outs := make([]shardOut, nShards)
	var wg sync.WaitGroup
	for s := 0; s < nShards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			p := core.NewDefaultPlatform()
			tbl := core.NewHashTable(p, k, subarraysPerShard)
			for _, km := range shardInput[s] {
				if _, err := tbl.Add(km); err != nil {
					outs[s].err = fmt.Errorf("shard %d: %w", s, err)
					return
				}
			}
			outs[s] = shardOut{entries: tbl.Entries(), meter: p.Meter()}
		}(s)
	}
	wg.Wait()

	res := &ParallelCountResult{
		Meter:  dram.NewMeter(dram.DefaultTiming(), dram.DefaultEnergy()),
		Shards: nShards,
	}
	for s := range outs {
		if outs[s].err != nil {
			return nil, outs[s].err
		}
		res.Entries = append(res.Entries, outs[s].entries...)
		res.Meter.Merge(outs[s].meter)
		if outs[s].meter.LatencyNS > res.MaxShardLatencyNS {
			res.MaxShardLatencyNS = outs[s].meter.LatencyNS
		}
	}
	sort.Slice(res.Entries, func(a, b int) bool { return res.Entries[a].Kmer < res.Entries[b].Kmer })
	return res, nil
}
