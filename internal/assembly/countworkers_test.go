package assembly

import (
	"reflect"
	"runtime"
	"testing"

	"pimassembler/internal/genome"
	"pimassembler/internal/kmer"
	"pimassembler/internal/stats"
)

func countWorkersWorkload(seed uint64, genomeLen, readLen, n int, errRate float64) []*genome.Sequence {
	rng := stats.NewRNG(seed)
	ref := genome.GenerateGenome(genomeLen, rng)
	return genome.NewReadSampler(ref, readLen, errRate, rng).Sample(n)
}

// TestCountWorkersContigsIdentical is the end-to-end determinism pin for
// the parallel stage-1 counter: for the four PR-5 workload shapes, contigs,
// Euler walks, and every count-derived OpCounts field (probe statistics
// excepted — those legitimately reflect the partitioned layout) are
// identical between the serial path and CountWorkers ∈ {2, 4, NumCPU}.
func TestCountWorkersContigsIdentical(t *testing.T) {
	trials := []struct {
		name                         string
		seed                         uint64
		genomeLen, readLen, numReads int
		errRate                      float64
	}{
		{"clean reads", 21, 2_000, 101, 150, 0},
		{"erroneous reads", 22, 1_500, 80, 200, 0.01},
		{"short genome", 23, 400, 60, 64, 0},
		{"reads barely above k", 24, 900, 18, 120, 0},
	}
	for _, tr := range trials {
		t.Run(tr.name, func(t *testing.T) {
			reads := countWorkersWorkload(tr.seed, tr.genomeLen, tr.readLen, tr.numReads, tr.errRate)
			base, err := Assemble(reads, Options{K: 16})
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := base.Table.(*kmer.CountTable); !ok {
				t.Fatalf("serial path table is %T, want *kmer.CountTable", base.Table)
			}
			for _, workers := range []int{2, 4, runtime.NumCPU()} {
				res, err := Assemble(reads, Options{K: 16, CountWorkers: workers})
				if err != nil {
					t.Fatal(err)
				}
				if workers > 1 {
					if _, ok := res.Table.(*kmer.PartitionedTable); !ok {
						t.Fatalf("CountWorkers=%d table is %T, want *kmer.PartitionedTable", workers, res.Table)
					}
				}
				assertSameAssembly(t, workers, base, res)
			}
		})
	}
}

// TestCountWorkersOptionSurface drives the count-dependent option paths —
// MinCount trimming, simplification, and spectrum read correction — through
// the parallel counter and pins the contigs against the serial run.
func TestCountWorkersOptionSurface(t *testing.T) {
	reads := countWorkersWorkload(22, 1_500, 80, 200, 0.01)
	for _, opts := range []Options{
		{K: 14, MinCount: 2},
		{K: 14, Simplify: true},
		{K: 14, Correct: true, SolidThreshold: 3},
		{K: 14, MinCount: 2, Simplify: true, Correct: true},
	} {
		serialOpts := opts
		serial, err := Assemble(reads, serialOpts)
		if err != nil {
			t.Fatal(err)
		}
		parOpts := opts
		parOpts.CountWorkers = 4
		par, err := Assemble(reads, parOpts)
		if err != nil {
			t.Fatal(err)
		}
		assertSameAssembly(t, 4, serial, par)
	}
}

// assertSameAssembly compares every deterministic field of two software
// pipeline results: contigs byte for byte, walks, and the OpCounts the
// analytical models consume, minus the layout-dependent probe average.
func assertSameAssembly(t *testing.T, workers int, want, got *Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Contigs, want.Contigs) {
		t.Fatalf("CountWorkers=%d: contigs diverge from serial", workers)
	}
	if !reflect.DeepEqual(got.EulerWalk, want.EulerWalk) {
		t.Fatalf("CountWorkers=%d: Euler walk diverges from serial", workers)
	}
	if (got.EulerErr == nil) != (want.EulerErr == nil) {
		t.Fatalf("CountWorkers=%d: EulerErr presence diverges", workers)
	}
	if !reflect.DeepEqual(got.Scaffolds, want.Scaffolds) {
		t.Fatalf("CountWorkers=%d: scaffolds diverge from serial", workers)
	}
	if got.Table.Len() != want.Table.Len() {
		t.Fatalf("CountWorkers=%d: distinct k-mers %d, want %d", workers, got.Table.Len(), want.Table.Len())
	}
	gc, wc := got.Counts, want.Counts
	gc.AvgProbes, wc.AvgProbes = 0, 0
	if gc != wc {
		t.Fatalf("CountWorkers=%d: op counts diverge beyond AvgProbes:\n got %+v\nwant %+v", workers, gc, wc)
	}
}
