package assembly

import (
	"fmt"
	"sort"

	"pimassembler/internal/debruijn"
	"pimassembler/internal/genome"
	"pimassembler/internal/kmer"
)

// Mate-pair scaffolding: the insert-size-informed version of stage 3.
// Paired reads whose two ends anchor on different contigs witness those
// contigs' relative order and separation; accumulating the witnesses links
// contigs into ordered chains with estimated gaps — the step that closes
// the paper's "gaps between contigs" with evidence rather than overlap
// greed.

// MateScaffold is an ordered contig chain. Gaps[i] is the estimated gap in
// bases between Contigs[i] and Contigs[i+1] (negative means the contigs
// should overlap).
type MateScaffold struct {
	Contigs []int
	Gaps    []int
	// Support is the total number of read pairs backing the chain's links.
	Support int
}

// Span returns the scaffold's estimated total span in bases.
func (m MateScaffold) Span(contigs []debruijn.Contig) int {
	span := 0
	for _, ci := range m.Contigs {
		span += contigs[ci].Seq.Len()
	}
	for _, g := range m.Gaps {
		span += g
	}
	return span
}

// contigAnchor locates a read on a contig: which contig and at what offset.
type contigAnchor struct {
	contig int
	offset int
	unique bool
}

// anchorIndex maps k-mers to their (unique) contig positions.
type anchorIndex struct {
	k     int
	sites map[kmer.Kmer]contigAnchor
}

func buildAnchorIndex(contigs []debruijn.Contig, k int) *anchorIndex {
	idx := &anchorIndex{k: k, sites: make(map[kmer.Kmer]contigAnchor)}
	for ci, c := range contigs {
		offset := 0
		kmer.Iterate(c.Seq, k, func(km kmer.Kmer) {
			if prev, seen := idx.sites[km]; seen {
				prev.unique = false
				idx.sites[km] = prev
			} else {
				idx.sites[km] = contigAnchor{contig: ci, offset: offset, unique: true}
			}
			offset++
		})
	}
	return idx
}

// anchor locates a read by its first uniquely-placed k-mer.
func (idx *anchorIndex) anchor(read *genome.Sequence) (contigAnchor, bool) {
	found := contigAnchor{}
	ok := false
	pos := 0
	kmer.Iterate(read, idx.k, func(km kmer.Kmer) {
		if ok {
			return
		}
		if a, seen := idx.sites[km]; seen && a.unique {
			// Project the read's start position onto the contig.
			found = contigAnchor{contig: a.contig, offset: a.offset - pos, unique: true}
			ok = true
		}
		pos++
	})
	return found, ok
}

// link accumulates evidence between an ordered contig pair.
type link struct {
	votes  int
	gapSum int
}

// MatePairScaffold orders contigs using paired-end evidence. k is the
// anchoring k-mer length (use the assembly k), meanInsert the library's
// mean insert size, and minSupport the number of concordant pairs required
// before a link is trusted.
func MatePairScaffold(contigs []debruijn.Contig, pairs []genome.ReadPair, k, meanInsert, minSupport int) []MateScaffold {
	if k <= 0 || k > kmer.MaxK {
		panic(fmt.Sprintf("assembly: k=%d outside [1,%d]", k, kmer.MaxK))
	}
	if minSupport <= 0 {
		panic(fmt.Sprintf("assembly: minSupport %d must be positive", minSupport))
	}
	idx := buildAnchorIndex(contigs, k)

	links := make(map[[2]int]*link)
	for _, p := range pairs {
		if p.R1.Len() < k || p.R2.Len() < k {
			continue
		}
		a1, ok1 := idx.anchor(p.R1)
		// R2 is reverse-complemented; its forward-strand image anchors the
		// fragment tail.
		fwd2 := p.R2.ReverseComplement()
		a2, ok2 := idx.anchor(fwd2)
		if !ok1 || !ok2 || a1.contig == a2.contig {
			continue
		}
		// Gap = insert − (tail of contig A past R1) − (head of contig B
		// through R2's end).
		lenA := contigs[a1.contig].Seq.Len()
		gap := meanInsert - (lenA - a1.offset) - (a2.offset + fwd2.Len())
		key := [2]int{a1.contig, a2.contig}
		l := links[key]
		if l == nil {
			l = &link{}
			links[key] = l
		}
		l.votes++
		l.gapSum += gap
	}

	// Greedy chaining: strongest links first; each contig gets at most one
	// successor and one predecessor; reject cycles.
	type cand struct {
		from, to int
		votes    int
		gap      int
	}
	var cands []cand
	for key, l := range links {
		if l.votes >= minSupport {
			cands = append(cands, cand{key[0], key[1], l.votes, l.gapSum / l.votes})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].votes != cands[b].votes {
			return cands[a].votes > cands[b].votes
		}
		if cands[a].from != cands[b].from {
			return cands[a].from < cands[b].from
		}
		return cands[a].to < cands[b].to
	})

	next := make(map[int]cand)
	prev := make(map[int]int)
	chainEnd := make(map[int]int) // chain head -> current tail, for cycle checks
	head := make(map[int]int)     // contig -> its chain head
	for i := range contigs {
		head[i] = i
		chainEnd[i] = i
	}
	for _, c := range cands {
		if _, taken := next[c.from]; taken {
			continue
		}
		if _, taken := prev[c.to]; taken {
			continue
		}
		if head[c.from] == head[c.to] {
			continue // would close a cycle
		}
		next[c.from] = c
		prev[c.to] = c.from
		// Merge chains: everything in to's chain now heads at from's head.
		h := head[c.from]
		tail := chainEnd[head[c.to]]
		for n := c.to; ; {
			head[n] = h
			nx, okn := next[n]
			if !okn {
				break
			}
			n = nx.to
		}
		chainEnd[h] = tail
	}

	// Emit chains from heads.
	var out []MateScaffold
	for i := range contigs {
		if _, hasPrev := prev[i]; hasPrev {
			continue
		}
		ms := MateScaffold{Contigs: []int{i}}
		for cur := i; ; {
			c, ok := next[cur]
			if !ok {
				break
			}
			ms.Contigs = append(ms.Contigs, c.to)
			ms.Gaps = append(ms.Gaps, c.gap)
			ms.Support += c.votes
			cur = c.to
		}
		out = append(out, ms)
	}
	sort.Slice(out, func(a, b int) bool {
		if len(out[a].Contigs) != len(out[b].Contigs) {
			return len(out[a].Contigs) > len(out[b].Contigs)
		}
		return out[a].Contigs[0] < out[b].Contigs[0]
	})
	return out
}
