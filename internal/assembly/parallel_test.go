package assembly

import (
	"testing"

	"pimassembler/internal/genome"
	"pimassembler/internal/kmer"
	"pimassembler/internal/stats"
)

func TestParallelCountMatchesSoftware(t *testing.T) {
	rng := stats.NewRNG(60)
	ref := genome.GenerateGenome(2000, rng)
	reads := genome.NewReadSampler(ref, 90, 0, rng).Sample(300)
	k := 14

	res, err := CountKmersPIMParallel(reads, k, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	refTbl := kmer.CountReads(reads, k)
	refEntries := refTbl.Entries()
	if len(res.Entries) != len(refEntries) {
		t.Fatalf("entry count %d, want %d", len(res.Entries), len(refEntries))
	}
	for i := range refEntries {
		if res.Entries[i] != refEntries[i] {
			t.Fatalf("entry %d: %+v != %+v", i, res.Entries[i], refEntries[i])
		}
	}
	if res.Shards != 4 {
		t.Fatalf("shards %d", res.Shards)
	}
}

func TestParallelCountMeterConsistency(t *testing.T) {
	rng := stats.NewRNG(61)
	reads := genome.NewReadSampler(genome.GenerateGenome(1000, rng), 80, 0, rng).Sample(100)
	res, err := CountKmersPIMParallel(reads, 12, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Meter.TotalCommands() == 0 {
		t.Fatal("merged meter empty")
	}
	// The parallel critical path is bounded by the serial total and must
	// be at most the whole but at least total/shards.
	if res.MaxShardLatencyNS <= 0 || res.MaxShardLatencyNS > res.Meter.LatencyNS {
		t.Fatalf("critical path %.1f vs serial %.1f", res.MaxShardLatencyNS, res.Meter.LatencyNS)
	}
	if res.MaxShardLatencyNS < res.Meter.LatencyNS/float64(res.Shards)/2 {
		t.Fatal("critical path implausibly short; shard imbalance bug?")
	}
}

func TestParallelCountDeterministic(t *testing.T) {
	rng := stats.NewRNG(62)
	reads := genome.NewReadSampler(genome.GenerateGenome(800, rng), 70, 0, rng).Sample(80)
	a, err := CountKmersPIMParallel(reads, 11, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CountKmersPIMParallel(reads, 11, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Entries) != len(b.Entries) {
		t.Fatal("nondeterministic entry count")
	}
	for i := range a.Entries {
		if a.Entries[i] != b.Entries[i] {
			t.Fatal("nondeterministic entries")
		}
	}
	if a.Meter.TotalCommands() != b.Meter.TotalCommands() {
		t.Fatal("nondeterministic command counts")
	}
}

func TestParallelCountValidation(t *testing.T) {
	if _, err := CountKmersPIMParallel(nil, 12, 2, 4); err == nil {
		t.Fatal("empty reads accepted")
	}
	rng := stats.NewRNG(63)
	reads := []*genome.Sequence{genome.GenerateGenome(50, rng)}
	if _, err := CountKmersPIMParallel(reads, 12, 0, 4); err == nil {
		t.Fatal("zero shards accepted")
	}
}
