package assembly

import (
	"math"
	"testing"

	"pimassembler/internal/debruijn"
	"pimassembler/internal/genome"
	"pimassembler/internal/stats"
)

// cutContigs slices a reference into contigs with known gaps, shuffled.
func cutContigs(ref *genome.Sequence, cuts []int, gap int, rng *stats.RNG) ([]debruijn.Contig, []int) {
	var contigs []debruijn.Contig
	pos := 0
	for _, length := range cuts {
		contigs = append(contigs, debruijn.Contig{
			Seq: ref.Subsequence(pos, length), EdgeCount: length, MeanCoverage: 1,
		})
		pos += length + gap
	}
	order := rng.Perm(len(contigs))
	shuffled := make([]debruijn.Contig, len(contigs))
	trueIndex := make([]int, len(contigs)) // shuffled position of true piece i
	for newPos, origIdx := range order {
		shuffled[newPos] = contigs[origIdx]
		trueIndex[origIdx] = newPos
	}
	return shuffled, trueIndex
}

func TestMatePairScaffoldRecoversOrder(t *testing.T) {
	rng := stats.NewRNG(200)
	ref := genome.GenerateGenome(6000, rng)
	const gap = 50
	contigs, trueIdx := cutContigs(ref, []int{1200, 1500, 1100, 1300}, gap, rng)

	sampler := genome.NewPairedSampler(ref, 60, 400, 20, 0, rng)
	pairs := sampler.Sample(3000)

	scaffolds := MatePairScaffold(contigs, pairs, 21, 400, 3)
	if len(scaffolds) != 1 {
		t.Fatalf("got %d scaffolds, want one chain", len(scaffolds))
	}
	got := scaffolds[0].Contigs
	if len(got) != 4 {
		t.Fatalf("chain has %d contigs, want 4", len(got))
	}
	for i, want := range trueIdx {
		if got[i] != want {
			t.Fatalf("position %d: contig %d, want %d (chain %v)", i, got[i], want, got)
		}
	}
	// Gap estimates near the true 50 bp (insert-size noise allows slack).
	for i, g := range scaffolds[0].Gaps {
		if math.Abs(float64(g-gap)) > 40 {
			t.Errorf("gap %d estimated %d, want ~%d", i, g, gap)
		}
	}
	if scaffolds[0].Support < 9 {
		t.Errorf("support %d implausibly low", scaffolds[0].Support)
	}
}

func TestMatePairScaffoldSpan(t *testing.T) {
	rng := stats.NewRNG(201)
	ref := genome.GenerateGenome(4000, rng)
	contigs, _ := cutContigs(ref, []int{1000, 1000, 1000}, 100, rng)
	pairs := genome.NewPairedSampler(ref, 60, 500, 25, 0, rng).Sample(2500)
	scaffolds := MatePairScaffold(contigs, pairs, 21, 500, 3)
	if len(scaffolds) != 1 {
		t.Fatalf("got %d scaffolds", len(scaffolds))
	}
	span := scaffolds[0].Span(contigs)
	// True span: 3x1000 + 2x100 = 3200.
	if span < 3000 || span > 3400 {
		t.Fatalf("span %d far from 3200", span)
	}
}

func TestMatePairScaffoldUnlinkedStaySeparate(t *testing.T) {
	rng := stats.NewRNG(202)
	// Two unrelated references; pairs only from the first.
	refA := genome.GenerateGenome(2000, rng)
	refB := genome.GenerateGenome(1500, rng)
	contigs := []debruijn.Contig{
		{Seq: refA.Subsequence(0, 900), EdgeCount: 900, MeanCoverage: 1},
		{Seq: refA.Subsequence(1000, 900), EdgeCount: 900, MeanCoverage: 1},
		{Seq: refB, EdgeCount: refB.Len(), MeanCoverage: 1},
	}
	pairs := genome.NewPairedSampler(refA, 60, 400, 20, 0, rng).Sample(2000)
	scaffolds := MatePairScaffold(contigs, pairs, 21, 400, 3)
	if len(scaffolds) != 2 {
		t.Fatalf("got %d scaffolds, want 2 (chain + singleton)", len(scaffolds))
	}
	if len(scaffolds[0].Contigs) != 2 || scaffolds[0].Contigs[0] != 0 || scaffolds[0].Contigs[1] != 1 {
		t.Fatalf("chain %v, want [0 1]", scaffolds[0].Contigs)
	}
	if len(scaffolds[1].Contigs) != 1 || scaffolds[1].Contigs[0] != 2 {
		t.Fatalf("singleton %v, want [2]", scaffolds[1].Contigs)
	}
}

func TestMatePairScaffoldMinSupportFilters(t *testing.T) {
	rng := stats.NewRNG(203)
	ref := genome.GenerateGenome(3000, rng)
	contigs, _ := cutContigs(ref, []int{1400, 1400}, 60, rng)
	// Too few pairs to reach the support threshold.
	pairs := genome.NewPairedSampler(ref, 60, 400, 20, 0, rng).Sample(10)
	scaffolds := MatePairScaffold(contigs, pairs, 21, 400, 50)
	if len(scaffolds) != 2 {
		t.Fatalf("weakly-supported link accepted: %d scaffolds", len(scaffolds))
	}
}

func TestMatePairScaffoldEndToEnd(t *testing.T) {
	// Full pipeline: repeat-fragmented assembly, then mate pairs stitch the
	// contigs back into chains.
	rng := stats.NewRNG(204)
	ref := genome.GenerateRepetitiveGenome(8000, 400, 3, rng)
	pairs := genome.NewPairedSampler(ref, 80, 600, 30, 0, rng).Sample(4000)
	reads := genome.Flatten(pairs)
	res, err := Assemble(reads, Options{K: 21})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Contigs) < 2 {
		t.Skip("assembly not fragmented; repeats did not collide")
	}
	scaffolds := MatePairScaffold(res.Contigs, pairs, 21, 600, 3)
	if len(scaffolds) >= len(res.Contigs) {
		t.Fatalf("scaffolding linked nothing: %d contigs -> %d scaffolds",
			len(res.Contigs), len(scaffolds))
	}
	// Every contig appears exactly once across scaffolds.
	seen := make(map[int]bool)
	for _, s := range scaffolds {
		for _, c := range s.Contigs {
			if seen[c] {
				t.Fatalf("contig %d in two scaffolds", c)
			}
			seen[c] = true
		}
	}
	if len(seen) != len(res.Contigs) {
		t.Fatalf("%d of %d contigs placed", len(seen), len(res.Contigs))
	}
}

func TestPairedSamplerGeometry(t *testing.T) {
	rng := stats.NewRNG(205)
	ref := genome.GenerateGenome(5000, rng)
	s := genome.NewPairedSampler(ref, 50, 300, 0, 0, rng)
	p := s.Next()
	if p.R1.Len() != 50 || p.R2.Len() != 50 {
		t.Fatal("read lengths wrong")
	}
	if p.InsertSize != 300 {
		t.Fatalf("insert %d, want 300 with zero std", p.InsertSize)
	}
	// R1 must occur verbatim; R2's reverse complement must occur.
	text := ref.String()
	if !contains(text, p.R1.String()) {
		t.Fatal("R1 not in genome")
	}
	if !contains(text, p.R2.ReverseComplement().String()) {
		t.Fatal("R2 revcomp not in genome")
	}
}

func contains(hay, needle string) bool {
	for i := 0; i+len(needle) <= len(hay); i++ {
		if hay[i:i+len(needle)] == needle {
			return true
		}
	}
	return false
}

func TestPairedSamplerPanics(t *testing.T) {
	rng := stats.NewRNG(206)
	g := genome.GenerateGenome(1000, rng)
	for _, f := range []func(){
		func() { genome.NewPairedSampler(g, 100, 150, 0, 0, rng) }, // insert < 2*readLen
		func() { genome.NewPairedSampler(g, 50, 990, 10, 0, rng) }, // insert too large
		func() { genome.NewPairedSampler(g, 50, 300, 0, 1.0, rng) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
