package assembly

import (
	"fmt"
	"io"
	"time"

	"pimassembler/internal/genome"
	"pimassembler/internal/kmer"
)

// AssembleSource runs the software reference pipeline over a streaming
// read source. With Options.StreamStage1 set (and the serial, uncorrected
// configuration it requires), stage 1 counts k-mers one read at a time
// into a grow-on-demand table, so resident memory is bounded by the record
// in flight plus the k-mer table and graph — never the read set. Otherwise
// the source is drained and handed to Assemble, which pre-sizes the table
// from the whole input.
//
// Both paths insert exactly the same k-mers in the same order, so contigs,
// entries, counts, and spectra are byte-identical to Assemble over the
// same reads; only the probe statistics (OpCounts.AvgProbes) reflect the
// table-growth layout of the chosen path.
func AssembleSource(src genome.ReadSource, opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("assembly: no reads")
	}
	if !opts.StreamStage1 || opts.Correct || opts.CountWorkers > 1 {
		reads, err := genome.ReadAll(src)
		if err != nil {
			return nil, err
		}
		return Assemble(reads, opts)
	}

	res := &Result{Options: opts}
	table := kmer.NewCountTable(opts.K, 0)
	var totals workloadTotals
	start := time.Now()
	for {
		r, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		totals.add(r, opts.K)
		kmer.Iterate(r, opts.K, func(km kmer.Kmer) { table.Add(km) })
	}
	if totals.reads == 0 {
		return nil, fmt.Errorf("assembly: no reads")
	}
	res.Table = table
	res.Timings.Hashmap = time.Since(start)

	finishStages(res, opts)
	res.Counts = measureCounts(totals, res)
	return res, nil
}
