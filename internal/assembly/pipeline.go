// Package assembly orchestrates the paper's three-stage genome-assembly
// pipeline (Fig. 5a): (1) k-mer analysis building the frequency hash table,
// (2) contig generation via de Bruijn graph construction and traversal, and
// (3) scaffolding. The paper parallelises stages 1-2 on PIM-Assembler and
// leaves stage 3 to future work; this package provides both the software
// reference pipeline, the PIM-functional pipeline running on the simulated
// hardware, and the operation-count extraction that feeds the analytical
// performance models.
package assembly

import (
	"fmt"
	"time"

	"pimassembler/internal/correct"
	"pimassembler/internal/debruijn"
	"pimassembler/internal/genome"
	"pimassembler/internal/kmer"
)

// Options configures a pipeline run.
type Options struct {
	// K is the k-mer length (the paper sweeps 16, 22, 26, 32).
	K int
	// MinCount drops k-mers observed fewer times before graph construction
	// (0 or 1 keeps everything).
	MinCount uint32
	// UseFleury selects the paper's Fleury traversal for the Euler stage
	// instead of Hierholzer (slow; only sensible on small graphs).
	UseFleury bool
	// Simplify runs the Velvet-style error-removal passes (tip clipping
	// and bubble popping) after graph construction. Combine with MinCount
	// for noisy reads.
	Simplify bool
	// Correct runs k-mer-spectrum read correction before counting (input
	// reads are copied, not mutated). SolidThreshold sets the trusted-count
	// floor (default 3 when zero).
	Correct        bool
	SolidThreshold uint32
	// Scaffold enables stage 3 (greedy overlap scaffolding).
	Scaffold bool
	// MinOverlap is the minimum contig overlap stage 3 will join on.
	MinOverlap int
	// ParallelStage1 shards stage 1 of AssemblePIM across the hash table's
	// sub-arrays with a bank-keyed worker pool (bit-identical to the serial
	// path; ignored by the software reference pipeline).
	ParallelStage1 bool
	// CountWorkers fans stage 1 of the software pipeline out over the
	// hash-partitioned parallel counter (kmer.CountReadsParallel) with this
	// many workers. 0 or 1 keeps the pinned serial kmer.CountReads path,
	// byte-identical to previous releases. Contigs, entries, counts, and
	// spectra are identical for any value; the probe statistics feeding
	// OpCounts.AvgProbes reflect the partitioned layout when parallel (and
	// are themselves invariant in the worker count).
	CountWorkers int
	// StreamStage1 makes AssembleSource count stage-1 k-mers one read at a
	// time into a grow-on-demand table instead of draining the source into
	// a slice first, so resident memory is bounded by the record in flight
	// plus the table — the out-of-core spill path sets this. It only takes
	// effect on the serial, uncorrected path (Correct and CountWorkers > 1
	// need the full read set); Assemble ignores it. Contigs, entries, and
	// counts are identical either way; only the probe statistics differ
	// (the streamed table grows instead of being pre-sized).
	StreamStage1 bool
}

// DefaultOptions returns a pipeline configuration matching the paper's
// primary setting (k = 16, no trimming, stages 1-2).
func DefaultOptions() Options {
	return Options{K: 16, MinCount: 0, MinOverlap: 12}
}

func (o Options) validate() error {
	if o.K < 2 || o.K > kmer.MaxK {
		return fmt.Errorf("assembly: k=%d outside [2,%d]", o.K, kmer.MaxK)
	}
	if o.Scaffold && o.MinOverlap <= 0 {
		return fmt.Errorf("assembly: scaffolding needs a positive overlap, got %d", o.MinOverlap)
	}
	return nil
}

// StageTimings records wall-clock spent in each software stage.
type StageTimings struct {
	Hashmap  time.Duration
	DeBruijn time.Duration
	Traverse time.Duration
	Scaffold time.Duration
}

// Result is a completed assembly.
type Result struct {
	Options Options
	// Table is the stage-1 counter: *kmer.CountTable on the serial path,
	// *kmer.PartitionedTable when Options.CountWorkers > 1.
	Table     kmer.Counter
	Graph     *debruijn.Graph
	Contigs   []debruijn.Contig
	Scaffolds []Scaffold
	// EulerWalk is the Eulerian node walk when one exists (nil otherwise);
	// contigs never depend on it.
	EulerWalk []kmer.Kmer
	// EulerErr is why no Eulerian walk was emitted (nil when EulerWalk is
	// set). Real read sets rarely form a single Eulerian component, so this
	// is diagnostic, not fatal.
	EulerErr error
	Timings  StageTimings
	Counts   OpCounts
}

// Assemble runs the software reference pipeline over reads.
func Assemble(reads []*genome.Sequence, opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if len(reads) == 0 {
		return nil, fmt.Errorf("assembly: no reads")
	}
	res := &Result{Options: opts}

	// Stage 0 (optional): spectrum-based read correction on copies.
	if opts.Correct {
		threshold := opts.SolidThreshold
		if threshold == 0 {
			threshold = 3
		}
		copies := make([]*genome.Sequence, len(reads))
		for i, r := range reads {
			copies[i] = r.Subsequence(0, r.Len())
		}
		correct.FromReadsWorkers(copies, opts.K, threshold, 4, opts.CountWorkers).CorrectAll(copies)
		reads = copies
	}

	// Stage 1: k-mer analysis (Hashmap procedure) — serial reference table,
	// or the hash-partitioned parallel counter when CountWorkers > 1.
	start := time.Now()
	if opts.CountWorkers > 1 {
		res.Table = kmer.CountReadsParallel(reads, opts.K, opts.CountWorkers)
	} else {
		res.Table = kmer.CountReads(reads, opts.K)
	}
	res.Timings.Hashmap = time.Since(start)

	finishStages(res, opts)
	res.Counts = measureCounts(totalsOf(reads, opts.K), res)
	return res, nil
}

// finishStages runs stages 2a, 2b, and 3 from the populated stage-1 table —
// the shared tail of the slice-backed and streaming entry points. Both call
// it with identical table contents, which is what makes their contigs
// byte-identical.
func finishStages(res *Result, opts Options) {
	// Stage 2a: de Bruijn graph construction (dense interned-ID/CSR core,
	// pre-sized from the table so the build path never regrows).
	start := time.Now()
	if opts.MinCount > 1 {
		entries := res.Table.FilterMinCount(opts.MinCount)
		g := debruijn.NewGraphHint(opts.K, len(entries)+1, len(entries))
		for _, e := range entries {
			g.AddKmer(e.Kmer, e.Count)
		}
		res.Graph = g
	} else {
		res.Graph = debruijn.Build(res.Table)
	}
	if opts.Simplify {
		res.Graph.Simplify(2*opts.K, 2*opts.K, 10)
	}
	res.Timings.DeBruijn = time.Since(start)

	// Stage 2b: traversal and contig emission.
	start = time.Now()
	if opts.UseFleury {
		if walk, err := res.Graph.FleuryPath(); err == nil {
			res.EulerWalk = walk
		} else {
			res.EulerErr = err
		}
	} else if walk, err := res.Graph.EulerPath(); err == nil {
		res.EulerWalk = walk
	} else {
		res.EulerErr = err
	}
	res.Contigs = res.Graph.Contigs()
	res.Timings.Traverse = time.Since(start)

	// Stage 3: scaffolding (the paper's future work; our extension).
	if opts.Scaffold {
		start = time.Now()
		res.Scaffolds = ScaffoldContigs(res.Contigs, opts.MinOverlap)
		res.Timings.Scaffold = time.Since(start)
	}
}

// workloadTotals are the whole-input aggregates feeding OpCounts; the
// slice path measures them in one pass, the streaming path accumulates
// them read by read.
type workloadTotals struct {
	reads int64 // read count
	bases int64 // summed read length
	kmers int64 // total k-mer occurrences
}

// add folds one read into the totals.
func (t *workloadTotals) add(r *genome.Sequence, k int) {
	t.reads++
	t.bases += int64(r.Len())
	if r.Len() >= k {
		t.kmers += int64(r.Len() - k + 1)
	}
}

// totalsOf measures a read slice in one pass.
func totalsOf(reads []*genome.Sequence, k int) workloadTotals {
	var t workloadTotals
	for _, r := range reads {
		t.add(r, k)
	}
	return t
}

// measureCounts extracts the operation counts of this run for the
// analytical models.
func measureCounts(t workloadTotals, res *Result) OpCounts {
	probes := res.Table.ProbeOps()
	avg := 1.0
	if t.kmers > 0 {
		avg = float64(probes) / float64(t.kmers)
	}
	readLen := 0
	if t.reads > 0 {
		readLen = int((t.bases + t.reads/2) / t.reads)
	}
	return OpCounts{
		K:             res.Options.K,
		ReadCount:     t.reads,
		ReadLen:       readLen,
		TotalKmers:    float64(t.kmers),
		DistinctKmers: float64(res.Table.Len()),
		AvgProbes:     avg,
		Nodes:         float64(res.Graph.NumNodes()),
		Edges:         float64(res.Graph.NumEdges()),
		CounterBits:   32,
		DegreeBits:    9,
	}
}
