package assembly

import (
	"strings"
	"testing"
	"testing/quick"

	"pimassembler/internal/core"
	"pimassembler/internal/debruijn"
	"pimassembler/internal/genome"
	"pimassembler/internal/stats"
)

func TestAssembleReconstructsCleanGenome(t *testing.T) {
	rng := stats.NewRNG(100)
	ref := genome.GenerateGenome(3000, rng)
	reads := genome.TilingReads(ref, 101, 60)
	res, err := Assemble(reads, Options{K: 21})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Contigs) != 1 {
		t.Fatalf("clean tiled genome produced %d contigs", len(res.Contigs))
	}
	if res.Contigs[0].Seq.String() != ref.String() {
		t.Fatal("contig does not reconstruct the genome")
	}
}

func TestAssembleValidatesOptions(t *testing.T) {
	reads := []*genome.Sequence{genome.MustFromString("ACGTACGTACGT")}
	if _, err := Assemble(reads, Options{K: 1}); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := Assemble(reads, Options{K: 33}); err == nil {
		t.Fatal("k=33 accepted")
	}
	if _, err := Assemble(nil, Options{K: 16}); err == nil {
		t.Fatal("empty reads accepted")
	}
	if _, err := Assemble(reads, Options{K: 8, Scaffold: true, MinOverlap: 0}); err == nil {
		t.Fatal("scaffolding without overlap accepted")
	}
}

func TestAssembleMinCountFiltersErrors(t *testing.T) {
	rng := stats.NewRNG(7)
	ref := genome.GenerateGenome(2000, rng)
	// High coverage with sequencing errors: true k-mers appear many times,
	// error k-mers once or twice.
	sampler := genome.NewReadSampler(ref, 80, 0.003, rng)
	reads := sampler.Sample(800)
	noisy, err := Assemble(reads, Options{K: 17})
	if err != nil {
		t.Fatal(err)
	}
	trimmed, err := Assemble(reads, Options{K: 17, MinCount: 3})
	if err != nil {
		t.Fatal(err)
	}
	if trimmed.Graph.NumEdges() >= noisy.Graph.NumEdges() {
		t.Fatalf("trimming did not shrink the graph: %d vs %d edges",
			trimmed.Graph.NumEdges(), noisy.Graph.NumEdges())
	}
	// Trimmed assembly should be much closer to the true k-mer count.
	trueDistinct := 2000 - 17 + 1
	if trimmed.Graph.NumEdges() > int(float64(trueDistinct)*1.05) {
		t.Fatalf("trimmed graph still has %d edges vs %d true k-mers",
			trimmed.Graph.NumEdges(), trueDistinct)
	}
}

func TestAssembleTimingsPopulated(t *testing.T) {
	rng := stats.NewRNG(8)
	reads := genome.TilingReads(genome.GenerateGenome(1000, rng), 60, 30)
	res, err := Assemble(reads, Options{K: 15})
	if err != nil {
		t.Fatal(err)
	}
	if res.Timings.Hashmap <= 0 || res.Timings.DeBruijn <= 0 || res.Timings.Traverse <= 0 {
		t.Fatalf("stage timings not recorded: %+v", res.Timings)
	}
}

func TestAssembleFleuryOnSmallInput(t *testing.T) {
	rng := stats.NewRNG(9)
	ref := genome.GenerateGenome(120, rng)
	reads := genome.TilingReads(ref, 60, 40)
	h, err := Assemble(reads, Options{K: 12})
	if err != nil {
		t.Fatal(err)
	}
	f, err := Assemble(reads, Options{K: 12, UseFleury: true})
	if err != nil {
		t.Fatal(err)
	}
	if (h.EulerWalk == nil) != (f.EulerWalk == nil) {
		t.Fatal("Fleury and Hierholzer disagree on traversability")
	}
	if len(h.Contigs) != len(f.Contigs) {
		t.Fatal("traversal choice changed the contig set")
	}
}

func TestMeasuredCountsConsistent(t *testing.T) {
	rng := stats.NewRNG(10)
	reads := genome.TilingReads(genome.GenerateGenome(1500, rng), 75, 40)
	res, err := Assemble(reads, Options{K: 14})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Counts
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	wantTotal := float64(len(reads) * (75 - 14 + 1))
	if c.TotalKmers != wantTotal {
		t.Fatalf("total k-mers %.0f, want %.0f", c.TotalKmers, wantTotal)
	}
	if int(c.DistinctKmers) != res.Table.Len() {
		t.Fatal("distinct count mismatch")
	}
	if int(c.Edges) != res.Graph.NumEdges() {
		t.Fatal("edge count mismatch")
	}
}

func TestPaperOpCountsShape(t *testing.T) {
	w := genome.PaperChr14()
	prevTotal := 1e30
	for _, k := range w.KmerRanges {
		c := PaperOpCounts(w, k)
		if err := c.Validate(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		// Total k-mers strictly decrease with k (fewer per read).
		if c.TotalKmers >= prevTotal {
			t.Fatalf("k=%d: total k-mers not decreasing", k)
		}
		prevTotal = c.TotalKmers
		// Distinct k-mers ≈ genome size at this coverage.
		if c.DistinctKmers < 5e7 || c.DistinctKmers > 9e7 {
			t.Fatalf("k=%d: distinct %.3g implausible for chr14", k, c.DistinctKmers)
		}
	}
	if got := PaperOpCounts(w, 16).TotalKmers; got != 45_711_162*86 {
		t.Fatalf("k=16 total %.0f, want reads×86", got)
	}
}

func TestScaffoldJoinsOverlaps(t *testing.T) {
	// Two contigs with a 20-base overlap must join into one scaffold.
	rng := stats.NewRNG(11)
	whole := genome.GenerateGenome(300, rng)
	a := whole.Subsequence(0, 180)
	b := whole.Subsequence(160, 140)
	contigs := contigsOf(a, b)
	scaffolds := ScaffoldContigs(contigs, 12)
	if len(scaffolds) != 1 {
		t.Fatalf("got %d scaffolds, want 1", len(scaffolds))
	}
	if scaffolds[0].Seq.String() != whole.String() {
		t.Fatal("scaffold did not reconstruct the source")
	}
	if scaffolds[0].Contigs != 2 {
		t.Fatalf("scaffold chained %d contigs, want 2", scaffolds[0].Contigs)
	}
}

func TestScaffoldLeavesDisjointContigs(t *testing.T) {
	rng := stats.NewRNG(12)
	a := genome.GenerateGenome(100, rng)
	b := genome.GenerateGenome(100, rng)
	scaffolds := ScaffoldContigs(contigsOf(a, b), 15)
	if len(scaffolds) != 2 {
		t.Fatalf("disjoint contigs merged: %d scaffolds", len(scaffolds))
	}
}

func TestScaffoldPanicsOnBadOverlap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ScaffoldContigs(nil, 0)
}

// Property: scaffolding never loses bases — total scaffold length equals
// total contig length minus the joined overlaps, and every contig appears
// in exactly one scaffold.
func TestScaffoldConservation(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 2 + rng.Intn(6)
		var contigs []*genome.Sequence
		for i := 0; i < n; i++ {
			contigs = append(contigs, genome.GenerateGenome(30+rng.Intn(100), rng))
		}
		scaffolds := ScaffoldContigs(contigsOf(contigs...), 10)
		total := 0
		count := 0
		for _, s := range scaffolds {
			total += s.Seq.Len()
			count += s.Contigs
		}
		sum := 0
		for _, c := range contigs {
			sum += c.Len()
		}
		return count == n && total <= sum && total > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func contigsOf(seqs ...*genome.Sequence) []debruijn.Contig {
	out := make([]debruijn.Contig, len(seqs))
	for i, s := range seqs {
		out[i] = debruijn.Contig{Seq: s, EdgeCount: s.Len(), MeanCoverage: 1}
	}
	return out
}

func TestPIMAssemblyMatchesSoftware(t *testing.T) {
	rng := stats.NewRNG(55)
	ref := genome.GenerateGenome(1200, rng)
	reads := genome.NewReadSampler(ref, 90, 0, rng).Sample(120)
	opts := Options{K: 15}
	sw, err := Assemble(reads, opts)
	if err != nil {
		t.Fatal(err)
	}
	p := core.NewDefaultPlatform()
	pim, err := AssemblePIM(p, reads, opts, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Contigs) != len(pim.Contigs) {
		t.Fatalf("contig counts differ: software %d, PIM %d", len(sw.Contigs), len(pim.Contigs))
	}
	for i := range sw.Contigs {
		if !sw.Contigs[i].Seq.Equal(pim.Contigs[i].Seq) {
			t.Fatalf("contig %d differs:\n  sw:  %s\n  pim: %s",
				i, sw.Contigs[i].Seq, pim.Contigs[i].Seq)
		}
	}
	if p.Meter().TotalCommands() == 0 {
		t.Fatal("PIM run issued no DRAM commands")
	}
}

func TestPIMAssemblyScaffoldOption(t *testing.T) {
	rng := stats.NewRNG(56)
	reads := genome.NewReadSampler(genome.GenerateGenome(800, rng), 70, 0, rng).Sample(100)
	p := core.NewDefaultPlatform()
	res, err := AssemblePIM(p, reads, Options{K: 13, Scaffold: true, MinOverlap: 10}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scaffolds) == 0 || len(res.Scaffolds) > len(res.Contigs) {
		t.Fatalf("scaffolds %d vs contigs %d", len(res.Scaffolds), len(res.Contigs))
	}
}

func TestAssemblyHandlesRepeats(t *testing.T) {
	rng := stats.NewRNG(57)
	ref := genome.GenerateRepetitiveGenome(4000, 250, 4, rng)
	reads := genome.NewReadSampler(ref, 101, 0, rng).Sample(1200)
	res, err := Assemble(reads, Options{K: 16})
	if err != nil {
		t.Fatal(err)
	}
	// Repeats break the assembly into several contigs; every contig must
	// be a genuine substring of the reference (no chimeras on clean reads
	// as long as k-mers don't collide across repeat boundaries — verify
	// the vast majority are exact).
	text := ref.String()
	exact := 0
	for _, c := range res.Contigs {
		if strings.Contains(text, c.Seq.String()) {
			exact++
		}
	}
	if float64(exact) < 0.9*float64(len(res.Contigs)) {
		t.Fatalf("only %d/%d contigs are reference substrings", exact, len(res.Contigs))
	}
}

func TestAssembleSimplifyOption(t *testing.T) {
	rng := stats.NewRNG(90)
	ref := genome.GenerateGenome(2500, rng)
	reads := genome.NewReadSampler(ref, 80, 0.004, rng).Sample(1200)
	plain, err := Assemble(reads, Options{K: 15, MinCount: 3})
	if err != nil {
		t.Fatal(err)
	}
	cleaned, err := Assemble(reads, Options{K: 15, MinCount: 3, Simplify: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(cleaned.Contigs) > len(plain.Contigs) {
		t.Fatalf("simplification increased fragmentation: %d -> %d contigs",
			len(plain.Contigs), len(cleaned.Contigs))
	}
	if debruijn.N50(cleaned.Contigs) < debruijn.N50(plain.Contigs) {
		t.Fatalf("simplification reduced N50: %d -> %d",
			debruijn.N50(plain.Contigs), debruijn.N50(cleaned.Contigs))
	}
}

func TestAssembleCorrectOption(t *testing.T) {
	rng := stats.NewRNG(91)
	ref := genome.GenerateGenome(3000, rng)
	reads := genome.NewReadSampler(ref, 80, 0.003, rng).Sample(1500)
	originals := make([]string, len(reads))
	for i, r := range reads {
		originals[i] = r.String()
	}
	plain, err := Assemble(reads, Options{K: 15})
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := Assemble(reads, Options{K: 15, Correct: true})
	if err != nil {
		t.Fatal(err)
	}
	// Caller's reads must not be mutated.
	for i, r := range reads {
		if r.String() != originals[i] {
			t.Fatalf("Assemble mutated input read %d", i)
		}
	}
	if len(fixed.Contigs) >= len(plain.Contigs) {
		t.Fatalf("correction did not reduce fragmentation: %d -> %d",
			len(plain.Contigs), len(fixed.Contigs))
	}
}
