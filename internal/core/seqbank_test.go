package core

import (
	"testing"

	"pimassembler/internal/dram"
	"pimassembler/internal/genome"
	"pimassembler/internal/stats"
)

func TestSequenceBankRoundTrip(t *testing.T) {
	p := NewDefaultPlatform()
	bank := NewSequenceBank(p, 0, 2)
	rng := stats.NewRNG(1)
	reads := genome.NewReadSampler(genome.GenerateGenome(2000, rng), 101, 0, rng).Sample(30)
	for i, r := range reads {
		h, err := bank.Store(r)
		if err != nil {
			t.Fatal(err)
		}
		if h != i {
			t.Fatalf("handle %d, want %d", h, i)
		}
	}
	for i, r := range reads {
		if !bank.Fetch(i).Equal(r) {
			t.Fatalf("read %d corrupted through the bank", i)
		}
	}
	if bank.Len() != len(reads) {
		t.Fatalf("bank holds %d reads", bank.Len())
	}
}

func TestSequenceBankPacksDensely(t *testing.T) {
	p := NewDefaultPlatform()
	bank := NewSequenceBank(p, 0, 1)
	if bank.BasesPerRow() != 128 {
		t.Fatalf("bases per row %d, Fig. 6 stores up to 128 bp", bank.BasesPerRow())
	}
	// A 101 bp read needs exactly one row; a 129 bp read needs two.
	if _, err := bank.Store(genome.GenerateGenome(101, stats.NewRNG(2))); err != nil {
		t.Fatal(err)
	}
	m := p.Meter().Counts[dram.CmdWrite]
	if m != 1 {
		t.Fatalf("101 bp read used %d row writes, want 1", m)
	}
	if _, err := bank.Store(genome.GenerateGenome(129, stats.NewRNG(3))); err != nil {
		t.Fatal(err)
	}
	if got := p.Meter().Counts[dram.CmdWrite] - m; got != 2 {
		t.Fatalf("129 bp read used %d row writes, want 2", got)
	}
}

func TestSequenceBankCapacity(t *testing.T) {
	p := NewDefaultPlatform()
	bank := NewSequenceBank(p, 0, 1)
	// One sub-array holds 1016 data rows of 128 bp reads.
	rng := stats.NewRNG(4)
	stored := 0
	for {
		_, err := bank.Store(genome.GenerateGenome(128, rng))
		if err != nil {
			break
		}
		stored++
	}
	if stored != p.Geometry().DataRows() {
		t.Fatalf("stored %d single-row reads, want %d", stored, p.Geometry().DataRows())
	}
}

func TestSequenceBankRejects(t *testing.T) {
	p := NewDefaultPlatform()
	bank := NewSequenceBank(p, 0, 1)
	if _, err := bank.Store(genome.NewSequence(0)); err == nil {
		t.Fatal("empty read accepted")
	}
	huge := genome.GenerateGenome(1017*128, stats.NewRNG(5))
	if _, err := bank.Store(huge); err == nil {
		t.Fatal("oversized read accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad handle accepted")
		}
	}()
	bank.Fetch(0)
}

func TestSequenceBankEach(t *testing.T) {
	p := NewDefaultPlatform()
	bank := NewSequenceBank(p, 3, 2)
	rng := stats.NewRNG(6)
	reads := genome.NewReadSampler(genome.GenerateGenome(1000, rng), 60, 0, rng).Sample(10)
	if err := bank.StoreAll(reads); err != nil {
		t.Fatal(err)
	}
	n := 0
	bank.Each(func(h int, r *genome.Sequence) bool {
		if !r.Equal(reads[h]) {
			t.Fatalf("read %d mismatch", h)
		}
		n++
		return true
	})
	if n != 10 {
		t.Fatalf("visited %d reads", n)
	}

	// Returning false stops the stream immediately.
	stopped := 0
	bank.Each(func(h int, r *genome.Sequence) bool {
		stopped++
		return stopped < 3
	})
	if stopped != 3 {
		t.Fatalf("early stop visited %d reads, want 3", stopped)
	}
}

func TestSequenceBankPanicsOnBadRange(t *testing.T) {
	p := NewDefaultPlatform()
	for _, f := range []func(){
		func() { NewSequenceBank(p, 0, 0) },
		func() { NewSequenceBank(p, -1, 2) },
		func() { NewSequenceBank(p, p.Geometry().TotalSubarrays(), 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
