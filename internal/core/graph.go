package core

import (
	"fmt"

	"pimassembler/internal/bitvec"
	"pimassembler/internal/debruijn"
	"pimassembler/internal/exec"
	"pimassembler/internal/kmer"
	"pimassembler/internal/mapping"
)

// GraphEngine maps a de Bruijn graph onto PIM-Assembler sub-arrays following
// Fig. 8: nodes are hashed into intervals of up to 256 vertices (f = min(a,b)
// of the 1024×256 sub-array), edges into interval×interval blocks, each
// block stored as a 256×256 adjacency sub-matrix in one sub-array (plus its
// transpose in a second, so both in- and out-degrees reduce along rows).
// Degree computation — the PIM_Add-heavy loop of the Traverse procedure —
// runs as in-memory carry-save popcounts over the adjacency rows.
type GraphEngine struct {
	platform *Platform
	graph    *debruijn.Graph
	nodes    []kmer.Kmer // sorted, indexed by the graph's node rank

	lanes    int            // vertices per interval (sub-array column count)
	groups   int            // number of intervals
	blockSub map[[2]int]int // (srcGroup, dstGroup) -> sub-array id (forward)
	transSub map[[2]int]int // (srcGroup, dstGroup) -> sub-array id (transpose)
	nextSub  int

	// Row plan inside a graph sub-array.
	matrixBase  int
	degreeBase  int
	scratchBase int
	degreeBits  int
}

// NewGraphEngine loads g into the platform's sub-arrays and returns the
// engine. Sub-arrays are allocated sequentially from index firstSubarray.
// Vertex numbering is the graph's own dense node rank (sorted-ID order), so
// no side index map is needed.
func NewGraphEngine(p *Platform, g *debruijn.Graph, firstSubarray int) *GraphEngine {
	e := &GraphEngine{
		platform:   p,
		graph:      g,
		nodes:      g.Nodes(),
		lanes:      p.geom.ColsPerSubarray,
		blockSub:   make(map[[2]int]int),
		transSub:   make(map[[2]int]int),
		nextSub:    firstSubarray,
		degreeBits: 9, // PopCountRows over 256 rows needs 2^m > 256
	}
	e.matrixBase = 0
	e.degreeBase = e.matrixBase + e.lanes
	e.scratchBase = e.degreeBase + 2*e.degreeBits
	e.groups = (len(e.nodes) + e.lanes - 1) / e.lanes
	e.load()
	return e
}

// Groups returns the number of vertex intervals.
func (e *GraphEngine) Groups() int { return e.groups }

// BlocksUsed returns how many adjacency blocks (sub-arrays, excluding
// transposes) hold at least one edge.
func (e *GraphEngine) BlocksUsed() int { return len(e.blockSub) }

// SubarraysNeeded returns the paper's allocation formula Ns = ⌈N/f⌉ for this
// graph on this geometry.
func (e *GraphEngine) SubarraysNeeded() int {
	return mapping.SubarraysForVertices(len(e.nodes), e.platform.geom.RowsPerSubarray, e.platform.geom.ColsPerSubarray)
}

// load writes the adjacency blocks (and transposes) into sub-array rows.
func (e *GraphEngine) load() {
	// Accumulate block rows in host memory, then write each row once.
	type blockKey = [2]int
	rows := make(map[blockKey][]*bitvec.Vector)
	trows := make(map[blockKey][]*bitvec.Vector)
	ensure := func(m map[blockKey][]*bitvec.Vector, key blockKey) []*bitvec.Vector {
		if m[key] == nil {
			vs := make([]*bitvec.Vector, e.lanes)
			for i := range vs {
				vs[i] = bitvec.New(e.lanes)
			}
			m[key] = vs
		}
		return m[key]
	}
	for i, u := range e.graph.SortedIDs() {
		sg, sr := i/e.lanes, i%e.lanes
		e.graph.EachOutID(u, func(to int32, _ kmer.Kmer, _ uint32) {
			j := int(e.graph.RankOfID(to))
			dg, dl := j/e.lanes, j%e.lanes
			ensure(rows, blockKey{sg, dg})[sr].Set(dl, true)
			ensure(trows, blockKey{sg, dg})[dl].Set(sr, true)
		})
	}
	for key, vs := range rows {
		sub := e.platform.Subarray(e.nextSub)
		sub.SetStage(exec.StageDeBruijn)
		e.blockSub[key] = e.nextSub
		e.nextSub++
		for r, v := range vs {
			sub.Write(e.matrixBase+r, v)
		}
	}
	for key, vs := range trows {
		sub := e.platform.Subarray(e.nextSub)
		sub.SetStage(exec.StageDeBruijn)
		e.transSub[key] = e.nextSub
		e.nextSub++
		for r, v := range vs {
			sub.Write(e.matrixBase+r, v)
		}
	}
}

// Degrees computes the in- and out-degree of every node with in-memory
// popcount reductions over the adjacency blocks, merging the per-block
// partial sums in the controller (each chip reduces its block locally;
// the controller adds the per-interval partials, as in Fig. 8's example
// where the reduced row "4 3 3 2 3 1" gives each vertex's degree).
func (e *GraphEngine) Degrees() (in, out []int) {
	in = make([]int, len(e.nodes))
	out = make([]int, len(e.nodes))
	e.reduceBlocks(e.blockSub, func(dstGroup, lane, partial int) {
		node := dstGroup*e.lanes + lane
		if node < len(in) {
			in[node] += partial
		}
	}, false)
	e.reduceBlocks(e.transSub, func(srcGroup, lane, partial int) {
		node := srcGroup*e.lanes + lane
		if node < len(out) {
			out[node] += partial
		}
	}, true)
	return in, out
}

// reduceBlocks runs PopCountRows on every block of table and feeds each
// lane's partial count to sink(group, lane, partial). For the forward
// blocks the reduced axis is the destination group; for transposes the
// source group (selected by transposed).
func (e *GraphEngine) reduceBlocks(table map[[2]int]int, sink func(group, lane, partial int), transposed bool) {
	scratch := make([]int, e.lanes+3*e.degreeBits+4)
	for i := range scratch {
		scratch[i] = e.scratchBase + i
	}
	src := make([]int, e.lanes)
	for i := range src {
		src[i] = e.matrixBase + i
	}
	for key, subIdx := range table {
		sub := e.platform.Subarray(subIdx)
		sub.SetStage(exec.StageTraverse)
		sub.PopCountRows(src, e.degreeBase, scratch, e.degreeBits)
		group := key[1]
		if transposed {
			group = key[0]
		}
		// Read the bit-planar partial counters back through the memory
		// path (the controller's merge step).
		for lane := 0; lane < e.lanes; lane++ {
			var c int
			for bit := 0; bit < e.degreeBits; bit++ {
				if sub.Read(e.degreeBase + bit).Get(lane) {
					c |= 1 << uint(bit)
				}
			}
			if c > 0 {
				sink(group, lane, c)
			}
		}
	}
}

// StartVertex runs the Traverse procedure's start-vertex scan using the
// PIM-computed degrees: the vertex with out−in = +1, or the smallest vertex
// with outgoing edges when the graph is balanced (Eulerian circuit).
func (e *GraphEngine) StartVertex() (kmer.Kmer, error) {
	in, out := e.Degrees()
	var start kmer.Kmer
	found := false
	for i, n := range e.nodes {
		switch out[i] - in[i] {
		case 0:
		case 1:
			if found {
				return 0, fmt.Errorf("core: multiple start vertices; graph not Eulerian")
			}
			start, found = n, true
		case -1:
			// end vertex; allowed once — Balance() fully validates.
		default:
			return 0, fmt.Errorf("core: vertex %v unbalanced by %d", n, out[i]-in[i])
		}
	}
	if found {
		return start, nil
	}
	for i, n := range e.nodes {
		if out[i] > 0 {
			return n, nil
		}
	}
	return 0, fmt.Errorf("core: graph has no edges")
}

// EulerPath runs the full Traverse procedure: PIM degree computation and
// start-vertex selection followed by the edge walk (Fleury in the paper;
// Hierholzer here, with the controller making branch decisions while every
// degree test came from in-memory reductions). The walk is validated
// against the graph before being returned.
func (e *GraphEngine) EulerPath() ([]kmer.Kmer, error) {
	if _, err := e.StartVertex(); err != nil {
		return nil, err
	}
	walk, err := e.graph.EulerPath()
	if err != nil {
		return nil, err
	}
	if err := e.graph.ValidateWalk(walk); err != nil {
		return nil, err
	}
	return walk, nil
}
