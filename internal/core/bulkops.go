package core

import (
	"fmt"

	"pimassembler/internal/bitvec"
	"pimassembler/internal/dram"
	"pimassembler/internal/exec"
	"pimassembler/internal/parallel"
	"pimassembler/internal/subarray"
)

// Bulk bit-wise operations: the §II-B workload. A bulk operand is split into
// row-sized chunks distributed round-robin over sub-arrays; every chunk is
// staged through the memory path, computed with the in-memory primitive, and
// read back. Per the paper's software-support rule, operand sizes must be a
// multiple of the DRAM row size — BulkPad applies the dummy-data padding the
// paper requires otherwise.
//
// Chunks on distinct sub-arrays are independent, so the simulator executes
// them through the parallel fan-out engine: one worker per active sub-array,
// each processing its own chunk sequence in order. The digital result, the
// Meter totals, and each sub-array's final state are bit-identical to the
// serial schedule (chunk 0, 1, 2, ...) for any worker count — only the
// interleaving of the recorded command stream across sub-arrays varies,
// which is the already-documented property of parallel functional runs.

// BulkPad returns n rounded up to the next multiple of the row size, the
// padding rule of the AAP instruction set ("the application must pad it
// with dummy data").
func (p *Platform) BulkPad(nBits int) int {
	row := p.geom.RowBits()
	return (nBits + row - 1) / row * row
}

// bulkSubarrays materialises (serially — materialisation mutates the
// platform) the sub-arrays the round-robin chunk distribution will touch,
// tags them with the bulk stage, and returns them indexed by sub-array.
func (p *Platform) bulkSubarrays(nChunks int) []*subarray.Subarray {
	active := p.geom.ActiveSubarrays()
	if active > nChunks {
		active = nChunks
	}
	subs := make([]*subarray.Subarray, active)
	for i := range subs {
		subs[i] = p.Subarray(i)
		subs[i].SetStage(exec.StageBulk)
	}
	return subs
}

// bulkWorkers returns the fan-out width for a bulk operation over row-bit
// chunks. Direct word-level writes into the shared output vector are only
// race-free when chunk boundaries are word-aligned; otherwise the operation
// degenerates to one worker (bit-identical, just serial).
func bulkWorkers(rowBits int) int {
	if rowBits%64 != 0 {
		return 1
	}
	return parallel.Workers()
}

// bulkRun distributes the sub-arrays over the fan-out pool: worker w owns
// sub-arrays w, w+workers, ... and processes each exactly once. The worker
// factory is invoked once per worker so row-staging buffers are allocated
// per worker, not per sub-array; the returned function runs for every
// sub-array the worker owns.
//
// For the duration of the region every sub-array records into a private
// meter; the privates are merged into the platform meter in sub-array order
// after the join, so the meter's floating-point sums are bit-identical for
// any worker count (concurrent accumulation into one meter would make the
// addition order — and hence the rounding — scheduling-dependent). The
// private meters are cached on the platform and reset in place, keeping
// repeated bulk operations allocation-free.
func (p *Platform) bulkRun(subs []*subarray.Subarray, worker func() func(si int, s *subarray.Subarray)) {
	for len(p.bulkMeters) < len(subs) {
		p.bulkMeters = append(p.bulkMeters, dram.NewMeter(p.timing, p.energy))
	}
	prev := make([]*dram.Meter, len(subs))
	for i, s := range subs {
		p.bulkMeters[i].Reset()
		prev[i] = s.SetMeter(p.bulkMeters[i])
	}
	workers := bulkWorkers(p.geom.RowBits())
	if workers > len(subs) {
		workers = len(subs)
	}
	parallel.ForEachWorkers(workers, workers, func(w int) {
		fn := worker()
		for si := w; si < len(subs); si += workers {
			fn(si, subs[si])
		}
	})
	for i, s := range subs {
		s.SetMeter(prev[i])
		p.meter.Merge(p.bulkMeters[i])
	}
}

// BulkXNOR computes the elementwise XNOR of two equal-length bit vectors on
// the functional sub-arrays and returns the result. Operand length must be
// a multiple of the row size (use BulkPad).
func (p *Platform) BulkXNOR(a, b *bitvec.Vector) *bitvec.Vector {
	p.checkBulk(a, b)
	row := p.geom.RowBits()
	nChunks := a.Len() / row
	out := bitvec.New(a.Len())
	subs := p.bulkSubarrays(nChunks)
	lay := p.layout
	ra, rb, rOut := lay.ReservedBase(), lay.ReservedBase()+1, lay.ReservedBase()+2
	p.bulkRun(subs, func() func(int, *subarray.Subarray) {
		opA, opB, res := bitvec.New(row), bitvec.New(row), bitvec.New(row)
		return func(si int, s *subarray.Subarray) {
			for chunk := si; chunk < nChunks; chunk += len(subs) {
				off := chunk * row
				a.CopySlice(opA, off)
				b.CopySlice(opB, off)
				s.Write(ra, opA)
				s.Write(rb, opB)
				s.XNOR(ra, rb, rOut)
				s.ReadInto(rOut, res)
				out.WriteSlice(off, res)
			}
		}
	})
	return out
}

// BulkAdd computes the elementwise sum of two vectors of elemBits-wide lanes
// stored bit-planar: a and b are slices of bit-plane vectors (length
// elemBits, each a multiple of the row size long). The result has
// elemBits+1 planes.
func (p *Platform) BulkAdd(a, b []*bitvec.Vector) []*bitvec.Vector {
	if len(a) == 0 || len(a) != len(b) {
		panic(fmt.Sprintf("core: BulkAdd needs equal non-empty plane counts, got %d and %d", len(a), len(b)))
	}
	for i := range a {
		p.checkBulk(a[i], b[i])
	}
	m := len(a)
	row := p.geom.RowBits()
	n := a[0].Len()
	nChunks := n / row
	out := make([]*bitvec.Vector, m+1)
	for i := range out {
		out[i] = bitvec.New(n)
	}
	subs := p.bulkSubarrays(nChunks)
	p.bulkRun(subs, func() func(int, *subarray.Subarray) {
		op, res := bitvec.New(row), bitvec.New(row)
		return func(si int, s *subarray.Subarray) {
			for chunk := si; chunk < nChunks; chunk += len(subs) {
				off := chunk * row
				// The reserved region is too small for 3m+1 rows; bulk mode
				// owns the whole sub-array, so stage operands in the
				// data-row space.
				aBase, bBase, dBase, carry := 0, m, 2*m, 3*m+2
				for i := 0; i < m; i++ {
					a[i].CopySlice(op, off)
					s.Write(aBase+i, op)
					b[i].CopySlice(op, off)
					s.Write(bBase+i, op)
				}
				s.BitSerialAdd(aBase, bBase, dBase, carry, m)
				for i := 0; i <= m; i++ {
					s.ReadInto(dBase+i, res)
					out[i].WriteSlice(off, res)
				}
			}
		}
	})
	return out
}

func (p *Platform) checkBulk(a, b *bitvec.Vector) {
	if a.Len() != b.Len() {
		panic(fmt.Sprintf("core: bulk operand lengths differ: %d vs %d", a.Len(), b.Len()))
	}
	if a.Len()%p.geom.RowBits() != 0 {
		panic(fmt.Sprintf("core: bulk operand length %d not a multiple of the %d-bit row; apply BulkPad",
			a.Len(), p.geom.RowBits()))
	}
}
