package core

import (
	"fmt"

	"pimassembler/internal/bitvec"
	"pimassembler/internal/exec"
)

// Bulk bit-wise operations: the §II-B workload. A bulk operand is split into
// row-sized chunks distributed round-robin over sub-arrays; every chunk is
// staged through the memory path, computed with the in-memory primitive, and
// read back. Per the paper's software-support rule, operand sizes must be a
// multiple of the DRAM row size — BulkPad applies the dummy-data padding the
// paper requires otherwise.

// BulkPad returns n rounded up to the next multiple of the row size, the
// padding rule of the AAP instruction set ("the application must pad it
// with dummy data").
func (p *Platform) BulkPad(nBits int) int {
	row := p.geom.RowBits()
	return (nBits + row - 1) / row * row
}

// BulkXNOR computes the elementwise XNOR of two equal-length bit vectors on
// the functional sub-arrays and returns the result. Operand length must be
// a multiple of the row size (use BulkPad).
func (p *Platform) BulkXNOR(a, b *bitvec.Vector) *bitvec.Vector {
	p.checkBulk(a, b)
	row := p.geom.RowBits()
	out := bitvec.New(a.Len())
	lay := p.layout
	for chunk := 0; chunk*row < a.Len(); chunk++ {
		s := p.Subarray(chunk % p.geom.ActiveSubarrays())
		s.SetStage(exec.StageBulk)
		ra, rb, rOut := lay.ReservedBase(), lay.ReservedBase()+1, lay.ReservedBase()+2
		s.Write(ra, slice(a, chunk*row, row))
		s.Write(rb, slice(b, chunk*row, row))
		s.XNOR(ra, rb, rOut)
		res := s.Read(rOut)
		for i := 0; i < row; i++ {
			out.Set(chunk*row+i, res.Get(i))
		}
	}
	return out
}

// BulkAdd computes the elementwise sum of two vectors of elemBits-wide lanes
// stored bit-planar: a and b are slices of bit-plane vectors (length
// elemBits, each a multiple of the row size long). The result has
// elemBits+1 planes.
func (p *Platform) BulkAdd(a, b []*bitvec.Vector) []*bitvec.Vector {
	if len(a) == 0 || len(a) != len(b) {
		panic(fmt.Sprintf("core: BulkAdd needs equal non-empty plane counts, got %d and %d", len(a), len(b)))
	}
	for i := range a {
		p.checkBulk(a[i], b[i])
	}
	m := len(a)
	row := p.geom.RowBits()
	n := a[0].Len()
	out := make([]*bitvec.Vector, m+1)
	for i := range out {
		out[i] = bitvec.New(n)
	}
	for chunk := 0; chunk*row < n; chunk++ {
		s := p.Subarray(chunk % p.geom.ActiveSubarrays())
		s.SetStage(exec.StageBulk)
		// The reserved region is too small for 3m+1 rows; bulk mode owns
		// the whole sub-array, so stage operands in the data-row space.
		aBase, bBase, dBase, carry := 0, m, 2*m, 3*m+2
		for i := 0; i < m; i++ {
			s.Write(aBase+i, slice(a[i], chunk*row, row))
			s.Write(bBase+i, slice(b[i], chunk*row, row))
		}
		s.BitSerialAdd(aBase, bBase, dBase, carry, m)
		for i := 0; i <= m; i++ {
			res := s.Read(dBase + i)
			for j := 0; j < row; j++ {
				out[i].Set(chunk*row+j, res.Get(j))
			}
		}
	}
	return out
}

func (p *Platform) checkBulk(a, b *bitvec.Vector) {
	if a.Len() != b.Len() {
		panic(fmt.Sprintf("core: bulk operand lengths differ: %d vs %d", a.Len(), b.Len()))
	}
	if a.Len()%p.geom.RowBits() != 0 {
		panic(fmt.Sprintf("core: bulk operand length %d not a multiple of the %d-bit row; apply BulkPad",
			a.Len(), p.geom.RowBits()))
	}
}

// slice copies width bits starting at from into a fresh row vector.
func slice(v *bitvec.Vector, from, width int) *bitvec.Vector {
	out := bitvec.New(width)
	for i := 0; i < width; i++ {
		out.Set(i, v.Get(from+i))
	}
	return out
}
