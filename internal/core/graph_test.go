package core

import (
	"testing"

	"pimassembler/internal/debruijn"
	"pimassembler/internal/dram"
	"pimassembler/internal/genome"
	"pimassembler/internal/kmer"
	"pimassembler/internal/stats"
)

func buildGraph(t *testing.T, seed uint64, genomeLen, k int) *debruijn.Graph {
	t.Helper()
	rng := stats.NewRNG(seed)
	g := genome.GenerateGenome(genomeLen, rng)
	tbl := kmer.NewCountTable(k, genomeLen)
	kmer.Iterate(g, k, func(km kmer.Kmer) { tbl.Add(km) })
	return debruijn.Build(tbl)
}

func TestGraphEngineDegreesMatchSoftware(t *testing.T) {
	p := NewDefaultPlatform()
	// ~300 nodes spans two 256-lane intervals, exercising multi-block
	// placement and the controller merge.
	g := buildGraph(t, 9, 300, 9)
	e := NewGraphEngine(p, g, 0)
	if e.Groups() < 2 {
		t.Fatalf("expected >=2 intervals for %d nodes", g.NumNodes())
	}
	in, out := e.Degrees()
	for i, n := range g.Nodes() {
		if in[i] != g.InDegree(n) {
			t.Fatalf("node %v in-degree %d, want %d", n, in[i], g.InDegree(n))
		}
		if out[i] != g.OutDegree(n) {
			t.Fatalf("node %v out-degree %d, want %d", n, out[i], g.OutDegree(n))
		}
	}
}

func TestGraphEngineStartVertex(t *testing.T) {
	p := NewDefaultPlatform()
	// A linear chain has a unique start vertex.
	s := genome.MustFromString("ACGTTGCA")
	tbl := kmer.NewCountTable(4, 8)
	kmer.Iterate(s, 4, func(km kmer.Kmer) { tbl.Add(km) })
	g := debruijn.Build(tbl)
	e := NewGraphEngine(p, g, 0)
	start, err := e.StartVertex()
	if err != nil {
		t.Fatal(err)
	}
	class, want := g.Balance()
	if class != debruijn.BalancePath {
		t.Fatalf("expected a path graph, got %v", class)
	}
	if start != want {
		t.Fatalf("start %v, want %v", start, want)
	}
}

func TestGraphEngineEulerPath(t *testing.T) {
	p := NewDefaultPlatform()
	g := buildGraph(t, 21, 90, 10)
	e := NewGraphEngine(p, g, 0)
	walk, err := e.EulerPath()
	if err != nil {
		// Random genomes may repeat k-mers and be non-Eulerian; regenerate
		// with another seed in that case. Seed 21 at k=10 is Eulerian, so
		// reaching here is a real failure.
		t.Fatal(err)
	}
	if err := g.ValidateWalk(walk); err != nil {
		t.Fatal(err)
	}
}

func TestGraphEngineUsesPIMAdds(t *testing.T) {
	p := NewDefaultPlatform()
	g := buildGraph(t, 5, 120, 8)
	e := NewGraphEngine(p, g, 0)
	p.Meter().Reset()
	e.Degrees()
	m := p.Meter()
	if m.Counts[dram.CmdAAP3] == 0 {
		t.Error("degree reduction issued no TRA carries: PIM_Add must run in memory")
	}
	if m.Counts[dram.CmdAAP2] == 0 {
		t.Error("degree reduction issued no two-row AAPs: CSA sums must run in memory")
	}
}

func TestGraphEngineAllocationFormula(t *testing.T) {
	p := NewDefaultPlatform()
	g := buildGraph(t, 13, 300, 9)
	e := NewGraphEngine(p, g, 0)
	n := g.NumNodes()
	want := (n + 255) / 256 // f = min(1024, 256) = 256
	if got := e.SubarraysNeeded(); got != want {
		t.Fatalf("Ns = %d, want ceil(%d/256) = %d", got, n, want)
	}
}
