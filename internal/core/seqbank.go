package core

import (
	"fmt"

	"pimassembler/internal/bitvec"
	"pimassembler/internal/exec"
	"pimassembler/internal/genome"
)

// SequenceBank is the "Original Sequence Bank" of Fig. 6: short reads
// stored 2-bit-packed in DRAM rows (128 bp per 256-bit row), from which the
// controller parses k-mers into the hash sub-arrays. Storing the reads in
// simulated DRAM makes the functional pipeline fully memory-resident and
// charges the read-out traffic that the MBR model accounts as dispatch.
type SequenceBank struct {
	platform *Platform
	// firstSubarray..: rows fill sequentially across the bank's sub-arrays.
	firstSubarray int
	subarrays     int

	reads []bankedRead
	// cursor tracks the next free (sub-array, row).
	curSub, curRow int
}

// bankedRead records where a read lives and its length in bases.
type bankedRead struct {
	sub, row, rows, length int
}

// NewSequenceBank reserves nSubarrays sub-arrays starting at firstSubarray
// for read storage.
func NewSequenceBank(p *Platform, firstSubarray, nSubarrays int) *SequenceBank {
	if nSubarrays <= 0 {
		panic(fmt.Sprintf("core: non-positive bank size %d", nSubarrays))
	}
	if firstSubarray < 0 || firstSubarray+nSubarrays > p.geom.TotalSubarrays() {
		panic(fmt.Sprintf("core: bank [%d,%d) outside the geometry", firstSubarray, firstSubarray+nSubarrays))
	}
	return &SequenceBank{
		platform:      p,
		firstSubarray: firstSubarray,
		subarrays:     nSubarrays,
	}
}

// BasesPerRow returns the packing density (128 bp for 256-bit rows).
func (b *SequenceBank) BasesPerRow() int { return b.platform.geom.ColsPerSubarray / genome.BaseBits }

// Len returns the number of stored reads.
func (b *SequenceBank) Len() int { return len(b.reads) }

// Store writes a read into the bank (memory-path writes, metered) and
// returns its handle.
func (b *SequenceBank) Store(read *genome.Sequence) (int, error) {
	if read.Len() == 0 {
		return 0, fmt.Errorf("core: empty read")
	}
	perRow := b.BasesPerRow()
	rows := (read.Len() + perRow - 1) / perRow
	dataRows := b.platform.geom.DataRows()
	if rows > dataRows {
		return 0, fmt.Errorf("core: read of %d bp exceeds one sub-array's %d rows", read.Len(), dataRows)
	}
	// Advance to a sub-array with enough contiguous rows.
	if b.curRow+rows > dataRows {
		b.curSub++
		b.curRow = 0
	}
	if b.curSub >= b.subarrays {
		return 0, fmt.Errorf("core: sequence bank full (%d sub-arrays)", b.subarrays)
	}
	sub := b.platform.Subarray(b.firstSubarray + b.curSub)
	sub.SetStage(exec.StageInput)
	for r := 0; r < rows; r++ {
		row := bitvec.New(b.platform.geom.ColsPerSubarray)
		for i := 0; i < perRow; i++ {
			pos := r*perRow + i
			if pos >= read.Len() {
				break
			}
			row.SetUint64(i*genome.BaseBits, genome.BaseBits, uint64(read.Base(pos)))
		}
		sub.Write(b.curRow+r, row)
	}
	handle := len(b.reads)
	b.reads = append(b.reads, bankedRead{sub: b.curSub, row: b.curRow, rows: rows, length: read.Len()})
	b.curRow += rows
	return handle, nil
}

// StoreAll stores a batch, returning the first error.
func (b *SequenceBank) StoreAll(reads []*genome.Sequence) error {
	for i, r := range reads {
		if _, err := b.Store(r); err != nil {
			return fmt.Errorf("read %d: %w", i, err)
		}
	}
	return nil
}

// Fetch reads a stored read back through the memory path (metered), exactly
// as the controller does when parsing short reads to the hash sub-arrays.
// The read-out traffic is tagged StageHashmap: it is stage 1's dispatch.
func (b *SequenceBank) Fetch(handle int) *genome.Sequence {
	if handle < 0 || handle >= len(b.reads) {
		panic(fmt.Sprintf("core: read handle %d outside [0,%d)", handle, len(b.reads)))
	}
	br := b.reads[handle]
	sub := b.platform.Subarray(b.firstSubarray + br.sub)
	sub.SetStage(exec.StageHashmap)
	perRow := b.BasesPerRow()
	out := genome.NewSequence(br.length)
	for r := 0; r < br.rows; r++ {
		row := sub.Read(br.row + r)
		for i := 0; i < perRow; i++ {
			pos := r*perRow + i
			if pos >= br.length {
				break
			}
			out.SetBase(pos, genome.Base(row.Uint64(i*genome.BaseBits, genome.BaseBits)))
		}
	}
	return out
}

// Each fetches every read in storage order. The callback returns whether to
// continue: returning false stops the stream immediately, so a consumer
// that hits an error does not pay the memory traffic of scanning the rest
// of the bank.
func (b *SequenceBank) Each(fn func(handle int, read *genome.Sequence) bool) {
	for h := range b.reads {
		if !fn(h, b.Fetch(h)) {
			return
		}
	}
}
