package core

import (
	"errors"
	"testing"

	"pimassembler/internal/bitvec"
	"pimassembler/internal/dram"
	"pimassembler/internal/genome"
	"pimassembler/internal/kmer"
	"pimassembler/internal/stats"
)

func TestNewPlatformValidates(t *testing.T) {
	g := dram.Default()
	g.ActiveBanks = 0
	if _, err := NewPlatform(g, dram.DefaultTiming(), dram.DefaultEnergy()); err == nil {
		t.Fatal("invalid geometry accepted")
	}
	tm := dram.DefaultTiming()
	tm.TRAS = 1
	if _, err := NewPlatform(dram.Default(), tm, dram.DefaultEnergy()); err == nil {
		t.Fatal("invalid timing accepted")
	}
}

func TestPlatformLazySubarrays(t *testing.T) {
	p := NewDefaultPlatform()
	if p.MaterializedSubarrays() != 0 {
		t.Fatal("fresh platform has materialised sub-arrays")
	}
	s1 := p.Subarray(5)
	s2 := p.Subarray(5)
	if s1 != s2 {
		t.Fatal("Subarray not idempotent")
	}
	if p.MaterializedSubarrays() != 1 {
		t.Fatal("materialisation count wrong")
	}
	p.Reset()
	if p.MaterializedSubarrays() != 0 || p.Meter().TotalCommands() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestPlatformSubarrayRangePanic(t *testing.T) {
	p := NewDefaultPlatform()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Subarray(p.Geometry().TotalSubarrays())
}

func TestHashTableMatchesSoftwareReference(t *testing.T) {
	p := NewDefaultPlatform()
	rng := stats.NewRNG(42)
	g := genome.GenerateGenome(600, rng)
	reads := genome.TilingReads(g, 60, 30)
	k := 13

	pim := NewHashTable(p, k, 4)
	ref := kmer.NewCountTable(k, 1024)
	for _, r := range reads {
		kmer.Iterate(r, k, func(km kmer.Kmer) {
			if _, err := pim.Add(km); err != nil {
				t.Fatal(err)
			}
			ref.Add(km)
		})
	}
	if pim.Len() != ref.Len() {
		t.Fatalf("distinct: PIM %d, reference %d", pim.Len(), ref.Len())
	}
	// Entries read back from DRAM rows must match the software table.
	pimEntries := pim.Entries()
	refEntries := ref.Entries()
	if len(pimEntries) != len(refEntries) {
		t.Fatalf("entry counts differ: %d vs %d", len(pimEntries), len(refEntries))
	}
	for i := range refEntries {
		if pimEntries[i].Kmer != refEntries[i].Kmer {
			t.Fatalf("entry %d k-mer mismatch: %v vs %v", i, pimEntries[i].Kmer, refEntries[i].Kmer)
		}
		if pimEntries[i].Count != refEntries[i].Count {
			t.Fatalf("entry %d (%s) count %d, want %d",
				i, refEntries[i].Kmer.String(k), pimEntries[i].Count, refEntries[i].Count)
		}
	}
}

func TestHashTableCount(t *testing.T) {
	p := NewDefaultPlatform()
	tbl := NewHashTable(p, 8, 2)
	km := kmer.MustParse("ACGTACGT")
	if got := tbl.Count(km); got != 0 {
		t.Fatalf("absent count %d", got)
	}
	for i := 0; i < 5; i++ {
		if _, err := tbl.Add(km); err != nil {
			t.Fatal(err)
		}
	}
	if got := tbl.Count(km); got != 5 {
		t.Fatalf("count %d, want 5", got)
	}
}

func TestHashTableInsertedFlag(t *testing.T) {
	p := NewDefaultPlatform()
	tbl := NewHashTable(p, 6, 1)
	km := kmer.MustParse("ACGTAC")
	ins, err := tbl.Add(km)
	if err != nil || !ins {
		t.Fatalf("first Add: inserted=%v err=%v", ins, err)
	}
	ins, err = tbl.Add(km)
	if err != nil || ins {
		t.Fatalf("second Add: inserted=%v err=%v", ins, err)
	}
}

func TestHashTableUsesPIMOps(t *testing.T) {
	p := NewDefaultPlatform()
	tbl := NewHashTable(p, 10, 1)
	rng := stats.NewRNG(7)
	for i := 0; i < 50; i++ {
		if _, err := tbl.Add(kmer.Kmer(rng.Uint64()) & kmer.Kmer(kmer.Mask(10))); err != nil {
			t.Fatal(err)
		}
	}
	st := tbl.Stats()
	if st.XNOROps == 0 {
		t.Error("no PIM_XNOR issued: comparisons must be in-memory")
	}
	if st.AddAAPs == 0 {
		t.Error("no TRA issued: counter increments must be in-memory")
	}
	if st.CopyAAPs == 0 {
		t.Error("no RowClone issued: staging must be in-memory")
	}
	if st.DPUOps == 0 {
		t.Error("no DPU reductions issued: match detection must be metered")
	}
}

func TestHashTablePanics(t *testing.T) {
	p := NewDefaultPlatform()
	for _, f := range []func(){
		func() { NewHashTable(p, 0, 1) },
		func() { NewHashTable(p, 33, 1) },
		func() { NewHashTable(p, 8, 0) },
		func() { NewHashTable(p, 8, p.Geometry().TotalSubarrays()+1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestHashTableFull(t *testing.T) {
	// Shrink the geometry so the k-mer region is tiny and fills up.
	g := dram.Default()
	g.RowsPerSubarray = 64 // data rows 56; k-mer region 56-48 = 8
	p, err := NewPlatform(g, dram.DefaultTiming(), dram.DefaultEnergy())
	if err != nil {
		t.Fatal(err)
	}
	tbl := NewHashTable(p, 8, 1)
	rng := stats.NewRNG(3)
	sawFull := false
	for i := 0; i < 1000; i++ {
		if _, err := tbl.Add(kmer.Kmer(rng.Uint64()) & kmer.Kmer(kmer.Mask(8))); err != nil {
			if !errors.Is(err, ErrTableFull) {
				t.Fatalf("unexpected error %v", err)
			}
			sawFull = true
			break
		}
	}
	if !sawFull {
		t.Fatal("tiny table never filled")
	}
}

func TestBulkPad(t *testing.T) {
	p := NewDefaultPlatform()
	row := p.Geometry().RowBits()
	if p.BulkPad(1) != row || p.BulkPad(row) != row || p.BulkPad(row+1) != 2*row {
		t.Fatal("padding rule broken")
	}
}

func TestBulkXNORFunctional(t *testing.T) {
	p := NewDefaultPlatform()
	rng := stats.NewRNG(5)
	n := p.BulkPad(1000)
	a, b := bitvec.New(n), bitvec.New(n)
	for i := 0; i < n; i++ {
		a.Set(i, rng.Float64() < 0.5)
		b.Set(i, rng.Float64() < 0.5)
	}
	got := p.BulkXNOR(a, b)
	want := bitvec.New(n)
	want.Xnor(a, b)
	if !got.Equal(want) {
		t.Fatal("bulk XNOR mismatch")
	}
}

func TestBulkXNORRejectsUnpadded(t *testing.T) {
	p := NewDefaultPlatform()
	defer func() {
		if recover() == nil {
			t.Fatal("unpadded operand accepted")
		}
	}()
	p.BulkXNOR(bitvec.New(100), bitvec.New(100))
}

func TestBulkAddFunctional(t *testing.T) {
	p := NewDefaultPlatform()
	rng := stats.NewRNG(6)
	const m = 6
	lanes := p.BulkPad(512)
	a := make([]*bitvec.Vector, m)
	b := make([]*bitvec.Vector, m)
	av := make([]uint64, lanes)
	bv := make([]uint64, lanes)
	for i := range av {
		av[i] = rng.Uint64() & (1<<m - 1)
		bv[i] = rng.Uint64() & (1<<m - 1)
	}
	for bit := 0; bit < m; bit++ {
		a[bit] = bitvec.New(lanes)
		b[bit] = bitvec.New(lanes)
		for lane := 0; lane < lanes; lane++ {
			a[bit].Set(lane, av[lane]&(1<<uint(bit)) != 0)
			b[bit].Set(lane, bv[lane]&(1<<uint(bit)) != 0)
		}
	}
	sum := p.BulkAdd(a, b)
	if len(sum) != m+1 {
		t.Fatalf("result planes %d, want %d", len(sum), m+1)
	}
	for lane := 0; lane < lanes; lane++ {
		var got uint64
		for bit := 0; bit <= m; bit++ {
			if sum[bit].Get(lane) {
				got |= 1 << uint(bit)
			}
		}
		if got != av[lane]+bv[lane] {
			t.Fatalf("lane %d: %d + %d = %d", lane, av[lane], bv[lane], got)
		}
	}
}
